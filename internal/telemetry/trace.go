package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for TracerConfig fields left at zero.
const (
	// DefaultTraceRing is the number of finished traces the main ring
	// retains before the oldest is overwritten.
	DefaultTraceRing = 256
	// DefaultSlowRing is the number of slow traces pinned in the
	// dedicated slow ring.
	DefaultSlowRing = 64
	// DefaultSlowThreshold promotes requests slower than this to the
	// slow ring (and, in the server, to the access log).
	DefaultSlowThreshold = 500 * time.Millisecond
)

// TracerConfig sizes a Tracer's rings and sets its slow-query
// threshold. Zero fields take the Default* constants.
type TracerConfig struct {
	// RingSize is the capacity of the main finished-trace ring.
	RingSize int
	// SlowRingSize is the capacity of the pinned slow-trace ring.
	// Slow traces are only evicted by newer slow traces, so a burst
	// of fast requests cannot flush the outliers an operator is
	// debugging.
	SlowRingSize int
	// SlowThreshold marks a finished trace as slow when its total
	// duration meets or exceeds it. Negative disables slow
	// promotion entirely.
	SlowThreshold time.Duration
}

// Tracer records finished request traces into fixed-size rings. A nil
// *Tracer is the disabled tracer: Start returns a nil *Trace and every
// downstream span call is a cheap nil-check no-op, preserving the
// one-branch-per-site rule from the metrics plane.
//
// Ring inserts are lock-free: a single atomic counter claims a slot
// and an atomic pointer store publishes the trace. Traces are
// immutable after Finish, so readers snapshot slots with atomic loads
// and never contend with request goroutines.
type Tracer struct {
	slowThreshold time.Duration
	ring          []atomic.Pointer[Trace]
	slow          []atomic.Pointer[Trace]
	next          atomic.Uint64
	slowNext      atomic.Uint64
}

// NewTracer builds a Tracer from cfg, applying defaults for zero
// fields.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultTraceRing
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = DefaultSlowRing
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	return &Tracer{
		slowThreshold: cfg.SlowThreshold,
		ring:          make([]atomic.Pointer[Trace], cfg.RingSize),
		slow:          make([]atomic.Pointer[Trace], cfg.SlowRingSize),
	}
}

// Start begins a trace for one request. id is the request ID the
// trace is retrievable under. Returns nil when the tracer is nil.
func (tr *Tracer) Start(id string) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{
		tracer: tr,
		id:     id,
		start:  time.Now(),
		spans:  make([]Span, 0, 8),
	}
}

// Span is one timed phase inside a finished trace.
type Span struct {
	// Name identifies the phase: "auth", "compile", "artifact.domain",
	// "ledger.charge", "ledger.commit_wait", "scan", "noise", "encode".
	Name string
	// Offset is the span's start relative to the trace's start.
	Offset time.Duration
	// Dur is how long the phase ran.
	Dur time.Duration
	// Attrs carries optional key/value detail (e.g. scan worker count).
	Attrs []Label
}

// Trace accumulates spans for one request and, once finished, becomes
// an immutable record in the tracer's ring. All methods are safe on a
// nil receiver so disabled tracing costs one branch per call site.
type Trace struct {
	tracer *Tracer
	id     string
	start  time.Time

	mu       sync.Mutex
	spans    []Span
	kind     string
	analyst  string
	route    string
	status   int
	dur      time.Duration
	slow     bool
	finished bool
}

// ID reports the request ID the trace was started with.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetKind records the query kind for filtering. No-op on nil.
func (t *Trace) SetKind(kind string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.kind = kind
	t.mu.Unlock()
}

// SetAnalyst records the authenticated analyst ID for filtering.
// No-op on nil.
func (t *Trace) SetAnalyst(analyst string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.analyst = analyst
	t.mu.Unlock()
}

// SpanEnd closes the span opened by StartSpan. It is a value type —
// starting and ending a span on an enabled trace allocates nothing
// beyond the span record itself — and the zero SpanEnd (from a nil
// trace) is a no-op.
type SpanEnd struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a named span. Call End on the returned SpanEnd when
// the phase completes. On a nil trace it returns the zero SpanEnd.
func (t *Trace) StartSpan(name string) SpanEnd {
	if t == nil {
		return SpanEnd{}
	}
	return SpanEnd{t: t, name: name, start: time.Now()}
}

// End records the span, attaching any attrs. Safe on the zero value.
func (e SpanEnd) End(attrs ...Label) {
	if e.t == nil {
		return
	}
	d := time.Since(e.start)
	e.t.mu.Lock()
	if !e.t.finished {
		e.t.spans = append(e.t.spans, Span{
			Name:   e.name,
			Offset: e.start.Sub(e.t.start),
			Dur:    d,
			Attrs:  attrs,
		})
	}
	e.t.mu.Unlock()
}

// Finish seals the trace with the request's route and status, marks
// it slow if it crossed the tracer's threshold, and publishes it into
// the ring(s). Further span/attribute calls are ignored. No-op on nil.
func (t *Trace) Finish(route string, status int) {
	if t == nil {
		return
	}
	tr := t.tracer
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.route = route
	t.status = status
	t.dur = time.Since(t.start)
	t.slow = tr.slowThreshold > 0 && t.dur >= tr.slowThreshold
	slow := t.slow
	t.mu.Unlock()

	if slow {
		i := tr.slowNext.Add(1) - 1
		tr.slow[int(i%uint64(len(tr.slow)))].Store(t)
	}
	i := tr.next.Add(1) - 1
	tr.ring[int(i%uint64(len(tr.ring)))].Store(t)
}

// Slow reports whether the finished trace crossed the slow threshold.
func (t *Trace) Slow() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow
}

// Duration reports the finished trace's total duration (zero before
// Finish or on nil).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// TraceView is an immutable snapshot of a finished trace, safe to
// hold and serialize after the underlying slot has been overwritten.
type TraceView struct {
	ID       string
	Start    time.Time
	Duration time.Duration
	Kind     string
	Analyst  string
	Route    string
	Status   int
	Slow     bool
	Spans    []Span
}

// View snapshots the trace. The returned view's Spans slice is a
// copy. Zero view on nil.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:       t.id,
		Start:    t.start,
		Duration: t.dur,
		Kind:     t.kind,
		Analyst:  t.analyst,
		Route:    t.route,
		Status:   t.status,
		Slow:     t.slow,
		Spans:    make([]Span, len(t.spans)),
	}
	copy(v.Spans, t.spans)
	return v
}

// TraceFilter selects traces from a Tracer's rings. Zero fields match
// everything.
type TraceFilter struct {
	// Kind keeps only traces whose query kind equals it.
	Kind string
	// Analyst keeps only traces recorded for this analyst ID.
	Analyst string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit caps the number of traces returned (0 = no cap).
	Limit int
}

// Traces snapshots the rings — newest first, slow-pinned traces
// included and deduplicated — applying the filter. Nil tracer returns
// nil.
func (tr *Tracer) Traces(f TraceFilter) []TraceView {
	if tr == nil {
		return nil
	}
	seen := make(map[*Trace]struct{}, len(tr.ring)+len(tr.slow))
	var out []TraceView
	collect := func(ring []atomic.Pointer[Trace]) {
		for i := range ring {
			t := ring[i].Load()
			if t == nil {
				continue
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			v := t.View()
			if f.Kind != "" && v.Kind != f.Kind {
				continue
			}
			if f.Analyst != "" && v.Analyst != f.Analyst {
				continue
			}
			if v.Duration < f.MinDuration {
				continue
			}
			out = append(out, v)
		}
	}
	collect(tr.ring)
	collect(tr.slow)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Get returns the trace with the given request ID, searching the slow
// ring too (slow traces outlive the main ring). The second result is
// false when no such trace is retained.
func (tr *Tracer) Get(id string) (TraceView, bool) {
	if tr == nil || id == "" {
		return TraceView{}, false
	}
	for _, ring := range [][]atomic.Pointer[Trace]{tr.ring, tr.slow} {
		for i := range ring {
			if t := ring[i].Load(); t != nil && t.id == id {
				return t.View(), true
			}
		}
	}
	return TraceView{}, false
}

// traceKey keys the request trace in a context.
type traceKey struct{}

// ContextWithTrace returns ctx carrying t; TraceFrom retrieves it.
// A nil t is carried as-is (TraceFrom then returns nil).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
