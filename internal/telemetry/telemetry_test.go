package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1)         // dropped: counters never go down
	c.Add(math.NaN()) // dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.NewGauge("g", "help")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("x_total", "h")
	g := reg.NewGauge("x", "h")
	h := reg.NewHistogram("x_seconds", "h", nil)
	v := reg.NewCounterVec("v_total", "h", "kind")
	reg.NewGaugeFunc("f", "h", func() float64 { return 1 })
	c.Inc()
	c.Add(2)
	g.Set(3)
	g.Inc()
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	v.With("a").Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q, err %v", sb.String(), err)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "h", L("k", "v"))
	b := r.NewCounter("dup_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.NewCounter("dup_total", "h", L("k", "w"))
	if other == a {
		t.Fatal("different label value must be a different series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting TYPE for one name must panic")
		}
	}()
	r.NewGauge("dup_total", "h")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "h", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniform in (0, 0.1]: everything lands in bucket 0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000.0)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 0.1 {
		t.Fatalf("p50 = %g, want within bucket (0, 0.1]", p50)
	}
	// Push 100 more into the 0.2..0.4 bucket; the p99 moves there.
	for i := 0; i < 100; i++ {
		h.Observe(0.3)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.2 || p99 > 0.4 {
		t.Fatalf("p99 = %g, want within (0.2, 0.4]", p99)
	}
	p50, p95, p99 := h.Summary()
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("summary not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	// Values beyond every bound report the last finite bound.
	h2 := r.NewHistogram("lat2_seconds", "h", []float64{0.1})
	h2.Observe(5)
	if got := h2.Quantile(0.5); got != 0.1 {
		t.Fatalf("overflow quantile = %g, want 0.1 (last bound)", got)
	}
	// Empty histogram.
	h3 := r.NewHistogram("lat3_seconds", "h", nil)
	if h3.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestPrometheusExpositionGolden pins the exact rendered text for a
// small fixed registry: HELP/TYPE headers, label escaping and ordering,
// cumulative histogram buckets, _sum/_count, and gauge-func collection.
// The format is consumed by real Prometheus scrapers, so it must not
// drift.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("osdp_queries_total", "Queries answered.", L("kind", "histogram"))
	c.Add(3)
	r.NewCounter("osdp_queries_total", "Queries answered.", L("kind", "count")).Inc()
	g := r.NewGauge("osdp_http_in_flight_requests", "In-flight HTTP requests.")
	g.Set(2)
	r.NewGaugeFunc("osdp_sessions_active", "Live sessions.", func() float64 { return 7 })
	h := r.NewHistogram("osdp_query_duration_seconds", "Query latency.", []float64{0.1, 0.5}, L("kind", "histogram"))
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	esc := r.NewCounter("osdp_escapes_total", "Label escaping.", L("v", "a\"b\\c\nd"))
	esc.Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP osdp_queries_total Queries answered.
# TYPE osdp_queries_total counter
osdp_queries_total{kind="histogram"} 3
osdp_queries_total{kind="count"} 1
# HELP osdp_http_in_flight_requests In-flight HTTP requests.
# TYPE osdp_http_in_flight_requests gauge
osdp_http_in_flight_requests 2
# HELP osdp_sessions_active Live sessions.
# TYPE osdp_sessions_active gauge
osdp_sessions_active 7
# HELP osdp_query_duration_seconds Query latency.
# TYPE osdp_query_duration_seconds histogram
osdp_query_duration_seconds_bucket{kind="histogram",le="0.1"} 2
osdp_query_duration_seconds_bucket{kind="histogram",le="0.5"} 3
osdp_query_duration_seconds_bucket{kind="histogram",le="+Inf"} 4
osdp_query_duration_seconds_sum{kind="histogram"} 2.4
osdp_query_duration_seconds_count{kind="histogram"} 4
# HELP osdp_escapes_total Label escaping.
# TYPE osdp_escapes_total counter
osdp_escapes_total{v="a\"b\\c\nd"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentUpdatesAndScrapes hammers every metric type from many
// goroutines while scraping, under -race; totals must come out exact.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "h")
	g := r.NewGauge("g", "h")
	h := r.NewHistogram("h_seconds", "h", nil)
	vec := r.NewCounterVec("v_total", "h", "kind")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				vec.With([]string{"a", "b"}[w%2]).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %g, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if got := vec.With("a").Value() + vec.With("b").Value(); got != workers*perWorker {
		t.Fatalf("vec total = %g, want %d", got, workers*perWorker)
	}
}
