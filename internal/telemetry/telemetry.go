// Package telemetry is the zero-dependency observability substrate of
// the serving plane: atomic counters, gauges, and fixed-bucket latency
// histograms, collected in a Registry and rendered in the Prometheus
// text exposition format (served by the query service as GET /metrics).
//
// The package exists so the hot paths the ROADMAP's scaling items are
// judged against — the query path, the ledger's WAL fsync, the scan
// pool — can be instrumented without importing anything outside the
// standard library, and without measurable overhead: every metric
// update is one or two atomic operations, and every metric method
// (including the Registry's constructors and renderer) is safe on a nil
// receiver, so "telemetry disabled" is literally a nil *Registry with
// every update compiling down to a nil check.
//
// Naming scheme: every series the repo exports is prefixed `osdp_`,
// units are encoded in the name per Prometheus convention
// (`_seconds`, `_total`), and label cardinality is bounded by
// construction — labels only ever carry closed enumerations (query
// kind, route pattern, status code, cache name), never client-supplied
// strings. See DESIGN.md "Observability" for the cardinality budget.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series. Label values
// must come from closed, low-cardinality sets (query kinds, route
// patterns, status codes) — never from client-controlled input.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern. Prometheus values are floats (ε charges, durations), so the
// counters and gauges carry one rather than an integer.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing float64. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v      atomicFloat
	series string // rendered "name{labels}"
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative (negative deltas are
// dropped — a counter never goes down).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 || math.IsNaN(delta) {
		return
	}
	c.v.add(delta)
}

// Value returns the current total (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.value()
}

// Gauge is a float64 that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v      atomicFloat
	series string
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.set(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v.add(delta)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.value()
}

// DefBuckets is the default latency bucket layout, in seconds: roughly
// logarithmic from 1µs to 10s, sized to resolve both an in-memory
// charge (~hundreds of ns rounds to the first bucket) and a WAL fsync
// (~100–200µs) and a multi-ms columnar scan on one shared layout.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution (typically of latencies, in
// seconds). Buckets are cumulative in the exposition only; internally
// each bucket counts its own interval so Observe is a single atomic
// add. All methods are safe for concurrent use and no-ops on a nil
// receiver.
//
// A scrape racing Observe may see a bucket increment whose _sum update
// has not landed yet (the two are separate atomics); the skew is one
// observation and self-heals on the next scrape — the price of a
// lock-free hot path.
type Histogram struct {
	series  string
	bounds  []float64 // upper bounds, sorted ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one value (in the histogram's unit, conventionally
// seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records a time.Duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts by linear interpolation inside the target bucket, the same
// estimate Prometheus' histogram_quantile computes. Returns 0 when
// nothing has been observed; values landing beyond the last finite
// bound report that bound (the estimate cannot exceed the layout).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range h.bounds {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (bound-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary reports the estimated p50, p95, and p99 of the distribution.
func (h *Histogram) Summary() (p50, p95, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// metric is one registered series, renderable to the exposition format.
type metric struct {
	labels string // canonical rendered label set, "" or `a="b",c="d"`
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name (one HELP/TYPE
// header in the exposition).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series []*metric
	byKey  map[string]*metric // labels -> series
}

// Registry collects metrics and renders them. The zero value is NOT
// usable — call NewRegistry — but a nil *Registry is: every
// constructor on it returns a nil metric (whose methods no-op) and
// WritePrometheus writes nothing, so a nil registry IS the disabled
// mode.
//
// Registration is idempotent: asking for a (name, labels) pair that
// already exists returns the existing metric, so independent layers can
// share a registry without coordinating. Registering the same name
// with a different TYPE panics — that is a programming error that
// would corrupt the exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in first-registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels canonicalizes a label set (sorted by name, escaped).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, newline, and double quote per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register fetches or creates the (name, labels) series inside the
// named family, creating the family on first use. make builds the new
// metric when absent.
func (r *Registry) register(name, help, typ string, labels []Label, make func(series string) *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: map[string]*metric{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	if m, ok := f.byKey[key]; ok {
		return m
	}
	series := name
	if key != "" {
		series = name + "{" + key + "}"
	}
	m := make(series)
	m.labels = key
	f.byKey[key] = m
	f.series = append(f.series, m)
	return m
}

// NewCounter registers (or fetches) a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "counter", labels, func(series string) *metric {
		return &metric{c: &Counter{series: series}}
	})
	return m.c
}

// NewGauge registers (or fetches) a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "gauge", labels, func(series string) *metric {
		return &metric{g: &Gauge{series: series}}
	})
	return m.g
}

// NewGaugeFunc registers a gauge whose value is collected by calling fn
// at scrape time — for values that already live elsewhere (live session
// counts, ledger totals) and would be silly to mirror into an atomic.
// fn must be safe to call concurrently with anything; it runs under no
// registry lock ordering guarantees beyond "during a scrape".
// Re-registering the same (name, labels) replaces fn.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.register(name, help, "gauge", labels, func(series string) *metric {
		return &metric{}
	})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// NewHistogram registers (or fetches) a histogram series. bounds are
// the bucket upper limits in ascending order (nil = DefBuckets); the
// +Inf bucket is implicit.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, "histogram", labels, func(series string) *metric {
		h := &Histogram{
			series:  series,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1), // +1 for +Inf
		}
		return &metric{h: h}
	})
	return m.h
}

// CounterVec is a family of counters distinguished by the values of a
// fixed label name — per-route request counts, per-status totals.
// Series are created on first use and cached; With is safe for
// concurrent use and, on a nil receiver, returns a nil *Counter.
type CounterVec struct {
	reg       *Registry
	name      string
	help      string
	labelName string
	fixed     []Label

	mu     sync.Mutex
	series map[string]*Counter
}

// NewCounterVec registers a counter family keyed by one variable label
// (plus optional fixed labels shared by every series). The variable
// label's values must come from a closed set — ServeMux patterns,
// HTTP status codes, query kinds — never client-controlled strings,
// or the cardinality budget is gone.
func (r *Registry) NewCounterVec(name, help, labelName string, fixed ...Label) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{
		reg: r, name: name, help: help, labelName: labelName,
		fixed: fixed, series: map[string]*Counter{},
	}
}

// With returns the counter for one value of the variable label,
// creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	c, ok := v.series[value]
	v.mu.Unlock()
	if ok {
		return c
	}
	labels := append(append([]Label(nil), v.fixed...), Label{Name: v.labelName, Value: value})
	c = v.reg.NewCounter(v.name, v.help, labels...)
	v.mu.Lock()
	v.series[value] = c
	v.mu.Unlock()
	return c
}

// formatValue renders a sample value the Prometheus way.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text
// exposition format (version 0.0.4), families in registration order,
// series within a family in registration order. A nil registry writes
// nothing. Values are read with the same atomics updates use, so a
// scrape concurrent with traffic sees a near-consistent snapshot
// (individual series are exact; cross-series invariants may trail by
// in-flight updates).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		// Series slices only grow; snapshot under the lock.
		r.mu.Lock()
		series := append([]*metric(nil), f.series...)
		r.mu.Unlock()
		for _, m := range series {
			switch {
			case m.c != nil:
				fmt.Fprintf(&b, "%s %s\n", m.c.series, formatValue(m.c.Value()))
			case m.g != nil:
				fmt.Fprintf(&b, "%s %s\n", m.g.series, formatValue(m.g.Value()))
			case m.fn != nil:
				line := f.name
				if m.labels != "" {
					line = f.name + "{" + m.labels + "}"
				}
				fmt.Fprintf(&b, "%s %s\n", line, formatValue(m.fn()))
			case m.h != nil:
				writeHistogram(&b, f.name, m)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, m *metric) {
	h := m.h
	open, end := "{", "}"
	if m.labels != "" {
		open = "{" + m.labels + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"%s %d\n", name, open, formatValue(bound), end, cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"%s %d\n", name, open, end, cum)
	suffix := ""
	if m.labels != "" {
		suffix = "{" + m.labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.count.Load())
}
