package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndTraceAreNoOps(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("deadbeefdeadbeef")
	if tc != nil {
		t.Fatal("nil tracer Start should return nil trace")
	}
	// Every method must be callable on the nil trace.
	tc.SetKind("histogram")
	tc.SetAnalyst("a-1")
	end := tc.StartSpan("scan")
	end.End(L("rows", "10"))
	tc.Finish("/v1/x", 200)
	if tc.Slow() || tc.Duration() != 0 || tc.ID() != "" {
		t.Fatal("nil trace accessors should be zero")
	}
	if got := tr.Traces(TraceFilter{}); got != nil {
		t.Fatalf("nil tracer Traces = %v, want nil", got)
	}
	if _, ok := tr.Get("deadbeefdeadbeef"); ok {
		t.Fatal("nil tracer Get should miss")
	}
}

func TestTraceRecordsSpansAndFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 8, SlowRingSize: 2, SlowThreshold: time.Hour})
	tc := tr.Start("0123456789abcdef")
	tc.SetKind("workload")
	tc.SetAnalyst("alice")
	sp := tc.StartSpan("scan")
	time.Sleep(time.Millisecond)
	sp.End(L("rows", "100"), L("workers", "2"))
	tc.StartSpan("noise").End()
	tc.Finish("/v1/sessions/{id}/query", 200)

	v, ok := tr.Get("0123456789abcdef")
	if !ok {
		t.Fatal("finished trace not retrievable by id")
	}
	if v.Kind != "workload" || v.Analyst != "alice" || v.Route != "/v1/sessions/{id}/query" || v.Status != 200 {
		t.Fatalf("view metadata = %+v", v)
	}
	if len(v.Spans) != 2 || v.Spans[0].Name != "scan" || v.Spans[1].Name != "noise" {
		t.Fatalf("spans = %+v", v.Spans)
	}
	if v.Spans[0].Dur < time.Millisecond {
		t.Fatalf("scan span duration %v, want >= 1ms", v.Spans[0].Dur)
	}
	if len(v.Spans[0].Attrs) != 2 || v.Spans[0].Attrs[0].Value != "100" {
		t.Fatalf("scan attrs = %+v", v.Spans[0].Attrs)
	}
	if v.Duration <= 0 || v.Slow {
		t.Fatalf("duration %v slow %v, want positive and not slow", v.Duration, v.Slow)
	}

	// Filters: kind, analyst, min-duration, limit.
	if got := tr.Traces(TraceFilter{Kind: "histogram"}); len(got) != 0 {
		t.Fatalf("kind filter leaked %d traces", len(got))
	}
	if got := tr.Traces(TraceFilter{Analyst: "alice"}); len(got) != 1 {
		t.Fatalf("analyst filter found %d traces, want 1", len(got))
	}
	if got := tr.Traces(TraceFilter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter leaked %d traces", len(got))
	}
}

func TestSpansAfterFinishAreDropped(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 2})
	tc := tr.Start("00000000000000aa")
	sp := tc.StartSpan("late")
	tc.Finish("/v1/x", 200)
	sp.End() // must not mutate the published trace
	if v, _ := tr.Get("00000000000000aa"); len(v.Spans) != 0 {
		t.Fatalf("late span recorded: %+v", v.Spans)
	}
	tc.Finish("/v1/y", 500) // double finish is ignored
	if v, _ := tr.Get("00000000000000aa"); v.Route != "/v1/x" {
		t.Fatalf("double Finish overwrote route: %q", v.Route)
	}
}

func TestRingOverwritesOldestButPinsSlow(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 4, SlowRingSize: 2, SlowThreshold: time.Nanosecond})
	// One guaranteed-slow trace (threshold 1ns), then a flood of fast
	// ones on a tracer whose threshold can't be re-crossed.
	slow := tr.Start("5107000000000000")
	time.Sleep(time.Millisecond)
	slow.Finish("/v1/slow", 200)
	if !slow.Slow() {
		t.Fatal("trace over threshold not marked slow")
	}
	tr.slowThreshold = time.Hour // subsequent traces are fast
	for i := 0; i < 32; i++ {
		tc := tr.Start(fmt.Sprintf("%016x", i))
		tc.Finish("/v1/fast", 200)
	}
	// The main ring only holds the 4 newest, but the slow trace is
	// still pinned and retrievable.
	if _, ok := tr.Get("5107000000000000"); !ok {
		t.Fatal("slow trace evicted by fast flood; slow ring must pin it")
	}
	got := tr.Traces(TraceFilter{})
	if len(got) != 5 { // 4 ring slots + 1 pinned slow
		t.Fatalf("retained %d traces, want 5", len(got))
	}
	if got[0].Start.Before(got[len(got)-1].Start) {
		t.Fatal("Traces not newest-first")
	}
	if got := tr.Traces(TraceFilter{Limit: 3}); len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	tc := tr.Start("00000000000000bb")
	ctx := ContextWithTrace(context.Background(), tc)
	if TraceFrom(ctx) != tc {
		t.Fatal("TraceFrom lost the trace")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on bare context should be nil")
	}
}

func TestTracerConcurrentPublishAndScrape(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 8, SlowRingSize: 4, SlowThreshold: time.Nanosecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tc := tr.Start(fmt.Sprintf("%08x%08x", w, i))
				tc.SetKind("count")
				tc.StartSpan("scan").End(L("rows", "1"))
				tc.Finish("/v1/x", 200)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, v := range tr.Traces(TraceFilter{Kind: "count"}) {
			if v.Status != 200 || len(v.Spans) != 1 {
				t.Errorf("scraped inconsistent trace: %+v", v)
			}
		}
		tr.Get("0000000000000001")
	}
	close(stop)
	wg.Wait()
}
