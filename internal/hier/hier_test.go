package hier

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func randHist(n int, maxCount int, seed int64) *histogram.Histogram {
	rng := rand.New(rand.NewSource(seed))
	h := histogram.New(n)
	for i := 0; i < n; i++ {
		h.SetCount(i, float64(rng.Intn(maxCount)))
	}
	return h
}

func TestTreeConsistencyAfterInference(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100, 1024} {
		x := randHist(n, 100, int64(n))
		tree := Build(x, 1.0, noise.NewSource(int64(n)))
		if err := tree.ConsistencyError(); err > 1e-6 {
			t.Errorf("n=%d: consistency error %v", n, err)
		}
	}
}

func TestLeavesMatchRangeSums(t *testing.T) {
	x := randHist(64, 100, 1)
	tree := Build(x, 1.0, noise.NewSource(2))
	leaves := tree.Leaves()
	// Tree range sums must agree with summing the consistent leaves.
	for _, q := range [][2]int{{0, 63}, {5, 20}, {31, 32}, {0, 0}} {
		var leafSum float64
		for i := q[0]; i <= q[1]; i++ {
			leafSum += leaves.Count(i)
		}
		if d := math.Abs(tree.RangeSum(q[0], q[1]) - leafSum); d > 1e-6 {
			t.Errorf("range [%d,%d]: tree %v vs leaves %v", q[0], q[1],
				tree.RangeSum(q[0], q[1]), leafSum)
		}
	}
}

func TestRangeSumPanicsOnBadRange(t *testing.T) {
	tree := Build(randHist(8, 10, 3), 1, noise.NewSource(4))
	defer func() {
		if recover() == nil {
			t.Fatal("bad range did not panic")
		}
	}()
	tree.RangeSum(3, 99)
}

func TestBuildPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 did not panic")
		}
	}()
	Build(histogram.New(4), 0, noise.NewSource(1))
}

func TestTotalNearTruth(t *testing.T) {
	x := randHist(256, 500, 5)
	src := noise.NewSource(6)
	const trials = 50
	var errSum float64
	for i := 0; i < trials; i++ {
		tree := Build(x, 1.0, src)
		errSum += math.Abs(tree.RangeSum(0, 255) - x.Scale())
	}
	// The root estimate combines all levels; its error should be well
	// below the raw per-node noise (2·levels/ε = 18).
	if avg := errSum / trials; avg > 18 {
		t.Errorf("root error %v, want < raw noise scale", avg)
	}
}

// The design claim: on long-range queries the tree beats flat Laplace,
// whose error grows linearly in range length.
func TestHierBeatsLaplaceOnLongRanges(t *testing.T) {
	x := randHist(1024, 50, 7)
	src := noise.NewSource(8)
	rng := rand.New(rand.NewSource(9))
	const eps = 0.5
	// Long ranges only.
	var queries []metrics.RangeQuery
	for i := 0; i < 50; i++ {
		lo := rng.Intn(256)
		queries = append(queries, metrics.RangeQuery{Lo: lo, Hi: lo + 512})
	}
	const trials = 15
	var hierErr, lapErr float64
	for i := 0; i < trials; i++ {
		tree := Build(x, eps, src)
		for _, q := range queries {
			hierErr += math.Abs(tree.RangeSum(q.Lo, q.Hi) - q.Answer(x))
		}
		lap := mechanism.LaplaceHistogram(x, eps, src)
		for _, q := range queries {
			lapErr += math.Abs(q.Answer(lap) - q.Answer(x))
		}
	}
	if hierErr >= lapErr {
		t.Errorf("hier long-range error %v not better than Laplace %v",
			hierErr/trials/50, lapErr/trials/50)
	}
}

func TestEstimatorInterfaceShape(t *testing.T) {
	x := randHist(32, 50, 10)
	est, parts := Estimator{}.Estimate(x, 1.0, noise.NewSource(11))
	if est.Bins() != 32 || len(parts) != 32 {
		t.Fatalf("estimate bins %d, parts %d", est.Bins(), len(parts))
	}
	for i, p := range parts {
		if p.Lo != i || p.Hi != i {
			t.Fatal("partitions not singletons")
		}
	}
	for i := 0; i < est.Bins(); i++ {
		if est.Count(i) < 0 {
			t.Fatal("negative estimate after clamp")
		}
	}
	if (Estimator{}).Name() != "Hier" {
		t.Error("name wrong")
	}
}

func TestHierzZeroesEmptyBins(t *testing.T) {
	x := histogram.New(64)
	xns := histogram.New(64)
	for i := 0; i < 8; i++ {
		x.SetCount(i, 400)
		xns.SetCount(i, 350)
	}
	out := Hierz(x, xns, 1.0, 0.1, noise.NewSource(12))
	for i := 8; i < 64; i++ {
		if out.Count(i) != 0 {
			t.Fatalf("empty bin %d got %v", i, out.Count(i))
		}
	}
}

func TestHierzBeatsHierOnSparseData(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := histogram.New(512)
	xns := histogram.New(512)
	for i := 0; i < 25; i++ {
		b := rng.Intn(512)
		c := float64(rng.Intn(300) + 100)
		x.SetCount(b, c)
		xns.SetCount(b, c*0.9)
	}
	src := noise.NewSource(14)
	const eps = 0.1
	const trials = 10
	var plain, withZ float64
	for i := 0; i < trials; i++ {
		est, _ := Estimator{}.Estimate(x, eps, src)
		plain += metrics.MRE(x, est, 1)
		withZ += metrics.MRE(x, Hierz(x, xns, eps, 0.1, src), 1)
	}
	if withZ >= plain {
		t.Errorf("Hierz MRE %v not better than Hier %v", withZ/trials, plain/trials)
	}
}

// Property: inference keeps the tree consistent for any domain size.
func TestConsistencyQuick(t *testing.T) {
	f := func(sizeRaw, seed uint8) bool {
		n := int(sizeRaw)%300 + 1
		x := randHist(n, 200, int64(seed))
		tree := Build(x, 0.5, noise.NewSource(int64(seed)+31))
		return tree.ConsistencyError() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
