// Package hier implements the hierarchical histogram mechanism of Hay,
// Rastogi, Miklau & Suciu ("Boosting the accuracy of differentially
// private histograms through consistency"), another of the classic DP
// algorithms in the DPBench suite the paper benchmarks against. A binary
// tree of interval counts is released with Laplace noise and then made
// consistent by constrained inference — the least-squares estimate that
// makes every parent equal the sum of its children. Consistency both
// reduces variance and makes range queries cheap: any range decomposes
// into O(log n) tree nodes, so long-range errors grow logarithmically
// instead of linearly.
//
// Like every ε-DP mechanism, Hier is also (P, ε)-OSDP for any policy
// (Lemma 3.1); Hierz applies the §5.2 recipe for the usual zero-set gain.
package hier

import (
	"math"

	"osdp/internal/core"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// node is one interval of the tree.
type node struct {
	lo, hi   int
	children []int // indices into the tree slice
	noisy    float64
	z, u     float64 // upward / downward inference values
}

// Tree is a released hierarchical estimate supporting consistent point and
// range queries.
type Tree struct {
	nodes  []node
	levels int
	bins   int
}

// Build releases an eps-DP hierarchical estimate of x. Each level of the
// tree receives an equal share of ε; a record affects one interval per
// level with sensitivity 2, so per-node noise is Lap(2·levels/ε).
func Build(x *histogram.Histogram, eps float64, src noise.Source) *Tree {
	if eps <= 0 {
		panic("hier: eps must be positive")
	}
	n := x.Bins()
	t := &Tree{bins: n}
	t.levels = 1
	for 1<<(t.levels-1) < n {
		t.levels++
	}
	scale := 2 * float64(t.levels) / eps

	// Build the interval tree depth-first.
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		idx := len(t.nodes)
		t.nodes = append(t.nodes, node{lo: lo, hi: hi})
		t.nodes[idx].noisy = x.RangeSum(lo, hi) + noise.Laplace(src, scale)
		if lo < hi {
			mid := lo + (hi-lo)/2
			left := build(lo, mid)
			right := build(mid+1, hi)
			t.nodes[idx].children = append(t.nodes[idx].children, left, right)
		}
		return idx
	}
	build(0, n-1)
	t.infer()
	return t
}

// infer runs Hay et al.'s two-pass constrained inference: an upward pass
// combining each node's own noisy count with its children's aggregated
// estimates, then a downward pass redistributing the parent/child
// inconsistency equally.
func (t *Tree) infer() {
	var up func(idx int) (z float64, depth int)
	up = func(idx int) (float64, int) {
		nd := &t.nodes[idx]
		if len(nd.children) == 0 {
			nd.z = nd.noisy
			return nd.z, 1
		}
		var childSum float64
		maxDepth := 0
		for _, c := range nd.children {
			cz, d := up(c)
			childSum += cz
			if d > maxDepth {
				maxDepth = d
			}
		}
		k := maxDepth + 1
		b := float64(len(nd.children))
		// Weight of the node's own observation (Hay et al.): for a
		// complete b-ary subtree of k levels, α = (b^k − b^{k−1})/(b^k − 1).
		alpha := (math.Pow(b, float64(k)) - math.Pow(b, float64(k-1))) /
			(math.Pow(b, float64(k)) - 1)
		nd.z = alpha*nd.noisy + (1-alpha)*childSum
		return nd.z, k
	}
	up(0)

	var down func(idx int, u float64)
	down = func(idx int, u float64) {
		nd := &t.nodes[idx]
		nd.u = u
		if len(nd.children) == 0 {
			return
		}
		var childZSum float64
		for _, c := range nd.children {
			childZSum += t.nodes[c].z
		}
		adj := (u - childZSum) / float64(len(nd.children))
		for _, c := range nd.children {
			down(c, t.nodes[c].z+adj)
		}
	}
	down(0, t.nodes[0].z)
}

// Leaves returns the consistent per-bin estimate.
func (t *Tree) Leaves() *histogram.Histogram {
	h := histogram.New(t.bins)
	for _, nd := range t.nodes {
		if len(nd.children) == 0 {
			h.SetCount(nd.lo, nd.u)
		}
	}
	return h
}

// RangeSum answers an inclusive range query from the consistent tree,
// using the canonical decomposition into maximal covered nodes.
func (t *Tree) RangeSum(lo, hi int) float64 {
	if lo < 0 || hi >= t.bins || lo > hi {
		panic("hier: range out of bounds")
	}
	var walk func(idx int) float64
	walk = func(idx int) float64 {
		nd := &t.nodes[idx]
		if nd.hi < lo || nd.lo > hi {
			return 0
		}
		if nd.lo >= lo && nd.hi <= hi {
			return nd.u
		}
		var s float64
		for _, c := range nd.children {
			s += walk(c)
		}
		return s
	}
	return walk(0)
}

// ConsistencyError reports the largest |parent − Σchildren| discrepancy of
// the inferred estimate; after constrained inference it should be ~0 up to
// floating-point error. Exposed for tests.
func (t *Tree) ConsistencyError() float64 {
	var worst float64
	for _, nd := range t.nodes {
		if len(nd.children) == 0 {
			continue
		}
		var s float64
		for _, c := range nd.children {
			s += t.nodes[c].u
		}
		if d := math.Abs(nd.u - s); d > worst {
			worst = d
		}
	}
	return worst
}

// Estimate releases the consistent leaf histogram, satisfying
// core.PartitionedEstimator's shape with singleton partitions (the tree
// has no bucket structure to rescale within).
type Estimator struct{}

// Name identifies the algorithm in reports.
func (Estimator) Name() string { return "Hier" }

// Estimate implements core.PartitionedEstimator.
func (Estimator) Estimate(x *histogram.Histogram, eps float64, src noise.Source) (*histogram.Histogram, []core.Partition) {
	t := Build(x, eps, src)
	parts := make([]core.Partition, x.Bins())
	for i := range parts {
		parts[i] = core.Partition{Lo: i, Hi: i}
	}
	return t.Leaves().ClampNonNegative(), parts
}

// Hierz upgrades Hier to (P, ε)-OSDP via the §5.2 recipe. With singleton
// partitions the post-processing reduces to zeroing the detected bins.
func Hierz(x, xns *histogram.Histogram, eps, rho float64, src noise.Source) *histogram.Histogram {
	return core.Recipe(Estimator{}, x, xns, eps, core.RecipeConfig{Rho: rho}, src)
}
