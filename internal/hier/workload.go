package hier

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Fit adapts Hier to core.WorkloadEstimator. Constrained inference
// makes every parent equal the sum of its children, so sums of the
// consistent leaves reproduce the tree's canonical range
// decompositions exactly — a dense leaf release loses nothing
// relative to answering from the tree, and it is exactly what the
// synopsis answers ranges from. Unlike Estimate, the leaves are NOT
// clamped non-negative: zeroing negative leaves would break the
// parent/child identity and turn the cancelling range noise into a
// systematic positive bias that grows with range length — the very
// error the hierarchy exists to avoid. (Individual range answers may
// therefore come back slightly negative; that is the unbiased
// estimate.) 2-D domains are fitted over the flattened row-major
// vector. Returns errors instead of panicking: the serving layer
// calls it after the budget is charged.
func (Estimator) Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("hier: eps must be positive, got %g", eps)
	}
	return Build(x, eps, src).Leaves(), nil
}
