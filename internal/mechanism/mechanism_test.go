package mechanism

import (
	"math"
	"testing"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

func TestLaplaceHistogramUnbiased(t *testing.T) {
	x := histogram.FromCounts([]float64{100})
	src := noise.NewSource(1)
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += LaplaceHistogram(x, 1, src).Count(0)
	}
	mean := sum / trials
	if math.Abs(mean-100) > 0.1 {
		t.Errorf("mean %v, want ~100", mean)
	}
}

func TestLaplaceHistogramErrorScale(t *testing.T) {
	// Expected per-bin absolute error is sensitivity/ε = 2/ε.
	x := histogram.New(1)
	src := noise.NewSource(2)
	const eps = 0.5
	const trials = 50000
	var absSum float64
	for i := 0; i < trials; i++ {
		absSum += math.Abs(LaplaceHistogram(x, eps, src).Count(0))
	}
	got := absSum / trials
	want := 2 / eps
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mean abs error %v, want ~%v", got, want)
	}
}

func TestLaplaceHistogramDoesNotMutateInput(t *testing.T) {
	x := histogram.FromCounts([]float64{7, 7})
	LaplaceHistogram(x, 1, noise.NewSource(3))
	if x.Count(0) != 7 || x.Count(1) != 7 {
		t.Error("input mutated")
	}
}

func TestLaplacePanics(t *testing.T) {
	x := histogram.New(1)
	for _, f := range []func(){
		func() { LaplaceHistogram(x, 0, noise.NewSource(1)) },
		func() { LaplaceHistogramWithSensitivity(x, 1, 0, noise.NewSource(1)) },
		func() { Suppress(x, 0, noise.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSuppressNoiseShrinksWithTau(t *testing.T) {
	// Suppress adds Lap(2/τ): noise magnitude at τ=100 should be ~10x
	// smaller than at τ=10.
	xns := histogram.New(1)
	src := noise.NewSource(4)
	const trials = 30000
	absAt := func(tau float64) float64 {
		var s float64
		for i := 0; i < trials; i++ {
			s += math.Abs(Suppress(xns, tau, src).Count(0))
		}
		return s / trials
	}
	e10, e100 := absAt(10), absAt(100)
	ratio := e10 / e100
	if math.Abs(ratio-10) > 1 {
		t.Errorf("noise ratio τ=10 vs τ=100: %v, want ~10", ratio)
	}
}

func TestExpectedAbsLaplace(t *testing.T) {
	if ExpectedAbsLaplace(3.5) != 3.5 {
		t.Error("E|Lap(b)| should equal b")
	}
}

func TestTruncateGrams(t *testing.T) {
	users := []UserGrams{
		{"a", "b", "c", "d"},
		{"x"},
		{},
	}
	out := TruncateGrams(users, 2)
	if len(out[0]) != 2 || out[0][0] != "a" || out[0][1] != "b" {
		t.Errorf("truncated = %v", out[0])
	}
	if len(out[1]) != 1 || len(out[2]) != 0 {
		t.Error("short trajectories altered")
	}
	// Original must be untouched.
	if len(users[0]) != 4 {
		t.Error("TruncateGrams mutated input")
	}
}

func TestTruncateGramsPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	TruncateGrams(nil, 0)
}

func TestGramCountsDistinctUsers(t *testing.T) {
	users := []UserGrams{
		{"a>b", "a>b", "b>c"}, // duplicate within a user counts once
		{"a>b"},
	}
	c := GramCounts(users)
	if c["a>b"] != 2 {
		t.Errorf("a>b count = %v, want 2 (distinct users)", c["a>b"])
	}
	if c["b>c"] != 1 {
		t.Errorf("b>c count = %v", c["b>c"])
	}
}

func TestNGramLaplaceClampsAndPerturbs(t *testing.T) {
	users := make([]UserGrams, 100)
	for i := range users {
		users[i] = UserGrams{"g1", "g2"}
	}
	src := noise.NewSource(5)
	est := NGramLaplace(users, 2, 1.0, src)
	for k, v := range est {
		if v < 0 {
			t.Errorf("negative released count %v for %q", v, k)
		}
	}
	// With 100 users per gram and eps=1, both grams should survive.
	if est["g1"] < 50 || est["g2"] < 50 {
		t.Errorf("heavy grams suppressed: %v", est)
	}
}

func TestNGramLaplaceTruncationBias(t *testing.T) {
	// k=1 keeps only the first gram; g2's released count should be near 0.
	users := make([]UserGrams, 200)
	for i := range users {
		users[i] = UserGrams{"g1", "g2"}
	}
	src := noise.NewSource(6)
	est := NGramLaplace(users, 1, 1.0, src)
	if est["g1"] < 100 {
		t.Errorf("g1 = %v, want ~200", est["g1"])
	}
	if est["g2"] > 50 {
		t.Errorf("g2 = %v, want near 0 (truncated away)", est["g2"])
	}
}

func TestOptimalTruncation(t *testing.T) {
	// Users carry 3 grams each; with plenty of users, k=3 should win over
	// k=1 because truncation bias dominates the extra noise.
	users := make([]UserGrams, 300)
	for i := range users {
		users[i] = UserGrams{"a", "b", "c"}
	}
	trueCounts := GramCounts(users)
	src := noise.NewSource(7)
	bestK, bestMRE := OptimalTruncation(users, trueCounts, 1000, 1.0, 4, 5, src)
	if bestK < 2 {
		t.Errorf("bestK = %d, want >= 2 (truncation bias dominates)", bestK)
	}
	if bestMRE <= 0 || math.IsInf(bestMRE, 0) {
		t.Errorf("bestMRE = %v", bestMRE)
	}
}

func TestOptimalTruncationPanicsOnBadKMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kMax=0 did not panic")
		}
	}()
	OptimalTruncation(nil, nil, 10, 1, 0, 1, noise.NewSource(1))
}
