// Package mechanism implements the differentially private and personalized
// differentially private baselines the paper compares OSDP against: the
// Laplace mechanism for histograms (Definition 2.5), its truncated variant
// for high-sensitivity n-gram release (§6.3.2, following the truncation
// technique of Kasiviswanathan et al.), and the PDP Suppress threshold
// algorithm (§3.4) that motivates the exclusion attack.
package mechanism

import (
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// HistogramSensitivity is the L1 sensitivity of a full histogram under the
// bounded DP model the paper adopts: replacing one record moves one unit of
// count between two bins, changing the vector by 2.
const HistogramSensitivity = 2.0

// LaplaceHistogram releases an ε-DP estimate of histogram x by adding
// i.i.d. Lap(sensitivity/ε) noise per bin with the standard histogram
// sensitivity of 2.
func LaplaceHistogram(x *histogram.Histogram, eps float64, src noise.Source) *histogram.Histogram {
	return LaplaceHistogramWithSensitivity(x, eps, HistogramSensitivity, src)
}

// LaplaceHistogramWithSensitivity is LaplaceHistogram with an explicit L1
// sensitivity, used when the released statistic is not a plain histogram
// (e.g. truncated n-gram counts with sensitivity 2k).
func LaplaceHistogramWithSensitivity(x *histogram.Histogram, eps, sensitivity float64, src noise.Source) *histogram.Histogram {
	if eps <= 0 {
		panic("mechanism: Laplace requires eps > 0")
	}
	if sensitivity <= 0 {
		panic("mechanism: non-positive sensitivity")
	}
	out := x.Clone()
	b := sensitivity / eps
	for i := 0; i < out.Bins(); i++ {
		out.Add(i, noise.Laplace(src, b))
	}
	return out
}

// ExpectedAbsLaplace is E|Lap(b)| = b: the expected per-bin absolute error
// of the Laplace mechanism. Experiment harnesses use it to account
// analytically for the error on zero-count bins that are too numerous to
// materialise (the paper does the same for n-gram domains of size 64ⁿ).
func ExpectedAbsLaplace(scale float64) float64 { return scale }

// Suppress is the PDP threshold algorithm of §3.4 applied to histogram
// release. Under a policy-derived personalization, sensitive records carry
// a small privacy parameter and non-sensitive records carry ε = ∞. With
// threshold τ above the sensitive records' parameter, Suppress drops every
// sensitive record and runs a τ-DP Laplace mechanism on the rest:
//
//	Suppress(xns, τ) = xns + Lap(2/τ)^d.
//
// Suppress satisfies PDP but NOT (P, ε)-OSDP: by Theorem 3.4 it offers only
// τ-freedom from exclusion attacks, which is why the paper's Fig 10 notes
// that its competitive utility at τ=100 costs 100× weaker protection.
func Suppress(xns *histogram.Histogram, tau float64, src noise.Source) *histogram.Histogram {
	if tau <= 0 {
		panic("mechanism: Suppress requires tau > 0")
	}
	return LaplaceHistogramWithSensitivity(xns, tau, HistogramSensitivity, src)
}
