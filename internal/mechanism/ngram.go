package mechanism

import (
	"math"

	"osdp/internal/histogram"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// This file implements the truncated Laplace mechanism for n-gram histogram
// release (§6.3.2). An n-gram histogram over trajectories counts, per
// n-gram, the number of distinct users whose trajectory contains it. A
// single user can contribute to up to 64ⁿ n-grams, so the naive sensitivity
// is the whole domain; truncation caps each user at k n-grams, reducing the
// sensitivity to 2k at the cost of undercounting (bias). LM T1 is the k=1
// instance; LM T* picks the error-optimal k non-privately, giving the
// strongest possible baseline (the paper notes LM T* does not satisfy DP).

// UserGrams is the multiset of n-grams appearing in one user's trajectory.
type UserGrams []string

// TruncateGrams caps each user's contribution at k n-grams, keeping the
// first k in trajectory order (deterministic, as required for a
// well-defined sensitivity bound).
func TruncateGrams(users []UserGrams, k int) []UserGrams {
	if k <= 0 {
		panic("mechanism: truncation parameter must be positive")
	}
	out := make([]UserGrams, len(users))
	for i, g := range users {
		if len(g) > k {
			out[i] = g[:k]
		} else {
			out[i] = g
		}
	}
	return out
}

// GramCounts aggregates per-user n-grams into distinct-user counts: a user
// contributes at most 1 to each n-gram they carry (the paper counts
// distinct users per n-gram).
func GramCounts(users []UserGrams) histogram.SparseCounts {
	out := make(histogram.SparseCounts)
	for _, g := range users {
		seen := make(map[string]bool, len(g))
		for _, key := range g {
			if !seen[key] {
				seen[key] = true
				out[key]++
			}
		}
	}
	return out
}

// NGramLaplace releases ε-DP n-gram counts using truncation parameter k:
// counts of the truncated data plus Lap(2k/ε) noise. Only n-grams with
// non-zero truncated counts are materialised; the (enormous) zero tail is
// handled analytically by the error metrics, mirroring the paper's
// experimental setup. Negative noisy counts are clamped to zero, a standard
// post-processing step.
func NGramLaplace(users []UserGrams, k int, eps float64, src noise.Source) histogram.SparseCounts {
	if eps <= 0 {
		panic("mechanism: NGramLaplace requires eps > 0")
	}
	truncated := TruncateGrams(users, k)
	counts := GramCounts(truncated)
	b := 2 * float64(k) / eps
	out := make(histogram.SparseCounts, len(counts))
	for key, c := range counts {
		v := c + noise.Laplace(src, b)
		if v > 0 {
			out[key] = v
		}
	}
	return out
}

// OptimalTruncation searches k ∈ [1, kMax] for the truncation parameter
// minimising the realised MRE (metrics.SparseMRE) against the true counts —
// the LM T* baseline. The search inspects the true data, so the resulting
// mechanism is NOT differentially private; it exists to lower-bound the
// error any truncation choice could achieve (§6.3.2).
func OptimalTruncation(users []UserGrams, trueCounts histogram.SparseCounts, domainSize float64, eps float64, kMax int, trials int, src noise.Source) (bestK int, bestMRE float64) {
	if kMax < 1 {
		panic("mechanism: kMax must be >= 1")
	}
	bestK, bestMRE = 1, math.Inf(1)
	for k := 1; k <= kMax; k++ {
		var total float64
		for t := 0; t < trials; t++ {
			est := NGramLaplace(users, k, eps, src)
			total += metrics.SparseMRE(trueCounts, est, domainSize, 1.0)
		}
		if avg := total / float64(trials); avg < bestMRE {
			bestK, bestMRE = k, avg
		}
	}
	return bestK, bestMRE
}
