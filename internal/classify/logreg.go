// Package classify implements the classification substrate of the paper's
// first experiment (§6.2, §6.3.1): L2-regularised logistic regression
// trained by gradient descent, the ObjDP baseline (differentially private
// empirical risk minimisation via objective perturbation, Chaudhuri,
// Monteleoni & Sarwate, JMLR 2011), ROC/AUC evaluation, and stratified
// k-fold cross-validation.
package classify

import (
	"fmt"
	"math"

	"osdp/internal/noise"
)

// Dataset is a design matrix with binary labels. Rows of X are feature
// vectors; Y[i] ∈ {0, 1}.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks structural consistency.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("classify: %d rows vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("classify: empty dataset")
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("classify: row %d has %d features, want %d", i, len(row), dim)
		}
		if d.Y[i] != 0 && d.Y[i] != 1 {
			return fmt.Errorf("classify: label %d at row %d not in {0,1}", d.Y[i], i)
		}
	}
	return nil
}

// Dim returns the feature dimension.
func (d Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// NormalizeRows scales every feature vector to L2 norm at most 1 — the
// precondition of the ObjDP privacy analysis ("we normalized feature
// vectors to ensure the norm is bounded by 1", §6.3.1). It returns a new
// dataset sharing labels.
func (d Dataset) NormalizeRows() Dataset {
	out := Dataset{X: make([][]float64, len(d.X)), Y: d.Y}
	for i, row := range d.X {
		var norm float64
		for _, v := range row {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		nr := make([]float64, len(row))
		if norm > 1 {
			for j, v := range row {
				nr[j] = v / norm
			}
		} else {
			copy(nr, row)
		}
		out.X[i] = nr
	}
	return out
}

// Model is a trained logistic regression classifier.
type Model struct {
	// W are the feature weights; Bias the intercept.
	W    []float64
	Bias float64
}

// Prob returns P(y=1 | x) under the model.
func (m Model) Prob(x []float64) float64 {
	z := m.Bias
	for j, w := range m.W {
		z += w * x[j]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainConfig controls gradient-descent training.
type TrainConfig struct {
	// Lambda is the L2 regularisation strength (on the mean-loss scale).
	Lambda float64
	// LearningRate is the gradient step size.
	LearningRate float64
	// Epochs is the number of full-gradient iterations.
	Epochs int
	// FitBias controls whether an unregularised intercept is learned.
	FitBias bool
}

// DefaultTrainConfig returns the configuration used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Lambda: 1e-3, LearningRate: 0.5, Epochs: 200, FitBias: true}
}

// Train fits L2-regularised logistic regression by full-batch gradient
// descent, minimising
//
//	J(w) = (1/n) Σ log(1 + exp(−ỹᵢ·wᵀxᵢ)) + (λ/2)‖w‖²,  ỹ ∈ {−1, +1}.
func Train(d Dataset, cfg TrainConfig) (Model, error) {
	if err := d.Validate(); err != nil {
		return Model{}, err
	}
	return trainPerturbed(d, cfg, nil, 0), nil
}

// trainPerturbed minimises J(w) + bᵀw/n + (extraReg/2)‖w‖², the shared core
// of Train and ObjDP (where b is the perturbation vector).
func trainPerturbed(d Dataset, cfg TrainConfig, b []float64, extraReg float64) Model {
	n := float64(d.Len())
	dim := d.Dim()
	w := make([]float64, dim)
	grad := make([]float64, dim)
	var bias, gradBias float64

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gradBias = 0
		for i, x := range d.X {
			z := bias
			for j, wj := range w {
				z += wj * x[j]
			}
			// d/dz log(1+exp(-y z)) with y ∈ {-1, +1} is (sigmoid(z) - t)
			// where t ∈ {0, 1}.
			e := sigmoid(z) - float64(d.Y[i])
			for j, xj := range x {
				grad[j] += e * xj
			}
			gradBias += e
		}
		reg := cfg.Lambda + extraReg
		for j := range w {
			g := grad[j]/n + reg*w[j]
			if b != nil {
				g += b[j] / n
			}
			w[j] -= cfg.LearningRate * g
		}
		if cfg.FitBias {
			bias -= cfg.LearningRate * gradBias / n
		}
	}
	return Model{W: w, Bias: bias}
}

// ObjDP trains logistic regression with ε-differential privacy by
// objective perturbation (CMS11, Algorithm 2 with the logistic loss, for
// which the loss curvature bound is c = 1/4 and feature norms must be ≤ 1):
//
//	ε' = ε − 2·ln(1 + c/(n·λ));  if ε' ≤ 0, add extra regularisation
//	Δ = c/(n·(e^{ε/4} − 1)) − λ and use ε' = ε/2.
//	Draw ‖b‖ ~ Gamma(dim, 2/ε′), direction uniform; minimise
//	J(w) + bᵀw/n + (Δ/2)‖w‖².
//
// The caller must pass rows with L2 norm ≤ 1 (use NormalizeRows);
// violating that voids the DP guarantee. The bias term is disabled: the
// CMS11 analysis covers only the regularised weights.
func ObjDP(d Dataset, eps float64, cfg TrainConfig, src noise.Source) (Model, error) {
	if err := d.Validate(); err != nil {
		return Model{}, err
	}
	if eps <= 0 {
		return Model{}, fmt.Errorf("classify: ObjDP requires eps > 0")
	}
	if cfg.Lambda <= 0 {
		return Model{}, fmt.Errorf("classify: ObjDP requires lambda > 0")
	}
	const c = 0.25 // logistic-loss curvature bound
	n := float64(d.Len())
	epsPrime := eps - 2*math.Log(1+c/(n*cfg.Lambda))
	extraReg := 0.0
	if epsPrime <= 0 {
		extraReg = c/(n*(math.Exp(eps/4)-1)) - cfg.Lambda
		epsPrime = eps / 2
	}
	dim := d.Dim()
	b := gammaDirectionVector(dim, 2/epsPrime, src)
	cfg.FitBias = false
	return trainPerturbed(d, cfg, b, extraReg), nil
}

// gammaDirectionVector samples a vector with ‖b‖ ~ Gamma(dim, scale) and a
// uniformly random direction, the noise distribution of objective
// perturbation (density ∝ exp(−‖b‖/scale)).
func gammaDirectionVector(dim int, scale float64, src noise.Source) []float64 {
	// Gamma with integer shape = sum of dim exponentials.
	var norm float64
	for i := 0; i < dim; i++ {
		norm += noise.Exponential(src, 1/scale)
	}
	// Uniform direction: normalised Gaussian vector.
	dir := make([]float64, dim)
	var dn float64
	for i := range dir {
		dir[i] = noise.Gaussian(src, 1)
		dn += dir[i] * dir[i]
	}
	dn = math.Sqrt(dn)
	if dn == 0 {
		dn = 1
	}
	for i := range dir {
		dir[i] = dir[i] / dn * norm
	}
	return dir
}
