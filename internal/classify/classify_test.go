package classify

import (
	"math"
	"math/rand"
	"testing"

	"osdp/internal/noise"
)

// synthetic linearly separable-ish data: y = 1 iff x1 + x2 > 1 with noise.
func synthData(n int, rng *rand.Rand, flip float64) Dataset {
	d := Dataset{X: make([][]float64, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		y := 0
		if x1+x2 > 1 {
			y = 1
		}
		if rng.Float64() < flip {
			y = 1 - y
		}
		d.X[i] = []float64{x1, x2}
		d.Y[i] = y
	}
	return d
}

func TestValidate(t *testing.T) {
	good := Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Dataset{
		{X: [][]float64{{1}}, Y: []int{0, 1}}, // length mismatch
		{},                                    // empty
		{X: [][]float64{{1, 2}, {3}}, Y: []int{0, 1}}, // ragged
		{X: [][]float64{{1}, {2}}, Y: []int{0, 2}},    // bad label
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid dataset accepted", i)
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	d := Dataset{X: [][]float64{{3, 4}, {0.1, 0.1}}, Y: []int{0, 1}}
	n := d.NormalizeRows()
	if norm := math.Hypot(n.X[0][0], n.X[0][1]); math.Abs(norm-1) > 1e-12 {
		t.Errorf("row 0 norm = %v", norm)
	}
	// Rows already inside the unit ball are unchanged.
	if n.X[1][0] != 0.1 {
		t.Error("small row rescaled")
	}
	// Original untouched.
	if d.X[0][0] != 3 {
		t.Error("NormalizeRows mutated input")
	}
}

func TestTrainLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := synthData(600, rng, 0.02)
	m, err := Train(d, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := synthData(400, rng, 0)
	scores := make([]float64, test.Len())
	for i, x := range test.X {
		scores[i] = m.Prob(x)
	}
	if auc := AUC(scores, test.Y); auc < 0.95 {
		t.Errorf("AUC = %v, want > 0.95 on separable data", auc)
	}
}

func TestTrainRejectsInvalid(t *testing.T) {
	if _, err := Train(Dataset{}, DefaultTrainConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}

func TestObjDPHighEpsApproachesNonPrivate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := synthData(800, rng, 0.02).NormalizeRows()
	cfg := DefaultTrainConfig()
	m, err := ObjDP(d, 100, cfg, noise.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	test := synthData(400, rng, 0).NormalizeRows()
	scores := make([]float64, test.Len())
	for i, x := range test.X {
		scores[i] = m.Prob(x)
	}
	// Row normalization distorts the x1+x2>1 boundary, so the ceiling is
	// below the raw-feature AUC; 0.85 still shows the noise is negligible.
	if auc := AUC(scores, test.Y); auc < 0.85 {
		t.Errorf("high-eps ObjDP AUC = %v, want > 0.85", auc)
	}
}

func TestObjDPLowEpsDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := synthData(300, rng, 0.02).NormalizeRows()
	cfg := DefaultTrainConfig()
	test := synthData(400, rng, 0).NormalizeRows()
	// Average over repeats: tiny eps should be much worse than non-private.
	const reps = 10
	var privAUC float64
	for r := 0; r < reps; r++ {
		m, err := ObjDP(d, 0.01, cfg, noise.NewSource(int64(r)))
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, test.Len())
		for i, x := range test.X {
			scores[i] = m.Prob(x)
		}
		privAUC += AUC(scores, test.Y)
	}
	privAUC /= reps
	if privAUC > 0.85 {
		t.Errorf("eps=0.01 ObjDP AUC = %v; expected heavy degradation", privAUC)
	}
}

func TestObjDPErrors(t *testing.T) {
	d := synthData(50, rand.New(rand.NewSource(5)), 0)
	cfg := DefaultTrainConfig()
	if _, err := ObjDP(d, 0, cfg, noise.NewSource(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	cfg.Lambda = 0
	if _, err := ObjDP(d, 1, cfg, noise.NewSource(1)); err == nil {
		t.Error("lambda=0 accepted")
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	if auc := AUC(scores, labels); auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	inverted := []int{0, 0, 1, 1}
	if auc := AUC(scores, inverted); auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
}

func TestAUCTiesGiveHalf(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	if auc := AUC(scores, labels); auc != 0.5 {
		t.Errorf("all-ties AUC = %v", auc)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if auc := AUC([]float64{0.1, 0.9}, []int{1, 1}); auc != 0.5 {
		t.Errorf("single-class AUC = %v", auc)
	}
}

func TestAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	AUC([]float64{1}, []int{1, 0})
}

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scores := make([]float64, 100)
	labels := make([]int, 100)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	pts := ROC(scores, labels)
	if pts[0] != (ROCPoint{0, 0}) {
		t.Errorf("first point %v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("last point %v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

func TestCrossValidateAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := synthData(500, rng, 0.02)
	cfg := DefaultTrainConfig()
	auc, err := CrossValidateAUC(d, 5, func(train Dataset) (Scorer, error) {
		return Train(train, cfg)
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.9 {
		t.Errorf("CV AUC = %v, want > 0.9", auc)
	}
}

func TestCrossValidateBadFolds(t *testing.T) {
	d := synthData(10, rand.New(rand.NewSource(8)), 0)
	if _, err := CrossValidateAUC(d, 1, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidateAUC(d, 11, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k>n accepted")
	}
}

func TestStratifiedFoldsBalanced(t *testing.T) {
	y := make([]int, 100)
	for i := 90; i < 100; i++ {
		y[i] = 1 // 10% positives
	}
	folds := stratifiedFolds(y, 5, rand.New(rand.NewSource(9)))
	posPerFold := make([]int, 5)
	sizePerFold := make([]int, 5)
	for i, f := range folds {
		sizePerFold[f]++
		if y[i] == 1 {
			posPerFold[f]++
		}
	}
	for f := 0; f < 5; f++ {
		if posPerFold[f] != 2 {
			t.Errorf("fold %d has %d positives, want 2", f, posPerFold[f])
		}
		if sizePerFold[f] != 20 {
			t.Errorf("fold %d has %d examples, want 20", f, sizePerFold[f])
		}
	}
}

func TestRandomBaselineAUCNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := synthData(400, rng, 0)
	var sum float64
	const reps = 20
	for r := 0; r < reps; r++ {
		auc, err := CrossValidateAUC(d, 4, RandomBaseline(rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += auc
	}
	mean := sum / reps
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("random baseline mean AUC = %v, want ~0.5", mean)
	}
}

func TestGammaDirectionVectorNorm(t *testing.T) {
	src := noise.NewSource(11)
	const dim = 8
	const scale = 2.0
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		b := gammaDirectionVector(dim, scale, src)
		var n float64
		for _, v := range b {
			n += v * v
		}
		sum += math.Sqrt(n)
	}
	mean := sum / trials
	want := dim * scale // Gamma(dim, scale) mean
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("mean ‖b‖ = %v, want ~%v", mean, want)
	}
}
