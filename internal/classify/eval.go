package classify

import (
	"fmt"
	"math/rand"
	"sort"
)

// AUC computes the area under the ROC curve from predicted scores and true
// binary labels, using the rank statistic (Mann–Whitney U) formulation with
// midrank tie handling. The paper reports 1 − AUC as classification error.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("classify: %d scores vs %d labels", len(scores), len(labels)))
	}
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5 // degenerate: no ranking information
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })

	// Sum of positive midranks.
	var rankSum float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if ps[k].y == 1 {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ROCPoint is one point of an ROC curve.
type ROCPoint struct {
	FPR, TPR float64
}

// ROC returns the ROC curve points for the given scores and labels, sorted
// by increasing FPR, with the (0,0) and (1,1) endpoints included.
func ROC(scores []float64, labels []int) []ROCPoint {
	if len(scores) != len(labels) {
		panic("classify: scores/labels length mismatch")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	nPos, nNeg := 0, 0
	for _, y := range labels {
		if y == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	pts := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		// Process tied scores together.
		j := k
		for j < len(idx) && scores[idx[j]] == scores[idx[k]] {
			if labels[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		k = j
		var fpr, tpr float64
		if nNeg > 0 {
			fpr = float64(fp) / float64(nNeg)
		}
		if nPos > 0 {
			tpr = float64(tp) / float64(nPos)
		}
		pts = append(pts, ROCPoint{fpr, tpr})
	}
	if last := pts[len(pts)-1]; last.FPR != 1 || last.TPR != 1 {
		pts = append(pts, ROCPoint{1, 1})
	}
	return pts
}

// Scorer assigns a score (higher = more likely positive) to a feature
// vector. Model implements it; the random baseline implements it without
// looking at the features.
type Scorer interface {
	Prob(x []float64) float64
}

// Trainer produces a scorer from a training fold; it abstracts over Train,
// ObjDP, and the random baseline for cross-validated comparison.
type Trainer func(train Dataset) (Scorer, error)

// CrossValidateAUC runs stratified k-fold cross-validation and returns the
// mean AUC of the trainer's models on held-out folds. Stratification keeps
// each fold's positive rate close to the global rate, which matters for the
// heavily imbalanced resident/visitor task (~8% positives).
func CrossValidateAUC(d Dataset, k int, trainer Trainer, rng *rand.Rand) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if k < 2 || k > d.Len() {
		return 0, fmt.Errorf("classify: bad fold count %d for %d examples", k, d.Len())
	}
	folds := stratifiedFolds(d.Y, k, rng)
	var sum float64
	for f := 0; f < k; f++ {
		var train, test Dataset
		for i := range d.X {
			if folds[i] == f {
				test.X = append(test.X, d.X[i])
				test.Y = append(test.Y, d.Y[i])
			} else {
				train.X = append(train.X, d.X[i])
				train.Y = append(train.Y, d.Y[i])
			}
		}
		model, err := trainer(train)
		if err != nil {
			return 0, fmt.Errorf("classify: fold %d: %w", f, err)
		}
		scores := make([]float64, test.Len())
		for i, x := range test.X {
			scores[i] = model.Prob(x)
		}
		sum += AUC(scores, test.Y)
	}
	return sum / float64(k), nil
}

// stratifiedFolds assigns each example a fold in [0, k), shuffling within
// each class so folds preserve the class ratio.
func stratifiedFolds(y []int, k int, rng *rand.Rand) []int {
	folds := make([]int, len(y))
	for _, class := range []int{0, 1} {
		var idx []int
		for i, yi := range y {
			if yi == class {
				idx = append(idx, i)
			}
		}
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for j, i := range idx {
			folds[i] = j % k
		}
	}
	return folds
}

// RandomBaseline returns a Trainer that ignores the features entirely and
// scores every example uniformly at random — the paper's Random baseline,
// which "randomly predicts a label based on just the label distribution".
// Its AUC is 0.5 in expectation.
func RandomBaseline(rng *rand.Rand) Trainer {
	return func(Dataset) (Scorer, error) {
		return randomScorer{rng}, nil
	}
}

type randomScorer struct{ rng *rand.Rand }

func (r randomScorer) Prob([]float64) float64 { return r.rng.Float64() }
