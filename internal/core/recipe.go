package core

import (
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// This file implements §5.2: the general recipe for upgrading a two-phase
// DP histogram algorithm into an OSDP algorithm that exploits non-sensitive
// records, and its instantiation DAWAz (Algorithm 3).
//
// A "two-phase" DP algorithm first learns a model of the data (for DAWA, a
// partition of the domain into near-uniform buckets) and then spends the
// remaining budget adding Laplace noise to the model's aggregate counts.
// The recipe runs an OSDP primitive on the non-sensitive histogram with a
// small slice ρ·ε of the budget to detect zero-count bins, runs the DP
// algorithm with the rest, zeroes the detected bins in the DP estimate, and
// redistributes the removed mass within each model partition. Sequential
// composition (Theorem 3.3) gives (P, ε)-OSDP for the whole pipeline.

// Partition is a contiguous, inclusive bin interval [Lo, Hi] of a
// histogram domain, as produced by DAWA's phase 1.
type Partition struct {
	Lo, Hi int
}

// Size returns the number of bins the partition spans.
func (p Partition) Size() int { return p.Hi - p.Lo + 1 }

// PartitionedEstimator is a two-phase DP histogram algorithm in the sense
// of §5.2: it returns both its private estimate and the data model —
// the partition structure — it learned. The DAWA implementation in
// internal/dawa satisfies it.
type PartitionedEstimator interface {
	// Estimate releases an eps-DP estimate of x together with the learned
	// partitioning of the domain (a disjoint cover, in order).
	Estimate(x *histogram.Histogram, eps float64, src noise.Source) (*histogram.Histogram, []Partition)
	// Name is a short display name.
	Name() string
}

// ZeroDetector estimates, under (P, eps)-OSDP, the set of zero-count bins
// of the full histogram by examining a histogram over non-sensitive records
// only. Implementations over-report zeros when sensitive records hide in
// bins with no non-sensitive ones; the recipe tolerates that (the paper
// observes over-reporting zeros beats adding high-scale noise at small ε).
type ZeroDetector func(xns *histogram.Histogram, eps float64, src noise.Source) []int

// LaplaceZeroDetector finds zero bins via OsdpLaplaceL1: after clamping,
// any bin reported 0 joins the zero set. This is the detector Algorithm 3
// line 3 suggests with Osdp = OsdpLaplaceL1.
func LaplaceZeroDetector(xns *histogram.Histogram, eps float64, src noise.Source) []int {
	return OsdpLaplaceL1(xns, eps, src).ZeroBins()
}

// RRZeroDetector finds zero bins by releasing a true OsdpRR-style sample of
// the non-sensitive bin mass: each unit of count survives independently
// with probability 1−e^(−ε), and bins with no surviving mass are reported
// zero. This is the subroutine the paper's experiments use (§6.3.3:
// "we used ρ = 0.1 fraction of the privacy budget to run OsdpRR").
func RRZeroDetector(xns *histogram.Histogram, eps float64, src noise.Source) []int {
	keep := noise.KeepProbability(eps)
	var zeros []int
	for i := 0; i < xns.Bins(); i++ {
		n := int(xns.Count(i))
		survived := false
		for j := 0; j < n && !survived; j++ {
			survived = noise.Bernoulli(src, keep)
		}
		if !survived {
			zeros = append(zeros, i)
		}
	}
	return zeros
}

// RecipeConfig parameterises the §5.2 recipe.
type RecipeConfig struct {
	// Rho is the budget fraction spent on zero detection (paper: 0.1).
	Rho float64
	// Detect is the OSDP zero detector; nil defaults to RRZeroDetector.
	Detect ZeroDetector
}

// Recipe applies the §5.2 construction: x is the full histogram, xns the
// histogram over non-sensitive records, eps the total budget. The result
// satisfies (P, ε)-OSDP by sequential composition; the zero-set step is
// (P, ρε)-OSDP and the estimator run is (1−ρ)ε-DP (hence OSDP for any P).
func Recipe(est PartitionedEstimator, x, xns *histogram.Histogram, eps float64, cfg RecipeConfig, src noise.Source) *histogram.Histogram {
	if x.Bins() != xns.Bins() {
		panic("core: x and xns disagree on domain size")
	}
	detect := cfg.Detect
	if detect == nil {
		detect = RRZeroDetector
	}
	epsZero, epsDP := SplitBudget(eps, cfg.Rho)

	zeros := detect(xns, epsZero, src)
	estimate, parts := est.Estimate(x, epsDP, src)
	return ApplyZeroSet(estimate, parts, zeros)
}

// ApplyZeroSetGroups is the recipe's post-processing generalised to
// arbitrary bin groups (AHP's value clusters, AGrid's grid cells): bins in
// zeroSet are zeroed and each group's surviving bins are rescaled to keep
// the group's estimated total. Groups must be disjoint; bins outside every
// group are left untouched.
func ApplyZeroSetGroups(estimate *histogram.Histogram, groups [][]int, zeroSet []int) *histogram.Histogram {
	out := estimate.Clone()
	inZero := make([]bool, out.Bins())
	for _, z := range zeroSet {
		inZero[z] = true
	}
	for _, g := range groups {
		zeroed := 0
		for _, i := range g {
			if inZero[i] {
				zeroed++
			}
		}
		if zeroed == 0 {
			continue
		}
		if zeroed == len(g) {
			for _, i := range g {
				out.SetCount(i, 0)
			}
			continue
		}
		ratio := float64(len(g)) / float64(len(g)-zeroed)
		for _, i := range g {
			if inZero[i] {
				out.SetCount(i, 0)
			} else {
				out.SetCount(i, out.Count(i)*ratio)
			}
		}
	}
	return out
}

// ApplyZeroSet is the post-processing of Algorithm 3 lines 5–11: it zeroes
// the bins in zeroSet and, within each model partition, rescales the
// surviving bins so the partition keeps its estimated total mass. (The
// paper's line 9 prints the ratio as |B|/|Z∩B|, which divides by zero for
// partitions free of zeros; the accompanying text — "reallocates the mass
// … to the non replaced bins" — pins the intended ratio |B|/(|B|−|Z∩B|),
// which is what we use. Partitions entirely inside the zero set become
// zero.) Post-processing preserves the privacy guarantee.
func ApplyZeroSet(estimate *histogram.Histogram, parts []Partition, zeroSet []int) *histogram.Histogram {
	out := estimate.Clone()
	inZero := make([]bool, out.Bins())
	for _, z := range zeroSet {
		inZero[z] = true
	}
	for _, b := range parts {
		zeroed := 0
		for i := b.Lo; i <= b.Hi; i++ {
			if inZero[i] {
				zeroed++
			}
		}
		if zeroed == 0 {
			continue
		}
		size := b.Size()
		if zeroed == size {
			for i := b.Lo; i <= b.Hi; i++ {
				out.SetCount(i, 0)
			}
			continue
		}
		ratio := float64(size) / float64(size-zeroed)
		for i := b.Lo; i <= b.Hi; i++ {
			if inZero[i] {
				out.SetCount(i, 0)
			} else {
				out.SetCount(i, out.Count(i)*ratio)
			}
		}
	}
	return out
}
