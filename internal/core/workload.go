package core

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// This file is the workload-answering engine: batteries of range-count
// queries (the paper's §6.3.3 evaluation workload, and DAWA's original
// target) answered from ONE private synopsis. An estimator releases a
// single (P, ε)-OSDP estimate of the workload domain's histogram; every
// range answer is then post-processing of that release, so a
// 1000-query workload costs exactly the ε of the one release —
// formally, the composed guarantee is WorkloadComposite below, not a
// Theorem 3.3 sum.

// WorkloadEstimator fits one private synopsis of a histogram under an
// ε budget. x must be the histogram over NON-SENSITIVE records only
// (the server evaluates it over the registered non-sensitive
// partition); rows×cols is the domain shape, flattened row-major with
// the first dimension outermost, and cols == 1 for 1-D domains. The
// returned estimate covers the full domain; callers answer ranges from
// it via Synopsis.
//
// Privacy: every implementation is an ε-DP release of x. Under a
// one-sided neighbor (a sensitive record replaced by an arbitrary
// one) the non-sensitive histogram changes by at most one record —
// within the bounded-model sensitivity the mechanisms are calibrated
// for — so by the Lemma 3.1 argument the release is (P, ε)-OSDP.
//
// The four structure-exploiting packages (dawa, ahp, agrid, hier)
// adapt their offline APIs to this interface; Flat below is the
// baseline.
type WorkloadEstimator interface {
	// Name identifies the estimator in responses and reports.
	Name() string
	// Fit releases the private synopsis. It must return an error, not
	// panic, on invalid configuration: the serving layer calls it after
	// budget has been charged.
	Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error)
}

// Flat is the baseline WorkloadEstimator: the server's standard
// per-bin mechanism (OsdpLaplaceL1, Algorithm 2) with no structural
// model. Its one-sided per-bin noise never cancels over a range, so
// long-range error grows linearly in range length — the gap the
// structure-exploiting estimators close.
type Flat struct{}

// Name implements WorkloadEstimator.
func (Flat) Name() string { return "flat" }

// Fit implements WorkloadEstimator via OsdpLaplaceL1.
func (Flat) Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: flat estimator needs eps > 0, got %g", eps)
	}
	return OsdpLaplaceL1(x, eps, src), nil
}

// BinRange is one inclusive rectangle of histogram bins: [Lo0, Hi0]
// over the first (outermost) dimension and [Lo1, Hi1] over the second.
// For 1-D domains the second dimension is the single column 0, so
// Lo1 == Hi1 == 0.
type BinRange struct {
	Lo0, Hi0 int
	Lo1, Hi1 int
}

// valid reports whether the rectangle fits a rows×cols domain.
func (r BinRange) valid(rows, cols int) bool {
	return 0 <= r.Lo0 && r.Lo0 <= r.Hi0 && r.Hi0 < rows &&
		0 <= r.Lo1 && r.Lo1 <= r.Hi1 && r.Hi1 < cols
}

// Synopsis answers rectangle-sum queries over a fitted estimate in
// O(1) each, via a summed-area table. Building it is one pass over the
// estimate; answering a workload of any size is then linear in the
// number of queries, independent of domain size. A Synopsis is
// immutable after construction and safe for concurrent use.
type Synopsis struct {
	rows, cols int
	sat        []float64 // (rows+1)×(cols+1), sat[i][j] = sum over [0,i)×[0,j)
}

// NewSynopsis builds the summed-area table of est interpreted as a
// rows×cols row-major grid (cols == 1 for 1-D).
func NewSynopsis(est *histogram.Histogram, rows, cols int) (*Synopsis, error) {
	if rows <= 0 || cols <= 0 || rows*cols != est.Bins() {
		return nil, fmt.Errorf("core: synopsis shape %dx%d does not match %d bins", rows, cols, est.Bins())
	}
	s := &Synopsis{rows: rows, cols: cols, sat: make([]float64, (rows+1)*(cols+1))}
	w := cols + 1
	for i := 0; i < rows; i++ {
		var rowSum float64
		for j := 0; j < cols; j++ {
			rowSum += est.Count(i*cols + j)
			s.sat[(i+1)*w+j+1] = s.sat[i*w+j+1] + rowSum
		}
	}
	return s, nil
}

// Rows returns the first-dimension size.
func (s *Synopsis) Rows() int { return s.rows }

// Cols returns the second-dimension size (1 for 1-D synopses).
func (s *Synopsis) Cols() int { return s.cols }

// RangeSum answers one inclusive rectangle sum.
func (s *Synopsis) RangeSum(r BinRange) (float64, error) {
	if !r.valid(s.rows, s.cols) {
		return 0, fmt.Errorf("core: range [%d,%d]x[%d,%d] outside %dx%d synopsis",
			r.Lo0, r.Hi0, r.Lo1, r.Hi1, s.rows, s.cols)
	}
	w := s.cols + 1
	return s.sat[(r.Hi0+1)*w+r.Hi1+1] - s.sat[r.Lo0*w+r.Hi1+1] -
		s.sat[(r.Hi0+1)*w+r.Lo1] + s.sat[r.Lo0*w+r.Lo1], nil
}

// WorkloadComposite returns the guarantee of answering n range queries
// from ONE synopsis released under g. Every answer is deterministic
// post-processing of the same release, so the batch leaks exactly what
// the release leaks: the n per-answer charges compose like parallel
// charges of identical guarantees (max ε, same policy) rather than
// Theorem 3.3's sum — ParallelComposite of n copies of g is g itself.
func WorkloadComposite(g Guarantee, n int) Guarantee {
	if n <= 0 {
		return ParallelComposite(nil)
	}
	charges := make([]Guarantee, n)
	for i := range charges {
		charges[i] = g
	}
	return ParallelComposite(charges)
}

// workloadShape derives the rows×cols synopsis shape from a query's
// dimensions (cols == 1 for 1-D queries).
func workloadShape(q histogram.Query) (rows, cols int, err error) {
	switch len(q.Dims) {
	case 1:
		return q.Dims[0].Size(), 1, nil
	case 2:
		return q.Dims[0].Size(), q.Dims[1].Size(), nil
	default:
		return 0, 0, fmt.Errorf("core: workload queries take 1 or 2 dims, got %d", len(q.Dims))
	}
}

// Workload answers a batch of range-count queries under ONE ε charge:
// the estimator fits a single private synopsis of q's histogram over
// the non-sensitive records, and every range is answered from it by
// post-processing. Validation happens before the charge, so a
// malformed batch never spends; after the charge the whole batch
// either answers or the randomness is considered observed (there is no
// per-range failure mode — answering is deterministic arithmetic on
// the release). The transcript charge recorded is the single synopsis
// guarantee (see WorkloadComposite).
func (s *Session) Workload(q histogram.Query, est WorkloadEstimator, ranges []BinRange, eps float64, trace ...TraceHook) ([]float64, error) {
	if est == nil {
		return nil, fmt.Errorf("core: workload needs an estimator")
	}
	rows, cols, err := workloadShape(q)
	if err != nil {
		return nil, err
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("core: workload has no range queries")
	}
	for i, r := range ranges {
		if !r.valid(rows, cols) {
			return nil, fmt.Errorf("core: workload range %d = [%d,%d]x[%d,%d] outside the %dx%d domain",
				i, r.Lo0, r.Hi0, r.Lo1, r.Hi1, rows, cols)
		}
	}
	if err := s.charge(eps); err != nil {
		return nil, fmt.Errorf("core: workload rejected: %w", err)
	}
	end := beginPhase(trace, "scan")
	x := q.Eval(s.ns)
	endScan(end, s.ns.Len())
	end = beginPhase(trace, "noise")
	fitted, err := est.Fit(x, rows, cols, eps, s.src)
	if end != nil {
		end("estimator", est.Name())
	}
	if err != nil {
		return nil, fmt.Errorf("core: workload estimator %s: %w", est.Name(), err)
	}
	syn, err := NewSynopsis(fitted, rows, cols)
	if err != nil {
		return nil, fmt.Errorf("core: workload estimator %s returned a malformed synopsis: %w", est.Name(), err)
	}
	answers := make([]float64, len(ranges))
	for i, r := range ranges {
		answers[i], _ = syn.RangeSum(r) // ranges validated above
	}
	return answers, nil
}
