package core

import (
	"errors"
	"math"
	"testing"

	"osdp/internal/dataset"
)

func TestAccountantRefund(t *testing.T) {
	p := dataset.NewPolicy("gdpr", dataset.True())
	q := dataset.NewPolicy("hipaa", dataset.True())
	a := NewAccountant(1)

	if err := a.Spend(Guarantee{Policy: p, Epsilon: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Guarantee{Policy: q, Epsilon: 0.4}); err != nil {
		t.Fatal(err)
	}

	// Refund must match policy name AND ε.
	if err := a.Refund(Guarantee{Policy: p, Epsilon: 0.3}); err == nil {
		t.Fatal("refund with mismatched ε should fail")
	}
	if err := a.Refund(Guarantee{Policy: dataset.NewPolicy("nope", dataset.True()), Epsilon: 0.4}); err == nil {
		t.Fatal("refund with unknown policy should fail")
	}
	if err := a.Refund(Guarantee{Policy: q, Epsilon: 0.4}); err != nil {
		t.Fatalf("matching refund: %v", err)
	}
	if got := a.Spent(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("spent %g after refund, want 0.4", got)
	}
	if got := len(a.Charges()); got != 1 {
		t.Fatalf("%d charges after refund, want 1", got)
	}
	// The refunded ε is spendable again.
	if err := a.Spend(Guarantee{Policy: p, Epsilon: 0.6}); err != nil {
		t.Fatalf("re-spending refunded budget: %v", err)
	}
	// Double refund of the same charge must fail.
	if err := a.Refund(Guarantee{Policy: q, Epsilon: 0.4}); err == nil {
		t.Fatal("double refund should fail")
	}
}

// TestAccountantRefundPicksMostRecent pins that a refund pops the LAST
// matching charge, so interleaved charge/refund pairs from concurrent
// requests cancel the right reservations.
func TestAccountantRefundPicksMostRecent(t *testing.T) {
	p := dataset.NewPolicy("p", dataset.True())
	a := NewAccountant(0)
	for i := 0; i < 3; i++ {
		if err := a.Spend(Guarantee{Policy: p, Epsilon: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Refund(Guarantee{Policy: p, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Charges()); got != 2 {
		t.Fatalf("%d charges, want 2", got)
	}
	if got := a.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent %g, want 1.0", got)
	}
}

func TestAccountantRestoreSpend(t *testing.T) {
	p := dataset.NewPolicy("replayed", dataset.True())
	a := NewAccountant(1)

	// Restore may exceed the budget: replayed spend must never be erased.
	if err := a.RestoreSpend(Guarantee{Policy: p, Epsilon: 2.5}); err != nil {
		t.Fatalf("restore above budget: %v", err)
	}
	if got := a.Spent(); got != 2.5 {
		t.Fatalf("spent %g, want 2.5", got)
	}
	// Further spending is rejected — the account is over budget.
	if err := a.Spend(Guarantee{Policy: p, Epsilon: 0.1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("spend on over-budget account: got %v, want ErrBudgetExceeded", err)
	}
	// Zero restore is a no-op; bad values are rejected.
	if err := a.RestoreSpend(Guarantee{Policy: p, Epsilon: 0}); err != nil {
		t.Fatalf("zero restore: %v", err)
	}
	for _, eps := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := a.RestoreSpend(Guarantee{Policy: p, Epsilon: eps}); err == nil {
			t.Fatalf("restore of %v should fail", eps)
		}
	}
	if got := a.Spent(); got != 2.5 {
		t.Fatalf("spent %g after rejected restores, want 2.5", got)
	}
}
