package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

func TestOsdpLaplaceNeverExceedsTrueCounts(t *testing.T) {
	xns := histogram.FromCounts([]float64{10, 0, 5, 100})
	src := noise.NewSource(1)
	for trial := 0; trial < 200; trial++ {
		est := OsdpLaplace(xns, 1, src)
		if !xns.Dominates(est) {
			t.Fatalf("noisy estimate exceeds true count: %v vs %v", est.Counts(), xns.Counts())
		}
	}
}

func TestOsdpLaplaceMeanBias(t *testing.T) {
	// One-sided noise has mean -1/ε; averaged estimates sit 1/ε below truth.
	const eps = 0.5
	const trials = 20000
	xns := histogram.FromCounts([]float64{50})
	src := noise.NewSource(2)
	var sum float64
	for i := 0; i < trials; i++ {
		sum += OsdpLaplace(xns, eps, src).Count(0)
	}
	mean := sum / trials
	want := 50 - 1/eps
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("mean estimate %v, want ~%v", mean, want)
	}
}

func TestOsdpLaplaceL1PreservesTrueZeros(t *testing.T) {
	xns := histogram.FromCounts([]float64{0, 7, 0, 3, 0})
	src := noise.NewSource(3)
	for trial := 0; trial < 500; trial++ {
		est := OsdpLaplaceL1(xns, 1, src)
		for _, i := range []int{0, 2, 4} {
			if est.Count(i) != 0 {
				t.Fatalf("true-zero bin %d output %v", i, est.Count(i))
			}
		}
		for i := 0; i < est.Bins(); i++ {
			if est.Count(i) < 0 {
				t.Fatalf("negative count %v after clamp", est.Count(i))
			}
		}
	}
}

func TestOsdpLaplaceL1MedianDebias(t *testing.T) {
	// For a large true count (clamping never fires), the estimate's median
	// equals the true count: noise median is -ln2/ε and Algorithm 2 adds
	// ln2/ε back.
	const eps = 1.0
	const trials = 30001
	xns := histogram.FromCounts([]float64{1000})
	src := noise.NewSource(4)
	ests := make([]float64, trials)
	for i := range ests {
		ests[i] = OsdpLaplaceL1(xns, eps, src).Count(0)
	}
	// Median of samples:
	med := quickMedian(ests)
	if math.Abs(med-1000) > 0.2 {
		t.Errorf("median estimate %v, want ~1000", med)
	}
}

func quickMedian(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	// insertion into nth position via sort
	// (small n; fine to fully sort)
	for i := 1; i < len(ys); i++ {
		for j := i; j > 0 && ys[j-1] > ys[j]; j-- {
			ys[j-1], ys[j] = ys[j], ys[j-1]
		}
	}
	return ys[len(ys)/2]
}

func TestOsdpLaplacePanicsOnBadEps(t *testing.T) {
	for _, f := range []func(){
		func() { OsdpLaplace(histogram.New(1), 0, noise.NewSource(1)) },
		func() { OsdpLaplaceL1(histogram.New(1), -1, noise.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad eps did not panic")
				}
			}()
			f()
		}()
	}
}

// Empirical Theorem 5.2: for one-sided neighboring histograms (xns and
// x'ns = xns + e_i), the output density ratio is bounded by e^ε. We verify
// on the discrete event "bin count rounds to k".
func TestOsdpLaplacePrivacyRatio(t *testing.T) {
	const eps = 1.0
	const trials = 400000
	src := noise.NewSource(5)
	x := histogram.FromCounts([]float64{5})
	xp := histogram.FromCounts([]float64{6}) // neighbor: one sensitive record became non-sensitive here

	histOf := func(h *histogram.Histogram) map[int]int {
		out := make(map[int]int)
		for i := 0; i < trials; i++ {
			v := OsdpLaplace(h, eps, src).Count(0)
			out[int(math.Floor(v*4))]++ // quarter-unit bins
		}
		return out
	}
	h0, h1 := histOf(x), histOf(xp)
	bound := math.Exp(eps)
	for bin, c0 := range h0 {
		c1 := h1[bin]
		if c0 < 1000 || c1 < 1000 {
			continue
		}
		ratio := float64(c0) / float64(c1)
		if ratio > bound*1.15 || ratio < 1/(bound*1.15) {
			t.Errorf("bin %d: ratio %v outside e^±ε = %v", bin, ratio, bound)
		}
	}
}

// Variance advantage: OsdpLaplace error should have ~1/8 the variance of a
// sensitivity-2 DP Laplace mechanism at the same ε (§5.1).
func TestOsdpLaplaceVarianceAdvantage(t *testing.T) {
	const eps = 1.0
	const trials = 100000
	src := noise.NewSource(6)
	xns := histogram.FromCounts([]float64{100})
	var osdpSq, dpSq float64
	for i := 0; i < trials; i++ {
		d := OsdpLaplace(xns, eps, src).Count(0) - 100
		osdpSq += (d + 1/eps) * (d + 1/eps) // center the one-sided noise
		z := noise.Laplace(src, 2/eps)
		dpSq += z * z
	}
	ratio := osdpSq / dpSq
	if math.Abs(ratio-0.125)/0.125 > 0.15 {
		t.Errorf("variance ratio %v, want ~1/8", ratio)
	}
}

// Property: OsdpLaplaceL1 output is always non-negative and true zeros are
// preserved for any histogram and ε.
func TestOsdpLaplaceL1InvariantsQuick(t *testing.T) {
	src := noise.NewSource(7)
	rng := rand.New(rand.NewSource(8))
	f := func(dRaw, epsRaw uint8) bool {
		d := int(dRaw%30) + 1
		eps := float64(epsRaw%40)/10 + 0.05
		xns := histogram.New(d)
		for i := 0; i < d; i++ {
			if rng.Intn(3) > 0 {
				xns.SetCount(i, float64(rng.Intn(40)))
			}
		}
		est := OsdpLaplaceL1(xns, eps, src)
		for i := 0; i < d; i++ {
			if est.Count(i) < 0 {
				return false
			}
			if xns.Count(i) == 0 && est.Count(i) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOsdpLaplaceGuaranteeString(t *testing.T) {
	if got := OsdpLaplaceGuarantee("minors", 0.5); got != "(minors, 0.5)-OSDP" {
		t.Errorf("guarantee = %q", got)
	}
}
