package core

import (
	"math"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

func verifyUniverse(s *dataset.Schema) []dataset.Record {
	return []dataset.Record{
		rec(s, 100, 8),  // sensitive
		rec(s, 101, 15), // sensitive
		rec(s, 102, 25), // non-sensitive
		rec(s, 103, 60), // non-sensitive
	}
}

// The verifier should certify OsdpRR at its declared ε across every
// neighbor pair of a small database.
func TestVerifyOSDPCertifiesRR(t *testing.T) {
	s := testSchema()
	base := testDB(s, 10, 30)
	const eps = 1.0
	res := VerifyOSDP(NewRR(minorsPolicy(), eps), base, minorsPolicy(), verifyUniverse(s),
		VerifyConfig{Trials: 120000}, noise.NewSource(1))
	if res.Pairs == 0 {
		t.Fatal("no neighbor pairs exercised")
	}
	if res.MaxLogRatio > eps*1.06 {
		t.Errorf("empirical loss %v exceeds ε=%v (worst: %s)", res.MaxLogRatio, eps, res.WorstPair)
	}
}

// And it should flag the exclusion-attack-vulnerable baseline with an
// unbounded ratio.
func TestVerifyOSDPFlagsFullRelease(t *testing.T) {
	s := testSchema()
	base := testDB(s, 10, 30)
	res := VerifyOSDP(NewFullRelease(minorsPolicy()), base, minorsPolicy(), verifyUniverse(s),
		VerifyConfig{Trials: 3000}, noise.NewSource(2))
	if !math.IsInf(res.MaxLogRatio, 1) {
		t.Errorf("FullRelease passed verification with loss %v", res.MaxLogRatio)
	}
}

// A database with no sensitive records has no one-sided neighbors: the
// verifier must report zero pairs (and hence zero loss).
func TestVerifyOSDPNoSensitiveRecords(t *testing.T) {
	s := testSchema()
	base := testDB(s, 30, 45)
	res := VerifyOSDP(NewRR(minorsPolicy(), 1), base, minorsPolicy(), verifyUniverse(s),
		VerifyConfig{Trials: 100}, noise.NewSource(3))
	if res.Pairs != 0 || res.MaxLogRatio != 0 {
		t.Errorf("expected vacuous result, got %+v", res)
	}
}

// Higher ε must never report lower empirical loss than a much smaller ε on
// the same scenario (sanity of the measurement itself).
func TestVerifyOSDPLossScalesWithEps(t *testing.T) {
	s := testSchema()
	base := testDB(s, 10, 30)
	cfg := VerifyConfig{Trials: 120000}
	low := VerifyOSDP(NewRR(minorsPolicy(), 0.3), base, minorsPolicy(), verifyUniverse(s), cfg, noise.NewSource(4))
	high := VerifyOSDP(NewRR(minorsPolicy(), 2.0), base, minorsPolicy(), verifyUniverse(s), cfg, noise.NewSource(5))
	if high.MaxLogRatio <= low.MaxLogRatio {
		t.Errorf("loss at ε=2 (%v) not above loss at ε=0.3 (%v)", high.MaxLogRatio, low.MaxLogRatio)
	}
	// Each should sit near its ε.
	if math.Abs(low.MaxLogRatio-0.3) > 0.06 {
		t.Errorf("ε=0.3 loss = %v", low.MaxLogRatio)
	}
	if math.Abs(high.MaxLogRatio-2.0) > 0.4 {
		t.Errorf("ε=2 loss = %v", high.MaxLogRatio)
	}
}

func TestVerifyOSDPPanicsOnBadTrials(t *testing.T) {
	s := testSchema()
	defer func() {
		if recover() == nil {
			t.Fatal("Trials=0 did not panic")
		}
	}()
	VerifyOSDP(NewRR(minorsPolicy(), 1), testDB(s, 10), minorsPolicy(), nil,
		VerifyConfig{}, noise.NewSource(1))
}

func TestMultisetEventCanonical(t *testing.T) {
	s := testSchema()
	a := testDB(s)
	a.Append(rec(s, 1, 30))
	a.Append(rec(s, 2, 40))
	b := testDB(s)
	b.Append(rec(s, 2, 40))
	b.Append(rec(s, 1, 30))
	if multisetEvent(a) != multisetEvent(b) {
		t.Error("multiset event depends on record order")
	}
	c := testDB(s)
	c.Append(rec(s, 1, 30))
	if multisetEvent(a) == multisetEvent(c) {
		t.Error("different releases share an event key")
	}
}
