package core

import (
	"math"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// This file adds a discrete counterpart to OsdpLaplace: one-sided geometric
// noise. True counting queries are integer-valued, and releasing integers
// both looks natural to consumers and avoids the floating-point side
// channels real deployments worry about. The construction mirrors
// Definition 5.1/5.2 with the exponential distribution replaced by its
// discrete analogue.

// OneSidedGeometric draws from the one-sided geometric distribution with
// parameter α = e^(−ε): Pr[K = −k] = (1 − α)·α^k for k = 0, 1, 2, … — all
// mass on non-positive integers. It is the discrete limit of Lap⁻(1/ε).
func OneSidedGeometric(eps float64, src noise.Source) int64 {
	if eps <= 0 {
		panic("core: OneSidedGeometric requires eps > 0")
	}
	alpha := math.Exp(-eps)
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	// Inverse CDF of the one-sided geometric magnitude.
	k := int64(math.Floor(math.Log(u) / math.Log(alpha)))
	if k < 0 {
		k = 0
	}
	return -k
}

// OsdpGeometric answers a histogram query under (P, ε)-OSDP with integer
// outputs: it adds i.i.d. one-sided geometric noise to each count of the
// non-sensitive histogram xns and clamps at zero. The privacy argument is
// Theorem 5.2's verbatim: one-sided neighbors only increase non-sensitive
// counts, the noise support is one-sided to match, and consecutive-output
// probabilities differ by the factor α = e^(−ε).
//
// Clamping negative results to zero is post-processing: with all-negative
// noise a zero count stays zero, preserving the exact-zero property that
// makes the one-sided mechanisms shine on sparse data.
func OsdpGeometric(xns *histogram.Histogram, eps float64, src noise.Source) *histogram.Histogram {
	if eps <= 0 {
		panic("core: OsdpGeometric requires eps > 0")
	}
	out := histogram.New(xns.Bins())
	for i := 0; i < xns.Bins(); i++ {
		v := xns.Count(i) + float64(OneSidedGeometric(eps, src))
		if v < 0 {
			v = 0
		}
		out.SetCount(i, v)
	}
	return out
}

// OneSidedGeometricMean is the mean of the one-sided geometric at ε:
// −α/(1−α) with α = e^(−ε). Callers can add it back to debias estimates,
// the discrete analogue of OsdpLaplaceL1's median correction.
func OneSidedGeometricMean(eps float64) float64 {
	alpha := math.Exp(-eps)
	return -alpha / (1 - alpha)
}
