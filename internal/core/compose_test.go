package core

import (
	"math"
	"strings"
	"testing"

	"osdp/internal/dataset"
)

func TestAccountantSpendAndComposite(t *testing.T) {
	a := NewAccountant(2)
	p1 := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	p2 := dataset.NewPolicy("seniors", dataset.Cmp("Age", dataset.OpGe, dataset.Int(65)))
	if err := a.Spend(Guarantee{Policy: p1, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(Guarantee{Policy: p2, Epsilon: 1.0}); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 1.5 {
		t.Errorf("Spent = %v", a.Spent())
	}
	if math.Abs(a.Remaining()-0.5) > 1e-12 {
		t.Errorf("Remaining = %v", a.Remaining())
	}
	comp := a.Composite()
	if comp.Epsilon != 1.5 {
		t.Errorf("composite eps = %v", comp.Epsilon)
	}
	// Composite policy = minimum relaxation: sensitive only under BOTH.
	s := testSchema()
	for _, c := range []struct {
		age  int64
		sens bool
	}{{10, false}, {70, false}, {40, false}} {
		// No record is both a minor and a senior, so nothing is sensitive.
		if comp.Policy.Sensitive(rec(s, 0, c.age)) != c.sens {
			t.Errorf("composite sensitivity of age %d wrong", c.age)
		}
	}
}

func TestAccountantBudgetEnforced(t *testing.T) {
	a := NewAccountant(1)
	g := Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0.6}
	if err := a.Spend(g); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(g); err == nil {
		t.Fatal("over-budget spend succeeded")
	}
	// Failed spend must not consume budget.
	if a.Spent() != 0.6 {
		t.Errorf("Spent after failed charge = %v", a.Spent())
	}
	if err := a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0.4}); err != nil {
		t.Errorf("exact-fit spend failed: %v", err)
	}
}

func TestAccountantRejectsNonPositiveEps(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if err := a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestAccountantUnlimited(t *testing.T) {
	a := NewAccountant(0)
	for i := 0; i < 100; i++ {
		if err := a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: 10}); err != nil {
			t.Fatalf("unlimited accountant rejected charge: %v", err)
		}
	}
	if a.Spent() != 1000 {
		t.Errorf("Spent = %v", a.Spent())
	}
}

func TestAccountantNegativeBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative budget did not panic")
		}
	}()
	NewAccountant(-1)
}

func TestAccountantEmptyComposite(t *testing.T) {
	comp := NewAccountant(1).Composite()
	if comp.Epsilon != 0 || comp.Policy.Name() != "P_all" {
		t.Errorf("empty composite = %v", comp)
	}
}

func TestAccountantString(t *testing.T) {
	a := NewAccountant(2)
	_ = a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0.5})
	if got := a.String(); !strings.Contains(got, "0.5/2") || !strings.Contains(got, "1 charges") {
		t.Errorf("String = %q", got)
	}
}

func TestSplitBudget(t *testing.T) {
	a, b := SplitBudget(1.0, 0.1)
	if math.Abs(a-0.1) > 1e-12 || math.Abs(b-0.9) > 1e-12 {
		t.Errorf("SplitBudget = %v, %v", a, b)
	}
	for _, rho := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rho=%v did not panic", rho)
				}
			}()
			SplitBudget(1, rho)
		}()
	}
}

// Concurrent spends on a shared budget must never over-commit: with a
// budget of exactly N×ε and 2N racing goroutines, exactly N must succeed.
func TestAccountantConcurrentSpends(t *testing.T) {
	const n = 50
	a := NewAccountant(n * 0.1)
	g := Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0.1}
	results := make(chan error, 2*n)
	for i := 0; i < 2*n; i++ {
		go func() { results <- a.Spend(g) }()
	}
	succeeded := 0
	for i := 0; i < 2*n; i++ {
		if err := <-results; err == nil {
			succeeded++
		}
	}
	if succeeded != n {
		t.Errorf("%d spends succeeded, want exactly %d", succeeded, n)
	}
	if math.Abs(a.Spent()-n*0.1) > 1e-9 {
		t.Errorf("Spent = %v", a.Spent())
	}
	if len(a.Charges()) != n {
		t.Errorf("Charges = %d", len(a.Charges()))
	}
}

// Lemma 3.1 / 3.2 in executable form: a DP guarantee (P_all) composed under
// any policy stays valid; composition of (P_all, ε₁) and (P, ε₂) has a
// composite policy equal to P (relaxing P_all toward P).
func TestCompositeRelaxesTowardWeakest(t *testing.T) {
	a := NewAccountant(0)
	p := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	_ = a.Spend(Guarantee{Policy: dataset.AllSensitive(), Epsilon: 1})
	_ = a.Spend(Guarantee{Policy: p, Epsilon: 1})
	comp := a.Composite()
	s := testSchema()
	// Minor: sensitive under both => stays sensitive.
	if !comp.Policy.Sensitive(rec(s, 0, 10)) {
		t.Error("minor should stay sensitive in composite")
	}
	// Adult: non-sensitive under p => non-sensitive in composite.
	if comp.Policy.Sensitive(rec(s, 0, 40)) {
		t.Error("adult should be non-sensitive in composite")
	}
}
