package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"osdp/internal/dataset"
)

// ErrBudgetExceeded is wrapped by Spend rejections, so callers (e.g. a
// serving layer mapping errors to status codes) can test with errors.Is
// instead of matching message text.
var ErrBudgetExceeded = errors.New("exceeds remaining budget")

// Accountant tracks the cumulative OSDP guarantee of a sequence of
// mechanism executions on the same database, implementing the sequential
// composition theorem (Theorem 3.3): running (P₁,ε₁)…(Pk,εk)-OSDP
// mechanisms satisfies (P_mr, Σεᵢ)-OSDP, where P_mr is the minimum
// relaxation of the policies (a record stays sensitive only if *every*
// mechanism treated it as sensitive).
//
// An Accountant can also be given a budget; Spend rejects charges that
// would exceed it, the standard guard rail for interactive query answering.
// Accountants are safe for concurrent use: simultaneous Spend calls are
// serialised, so a shared budget can back multiple query threads without
// double-spending.
type Accountant struct {
	mu      sync.Mutex
	budget  float64 // 0 means unlimited
	spent   float64
	charges []Guarantee
}

// NewAccountant returns an accountant with the given total ε budget.
// A budget of 0 means unlimited (pure bookkeeping).
func NewAccountant(budget float64) *Accountant {
	if budget < 0 {
		panic("core: negative privacy budget")
	}
	return &Accountant{budget: budget}
}

// Spend records an (P, ε)-OSDP charge. It returns an error — and records
// nothing — if the charge would exceed the budget.
func (a *Accountant) Spend(g Guarantee) error {
	// The !(> 0) form also rejects NaN, which would otherwise slip past
	// a <= 0 check and poison the spent total.
	if !(g.Epsilon > 0) {
		return fmt.Errorf("core: non-positive epsilon %g", g.Epsilon)
	}
	if math.IsInf(g.Epsilon, 1) {
		return fmt.Errorf("core: infinite epsilon")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget > 0 && a.spent+g.Epsilon > a.budget+1e-12 {
		return fmt.Errorf("core: charge %g %w %g", g.Epsilon, ErrBudgetExceeded, a.budget-a.spent)
	}
	a.spent += g.Epsilon
	a.charges = append(a.charges, g)
	return nil
}

// Spent returns the total ε consumed so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unspent budget, or +Inf semantics via the full
// budget when unlimited (budget 0 returns 0 spent-against-nothing; callers
// should check Budget() first).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget == 0 {
		return 0
	}
	return a.budget - a.spent
}

// Budget returns the configured budget (0 = unlimited).
func (a *Accountant) Budget() float64 { return a.budget }

// Charges returns a copy of the recorded guarantees in order.
func (a *Accountant) Charges() []Guarantee {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Guarantee(nil), a.charges...)
}

// Composite returns the overall guarantee by Theorem 3.3: ε's add, and the
// effective policy is the minimum relaxation of all charged policies.
// With no charges it returns a zero guarantee under the all-sensitive
// policy (vacuously private).
func (a *Accountant) Composite() Guarantee {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.compositeLocked()
}

func (a *Accountant) compositeLocked() Guarantee {
	if len(a.charges) == 0 {
		return Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0}
	}
	policies := make([]dataset.Policy, len(a.charges))
	var eps float64
	for i, c := range a.charges {
		policies[i] = c.Policy
		eps += c.Epsilon
	}
	return Guarantee{Policy: dataset.MinimumRelaxation(policies...), Epsilon: eps}
}

// Refund removes the most recent recorded charge matching g — same
// policy name and same ε — and returns its ε to the budget. It exists
// for serving layers that must reserve budget in an outer ledger BEFORE
// running a mechanism: when the mechanism fails before any noise is
// drawn, nothing was released and the reservation may be returned.
// Refunding after randomness has been observed would break the Theorem
// 3.3 composition this accountant certifies (see Session.Quantile for
// the canonical non-refundable case), so callers are responsible for
// only refunding pre-noise failures. It is an error if no matching
// charge exists; callers should treat that as "the charge stands" —
// erring toward counting more spend, never less.
func (a *Accountant) Refund(g Guarantee) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.charges) - 1; i >= 0; i-- {
		c := a.charges[i]
		if c.Epsilon == g.Epsilon && c.Policy.Name() == g.Policy.Name() {
			a.charges = append(a.charges[:i], a.charges[i+1:]...)
			a.spent -= g.Epsilon
			if a.spent < 0 { // float dust from non-associative sums
				a.spent = 0
			}
			return nil
		}
	}
	return fmt.Errorf("core: refund of %g under %s matches no recorded charge", g.Epsilon, g.Policy.Name())
}

// RestoreSpend seeds the accountant with ε that was already spent in an
// earlier process life, recorded as a single composite charge. Unlike
// Spend it never checks the budget: durable spend replayed from a
// ledger must be honoured even when it exceeds a budget an operator has
// since lowered — otherwise a restart would erase real leakage. A zero
// ε restore is a no-op; negative, NaN, and infinite values are rejected.
func (a *Accountant) RestoreSpend(g Guarantee) error {
	if math.IsNaN(g.Epsilon) || math.IsInf(g.Epsilon, 0) || g.Epsilon < 0 {
		return fmt.Errorf("core: restored spend %g must be finite and non-negative", g.Epsilon)
	}
	if g.Epsilon == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent += g.Epsilon
	a.charges = append(a.charges, g)
	return nil
}

// Snapshot returns the spent total and the composite guarantee under a
// single lock acquisition, so a charge landing between the two reads
// cannot produce a ledger where the guarantee's ε disagrees with the
// spent total. Serving layers use it for consistent budget reports.
func (a *Accountant) Snapshot() (spent float64, composite Guarantee) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent, a.compositeLocked()
}

// String summarises the account, e.g. "spent 1.1/2 over 3 charges".
func (a *Accountant) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "spent %g", a.spent)
	if a.budget > 0 {
		fmt.Fprintf(&b, "/%g", a.budget)
	}
	fmt.Fprintf(&b, " over %d charges", len(a.charges))
	return b.String()
}

// SplitBudget divides eps into (ρ·ε, (1−ρ)·ε), the budget split used by the
// DAWAz recipe (Algorithm 3, lines 1–2). It panics unless 0 < rho < 1.
func SplitBudget(eps, rho float64) (osdpPart, dpPart float64) {
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("core: budget split rho=%g must lie in (0,1)", rho))
	}
	return rho * eps, (1 - rho) * eps
}
