package core

import (
	"math"
	"testing"

	"osdp/internal/noise"
)

// The empirical counterpart of Theorem 3.1: OsdpRR's posterior-odds
// amplification (likelihood ratio over output events) stays within e^ε.
func TestExclusionOsdpRRBoundedByEps(t *testing.T) {
	s := testSchema()
	pol := minorsPolicy()
	const eps = 1.0
	base := testDB(s, 10, 30, 40) // slot 0 is the target
	x := rec(s, 0, 12)            // sensitive value
	y := rec(s, 0, 35)            // non-sensitive value
	m := NewRR(pol, eps)
	rep := AnalyzeExclusion(m, base, 0, x, y, PresenceEvent(y), 200000, noise.NewSource(1))
	if rep.MaxLogRatio > eps*1.05 {
		t.Errorf("OsdpRR φ̂ = %v exceeds ε = %v", rep.MaxLogRatio, eps)
	}
	if math.IsInf(rep.MaxLogRatio, 1) {
		t.Error("OsdpRR produced an unbounded likelihood ratio")
	}
}

// The exclusion attack against the All-NS / PDP-Suppress(τ=∞) baseline:
// releasing all non-sensitive records truthfully makes the presence event
// deterministic, so the likelihood ratio is unbounded (Def 3.4 violated).
func TestExclusionFullReleaseUnbounded(t *testing.T) {
	s := testSchema()
	pol := minorsPolicy()
	base := testDB(s, 10, 30, 40)
	x := rec(s, 0, 12) // sensitive: never released
	y := rec(s, 0, 35) // non-sensitive: always released
	m := NewFullRelease(pol)
	rep := AnalyzeExclusion(m, base, 0, x, y, PresenceEvent(y), 2000, noise.NewSource(2))
	if !math.IsInf(rep.MaxLogRatio, 1) {
		t.Errorf("AllNS φ̂ = %v, want +Inf (exclusion attack)", rep.MaxLogRatio)
	}
}

// Sanity: comparing two sensitive values leaks nothing through either
// mechanism — both are always suppressed.
func TestExclusionTwoSensitiveValuesLeakNothing(t *testing.T) {
	s := testSchema()
	pol := minorsPolicy()
	base := testDB(s, 10, 30)
	x, y := rec(s, 0, 12), rec(s, 0, 15) // both sensitive
	for _, m := range []Mechanism{NewRR(pol, 1), NewFullRelease(pol)} {
		rep := AnalyzeExclusion(m, base, 0, x, y, PresenceEvent(y), 5000, noise.NewSource(3))
		if rep.MaxLogRatio != 0 {
			t.Errorf("%s: φ̂ = %v for two sensitive values, want 0", m.Name(), rep.MaxLogRatio)
		}
	}
}

func TestFullReleaseGuaranteeIsInfinite(t *testing.T) {
	m := NewFullRelease(minorsPolicy())
	if !math.IsInf(m.Guarantee().Epsilon, 1) {
		t.Error("FullRelease must report infinite epsilon")
	}
	if m.Name() != "AllNS" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestFullReleaseReleasesExactlyNonSensitive(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30, 16, 45)
	out := NewFullRelease(minorsPolicy()).Release(db, noise.NewSource(4))
	if out.Len() != 2 {
		t.Fatalf("released %d records, want 2", out.Len())
	}
	for _, r := range out.Records() {
		if r.Get("Age").AsInt() <= 17 {
			t.Error("sensitive record released")
		}
	}
}

func TestPresenceEvent(t *testing.T) {
	s := testSchema()
	target := rec(s, 1, 30)
	ev := PresenceEvent(target)
	with := testDB(s)
	with.Append(rec(s, 0, 20))
	with.Append(rec(s, 1, 30))
	if ev(with) != "present" {
		t.Error("present not detected")
	}
	without := testDB(s, 20)
	if ev(without) != "absent" {
		t.Error("absent not detected")
	}
}

func TestAnalyzeExclusionPanicsOnBadTrials(t *testing.T) {
	s := testSchema()
	defer func() {
		if recover() == nil {
			t.Fatal("trials=0 did not panic")
		}
	}()
	AnalyzeExclusion(NewRR(minorsPolicy(), 1), testDB(s, 10), 0,
		rec(s, 0, 5), rec(s, 0, 30), PresenceEvent(rec(s, 0, 30)), 0, noise.NewSource(1))
}

func TestExclusionReportString(t *testing.T) {
	rep := ExclusionReport{
		EventProbX:  map[string]float64{"absent": 1},
		EventProbY:  map[string]float64{"absent": 0.5, "present": 0.5},
		MaxLogRatio: 0.693,
		Trials:      100,
	}
	if got := rep.String(); got == "" {
		t.Error("empty report string")
	}
}
