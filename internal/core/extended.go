package core

import (
	"fmt"

	"osdp/internal/dataset"
)

// This file implements the extended OSDP definition of Appendix 10.1:
// neighbors that add or remove one sensitive record (unbounded model),
// the eOSDP ⇒ 2ε-OSDP bridge (Theorem 10.1), and parallel composition
// over disjoint partitions (Theorem 10.2).

// ExtendedNeighborRemove builds the eOSDP neighbor D′ = D − {r}, removing
// the record at index i, which must be sensitive under p (Definition 10.1).
func ExtendedNeighborRemove(db *dataset.Table, p dataset.Policy, i int) (*dataset.Table, error) {
	if i < 0 || i >= db.Len() {
		return nil, fmt.Errorf("core: record index %d out of range [0, %d)", i, db.Len())
	}
	if !p.Sensitive(db.Record(i)) {
		return nil, fmt.Errorf("core: record %d is non-sensitive; eOSDP neighbors remove only sensitive records", i)
	}
	out := dataset.NewTable(db.Schema())
	for j, r := range db.Records() {
		if j != i {
			out.Append(r)
		}
	}
	return out, nil
}

// ExtendedNeighborAdd builds the eOSDP neighbor D′ = D ∪ {r′}. Definition
// 10.1 requires that some sensitive record r exists in D with r ≠ r′; we
// check the existence of at least one sensitive record distinct from r′.
func ExtendedNeighborAdd(db *dataset.Table, p dataset.Policy, added dataset.Record) (*dataset.Table, error) {
	ok := false
	for _, r := range db.Records() {
		if p.Sensitive(r) && r.Key() != added.Key() {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("core: database has no sensitive record distinct from the addition; no eOSDP neighbor exists")
	}
	out := db.Clone()
	out.Append(added)
	return out, nil
}

// EOSDPToOSDPEpsilon converts an eOSDP guarantee level to the bounded-model
// OSDP level it implies: a (P, ε)-eOSDP mechanism satisfies (P, 2ε)-OSDP
// (Theorem 10.1), because a bounded-model swap factors into a removal
// followed by an addition.
func EOSDPToOSDPEpsilon(eps float64) float64 { return 2 * eps }

// Partitioning is a disjoint split of a database used by parallel
// composition: each record is routed to exactly one part by Route.
type Partitioning struct {
	Parts int
	Route func(r dataset.Record) int
}

// Split materialises the partitioning of db into Parts tables.
func (pt Partitioning) Split(db *dataset.Table) []*dataset.Table {
	out := make([]*dataset.Table, pt.Parts)
	for i := range out {
		out[i] = dataset.NewTable(db.Schema())
	}
	for _, r := range db.Records() {
		i := pt.Route(r)
		if i < 0 || i >= pt.Parts {
			panic(fmt.Sprintf("core: partition route %d out of range [0, %d)", i, pt.Parts))
		}
		out[i].Append(r)
	}
	return out
}

// ParallelComposite returns the overall eOSDP guarantee of running
// (Pᵢ, εᵢ)-eOSDP mechanisms on the disjoint parts of a partitioning
// (Theorem 10.2): ε = max εᵢ and the policy is the minimum relaxation.
// Under eOSDP an add/remove of one sensitive record touches exactly one
// part, so budgets do not add across parts.
func ParallelComposite(charges []Guarantee) Guarantee {
	if len(charges) == 0 {
		return Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0}
	}
	policies := make([]dataset.Policy, len(charges))
	var maxEps float64
	for i, c := range charges {
		policies[i] = c.Policy
		if c.Epsilon > maxEps {
			maxEps = c.Epsilon
		}
	}
	return Guarantee{Policy: dataset.MinimumRelaxation(policies...), Epsilon: maxEps}
}
