package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Cross-cutting property tests over the §5.1 histogram primitives: all
// one-sided mechanisms must be dominated by their input (never invent
// mass) and must preserve true zeros; these are the invariants the DAWAz
// zero-detection recipe builds on.

func randomNSHistogram(rng *rand.Rand, d int) *histogram.Histogram {
	h := histogram.New(d)
	for i := 0; i < d; i++ {
		if rng.Intn(3) > 0 {
			h.SetCount(i, float64(rng.Intn(200)))
		}
	}
	return h
}

func TestOneSidedPrimitivesDominatedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	src := noise.NewSource(102)
	f := func(dRaw, epsRaw uint8) bool {
		d := int(dRaw%40) + 1
		eps := float64(epsRaw%40)/10 + 0.05
		xns := randomNSHistogram(rng, d)

		rr := RRSampleHistogram(xns, eps, src)
		if !xns.Dominates(rr) {
			return false
		}
		geo := OsdpGeometric(xns, eps, src)
		if !xns.Dominates(geo) {
			return false
		}
		lap := OsdpLaplace(xns, eps, src)
		if !xns.Dominates(lap) {
			return false
		}
		// Zero preservation for the clamped mechanisms.
		for i := 0; i < d; i++ {
			if xns.Count(i) != 0 {
				continue
			}
			if rr.Count(i) != 0 || geo.Count(i) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The zero detectors never miss a true zero (they may over-report, never
// under-report), for any input and budget.
func TestZeroDetectorsCompleteQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	src := noise.NewSource(104)
	f := func(dRaw, epsRaw uint8) bool {
		d := int(dRaw%40) + 1
		eps := float64(epsRaw%40)/10 + 0.05
		xns := randomNSHistogram(rng, d)
		for _, detect := range []ZeroDetector{RRZeroDetector, LaplaceZeroDetector} {
			found := make(map[int]bool)
			for _, z := range detect(xns, eps, src) {
				found[z] = true
			}
			for i := 0; i < d; i++ {
				if xns.Count(i) == 0 && !found[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ApplyZeroSet preserves total mass for partition-uniform estimates (the
// shape DAWA's uniform expansion produces — the |B|/(|B|−|Z∩B|) rescale is
// exact only then) whenever no partition is entirely zeroed.
func TestApplyZeroSetMassPreservationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d := r.Intn(40) + 2
		est := histogram.New(d)
		// Random contiguous partition with uniform per-partition values.
		var parts []Partition
		lo := 0
		for lo < d {
			hi := lo + r.Intn(d-lo)
			parts = append(parts, Partition{Lo: lo, Hi: hi})
			v := float64(r.Intn(50) + 1)
			for i := lo; i <= hi; i++ {
				est.SetCount(i, v)
			}
			lo = hi + 1
		}
		// Zero at most len-1 bins of each partition so none dies entirely.
		var zeros []int
		for _, p := range parts {
			if p.Size() < 2 {
				continue
			}
			for i := p.Lo; i < p.Hi && r.Intn(2) == 0; i++ {
				zeros = append(zeros, i)
			}
		}
		out := ApplyZeroSet(est, parts, zeros)
		return approxEq(out.Scale(), est.Scale(), 1e-6)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+b)
}
