package core

import (
	"math"
	"testing"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// flatEstimator is a deterministic stand-in for DAWA in recipe tests: it
// partitions the domain into fixed-width buckets and reports each bucket's
// true mean in every bin (no noise), mimicking DAWA's uniform expansion.
type flatEstimator struct{ width int }

func (f flatEstimator) Estimate(x *histogram.Histogram, _ float64, _ noise.Source) (*histogram.Histogram, []Partition) {
	var parts []Partition
	out := histogram.New(x.Bins())
	for lo := 0; lo < x.Bins(); lo += f.width {
		hi := lo + f.width - 1
		if hi >= x.Bins() {
			hi = x.Bins() - 1
		}
		parts = append(parts, Partition{Lo: lo, Hi: hi})
		mean := x.RangeSum(lo, hi) / float64(hi-lo+1)
		for i := lo; i <= hi; i++ {
			out.SetCount(i, mean)
		}
	}
	return out, parts
}

func (f flatEstimator) Name() string { return "flat" }

func TestApplyZeroSetRedistributesMass(t *testing.T) {
	est := histogram.FromCounts([]float64{5, 5, 5, 5}) // one partition, total 20
	parts := []Partition{{Lo: 0, Hi: 3}}
	out := ApplyZeroSet(est, parts, []int{1, 3})
	if out.Count(1) != 0 || out.Count(3) != 0 {
		t.Error("zero bins not zeroed")
	}
	// Remaining bins rescaled by 4/2 = 2: 5 → 10 each; total preserved.
	if out.Count(0) != 10 || out.Count(2) != 10 {
		t.Errorf("rescale wrong: %v", out.Counts())
	}
	if got := out.Scale(); got != est.Scale() {
		t.Errorf("mass not preserved: %v vs %v", got, est.Scale())
	}
}

func TestApplyZeroSetWholePartitionZero(t *testing.T) {
	est := histogram.FromCounts([]float64{3, 3, 7, 7})
	parts := []Partition{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}}
	out := ApplyZeroSet(est, parts, []int{0, 1})
	if out.Count(0) != 0 || out.Count(1) != 0 {
		t.Error("fully-zeroed partition not zero")
	}
	if out.Count(2) != 7 || out.Count(3) != 7 {
		t.Error("untouched partition modified")
	}
}

func TestApplyZeroSetNoZerosIsIdentity(t *testing.T) {
	est := histogram.FromCounts([]float64{1, 2, 3})
	out := ApplyZeroSet(est, []Partition{{Lo: 0, Hi: 2}}, nil)
	if est.L1Distance(out) != 0 {
		t.Error("no-op zero set changed the estimate")
	}
}

func TestApplyZeroSetDoesNotMutateInput(t *testing.T) {
	est := histogram.FromCounts([]float64{4, 4})
	_ = ApplyZeroSet(est, []Partition{{Lo: 0, Hi: 1}}, []int{0})
	if est.Count(0) != 4 {
		t.Error("ApplyZeroSet mutated its input")
	}
}

func TestPartitionSize(t *testing.T) {
	if (Partition{Lo: 2, Hi: 5}).Size() != 4 {
		t.Error("Partition.Size wrong")
	}
}

func TestLaplaceZeroDetectorFindsTrueZeros(t *testing.T) {
	// With large counts and reasonable eps, true zeros are detected and
	// heavy bins are not.
	xns := histogram.FromCounts([]float64{0, 100, 0, 250})
	src := noise.NewSource(1)
	hits := make([]int, 4)
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		for _, z := range LaplaceZeroDetector(xns, 1, src) {
			hits[z]++
		}
	}
	if hits[0] != trials || hits[2] != trials {
		t.Errorf("true zeros missed: %v", hits)
	}
	if hits[1] != 0 || hits[3] != 0 {
		t.Errorf("heavy bins misreported as zero: %v", hits)
	}
}

func TestRRZeroDetectorOverReportsButNeverUnderReports(t *testing.T) {
	xns := histogram.FromCounts([]float64{0, 1, 50})
	src := noise.NewSource(2)
	const trials = 3000
	zeroCount := make([]int, 3)
	for trial := 0; trial < trials; trial++ {
		for _, z := range RRZeroDetector(xns, 0.5, src) {
			zeroCount[z]++
		}
	}
	// Bin 0 is always zero.
	if zeroCount[0] != trials {
		t.Errorf("true zero missed %d times", trials-zeroCount[0])
	}
	// Bin 1 (count 1) is reported zero with prob e^-0.5 ≈ 0.607.
	got := float64(zeroCount[1]) / trials
	if math.Abs(got-math.Exp(-0.5)) > 0.03 {
		t.Errorf("single-record bin zero rate %v, want ~%v", got, math.Exp(-0.5))
	}
	// Bin 2 (count 50) essentially never reported zero.
	if zeroCount[2] > trials/100 {
		t.Errorf("heavy bin reported zero %d times", zeroCount[2])
	}
}

func TestRecipeZeroesSparseBinsAndKeepsMass(t *testing.T) {
	// Sparse histogram: recipe should zero the empty region exactly and
	// keep the heavy region close to truth.
	d := 32
	x := histogram.New(d)
	xns := histogram.New(d)
	for i := 0; i < 8; i++ {
		x.SetCount(i, 200)
		xns.SetCount(i, 180)
	}
	src := noise.NewSource(3)
	out := Recipe(flatEstimator{width: 8}, x, xns, 1.0, RecipeConfig{Rho: 0.1}, src)
	for i := 8; i < d; i++ {
		if out.Count(i) != 0 {
			t.Fatalf("empty bin %d got %v", i, out.Count(i))
		}
	}
	for i := 0; i < 8; i++ {
		if math.Abs(out.Count(i)-200) > 1 {
			t.Errorf("heavy bin %d = %v, want ~200", i, out.Count(i))
		}
	}
}

func TestRecipeDefaultsToRRDetector(t *testing.T) {
	x := histogram.FromCounts([]float64{100, 0})
	xns := histogram.FromCounts([]float64{90, 0})
	src := noise.NewSource(4)
	out := Recipe(flatEstimator{width: 1}, x, xns, 1.0, RecipeConfig{Rho: 0.2}, src)
	if out.Count(1) != 0 {
		t.Error("empty bin survived with default detector")
	}
}

func TestRecipePanicsOnDomainMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("domain mismatch did not panic")
		}
	}()
	Recipe(flatEstimator{width: 1}, histogram.New(2), histogram.New(3), 1,
		RecipeConfig{Rho: 0.1}, noise.NewSource(1))
}
