package core

import (
	"testing"
)

func TestOneSidedNeighborConstruction(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30) // record 0 sensitive (minor), record 1 not
	nb, err := OneSidedNeighbor(db, minorsPolicy(), 0, rec(s, 99, 50))
	if err != nil {
		t.Fatal(err)
	}
	if nb.Len() != db.Len() {
		t.Errorf("neighbor size %d != %d", nb.Len(), db.Len())
	}
	if nb.Record(0).Get("Age").AsInt() != 50 {
		t.Error("replacement not applied")
	}
	if !IsOneSidedNeighbor(db, nb, minorsPolicy()) {
		t.Error("constructed neighbor not recognised")
	}
}

func TestOneSidedNeighborRejectsNonSensitive(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30)
	if _, err := OneSidedNeighbor(db, minorsPolicy(), 1, rec(s, 99, 50)); err == nil {
		t.Error("replacing a non-sensitive record must fail")
	}
}

func TestOneSidedNeighborRejectsIdentity(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10)
	if _, err := OneSidedNeighbor(db, minorsPolicy(), 0, rec(s, 0, 10)); err == nil {
		t.Error("identity replacement must fail")
	}
}

func TestOneSidedNeighborIndexOutOfRange(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10)
	if _, err := OneSidedNeighbor(db, minorsPolicy(), 5, rec(s, 99, 50)); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := OneSidedNeighbor(db, minorsPolicy(), -1, rec(s, 99, 50)); err == nil {
		t.Error("negative index must fail")
	}
}

// Asymmetry of N_P (noted under Definition 3.2): swapping a sensitive
// record for a non-sensitive one is a neighbor move, but the reverse —
// swapping that non-sensitive record back — is not.
func TestNeighborRelationAsymmetric(t *testing.T) {
	s := testSchema()
	p := minorsPolicy()
	db := testDB(s, 10, 30)
	nb, err := OneSidedNeighbor(db, p, 0, rec(s, 99, 50)) // now all non-sensitive
	if err != nil {
		t.Fatal(err)
	}
	if !IsOneSidedNeighbor(db, nb, p) {
		t.Fatal("forward direction should hold")
	}
	if IsOneSidedNeighbor(nb, db, p) {
		t.Error("reverse direction should NOT hold (nb has no sensitive records)")
	}
}

func TestIsOneSidedNeighborRejectsSizeMismatch(t *testing.T) {
	s := testSchema()
	a := testDB(s, 10, 30)
	b := testDB(s, 10)
	if IsOneSidedNeighbor(a, b, minorsPolicy()) {
		t.Error("size mismatch accepted")
	}
}

func TestIsOneSidedNeighborRejectsTwoSwaps(t *testing.T) {
	s := testSchema()
	a := testDB(s, 10, 11, 30)
	b := testDB(s, 50, 51, 30) // two records changed
	if IsOneSidedNeighbor(a, b, minorsPolicy()) {
		t.Error("two-record swap accepted")
	}
}

func TestIsOneSidedNeighborIgnoresOrder(t *testing.T) {
	s := testSchema()
	a := testDB(s, 10, 30) // records (ID 0, age 10 — sensitive), (ID 1, age 30)
	// Neighbor: keep (1, 30), replace (0, 10) with (7, 44), rows permuted.
	b := testDB(s)
	b.Append(rec(s, 7, 44))
	b.Append(rec(s, 1, 30))
	if !IsOneSidedNeighbor(a, b, minorsPolicy()) {
		t.Error("permuted neighbor not recognised (relation should be multiset-based)")
	}
}

func TestIsOneSidedNeighborRequiresSensitiveRemoval(t *testing.T) {
	s := testSchema()
	a := testDB(s, 10, 30)
	// Replace the NON-sensitive record (age 30) instead.
	b := testDB(s)
	b.Append(rec(s, 0, 10))
	b.Append(rec(s, 9, 60))
	if IsOneSidedNeighbor(a, b, minorsPolicy()) {
		t.Error("swap of non-sensitive record accepted as neighbor")
	}
}

func TestIsOneSidedNeighborIdenticalTables(t *testing.T) {
	s := testSchema()
	a := testDB(s, 10, 30)
	if IsOneSidedNeighbor(a, a.Clone(), minorsPolicy()) {
		t.Error("identical tables are not neighbors (must differ)")
	}
}
