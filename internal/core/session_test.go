package core

import (
	"math"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

func sessionFixture(budget float64) (*Session, *dataset.Table) {
	s := testSchema()
	db := testDB(s, 12, 30, 16, 45, 50, 33, 28, 61)
	return NewSession(db, minorsPolicy(), budget, noise.NewSource(1)), db
}

func TestSessionBudgetEnforcement(t *testing.T) {
	sess, _ := sessionFixture(1.0)
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 20, 4))
	if _, err := sess.Histogram(q, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Histogram(q, 0.6); err == nil {
		t.Fatal("over-budget query accepted")
	}
	// Failed query must not consume budget; an exact-fit one still works.
	if math.Abs(sess.Remaining()-0.4) > 1e-12 {
		t.Errorf("Remaining = %v", sess.Remaining())
	}
	if _, err := sess.Sample(0.4); err != nil {
		t.Errorf("exact-fit sample rejected: %v", err)
	}
	if sess.Spent() != 1.0 {
		t.Errorf("Spent = %v", sess.Spent())
	}
}

func TestSessionHistogramUsesNonSensitiveOnly(t *testing.T) {
	sess, db := sessionFixture(0)
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 20, 4))
	_, ns := db.Split(minorsPolicy())
	xns := q.Eval(ns)
	// One-sided noise + debias: estimates can exceed xns only by the ln2/ε
	// debias margin, and bins empty of non-sensitive records stay zero.
	for trial := 0; trial < 200; trial++ {
		h, err := sess.Histogram(q, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if h.Count(0) != 0 {
			t.Fatalf("minor-only bin should be zero, got %v", h.Count(0))
		}
		for i := 0; i < h.Bins(); i++ {
			if h.Count(i) > xns.Count(i)+math.Ln2+1e-9 {
				t.Fatalf("bin %d estimate %v exceeds xns+ln2 %v", i, h.Count(i), xns.Count(i))
			}
		}
	}
}

func TestSessionIntHistogramIntegerOutputs(t *testing.T) {
	sess, _ := sessionFixture(0)
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 20, 4))
	for trial := 0; trial < 100; trial++ {
		h, err := sess.IntHistogram(q, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < h.Bins(); i++ {
			c := h.Count(i)
			if c != math.Trunc(c) || c < 0 {
				t.Fatalf("non-integer or negative count %v", c)
			}
		}
	}
}

func TestSessionSampleExcludesSensitive(t *testing.T) {
	sess, _ := sessionFixture(0)
	for trial := 0; trial < 50; trial++ {
		out, err := sess.Sample(2.0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Records() {
			if r.Get("Age").AsInt() <= 17 {
				t.Fatal("sensitive record in session sample")
			}
		}
	}
}

func TestSessionCountNeverExceedsTruth(t *testing.T) {
	sess, db := sessionFixture(0)
	pred := dataset.Cmp("Age", dataset.OpGe, dataset.Int(30))
	_, ns := db.Split(minorsPolicy())
	truth := float64(ns.Count(pred))
	for trial := 0; trial < 300; trial++ {
		c, err := sess.Count(pred, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if c > truth || c < 0 {
			t.Fatalf("count %v outside [0, %v]", c, truth)
		}
	}
}

func TestSessionQuantile(t *testing.T) {
	s := testSchema()
	db := dataset.NewTable(s)
	for i := 0; i < 500; i++ {
		db.Append(rec(s, int64(i), int64(20+i%60))) // ages 20..79, all non-sensitive
	}
	sess := NewSession(db, minorsPolicy(), 0, noise.NewSource(8))
	v, err := sess.Quantile("Age", 0.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Median of 20..79 is ~49-50; the RR sample should land close.
	if v < 40 || v < 0 || v > 60 {
		t.Errorf("median estimate %v, want near 50", v)
	}
	if _, err := sess.Quantile("Age", 1.5, 1); err == nil {
		t.Error("bad q accepted")
	}
	if sess.Spent() != 2.0 {
		t.Errorf("Spent = %v (failed validation must not charge)", sess.Spent())
	}
}

func TestSessionGuaranteeComposes(t *testing.T) {
	sess, _ := sessionFixture(0)
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 40, 2))
	_, _ = sess.Histogram(q, 0.5)
	_, _ = sess.Count(dataset.True(), 0.25)
	g := sess.Guarantee()
	if math.Abs(g.Epsilon-0.75) > 1e-12 {
		t.Errorf("composite eps = %v", g.Epsilon)
	}
}

func TestOneSidedGeometricDistribution(t *testing.T) {
	src := noise.NewSource(2)
	const eps = 1.0
	const trials = 200000
	var sum float64
	zero := 0
	for i := 0; i < trials; i++ {
		k := OneSidedGeometric(eps, src)
		if k > 0 {
			t.Fatalf("positive geometric sample %d", k)
		}
		if k == 0 {
			zero++
		}
		sum += float64(k)
	}
	alpha := math.Exp(-eps)
	if got, want := float64(zero)/trials, 1-alpha; math.Abs(got-want) > 0.01 {
		t.Errorf("Pr[K=0] = %v, want ~%v", got, want)
	}
	if got, want := sum/trials, OneSidedGeometricMean(eps); math.Abs(got-want) > 0.02 {
		t.Errorf("mean %v, want ~%v", got, want)
	}
}

func TestOsdpGeometricZeroPreservation(t *testing.T) {
	xns := histogram.FromCounts([]float64{0, 40, 0})
	src := noise.NewSource(3)
	for trial := 0; trial < 300; trial++ {
		h := OsdpGeometric(xns, 1.0, src)
		if h.Count(0) != 0 || h.Count(2) != 0 {
			t.Fatal("true zero bin perturbed")
		}
		if h.Count(1) > 40 {
			t.Fatal("estimate exceeds true count")
		}
	}
}

func TestGeometricPanicsOnBadEps(t *testing.T) {
	for _, f := range []func(){
		func() { OneSidedGeometric(0, noise.NewSource(1)) },
		func() { OsdpGeometric(histogram.New(1), -1, noise.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
