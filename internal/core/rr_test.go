package core

import (
	"math"
	"testing"
	"testing/quick"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// Test fixtures: a tiny universe of "person" records where minors are
// sensitive, mirroring the paper's first policy example.

func testSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Field{Name: "ID", Kind: dataset.KindInt},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
}

func rec(s *dataset.Schema, id, age int64) dataset.Record {
	return dataset.NewRecord(s, dataset.Int(id), dataset.Int(age))
}

func minorsPolicy() dataset.Policy {
	return dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
}

func testDB(s *dataset.Schema, ages ...int64) *dataset.Table {
	db := dataset.NewTable(s)
	for i, a := range ages {
		db.Append(rec(s, int64(i), a))
	}
	return db
}

func TestRRReleasesOnlyNonSensitive(t *testing.T) {
	s := testSchema()
	db := testDB(s, 12, 30, 16, 45, 50)
	m := NewRR(minorsPolicy(), 5) // high eps: keep nearly everything
	src := noise.NewSource(1)
	for trial := 0; trial < 50; trial++ {
		out := m.Release(db, src)
		for _, r := range out.Records() {
			if r.Get("Age").AsInt() <= 17 {
				t.Fatalf("released sensitive record age %d", r.Get("Age").AsInt())
			}
		}
	}
}

func TestRROutputIsSubMultiset(t *testing.T) {
	s := testSchema()
	db := testDB(s, 20, 20, 20, 33, 41)
	m := NewRR(minorsPolicy(), 1)
	src := noise.NewSource(2)
	in := db.Multiset()
	for trial := 0; trial < 100; trial++ {
		out := m.Release(db, src).Multiset()
		for k, c := range out {
			if c > in[k] {
				t.Fatalf("output multiplicity %d exceeds input %d for %q", c, in[k], k)
			}
		}
	}
}

func TestRRKeepRateMatchesTable1(t *testing.T) {
	// Table 1: ε=1 → ~63%, ε=0.5 → ~39%, ε=0.1 → ~9.5%.
	s := testSchema()
	const n = 20000
	ages := make([]int64, n)
	for i := range ages {
		ages[i] = 30 // all non-sensitive
	}
	db := testDB(s, ages...)
	src := noise.NewSource(3)
	for _, c := range []struct{ eps, want float64 }{{1, 0.632}, {0.5, 0.393}, {0.1, 0.095}} {
		m := NewRR(minorsPolicy(), c.eps)
		out := m.Release(db, src)
		got := float64(out.Len()) / n
		if math.Abs(got-c.want) > 0.015 {
			t.Errorf("eps=%v: release rate %v, want ~%v", c.eps, got, c.want)
		}
		if want := m.ExpectedSampleSize(n); math.Abs(want-c.want*n) > 0.01*n {
			t.Errorf("eps=%v: ExpectedSampleSize %v", c.eps, want)
		}
	}
}

func TestRRPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 did not panic")
		}
	}()
	NewRR(minorsPolicy(), 0)
}

func TestRRGuaranteeAndName(t *testing.T) {
	m := NewRR(minorsPolicy(), 0.7)
	g := m.Guarantee()
	if g.Epsilon != 0.7 || g.Policy.Name() != "minors" {
		t.Errorf("Guarantee = %v", g)
	}
	if m.Name() != "OsdpRR" {
		t.Errorf("Name = %q", m.Name())
	}
	if got := g.String(); got != "(minors, 0.7)-OSDP" {
		t.Errorf("Guarantee.String = %q", got)
	}
}

func TestRRInverseProbabilityScale(t *testing.T) {
	m := NewRR(minorsPolicy(), 1)
	want := 1 / (1 - math.Exp(-1))
	if got := m.InverseProbabilityScale(); math.Abs(got-want) > 1e-12 {
		t.Errorf("scale = %v, want %v", got, want)
	}
}

// Empirical verification of Theorem 4.1: for a single-record database and a
// sensitive record r vs any replacement r', the probability of every output
// differs by at most e^ε.
func TestRRPrivacyRatioSingleRecord(t *testing.T) {
	s := testSchema()
	pol := minorsPolicy()
	const eps = 0.8
	const trials = 300000
	m := NewRR(pol, eps)
	src := noise.NewSource(4)

	suppressProb := func(age int64) float64 {
		db := testDB(s, age)
		suppressed := 0
		for i := 0; i < trials; i++ {
			if m.Release(db, src).Len() == 0 {
				suppressed++
			}
		}
		return float64(suppressed) / trials
	}

	// Case 2.2 of the proof: r sensitive (always suppressed), r' non-sensitive.
	pSens := suppressProb(10) // sensitive: suppression prob must be 1
	pNS := suppressProb(30)   // non-sensitive: suppression prob e^-ε
	if pSens != 1 {
		t.Fatalf("sensitive record suppressed with prob %v, want 1", pSens)
	}
	wantNS := math.Exp(-eps)
	if math.Abs(pNS-wantNS) > 0.01 {
		t.Fatalf("non-sensitive suppression prob %v, want ~%v", pNS, wantNS)
	}
	ratio := pSens / pNS
	if ratio > math.Exp(eps)*1.05 {
		t.Errorf("privacy ratio %v exceeds e^eps = %v", ratio, math.Exp(eps))
	}
	// Case 2.1: both sensitive — ratio exactly 1.
	if p2 := suppressProb(5); p2 != 1 {
		t.Errorf("second sensitive record suppression prob %v", p2)
	}
}

func TestRRExpectedL1Error(t *testing.T) {
	// With no sensitive records the error floor is n·e^-ε.
	got := RRExpectedL1Error(1000, 0, 1)
	want := 1000 * math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("RRExpectedL1Error = %v, want %v", got, want)
	}
	// Sensitive records each add 1.
	if diff := RRExpectedL1Error(1000, 100, 1) - (100 + 900*math.Exp(-1)); math.Abs(diff) > 1e-9 {
		t.Errorf("sensitive contribution off by %v", diff)
	}
}

func TestCrossoverTheorem51(t *testing.T) {
	// Paper's example: d = 10^4 bins, ε = 0.1 → RR worse when n > 2.2×10^5.
	d := 10000
	eps := 0.1
	if RRWorseThanLaplace(220000, d, eps) {
		t.Error("n=2.2e5 should sit at/below the crossover")
	}
	if !RRWorseThanLaplace(250000, d, eps) {
		t.Error("n=2.5e5 should be past the crossover")
	}
	// Exact threshold: n·ε = 2d·e^ε → n = 2d·e^ε/ε.
	threshold := 2 * float64(d) * math.Exp(eps) / eps
	if RRWorseThanLaplace(int(threshold)-1, d, eps) {
		t.Error("just below threshold misclassified")
	}
	if !RRWorseThanLaplace(int(threshold)+1, d, eps) {
		t.Error("just above threshold misclassified")
	}
}

func TestLaplaceExpectedL1Error(t *testing.T) {
	if got := LaplaceExpectedL1Error(100, 0.5); got != 400 {
		t.Errorf("LaplaceExpectedL1Error = %v", got)
	}
}

// Property: for random databases and eps, RR output size never exceeds the
// number of non-sensitive records, and sensitive records never leak.
func TestRRInvariantsQuick(t *testing.T) {
	s := testSchema()
	pol := minorsPolicy()
	src := noise.NewSource(5)
	f := func(agesRaw []uint8, epsRaw uint8) bool {
		if len(agesRaw) == 0 {
			return true
		}
		db := dataset.NewTable(s)
		nNS := 0
		for i, a := range agesRaw {
			age := int64(a % 80)
			db.Append(rec(s, int64(i), age))
			if age > 17 {
				nNS++
			}
		}
		eps := float64(epsRaw%50)/10 + 0.1
		out := NewRR(pol, eps).Release(db, src)
		if out.Len() > nNS {
			return false
		}
		for _, r := range out.Records() {
			if r.Get("Age").AsInt() <= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
