package core

import (
	"testing"

	"osdp/internal/dataset"
)

func TestExtendedNeighborRemove(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30)
	nb, err := ExtendedNeighborRemove(db, minorsPolicy(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Len() != 1 || nb.Record(0).Get("Age").AsInt() != 30 {
		t.Errorf("removal produced %v records", nb.Len())
	}
	if _, err := ExtendedNeighborRemove(db, minorsPolicy(), 1); err == nil {
		t.Error("removing a non-sensitive record must fail")
	}
	if _, err := ExtendedNeighborRemove(db, minorsPolicy(), 7); err == nil {
		t.Error("out-of-range removal must fail")
	}
}

func TestExtendedNeighborAdd(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30) // has a sensitive record (age 10)
	nb, err := ExtendedNeighborAdd(db, minorsPolicy(), rec(s, 9, 44))
	if err != nil {
		t.Fatal(err)
	}
	if nb.Len() != 3 {
		t.Errorf("addition produced %d records", nb.Len())
	}
	// With no sensitive record distinct from the addition, no neighbor exists.
	allNS := testDB(s, 30, 40)
	if _, err := ExtendedNeighborAdd(allNS, minorsPolicy(), rec(s, 9, 44)); err == nil {
		t.Error("addition without distinct sensitive record must fail")
	}
}

// Round trip of Theorem 10.1's argument: remove a sensitive record, then
// add the replacement — the result is exactly the bounded-model neighbor.
func TestExtendedRemoveAddEqualsSwap(t *testing.T) {
	s := testSchema()
	p := minorsPolicy()
	db := testDB(s, 10, 30)
	repl := rec(s, 42, 55)

	direct, err := OneSidedNeighbor(db, p, 0, repl)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := ExtendedNeighborRemove(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaExtended := removed.Clone()
	viaExtended.Append(repl)

	dm, vm := direct.Multiset(), viaExtended.Multiset()
	if len(dm) != len(vm) {
		t.Fatalf("multiset size mismatch: %v vs %v", dm, vm)
	}
	for k, c := range dm {
		if vm[k] != c {
			t.Fatalf("multiset mismatch at %q: %d vs %d", k, c, vm[k])
		}
	}
}

func TestEOSDPToOSDPEpsilon(t *testing.T) {
	if got := EOSDPToOSDPEpsilon(0.5); got != 1.0 {
		t.Errorf("eOSDP→OSDP eps = %v, want 1", got)
	}
}

func TestPartitioningSplit(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10, 30, 20, 44, 16)
	pt := Partitioning{
		Parts: 2,
		Route: func(r dataset.Record) int {
			if r.Get("Age").AsInt() <= 17 {
				return 0
			}
			return 1
		},
	}
	parts := pt.Split(db)
	if parts[0].Len() != 2 || parts[1].Len() != 3 {
		t.Errorf("split sizes = %d, %d", parts[0].Len(), parts[1].Len())
	}
	if parts[0].Len()+parts[1].Len() != db.Len() {
		t.Error("partitioning lost records")
	}
}

func TestPartitioningBadRoutePanics(t *testing.T) {
	s := testSchema()
	db := testDB(s, 10)
	pt := Partitioning{Parts: 2, Route: func(dataset.Record) int { return 5 }}
	defer func() {
		if recover() == nil {
			t.Fatal("bad route did not panic")
		}
	}()
	pt.Split(db)
}

func TestParallelComposite(t *testing.T) {
	p1 := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	p2 := dataset.NewPolicy("seniors", dataset.Cmp("Age", dataset.OpGe, dataset.Int(65)))
	g := ParallelComposite([]Guarantee{
		{Policy: p1, Epsilon: 0.3},
		{Policy: p2, Epsilon: 0.9},
		{Policy: p1, Epsilon: 0.5},
	})
	if g.Epsilon != 0.9 {
		t.Errorf("parallel eps = %v, want max 0.9", g.Epsilon)
	}
	s := testSchema()
	// Minimum relaxation of minors+seniors marks nothing sensitive (no
	// record is both).
	if g.Policy.Sensitive(rec(s, 0, 10)) || g.Policy.Sensitive(rec(s, 0, 70)) {
		t.Error("parallel composite policy wrong")
	}
}

func TestParallelCompositeEmpty(t *testing.T) {
	g := ParallelComposite(nil)
	if g.Epsilon != 0 || g.Policy.Name() != "P_all" {
		t.Errorf("empty parallel composite = %v", g)
	}
}
