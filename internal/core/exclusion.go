package core

import (
	"fmt"
	"math"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// This file provides an empirical analyser for the exclusion attack of
// §3.2. Definition 3.4 (φ-freedom from exclusion attacks) bounds how much
// any product-prior adversary can sharpen the odds that a target record is
// sensitive after seeing a mechanism's output:
//
//	posterior-odds(x vs y) ≤ e^φ · prior-odds(x vs y).
//
// Under a product prior the posterior amplification equals the likelihood
// ratio Pr[M(D_x) ∈ O] / Pr[M(D_y) ∈ O], so the analyser estimates that
// ratio by Monte Carlo over mechanism runs: OSDP mechanisms stay below e^ε
// (Theorem 3.1) while mechanisms that release non-sensitive records
// truthfully and completely exhibit unbounded ratios (the exclusion attack;
// PDP's Suppress with τ=∞ is the canonical offender).

// FullRelease is the "All NS" baseline: it releases every non-sensitive
// record truthfully and suppresses every sensitive record. It is the
// record-release analogue of PDP's Suppress algorithm with τ = ∞ and does
// NOT satisfy OSDP for any finite ε — the analyser demonstrates the
// unbounded leak.
type FullRelease struct {
	policy dataset.Policy
}

// NewFullRelease builds the baseline for the given policy.
func NewFullRelease(policy dataset.Policy) *FullRelease {
	return &FullRelease{policy: policy}
}

// Release returns all non-sensitive records.
func (m *FullRelease) Release(db *dataset.Table, _ noise.Source) *dataset.Table {
	_, ns := db.Split(m.policy)
	return ns
}

// Guarantee reports an infinite ε: FullRelease offers no OSDP protection.
func (m *FullRelease) Guarantee() Guarantee {
	return Guarantee{Policy: m.policy, Epsilon: math.Inf(1)}
}

// Name implements Mechanism.
func (m *FullRelease) Name() string { return "AllNS" }

// EventFunc reduces a mechanism output to a discrete event key so that
// output distributions can be compared. The exclusion attack needs only
// the coarsest event — whether the target appears in the release.
type EventFunc func(out *dataset.Table) string

// PresenceEvent returns an EventFunc reporting "present" when a record
// equal to target (by value) appears in the output and "absent" otherwise.
func PresenceEvent(target dataset.Record) EventFunc {
	key := target.Key()
	return func(out *dataset.Table) string {
		for _, r := range out.Records() {
			if r.Key() == key {
				return "present"
			}
		}
		return "absent"
	}
}

// ExclusionReport is the result of an empirical exclusion-attack analysis.
type ExclusionReport struct {
	// EventProbX and EventProbY are the estimated output-event
	// distributions when the target record takes value x and y.
	EventProbX, EventProbY map[string]float64
	// MaxLogRatio is the estimated φ: the largest ln(p_x(e)/p_y(e)) over
	// observed events, where x is the sensitive value. Definition 3.4 is
	// one-sided — it bounds only how much an output can raise the odds of
	// the sensitive value, so events impossible under x (ratio 0) do not
	// count, while events impossible under y but possible under x push φ
	// to +Inf — the unbounded leak of a mechanism vulnerable to exclusion
	// attacks.
	MaxLogRatio float64
	// Trials is the Monte Carlo sample count per world.
	Trials int
}

// String renders the report compactly.
func (r ExclusionReport) String() string {
	return fmt.Sprintf("φ̂=%.3f over %d trials (x: %v, y: %v)",
		r.MaxLogRatio, r.Trials, r.EventProbX, r.EventProbY)
}

// AnalyzeExclusion estimates the posterior-odds amplification an adversary
// gains about the value of the record at index slot. It runs mech trials
// times on the database with the slot set to x and again with it set to y,
// compares the event distributions, and reports the worst log-ratio.
//
// To exhibit an exclusion attack, choose x sensitive under the mechanism's
// policy and y non-sensitive, and use PresenceEvent(y): for a mechanism
// that always releases non-sensitive records the event "y absent" has
// probability 1 in world x but 0 in world y, so MaxLogRatio = +Inf,
// whereas a (P, ε)-OSDP mechanism stays ≤ ε up to sampling error.
func AnalyzeExclusion(mech Mechanism, base *dataset.Table, slot int, x, y dataset.Record, event EventFunc, trials int, src noise.Source) ExclusionReport {
	if trials <= 0 {
		panic("core: trials must be positive")
	}
	run := func(v dataset.Record) map[string]float64 {
		db := dataset.NewTable(base.Schema())
		for j, r := range base.Records() {
			if j == slot {
				db.Append(v)
			} else {
				db.Append(r)
			}
		}
		counts := make(map[string]int)
		for i := 0; i < trials; i++ {
			counts[event(mech.Release(db, src))]++
		}
		probs := make(map[string]float64, len(counts))
		for e, c := range counts {
			probs[e] = float64(c) / float64(trials)
		}
		return probs
	}
	px, py := run(x), run(y)

	maxLog := 0.0
	for e, a := range px {
		if a == 0 {
			continue // event cannot raise the odds of x
		}
		b := py[e]
		var lr float64
		if b > 0 {
			lr = math.Log(a / b)
		} else {
			lr = math.Inf(1) // possible under x, impossible under y
		}
		if lr > maxLog {
			maxLog = lr
		}
	}
	return ExclusionReport{EventProbX: px, EventProbY: py, MaxLogRatio: maxLog, Trials: trials}
}
