package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// TraceHook lets a serving layer observe the timed phases of one query
// without core importing a tracing package. Calling the hook with a
// phase name ("scan", "noise") opens the phase; calling the returned
// function closes it, with optional key/value attribute pairs. Session
// query methods accept the hook as a trailing variadic parameter so
// untraced callers are untouched and a traced call passes exactly one.
type TraceHook func(name string) func(kv ...string)

// beginPhase opens a named phase on the first hook, if any. It returns
// nil when tracing is disabled, so a call site pays one branch and
// never builds attribute strings for a trace nobody records.
func beginPhase(trace []TraceHook, name string) func(kv ...string) {
	if len(trace) == 0 || trace[0] == nil {
		return nil
	}
	return trace[0](name)
}

// endScan closes a scan phase, attaching the pool shape that executed
// it (row count, worker slots, dispatched chunks).
func endScan(end func(kv ...string), rows int) {
	if end == nil {
		return
	}
	end("rows", strconv.Itoa(rows),
		"workers", strconv.Itoa(dataset.ScanParallelism(rows)),
		"chunks", strconv.Itoa(dataset.ScanChunks(rows)))
}

// ErrEmptySample is wrapped by Quantile when the Bernoulli sample keeps
// zero records. The charge is still consumed (see Quantile); errors.Is
// lets callers distinguish this retriable outcome from budget exhaustion.
var ErrEmptySample = errors.New("sample came up empty")

// Session is an interactive OSDP query-answering endpoint over a fixed
// database — the online setting §7 flags as an open engineering problem.
// A session binds the data, the policy, a privacy-budget accountant, and
// a randomness source; every answer is charged to the accountant before
// any noise is drawn, so an exhausted budget can never leak a partial
// answer. All answers compose by Theorem 3.3: when the budget is spent,
// the transcript as a whole satisfies (P, budget)-OSDP.
//
// A Session is safe for concurrent use provided its noise.Source is —
// seeded sources must be wrapped with noise.Locked. The table, policy,
// and cached partition are never mutated after construction, and all
// budget accounting goes through the mutex-guarded Accountant.
//
// The non-sensitive partition is held as a bitset-backed VIEW over the
// database's column store, not a materialized copy: N sessions over one
// dataset share a single set of column vectors, and the policy split
// itself is computed at most once per (table, policy) — dataset.Table
// caches the partition bitsets, so even sessions opened concurrently
// with plain NewSession reuse one split pass. On tables above 64K rows
// that split pass, and every histogram/count scan a query performs,
// shards across the dataset scan worker pool (dataset.SetScanWorkers);
// parallel answers are bit-identical to serial ones, so the released
// noise distribution is untouched by the worker count.
type Session struct {
	db     *dataset.Table
	ns     *dataset.Table // non-sensitive partition: a selection view over db's columns
	policy dataset.Policy
	acct   *Accountant
	src    noise.Source
}

// NewSession opens a session over db with a total ε budget. A budget of 0
// means unlimited (useful for testing, unwise in production).
func NewSession(db *dataset.Table, policy dataset.Policy, budget float64, src noise.Source) *Session {
	_, ns := db.Split(policy)
	return NewSessionWithPartition(db, ns, policy, budget, src)
}

// NewSessionWithPartition opens a session reusing a precomputed
// non-sensitive partition, e.g. the view a serving layer derives once at
// dataset registration. ns must be exactly the non-sensitive records of
// db under policy; both tables are treated as immutable for the
// session's life.
func NewSessionWithPartition(db, ns *dataset.Table, policy dataset.Policy, budget float64, src noise.Source) *Session {
	return &Session{
		db:     db,
		ns:     ns,
		policy: policy,
		acct:   NewAccountant(budget),
		src:    src,
	}
}

// Remaining returns the unspent budget (0 when the session is unlimited).
func (s *Session) Remaining() float64 { return s.acct.Remaining() }

// Budget returns the total ε budget the session was opened with (0 means
// unlimited). Exposed so serving layers can report it alongside answers.
func (s *Session) Budget() float64 { return s.acct.Budget() }

// Policy returns the session's privacy policy.
func (s *Session) Policy() dataset.Policy { return s.policy }

// Spent returns the ε consumed so far.
func (s *Session) Spent() float64 { return s.acct.Spent() }

// Guarantee returns the cumulative guarantee of everything answered so far.
func (s *Session) Guarantee() Guarantee { return s.acct.Composite() }

// Snapshot returns the spent total and composite guarantee atomically;
// see Accountant.Snapshot.
func (s *Session) Snapshot() (spent float64, composite Guarantee) { return s.acct.Snapshot() }

// charge reserves eps from the budget or fails the query.
func (s *Session) charge(eps float64) error {
	return s.acct.Spend(Guarantee{Policy: s.policy, Epsilon: eps})
}

// Histogram answers a histogram query with OsdpLaplaceL1 at privacy level
// eps, charging the budget. The query is evaluated on the non-sensitive
// records only, as the mechanism requires.
func (s *Session) Histogram(q histogram.Query, eps float64, trace ...TraceHook) (*histogram.Histogram, error) {
	if err := s.charge(eps); err != nil {
		return nil, fmt.Errorf("core: histogram query rejected: %w", err)
	}
	end := beginPhase(trace, "scan")
	x := q.Eval(s.ns)
	endScan(end, s.ns.Len())
	end = beginPhase(trace, "noise")
	h := OsdpLaplaceL1(x, eps, s.src)
	if end != nil {
		end()
	}
	return h, nil
}

// IntHistogram answers a histogram query with OsdpGeometric (integer
// outputs) at privacy level eps, charging the budget.
func (s *Session) IntHistogram(q histogram.Query, eps float64, trace ...TraceHook) (*histogram.Histogram, error) {
	if err := s.charge(eps); err != nil {
		return nil, fmt.Errorf("core: histogram query rejected: %w", err)
	}
	end := beginPhase(trace, "scan")
	x := q.Eval(s.ns)
	endScan(end, s.ns.Len())
	end = beginPhase(trace, "noise")
	h := OsdpGeometric(x, eps, s.src)
	if end != nil {
		end()
	}
	return h, nil
}

// Sample releases a true sample of the non-sensitive records via OsdpRR at
// privacy level eps, charging the budget.
func (s *Session) Sample(eps float64, trace ...TraceHook) (*dataset.Table, error) {
	if err := s.charge(eps); err != nil {
		return nil, fmt.Errorf("core: sample rejected: %w", err)
	}
	// OsdpRR interleaves the scan and the randomized keep decisions, so
	// the whole release is one "noise" phase.
	end := beginPhase(trace, "noise")
	rel := NewRR(s.policy, eps).Release(s.db, s.src)
	if end != nil {
		end("rows", strconv.Itoa(s.db.Len()))
	}
	return rel, nil
}

// Count answers a counting query (records matching pred) with one-sided
// Laplace noise at privacy level eps, charging the budget. Counts are
// computed over non-sensitive records; like all §5.1 primitives the answer
// never exceeds the true non-sensitive count.
func (s *Session) Count(pred dataset.Predicate, eps float64, trace ...TraceHook) (float64, error) {
	if err := s.charge(eps); err != nil {
		return 0, fmt.Errorf("core: count rejected: %w", err)
	}
	end := beginPhase(trace, "scan")
	n := s.ns.Count(pred)
	endScan(end, s.ns.Len())
	end = beginPhase(trace, "noise")
	c := float64(n) + noise.OneSidedLaplace(s.src, 1/eps)
	if end != nil {
		end()
	}
	if c < 0 {
		c = 0
	}
	return c, nil
}

// Quantile releases the q-quantile of a numeric attribute by drawing an
// OsdpRR sample at privacy level eps and returning the sample quantile —
// post-processing of the release, so the whole call costs exactly eps.
// It fails when the (random) sample is empty; callers should retry with a
// fresh budget slice or a larger eps.
//
// The ε charge is consumed even when the sample comes up empty. This is
// deliberate, not a bug: the Bernoulli draws ARE the OsdpRR mechanism
// execution, and "the sample was empty" is itself an observable outcome
// of that execution. Refunding the charge would let an analyst repeat the
// call until a non-empty sample appeared while paying for only one run,
// and the transcript of discarded runs would leak beyond the accounted
// budget — breaking the Theorem 3.3 composition the accountant certifies.
func (s *Session) Quantile(attr string, q, eps float64, trace ...TraceHook) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("core: quantile q=%v outside [0, 1]", q)
	}
	if err := s.charge(eps); err != nil {
		return 0, fmt.Errorf("core: quantile rejected: %w", err)
	}
	// The Bernoulli keep loop IS the mechanism execution — scan and
	// randomness are inseparable here, so it traces as one "noise"
	// phase.
	end := beginPhase(trace, "noise")
	keep := noise.KeepProbability(eps)
	var values []float64
	for i, n := 0, s.ns.Len(); i < n; i++ {
		if noise.Bernoulli(s.src, keep) {
			values = append(values, s.ns.Record(i).Get(attr).AsFloat())
		}
	}
	if end != nil {
		end("rows", strconv.Itoa(s.ns.Len()), "kept", strconv.Itoa(len(values)))
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("core: quantile %w (kept 0 of %d records)", ErrEmptySample, s.ns.Len())
	}
	sort.Float64s(values)
	rank := int(math.Ceil(q * float64(len(values))))
	if rank < 1 {
		rank = 1
	}
	return values[rank-1], nil
}
