package core

import (
	"math"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// RR is the OsdpRR mechanism (Algorithm 1): it releases each non-sensitive
// record independently with probability 1 − e^(−ε) and suppresses every
// sensitive record. The output is a *true* sample of the non-sensitive
// data, which supports analyses that need unperturbed records
// (classification, extractive summaries, very-high-dimensional histograms)
// while still satisfying (P, ε)-OSDP (Theorem 4.1): suppression of a
// non-sensitive record happens with probability e^(−ε), exactly the
// likelihood ratio needed to hide whether a suppressed record was sensitive
// or a non-sensitive record that lost the coin flip.
type RR struct {
	policy dataset.Policy
	eps    float64
}

// NewRR builds an OsdpRR mechanism with the given policy and privacy
// parameter. It panics if eps <= 0.
func NewRR(policy dataset.Policy, eps float64) *RR {
	if eps <= 0 {
		panic("core: OsdpRR requires eps > 0")
	}
	return &RR{policy: policy, eps: eps}
}

// Release runs Algorithm 1 on db. Iteration is indexed so no per-record
// view slice is materialized for large databases.
func (m *RR) Release(db *dataset.Table, src noise.Source) *dataset.Table {
	keep := noise.KeepProbability(m.eps)
	out := dataset.NewTable(db.Schema())
	for i, n := 0, db.Len(); i < n; i++ {
		r := db.Record(i)
		if m.policy.NonSensitive(r) && noise.Bernoulli(src, keep) {
			out.Append(r)
		}
	}
	return out
}

// Guarantee reports (P, ε)-OSDP.
func (m *RR) Guarantee() Guarantee { return Guarantee{Policy: m.policy, Epsilon: m.eps} }

// Name implements Mechanism.
func (m *RR) Name() string { return "OsdpRR" }

// KeepProbability returns the per-record release probability 1 − e^(−ε).
func (m *RR) KeepProbability() float64 { return noise.KeepProbability(m.eps) }

// ExpectedSampleSize returns the expected number of released records when
// db has nNonSensitive non-sensitive records: nNonSensitive · (1 − e^(−ε)).
// The released size is Binomial(nNonSensitive, 1 − e^(−ε)) (Table 1).
func (m *RR) ExpectedSampleSize(nNonSensitive int) float64 {
	return float64(nNonSensitive) * m.KeepProbability()
}

// InverseProbabilityScale is the Horvitz–Thompson reweighting factor
// 1/(1 − e^(−ε)) that turns counts over the released sample into unbiased
// estimates of counts over the non-sensitive data.
func (m *RR) InverseProbabilityScale() float64 {
	return 1 / m.KeepProbability()
}

// RRSampleHistogram releases a histogram by applying OsdpRR to the records
// behind the non-sensitive histogram xns: every unit of count survives
// independently with probability 1 − e^(−ε), i.e. each bin becomes
// Binomial(xns_i, 1 − e^(−ε)). This is "running the query on the sample of
// non-sensitive records output by OsdpRR" (§5.1) and satisfies (P, ε)-OSDP
// because it is post-processing of the OsdpRR release.
func RRSampleHistogram(xns *histogram.Histogram, eps float64, src noise.Source) *histogram.Histogram {
	if eps <= 0 {
		panic("core: RRSampleHistogram requires eps > 0")
	}
	keep := noise.KeepProbability(eps)
	out := histogram.New(xns.Bins())
	for i := 0; i < xns.Bins(); i++ {
		out.SetCount(i, float64(noise.Binomial(src, int(xns.Count(i)), keep)))
	}
	return out
}

// RRExpectedL1Error lower-bounds the expected L1 error of answering a
// histogram from the OsdpRR sample (proof of Theorem 5.1): even with no
// sensitive records, n·e^(−ε) non-sensitive records are suppressed, each
// contributing 1 to L1 error, plus every sensitive record is suppressed.
func RRExpectedL1Error(nTotal, nSensitive int, eps float64) float64 {
	ns := float64(nTotal - nSensitive)
	return float64(nSensitive) + ns*math.Exp(-eps)
}

// LaplaceExpectedL1Error is the expected L1 error of the ε-DP Laplace
// mechanism on a d-bin histogram of sensitivity 2: each bin's |Lap(2/ε)|
// has mean 2/ε, so the total is 2d/ε (as used in Theorem 5.1).
func LaplaceExpectedL1Error(d int, eps float64) float64 {
	return 2 * float64(d) / eps
}

// RRWorseThanLaplace evaluates the crossover condition of Theorem 5.1:
// OsdpRR's expected L1 error exceeds the Laplace mechanism's whenever
// n·ε > 2d·e^ε. (The theorem states the condition in the limit of no
// sensitive records.)
func RRWorseThanLaplace(n, d int, eps float64) bool {
	return float64(n)*eps > 2*float64(d)*math.Exp(eps)
}
