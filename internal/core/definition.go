// Package core implements one-sided differential privacy (OSDP) as defined
// in "One-sided Differential Privacy" (Doudalis, Kotsogiannis, Haney,
// Machanavajjhala, Mehrotra): the privacy definition itself (one-sided
// neighbors, Definition 3.2/3.3), the mechanisms OsdpRR (Algorithm 1),
// OsdpLaplace / OsdpLaplaceL1 (Definition 5.2 / Algorithm 2), the generic
// recipe for upgrading two-phase DP histogram algorithms to OSDP including
// DAWAz (Algorithm 3, §5.2), the composition calculus (Theorems 3.2/3.3,
// Appendix 10.1), and an empirical exclusion-attack analyser (Definition
// 3.4, Theorems 3.1/3.4).
//
// Throughout the package a "database" is a *dataset.Table and a policy is a
// dataset.Policy mapping records to {sensitive, non-sensitive}.
package core

import (
	"fmt"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// Guarantee describes the privacy guarantee a mechanism run satisfied:
// (P, ε)-OSDP. The paper's DP special case is Policy = AllSensitive.
type Guarantee struct {
	Policy  dataset.Policy
	Epsilon float64
}

// String renders the guarantee, e.g. "(minors, 1.0)-OSDP".
func (g Guarantee) String() string {
	return fmt.Sprintf("(%s, %g)-OSDP", g.Policy.Name(), g.Epsilon)
}

// OneSidedNeighbor constructs a one-sided P-neighbor of db (Definition
// 3.2): it replaces the record at index i — which must be sensitive under p
// — with replacement. It returns an error if record i is not sensitive
// (non-sensitive records have no neighbors under OSDP) or if the
// replacement equals the original (neighbors must differ).
func OneSidedNeighbor(db *dataset.Table, p dataset.Policy, i int, replacement dataset.Record) (*dataset.Table, error) {
	if i < 0 || i >= db.Len() {
		return nil, fmt.Errorf("core: record index %d out of range [0, %d)", i, db.Len())
	}
	orig := db.Record(i)
	if !p.Sensitive(orig) {
		return nil, fmt.Errorf("core: record %d is non-sensitive under %s; one-sided neighbors replace only sensitive records", i, p.Name())
	}
	if orig.Key() == replacement.Key() {
		return nil, fmt.Errorf("core: replacement must differ from the original record")
	}
	out := dataset.NewTable(db.Schema())
	for j, r := range db.Records() {
		if j == i {
			out.Append(replacement)
		} else {
			out.Append(r)
		}
	}
	return out, nil
}

// IsOneSidedNeighbor reports whether b ∈ N_P(a): b must have the same size
// as a and be obtainable from a by swapping exactly one sensitive record of
// a for a different record. The check is multiset-based, so record order is
// irrelevant.
func IsOneSidedNeighbor(a, b *dataset.Table, p dataset.Policy) bool {
	if a.Len() != b.Len() {
		return false
	}
	am, bm := a.Multiset(), b.Multiset()
	// removed: keys with higher multiplicity in a; added: higher in b.
	var removedKey, addedKey string
	var removedN, addedN int
	for k, ca := range am {
		if cb := bm[k]; ca > cb {
			removedN += ca - cb
			removedKey = k
		}
	}
	for k, cb := range bm {
		if ca := am[k]; cb > ca {
			addedN += cb - ca
			addedKey = k
		}
	}
	if removedN != 1 || addedN != 1 || removedKey == addedKey {
		return false
	}
	// The removed record must be sensitive in a.
	for _, r := range a.Records() {
		if r.Key() == removedKey {
			return p.Sensitive(r)
		}
	}
	return false
}

// Mechanism is a randomized algorithm over databases whose output is a
// released table (possibly empty). The two core record-release mechanisms
// (OsdpRR and the PDP Suppress baseline) satisfy it.
type Mechanism interface {
	// Release runs the mechanism on db and returns the released records.
	Release(db *dataset.Table, src noise.Source) *dataset.Table
	// Guarantee reports the privacy guarantee the mechanism satisfies.
	Guarantee() Guarantee
	// Name is a short display name for experiment reports.
	Name() string
}
