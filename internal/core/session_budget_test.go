package core

import (
	"math"
	"strings"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// constSource always returns the same uniform value — handy for forcing
// every Bernoulli draw to one outcome.
type constSource float64

func (c constSource) Float64() float64 { return float64(c) }

func smallNumericTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	schema := dataset.NewSchema(dataset.Field{Name: "X", Kind: dataset.KindInt})
	tab := dataset.NewTable(schema)
	for i := 0; i < n; i++ {
		tab.AppendValues(dataset.Int(int64(i)))
	}
	return tab
}

// TestQuantileChargesOnEmptySample pins the budget semantics documented on
// Session.Quantile: when the Bernoulli sample keeps zero records the call
// fails, but the ε charge stays spent. The draws are an observable run of
// OsdpRR, so refunding would allow free retries outside the accounted
// transcript.
func TestQuantileChargesOnEmptySample(t *testing.T) {
	db := smallNumericTable(t, 50)
	// Float64() == 0.99 makes every Bernoulli(keep) false for
	// keep = 1-e^-0.5 ≈ 0.39, so the sample is deterministically empty.
	sess := NewSession(db, dataset.AllNonSensitive(), 2.0, constSource(0.99))

	const eps = 0.5
	_, err := sess.Quantile("X", 0.5, eps)
	if err == nil {
		t.Fatal("expected empty-sample error from Quantile")
	}
	if !strings.Contains(err.Error(), "empty") {
		t.Fatalf("expected empty-sample error, got: %v", err)
	}
	if got := sess.Spent(); math.Abs(got-eps) > 1e-12 {
		t.Fatalf("Spent() = %g after failed Quantile, want %g (charge must not be refunded)", got, eps)
	}
	if got := sess.Remaining(); math.Abs(got-(2.0-eps)) > 1e-12 {
		t.Fatalf("Remaining() = %g, want %g", got, 2.0-eps)
	}

	// A successful retry pays again: the two runs compose to 2·eps.
	// Float64() == 0.1 keeps every record.
	sess2 := &Session{}
	*sess2 = *sess
	sess2.src = constSource(0.1)
	if _, err := sess2.Quantile("X", 0.5, eps); err != nil {
		t.Fatalf("retry with keeping source failed: %v", err)
	}
	if got := sess2.Spent(); math.Abs(got-2*eps) > 1e-12 {
		t.Fatalf("Spent() = %g after retry, want %g", got, 2*eps)
	}
}

// TestQuantileRejectedWhenBudgetExhausted checks the complementary
// property: a charge that would overdraw is refused before any Bernoulli
// draw, so nothing is spent and nothing is leaked.
func TestQuantileRejectedWhenBudgetExhausted(t *testing.T) {
	db := smallNumericTable(t, 10)
	sess := NewSession(db, dataset.AllNonSensitive(), 1.0, noise.NewSource(1))
	if _, err := sess.Quantile("X", 0.5, 0.8); err != nil {
		t.Fatalf("first quantile failed: %v", err)
	}
	if _, err := sess.Quantile("X", 0.5, 0.5); err == nil {
		t.Fatal("expected over-budget quantile to be rejected")
	}
	if got := sess.Spent(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Spent() = %g after rejected charge, want 0.8", got)
	}
}
