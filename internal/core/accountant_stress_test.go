package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"osdp/internal/dataset"
)

// TestAccountantConcurrentSpend backs the "safe for concurrent use" claim
// in the Accountant doc comment: N goroutines race to spend against one
// budget, and afterwards (a) the total spent never exceeds the budget,
// (b) accepted charges and Spent() agree exactly, and (c) the charge log
// length matches the number of accepted spends. Run under -race this also
// checks the locking discipline.
func TestAccountantConcurrentSpend(t *testing.T) {
	const (
		budget     = 10.0
		goroutines = 32
		attempts   = 200
		eps        = 0.05 // budget admits exactly 200 of the 6400 attempts
	)
	acct := NewAccountant(budget)
	g := Guarantee{Policy: dataset.AllSensitive(), Epsilon: eps}

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < attempts; j++ {
				if err := acct.Spend(g); err == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	spent := acct.Spent()
	if spent > budget+1e-9 {
		t.Fatalf("accountant over-spent: %g > budget %g", spent, budget)
	}
	want := float64(accepted.Load()) * eps
	if math.Abs(spent-want) > 1e-9 {
		t.Fatalf("Spent() = %g, but %d accepted charges total %g", spent, accepted.Load(), want)
	}
	if got := len(acct.Charges()); int64(got) != accepted.Load() {
		t.Fatalf("charge log has %d entries, want %d", got, accepted.Load())
	}
	// All 6400 attempts would cost 320ε; the budget must have filled up.
	if math.Abs(spent-budget) > eps {
		t.Fatalf("budget should be (nearly) exhausted: spent %g of %g", spent, budget)
	}
}
