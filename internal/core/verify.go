package core

import (
	"fmt"
	"math"

	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// This file provides an empirical OSDP verifier: a testing harness that
// estimates, by Monte Carlo, the worst output-probability ratio of a
// mechanism across every one-sided neighbor of a base database. It is the
// OSDP analogue of the statistical DP testers used to smoke-test DP
// libraries: it cannot prove privacy, but it reliably catches mechanisms
// whose empirical ratios blow past e^ε (such as FullRelease) and gives
// tests a single number to assert against.

// VerifyConfig tunes the verifier.
type VerifyConfig struct {
	// Trials is the Monte Carlo sample count per database (required).
	Trials int
	// Event discretises mechanism outputs; nil defaults to a multiset
	// fingerprint of the released table, the finest generic event.
	Event EventFunc
	// MinEventProb discards events too rare to estimate: events with
	// probability below this in BOTH worlds are skipped (their ratio
	// estimates are dominated by sampling error). Default 0.005.
	MinEventProb float64
}

// VerifyResult is the verifier's output.
type VerifyResult struct {
	// MaxLogRatio is the largest |ln(p(e|D) / p(e|D'))| observed over all
	// neighbor pairs and events. For a correct (P, ε)-OSDP mechanism it
	// stays ≤ ε up to sampling slack; +Inf marks events possible in one
	// world and unseen in the other despite adequate probability mass.
	MaxLogRatio float64
	// Pairs is the number of neighbor pairs exercised.
	Pairs int
	// WorstPair describes the neighbor pair achieving MaxLogRatio.
	WorstPair string
}

// VerifyOSDP estimates the empirical privacy loss of mech on base: for
// every sensitive record in base and every replacement in universe, it
// compares output-event distributions between base and that one-sided
// neighbor. universe should cover representative record values, including
// both sensitive and non-sensitive ones.
func VerifyOSDP(mech Mechanism, base *dataset.Table, p dataset.Policy, universe []dataset.Record, cfg VerifyConfig, src noise.Source) VerifyResult {
	if cfg.Trials <= 0 {
		panic("core: VerifyOSDP requires positive Trials")
	}
	if cfg.MinEventProb == 0 {
		cfg.MinEventProb = 0.005
	}
	event := cfg.Event
	if event == nil {
		event = multisetEvent
	}

	distFor := func(db *dataset.Table) map[string]float64 {
		counts := make(map[string]int)
		for i := 0; i < cfg.Trials; i++ {
			counts[event(mech.Release(db, src))]++
		}
		out := make(map[string]float64, len(counts))
		for e, c := range counts {
			out[e] = float64(c) / float64(cfg.Trials)
		}
		return out
	}
	baseDist := distFor(base)

	res := VerifyResult{}
	record := func(lr float64, ev string, i int, repl dataset.Record) {
		if lr > res.MaxLogRatio {
			res.MaxLogRatio = lr
			res.WorstPair = fmt.Sprintf("record %d <-> %s (event %q)", i, repl.Key(), ev)
		}
	}
	for i := 0; i < base.Len(); i++ {
		if !p.Sensitive(base.Record(i)) {
			continue // non-sensitive records have no one-sided neighbors
		}
		for _, repl := range universe {
			nb, err := OneSidedNeighbor(base, p, i, repl)
			if err != nil {
				continue // identity replacement
			}
			nbDist := distFor(nb)
			res.Pairs++
			// Definition 3.3 bounds Pr[M(D) ∈ O] by e^ε·Pr[M(D') ∈ O] for
			// D' ∈ N_P(D): check base against its neighbor.
			lr, ev := worstRatio(baseDist, nbDist, cfg.MinEventProb)
			record(lr, ev, i, repl)
			// The relation is asymmetric: the reverse constraint applies
			// only when the swapped-in record is itself sensitive (then
			// base ∈ N_P(nb)).
			if p.Sensitive(repl) {
				lr, ev = worstRatio(nbDist, baseDist, cfg.MinEventProb)
				record(lr, ev, i, repl)
			}
		}
	}
	return res
}

// worstRatio returns the largest one-directional log probability ratio
// ln(from(e)/to(e)) across events with enough mass in from to estimate.
// Events possible under from but unseen under to yield +Inf.
func worstRatio(from, to map[string]float64, minProb float64) (float64, string) {
	var worst float64
	var worstEv string
	for e, pf := range from {
		if pf < minProb {
			continue
		}
		var lr float64
		if pt := to[e]; pt > 0 {
			lr = math.Log(pf / pt)
		} else {
			lr = math.Inf(1)
		}
		if lr > worst {
			worst = lr
			worstEv = e
		}
	}
	return worst, worstEv
}

// multisetEvent fingerprints a release as its sorted multiset of record
// keys — the finest event that ignores record order.
func multisetEvent(out *dataset.Table) string {
	m := out.Multiset()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: releases in verification scenarios are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s×%d;", k, m[k])
	}
	return s
}
