package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// naiveRectSum is the reference the summed-area table is checked
// against: direct accumulation over the rectangle.
func naiveRectSum(h *histogram.Histogram, cols int, r BinRange) float64 {
	var s float64
	for i := r.Lo0; i <= r.Hi0; i++ {
		for j := r.Lo1; j <= r.Hi1; j++ {
			s += h.Count(i*cols + j)
		}
	}
	return s
}

func TestSynopsisMatchesNaiveSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{1, 1}, {1, 17}, {17, 1}, {5, 9}, {32, 32}} {
		rows, cols := shape[0], shape[1]
		h := histogram.New(rows * cols)
		for i := 0; i < h.Bins(); i++ {
			h.SetCount(i, math.Floor(rng.Float64()*100))
		}
		syn, err := NewSynopsis(h, rows, cols)
		if err != nil {
			t.Fatalf("%dx%d: %v", rows, cols, err)
		}
		for trial := 0; trial < 200; trial++ {
			lo0 := rng.Intn(rows)
			hi0 := lo0 + rng.Intn(rows-lo0)
			lo1 := rng.Intn(cols)
			hi1 := lo1 + rng.Intn(cols-lo1)
			r := BinRange{Lo0: lo0, Hi0: hi0, Lo1: lo1, Hi1: hi1}
			got, err := syn.RangeSum(r)
			if err != nil {
				t.Fatalf("%dx%d %+v: %v", rows, cols, r, err)
			}
			if want := naiveRectSum(h, cols, r); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%dx%d %+v: got %g, want %g", rows, cols, r, got, want)
			}
		}
	}
}

func TestSynopsisRejectsBadShapesAndRanges(t *testing.T) {
	h := histogram.New(12)
	if _, err := NewSynopsis(h, 5, 2); err == nil {
		t.Fatal("5x2 over 12 bins accepted")
	}
	if _, err := NewSynopsis(h, 0, 12); err == nil {
		t.Fatal("zero rows accepted")
	}
	syn, err := NewSynopsis(h, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []BinRange{
		{Lo0: -1, Hi0: 0}, {Lo0: 0, Hi0: 3}, {Lo0: 2, Hi0: 1},
		{Lo1: -1, Hi1: 0}, {Lo1: 0, Hi1: 4}, {Lo1: 3, Hi1: 2},
	} {
		if _, err := syn.RangeSum(r); err == nil {
			t.Fatalf("range %+v accepted over 3x4", r)
		}
	}
}

func TestWorkloadComposite(t *testing.T) {
	g := Guarantee{Policy: dataset.AllSensitive(), Epsilon: 0.7}
	for _, n := range []int{1, 2, 1000} {
		if got := WorkloadComposite(g, n).Epsilon; got != 0.7 {
			t.Fatalf("n=%d: composed eps %g, want 0.7 (post-processing must not add)", n, got)
		}
	}
	if got := WorkloadComposite(g, 0).Epsilon; got != 0 {
		t.Fatalf("empty workload composed eps %g, want 0", got)
	}
}

// workloadTable is a small numeric table: Age 0..79, all non-sensitive
// under the never-sensitive policy so xns == x and answers can be
// compared to exact counts.
func workloadTable(t *testing.T, rows int) (*dataset.Table, dataset.Policy) {
	t.Helper()
	var b strings.Builder
	b.WriteString("Age:int\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d\n", (i*7)%80)
	}
	tbl, err := dataset.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, dataset.NewPolicy("open", dataset.False())
}

func TestSessionWorkloadSingleChargeAndAccuracy(t *testing.T) {
	tbl, pol := workloadTable(t, 400)
	se := NewSession(tbl, pol, 10, noise.Locked(noise.NewSource(1)))
	dom := histogram.NewNumericDomain("Age", 0, 1, 80)
	q := histogram.NewQuery(nil, dom)

	ranges := make([]BinRange, 100)
	rng := rand.New(rand.NewSource(2))
	for i := range ranges {
		lo := rng.Intn(80)
		ranges[i] = BinRange{Lo0: lo, Hi0: lo + rng.Intn(80-lo)}
	}
	// Large eps: the flat estimator's noise is tiny, so answers must
	// track the true range counts closely.
	answers, err := se.Workload(q, Flat{}, ranges, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(ranges) {
		t.Fatalf("got %d answers for %d ranges", len(answers), len(ranges))
	}
	truth := q.Eval(tbl)
	for i, r := range ranges {
		want := truth.RangeSum(r.Lo0, r.Hi0)
		if math.Abs(answers[i]-want) > 30 {
			t.Fatalf("range %d [%d,%d]: answer %g too far from true %g", i, r.Lo0, r.Hi0, answers[i], want)
		}
	}
	// The whole 100-query batch must have charged exactly ONE eps.
	if spent := se.Spent(); spent != 5 {
		t.Fatalf("spent %g after 100-range workload, want exactly 5 (one composed charge)", spent)
	}
	if g := se.Guarantee(); g.Epsilon != 5 {
		t.Fatalf("composite guarantee eps %g, want 5", g.Epsilon)
	}
}

func TestSessionWorkloadValidatesBeforeCharging(t *testing.T) {
	tbl, pol := workloadTable(t, 50)
	se := NewSession(tbl, pol, 10, noise.Locked(noise.NewSource(1)))
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("Age", 0, 1, 80))

	cases := []struct {
		name   string
		est    WorkloadEstimator
		ranges []BinRange
	}{
		{"nil estimator", nil, []BinRange{{Lo0: 0, Hi0: 1}}},
		{"empty ranges", Flat{}, nil},
		{"out of bounds", Flat{}, []BinRange{{Lo0: 0, Hi0: 80}}},
		{"inverted", Flat{}, []BinRange{{Lo0: 5, Hi0: 2}}},
		{"second dim on 1-D", Flat{}, []BinRange{{Lo0: 0, Hi0: 1, Lo1: 0, Hi1: 1}}},
	}
	for _, tc := range cases {
		if _, err := se.Workload(q, tc.est, tc.ranges, 1); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if spent := se.Spent(); spent != 0 {
			t.Fatalf("%s: charged %g before validation", tc.name, spent)
		}
	}
	// Budget rejection must carry the sentinel so serving layers refund
	// their outer ledger reservation.
	if _, err := se.Workload(q, Flat{}, []BinRange{{Lo0: 0, Hi0: 9}}, 11); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget workload: got %v, want ErrBudgetExceeded", err)
	}
	if spent := se.Spent(); spent != 0 {
		t.Fatalf("rejected workload spent %g", spent)
	}
}
