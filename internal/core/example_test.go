package core_test

import (
	"fmt"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// The fundamental OSDP workflow: declare a policy, release a true sample.
func ExampleRR() {
	schema := dataset.NewSchema(
		dataset.Field{Name: "Name", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	db := dataset.NewTable(schema)
	db.AppendValues(dataset.Str("alice"), dataset.Int(34))
	db.AppendValues(dataset.Str("bob"), dataset.Int(12)) // minor: sensitive
	db.AppendValues(dataset.Str("carol"), dataset.Int(41))

	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	rr := core.NewRR(minors, 5.0) // high ε: keep probability ≈ 99.3%

	released := rr.Release(db, noise.NewSource(42))
	for _, r := range released.Records() {
		fmt.Println(r.Get("Name").AsString())
	}
	// Sensitive records never appear, whatever the budget.
	// Output:
	// alice
	// carol
}

// OsdpLaplaceL1 answers counting queries with one-sided noise: true zeros
// stay exactly zero and estimates never overshoot by more than the debias
// margin.
func ExampleOsdpLaplaceL1() {
	xns := histogram.FromCounts([]float64{120, 0, 45})
	est := core.OsdpLaplaceL1(xns, 1.0, noise.NewSource(7))
	fmt.Println(est.Count(1)) // a true-zero bin is reported as exact zero
	// Output:
	// 0
}

// The accountant tracks sequential composition (Theorem 3.3).
func ExampleAccountant() {
	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	acct := core.NewAccountant(1.0)

	fmt.Println(acct.Spend(core.Guarantee{Policy: minors, Epsilon: 0.6}))
	fmt.Println(acct.Spend(core.Guarantee{Policy: minors, Epsilon: 0.6})) // over budget
	fmt.Println(acct.Composite())
	// Output:
	// <nil>
	// core: charge 0.6 exceeds remaining budget 0.4
	// (mr(minors), 0.6)-OSDP
}

// Sessions enforce the budget before any noise is drawn.
func ExampleSession() {
	schema := dataset.NewSchema(dataset.Field{Name: "Age", Kind: dataset.KindInt})
	db := dataset.NewTable(schema)
	for age := int64(5); age <= 80; age += 5 {
		db.AppendValues(dataset.Int(age))
	}
	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	sess := core.NewSession(db, minors, 1.0, noise.NewSource(3))

	if _, err := sess.Sample(0.8); err == nil {
		fmt.Println("sample released")
	}
	if _, err := sess.Sample(0.8); err != nil {
		fmt.Println("second sample refused")
	}
	// Output:
	// sample released
	// second sample refused
}
