package core

import (
	"strconv"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// OsdpLaplace answers a histogram query under (P, ε)-OSDP (Definition 5.2):
// it computes the histogram xns over the *non-sensitive* records only and
// adds i.i.d. one-sided Laplace noise Lap⁻(1/ε) to each bin.
//
// Why this is private (Theorem 5.2): a one-sided neighbor replaces a
// sensitive record with an arbitrary one, so the neighbor's non-sensitive
// histogram dominates the original pointwise and differs by at most 1 in
// L1. Because the noise is all-negative, outputs above a bin's true count
// are impossible — the asymmetry matches the asymmetry of the neighbor
// relation, and the density ratio is bounded by e^ε.
//
// Why it is accurate: the noise has variance 1/ε² — one eighth of the DP
// Laplace mechanism's 8/ε² (variance halves because the exponential
// replaces the two-sided Laplace; sensitivity drops from 2 to 1).
//
// The input histogram must be computed over non-sensitive records only
// (e.g. via Query.EvalSplit); passing the full histogram would void the
// guarantee.
func OsdpLaplace(xns *histogram.Histogram, eps float64, src noise.Source) *histogram.Histogram {
	if eps <= 0 {
		panic("core: OsdpLaplace requires eps > 0")
	}
	out := xns.Clone()
	for i := 0; i < out.Bins(); i++ {
		out.Add(i, noise.OneSidedLaplace(src, 1/eps))
	}
	return out
}

// OsdpLaplaceL1 is Algorithm 2: OsdpLaplace followed by the bias-correcting
// post-processing that exploits non-negativity of counts. After adding
// Lap⁻(1/ε) noise it (a) clamps negative counts to zero — so every
// true-zero bin is reported as exactly zero — and (b) adds back the
// distribution's median ln(2)/ε to the remaining positive counts so they
// are median-unbiased. Post-processing never degrades the OSDP guarantee.
func OsdpLaplaceL1(xns *histogram.Histogram, eps float64, src noise.Source) *histogram.Histogram {
	if eps <= 0 {
		panic("core: OsdpLaplaceL1 requires eps > 0")
	}
	out := OsdpLaplace(xns, eps, src)
	mu := noise.OneSidedLaplaceMedian(1 / eps) // = -ln2/ε
	for i := 0; i < out.Bins(); i++ {
		c := out.Count(i)
		if c < 0 {
			out.SetCount(i, 0)
		} else if c > 0 {
			out.SetCount(i, c-mu) // subtracting the negative median adds ln2/ε
		}
	}
	return out
}

// OsdpLaplaceGuarantee renders the guarantee both one-sided Laplace
// mechanisms satisfy, for bookkeeping in experiment harnesses.
func OsdpLaplaceGuarantee(policyName string, eps float64) string {
	return "(" + policyName + ", " + strconv.FormatFloat(eps, 'g', -1, 64) + ")-OSDP"
}
