package noise

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// This file provides the production-hardening pieces a deployed privacy
// mechanism needs beyond textbook sampling: a cryptographically secure
// uniform Source (math/rand's PRNG state can be reconstructed from
// outputs, which would let an observer subtract the noise), and the
// snapping mechanism that defends Laplace noise against the Mironov
// floating-point attack (CCS 2012), where the low-order bits of naïve
// double-precision Laplace samples leak the true value.

// secureSource draws uniform variates from crypto/rand, buffered to keep
// the syscall overhead off the per-sample path. The mutex makes it safe
// for concurrent use: the buffer is shared mutable state, and racing
// reads could hand two goroutines overlapping random bytes — correlated
// noise that would silently weaken the privacy guarantee.
type secureSource struct {
	mu sync.Mutex
	r  *bufio.Reader
}

// NewSecureSource returns a Source backed by crypto/rand. Sampling is a
// few times slower than the seeded PRNG source; use it for actual
// releases and the seeded source for experiments that must be
// reproducible. Unlike seeded sources, it is safe for concurrent use
// without wrapping in Locked.
func NewSecureSource() Source {
	return &secureSource{r: bufio.NewReaderSize(crand.Reader, 4096)}
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (s *secureSource) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [8]byte
	if _, err := io.ReadFull(s.r, buf[:]); err != nil {
		// crypto/rand failure means the platform's entropy source is
		// broken; producing deterministic "noise" would silently void the
		// privacy guarantee, so fail loudly.
		panic(fmt.Sprintf("noise: reading crypto/rand: %v", err))
	}
	return float64(binary.LittleEndian.Uint64(buf[:])>>11) / (1 << 53)
}

// Snap post-processes a noisy value with the snapping mechanism: clamp to
// [-bound, bound], then round to the nearest multiple of lambda, where
// lambda must be at least the Laplace scale used to generate the noise.
// Rounding quantises away the low-order mantissa bits whose exact pattern
// depends on the unperturbed value; the cost is a small additive increase
// in error (≤ lambda/2) and a slight ε inflation absorbed by choosing
// lambda ≥ scale. Snapping is post-processing, so it never weakens the
// OSDP/DP guarantee.
func Snap(value, lambda, bound float64) float64 {
	if lambda <= 0 || bound <= 0 {
		panic("noise: Snap needs positive lambda and bound")
	}
	if value > bound {
		value = bound
	}
	if value < -bound {
		value = -bound
	}
	return math.Round(value/lambda) * lambda
}

// SnapVec applies Snap to every element in place and returns xs.
func SnapVec(xs []float64, lambda, bound float64) []float64 {
	for i, v := range xs {
		xs[i] = Snap(v, lambda, bound)
	}
	return xs
}
