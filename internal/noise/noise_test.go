package noise

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

const statN = 200_000 // samples per statistical test

func sampleStats(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestLaplaceMeanAndVariance(t *testing.T) {
	src := NewSource(1)
	for _, b := range []float64{0.5, 1, 2, 10} {
		xs := LaplaceVec(src, b, statN)
		mean, variance := sampleStats(xs)
		if math.Abs(mean) > 4*b*math.Sqrt2/math.Sqrt(statN)*3 {
			t.Errorf("Laplace(b=%v): mean %v too far from 0", b, mean)
		}
		want := 2 * b * b
		if math.Abs(variance-want)/want > 0.05 {
			t.Errorf("Laplace(b=%v): variance %v, want ~%v", b, variance, want)
		}
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	src := NewSource(2)
	pos := 0
	for i := 0; i < statN; i++ {
		if Laplace(src, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / statN
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Laplace positive fraction %v, want ~0.5", frac)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	Laplace(NewSource(1), 0)
}

func TestOneSidedLaplaceNonPositive(t *testing.T) {
	src := NewSource(3)
	for i := 0; i < statN; i++ {
		if x := OneSidedLaplace(src, 1.7); x > 0 {
			t.Fatalf("one-sided Laplace sample %v > 0", x)
		}
	}
}

func TestOneSidedLaplaceMeanMedian(t *testing.T) {
	src := NewSource(4)
	for _, lam := range []float64{0.5, 1, 3} {
		xs := OneSidedLaplaceVec(src, lam, statN)
		mean, variance := sampleStats(xs)
		if math.Abs(mean-(-lam))/lam > 0.02 {
			t.Errorf("Lap-(%v): mean %v, want ~%v", lam, mean, -lam)
		}
		// Exponential variance is λ².
		if math.Abs(variance-lam*lam)/(lam*lam) > 0.05 {
			t.Errorf("Lap-(%v): variance %v, want ~%v", lam, variance, lam*lam)
		}
		sort.Float64s(xs)
		med := xs[len(xs)/2]
		want := OneSidedLaplaceMedian(lam)
		if math.Abs(med-want)/lam > 0.02 {
			t.Errorf("Lap-(%v): median %v, want ~%v", lam, med, want)
		}
	}
}

// The headline variance claim of §5.1: one-sided Laplace noise at OSDP
// sensitivity 1 has 1/8 the variance of DP Laplace noise at sensitivity 2.
func TestVarianceRatioOneEighth(t *testing.T) {
	const eps = 1.0
	src := NewSource(5)
	osdp := OneSidedLaplaceVec(src, 1/eps, statN)
	dp := LaplaceVec(src, 2/eps, statN)
	_, vOSDP := sampleStats(osdp)
	_, vDP := sampleStats(dp)
	ratio := vOSDP / vDP
	if math.Abs(ratio-0.125)/0.125 > 0.1 {
		t.Errorf("variance ratio %v, want ~1/8", ratio)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	src := NewSource(6)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < statN; i++ {
			if Bernoulli(src, p) {
				hits++
			}
		}
		frac := float64(hits) / statN
		if math.Abs(frac-p) > 0.01 {
			t.Errorf("Bernoulli(%v): frequency %v", p, frac)
		}
	}
}

func TestBernoulliClamps(t *testing.T) {
	src := NewSource(7)
	if Bernoulli(src, -0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !Bernoulli(src, 1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestGeometricSymmetryAndZeroMass(t *testing.T) {
	src := NewSource(8)
	alpha := math.Exp(-1.0) // ε=1, Δ=1
	var pos, neg, zero int
	for i := 0; i < statN; i++ {
		switch k := Geometric(src, alpha); {
		case k > 0:
			pos++
		case k < 0:
			neg++
		default:
			zero++
		}
	}
	if math.Abs(float64(pos-neg))/statN > 0.01 {
		t.Errorf("geometric asymmetric: %d pos vs %d neg", pos, neg)
	}
	wantZero := (1 - alpha) / (1 + alpha)
	if got := float64(zero) / statN; math.Abs(got-wantZero) > 0.01 {
		t.Errorf("Pr[X=0] = %v, want ~%v", got, wantZero)
	}
}

func TestGeometricPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(alpha=%v) did not panic", alpha)
				}
			}()
			Geometric(NewSource(1), alpha)
		}()
	}
}

func TestGaussianMoments(t *testing.T) {
	src := NewSource(9)
	xs := make([]float64, statN)
	for i := range xs {
		xs[i] = Gaussian(src, 2.5)
	}
	mean, variance := sampleStats(xs)
	if math.Abs(mean) > 0.05 {
		t.Errorf("Gaussian mean %v", mean)
	}
	if math.Abs(variance-6.25)/6.25 > 0.05 {
		t.Errorf("Gaussian variance %v, want ~6.25", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	src := NewSource(10)
	var sum float64
	for i := 0; i < statN; i++ {
		x := Exponential(src, 0.25)
		if x < 0 {
			t.Fatalf("exponential sample %v < 0", x)
		}
		sum += x
	}
	mean := sum / statN
	if math.Abs(mean-4)/4 > 0.03 {
		t.Errorf("Exponential(0.25) mean %v, want ~4", mean)
	}
}

// Table 1 of the paper: keep probabilities at ε = 1, 0.5, 0.1.
func TestKeepProbabilityTable1(t *testing.T) {
	cases := []struct{ eps, want float64 }{
		{1.0, 0.632},
		{0.5, 0.393},
		{0.1, 0.095},
	}
	for _, c := range cases {
		if got := KeepProbability(c.eps); math.Abs(got-c.want) > 0.001 {
			t.Errorf("KeepProbability(%v) = %v, want ~%v", c.eps, got, c.want)
		}
	}
}

// Property: one-sided Laplace samples are never positive, for any scale.
func TestOneSidedLaplaceNeverPositiveQuick(t *testing.T) {
	src := NewSource(11)
	f := func(rawLambda float64, _ uint8) bool {
		lambda := math.Abs(rawLambda)
		if lambda == 0 || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
			return true
		}
		return OneSidedLaplace(src, lambda) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Laplace inverse-CDF is finite for any positive scale.
func TestLaplaceFiniteQuick(t *testing.T) {
	src := NewSource(12)
	f := func(rawB float64) bool {
		b := math.Abs(rawB)
		if b == 0 || math.IsInf(b, 0) || math.IsNaN(b) || b > 1e300 {
			return true // ln(1-2u) can push astronomically large scales to ±Inf
		}
		x := Laplace(src, b)
		return !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Empirical check that Laplace noise actually delivers ε-indistinguishability
// for a count query: compare densities at shifted points.
func TestLaplaceDPRatio(t *testing.T) {
	// For the Laplace mechanism the ratio of output densities between
	// neighboring counts (differing by sensitivity) is bounded by e^ε.
	// Verify via histogram of samples around two shifted means.
	const eps = 0.8
	src := NewSource(13)
	binW := 0.25
	hist := func(shift float64) map[int]int {
		h := make(map[int]int)
		for i := 0; i < statN; i++ {
			x := shift + Laplace(src, 1/eps)
			h[int(math.Floor(x/binW))]++
		}
		return h
	}
	h0, h1 := hist(0), hist(1)
	bound := math.Exp(eps)
	for bin, c0 := range h0 {
		c1 := h1[bin]
		if c0 < 500 || c1 < 500 {
			continue // too few samples for a stable ratio
		}
		ratio := float64(c0) / float64(c1)
		if ratio > bound*1.25 || ratio < 1/(bound*1.25) {
			t.Errorf("bin %d: ratio %v outside e^±ε=%v (with slack)", bin, ratio, bound)
		}
	}
}
