package noise

import "sync"

// Locked wraps a Source so that concurrent Float64 calls are serialised by
// a mutex. Seeded sources built on *rand.Rand (NewSource) are not safe for
// concurrent use; a server answering simultaneous queries against one
// session must wrap its source with Locked or the generator state races.
// NewSecureSource is already safe and does not need wrapping, though
// wrapping it is harmless.
//
// Locking serialises draws but does not make multi-draw samplers atomic:
// two goroutines sampling LaplaceVec concurrently interleave their draws.
// That is fine for i.i.d. noise (any interleaving is the same
// distribution) but means seeded runs are only reproducible when a single
// goroutine consumes the source.
func Locked(src Source) Source {
	if _, ok := src.(*lockedSource); ok {
		return src
	}
	return &lockedSource{src: src}
}

type lockedSource struct {
	mu  sync.Mutex
	src Source
}

func (l *lockedSource) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src.Float64()
}
