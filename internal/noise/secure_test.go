package noise

import (
	"math"
	"testing"
)

func TestSecureSourceRange(t *testing.T) {
	src := NewSecureSource()
	for i := 0; i < 10000; i++ {
		u := src.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("secure uniform %v outside [0, 1)", u)
		}
	}
}

func TestSecureSourceMoments(t *testing.T) {
	src := NewSecureSource()
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		u := src.Float64()
		sum += u
		sq += u * u
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("variance %v, want ~1/12", variance)
	}
}

func TestSecureSourceDrivesLaplace(t *testing.T) {
	src := NewSecureSource()
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(Laplace(src, 2))
	}
	// E|Lap(2)| = 2.
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("E|Lap(2)| = %v via secure source", mean)
	}
}

func TestSnapQuantises(t *testing.T) {
	if got := Snap(3.7, 0.5, 100); got != 3.5 {
		t.Errorf("Snap = %v, want 3.5", got)
	}
	if got := Snap(3.76, 0.5, 100); got != 4.0 {
		t.Errorf("Snap = %v, want 4.0", got)
	}
	// Every output is an exact multiple of lambda.
	src := NewSource(1)
	for i := 0; i < 1000; i++ {
		v := Snap(Laplace(src, 1)*50, 0.25, 1000)
		if r := math.Mod(v, 0.25); r != 0 {
			t.Fatalf("Snap output %v not on the lambda grid (rem %v)", v, r)
		}
	}
}

func TestSnapClamps(t *testing.T) {
	if got := Snap(1e9, 1, 50); got != 50 {
		t.Errorf("Snap above bound = %v", got)
	}
	if got := Snap(-1e9, 1, 50); got != -50 {
		t.Errorf("Snap below bound = %v", got)
	}
}

func TestSnapPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Snap(1, 0, 10) },
		func() { Snap(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSnapVecInPlace(t *testing.T) {
	xs := []float64{1.2, -3.8, 200}
	out := SnapVec(xs, 1, 100)
	want := []float64{1, -4, 100}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SnapVec = %v, want %v", out, want)
		}
	}
	if &out[0] != &xs[0] {
		t.Error("SnapVec did not operate in place")
	}
}

func TestSnapErrorBounded(t *testing.T) {
	src := NewSource(2)
	for i := 0; i < 5000; i++ {
		v := Laplace(src, 1) * 10
		if v > 100 || v < -100 {
			continue
		}
		if d := math.Abs(Snap(v, 0.5, 100) - v); d > 0.25+1e-12 {
			t.Fatalf("snapping moved %v by %v > lambda/2", v, d)
		}
	}
}
