package noise_test

import (
	"fmt"

	"osdp/internal/noise"
)

// One-sided Laplace noise never exceeds zero: estimates built with it can
// only undershoot, which is what lets OSDP mechanisms report exact zeros.
func ExampleOneSidedLaplace() {
	src := noise.NewSource(1)
	allNonPositive := true
	for i := 0; i < 1000; i++ {
		if noise.OneSidedLaplace(src, 1.0) > 0 {
			allNonPositive = false
		}
	}
	fmt.Println(allNonPositive)
	// Output:
	// true
}

// KeepProbability is Table 1 of the paper in one call.
func ExampleKeepProbability() {
	for _, eps := range []float64{1.0, 0.5, 0.1} {
		fmt.Printf("ε=%.1f: %.1f%%\n", eps, 100*noise.KeepProbability(eps))
	}
	// Output:
	// ε=1.0: 63.2%
	// ε=0.5: 39.3%
	// ε=0.1: 9.5%
}

// Snap quantises released values onto a grid, removing the low-order
// floating-point bits that leak information (Mironov, CCS 2012).
func ExampleSnap() {
	released := 41.73650918273645 // true count 42 plus Laplace noise
	fmt.Println(noise.Snap(released, 0.5, 1000))
	// Output:
	// 41.5
}
