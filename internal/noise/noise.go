// Package noise provides the random samplers used by the differentially
// private and one-sided differentially private mechanisms in this
// repository: Laplace, one-sided (negative) Laplace, Bernoulli, geometric,
// and Gaussian distributions.
//
// All samplers draw from a Source, a thin interface over math/rand, so that
// experiments are reproducible under a fixed seed and tests can substitute
// deterministic sequences. Samplers are implemented by inverse-CDF
// transforms of uniform variates, which keeps them branch-light and easy to
// verify statistically.
package noise

import (
	"math"
	"math/rand"
)

// Source is the uniform randomness a sampler consumes. *rand.Rand satisfies
// it. Implementations must return values in [0, 1).
//
// *rand.Rand (and therefore NewSource) is NOT safe for concurrent use:
// simultaneous Float64 calls race on the generator state. Wrap a shared
// source with Locked before handing it to multiple goroutines, or use
// NewSecureSource, which is safe as-is.
type Source interface {
	Float64() float64
}

// NewSource returns a deterministic Source seeded with seed.
func NewSource(seed int64) Source {
	return rand.New(rand.NewSource(seed))
}

// Laplace draws one sample from the Laplace distribution with mean 0 and
// scale b (Definition 2.3 of the paper). The density is
// f(x) = exp(-|x|/b) / (2b).
//
// Laplace panics if b <= 0.
func Laplace(src Source, b float64) float64 {
	if b <= 0 {
		panic("noise: Laplace scale must be positive")
	}
	// Inverse CDF: u ~ Uniform(-1/2, 1/2); x = -b * sign(u) * ln(1 - 2|u|).
	u := src.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// LaplaceVec fills a fresh slice of length d with i.i.d. Laplace(b) samples.
func LaplaceVec(src Source, b float64, d int) []float64 {
	z := make([]float64, d)
	for i := range z {
		z[i] = Laplace(src, b)
	}
	return z
}

// OneSidedLaplace draws one sample from the one-sided Laplace distribution
// Lap⁻(λ) of Definition 5.1: the mirror of the exponential distribution,
// with all probability mass on (-inf, 0]. The density is
// f(x) = exp(x/λ)/λ for x <= 0 and 0 otherwise.
//
// Its mean is -λ and its median is -λ·ln2; OsdpLaplaceL1 adds the median
// back to debias surviving counts.
//
// OneSidedLaplace panics if lambda <= 0.
func OneSidedLaplace(src Source, lambda float64) float64 {
	if lambda <= 0 {
		panic("noise: one-sided Laplace scale must be positive")
	}
	// If E ~ Exp(1/λ) then -E ~ Lap⁻(λ). Inverse CDF of Exp: -λ ln(1-u).
	u := src.Float64()
	return lambda * math.Log1p(-u) // = -λ·(-ln(1-u)) <= 0
}

// OneSidedLaplaceVec fills a fresh slice of length d with i.i.d. Lap⁻(λ)
// samples.
func OneSidedLaplaceVec(src Source, lambda float64, d int) []float64 {
	z := make([]float64, d)
	for i := range z {
		z[i] = OneSidedLaplace(src, lambda)
	}
	return z
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped. OsdpRR keeps each non-sensitive record with p = 1 - e^(-ε).
func Bernoulli(src Source, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return src.Float64() < p
}

// Geometric draws from the two-sided geometric distribution with parameter
// alpha in (0, 1): Pr[X = k] ∝ alpha^|k|. It is the discrete analogue of the
// Laplace distribution, with alpha = exp(-ε/Δ) giving ε-DP for integer
// counts of sensitivity Δ.
//
// Geometric panics if alpha is outside (0, 1).
func Geometric(src Source, alpha float64) int64 {
	if alpha <= 0 || alpha >= 1 {
		panic("noise: geometric parameter must be in (0, 1)")
	}
	// Sample magnitude from a one-sided geometric and an independent sign;
	// reject (0, -) so zero is not double-counted. This yields
	// Pr[X=0] = (1-α)/(1+α) and Pr[X=±k] = (1-α)·α^k/(1+α).
	for {
		u := src.Float64()
		// One-sided geometric with support {0, 1, ...}: k = floor(ln(u)/ln(alpha)).
		k := int64(math.Floor(math.Log(u) / math.Log(alpha)))
		if k < 0 { // u == 0 edge; retry
			continue
		}
		negative := src.Float64() < 0.5
		if k == 0 {
			if negative {
				continue
			}
			return 0
		}
		if negative {
			return -k
		}
		return k
	}
}

// Binomial draws from Binomial(n, p). For large variance it switches to a
// clamped Gaussian approximation, which keeps RR-style sampling of
// histograms with tens of millions of records tractable.
func Binomial(src Source, n int, p float64) int {
	if n < 0 {
		panic("noise: negative binomial count")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	variance := float64(n) * p * (1 - p)
	if variance > 100 {
		k := int(math.Round(float64(n)*p + Gaussian(src, 1)*math.Sqrt(variance)))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	k := 0
	for i := 0; i < n; i++ {
		if src.Float64() < p {
			k++
		}
	}
	return k
}

// Gaussian draws one sample from N(0, sigma²) via Box–Muller. It is used by
// the synthetic data generators, not by any privacy mechanism.
func Gaussian(src Source, sigma float64) float64 {
	// Box–Muller; guard u1 against 0 to keep Log finite.
	u1 := src.Float64()
	for u1 == 0 {
		u1 = src.Float64()
	}
	u2 := src.Float64()
	return sigma * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exponential draws from Exp(rate): density rate·exp(-rate·x) on x >= 0.
// Used by the trace simulator for dwell times.
func Exponential(src Source, rate float64) float64 {
	if rate <= 0 {
		panic("noise: exponential rate must be positive")
	}
	u := src.Float64()
	return -math.Log1p(-u) / rate
}

// KeepProbability is the per-record release probability of OsdpRR at
// privacy level eps: 1 - e^(-ε) (Algorithm 1). It is exported so harnesses
// and tests can reason about expected sample sizes (Table 1).
func KeepProbability(eps float64) float64 {
	return 1 - math.Exp(-eps)
}

// OneSidedLaplaceMedian is the median of Lap⁻(λ): -λ·ln2. OsdpLaplaceL1
// subtracts it (adds |median|) to debias positive counts (Algorithm 2,
// step 4 uses µ = -ln(2)/ε with λ = 1/ε).
func OneSidedLaplaceMedian(lambda float64) float64 {
	return -lambda * math.Ln2
}
