package noise

import (
	"sync"
	"testing"
)

// TestLockedConcurrentDraws hammers a Locked seeded source from many
// goroutines. Run under -race this fails if Locked does not serialise
// access to the underlying *rand.Rand; the value checks catch a wrapper
// that forgets to delegate.
func TestLockedConcurrentDraws(t *testing.T) {
	src := Locked(NewSource(1))
	const goroutines, draws = 16, 2000
	var wg sync.WaitGroup
	errs := make(chan float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				u := src.Float64()
				if u < 0 || u >= 1 {
					select {
					case errs <- u:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if u, ok := <-errs; ok {
		t.Fatalf("Locked source produced %v outside [0, 1)", u)
	}
}

// TestSecureSourceConcurrentDraws backs the doc claim that
// NewSecureSource is safe without Locked: its buffered crypto/rand
// reader is shared mutable state, so under -race this fails if the
// internal mutex is removed.
func TestSecureSourceConcurrentDraws(t *testing.T) {
	src := NewSecureSource()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if u := src.Float64(); u < 0 || u >= 1 {
					t.Errorf("secure source produced %v outside [0, 1)", u)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLockedSameSequence checks that wrapping does not perturb the
// underlying stream: a Locked source consumed by one goroutine yields the
// same sequence as the bare source with the same seed.
func TestLockedSameSequence(t *testing.T) {
	bare := NewSource(7)
	locked := Locked(NewSource(7))
	for i := 0; i < 100; i++ {
		if b, l := bare.Float64(), locked.Float64(); b != l {
			t.Fatalf("draw %d: bare %v != locked %v", i, b, l)
		}
	}
}

// TestLockedIdempotent checks that double-wrapping returns the same
// wrapper rather than stacking mutexes.
func TestLockedIdempotent(t *testing.T) {
	l := Locked(NewSource(1))
	if Locked(l) != l {
		t.Fatal("Locked(Locked(src)) allocated a second wrapper")
	}
}
