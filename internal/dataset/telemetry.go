package dataset

import (
	"sync/atomic"

	"osdp/internal/telemetry"
)

// ScanMetrics is the set of instruments the chunked scan pool reports
// into. The pool is package-wide (one per process), so the hookup is a
// process-global too: a serving binary installs it once at startup via
// SetScanMetrics. Any field may be nil, and the zero ScanMetrics (or a
// nil *ScanMetrics) disables collection entirely — the hot path then
// pays one atomic pointer load per chunk and nothing else.
type ScanMetrics struct {
	// ChunksProcessed counts chunk windows executed by any worker,
	// including the single inline window of a serial pass.
	ChunksProcessed *telemetry.Counter
	// Degraded counts helper slots that were dropped because no pool
	// worker was parked on the task channel — the pass ran with fewer
	// goroutines than ScanParallelism allowed (caller-only in the
	// worst case). A persistently climbing rate means the pool is
	// saturated by concurrent scans.
	Degraded *telemetry.Counter
	// ActiveWorkers gauges goroutines currently inside a chunked pass,
	// counting the submitting caller as well as pool workers.
	ActiveWorkers *telemetry.Gauge
}

// NewScanMetrics registers the scan pool's canonical series on r and
// returns the hookup ready for SetScanMetrics. A nil registry returns
// nil, which SetScanMetrics treats as "disabled".
func NewScanMetrics(r *telemetry.Registry) *ScanMetrics {
	if r == nil {
		return nil
	}
	return &ScanMetrics{
		ChunksProcessed: r.NewCounter("osdp_scan_chunks_processed_total",
			"Chunk windows executed by the data-plane scan pool."),
		Degraded: r.NewCounter("osdp_scan_degraded_total",
			"Helper worker slots dropped because every pool worker was busy; the pass ran with fewer goroutines."),
		ActiveWorkers: r.NewGauge("osdp_scan_active_workers",
			"Goroutines currently executing a chunked pass."),
	}
}

// scanMetrics holds the installed ScanMetrics; nil means disabled.
var scanMetrics atomic.Pointer[ScanMetrics]

// SetScanMetrics installs (or, with nil, removes) the process-wide scan
// pool instruments. Safe to call concurrently with running scans;
// in-flight chunks report to whichever set they observe.
func SetScanMetrics(m *ScanMetrics) { scanMetrics.Store(m) }
