package dataset_test

import (
	"fmt"
	"strings"

	"osdp/internal/dataset"
)

// Policies are first-class values built from the predicate DSL, mirroring
// the λ-notation of the paper's §3.1 examples.
func ExampleNewPolicy() {
	p := dataset.NewPolicy("gdpr", dataset.Or(
		dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)),
		dataset.Cmp("OptIn", dataset.OpEq, dataset.Bool(false)),
	))
	fmt.Println(p)

	schema := dataset.NewSchema(
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "OptIn", Kind: dataset.KindBool},
	)
	minor := dataset.NewRecord(schema, dataset.Int(12), dataset.Bool(true))
	adult := dataset.NewRecord(schema, dataset.Int(30), dataset.Bool(true))
	fmt.Println(p.P(minor), p.P(adult)) // 0 = sensitive, 1 = non-sensitive
	// Output:
	// λr.if((r.Age <= 17) ∨ (r.OptIn = false)): 0; else: 1
	// 0 1
}

// Tables load from typed CSV headers.
func ExampleReadCSV() {
	csv := "Name:string,Age:int\nalice,34\nbob,12\n"
	tb, err := dataset.ReadCSV(strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	sensitive, nonSensitive := tb.Split(minors)
	fmt.Println(sensitive.Len(), nonSensitive.Len())
	// Output:
	// 1 1
}

// MinimumRelaxation composes policies: a record stays sensitive only if
// every input policy treats it as sensitive (Definition 3.6).
func ExampleMinimumRelaxation() {
	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	seniors := dataset.NewPolicy("seniors", dataset.Cmp("Age", dataset.OpGe, dataset.Int(65)))
	mr := dataset.MinimumRelaxation(minors, seniors)

	schema := dataset.NewSchema(dataset.Field{Name: "Age", Kind: dataset.KindInt})
	child := dataset.NewRecord(schema, dataset.Int(10))
	fmt.Println(mr.Name(), mr.Sensitive(child)) // no record is both
	// Output:
	// mr(minors,seniors) false
}
