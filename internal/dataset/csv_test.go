package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `Name:string,Age:int,OptIn:bool,Income:float
alice,34,true,52000.5
bob,16,false,0
`

func TestReadCSV(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	r := tb.Record(0)
	if r.Get("Name").AsString() != "alice" || r.Get("Age").AsInt() != 34 {
		t.Errorf("record 0 = %v %v", r.Get("Name").AsString(), r.Get("Age").AsInt())
	}
	if r.Get("Income").AsFloat() != 52000.5 {
		t.Errorf("Income = %v", r.Get("Income").AsFloat())
	}
	if k, _ := tb.Schema().KindOf("OptIn"); k != KindBool {
		t.Errorf("OptIn kind = %v", k)
	}
}

func TestReadCSVDefaultsToString(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("City\nparis\n"))
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := tb.Schema().KindOf("City"); k != KindString {
		t.Errorf("bare header kind = %v", k)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"Age:int\nnotanumber\n",
		"Flag:bool\nmaybe\n",
		"X:float\nabc\n",
		"A:int,B:int\n1\n", // ragged row
		"A:complex\n1\n",   // unknown kind
		":int\n1\n",        // empty name
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != orig.Len() {
		t.Fatalf("round trip lost records: %d vs %d", again.Len(), orig.Len())
	}
	om, am := orig.Multiset(), again.Multiset()
	for k, c := range om {
		if am[k] != c {
			t.Fatalf("multiset mismatch at %q", k)
		}
	}
	// Schema kinds preserved.
	for _, name := range orig.Schema().Names() {
		ok, _ := orig.Schema().KindOf(name)
		ak, found := again.Schema().KindOf(name)
		if !found || ok != ak {
			t.Errorf("kind of %q not preserved", name)
		}
	}
}

func TestWriteCSVEmptyTable(t *testing.T) {
	tb := NewTable(NewSchema(Field{Name: "A", Kind: KindInt}))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "A:int\n" {
		t.Errorf("empty table CSV = %q", got)
	}
}
