package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a table from CSV. The first row must be a header of
// "name:kind" declarations (kind ∈ int, float, string, bool; a bare name
// defaults to string), e.g.:
//
//	Name:string,Age:int,OptIn:bool
//	alice,34,true
//
// Values that fail to parse under the declared kind are an error, keeping
// silent data corruption out of privacy-sensitive pipelines.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	fields := make([]Field, len(header))
	seen := make(map[string]bool, len(header))
	for i, h := range header {
		name, kindName, found := strings.Cut(strings.TrimSpace(h), ":")
		if name == "" {
			return nil, fmt.Errorf("dataset: empty attribute name in column %d", i+1)
		}
		if seen[name] {
			return nil, fmt.Errorf("dataset: duplicate attribute %q in column %d", name, i+1)
		}
		seen[name] = true
		kind := KindString
		if found {
			switch kindName {
			case "int":
				kind = KindInt
			case "float":
				kind = KindFloat
			case "string":
				kind = KindString
			case "bool":
				kind = KindBool
			default:
				return nil, fmt.Errorf("dataset: unknown kind %q for attribute %q", kindName, name)
			}
		}
		fields[i] = Field{Name: name, Kind: kind}
	}
	schema := NewSchema(fields...)
	table := NewTable(schema)

	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		values := make([]Value, len(fields))
		for i, cell := range row {
			v, err := parseValue(cell, fields[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, attribute %q: %w", line, fields[i].Name, err)
			}
			values[i] = v
		}
		table.Append(NewRecord(schema, values...))
	}
	return table, nil
}

func parseValue(cell string, kind Kind) (Value, error) {
	cell = strings.TrimSpace(cell)
	switch kind {
	case KindInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as int: %w", cell, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as float: %w", cell, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as bool: %w", cell, err)
		}
		return Bool(b), nil
	default:
		return Str(cell), nil
	}
}

// WriteCSV writes the table in the format ReadCSV accepts, including the
// typed header. Round-tripping a table through WriteCSV/ReadCSV preserves
// schema and values, with one encoding/csv caveat: a single-column record
// holding the empty string serialises to a blank line, which CSV readers
// skip — such records do not survive the round trip.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	s := t.Schema()
	header := make([]string, s.Len())
	for i, name := range s.Names() {
		kind, _ := s.KindOf(name)
		header[i] = name + ":" + kind.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, s.Len())
	for _, r := range t.Records() {
		for i := 0; i < s.Len(); i++ {
			row[i] = r.At(i).AsString()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
