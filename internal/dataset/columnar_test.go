package dataset

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Regression: values containing the key separator \x1f (or the escape
// byte) must not alias distinct records.
func TestRecordKeyNoSeparatorAliasing(t *testing.T) {
	s := NewSchema(Field{"A", KindString}, Field{"B", KindString})
	cases := [][2]Record{
		{NewRecord(s, Str("a\x1fb"), Str("c")), NewRecord(s, Str("a"), Str("b\x1fc"))},
		{NewRecord(s, Str("a\x1f"), Str("b")), NewRecord(s, Str("a"), Str("\x1fb"))},
		{NewRecord(s, Str(`a\`), Str("b")), NewRecord(s, Str("a"), Str(`\b`))},
		{NewRecord(s, Str(`a\u`), Str("")), NewRecord(s, Str(`a`), Str(`u`))},
		{NewRecord(s, Str(`\`), Str(`\`)), NewRecord(s, Str(`\\`), Str(``))},
	}
	for i, c := range cases {
		if c[0].Key() == c[1].Key() {
			t.Errorf("case %d: distinct records alias to key %q", i, c[0].Key())
		}
	}
	// Identical records must still agree.
	r1 := NewRecord(s, Str("x\x1fy"), Str(`z\`))
	r2 := NewRecord(s, Str("x\x1fy"), Str(`z\`))
	if r1.Key() != r2.Key() {
		t.Error("identical records produced different keys")
	}
}

// Regression: SortedKeys over an integer attribute must sort by value,
// not lexicographically ("2" before "10"), or data-derived histogram
// domains get scrambled bins.
func TestSortedKeysNumericOrder(t *testing.T) {
	s := NewSchema(Field{"N", KindInt}, Field{"F", KindFloat}, Field{"S", KindString})
	tb := NewTable(s)
	for _, n := range []int64{10, 2, -3, 100, 2} {
		tb.AppendValues(Int(n), Float(float64(n)/2), Str(fmt.Sprint(n)))
	}
	gotInt := tb.SortedKeys("N")
	wantInt := []string{"-3", "2", "10", "100"}
	if fmt.Sprint(gotInt) != fmt.Sprint(wantInt) {
		t.Errorf("SortedKeys(int) = %v, want %v", gotInt, wantInt)
	}
	gotFloat := tb.SortedKeys("F")
	wantFloat := []string{"-1.5", "1", "5", "50"}
	if fmt.Sprint(gotFloat) != fmt.Sprint(wantFloat) {
		t.Errorf("SortedKeys(float) = %v, want %v", gotFloat, wantFloat)
	}
	// Strings keep lexicographic order.
	gotStr := tb.SortedKeys("S")
	wantStr := []string{"-3", "10", "100", "2"}
	if fmt.Sprint(gotStr) != fmt.Sprint(wantStr) {
		t.Errorf("SortedKeys(string) = %v, want %v", gotStr, wantStr)
	}
}

// The policy split must be computed once per (table, policy) no matter
// how many sessions ask, including concurrently.
func TestSplitComputedOncePerPolicy(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	const rows = 500
	for i := 0; i < rows; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	var evals atomic.Int64
	pred := FuncPredicate("counting", func(r Record) bool {
		evals.Add(1)
		return r.Get("X").AsInt()%2 == 0
	})
	p := NewPolicy("even", pred)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sens, ns := tb.Split(p)
			if sens.Len()+ns.Len() != rows {
				t.Error("split does not partition")
			}
		}()
	}
	wg.Wait()
	if got := evals.Load(); got != rows {
		t.Errorf("predicate evaluated %d times, want exactly %d (one pass)", got, rows)
	}
	sb, nb := tb.SplitBits(p)
	if sb.Count() != 250 || nb.Count() != 250 {
		t.Errorf("SplitBits counts = (%d, %d), want (250, 250)", sb.Count(), nb.Count())
	}
	if evals.Load() != rows {
		t.Error("SplitBits recomputed a cached split")
	}
}

// Filter and Split return views sharing storage; appending to a view must
// detach it (copy-on-append) without disturbing the parent.
func TestViewCopyOnAppend(t *testing.T) {
	s := NewSchema(Field{"X", KindInt}, Field{"S", KindString})
	tb := NewTable(s)
	for i := 0; i < 10; i++ {
		tb.AppendValues(Int(int64(i)), Str(fmt.Sprintf("v%d", i%3)))
	}
	v := tb.Filter(Cmp("X", OpLt, Int(5)))
	if v.Len() != 5 {
		t.Fatalf("view len = %d, want 5", v.Len())
	}
	if v.Base() != tb {
		t.Error("filter result does not share the parent's storage")
	}
	v.AppendValues(Int(99), Str("new"))
	if v.Len() != 6 || tb.Len() != 10 {
		t.Errorf("after append: view=%d parent=%d, want 6/10", v.Len(), tb.Len())
	}
	if v.Base() == tb {
		t.Error("append did not detach the view")
	}
	if got := v.Record(5).Get("X").AsInt(); got != 99 {
		t.Errorf("appended row reads %d, want 99", got)
	}
	if got := tb.Record(9).Get("X").AsInt(); got != 9 {
		t.Errorf("parent corrupted: row 9 reads %d", got)
	}
}

// Views of views (Filter of a Split partition) must compose selections
// correctly.
func TestNestedViews(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	for i := 0; i < 100; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	_, ns := tb.Split(NewPolicy("low", Cmp("X", OpLt, Int(50)))) // ns = 50..99
	v := ns.Filter(Cmp("X", OpGe, Int(90)))                      // 90..99
	if v.Len() != 10 {
		t.Fatalf("nested view len = %d, want 10", v.Len())
	}
	if v.Base() != tb {
		t.Error("nested view should root at the base table")
	}
	sum := int64(0)
	for i := 0; i < v.Len(); i++ {
		sum += v.Record(i).Get("X").AsInt()
	}
	if sum != 945 { // 90+..+99
		t.Errorf("nested view sum = %d, want 945", sum)
	}
	// Split of a view stays view-rooted too.
	sensV, nsV := v.Split(NewPolicy("odd", FuncPredicate("odd", func(r Record) bool {
		return r.Get("X").AsInt()%2 == 1
	})))
	if sensV.Len() != 5 || nsV.Len() != 5 {
		t.Errorf("view split = (%d, %d), want (5, 5)", sensV.Len(), nsV.Len())
	}
}

// Mixed-kind values (the row API never forbade storing a Value whose kind
// disagrees with the schema column) must read back verbatim and keep
// predicate evaluation on the row-exact path.
func TestMixedKindColumnRoundTrip(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	tb.AppendValues(Int(7))
	tb.AppendValues(Str("seven")) // kind mismatch, stored as exception
	tb.AppendValues(Int(8))

	if got := tb.Record(1).Get("X"); got.Kind() != KindString || got.AsString() != "seven" {
		t.Errorf("mixed-kind value read back as %v %q", got.Kind(), got.AsString())
	}
	if got := tb.Record(0).Get("X").AsInt(); got != 7 {
		t.Errorf("typed value read back as %d", got)
	}
	// Vectorized Count must agree with per-record evaluation.
	pred := Cmp("X", OpGe, Int(7))
	want := 0
	for _, r := range tb.Records() {
		if pred.Eval(r) {
			want++
		}
	}
	if got := tb.Count(pred); got != want {
		t.Errorf("Count = %d, per-record reference = %d", got, want)
	}
}

// Regression: two policies whose predicates render identically but
// compare values of different KINDS (Str("true") vs Bool(true)) must not
// share a split-cache slot — serving one policy's partition for the
// other would be a silent privacy violation.
func TestSplitCacheIsKindAware(t *testing.T) {
	s := NewSchema(Field{"Flag", KindString})
	tb := NewTable(s)
	tb.AppendValues(Str("true"))
	tb.AppendValues(Str("x"))
	tb.AppendValues(Str("true"))

	strPol := NewPolicy("p", Cmp("Flag", OpEq, Str("true")))
	boolPol := NewPolicy("p", Cmp("Flag", OpEq, Bool(true)))
	if strPol.String() != boolPol.String() {
		t.Fatalf("precondition lost: renderings differ (%q vs %q)", strPol, boolPol)
	}

	sensStr, _ := tb.Split(strPol) // primes the cache first
	sensBool, _ := tb.Split(boolPol)
	if sensStr.Len() != 2 {
		t.Errorf("string policy marked %d sensitive, want 2", sensStr.Len())
	}
	// String-vs-bool comparison is decided by kind order: never equal.
	if sensBool.Len() != 0 {
		t.Errorf("bool policy marked %d sensitive, want 0 (cache aliased distinct policies?)", sensBool.Len())
	}
}

// Regression: two same-NAMED FuncPredicates wrapping different functions
// (e.g. two learned policies from differently-trained models) must not
// share a split-cache slot.
func TestSplitCacheFuncPredicateIdentity(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	for i := 0; i < 10; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	even := NewPolicy("learned", FuncPredicate("learned(p)", func(r Record) bool {
		return r.Get("X").AsInt()%2 == 0
	}))
	low := NewPolicy("learned", FuncPredicate("learned(p)", func(r Record) bool {
		return r.Get("X").AsInt() < 3
	}))
	sensEven, _ := tb.Split(even)
	sensLow, _ := tb.Split(low)
	if sensEven.Len() != 5 {
		t.Errorf("even policy marked %d sensitive, want 5", sensEven.Len())
	}
	if sensLow.Len() != 3 {
		t.Errorf("low policy marked %d sensitive, want 3 (cache aliased same-named functions?)", sensLow.Len())
	}
	// The same policy VALUE still hits the cache (see
	// TestSplitComputedOncePerPolicy for the strict once-only property).
	again, _ := tb.Split(even)
	if again.Len() != 5 {
		t.Errorf("cached policy re-split wrong: %d", again.Len())
	}
}

// The split cache is bounded: sweeping many policies over one table must
// not pin memory per policy forever, and evicted entries recompute
// correctly.
func TestSplitCacheBounded(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	for i := 0; i < 50; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	for thr := 0; thr < 3*maxSplitCacheEntries; thr++ {
		sens, _ := tb.Split(NewPolicy("sweep", Cmp("X", OpLt, Int(int64(thr)))))
		if sens.Len() != thr {
			t.Fatalf("threshold %d: %d sensitive", thr, sens.Len())
		}
	}
	tb.mu.Lock()
	n := len(tb.splits)
	tb.mu.Unlock()
	if n > maxSplitCacheEntries {
		t.Errorf("split cache holds %d entries, cap is %d", n, maxSplitCacheEntries)
	}
	// A previously evicted policy still splits correctly on recompute.
	sens, _ := tb.Split(NewPolicy("sweep", Cmp("X", OpLt, Int(1))))
	if sens.Len() != 1 {
		t.Errorf("recomputed split wrong: %d", sens.Len())
	}
}

// Regression: opaque predicates evaluated against a view must only see
// the view's rows — a partial predicate defined on a partition must not
// be invoked on the rows the partition excludes.
func TestViewScopedOpaquePredicate(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	for i := 0; i < 20; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	v := tb.Filter(Cmp("X", OpGe, Int(10)))
	partial := FuncPredicate("partial", func(r Record) bool {
		if x := r.Get("X").AsInt(); x < 10 {
			t.Errorf("opaque predicate invoked on excluded row %d", x)
		}
		return r.Get("X").AsInt()%2 == 0
	})
	if n := v.Count(partial); n != 5 {
		t.Errorf("Count = %d, want 5", n)
	}
	// Inside combinators too.
	if n := v.Count(And(Cmp("X", OpLt, Int(16)), partial)); n != 3 {
		t.Errorf("combined Count = %d, want 3 (10, 12, 14)", n)
	}
}

// A partition covering the whole table (AllNonSensitive) must behave
// exactly like the table and skip selection indirection (Selection nil).
func TestFullTableViewIdentity(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	for i := 0; i < 100; i++ {
		tb.AppendValues(Int(int64(i)))
	}
	sens, ns := tb.Split(AllNonSensitive())
	if sens.Len() != 0 || ns.Len() != 100 {
		t.Fatalf("split = (%d, %d), want (0, 100)", sens.Len(), ns.Len())
	}
	if ns.Selection() != nil {
		t.Error("full-table view still reports a selection vector")
	}
	if n := ns.Count(Cmp("X", OpLt, Int(10))); n != 10 {
		t.Errorf("Count over full view = %d, want 10", n)
	}
	var evals int
	ns.Count(FuncPredicate("count", func(Record) bool { evals++; return true }))
	if evals != 100 {
		t.Errorf("opaque predicate saw %d rows, want 100", evals)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	if b.Count() != 5 {
		t.Errorf("Count = %d, want 5", b.Count())
	}
	if !b.Get(129) || b.Get(128) {
		t.Error("Get misreads tail bits")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 4 {
		t.Error("Clear failed")
	}
	inv := b.Clone()
	inv.invert()
	if inv.Count() != 130-4 {
		t.Errorf("invert count = %d, want %d", inv.Count(), 126)
	}
	idx := b.indices()
	if len(idx) != 4 || idx[0] != 0 || idx[3] != 129 {
		t.Errorf("indices = %v", idx)
	}
}
