package dataset

// stringDict interns the distinct values of a string column: rows store
// dense uint32 codes and the dictionary maps codes back to strings. The
// dictionary is append-only, so codes never need rewriting; grouping and
// equality predicates can work on codes and touch actual strings only
// once per distinct value.
type stringDict struct {
	index map[string]uint32
	vals  []string
}

func newStringDict() *stringDict {
	return &stringDict{index: make(map[string]uint32)}
}

func (d *stringDict) code(s string) uint32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.index[s] = c
	d.vals = append(d.vals, s)
	return c
}

// lookup returns the code of s without interning, and whether it exists.
func (d *stringDict) lookup(s string) (uint32, bool) {
	c, ok := d.index[s]
	return c, ok
}

func (d *stringDict) clone() *stringDict {
	out := &stringDict{
		index: make(map[string]uint32, len(d.index)),
		vals:  append([]string(nil), d.vals...),
	}
	for k, v := range d.index {
		out.index[k] = v
	}
	return out
}

// column is one attribute's typed vector. Exactly one of the storage
// slices is populated, selected by kind. Values whose dynamic kind
// disagrees with the declared column kind (the row API never forbade
// that) are stored coerced in the typed vector AND verbatim in exc, so
// reads reproduce the original Value exactly; vectorized evaluation
// checks len(exc) and falls back to the row path when any exist.
type column struct {
	kind   Kind
	ints   []int64
	floats []float64
	bools  []bool
	codes  []uint32
	dict   *stringDict
	exc    map[int]Value // physical row -> original mixed-kind value
}

func newColumn(kind Kind) *column {
	c := &column{kind: kind}
	if kind == KindString {
		c.dict = newStringDict()
	}
	return c
}

// appendValue appends v at physical row i (the current length).
func (c *column) appendValue(i int, v Value) {
	if v.kind != c.kind {
		if c.exc == nil {
			c.exc = make(map[int]Value)
		}
		c.exc[i] = v
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, v.AsInt())
	case KindFloat:
		c.floats = append(c.floats, v.AsFloat())
	case KindBool:
		c.bools = append(c.bools, v.AsBool())
	default:
		c.codes = append(c.codes, c.dict.code(v.AsString()))
	}
}

// value reconstructs the Value stored at physical row i.
func (c *column) value(i int) Value {
	if len(c.exc) != 0 {
		if v, ok := c.exc[i]; ok {
			return v
		}
	}
	switch c.kind {
	case KindInt:
		return Int(c.ints[i])
	case KindFloat:
		return Float(c.floats[i])
	case KindBool:
		return Bool(c.bools[i])
	default:
		return Str(c.dict.vals[c.codes[i]])
	}
}

// pure reports whether every stored value has the declared kind, the
// precondition for vectorized evaluation over the typed slices.
func (c *column) pure() bool { return len(c.exc) == 0 }

// clone returns a column whose typed vector shares the backing array
// read-only (full-capacity slicing forces copy-on-append) but owns its
// dictionary and exception map, so appends to either table never corrupt
// the other.
func (c *column) clone() *column {
	out := &column{kind: c.kind}
	switch c.kind {
	case KindInt:
		out.ints = c.ints[:len(c.ints):len(c.ints)]
	case KindFloat:
		out.floats = c.floats[:len(c.floats):len(c.floats)]
	case KindBool:
		out.bools = c.bools[:len(c.bools):len(c.bools)]
	default:
		out.codes = c.codes[:len(c.codes):len(c.codes)]
		out.dict = c.dict.clone()
	}
	if len(c.exc) != 0 {
		out.exc = make(map[int]Value, len(c.exc))
		for k, v := range c.exc {
			out.exc[k] = v
		}
	}
	return out
}

// gather materializes the subset of rows named by sel into a fresh column.
func (c *column) gather(sel []int32) *column {
	out := newColumn(c.kind)
	for i, p := range sel {
		out.appendValue(i, c.value(int(p)))
	}
	return out
}
