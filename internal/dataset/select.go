package dataset

import (
	"math"
	"strings"
)

// This file compiles Predicate trees into vectorized evaluation over the
// columnar storage. Semantics are defined to agree EXACTLY with per-record
// evaluation (pred.Eval on every row) — the differential tests in
// fuzz_test.go enforce it. The one intentional divergence: And/Or evaluate
// every branch (bitset algebra cannot short-circuit), so predicates with
// side effects see more calls than under row-at-a-time evaluation.

// set marks row i without the exported Set's range check; callers
// guarantee i < n.
func (b *Bitset) set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// evalCombinators walks the boolean structure of pred with bitset
// algebra over n rows, delegating the two leaf shapes — comparison
// predicates and opaque predicates — to the given callbacks. It is the
// single recursion shared by the base-table and view evaluators, so the
// two cannot drift apart combinator by combinator.
func evalCombinators(pred Predicate, n int, leafCmp func(cmpPredicate) *Bitset, leafOpaque func(Predicate) *Bitset) *Bitset {
	recur := func(sub Predicate) *Bitset { return evalCombinators(sub, n, leafCmp, leafOpaque) }
	switch q := pred.(type) {
	case truePredicate:
		out := NewBitset(n)
		out.setAll()
		return out
	case falsePredicate:
		return NewBitset(n)
	case notPredicate:
		out := recur(q.p)
		out.invert()
		return out
	case andPredicate:
		if len(q) == 0 {
			out := NewBitset(n)
			out.setAll()
			return out
		}
		out := recur(q[0])
		for _, sub := range q[1:] {
			out.andWith(recur(sub))
		}
		return out
	case orPredicate:
		out := NewBitset(n)
		for _, sub := range q {
			out.orWith(recur(sub))
		}
		return out
	case cmpPredicate:
		return leafCmp(q)
	default:
		return leafOpaque(pred)
	}
}

// evalPhysical evaluates pred over every physical row of base table b,
// returning a bitset over physical rows 0..b.nrows-1.
func evalPhysical(b *Table, pred Predicate) *Bitset {
	return evalCombinators(pred, b.nrows,
		func(q cmpPredicate) *Bitset { return evalCmpPhysical(b, q) },
		func(p Predicate) *Bitset { return evalGenericPhysical(b, p) })
}

// evalViewRelative evaluates pred over a view's rows, returning a bitset
// over VIEW positions. Vectorized comparisons still run over the full
// base column (they are total, pure functions, so evaluating excluded
// rows is invisible) and project through the selection; opaque
// predicates (FuncPredicate) are invoked only on the view's own rows —
// a predicate that is partial, side-effecting, or only defined on a
// partition must never see rows the view excludes. The opaque loop is
// also kept serial for the same reason: an opaque predicate promised
// purity, not safety under concurrent invocation.
func evalViewRelative(t *Table, pred Predicate) *Bitset {
	base := t.Base()
	return evalCombinators(pred, len(t.sel),
		func(q cmpPredicate) *Bitset { return projectToView(t, evalCmpPhysical(base, q)) },
		func(p Predicate) *Bitset {
			out := NewBitset(len(t.sel))
			for i, phys := range t.sel {
				if p.Eval(Record{schema: t.schema, tab: base, row: int(phys)}) {
					out.set(i)
				}
			}
			return out
		})
}

// projectToView maps a bitset over base physical rows onto view positions.
// Chunked over view positions: workers write disjoint chunk-aligned word
// ranges of out and only read phys.
func projectToView(t *Table, phys *Bitset) *Bitset {
	out := NewBitset(len(t.sel))
	ParallelRows(len(t.sel), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if phys.Get(int(t.sel[i])) {
				out.set(i)
			}
		}
	})
	return out
}

// evalGenericPhysical is the row-at-a-time fallback for opaque
// predicates (FuncPredicate). It is deliberately serial: the purity
// contract opaque predicates sign up to says nothing about safety under
// concurrent invocation, so they are never called from pool workers.
func evalGenericPhysical(b *Table, pred Predicate) *Bitset {
	out := NewBitset(b.nrows)
	for i := 0; i < b.nrows; i++ {
		if pred.Eval(Record{schema: b.schema, tab: b, row: i}) {
			out.set(i)
		}
	}
	return out
}

// verdict reports whether a three-way comparison result c satisfies op,
// mirroring cmpPredicate.Eval.
func verdict(c int, op CmpOp) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// constBitset returns the all-or-nothing bitset for a comparison whose
// outcome does not depend on the row: Value.Compare orders values of
// different (and not both numeric) kinds purely by kind, so e.g.
// "stringCol < 3" is the same verdict for every row.
func constBitset(n int, colKind Kind, val Value, op CmpOp) *Bitset {
	c := -1
	if colKind > val.kind {
		c = 1
	}
	return allOrNone(n, verdict(c, op))
}

func allOrNone(n int, all bool) *Bitset {
	out := NewBitset(n)
	if all {
		out.setAll()
	}
	return out
}

// evalCmpPhysical vectorizes one comparison predicate over the typed
// column vector. The row loops are chunked across the scan worker pool
// (ParallelRows): per-leaf setup — operator dispatch, the per-dictionary
// verdict table — happens once on the calling goroutine, then each
// worker fills a disjoint chunk-aligned segment of the output bitset,
// so the parallel result is positionally identical to the serial one.
func evalCmpPhysical(b *Table, q cmpPredicate) *Bitset {
	ci := b.schema.ColumnIndex(q.attr)
	if ci < 0 {
		// Match the row path: r.Get panics on an unknown attribute.
		panic("dataset: unknown attribute \"" + q.attr + "\"")
	}
	col := b.cols[ci]
	if !col.pure() {
		// Mixed-kind column: per-row Value comparison, but still a pure
		// read of the column store, so the loop can chunk like the
		// vectorized ones (unlike opaque FuncPredicates, which stay
		// serial in evalGenericPhysical).
		out := NewBitset(b.nrows)
		ParallelRows(b.nrows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if q.Eval(Record{schema: b.schema, tab: b, row: i}) {
					out.set(i)
				}
			}
		})
		return out
	}
	n := b.nrows
	switch col.kind {
	case KindInt:
		if !q.val.isNumeric() {
			return constBitset(n, KindInt, q.val, q.op)
		}
		if v := q.val.AsFloat(); !math.IsNaN(v) {
			out := NewBitset(n)
			ParallelRows(n, func(_, lo, hi int) {
				vecCmpInts(out, col.ints[lo:hi], v, q.op, lo)
			})
			return out
		}
		// Value.Compare returns 0 whenever either side is NaN (neither
		// < nor > holds), so comparing against NaN is row-independent.
		return allOrNone(n, verdict(0, q.op))
	case KindFloat:
		if !q.val.isNumeric() {
			return constBitset(n, KindFloat, q.val, q.op)
		}
		if v := q.val.AsFloat(); !math.IsNaN(v) {
			out := NewBitset(n)
			ParallelRows(n, func(_, lo, hi int) {
				vecCmpFloats(out, col.floats[lo:hi], v, q.op, lo)
			})
			return out
		}
		return allOrNone(n, verdict(0, q.op))
	case KindBool:
		if q.val.kind != KindBool {
			return constBitset(n, KindBool, q.val, q.op)
		}
		out := NewBitset(n)
		matchTrue := verdict(cmpBool(true, q.val.b), q.op)
		matchFalse := verdict(cmpBool(false, q.val.b), q.op)
		ParallelRows(n, func(_, lo, hi int) {
			for i, x := range col.bools[lo:hi] {
				if (x && matchTrue) || (!x && matchFalse) {
					out.set(lo + i)
				}
			}
		})
		return out
	default: // KindString
		if q.val.kind != KindString {
			return constBitset(n, KindString, q.val, q.op)
		}
		// Dictionary win: decide the comparison once per DISTINCT value,
		// then the row pass is a pure table lookup.
		match := make([]bool, len(col.dict.vals))
		for code, s := range col.dict.vals {
			match[code] = verdict(strings.Compare(s, q.val.s), q.op)
		}
		out := NewBitset(n)
		ParallelRows(n, func(_, lo, hi int) {
			for i, code := range col.codes[lo:hi] {
				if match[code] {
					out.set(lo + i)
				}
			}
		})
		return out
	}
}

// vecCmpInts sets the bits of rows whose int value compares to v under
// op. The operator switch is hoisted out of the row loop — one tight
// branch-free-ish loop per operator. Comparison is through float64 on
// both sides, matching Value.Compare's numeric semantics exactly. xs is
// one chunk of the column; off is its first row's index, so bit off+i
// corresponds to xs[i] (chunks are word-aligned — see ParallelRows).
func vecCmpInts(out *Bitset, xs []int64, v float64, op CmpOp, off int) {
	switch op {
	case OpEq:
		for i, x := range xs {
			if float64(x) == v {
				out.set(off + i)
			}
		}
	case OpNe:
		for i, x := range xs {
			if float64(x) != v {
				out.set(off + i)
			}
		}
	case OpLt:
		for i, x := range xs {
			if float64(x) < v {
				out.set(off + i)
			}
		}
	case OpLe:
		for i, x := range xs {
			if float64(x) <= v {
				out.set(off + i)
			}
		}
	case OpGt:
		for i, x := range xs {
			if float64(x) > v {
				out.set(off + i)
			}
		}
	case OpGe:
		for i, x := range xs {
			if float64(x) >= v {
				out.set(off + i)
			}
		}
	}
}

// vecCmpFloats is vecCmpInts for float64 columns. v is known non-NaN
// (handled by the caller), but a stored x may be NaN: Value.Compare
// yields 0 for it, so Eq/Le/Ge must also match NaN rows and Ne must not
// (the x != x test is the NaN check).
func vecCmpFloats(out *Bitset, xs []float64, v float64, op CmpOp, off int) {
	switch op {
	case OpEq:
		for i, x := range xs {
			if x == v || x != x {
				out.set(off + i)
			}
		}
	case OpNe:
		for i, x := range xs {
			if x != v && x == x {
				out.set(off + i)
			}
		}
	case OpLt:
		for i, x := range xs {
			if x < v {
				out.set(off + i)
			}
		}
	case OpLe:
		for i, x := range xs {
			if x <= v || x != x {
				out.set(off + i)
			}
		}
	case OpGt:
		for i, x := range xs {
			if x > v {
				out.set(off + i)
			}
		}
	case OpGe:
		for i, x := range xs {
			if x >= v || x != x {
				out.set(off + i)
			}
		}
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}
