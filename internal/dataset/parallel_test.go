package dataset

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a given scan-worker setting, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := ScanWorkers()
	SetScanWorkers(n)
	defer SetScanWorkers(prev)
	f()
}

// sameBits reports whether two bitsets are bit-identical (length and
// every word).
func sameBits(a, b *Bitset) bool {
	if a.n != b.n || len(a.words) != len(b.words) {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// TestParallelRowsCoversEveryRowOnce checks the dispatch invariant every
// pass relies on: chunk windows partition [0, rows) exactly, whatever
// the worker count.
func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, rows := range []int{0, 1, 63, 64, chunkRows - 1, chunkRows, chunkRows + 1, 3*chunkRows + 17} {
			withWorkers(t, workers, func() {
				hits := make([]int32, rows)
				ParallelRows(rows, func(w, lo, hi int) {
					if lo < 0 || hi > rows || lo >= hi {
						t.Errorf("workers=%d rows=%d: bad window [%d, %d)", workers, rows, lo, hi)
					}
					if w < 0 || w >= MaxScanWorkers {
						t.Errorf("workers=%d rows=%d: worker slot %d out of range", workers, rows, w)
					}
					if lo%chunkRows != 0 {
						t.Errorf("workers=%d rows=%d: window start %d not chunk-aligned", workers, rows, lo)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d rows=%d: row %d visited %d times", workers, rows, i, h)
					}
				}
			})
		}
	}
}

// TestParallelRowsPanicPropagates checks a worker panic is re-raised on
// the calling goroutine and does not wedge the pool for later scans.
func TestParallelRowsPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic in chunk fn was swallowed")
				}
			}()
			ParallelRows(4*chunkRows, func(_, lo, _ int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
		// The pool must still work after the panic.
		var n atomic.Int64
		ParallelRows(2*chunkRows, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
		if got := n.Load(); got != 2*chunkRows {
			t.Fatalf("post-panic scan covered %d rows, want %d", got, 2*chunkRows)
		}
	})
}

// TestSetScanWorkersClamps pins the configuration bounds.
func TestSetScanWorkersClamps(t *testing.T) {
	prev := ScanWorkers()
	defer SetScanWorkers(prev)
	if got := SetScanWorkers(0); got != 1 {
		t.Fatalf("SetScanWorkers(0) = %d, want 1", got)
	}
	if got := SetScanWorkers(1 << 20); got != MaxScanWorkers {
		t.Fatalf("SetScanWorkers(1<<20) = %d, want %d", got, MaxScanWorkers)
	}
	if got := SetScanWorkers(3); got != 3 || ScanWorkers() != 3 {
		t.Fatalf("SetScanWorkers(3) = %d / ScanWorkers() = %d, want 3/3", got, ScanWorkers())
	}
	// Parallelism never exceeds the chunk count.
	SetScanWorkers(8)
	if got := ScanParallelism(chunkRows); got != 1 {
		t.Fatalf("ScanParallelism(one chunk) = %d, want 1 (serial)", got)
	}
	if got := ScanParallelism(2*chunkRows + 1); got != 3 {
		t.Fatalf("ScanParallelism(2 chunks + 1 row) = %d, want 3", got)
	}
}

// TestParallelSelectDifferential pins the tentpole guarantee: Select and
// SplitBits produce BIT-IDENTICAL results under every worker count, on
// multi-chunk tables, over fuzzed predicates — including mixed-kind
// cells and opaque-free trees of every comparison shape.
func TestParallelSelectDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := 2*chunkRows + rng.Intn(chunkRows) // 2–3 chunks
		tb := randomTable(rng, rows)
		for round := 0; round < 6; round++ {
			pred := randomPredicate(rng, 3)

			var serial, parallel *Bitset
			withWorkers(t, 1, func() { serial = tb.Select(pred) })
			for _, workers := range []int{2, 8} {
				withWorkers(t, workers, func() { parallel = tb.Select(pred) })
				if !sameBits(serial, parallel) {
					t.Fatalf("seed %d round %d: Select(%s) differs between 1 and %d workers",
						seed, round, pred, workers)
				}
			}

			// SplitBits: distinct policy names defeat the split cache so
			// each worker count really recomputes the partition.
			var sSens, sNS, pSens, pNS *Bitset
			withWorkers(t, 1, func() {
				sSens, sNS = tb.SplitBits(NewPolicy(fmt.Sprintf("serial-%d-%d", seed, round), pred))
			})
			withWorkers(t, 8, func() {
				pSens, pNS = tb.SplitBits(NewPolicy(fmt.Sprintf("parallel-%d-%d", seed, round), pred))
			})
			if !sameBits(sSens, pSens) || !sameBits(sNS, pNS) {
				t.Fatalf("seed %d round %d: SplitBits(%s) differs between 1 and 8 workers", seed, round, pred)
			}
		}

		// Views: a filtered multi-chunk subset takes the view-relative
		// path (vectorized leaves + parallel projection).
		sub := tb.Filter(Cmp("I", OpNe, Int(0)))
		pred := randomPredicate(rng, 3)
		var serial, parallel *Bitset
		withWorkers(t, 1, func() { serial = sub.Select(pred) })
		withWorkers(t, 8, func() { parallel = sub.Select(pred) })
		if !sameBits(serial, parallel) {
			t.Fatalf("seed %d: view Select(%s) differs between 1 and 8 workers", seed, pred)
		}
	}
}

// TestParallelSelectMatchesRowEval spot-checks the parallel result
// against the row-at-a-time reference on a multi-chunk table, closing
// the loop serial-vs-parallel differential testing alone leaves open.
func TestParallelSelectMatchesRowEval(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	rng := rand.New(rand.NewSource(42))
	tb := randomTable(rng, 2*chunkRows+123)
	pred := And(
		Cmp("I", OpGe, Int(-1)),
		Or(Cmp("S", OpEq, Str("a")), Cmp("F", OpLt, Float(1))),
	)
	withWorkers(t, 8, func() {
		bits := tb.Select(pred)
		// Every 997th row plus the chunk boundaries, where an off-by-one
		// would live.
		check := func(i int) {
			if bits.Get(i) != pred.Eval(tb.Record(i)) {
				t.Fatalf("row %d: parallel Select disagrees with Predicate.Eval", i)
			}
		}
		for i := 0; i < tb.Len(); i += 997 {
			check(i)
		}
		for _, i := range []int{0, chunkRows - 1, chunkRows, 2*chunkRows - 1, 2 * chunkRows, tb.Len() - 1} {
			check(i)
		}
	})
}

// TestParallelSelectConcurrentQueries runs many Selects from racing
// goroutines with the pool engaged — the serving shape (N HTTP queries
// sharing one table) — and checks every result. Run with -race in CI.
func TestParallelSelectConcurrentQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	rng := rand.New(rand.NewSource(7))
	tb := randomTable(rng, 2*chunkRows+55)
	preds := make([]Predicate, 4)
	want := make([]*Bitset, len(preds))
	withWorkers(t, 1, func() {
		for i := range preds {
			preds[i] = randomPredicate(rng, 3)
			want[i] = tb.Select(preds[i])
		}
	})
	withWorkers(t, 8, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := range preds {
					if got := tb.Select(preds[i]); !sameBits(got, want[i]) {
						t.Errorf("goroutine %d: concurrent Select(%s) wrong", g, preds[i])
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
