package dataset

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Predicate is a boolean condition over a record. Predicates are the
// building blocks of both query conditions and privacy policies.
type Predicate interface {
	// Eval reports whether the record satisfies the predicate.
	Eval(r Record) bool
	// String renders the predicate in a λ-calculus-ish notation mirroring
	// the paper's policy examples.
	String() string
}

// CmpOp is a comparison operator for attribute predicates.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in predicate syntax ("=", "!=", "<", …).
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

type cmpPredicate struct {
	attr string
	op   CmpOp
	val  Value
}

func (p cmpPredicate) Eval(r Record) bool {
	c := r.Get(p.attr).Compare(p.val)
	switch p.op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

func (p cmpPredicate) String() string {
	return fmt.Sprintf("r.%s %s %s", p.attr, p.op, p.val.AsString())
}

// Cmp builds an attribute-comparison predicate, e.g. Cmp("Age", OpLe, Int(17)).
func Cmp(attr string, op CmpOp, val Value) Predicate {
	return cmpPredicate{attr: attr, op: op, val: val}
}

type andPredicate []Predicate

func (ps andPredicate) Eval(r Record) bool {
	for _, p := range ps {
		if !p.Eval(r) {
			return false
		}
	}
	return true
}

func (ps andPredicate) String() string { return joinPreds(ps, " ∧ ") }

// And is the conjunction of predicates. The empty conjunction is true.
func And(ps ...Predicate) Predicate { return andPredicate(ps) }

type orPredicate []Predicate

func (ps orPredicate) Eval(r Record) bool {
	for _, p := range ps {
		if p.Eval(r) {
			return true
		}
	}
	return false
}

func (ps orPredicate) String() string { return joinPreds(ps, " ∨ ") }

// Or is the disjunction of predicates. The empty disjunction is false.
func Or(ps ...Predicate) Predicate { return orPredicate(ps) }

type notPredicate struct{ p Predicate }

func (p notPredicate) Eval(r Record) bool { return !p.p.Eval(r) }
func (p notPredicate) String() string     { return "¬(" + p.p.String() + ")" }

// Not negates a predicate.
func Not(p Predicate) Predicate { return notPredicate{p} }

type truePredicate struct{}

func (truePredicate) Eval(Record) bool { return true }
func (truePredicate) String() string   { return "true" }

// True is the predicate satisfied by every record.
func True() Predicate { return truePredicate{} }

type falsePredicate struct{}

func (falsePredicate) Eval(Record) bool { return false }
func (falsePredicate) String() string   { return "false" }

// False is the predicate satisfied by no record.
func False() Predicate { return falsePredicate{} }

// FuncPredicate adapts an arbitrary Go function to a Predicate; name is used
// for String. Each call mints a distinct identity for caching purposes
// (see Table.SplitBits): reusing one FuncPredicate value hits the caches,
// while two FuncPredicates wrapping different functions never alias even
// if their names collide.
func FuncPredicate(name string, f func(Record) bool) Predicate {
	return funcPredicate{id: funcPredicateID.Add(1), name: name, f: f}
}

// funcPredicateID mints unique identities for opaque predicates.
var funcPredicateID atomic.Uint64

type funcPredicate struct {
	id   uint64
	name string
	f    func(Record) bool
}

func (p funcPredicate) Eval(r Record) bool { return p.f(r) }
func (p funcPredicate) String() string     { return p.name }

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	if len(parts) == 0 {
		return "()"
	}
	return strings.Join(parts, sep)
}

// Policy is the paper's policy function P : T → {0, 1} (Definition 3.1),
// expressed over typed records. A record is sensitive when the sensitivity
// predicate holds (P(r)=0) and non-sensitive otherwise (P(r)=1).
type Policy struct {
	name      string
	sensitive Predicate
}

// NewPolicy builds a policy whose sensitive records are those satisfying
// the given predicate.
func NewPolicy(name string, sensitiveWhen Predicate) Policy {
	return Policy{name: name, sensitive: sensitiveWhen}
}

// AllSensitive is the paper's P_all (Definition 3.7): every record is
// sensitive. Under P_all, OSDP degenerates to standard DP.
func AllSensitive() Policy { return NewPolicy("P_all", True()) }

// AllNonSensitive marks no record sensitive; under it OSDP imposes no
// constraint (the neighbor set is empty). Useful in tests.
func AllNonSensitive() Policy { return NewPolicy("P_none", False()) }

// Name returns the policy's display name.
func (p Policy) Name() string { return p.name }

// Sensitive reports P(r) = 0.
func (p Policy) Sensitive(r Record) bool { return p.sensitive.Eval(r) }

// NonSensitive reports P(r) = 1.
func (p Policy) NonSensitive(r Record) bool { return !p.sensitive.Eval(r) }

// P returns the paper's numeric convention: 0 for sensitive, 1 for
// non-sensitive.
func (p Policy) P(r Record) int {
	if p.Sensitive(r) {
		return 0
	}
	return 1
}

// String renders the policy in the paper's λ-notation.
func (p Policy) String() string {
	return fmt.Sprintf("λr.if(%s): 0; else: 1", p.sensitive.String())
}

// IsRelaxationOf reports whether p is a relaxation of q (p ⊑ q, Definition
// 3.5) over the given record universe: every record sensitive under p must
// be sensitive under q, i.e. P_p(r) >= P_q(r) for all r. Since policies are
// black-box predicates, the check is performed against an explicit universe
// of records (typically the table under analysis, or an enumerated domain).
func (p Policy) IsRelaxationOf(q Policy, universe []Record) bool {
	for _, r := range universe {
		if p.P(r) < q.P(r) {
			return false
		}
	}
	return true
}

// MinimumRelaxation returns the minimum relaxation P_mr of the given
// policies (Definition 3.6): a record is sensitive under P_mr only if it is
// sensitive under every input policy (P_mr(r) = max_i P_i(r)).
func MinimumRelaxation(policies ...Policy) Policy {
	if len(policies) == 0 {
		return AllSensitive()
	}
	preds := make([]Predicate, len(policies))
	var names []string
	seen := make(map[string]bool)
	for i, pol := range policies {
		preds[i] = pol.sensitive
		if !seen[pol.name] {
			seen[pol.name] = true
			names = append(names, pol.name)
		}
	}
	return Policy{
		name:      "mr(" + strings.Join(names, ",") + ")",
		sensitive: And(preds...),
	}
}
