package dataset

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Schema names and types the attributes of a table. Attribute order is
// significant: records are stored positionally.
type Schema struct {
	names []string
	kinds []Kind
	index map[string]int
}

// NewSchema builds a schema from (name, kind) pairs. It panics on duplicate
// attribute names, since a schema is almost always a package-level constant
// and a duplicate is a programming error.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if _, dup := s.index[f.Name]; dup {
			panic(fmt.Sprintf("dataset: duplicate attribute %q", f.Name))
		}
		s.index[f.Name] = len(s.names)
		s.names = append(s.names, f.Name)
		s.kinds = append(s.kinds, f.Kind)
	}
	return s
}

// Field is one attribute declaration in a schema.
type Field struct {
	Name string
	Kind Kind
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the attribute names in declaration order. The caller must
// not modify the returned slice.
func (s *Schema) Names() []string { return s.names }

// KindOf returns the declared kind of the named attribute.
func (s *Schema) KindOf(name string) (Kind, bool) {
	i, ok := s.index[name]
	if !ok {
		return 0, false
	}
	return s.kinds[i], true
}

// ColumnIndex returns the position of the named attribute, or -1.
func (s *Schema) ColumnIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Record is a tuple conforming to some schema. A record is either
// standalone (built by NewRecord, carrying its own values) or a
// lightweight row view into a table's column store (returned by
// Table.Record/Records). Both are value types: copying one never copies
// attribute data, so treat records as immutable once stored in a table.
type Record struct {
	schema *Schema
	values []Value // standalone records
	tab    *Table  // row views: the base table owning the columns
	row    int     // physical row index in tab
}

// NewRecord builds a standalone record for schema s from positional
// values. It panics if the arity does not match.
func NewRecord(s *Schema, values ...Value) Record {
	if len(values) != s.Len() {
		panic(fmt.Sprintf("dataset: record arity %d does not match schema arity %d",
			len(values), s.Len()))
	}
	return Record{schema: s, values: values}
}

// Schema returns the record's schema.
func (r Record) Schema() *Schema { return r.schema }

// Get returns the value of the named attribute. It panics on an unknown
// attribute, which indicates a policy/query written against the wrong
// schema.
func (r Record) Get(name string) Value {
	i := r.schema.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return r.At(i)
}

// At returns the value at column position i.
func (r Record) At(i int) Value {
	if r.values != nil {
		return r.values[i]
	}
	return r.tab.cols[i].value(r.row)
}

// Key renders the record as a canonical string, usable as a map key for
// multiset semantics and for grouping. Values are escaped so that the
// field separator occurring inside a value cannot alias distinct records.
func (r Record) Key() string {
	var b strings.Builder
	for i := 0; i < r.schema.Len(); i++ {
		if i > 0 {
			b.WriteByte(keySep)
		}
		writeEscapedKeyPart(&b, r.At(i).AsString())
	}
	return b.String()
}

// keySep separates fields in a record key; values containing it (or the
// escape byte) are escaped by writeEscapedKeyPart so keys stay injective.
const keySep = '\x1f'

func writeEscapedKeyPart(b *strings.Builder, s string) {
	if !strings.ContainsAny(s, "\\\x1f") {
		b.WriteString(s)
		return
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case keySep:
			b.WriteString(`\u`)
		default:
			b.WriteByte(s[i])
		}
	}
}

// Table is an in-memory multiset of records sharing one schema — the
// "database D" of the paper. Storage is columnar: each attribute is a
// typed vector (int64/float64/bool, or a dictionary-coded string column),
// and the Record API reads through lightweight row views. A table is
// either a base table owning its columns, or a view: a selection vector
// over another table's columns, produced by Filter and Split. Views share
// storage — N policy partitions of one dataset cost N index slices, not N
// copies of the data.
//
// Tables are safe for concurrent READS (Record/Records, Filter, Count,
// Select, Split); Append must not race with any other access, matching
// the previous contract.
type Table struct {
	schema *Schema
	cols   []*column
	nrows  int // physical rows; meaningful for base tables

	base *Table  // nil for base tables; the storage owner for views
	sel  []int32 // view: physical row ids in base, strictly increasing

	mu     sync.Mutex
	splits map[string]*splitEntry
}

// splitEntry caches one policy's partition of a table: the bitsets and
// the derived selection vectors (shared by every view handed out).
type splitEntry struct {
	sens, ns       *Bitset
	sensSel, nsSel []int32
}

// NewTable creates an empty base table with the given schema.
func NewTable(s *Schema) *Table {
	t := &Table{schema: s, cols: make([]*column, s.Len())}
	for i := range t.cols {
		t.cols[i] = newColumn(s.kinds[i])
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of records.
func (t *Table) Len() int {
	if t.sel != nil {
		return len(t.sel)
	}
	return t.nrows
}

// Base returns the table owning the physical column storage: t itself for
// base tables, the root table for views. Row ids in Selection and in the
// Column* accessors are indices into Base().
func (t *Table) Base() *Table {
	if t.base != nil {
		return t.base
	}
	return t
}

// Selection returns the physical row ids (into Base()) backing a view —
// strictly increasing, so view order is base order — or nil when t is a
// base table or a view covering every base row (rows are then
// 0..Len()-1 directly). The caller must not modify the returned slice.
func (t *Table) Selection() []int32 {
	if t.sel != nil && t.selIsIdentity() {
		return nil
	}
	return t.sel
}

// physRow maps a table-relative position to a physical row in Base().
func (t *Table) physRow(i int) int {
	if t.sel != nil {
		return int(t.sel[i])
	}
	return i
}

// ColumnInts returns the int64 vector backing column i of the base
// storage, indexed by PHYSICAL row (combine with Selection on views).
// ok is false when the column is not a purely int-typed vector; callers
// must then fall back to the Record API.
func (t *Table) ColumnInts(i int) ([]int64, bool) {
	c := t.Base().cols[i]
	if c.kind != KindInt || !c.pure() {
		return nil, false
	}
	return c.ints, true
}

// ColumnFloats is ColumnInts for float64 columns.
func (t *Table) ColumnFloats(i int) ([]float64, bool) {
	c := t.Base().cols[i]
	if c.kind != KindFloat || !c.pure() {
		return nil, false
	}
	return c.floats, true
}

// ColumnBools is ColumnInts for bool columns.
func (t *Table) ColumnBools(i int) ([]bool, bool) {
	c := t.Base().cols[i]
	if c.kind != KindBool || !c.pure() {
		return nil, false
	}
	return c.bools, true
}

// ColumnStrings returns the dictionary codes and dictionary of a string
// column of the base storage, indexed by PHYSICAL row. The dictionary
// maps code -> string and may contain entries no physical row references.
// ok is false when the column is not a purely string-typed vector.
func (t *Table) ColumnStrings(i int) (codes []uint32, dict []string, ok bool) {
	c := t.Base().cols[i]
	if c.kind != KindString || !c.pure() {
		return nil, nil, false
	}
	return c.codes, c.dict.vals, true
}

// Append adds records to the table. Records must share the table's schema.
// Appending to a view first materializes it into an independent base table
// (the view semantics of Filter/Split results are copy-on-append).
func (t *Table) Append(rs ...Record) {
	for _, r := range rs {
		if r.schema != t.schema {
			panic("dataset: record schema does not match table schema")
		}
	}
	t.materialize()
	t.invalidate()
	for _, r := range rs {
		for i, c := range t.cols {
			c.appendValue(t.nrows, r.At(i))
		}
		t.nrows++
	}
}

// AppendValues builds a record from positional values and appends it.
func (t *Table) AppendValues(values ...Value) {
	t.Append(NewRecord(t.schema, values...))
}

// materialize converts a view into a base table owning copies of its
// selected rows. No-op on base tables.
func (t *Table) materialize() {
	if t.sel == nil {
		return
	}
	baseCols := t.Base().cols
	cols := make([]*column, len(baseCols))
	for i, c := range baseCols {
		cols[i] = c.gather(t.sel)
	}
	t.cols = cols
	t.nrows = len(t.sel)
	t.base = nil
	t.sel = nil
}

// invalidate drops caches that depend on the current row set.
func (t *Table) invalidate() {
	t.mu.Lock()
	t.splits = nil
	t.mu.Unlock()
}

// Record returns the i-th record as a row view.
func (t *Table) Record(i int) Record {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("dataset: record index %d out of range [0, %d)", i, t.Len()))
	}
	return Record{schema: t.schema, tab: t.Base(), row: t.physRow(i)}
}

// Records returns the table's records as row views. The slice is built
// per call (a Record view is three words, nothing is pinned on the
// table); the caller must not mutate it. On hot paths prefer indexed
// access (Len/Record) or the columnar operations (Filter, Count, Select,
// histogram.Query.Eval), which avoid materializing the slice entirely.
func (t *Table) Records() []Record {
	base := t.Base()
	rows := make([]Record, t.Len())
	for i := range rows {
		rows[i] = Record{schema: t.schema, tab: base, row: t.physRow(i)}
	}
	return rows
}

// viewOf returns a view of t selecting the given table-relative positions
// (translated to physical rows).
func (t *Table) viewOf(positions []int32) *Table {
	sel := positions
	if t.sel != nil {
		sel = make([]int32, len(positions))
		for i, p := range positions {
			sel[i] = t.sel[p]
		}
	}
	return &Table{schema: t.schema, cols: t.Base().cols, base: t.Base(), sel: sel}
}

// viewFromSel returns a view of the BASE storage with the given physical
// selection vector (which must not be mutated afterwards).
func (t *Table) viewFromSel(sel []int32) *Table {
	return &Table{schema: t.schema, cols: t.Base().cols, base: t.Base(), sel: sel}
}

// Select compiles and evaluates pred over the table, returning the
// selection bitset (bit i set means record i matches). Comparison
// predicates over typed columns are evaluated vectorized — one pass over
// the typed slice with no per-record interface dispatch; combinators
// become bitset algebra. On tables above one chunk (64K rows) the
// vectorized passes are sharded across the scan worker pool (see
// ParallelRows); results are bit-identical to serial evaluation for
// every worker count. Unlike per-record evaluation, And/Or do not
// short-circuit, so predicates must be pure functions of the record.
// Opaque predicates (FuncPredicate) are invoked only on the table's own
// records — never on rows a view excludes — and always serially, never
// from pool workers.
//
// Select is safe for concurrent use with other reads of the table.
func (t *Table) Select(pred Predicate) *Bitset {
	if t.sel == nil || t.selIsIdentity() {
		return evalPhysical(t.Base(), pred)
	}
	return evalViewRelative(t, pred)
}

// selIsIdentity reports whether a view covers every base row in order.
// Selection vectors are strictly increasing physical row ids (Filter and
// Split emit bitset indices; composition preserves monotonicity), so
// covering the full base is equivalent to length equality — an O(1)
// check that lets full-table partitions (e.g. AllNonSensitive policies)
// skip the per-row selection indirection entirely.
func (t *Table) selIsIdentity() bool {
	return len(t.sel) == t.Base().nrows
}

// Filter returns the records satisfying pred as a view sharing this
// table's storage (copy-on-append).
func (t *Table) Filter(pred Predicate) *Table {
	return t.viewOf(t.Select(pred).indices())
}

// Count returns the number of records satisfying pred, via one vectorized
// pass.
func (t *Table) Count(pred Predicate) int {
	return t.Select(pred).Count()
}

// GroupCount groups records by the value of attribute name and returns a
// count per group key (rendered as a string). It is the engine behind
// "SELECT group, COUNT(*) ... GROUP BY" histogram queries; dense domains
// should prefer histogram.Query, which counts into a precomputed bin
// vector instead of a string map.
func (t *Table) GroupCount(name string) map[string]int {
	ci := t.schema.ColumnIndex(name)
	if ci < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	out := make(map[string]int)
	if codes, dict, ok := t.ColumnStrings(ci); ok {
		// Dictionary fast path: count codes, render each distinct value once.
		cnt := make([]int, len(dict))
		if t.sel != nil {
			for _, p := range t.sel {
				cnt[codes[p]]++
			}
		} else {
			for _, c := range codes[:t.nrows] {
				cnt[c]++
			}
		}
		for code, n := range cnt {
			if n > 0 {
				out[dict[code]] = n
			}
		}
		return out
	}
	col := t.Base().cols[ci]
	n := t.Len()
	for i := 0; i < n; i++ {
		out[col.value(t.physRow(i)).AsString()]++
	}
	return out
}

// splitKey identifies a policy for the split cache: the policy name plus
// a kind-tagged structural rendering of the predicate (predCacheKey).
// Unlike Predicate.String, the rendering distinguishes comparison-value
// kinds — Cmp(a, OpEq, Str("true")) and Cmp(a, OpEq, Bool(true)) behave
// differently and must not share a cache slot — and identifies
// FuncPredicate by a minted per-instance id, so same-named opaque
// predicates wrapping different functions never alias either. ok is
// false when the predicate contains an implementation this package
// cannot assign a sound identity to; such policies are never cached.
func splitKey(p Policy) (key string, ok bool) {
	pk, ok := predCacheKey(p.sensitive)
	return p.name + "\x00" + pk, ok
}

// predCacheKey renders a predicate for cache identity: structure tokens
// are fixed, every free-form string (attribute, value) is %q-quoted,
// comparison values carry their kind, and FuncPredicate contributes its
// minted id, so two predicates with different semantics cannot collide.
// Predicate implementations from outside this package have no provable
// identity (String() need not be faithful) and return ok=false.
func predCacheKey(p Predicate) (key string, ok bool) {
	switch q := p.(type) {
	case cmpPredicate:
		return fmt.Sprintf("cmp(%q,%d,%d:%q)", q.attr, q.op, q.val.kind, q.val.AsString()), true
	case andPredicate:
		return joinCacheKeys("and", q)
	case orPredicate:
		return joinCacheKeys("or", q)
	case notPredicate:
		sub, ok := predCacheKey(q.p)
		return "not(" + sub + ")", ok
	case truePredicate:
		return "true", true
	case falsePredicate:
		return "false", true
	case funcPredicate:
		// The minted id makes distinct function values distinct cache
		// identities even under colliding names; the same predicate
		// VALUE (however copied) still hits the cache.
		return fmt.Sprintf("func:%d", q.id), true
	default:
		return "", false
	}
}

func joinCacheKeys(tag string, ps []Predicate) (string, bool) {
	parts := make([]string, len(ps))
	for i, sub := range ps {
		k, ok := predCacheKey(sub)
		if !ok {
			return "", false
		}
		parts[i] = k
	}
	return tag + "(" + strings.Join(parts, ",") + ")", true
}

// SplitBits partitions the table by policy P into (sensitive,
// nonSensitive) selection bitsets. The partition is computed once per
// (table, policy) and cached — concurrent sessions over one dataset share
// a single split pass; the pass itself shards its predicate evaluation
// across the scan worker pool on large tables (see Select). Policies
// whose predicates come from outside this package (other than
// FuncPredicate) are computed fresh every call, as they have no sound
// cache identity.
//
// SplitBits is safe for concurrent use; racing callers for the same
// uncached policy serialize on the table's split mutex.
func (t *Table) SplitBits(p Policy) (sensitive, nonSensitive *Bitset) {
	e := t.splitEntryFor(p)
	return e.sens, e.ns
}

// maxSplitCacheEntries bounds the per-table split cache. Serving and
// session use means one or two policies per table; only policy SWEEPS
// (experiments trying hundreds of policies on one table) exceed it, and
// for those recomputation beats pinning ~4.25 bytes/row/policy forever.
const maxSplitCacheEntries = 8

func (t *Table) splitEntryFor(p Policy) *splitEntry {
	key, cacheable := splitKey(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	if cacheable {
		if e, ok := t.splits[key]; ok {
			return e
		}
	}
	sens := t.Select(p.sensitive)
	ns := sens.Clone()
	ns.invert()
	e := &splitEntry{sens: sens, ns: ns, sensSel: sens.indices(), nsSel: ns.indices()}
	if !cacheable {
		return e
	}
	if t.splits == nil {
		t.splits = make(map[string]*splitEntry)
	}
	if len(t.splits) >= maxSplitCacheEntries {
		// Evict an arbitrary entry (map order); this is a cache, not a
		// ledger — a future miss just recomputes.
		for k := range t.splits {
			delete(t.splits, k)
			break
		}
	}
	t.splits[key] = e
	return e
}

// Split partitions the table by policy P into (sensitive, nonSensitive)
// views sharing this table's storage. The underlying partition is the
// cached SplitBits result, so repeated splits under the same policy cost
// O(1) after the first.
func (t *Table) Split(p Policy) (sensitive, nonSensitive *Table) {
	e := t.splitEntryFor(p)
	if t.sel != nil {
		// View: translate view-relative indices to physical rows.
		return t.viewOf(e.sensSel), t.viewOf(e.nsSel)
	}
	return t.viewFromSel(e.sensSel), t.viewFromSel(e.nsSel)
}

// Clone returns an independent table with the same records. Column
// vectors are shared copy-on-append; the dictionary and caches are not
// shared, so appending to either table never disturbs the other.
func (t *Table) Clone() *Table {
	if t.sel != nil {
		out := NewTable(t.schema)
		baseCols := t.Base().cols
		out.cols = make([]*column, len(baseCols))
		for i, c := range baseCols {
			out.cols[i] = c.gather(t.sel)
		}
		out.nrows = len(t.sel)
		return out
	}
	out := &Table{schema: t.schema, cols: make([]*column, len(t.cols)), nrows: t.nrows}
	for i, c := range t.cols {
		out.cols[i] = c.clone()
	}
	return out
}

// Multiset returns the multiset view of the table: canonical record key to
// multiplicity. Used by tests to verify multiset invariants such as
// "OsdpRR output is a sub-multiset of its input".
func (t *Table) Multiset() map[string]int {
	n := t.Len()
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		m[t.Record(i).Key()]++
	}
	return m
}

// SortedKeys returns the distinct values of the named attribute in sorted
// order; helper for building stable histogram domains from data. Values
// are ordered by their TYPED comparison (so integer attributes sort 2
// before 10, not lexicographically) and rendered as strings.
func (t *Table) SortedKeys(name string) []string {
	ci := t.schema.ColumnIndex(name)
	if ci < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	if keys, ok := t.sortedKeysFast(ci); ok {
		return keys
	}
	// Generic path: distinct by rendered string, ordered by typed value
	// (ties broken by the rendering for a stable total order).
	col := t.Base().cols[ci]
	distinct := make(map[string]Value)
	n := t.Len()
	for i := 0; i < n; i++ {
		v := col.value(t.physRow(i))
		s := v.AsString()
		if _, ok := distinct[s]; !ok {
			distinct[s] = v
		}
	}
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		c := distinct[keys[i]].Compare(distinct[keys[j]])
		if c != 0 {
			return c < 0
		}
		return keys[i] < keys[j]
	})
	return keys
}

// sortedKeysFast handles pure int and string columns without building
// Values: distinct int64s sort numerically, dictionary entries sort
// lexicographically.
func (t *Table) sortedKeysFast(ci int) ([]string, bool) {
	if ints, ok := t.ColumnInts(ci); ok {
		distinct := make(map[int64]struct{})
		if t.sel != nil {
			for _, p := range t.sel {
				distinct[ints[p]] = struct{}{}
			}
		} else {
			for _, v := range ints[:t.nrows] {
				distinct[v] = struct{}{}
			}
		}
		vals := make([]int64, 0, len(distinct))
		for v := range distinct {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		keys := make([]string, len(vals))
		for i, v := range vals {
			keys[i] = Int(v).AsString()
		}
		return keys, true
	}
	if codes, dict, ok := t.ColumnStrings(ci); ok {
		seen := make([]bool, len(dict))
		if t.sel != nil {
			for _, p := range t.sel {
				seen[codes[p]] = true
			}
		} else {
			for _, c := range codes[:t.nrows] {
				seen[c] = true
			}
		}
		keys := make([]string, 0)
		for code, s := range seen {
			if s {
				keys = append(keys, dict[code])
			}
		}
		sort.Strings(keys)
		return keys, true
	}
	return nil, false
}
