package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Schema names and types the attributes of a table. Attribute order is
// significant: records are stored positionally.
type Schema struct {
	names []string
	kinds []Kind
	index map[string]int
}

// NewSchema builds a schema from (name, kind) pairs. It panics on duplicate
// attribute names, since a schema is almost always a package-level constant
// and a duplicate is a programming error.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if _, dup := s.index[f.Name]; dup {
			panic(fmt.Sprintf("dataset: duplicate attribute %q", f.Name))
		}
		s.index[f.Name] = len(s.names)
		s.names = append(s.names, f.Name)
		s.kinds = append(s.kinds, f.Kind)
	}
	return s
}

// Field is one attribute declaration in a schema.
type Field struct {
	Name string
	Kind Kind
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the attribute names in declaration order. The caller must
// not modify the returned slice.
func (s *Schema) Names() []string { return s.names }

// KindOf returns the declared kind of the named attribute.
func (s *Schema) KindOf(name string) (Kind, bool) {
	i, ok := s.index[name]
	if !ok {
		return 0, false
	}
	return s.kinds[i], true
}

// ColumnIndex returns the position of the named attribute, or -1.
func (s *Schema) ColumnIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Record is a tuple conforming to some schema. Records are value types:
// copying one copies its attribute slice header but the backing array is
// shared, so treat records as immutable once stored in a table.
type Record struct {
	schema *Schema
	values []Value
}

// NewRecord builds a record for schema s from positional values. It panics
// if the arity does not match.
func NewRecord(s *Schema, values ...Value) Record {
	if len(values) != s.Len() {
		panic(fmt.Sprintf("dataset: record arity %d does not match schema arity %d",
			len(values), s.Len()))
	}
	return Record{schema: s, values: values}
}

// Schema returns the record's schema.
func (r Record) Schema() *Schema { return r.schema }

// Get returns the value of the named attribute. It panics on an unknown
// attribute, which indicates a policy/query written against the wrong
// schema.
func (r Record) Get(name string) Value {
	i := r.schema.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return r.values[i]
}

// At returns the value at column position i.
func (r Record) At(i int) Value { return r.values[i] }

// Key renders the record as a canonical string, usable as a map key for
// multiset semantics and for grouping.
func (r Record) Key() string {
	var b strings.Builder
	for i, v := range r.values {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.AsString())
	}
	return b.String()
}

// Table is an in-memory multiset of records sharing one schema. A Table is
// the "database D" of the paper.
type Table struct {
	schema  *Schema
	records []Record
}

// NewTable creates an empty table with the given schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of records.
func (t *Table) Len() int { return len(t.records) }

// Append adds records to the table. Records must share the table's schema.
func (t *Table) Append(rs ...Record) {
	for _, r := range rs {
		if r.schema != t.schema {
			panic("dataset: record schema does not match table schema")
		}
		t.records = append(t.records, r)
	}
}

// AppendValues builds a record from positional values and appends it.
func (t *Table) AppendValues(values ...Value) {
	t.Append(NewRecord(t.schema, values...))
}

// Record returns the i-th record.
func (t *Table) Record(i int) Record { return t.records[i] }

// Records returns the underlying record slice. The caller must not mutate
// it; it is exposed to let mechanisms iterate without copying.
func (t *Table) Records() []Record { return t.records }

// Filter returns a new table holding the records satisfying pred.
func (t *Table) Filter(pred Predicate) *Table {
	out := NewTable(t.schema)
	for _, r := range t.records {
		if pred.Eval(r) {
			out.records = append(out.records, r)
		}
	}
	return out
}

// Count returns the number of records satisfying pred.
func (t *Table) Count(pred Predicate) int {
	n := 0
	for _, r := range t.records {
		if pred.Eval(r) {
			n++
		}
	}
	return n
}

// GroupCount groups records by the value of attribute name and returns a
// count per group key (rendered as a string). It is the engine behind
// "SELECT group, COUNT(*) ... GROUP BY" histogram queries.
func (t *Table) GroupCount(name string) map[string]int {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	out := make(map[string]int)
	for _, r := range t.records {
		out[r.values[i].AsString()]++
	}
	return out
}

// Split partitions the table by policy P into (sensitive, nonSensitive).
func (t *Table) Split(p Policy) (sensitive, nonSensitive *Table) {
	sensitive, nonSensitive = NewTable(t.schema), NewTable(t.schema)
	for _, r := range t.records {
		if p.NonSensitive(r) {
			nonSensitive.records = append(nonSensitive.records, r)
		} else {
			sensitive.records = append(sensitive.records, r)
		}
	}
	return sensitive, nonSensitive
}

// Clone returns a shallow copy of the table (records shared, slice fresh).
func (t *Table) Clone() *Table {
	out := NewTable(t.schema)
	out.records = append(out.records, t.records...)
	return out
}

// Multiset returns the multiset view of the table: canonical record key to
// multiplicity. Used by tests to verify multiset invariants such as
// "OsdpRR output is a sub-multiset of its input".
func (t *Table) Multiset() map[string]int {
	m := make(map[string]int, len(t.records))
	for _, r := range t.records {
		m[r.Key()]++
	}
	return m
}

// SortedKeys returns the distinct values of the named attribute in sorted
// order; helper for building stable histogram domains from data.
func (t *Table) SortedKeys(name string) []string {
	groups := t.GroupCount(name)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
