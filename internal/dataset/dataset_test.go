package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func personSchema() *Schema {
	return NewSchema(
		Field{"Name", KindString},
		Field{"Age", KindInt},
		Field{"Race", KindString},
		Field{"OptIn", KindBool},
		Field{"Income", KindFloat},
	)
}

func samplePeople(s *Schema) *Table {
	t := NewTable(s)
	t.AppendValues(Str("alice"), Int(34), Str("White"), Bool(true), Float(52000))
	t.AppendValues(Str("bob"), Int(16), Str("Asian"), Bool(true), Float(0))
	t.AppendValues(Str("carol"), Int(41), Str("NativeAmerican"), Bool(true), Float(71000))
	t.AppendValues(Str("dave"), Int(29), Str("Black"), Bool(false), Float(48000))
	t.AppendValues(Str("erin"), Int(12), Str("White"), Bool(false), Float(0))
	return t
}

func TestValueConversions(t *testing.T) {
	cases := []struct {
		v      Value
		asInt  int64
		asF    float64
		asStr  string
		asBool bool
	}{
		{Int(42), 42, 42, "42", true},
		{Int(0), 0, 0, "0", false},
		{Float(2.5), 2, 2.5, "2.5", true},
		{Str("7"), 7, 7, "7", false},
		{Str("true"), 0, 0, "true", true},
		{Bool(true), 1, 1, "true", true},
		{Bool(false), 0, 0, "false", false},
	}
	for _, c := range cases {
		if got := c.v.AsInt(); got != c.asInt {
			t.Errorf("%v.AsInt() = %d, want %d", c.v, got, c.asInt)
		}
		if got := c.v.AsFloat(); got != c.asF {
			t.Errorf("%v.AsFloat() = %v, want %v", c.v, got, c.asF)
		}
		if got := c.v.AsString(); got != c.asStr {
			t.Errorf("AsString() = %q, want %q", got, c.asStr)
		}
		if got := c.v.AsBool(); got != c.asBool {
			t.Errorf("%v.AsBool() = %v, want %v", c.v, got, c.asBool)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) != Float(3.0)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) should not equal Str(\"3\")")
	}
	if !Str("x").Equal(Str("x")) {
		t.Error("identical strings unequal")
	}
	if Bool(true).Equal(Bool(false)) {
		t.Error("true == false")
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Float(2)) != -1 {
		t.Error("1 < 2.0 failed")
	}
	if Str("b").Compare(Str("a")) != 1 {
		t.Error("b > a failed")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("false < true failed")
	}
	if Int(5).Compare(Int(5)) != 0 {
		t.Error("5 == 5 failed")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute did not panic")
		}
	}()
	NewSchema(Field{"A", KindInt}, Field{"A", KindInt})
}

func TestSchemaLookup(t *testing.T) {
	s := personSchema()
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if k, ok := s.KindOf("Age"); !ok || k != KindInt {
		t.Errorf("KindOf(Age) = %v, %v", k, ok)
	}
	if _, ok := s.KindOf("Nope"); ok {
		t.Error("KindOf(Nope) reported ok")
	}
	if s.ColumnIndex("Income") != 4 {
		t.Errorf("ColumnIndex(Income) = %d", s.ColumnIndex("Income"))
	}
	if s.ColumnIndex("Nope") != -1 {
		t.Error("ColumnIndex(Nope) != -1")
	}
}

func TestRecordArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	NewRecord(personSchema(), Int(1))
}

func TestRecordGetUnknownPanics(t *testing.T) {
	s := personSchema()
	r := NewRecord(s, Str("x"), Int(1), Str("y"), Bool(true), Float(0))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown attribute did not panic")
		}
	}()
	r.Get("Missing")
}

func TestTableFilterAndCount(t *testing.T) {
	tb := samplePeople(personSchema())
	minors := tb.Filter(Cmp("Age", OpLe, Int(17)))
	if minors.Len() != 2 {
		t.Errorf("minors = %d, want 2", minors.Len())
	}
	if n := tb.Count(Cmp("OptIn", OpEq, Bool(false))); n != 2 {
		t.Errorf("opted-out = %d, want 2", n)
	}
	if n := tb.Count(True()); n != tb.Len() {
		t.Errorf("Count(True) = %d, want %d", n, tb.Len())
	}
	if n := tb.Count(False()); n != 0 {
		t.Errorf("Count(False) = %d", n)
	}
}

func TestGroupCount(t *testing.T) {
	tb := samplePeople(personSchema())
	byRace := tb.GroupCount("Race")
	if byRace["White"] != 2 || byRace["Asian"] != 1 {
		t.Errorf("GroupCount(Race) = %v", byRace)
	}
	total := 0
	for _, c := range byRace {
		total += c
	}
	if total != tb.Len() {
		t.Errorf("group counts sum to %d, want %d", total, tb.Len())
	}
}

func TestPredicateCombinators(t *testing.T) {
	tb := samplePeople(personSchema())
	// The paper's example 2: NativeAmerican OR opted-out is sensitive.
	p := Or(
		Cmp("Race", OpEq, Str("NativeAmerican")),
		Cmp("OptIn", OpEq, Bool(false)),
	)
	if n := tb.Count(p); n != 3 {
		t.Errorf("sensitive = %d, want 3 (carol, dave, erin)", n)
	}
	if n := tb.Count(Not(p)); n != 2 {
		t.Errorf("non-sensitive = %d, want 2", n)
	}
	both := And(Cmp("Age", OpGe, Int(18)), Cmp("OptIn", OpEq, Bool(true)))
	if n := tb.Count(both); n != 2 {
		t.Errorf("adult opt-ins = %d, want 2", n)
	}
	if !And().Eval(tb.Record(0)) {
		t.Error("empty And is not true")
	}
	if Or().Eval(tb.Record(0)) {
		t.Error("empty Or is not false")
	}
}

func TestPolicySplit(t *testing.T) {
	tb := samplePeople(personSchema())
	minors := NewPolicy("minors", Cmp("Age", OpLe, Int(17)))
	sens, ns := tb.Split(minors)
	if sens.Len() != 2 || ns.Len() != 3 {
		t.Fatalf("split = (%d, %d), want (2, 3)", sens.Len(), ns.Len())
	}
	if sens.Len()+ns.Len() != tb.Len() {
		t.Error("split does not partition the table")
	}
	for _, r := range sens.Records() {
		if minors.P(r) != 0 {
			t.Error("sensitive partition contains non-sensitive record")
		}
	}
	for _, r := range ns.Records() {
		if minors.P(r) != 1 {
			t.Error("non-sensitive partition contains sensitive record")
		}
	}
}

func TestAllSensitiveAndAllNonSensitive(t *testing.T) {
	tb := samplePeople(personSchema())
	for _, r := range tb.Records() {
		if AllSensitive().P(r) != 0 {
			t.Fatal("P_all marked a record non-sensitive")
		}
		if AllNonSensitive().P(r) != 1 {
			t.Fatal("P_none marked a record sensitive")
		}
	}
}

func TestPolicyRelaxation(t *testing.T) {
	tb := samplePeople(personSchema())
	u := tb.Records()
	minors := NewPolicy("minors", Cmp("Age", OpLe, Int(17)))
	under30 := NewPolicy("under30", Cmp("Age", OpLe, Int(29)))
	// minors ⊑ under30: every record sensitive under "minors" is sensitive
	// under "under30", so "minors" is the relaxation (fewer sensitive).
	if !minors.IsRelaxationOf(under30, u) {
		t.Error("minors should be a relaxation of under30")
	}
	if under30.IsRelaxationOf(minors, u) {
		t.Error("under30 should not be a relaxation of minors")
	}
	// Everything is a relaxation of P_all; P_none is a relaxation of
	// everything.
	if !minors.IsRelaxationOf(AllSensitive(), u) {
		t.Error("minors should relax P_all")
	}
	if !AllNonSensitive().IsRelaxationOf(minors, u) {
		t.Error("P_none should relax minors")
	}
}

func TestMinimumRelaxation(t *testing.T) {
	tb := samplePeople(personSchema())
	u := tb.Records()
	p1 := NewPolicy("minors", Cmp("Age", OpLe, Int(17)))
	p2 := NewPolicy("optout", Cmp("OptIn", OpEq, Bool(false)))
	mr := MinimumRelaxation(p1, p2)
	// mr sensitive iff sensitive under BOTH: only erin (12, opted out).
	nSens := 0
	for _, r := range u {
		if mr.Sensitive(r) {
			nSens++
			if !(p1.Sensitive(r) && p2.Sensitive(r)) {
				t.Error("mr sensitive but not sensitive under both")
			}
		}
	}
	if nSens != 1 {
		t.Errorf("mr sensitive count = %d, want 1", nSens)
	}
	// mr is a relaxation of both inputs.
	if !mr.IsRelaxationOf(p1, u) || !mr.IsRelaxationOf(p2, u) {
		t.Error("mr is not a relaxation of its inputs")
	}
	// Empty input degenerates to P_all.
	if MinimumRelaxation().Name() != "P_all" {
		t.Error("empty MinimumRelaxation is not P_all")
	}
	// mr(P, P) behaves as P.
	same := MinimumRelaxation(p1, p1)
	for _, r := range u {
		if same.P(r) != p1.P(r) {
			t.Error("mr(P,P) != P")
		}
	}
}

func TestMultisetView(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	tb := NewTable(s)
	tb.AppendValues(Int(1))
	tb.AppendValues(Int(1))
	tb.AppendValues(Int(2))
	m := tb.Multiset()
	if m["1"] != 2 || m["2"] != 1 {
		t.Errorf("Multiset = %v", m)
	}
}

func TestSortedKeys(t *testing.T) {
	tb := samplePeople(personSchema())
	keys := tb.SortedKeys("Race")
	want := []string{"Asian", "Black", "NativeAmerican", "White"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := samplePeople(personSchema())
	c := tb.Clone()
	c.AppendValues(Str("zed"), Int(99), Str("White"), Bool(true), Float(1))
	if tb.Len() == c.Len() {
		t.Error("clone shares record slice growth with original")
	}
}

// Property: minimum relaxation is an upper bound of its inputs and is the
// *least* such policy: any policy relaxing both inputs also relaxes mr.
func TestMinimumRelaxationIsLUBQuick(t *testing.T) {
	s := NewSchema(Field{"X", KindInt})
	universe := make([]Record, 64)
	for i := range universe {
		universe[i] = NewRecord(s, Int(int64(i)))
	}
	rng := rand.New(rand.NewSource(99))
	randPolicy := func() Policy {
		// Random threshold policy over X.
		thr := int64(rng.Intn(64))
		if rng.Intn(2) == 0 {
			return NewPolicy("p", Cmp("X", OpLe, Int(thr)))
		}
		return NewPolicy("p", Cmp("X", OpGe, Int(thr)))
	}
	f := func(_ uint8) bool {
		p1, p2, q := randPolicy(), randPolicy(), randPolicy()
		mr := MinimumRelaxation(p1, p2)
		if !mr.IsRelaxationOf(p1, universe) || !mr.IsRelaxationOf(p2, universe) {
			return false
		}
		if q.IsRelaxationOf(p1, universe) && q.IsRelaxationOf(p2, universe) {
			return q.IsRelaxationOf(mr, universe)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPolicyStringRendering(t *testing.T) {
	p := NewPolicy("minors", Cmp("Age", OpLe, Int(17)))
	if got := p.String(); got != "λr.if(r.Age <= 17): 0; else: 1" {
		t.Errorf("String() = %q", got)
	}
	q := Or(Cmp("Race", OpEq, Str("NativeAmerican")), Cmp("OptIn", OpEq, Bool(false)))
	if got := q.String(); got != "(r.Race = NativeAmerican) ∨ (r.OptIn = false)" {
		t.Errorf("String() = %q", got)
	}
	if got := Not(True()).String(); got != "¬(true)" {
		t.Errorf("Not.String() = %q", got)
	}
	if FuncPredicate("custom", func(Record) bool { return true }).String() != "custom" {
		t.Error("FuncPredicate name lost")
	}
}
