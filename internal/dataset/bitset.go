package dataset

import "math/bits"

// Bitset is a fixed-length selection vector over table rows: bit i set
// means row i is selected. It is the result type of compiled predicate
// evaluation and of policy splits — mechanisms that used to receive
// materialized tables now receive a bitset over a shared column store.
// A Bitset is immutable once returned by the library; callers building
// their own may use Set freely before sharing it.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset over n rows.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("dataset: bitset length must be non-negative")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of rows the bitset ranges over.
func (b *Bitset) Len() int { return b.n }

// Get reports whether row i is selected.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set marks row i as selected.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("dataset: bitset index out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks row i.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("dataset: bitset index out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Count returns the number of selected rows (population count).
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// setAll selects every row.
func (b *Bitset) setAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.maskTail()
}

// maskTail zeroes the bits beyond n in the last word, keeping Count and
// invert exact.
func (b *Bitset) maskTail() {
	if r := uint(b.n) & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// andWith intersects b with o in place.
func (b *Bitset) andWith(o *Bitset) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// orWith unions o into b in place.
func (b *Bitset) orWith(o *Bitset) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// invert complements b in place.
func (b *Bitset) invert() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.maskTail()
}

// indices returns the selected row positions as a dense int32 slice —
// the selection vector backing a view table.
func (b *Bitset) indices() []int32 {
	out := make([]int32, 0, b.Count())
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			out = append(out, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}
