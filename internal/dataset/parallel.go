package dataset

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel chunked-execution substrate of the columnar
// data plane. Every vectorized pass — predicate evaluation
// (Table.Select), policy-split bitset construction (SplitBits via
// Select), histogram binning and accumulation (internal/histogram) —
// shards its row loop over fixed-size chunks dispatched to one small,
// reusable, package-wide worker pool.
//
// Determinism contract: parallel execution is BIT-IDENTICAL to serial
// execution, for every worker count and every chunk interleaving. The
// passes guarantee this structurally:
//
//   - Bitset and bin-vector passes write POSITIONALLY: chunk boundaries
//     are multiples of chunkRows (a multiple of 64), so two workers
//     never touch the same bitset word or vector element.
//   - Histogram accumulation sums per-worker partials whose entries are
//     exact small integers (counts bounded by the row count, far below
//     2^53), so float64 addition is associative here and the merge
//     order cannot change the result.
//
// The differential tests in parallel_test.go pin this equivalence over
// fuzzed predicates and tables.

// chunkRows is the number of rows one dispatched chunk covers. It is a
// multiple of 64 so that chunk boundaries fall on Bitset word
// boundaries: workers filling adjacent chunks write disjoint words, and
// no merge step is needed at all. 64K rows is large enough that the
// per-chunk dispatch overhead (one atomic increment) is invisible, and
// small enough that a chunk's column slice stays cache-friendly.
const chunkRows = 1 << 16

// MaxScanWorkers hard-caps the pool; SetScanWorkers clamps to it. The
// pool exists to use the machine's cores, not to multiplex thousands of
// goroutines; values beyond the cap add scheduling overhead with no
// possible speedup. Callers keeping per-worker scratch may size it by
// this constant: worker slots handed to ParallelRows callbacks are
// always below it, even if the configured worker count changes while a
// scan is being set up.
const MaxScanWorkers = 64

// scanWorkers is the configured parallelism (see SetScanWorkers).
var scanWorkers atomic.Int32

func init() { SetScanWorkers(runtime.NumCPU()) }

// SetScanWorkers sets the data-plane scan parallelism: the maximum
// number of goroutines (including the caller) a chunked pass may use.
// n is clamped to [1, 64]; 1 makes every pass run serially on the
// caller's goroutine. The default is runtime.NumCPU. It returns the
// value actually set. Safe to call concurrently with running scans —
// in-flight passes keep the parallelism they started with.
func SetScanWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxScanWorkers {
		n = MaxScanWorkers
	}
	scanWorkers.Store(int32(n))
	return n
}

// ScanWorkers returns the configured data-plane scan parallelism.
func ScanWorkers() int { return int(scanWorkers.Load()) }

// ScanParallelism returns the number of worker slots a chunked pass
// over rows rows may use: at least 1, at most ScanWorkers, and never
// more than the number of chunks. Tables at or below one chunk (64K
// rows) therefore always report 1 and pay zero parallel overhead.
// Callers sizing per-worker scratch (e.g. partial histograms) allocate
// exactly this many slots.
func ScanParallelism(rows int) int {
	w := int(scanWorkers.Load())
	if nChunks := (rows + chunkRows - 1) / chunkRows; nChunks < w {
		w = nChunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ScanChunks returns the number of fixed-size chunks a pass over rows
// rows dispatches (at least 1). Trace spans record it alongside
// ScanParallelism so a slow scan shows its actual fan-out.
func ScanChunks(rows int) int {
	n := (rows + chunkRows - 1) / chunkRows
	if n < 1 {
		n = 1
	}
	return n
}

// pool is the lazily-started, package-wide worker pool. Workers are
// permanent goroutines (started once, reused by every scan in the
// process); the submitting goroutine always participates as worker 0,
// so a scan makes progress even when every pool worker is busy with
// other scans — there is no path where a submission can deadlock.
var pool struct {
	mu      sync.Mutex
	started int           // permanent goroutines running
	tasks   chan scanTask // UNBUFFERED; try-send only (see ParallelRows)
}

// scanTask is one worker's share of a chunked pass: grab the next
// unclaimed chunk index until none remain.
type scanTask struct {
	worker  int // this worker's slot in [0, nWorkers)
	next    *atomic.Int64
	nChunks int
	rows    int
	fn      func(worker, lo, hi int)
	wg      *sync.WaitGroup
	pan     *panicBox
}

// panicBox carries the first panic out of the pool so it can be
// re-raised on the submitting goroutine instead of killing the process
// from a bare worker.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (t scanTask) run() {
	m := scanMetrics.Load()
	if m != nil {
		m.ActiveWorkers.Inc()
		defer m.ActiveWorkers.Dec()
	}
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.pan.mu.Lock()
			if !t.pan.set {
				t.pan.val, t.pan.set = r, true
			}
			t.pan.mu.Unlock()
			// Poison the counter so sibling workers stop claiming
			// chunks for a result that will be discarded.
			t.next.Store(int64(t.nChunks))
		}
	}()
	for {
		i := int(t.next.Add(1)) - 1
		if i >= t.nChunks {
			return
		}
		lo := i * chunkRows
		hi := lo + chunkRows
		if hi > t.rows {
			hi = t.rows
		}
		t.fn(t.worker, lo, hi)
		if m != nil {
			m.ChunksProcessed.Inc()
		}
	}
}

// ensureWorkers starts permanent pool goroutines up to n (beyond those
// already running).
func ensureWorkers(n int) chan scanTask {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if pool.tasks == nil {
		// Unbuffered on purpose: a try-send then succeeds only when a
		// worker is PARKED on receive, i.e. genuinely idle. A buffer
		// would accept helper tasks while every worker is busy with
		// another scan, and the submitter's wg.Wait would stall on
		// those queued-but-unstarted helpers until the other scan
		// drains — coupling one query's latency to unrelated queries
		// for zero work.
		pool.tasks = make(chan scanTask)
	}
	for pool.started < n {
		go func(ch chan scanTask) {
			for t := range ch {
				t.run()
			}
		}(pool.tasks)
		pool.started++
	}
	return pool.tasks
}

// ParallelRows runs fn over the row range [0, rows) in chunks of
// chunkRows rows, using up to ScanParallelism(rows) goroutines. fn is
// called with disjoint, chunk-aligned [lo, hi) windows; worker is the
// calling slot in [0, ScanParallelism(rows)) and is stable within one
// slot's calls, so fn may keep per-worker scratch indexed by it (each
// slot is owned by exactly one goroutine for the duration of the call).
// Chunks are claimed dynamically (work stealing), so fn must not
// depend on which slot processes which chunk — only on the window it
// is given. When the table is small or SetScanWorkers(1) is in effect,
// fn runs once, inline, as fn(0, 0, rows): the serial path IS the
// parallel path with one worker, which is what makes the differential
// guarantee testable.
//
// fn must be a pure function of its window (plus worker-slot scratch):
// it must not take locks that a concurrent scan could also want, and
// writes must stay within its window. A panic in any worker is
// re-raised on the calling goroutine after all workers have stopped.
func ParallelRows(rows int, fn func(worker, lo, hi int)) {
	nw := ScanParallelism(rows)
	if nw <= 1 {
		if rows > 0 {
			if m := scanMetrics.Load(); m != nil {
				m.ActiveWorkers.Inc()
				defer m.ActiveWorkers.Dec()
				fn(0, 0, rows)
				m.ChunksProcessed.Inc()
			} else {
				fn(0, 0, rows)
			}
		}
		return
	}
	tasks := ensureWorkers(nw - 1)
	nChunks := (rows + chunkRows - 1) / chunkRows
	var next atomic.Int64
	var wg sync.WaitGroup
	pan := &panicBox{}
	t := scanTask{next: &next, nChunks: nChunks, rows: rows, fn: fn, wg: &wg, pan: pan}
	for w := 1; w < nw; w++ {
		t.worker = w
		wg.Add(1)
		select {
		case tasks <- t:
		default:
			// No worker is parked on the (unbuffered) channel: the pool
			// is saturated by other scans. Proceed with fewer helpers
			// rather than queueing behind them — the caller's own loop
			// below guarantees completion regardless.
			wg.Done()
			if m := scanMetrics.Load(); m != nil {
				m.Degraded.Inc()
			}
		}
	}
	t.worker = 0
	wg.Add(1)
	t.run() // the caller participates; also recovers its own panics
	wg.Wait()
	if pan.set {
		panic(pan.val)
	}
}
