package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV loader never panics on arbitrary input and
// that whatever it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("Name:string,Age:int\nalice,34\n")
	f.Add("A:int\n1\n2\n3\n")
	f.Add("X:bool,Y:float\ntrue,2.5\n")
	f.Add("")
	f.Add("A:int\nnot-a-number\n")
	f.Add("::::\n,,,\n")
	f.Add("A\n\"quoted, field\"\n")
	f.Fuzz(func(t *testing.T, input string) {
		tb, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Single-column records holding the empty string serialise to a
		// blank line that CSV readers skip (documented WriteCSV caveat);
		// exclude them from the round-trip property.
		for _, r := range tb.Records() {
			if tb.Schema().Len() == 1 && r.At(0).AsString() == "" {
				return
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			t.Fatalf("accepted table failed to serialise: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Len() != tb.Len() {
			t.Fatalf("round trip changed record count: %d vs %d", again.Len(), tb.Len())
		}
	})
}

// --- Differential testing: columnar vs row-oriented reference. ---
//
// The columnar engine (vectorized Select/Filter/Count/GroupCount/Split)
// must agree EXACTLY with evaluating the same predicate record-by-record,
// on arbitrary tables — including mixed-kind values stored through the
// row API and strings containing the key separator.

// randomValue draws from small pools so collisions (and thus interesting
// group/filter structure) are common. Includes cross-kind temptations:
// numeric strings, \x1f separators, negative zero.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Int(int64(rng.Intn(7) - 3))
	case 1:
		f := []float64{-1.5, 0, math_NegZero, 0.5, 2, 10, math.NaN()}[rng.Intn(7)]
		return Float(f)
	case 2:
		return Str([]string{"", "a", "b", "2", "10", "a\x1fb", `x\`, "true"}[rng.Intn(8)])
	default:
		return Bool(rng.Intn(2) == 0)
	}
}

var math_NegZero = func() float64 { z := 0.0; return -z }()

func randomTypedValue(rng *rand.Rand, k Kind) Value {
	for {
		v := randomValue(rng)
		if v.Kind() == k {
			return v
		}
	}
}

// randomTable builds a table over a 4-kind schema. With probability ~1/8
// a cell stores a value of the WRONG kind (legal under the row API),
// exercising the exception path and the vectorized fallback.
func randomTable(rng *rand.Rand, rows int) *Table {
	s := NewSchema(
		Field{"I", KindInt},
		Field{"F", KindFloat},
		Field{"S", KindString},
		Field{"B", KindBool},
	)
	tb := NewTable(s)
	kinds := []Kind{KindInt, KindFloat, KindString, KindBool}
	for r := 0; r < rows; r++ {
		vals := make([]Value, 4)
		for c, k := range kinds {
			if rng.Intn(8) == 0 {
				vals[c] = randomValue(rng) // any kind, maybe mismatched
			} else {
				vals[c] = randomTypedValue(rng, k)
			}
		}
		tb.Append(NewRecord(s, vals...))
	}
	return tb
}

// randomPredicate builds a depth-bounded predicate tree over the schema.
func randomPredicate(rng *rand.Rand, depth int) Predicate {
	attrs := []string{"I", "F", "S", "B"}
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			attr := attrs[rng.Intn(len(attrs))]
			op := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
			return Cmp(attr, op, randomValue(rng)) // value kind may mismatch the column
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Not(randomPredicate(rng, depth-1))
	case 1:
		n := rng.Intn(3)
		ps := make([]Predicate, n)
		for i := range ps {
			ps[i] = randomPredicate(rng, depth-1)
		}
		return And(ps...)
	default:
		n := rng.Intn(3)
		ps := make([]Predicate, n)
		for i := range ps {
			ps[i] = randomPredicate(rng, depth-1)
		}
		return Or(ps...)
	}
}

// orderedKeys renders the table's records as keys in storage order.
func orderedKeys(t *Table) []string {
	out := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		out[i] = t.Record(i).Key()
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkColumnarAgreement runs one differential round: vectorized
// operations vs the record-at-a-time reference.
func checkColumnarAgreement(t *testing.T, tb *Table, pred Predicate) {
	t.Helper()

	// Reference: record-by-record evaluation through the row API.
	var refKept []string
	refCount := 0
	for _, r := range tb.Records() {
		if pred.Eval(r) {
			refKept = append(refKept, r.Key())
			refCount++
		}
	}
	if got := tb.Count(pred); got != refCount {
		t.Fatalf("Count(%s) = %d, reference = %d", pred, got, refCount)
	}
	if got := orderedKeys(tb.Filter(pred)); !sameKeys(got, refKept) {
		t.Fatalf("Filter(%s) disagrees with reference:\n got %q\nwant %q", pred, got, refKept)
	}
	bits := tb.Select(pred)
	for i := 0; i < tb.Len(); i++ {
		if bits.Get(i) != pred.Eval(tb.Record(i)) {
			t.Fatalf("Select(%s) bit %d disagrees with Eval", pred, i)
		}
	}

	// GroupCount vs reference map.
	for _, attr := range tb.Schema().Names() {
		ci := tb.Schema().ColumnIndex(attr)
		ref := make(map[string]int)
		for _, r := range tb.Records() {
			ref[r.At(ci).AsString()]++
		}
		got := tb.GroupCount(attr)
		if len(got) != len(ref) {
			t.Fatalf("GroupCount(%s) has %d groups, reference %d", attr, len(got), len(ref))
		}
		for k, n := range ref {
			if got[k] != n {
				t.Fatalf("GroupCount(%s)[%q] = %d, reference %d", attr, k, got[k], n)
			}
		}
	}

	// Split vs reference partition (order-preserving).
	pol := NewPolicy("fuzz", pred)
	var refSens, refNS []string
	for _, r := range tb.Records() {
		if pol.Sensitive(r) {
			refSens = append(refSens, r.Key())
		} else {
			refNS = append(refNS, r.Key())
		}
	}
	sens, ns := tb.Split(pol)
	if !sameKeys(orderedKeys(sens), refSens) || !sameKeys(orderedKeys(ns), refNS) {
		t.Fatalf("Split(%s) disagrees with reference partition", pred)
	}
}

// FuzzColumnarDifferential drives the differential property from
// arbitrary seeds; the seed corpus doubles as a deterministic regression
// suite under plain `go test`.
func FuzzColumnarDifferential(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed, uint8(40))
	}
	f.Fuzz(func(t *testing.T, seed int64, rows uint8) {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, int(rows)%200)
		pred := randomPredicate(rng, 3)
		checkColumnarAgreement(t, tb, pred)

		// Same property on a view (filtered subset) of the table.
		sub := tb.Filter(randomPredicate(rng, 2))
		checkColumnarAgreement(t, sub, randomPredicate(rng, 3))
	})
}

// TestColumnarDifferentialSweep runs many seeded rounds so CI exercises
// the property broadly even without fuzzing.
func TestColumnarDifferentialSweep(t *testing.T) {
	for seed := int64(100); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, rng.Intn(120))
		checkColumnarAgreement(t, tb, randomPredicate(rng, 4))
		sub := tb.Filter(randomPredicate(rng, 2))
		checkColumnarAgreement(t, sub, randomPredicate(rng, 4))
	}
}

// FuzzPredicateEval checks comparison predicates never panic over
// arbitrary typed values.
func FuzzPredicateEval(f *testing.F) {
	f.Add(int64(5), "x", true, 2.5)
	f.Fuzz(func(t *testing.T, n int64, s string, b bool, fl float64) {
		schema := NewSchema(
			Field{Name: "I", Kind: KindInt},
			Field{Name: "S", Kind: KindString},
			Field{Name: "B", Kind: KindBool},
			Field{Name: "F", Kind: KindFloat},
		)
		r := NewRecord(schema, Int(n), Str(s), Bool(b), Float(fl))
		for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			Cmp("I", op, Int(n)).Eval(r)
			Cmp("S", op, Str(s)).Eval(r)
			Cmp("B", op, Bool(b)).Eval(r)
			Cmp("F", op, Float(fl)).Eval(r)
			Cmp("I", op, Str(s)).Eval(r) // cross-kind comparisons too
		}
	})
}
