package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV loader never panics on arbitrary input and
// that whatever it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("Name:string,Age:int\nalice,34\n")
	f.Add("A:int\n1\n2\n3\n")
	f.Add("X:bool,Y:float\ntrue,2.5\n")
	f.Add("")
	f.Add("A:int\nnot-a-number\n")
	f.Add("::::\n,,,\n")
	f.Add("A\n\"quoted, field\"\n")
	f.Fuzz(func(t *testing.T, input string) {
		tb, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Single-column records holding the empty string serialise to a
		// blank line that CSV readers skip (documented WriteCSV caveat);
		// exclude them from the round-trip property.
		for _, r := range tb.Records() {
			if tb.Schema().Len() == 1 && r.At(0).AsString() == "" {
				return
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			t.Fatalf("accepted table failed to serialise: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Len() != tb.Len() {
			t.Fatalf("round trip changed record count: %d vs %d", again.Len(), tb.Len())
		}
	})
}

// FuzzPredicateEval checks comparison predicates never panic over
// arbitrary typed values.
func FuzzPredicateEval(f *testing.F) {
	f.Add(int64(5), "x", true, 2.5)
	f.Fuzz(func(t *testing.T, n int64, s string, b bool, fl float64) {
		schema := NewSchema(
			Field{Name: "I", Kind: KindInt},
			Field{Name: "S", Kind: KindString},
			Field{Name: "B", Kind: KindBool},
			Field{Name: "F", Kind: KindFloat},
		)
		r := NewRecord(schema, Int(n), Str(s), Bool(b), Float(fl))
		for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			Cmp("I", op, Int(n)).Eval(r)
			Cmp("S", op, Str(s)).Eval(r)
			Cmp("B", op, Bool(b)).Eval(r)
			Cmp("F", op, Float(fl)).Eval(r)
			Cmp("I", op, Str(s)).Eval(r) // cross-kind comparisons too
		}
	})
}
