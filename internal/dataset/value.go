// Package dataset provides the relational substrate the OSDP mechanisms
// operate on: typed records, schemas, an in-memory table with filtering and
// grouping, and a small predicate DSL used to express privacy policies such
// as "records of minors are sensitive" or "opted-out users are sensitive".
package dataset

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute types a schema can declare.
type Kind int

const (
	// KindInt is a 64-bit signed integer attribute.
	KindInt Kind = iota
	// KindFloat is a 64-bit floating point attribute.
	KindFloat
	// KindString is a free-text or categorical attribute.
	KindString
	// KindBool is a boolean attribute (e.g. an opt-in flag).
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is the int 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int wraps an int64 as a Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64 as a Value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a string as a Value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool wraps a bool as a Value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the value as an int64. Floats are truncated; bools map to
// 0/1; strings are parsed, with unparseable strings yielding 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		n, _ := strconv.ParseInt(v.s, 10, 64)
		return n
	}
	return 0
}

// AsFloat returns the value as a float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		f, _ := strconv.ParseFloat(v.s, 64)
		return f
	}
	return 0
}

// AsString returns a textual rendering of the value.
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return ""
}

// AsBool returns the value as a bool: non-zero numbers and the strings
// "true"/"1" are true.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s == "true" || v.s == "1"
	}
	return false
}

// Equal reports whether two values are equal. Numeric kinds compare by
// numeric value; mixed numeric/non-numeric comparisons are false.
func (v Value) Equal(o Value) bool {
	if v.isNumeric() && o.isNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two values: -1, 0, or +1. Numeric kinds compare
// numerically, strings lexically, bools false<true. Mixed incomparable
// kinds compare by kind order for a stable (if arbitrary) total order.
func (v Value) Compare(o Value) int {
	if v.isNumeric() && o.isNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		}
		return 1
	}
	return 0
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }
