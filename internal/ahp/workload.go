package ahp

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Fit adapts AHP to core.WorkloadEstimator: one ε-DP release whose
// value-based clusters smooth noise across bins with similar counts.
// 2-D domains are fitted over the flattened row-major vector (AHP's
// clusters are arbitrary bin sets, so flattening loses nothing).
// Returns errors instead of panicking: the serving layer calls it
// after the budget is charged.
func (a *Algorithm) Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("ahp: eps must be positive, got %g", eps)
	}
	if a.ClusterBudgetRatio <= 0 || a.ClusterBudgetRatio >= 1 {
		return nil, fmt.Errorf("ahp: cluster budget ratio %g must lie in (0, 1)", a.ClusterBudgetRatio)
	}
	est, _ := a.Estimate(x, eps, src)
	return est, nil
}
