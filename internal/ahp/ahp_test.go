package ahp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func checkClustersPartition(t *testing.T, clusters [][]int, n int) {
	t.Helper()
	seen := make([]int, n)
	for _, c := range clusters {
		if len(c) == 0 {
			t.Fatal("empty cluster")
		}
		for _, i := range c {
			if i < 0 || i >= n {
				t.Fatalf("bin %d out of range", i)
			}
			seen[i]++
		}
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("bin %d in %d clusters", i, s)
		}
	}
}

func TestClustersPartitionDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 64, 500} {
		x := histogram.New(n)
		for i := 0; i < n; i++ {
			x.SetCount(i, float64(rng.Intn(1000)))
		}
		_, clusters := New().Estimate(x, 1.0, noise.NewSource(int64(n)))
		checkClustersPartition(t, clusters, n)
	}
}

func TestTwoValueHistogramFormsTwoMainClusters(t *testing.T) {
	// Half the bins at 0, half at 5000: clustering should find ~2 groups.
	n := 200
	x := histogram.New(n)
	for i := 0; i < n/2; i++ {
		x.SetCount(i, 5000)
	}
	_, clusters := New().Estimate(x, 1.0, noise.NewSource(2))
	if len(clusters) > 6 {
		t.Errorf("two-value histogram produced %d clusters, want ~2", len(clusters))
	}
}

func TestEstimateNonNegative(t *testing.T) {
	x := histogram.FromCounts([]float64{0, 10, 0, 500, 500})
	est, _ := New().Estimate(x, 0.5, noise.NewSource(3))
	for i := 0; i < est.Bins(); i++ {
		if est.Count(i) < 0 {
			t.Fatalf("negative estimate %v", est.Count(i))
		}
	}
}

// AHP clusters by value, so it beats plain Laplace on a histogram whose
// equal values are scattered (non-contiguous) — the case DAWA's
// contiguous intervals cannot merge.
func TestAHPBeatsLaplaceOnScatteredTwoValueData(t *testing.T) {
	n := 512
	x := histogram.New(n)
	rng := rand.New(rand.NewSource(4))
	for _, i := range rng.Perm(n)[:n/2] {
		x.SetCount(i, 8000)
	}
	src := noise.NewSource(5)
	const eps = 0.1
	const trials = 20
	var ahpErr, lapErr float64
	for t := 0; t < trials; t++ {
		est, _ := New().Estimate(x, eps, src)
		ahpErr += metrics.L1(x, est)
		lapErr += metrics.L1(x, mechanism.LaplaceHistogram(x, eps, src))
	}
	if ahpErr >= lapErr {
		t.Errorf("AHP L1 %v not better than Laplace %v on scattered two-value data",
			ahpErr/trials, lapErr/trials)
	}
}

func TestEstimatePanics(t *testing.T) {
	x := histogram.New(4)
	for _, f := range []func(){
		func() { New().Estimate(x, 0, noise.NewSource(1)) },
		func() { (&Algorithm{ClusterBudgetRatio: 1.2}).Estimate(x, 1, noise.NewSource(1)) },
		func() { AHPz(histogram.New(2), histogram.New(3), 1, 0.1, noise.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAHPzZeroesEmptyBins(t *testing.T) {
	n := 64
	x := histogram.New(n)
	xns := histogram.New(n)
	for i := 0; i < n/4; i++ {
		x.SetCount(i, 400)
		xns.SetCount(i, 350)
	}
	src := noise.NewSource(6)
	out := AHPz(x, xns, 1.0, 0.1, src)
	for i := n / 4; i < n; i++ {
		if out.Count(i) != 0 {
			t.Fatalf("empty bin %d got %v", i, out.Count(i))
		}
	}
}

// AHPz should improve on AHP for sparse histograms at small ε, mirroring
// the DAWAz result — evidence the recipe generalises across algorithms.
func TestAHPzBeatsAHPOnSparseData(t *testing.T) {
	n := 512
	x := histogram.New(n)
	xns := histogram.New(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		bin := rng.Intn(n)
		c := float64(rng.Intn(400) + 100)
		x.SetCount(bin, c)
		xns.SetCount(bin, c*0.9)
	}
	src := noise.NewSource(8)
	const eps = 0.1
	const trials = 15
	var withZ, plain float64
	for t := 0; t < trials; t++ {
		withZ += metrics.MRE(x, AHPz(x, xns, eps, 0.1, src), 1)
		est, _ := New().Estimate(x, eps, src)
		plain += metrics.MRE(x, est, 1)
	}
	if withZ >= plain {
		t.Errorf("AHPz MRE %v not better than AHP %v on sparse data", withZ/trials, plain/trials)
	}
}

// Property: clusters always partition the domain exactly, for any data.
func TestClusterPartitionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(sizeRaw, epsRaw uint8) bool {
		n := int(sizeRaw)%150 + 1
		eps := float64(epsRaw%30)/10 + 0.1
		x := histogram.New(n)
		for i := 0; i < n; i++ {
			x.SetCount(i, float64(rng.Intn(5000)))
		}
		_, clusters := New().Estimate(x, eps, noise.NewSource(int64(sizeRaw)+13))
		seen := make([]int, n)
		for _, c := range clusters {
			for _, i := range c {
				if i < 0 || i >= n {
					return false
				}
				seen[i]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
