// Package ahp implements AHP (Zhang et al., "Towards Accurate Histogram
// Publication under Differential Privacy"), the second of the two-phase DP
// histogram algorithms the paper lists as upgradable by the §5.2 recipe
// (alongside DAWA, AGrid, and PrivBayes). Implementing it demonstrates
// that the recipe is generic: AHPz below is produced by the same
// core.Recipe plumbing as DAWAz.
//
// AHP's two phases:
//
//  1. Clustering (budget ε₁): release a noisy histogram x̃ = x + Lap(1/ε₁)ⁿ
//     (AHP uses add/remove sensitivity 1; we keep the bounded-model 2),
//     threshold small values to zero, and greedily cluster bins with
//     similar noisy counts. Clusters are value-based, not contiguous —
//     the structural difference from DAWA.
//  2. Estimation (budget ε₂): release each cluster's total with Laplace
//     noise and assign every member bin the cluster mean.
//
// Because clusters are arbitrary bin sets, AHP does not fit
// core.PartitionedEstimator's contiguous-interval model directly; the
// recipe integration instead zeroes detected bins and rescales within each
// cluster, which Clusterer exposes.
package ahp

import (
	"math"
	"sort"

	"osdp/internal/core"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Algorithm is a configured AHP instance.
type Algorithm struct {
	// ClusterBudgetRatio is the share of ε spent on phase 1.
	ClusterBudgetRatio float64
	// MergeFactor bounds within-cluster spread: a bin joins the current
	// cluster while its noisy count is within MergeFactor times the
	// phase-1 noise scale of the cluster's running mean.
	MergeFactor float64
}

// New returns an AHP instance with the defaults used in our experiments.
func New() *Algorithm {
	return &Algorithm{ClusterBudgetRatio: 0.5, MergeFactor: 2.0}
}

// Name identifies the algorithm in reports.
func (a *Algorithm) Name() string { return "AHP" }

// Estimate releases an eps-DP histogram estimate. The returned clusters
// (bin index sets) expose the learned model for recipe post-processing.
func (a *Algorithm) Estimate(x *histogram.Histogram, eps float64, src noise.Source) (*histogram.Histogram, [][]int) {
	if eps <= 0 {
		panic("ahp: eps must be positive")
	}
	if a.ClusterBudgetRatio <= 0 || a.ClusterBudgetRatio >= 1 {
		panic("ahp: cluster budget ratio must lie in (0, 1)")
	}
	eps1 := eps * a.ClusterBudgetRatio
	eps2 := eps - eps1
	clusters := a.cluster(x, eps1, src)
	est := estimate(x, clusters, eps2, src)
	return est, clusters
}

// cluster implements phase 1: noisy histogram, threshold, sort, greedy
// value clustering. Thresholding at the noise scale prunes bins that are
// indistinguishable from empty; they form a single "zero cluster".
func (a *Algorithm) cluster(x *histogram.Histogram, eps1 float64, src noise.Source) [][]int {
	n := x.Bins()
	b := 2.0 / eps1
	type binVal struct {
		idx int
		v   float64
	}
	vals := make([]binVal, n)
	for i := 0; i < n; i++ {
		v := x.Count(i) + noise.Laplace(src, b)
		if v < b { // threshold: below one noise scale reads as empty
			v = 0
		}
		vals[i] = binVal{i, v}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

	var clusters [][]int
	var cur []int
	var curSum float64
	flush := func() {
		if len(cur) > 0 {
			clusters = append(clusters, cur)
			cur, curSum = nil, 0
		}
	}
	for _, bv := range vals {
		if len(cur) == 0 {
			cur, curSum = []int{bv.idx}, bv.v
			continue
		}
		mean := curSum / float64(len(cur))
		if math.Abs(bv.v-mean) <= a.MergeFactor*b {
			cur = append(cur, bv.idx)
			curSum += bv.v
			continue
		}
		flush()
		cur, curSum = []int{bv.idx}, bv.v
	}
	flush()
	return clusters
}

// estimate implements phase 2: noisy cluster totals, uniform within the
// cluster. Cluster totals over disjoint bin sets have sensitivity 2.
func estimate(x *histogram.Histogram, clusters [][]int, eps2 float64, src noise.Source) *histogram.Histogram {
	out := histogram.New(x.Bins())
	scale := 2.0 / eps2
	for _, c := range clusters {
		var total float64
		for _, i := range c {
			total += x.Count(i)
		}
		total += noise.Laplace(src, scale)
		if total < 0 {
			total = 0
		}
		mean := total / float64(len(c))
		for _, i := range c {
			out.SetCount(i, mean)
		}
	}
	return out
}

// AHPz applies the §5.2 recipe to AHP: an OSDP zero-set is detected from
// the non-sensitive histogram with ρ·ε, AHP runs with (1−ρ)·ε, detected
// bins are zeroed, and each cluster's remaining mass is rescaled to
// preserve its estimated total — the cluster-shaped analogue of
// core.ApplyZeroSet. The result satisfies (P, ε)-OSDP by sequential
// composition plus post-processing.
func AHPz(x, xns *histogram.Histogram, eps, rho float64, src noise.Source) *histogram.Histogram {
	if x.Bins() != xns.Bins() {
		panic("ahp: x and xns disagree on domain size")
	}
	epsZero, epsDP := core.SplitBudget(eps, rho)
	zeros := core.RRZeroDetector(xns, epsZero, src)
	est, clusters := New().Estimate(x, epsDP, src)
	return core.ApplyZeroSetGroups(est, clusters, zeros)
}
