package quantile

import (
	"math"
	"math/rand"
	"testing"

	"osdp/internal/noise"
)

func uniformValues(n int, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

func TestExactNearestRank(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Exact(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Exact mutated input")
	}
}

func TestSampleErrors(t *testing.T) {
	if _, err := Sample(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Sample([]float64{1}, 1.5); err == nil {
		t.Error("bad q accepted")
	}
}

func TestExponentialErrors(t *testing.T) {
	xs := []float64{1, 2}
	src := noise.NewSource(1)
	if _, err := Exponential(xs, -0.1, 0, 10, 1, src); err == nil {
		t.Error("bad q accepted")
	}
	if _, err := Exponential(xs, 0.5, 10, 0, 1, src); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Exponential(xs, 0.5, 0, 10, 0, src); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestExponentialWithinRange(t *testing.T) {
	xs := uniformValues(500, 10, 20, 1)
	src := noise.NewSource(2)
	for i := 0; i < 200; i++ {
		v, err := Exponential(xs, 0.5, 0, 100, 1.0, src)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 100 {
			t.Fatalf("release %v outside public range", v)
		}
	}
}

func TestExponentialAccurateAtHighEps(t *testing.T) {
	xs := uniformValues(2000, 0, 100, 3)
	src := noise.NewSource(4)
	truth, _ := Exact(xs, 0.5)
	var errSum float64
	const trials = 100
	for i := 0; i < trials; i++ {
		v, err := Exponential(xs, 0.5, 0, 100, 5.0, src)
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(v - truth)
	}
	if avg := errSum / trials; avg > 2 {
		t.Errorf("median error %v at ε=5, want small", avg)
	}
}

func TestExponentialDegradesAtLowEps(t *testing.T) {
	xs := uniformValues(2000, 0, 100, 5)
	src := noise.NewSource(6)
	truth, _ := Exact(xs, 0.5)
	errAt := func(eps float64) float64 {
		var s float64
		const trials = 150
		for i := 0; i < trials; i++ {
			v, _ := Exponential(xs, 0.5, 0, 100, eps, src)
			s += math.Abs(v - truth)
		}
		return s / trials
	}
	if lo, hi := errAt(5), errAt(0.01); hi <= lo {
		t.Errorf("error at ε=0.01 (%v) not above error at ε=5 (%v)", hi, lo)
	}
}

func TestExponentialEmpiricalPrivacy(t *testing.T) {
	// Neighboring datasets differing in one value: output distributions
	// over a coarse event (release above/below 50) differ by ≤ e^ε.
	const eps = 1.0
	const trials = 120000
	src := noise.NewSource(7)
	base := uniformValues(50, 0, 100, 8)
	nb := append([]float64(nil), base...)
	nb[0] = 99 // replace one record

	above := func(xs []float64) float64 {
		count := 0
		for i := 0; i < trials; i++ {
			v, _ := Exponential(xs, 0.5, 0, 100, eps, src)
			if v > 50 {
				count++
			}
		}
		return float64(count) / trials
	}
	p1, p2 := above(base), above(nb)
	ratio := p1 / p2
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > math.Exp(eps)*1.1 {
		t.Errorf("event probability ratio %v exceeds e^ε", ratio)
	}
}

// The §4 story: a quantile computed from an OsdpRR-style true sample
// beats the ε-DP exponential mechanism when the public domain is wide
// relative to where the data concentrates and n is modest — then the
// mechanism's edge gaps carry enormous width and little rank penalty, so
// it frequently releases values wildly outside the data, while the true
// sample is immune to the public bounds. (On dense data with tight public
// bounds the exponential mechanism is excellent; this is the regime
// split, not a uniform win.)
func TestSampleQuantileBeatsDPOnWideDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// 200 salaries concentrated near 5e5, public domain [0, 1e9].
	population := make([]float64, 200)
	for i := range population {
		population[i] = 5e5 + rng.NormFloat64()*1e3
	}
	truth, _ := Exact(population, 0.5)

	const eps = 0.1
	keep := 1 - math.Exp(-eps) // OsdpRR keep rate ≈ 9.5%
	src := noise.NewSource(11)
	var sampleErr, dpErr float64
	const trials = 60
	for i := 0; i < trials; i++ {
		var kept []float64
		for _, v := range population {
			if rng.Float64() < keep {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			kept = append(kept, population[rng.Intn(len(population))])
		}
		sv, err := Sample(kept, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		sampleErr += math.Abs(sv - truth)
		dv, err := Exponential(population, 0.5, 0, 1e9, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		dpErr += math.Abs(dv - truth)
	}
	if sampleErr >= dpErr {
		t.Errorf("sample-quantile error %v not below DP error %v at ε=%v",
			sampleErr/trials, dpErr/trials, eps)
	}
}

// TestExponentialClampsOutliers pins the clamp path: values outside the
// public range [lo, hi] are clamped onto its endpoints before the
// mechanism runs, so (a) the release always lands inside [lo, hi] no
// matter how wild the data is, and (b) pre-clamping the input yourself
// changes nothing — the same seeded source yields the identical
// release.
func TestExponentialClampsOutliers(t *testing.T) {
	raw := []float64{-1e12, -5, 3, 4, 4.5, 7, 42, 1e12, math.Inf(-1), math.Inf(1)}
	const lo, hi = 0.0, 10.0
	clamped := make([]float64, len(raw))
	for i, v := range raw {
		clamped[i] = math.Max(lo, math.Min(hi, v))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for seed := int64(1); seed <= 20; seed++ {
			got, err := Exponential(raw, q, lo, hi, 1.0, noise.NewSource(seed))
			if err != nil {
				t.Fatal(err)
			}
			if got < lo || got > hi {
				t.Fatalf("q=%g seed=%d: release %g escaped [%g, %g]", q, seed, got, lo, hi)
			}
			pre, err := Exponential(clamped, q, lo, hi, 1.0, noise.NewSource(seed))
			if err != nil {
				t.Fatal(err)
			}
			if got != pre {
				t.Fatalf("q=%g seed=%d: raw input released %g but pre-clamped input %g; clamp must be internal and exact", q, seed, got, pre)
			}
		}
	}
}

// TestExponentialAllValuesOnOneBound pins the degenerate clamp: when
// every value clamps onto the same endpoint, all inter-point gaps are
// zero-width, so the only selectable gap is the remainder of the
// public range — the mechanism must still answer (inside [lo, hi])
// rather than error, for every seed.
func TestExponentialAllValuesOnOneBound(t *testing.T) {
	all := []float64{-100, -50, -1} // all clamp to lo = 0
	for seed := int64(1); seed <= 50; seed++ {
		got, err := Exponential(all, 0.5, 0, 10, 50, noise.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > 10 {
			t.Fatalf("seed %d: release %g escaped the public range", seed, got)
		}
	}
}
