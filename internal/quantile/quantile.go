// Package quantile implements private quantile release, a task that
// showcases the paper's §4 argument for true-sample mechanisms: a quantile
// of the OsdpRR release is just the sample quantile of true values —
// order statistics survive sampling — while the DP route needs the
// exponential mechanism over the data's rank utility and pays for it at
// small ε. Both estimators are provided, plus the smoothed comparison the
// experiments use.
package quantile

import (
	"fmt"
	"math"
	"sort"

	"osdp/internal/noise"
)

// Exponential releases an ε-DP estimate of the q-quantile of values within
// the publicly known range [lo, hi], via the standard exponential
// mechanism over inter-point gaps (Smith 2011): gap i (between consecutive
// sorted values) is drawn with probability proportional to
// width(i)·exp(−ε·|i − qn|/2), and the release is uniform within the gap.
// Replacing one record shifts every rank by at most 1, so the rank utility
// has sensitivity 1 and the mechanism is ε-DP (hence (P, ε)-OSDP for any
// policy by Lemma 3.1).
func Exponential(values []float64, q, lo, hi, eps float64, src noise.Source) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v outside [0, 1]", q)
	}
	if hi <= lo {
		return 0, fmt.Errorf("quantile: empty range [%v, %v]", lo, hi)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("quantile: eps must be positive")
	}
	// Clamp values into the public range; the clamp is data-independent.
	xs := make([]float64, 0, len(values)+2)
	for _, v := range values {
		xs = append(xs, math.Max(lo, math.Min(hi, v)))
	}
	sort.Float64s(xs)
	// Gap i spans [edge_i, edge_{i+1}] with rank i; edges include the
	// public bounds.
	edges := make([]float64, 0, len(xs)+2)
	edges = append(edges, lo)
	edges = append(edges, xs...)
	edges = append(edges, hi)

	target := q * float64(len(xs))
	// Log-sum-exp weighting for numerical stability.
	n := len(edges) - 1
	logW := make([]float64, n)
	maxLog := math.Inf(-1)
	for i := 0; i < n; i++ {
		width := edges[i+1] - edges[i]
		if width <= 0 {
			logW[i] = math.Inf(-1)
			continue
		}
		logW[i] = math.Log(width) - eps*math.Abs(float64(i)-target)/2
		if logW[i] > maxLog {
			maxLog = logW[i]
		}
	}
	if math.IsInf(maxLog, -1) {
		return lo, nil // all gaps empty: every value equals lo == hi clamp
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Exp(logW[i] - maxLog)
	}
	u := src.Float64() * sum
	pick := n - 1
	for i := 0; i < n; i++ {
		u -= math.Exp(logW[i] - maxLog)
		if u <= 0 {
			pick = i
			break
		}
	}
	return edges[pick] + src.Float64()*(edges[pick+1]-edges[pick]), nil
}

// Sample returns the q-quantile of a released true sample (such as an
// OsdpRR release) using the nearest-rank convention. Because OsdpRR keeps
// each non-sensitive record independently, the sample quantile converges
// to the non-sensitive population quantile — no noise is added, so this is
// pure post-processing of the release.
func Sample(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("quantile: empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v outside [0, 1]", q)
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	rank := int(math.Ceil(q * float64(len(xs))))
	if rank < 1 {
		rank = 1
	}
	return xs[rank-1], nil
}

// Exact computes the non-private q-quantile, used as ground truth in
// tests and experiments.
func Exact(values []float64, q float64) (float64, error) { return Sample(values, q) }
