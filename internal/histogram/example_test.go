package histogram_test

import (
	"fmt"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// A histogram query is a GROUP BY with explicit domain, so empty groups
// appear as zero bins — the semantics OSDP's one-sided mechanisms rely on.
func ExampleQuery() {
	schema := dataset.NewSchema(
		dataset.Field{Name: "City", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	db := dataset.NewTable(schema)
	db.AppendValues(dataset.Str("oslo"), dataset.Int(30))
	db.AppendValues(dataset.Str("oslo"), dataset.Int(12))
	db.AppendValues(dataset.Str("rome"), dataset.Int(55))

	cities := histogram.NewCategoricalDomain("City", []string{"bari", "oslo", "rome"})
	q := histogram.NewQuery(nil, cities)
	h := q.Eval(db)
	for i := 0; i < h.Bins(); i++ {
		fmt.Printf("%s %v\n", h.Label(i), h.Count(i))
	}
	// Output:
	// bari 0
	// oslo 2
	// rome 1
}

// EvalSplit produces the (x, xns) pair every OSDP mechanism consumes.
func ExampleQuery_EvalSplit() {
	schema := dataset.NewSchema(
		dataset.Field{Name: "City", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	db := dataset.NewTable(schema)
	db.AppendValues(dataset.Str("oslo"), dataset.Int(30))
	db.AppendValues(dataset.Str("oslo"), dataset.Int(12)) // minor: sensitive
	db.AppendValues(dataset.Str("rome"), dataset.Int(55))

	minors := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	q := histogram.NewQuery(nil, histogram.NewCategoricalDomain("City", []string{"oslo", "rome"}))
	x, xns := q.EvalSplit(db, minors)
	fmt.Println(x.Counts(), xns.Counts())
	// Output:
	// [2 1] [1 1]
}
