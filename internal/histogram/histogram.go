// Package histogram implements the histogram-query substrate of the paper:
// counts over a non-overlapping partitioning of a dataset ("SELECT group,
// COUNT(*) FROM table WHERE cond GROUP BY keys", §5), including bins with
// zero counts. It provides dense 1-D and 2-D histograms over declared
// domains, construction from dataset tables, policy-based splitting into
// sensitive/non-sensitive components, range queries, and the shape
// statistics (scale, sparsity) used by the DPBench evaluation (Table 2).
package histogram

import (
	"fmt"
	"math"
	"sort"

	"osdp/internal/dataset"
)

// Histogram is a dense vector of non-negative counts, one per domain bin.
// Counts are float64 because private estimates are real-valued; true
// histograms hold integers.
type Histogram struct {
	counts []float64
	labels []string // optional, len 0 or len(counts)
}

// New returns an all-zero histogram with d bins.
func New(d int) *Histogram {
	if d <= 0 {
		panic("histogram: domain size must be positive")
	}
	return &Histogram{counts: make([]float64, d)}
}

// FromCounts wraps a count vector (copied) as a histogram.
func FromCounts(counts []float64) *Histogram {
	h := New(len(counts))
	copy(h.counts, counts)
	return h
}

// FromInts wraps an integer count vector as a histogram.
func FromInts(counts []int) *Histogram {
	h := New(len(counts))
	for i, c := range counts {
		h.counts[i] = float64(c)
	}
	return h
}

// Bins returns the number of bins d.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// SetCount sets the count of bin i.
func (h *Histogram) SetCount(i int, v float64) { h.counts[i] = v }

// Add increments bin i by delta.
func (h *Histogram) Add(i int, delta float64) { h.counts[i] += delta }

// Counts returns the underlying count slice. Callers must treat it as
// read-only; mechanisms that perturb counts work on Clone()s.
func (h *Histogram) Counts() []float64 { return h.counts }

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{counts: make([]float64, len(h.counts))}
	copy(out.counts, h.counts)
	if h.labels != nil {
		out.labels = append([]string(nil), h.labels...)
	}
	return out
}

// SetLabels attaches bin labels (for reporting). len(labels) must equal
// Bins().
func (h *Histogram) SetLabels(labels []string) {
	if len(labels) != len(h.counts) {
		panic("histogram: label arity mismatch")
	}
	h.labels = append([]string(nil), labels...)
}

// Label returns the label of bin i, or its index rendered as a string.
func (h *Histogram) Label(i int) string {
	if h.labels != nil {
		return h.labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// Scale returns the L1 mass ‖x‖₁ (total record count for true histograms).
func (h *Histogram) Scale() float64 {
	var s float64
	for _, c := range h.counts {
		s += c
	}
	return s
}

// Sparsity returns the fraction of bins with zero count, the statistic
// DPBench reports per dataset (Table 2).
func (h *Histogram) Sparsity() float64 {
	zero := 0
	for _, c := range h.counts {
		if c == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(h.counts))
}

// ZeroBins returns the indices of zero-count bins, the set Z consumed by
// the DAWAz recipe (Algorithm 3).
func (h *Histogram) ZeroBins() []int {
	var z []int
	for i, c := range h.counts {
		if c == 0 {
			z = append(z, i)
		}
	}
	return z
}

// RangeSum returns the sum of counts over bins [lo, hi] inclusive.
func (h *Histogram) RangeSum(lo, hi int) float64 {
	if lo < 0 || hi >= len(h.counts) || lo > hi {
		panic(fmt.Sprintf("histogram: bad range [%d, %d] over %d bins", lo, hi, len(h.counts)))
	}
	var s float64
	for i := lo; i <= hi; i++ {
		s += h.counts[i]
	}
	return s
}

// Sub returns h - o elementwise. Panics on arity mismatch.
func (h *Histogram) Sub(o *Histogram) *Histogram {
	mustSameBins(h, o)
	out := New(len(h.counts))
	for i := range h.counts {
		out.counts[i] = h.counts[i] - o.counts[i]
	}
	return out
}

// AddHist returns h + o elementwise.
func (h *Histogram) AddHist(o *Histogram) *Histogram {
	mustSameBins(h, o)
	out := New(len(h.counts))
	for i := range h.counts {
		out.counts[i] = h.counts[i] + o.counts[i]
	}
	return out
}

// L1Distance returns ‖h − o‖₁.
func (h *Histogram) L1Distance(o *Histogram) float64 {
	mustSameBins(h, o)
	var s float64
	for i := range h.counts {
		s += math.Abs(h.counts[i] - o.counts[i])
	}
	return s
}

// ClampNonNegative sets negative counts to zero in place and returns h.
func (h *Histogram) ClampNonNegative() *Histogram {
	for i, c := range h.counts {
		if c < 0 {
			h.counts[i] = 0
		}
	}
	return h
}

// Dominates reports whether every count in h is >= the matching count in o.
// Used to check the one-sided neighbor property (x'ns >= xns pointwise).
func (h *Histogram) Dominates(o *Histogram) bool {
	mustSameBins(h, o)
	for i := range h.counts {
		if h.counts[i] < o.counts[i] {
			return false
		}
	}
	return true
}

func mustSameBins(a, b *Histogram) {
	if a.Bins() != b.Bins() {
		panic(fmt.Sprintf("histogram: bin mismatch %d vs %d", a.Bins(), b.Bins()))
	}
}

// Domain maps attribute values to dense bin indices. It is how a GROUP BY
// over a categorical or bucketised attribute becomes a vector of counts
// that includes empty groups — the paper's histogram query semantics.
type Domain struct {
	attr   string
	keys   []string
	index  map[string]int
	numLo  float64 // numeric bucketing, used when keys == nil
	numW   float64
	numLen int
}

// NewCategoricalDomain declares a domain as an explicit ordered key list.
func NewCategoricalDomain(attr string, keys []string) *Domain {
	d := &Domain{attr: attr, keys: append([]string(nil), keys...), index: make(map[string]int, len(keys))}
	for i, k := range d.keys {
		if _, dup := d.index[k]; dup {
			panic(fmt.Sprintf("histogram: duplicate domain key %q", k))
		}
		d.index[k] = i
	}
	return d
}

// NewNumericDomain declares equi-width buckets [lo, lo+w), [lo+w, lo+2w), …
// covering n buckets of attribute attr.
func NewNumericDomain(attr string, lo, width float64, n int) *Domain {
	if width <= 0 || n <= 0 {
		panic("histogram: numeric domain needs positive width and size")
	}
	return &Domain{attr: attr, numLo: lo, numW: width, numLen: n}
}

// DomainFromTable derives a categorical domain from the distinct values of
// attr present in the table, sorted.
func DomainFromTable(t *dataset.Table, attr string) *Domain {
	return NewCategoricalDomain(attr, t.SortedKeys(attr))
}

// Attr returns the attribute the domain is defined over.
func (d *Domain) Attr() string { return d.attr }

// Size returns the number of bins.
func (d *Domain) Size() int {
	if d.keys != nil {
		return len(d.keys)
	}
	return d.numLen
}

// BinOf maps a record to its bin, or -1 if the value is outside the domain.
func (d *Domain) BinOf(r dataset.Record) int {
	v := r.Get(d.attr)
	if d.keys != nil {
		i, ok := d.index[v.AsString()]
		if !ok {
			return -1
		}
		return i
	}
	x := v.AsFloat()
	i := int(math.Floor((x - d.numLo) / d.numW))
	if i < 0 || i >= d.numLen {
		return -1
	}
	return i
}

// Labels returns display labels for the bins.
func (d *Domain) Labels() []string {
	if d.keys != nil {
		return append([]string(nil), d.keys...)
	}
	out := make([]string, d.numLen)
	for i := range out {
		out[i] = fmt.Sprintf("[%g,%g)", d.numLo+float64(i)*d.numW, d.numLo+float64(i+1)*d.numW)
	}
	return out
}

// Query is a histogram query: an optional WHERE condition plus a GROUP BY
// domain (or the cross product of two domains for 2-D histograms).
type Query struct {
	Where dataset.Predicate // nil means no condition
	Dims  []*Domain         // 1 or 2 dimensions
}

// NewQuery builds a histogram query over the given dimensions.
func NewQuery(where dataset.Predicate, dims ...*Domain) Query {
	if len(dims) == 0 || len(dims) > 2 {
		panic("histogram: queries support 1 or 2 dimensions")
	}
	return Query{Where: where, Dims: dims}
}

// Bins returns the flattened output arity (product of dimension sizes).
func (q Query) Bins() int {
	n := 1
	for _, d := range q.Dims {
		n *= d.Size()
	}
	return n
}

// Eval runs the query over the table, returning a dense histogram in
// row-major order (first dimension outermost). Records outside the domain
// or failing the condition are ignored.
func (q Query) Eval(t *dataset.Table) *Histogram {
	h := New(q.Bins())
	for _, r := range t.Records() {
		if q.Where != nil && !q.Where.Eval(r) {
			continue
		}
		bin := 0
		ok := true
		for _, d := range q.Dims {
			b := d.BinOf(r)
			if b < 0 {
				ok = false
				break
			}
			bin = bin*d.Size() + b
		}
		if ok {
			h.counts[bin]++
		}
	}
	if len(q.Dims) == 1 {
		h.labels = q.Dims[0].Labels()
	}
	return h
}

// EvalSplit evaluates the query separately on the sensitive and
// non-sensitive portions of the table under policy p, returning (x, xns):
// the full histogram and the non-sensitive histogram. These are the two
// inputs to the DAWAz recipe.
func (q Query) EvalSplit(t *dataset.Table, p dataset.Policy) (x, xns *Histogram) {
	x = q.Eval(t)
	_, ns := t.Split(p)
	xns = q.Eval(ns)
	return x, xns
}

// SparseCounts is a sparse histogram over an unbounded string domain, used
// for high-dimensional tasks like n-gram release where materialising all
// 64ⁿ bins is intractable (§6.3.2). Zero-count keys are implicit.
type SparseCounts map[string]float64

// AddKey increments the count of key by delta.
func (s SparseCounts) AddKey(key string, delta float64) { s[key] += delta }

// Scale returns the total mass.
func (s SparseCounts) Scale() float64 {
	var sum float64
	for _, c := range s {
		sum += c
	}
	return sum
}

// Keys returns the non-zero keys in sorted order.
func (s SparseCounts) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone deep-copies the sparse counts.
func (s SparseCounts) Clone() SparseCounts {
	out := make(SparseCounts, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
