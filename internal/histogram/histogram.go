// Package histogram implements the histogram-query substrate of the paper:
// counts over a non-overlapping partitioning of a dataset ("SELECT group,
// COUNT(*) FROM table WHERE cond GROUP BY keys", §5), including bins with
// zero counts. It provides dense 1-D and 2-D histograms over declared
// domains, construction from dataset tables, policy-based splitting into
// sensitive/non-sensitive components, range queries, and the shape
// statistics (scale, sparsity) used by the DPBench evaluation (Table 2).
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"osdp/internal/dataset"
)

// Histogram is a dense vector of non-negative counts, one per domain bin.
// Counts are float64 because private estimates are real-valued; true
// histograms hold integers. A Histogram is a plain mutable value: safe
// for concurrent reads, but mutation (SetCount, Add, Clamp…) must not
// race with any other access — mechanisms that perturb counts work on
// Clone()s for exactly this reason.
type Histogram struct {
	counts []float64
	labels []string // optional, len 0 or len(counts)
}

// New returns an all-zero histogram with d bins.
func New(d int) *Histogram {
	if d <= 0 {
		panic("histogram: domain size must be positive")
	}
	return &Histogram{counts: make([]float64, d)}
}

// FromCounts wraps a count vector (copied) as a histogram.
func FromCounts(counts []float64) *Histogram {
	h := New(len(counts))
	copy(h.counts, counts)
	return h
}

// FromInts wraps an integer count vector as a histogram.
func FromInts(counts []int) *Histogram {
	h := New(len(counts))
	for i, c := range counts {
		h.counts[i] = float64(c)
	}
	return h
}

// Bins returns the number of bins d.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// SetCount sets the count of bin i.
func (h *Histogram) SetCount(i int, v float64) { h.counts[i] = v }

// Add increments bin i by delta.
func (h *Histogram) Add(i int, delta float64) { h.counts[i] += delta }

// Counts returns the underlying count slice. Callers must treat it as
// read-only; mechanisms that perturb counts work on Clone()s.
func (h *Histogram) Counts() []float64 { return h.counts }

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{counts: make([]float64, len(h.counts))}
	copy(out.counts, h.counts)
	if h.labels != nil {
		out.labels = append([]string(nil), h.labels...)
	}
	return out
}

// SetLabels attaches bin labels (for reporting). len(labels) must equal
// Bins().
func (h *Histogram) SetLabels(labels []string) {
	if len(labels) != len(h.counts) {
		panic("histogram: label arity mismatch")
	}
	h.labels = append([]string(nil), labels...)
}

// Label returns the label of bin i, or its index rendered as a string.
func (h *Histogram) Label(i int) string {
	if h.labels != nil {
		return h.labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// Scale returns the L1 mass ‖x‖₁ (total record count for true histograms).
func (h *Histogram) Scale() float64 {
	var s float64
	for _, c := range h.counts {
		s += c
	}
	return s
}

// Sparsity returns the fraction of bins with zero count, the statistic
// DPBench reports per dataset (Table 2).
func (h *Histogram) Sparsity() float64 {
	zero := 0
	for _, c := range h.counts {
		if c == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(h.counts))
}

// ZeroBins returns the indices of zero-count bins, the set Z consumed by
// the DAWAz recipe (Algorithm 3).
func (h *Histogram) ZeroBins() []int {
	var z []int
	for i, c := range h.counts {
		if c == 0 {
			z = append(z, i)
		}
	}
	return z
}

// RangeSum returns the sum of counts over bins [lo, hi] inclusive.
func (h *Histogram) RangeSum(lo, hi int) float64 {
	if lo < 0 || hi >= len(h.counts) || lo > hi {
		panic(fmt.Sprintf("histogram: bad range [%d, %d] over %d bins", lo, hi, len(h.counts)))
	}
	var s float64
	for i := lo; i <= hi; i++ {
		s += h.counts[i]
	}
	return s
}

// Sub returns h - o elementwise. Panics on arity mismatch.
func (h *Histogram) Sub(o *Histogram) *Histogram {
	mustSameBins(h, o)
	out := New(len(h.counts))
	for i := range h.counts {
		out.counts[i] = h.counts[i] - o.counts[i]
	}
	return out
}

// AddHist returns h + o elementwise.
func (h *Histogram) AddHist(o *Histogram) *Histogram {
	mustSameBins(h, o)
	out := New(len(h.counts))
	for i := range h.counts {
		out.counts[i] = h.counts[i] + o.counts[i]
	}
	return out
}

// L1Distance returns ‖h − o‖₁.
func (h *Histogram) L1Distance(o *Histogram) float64 {
	mustSameBins(h, o)
	var s float64
	for i := range h.counts {
		s += math.Abs(h.counts[i] - o.counts[i])
	}
	return s
}

// ClampNonNegative sets negative counts to zero in place and returns h.
func (h *Histogram) ClampNonNegative() *Histogram {
	for i, c := range h.counts {
		if c < 0 {
			h.counts[i] = 0
		}
	}
	return h
}

// Dominates reports whether every count in h is >= the matching count in o.
// Used to check the one-sided neighbor property (x'ns >= xns pointwise).
func (h *Histogram) Dominates(o *Histogram) bool {
	mustSameBins(h, o)
	for i := range h.counts {
		if h.counts[i] < o.counts[i] {
			return false
		}
	}
	return true
}

func mustSameBins(a, b *Histogram) {
	if a.Bins() != b.Bins() {
		panic(fmt.Sprintf("histogram: bin mismatch %d vs %d", a.Bins(), b.Bins()))
	}
}

// Domain maps attribute values to dense bin indices. It is how a GROUP BY
// over a categorical or bucketised attribute becomes a vector of counts
// that includes empty groups — the paper's histogram query semantics.
// A Domain is immutable after construction and safe for concurrent use:
// the lazily-built per-table bin vectors are guarded by an internal
// mutex, so one Domain can serve racing queries (the server registry
// relies on this).
type Domain struct {
	attr   string
	keys   []string
	index  map[string]int
	numLo  float64 // numeric bucketing, used when keys == nil
	numW   float64
	numLen int

	// binCache holds, per base table, the precomputed bin id of every
	// PHYSICAL row (-1 = outside the domain). Building it is one typed
	// pass over the column vector; evaluating a histogram query is then
	// an int-slice walk with no per-record rendering or map lookups.
	// Entries are invalidated by row-count changes (tables are
	// append-only) and the cache lives exactly as long as the Domain, so
	// long-lived Domains should be paired with long-lived tables (the
	// server registry does this).
	binMu    sync.Mutex
	binCache map[*dataset.Table]binEntry
}

type binEntry struct {
	bins []int32
	n    int // base row count when computed
}

// NewCategoricalDomain declares a domain as an explicit ordered key list.
func NewCategoricalDomain(attr string, keys []string) *Domain {
	d := &Domain{attr: attr, keys: append([]string(nil), keys...), index: make(map[string]int, len(keys))}
	for i, k := range d.keys {
		if _, dup := d.index[k]; dup {
			panic(fmt.Sprintf("histogram: duplicate domain key %q", k))
		}
		d.index[k] = i
	}
	return d
}

// NewNumericDomain declares equi-width buckets [lo, lo+w), [lo+w, lo+2w), …
// covering n buckets of attribute attr.
func NewNumericDomain(attr string, lo, width float64, n int) *Domain {
	if width <= 0 || n <= 0 {
		panic("histogram: numeric domain needs positive width and size")
	}
	return &Domain{attr: attr, numLo: lo, numW: width, numLen: n}
}

// DomainFromTable derives a categorical domain from the distinct values of
// attr present in the table, sorted.
func DomainFromTable(t *dataset.Table, attr string) *Domain {
	return NewCategoricalDomain(attr, t.SortedKeys(attr))
}

// Attr returns the attribute the domain is defined over.
func (d *Domain) Attr() string { return d.attr }

// Size returns the number of bins.
func (d *Domain) Size() int {
	if d.keys != nil {
		return len(d.keys)
	}
	return d.numLen
}

// BinOf maps a record to its bin, or -1 if the value is outside the domain.
func (d *Domain) BinOf(r dataset.Record) int {
	v := r.Get(d.attr)
	if d.keys != nil {
		i, ok := d.index[v.AsString()]
		if !ok {
			return -1
		}
		return i
	}
	return d.bucketOf(v.AsFloat())
}

// bucketOf maps a numeric value to its equi-width bucket, or -1.
func (d *Domain) bucketOf(x float64) int {
	i := int(math.Floor((x - d.numLo) / d.numW))
	if i < 0 || i >= d.numLen {
		return -1
	}
	return i
}

// Precompute builds and caches the per-row bin vector for t's base table,
// so the first query against t does not pay the binning pass. The server
// registry calls this at dataset-load time. On tables above one chunk
// (64K rows) the binning pass is sharded across the dataset scan worker
// pool; workers write disjoint segments of the vector, so the result is
// identical to a serial build. Safe for concurrent use (the bin cache
// carries its own mutex).
func (d *Domain) Precompute(t *dataset.Table) { d.binVector(t.Base()) }

// binVector returns the cached bin id of every physical row of base,
// building it on first use (or after the table grew).
func (d *Domain) binVector(base *dataset.Table) []int32 {
	d.binMu.Lock()
	defer d.binMu.Unlock()
	if e, ok := d.binCache[base]; ok && e.n == base.Len() {
		return e.bins
	}
	bins := d.buildBinVector(base)
	if d.binCache == nil {
		d.binCache = make(map[*dataset.Table]binEntry)
	}
	d.binCache[base] = binEntry{bins: bins, n: base.Len()}
	return bins
}

// buildBinVector computes the bin vector in one pass over the typed
// column, falling back to per-record BinOf for mixed-kind columns. Every
// branch reproduces BinOf's semantics exactly (bin by AsString for
// categorical domains, by AsFloat for numeric ones). Each fill variant
// does its setup (dictionary/bin tables, key maps) once on the calling
// goroutine and then chunks the row loop over the scan worker pool;
// workers write disjoint bins[lo:hi] segments and only read shared
// state, so the parallel build is positionally identical to serial.
func (d *Domain) buildBinVector(base *dataset.Table) []int32 {
	n := base.Len()
	bins := make([]int32, n)
	ci := base.Schema().ColumnIndex(d.attr)
	if ci < 0 {
		panic(fmt.Sprintf("histogram: unknown attribute %q", d.attr))
	}
	if d.keys != nil {
		switch {
		case d.fillCategoricalStrings(base, ci, bins):
		case d.fillCategoricalInts(base, ci, bins):
		case d.fillCategoricalFloats(base, ci, bins):
		case d.fillCategoricalBools(base, ci, bins):
		default:
			d.fillGeneric(base, bins)
		}
		return bins
	}
	switch {
	case d.fillNumericInts(base, ci, bins):
	case d.fillNumericFloats(base, ci, bins):
	case d.fillNumericStrings(base, ci, bins):
	case d.fillNumericBools(base, ci, bins):
	default:
		d.fillGeneric(base, bins)
	}
	return bins
}

func (d *Domain) fillGeneric(base *dataset.Table, bins []int32) {
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			bins[i] = int32(d.BinOf(base.Record(i)))
		}
	})
}

// fillCategoricalStrings resolves each DISTINCT dictionary entry to a bin
// once; the row pass is then a pure table lookup.
func (d *Domain) fillCategoricalStrings(base *dataset.Table, ci int, bins []int32) bool {
	codes, dict, ok := base.ColumnStrings(ci)
	if !ok {
		return false
	}
	code2bin := make([]int32, len(dict))
	for code, s := range dict {
		b, ok := d.index[s]
		if !ok {
			b = -1
		}
		code2bin[code] = int32(b)
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			bins[i] = code2bin[codes[i]]
		}
	})
	return true
}

// fillCategoricalInts maps domain keys that are canonical int renderings
// to typed values, so rows bin via an int64 lookup instead of FormatInt.
func (d *Domain) fillCategoricalInts(base *dataset.Table, ci int, bins []int32) bool {
	ints, ok := base.ColumnInts(ci)
	if !ok {
		return false
	}
	m := make(map[int64]int32, len(d.keys))
	for b, k := range d.keys {
		v, err := strconv.ParseInt(k, 10, 64)
		if err == nil && strconv.FormatInt(v, 10) == k {
			m[v] = int32(b)
		}
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i, x := range ints[lo:hi] {
			if b, ok := m[x]; ok {
				bins[lo+i] = b
			} else {
				bins[lo+i] = -1
			}
		}
	})
	return true
}

func (d *Domain) fillCategoricalFloats(base *dataset.Table, ci int, bins []int32) bool {
	floats, ok := base.ColumnFloats(ci)
	if !ok {
		return false
	}
	// NaN and ±0 need care: NaN never hits a float map key, and -0 == 0
	// would collapse the distinct renderings "0" and "-0" into one slot.
	m := make(map[float64]int32, len(d.keys))
	nanBin, posZeroBin, negZeroBin := int32(-1), int32(-1), int32(-1)
	for b, k := range d.keys {
		v, err := strconv.ParseFloat(k, 64)
		if err != nil || strconv.FormatFloat(v, 'g', -1, 64) != k {
			continue
		}
		switch {
		case math.IsNaN(v):
			nanBin = int32(b)
		case v == 0 && math.Signbit(v):
			negZeroBin = int32(b)
		case v == 0:
			posZeroBin = int32(b)
		default:
			m[v] = int32(b)
		}
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i, x := range floats[lo:hi] {
			switch {
			case math.IsNaN(x):
				bins[lo+i] = nanBin
			case x == 0 && math.Signbit(x):
				bins[lo+i] = negZeroBin
			case x == 0:
				bins[lo+i] = posZeroBin
			default:
				if b, ok := m[x]; ok {
					bins[lo+i] = b
				} else {
					bins[lo+i] = -1
				}
			}
		}
	})
	return true
}

func (d *Domain) fillCategoricalBools(base *dataset.Table, ci int, bins []int32) bool {
	bools, ok := base.ColumnBools(ci)
	if !ok {
		return false
	}
	binFor := func(key string) int32 {
		if b, ok := d.index[key]; ok {
			return int32(b)
		}
		return -1
	}
	trueBin, falseBin := binFor("true"), binFor("false")
	fillBools(bins, bools, trueBin, falseBin)
	return true
}

// fillBools maps a bool column onto its two bins, chunked.
func fillBools(bins []int32, bools []bool, trueBin, falseBin int32) {
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i, x := range bools[lo:hi] {
			if x {
				bins[lo+i] = trueBin
			} else {
				bins[lo+i] = falseBin
			}
		}
	})
}

func (d *Domain) fillNumericInts(base *dataset.Table, ci int, bins []int32) bool {
	ints, ok := base.ColumnInts(ci)
	if !ok {
		return false
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i, x := range ints[lo:hi] {
			bins[lo+i] = int32(d.bucketOf(float64(x)))
		}
	})
	return true
}

func (d *Domain) fillNumericFloats(base *dataset.Table, ci int, bins []int32) bool {
	floats, ok := base.ColumnFloats(ci)
	if !ok {
		return false
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i, x := range floats[lo:hi] {
			bins[lo+i] = int32(d.bucketOf(x))
		}
	})
	return true
}

// fillNumericStrings parses each DISTINCT dictionary entry once
// (matching Value.AsFloat: unparseable strings bin as 0).
func (d *Domain) fillNumericStrings(base *dataset.Table, ci int, bins []int32) bool {
	codes, dict, ok := base.ColumnStrings(ci)
	if !ok {
		return false
	}
	code2bin := make([]int32, len(dict))
	for code, s := range dict {
		f, _ := strconv.ParseFloat(s, 64)
		code2bin[code] = int32(d.bucketOf(f))
	}
	dataset.ParallelRows(len(bins), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			bins[i] = code2bin[codes[i]]
		}
	})
	return true
}

func (d *Domain) fillNumericBools(base *dataset.Table, ci int, bins []int32) bool {
	bools, ok := base.ColumnBools(ci)
	if !ok {
		return false
	}
	trueBin, falseBin := int32(d.bucketOf(1)), int32(d.bucketOf(0))
	fillBools(bins, bools, trueBin, falseBin)
	return true
}

// Labels returns display labels for the bins.
func (d *Domain) Labels() []string {
	if d.keys != nil {
		return append([]string(nil), d.keys...)
	}
	out := make([]string, d.numLen)
	for i := range out {
		out[i] = fmt.Sprintf("[%g,%g)", d.numLo+float64(i)*d.numW, d.numLo+float64(i+1)*d.numW)
	}
	return out
}

// Query is a histogram query: an optional WHERE condition plus a GROUP BY
// domain (or the cross product of two domains for 2-D histograms).
type Query struct {
	Where dataset.Predicate // nil means no condition
	Dims  []*Domain         // 1 or 2 dimensions
}

// NewQuery builds a histogram query over the given dimensions.
func NewQuery(where dataset.Predicate, dims ...*Domain) Query {
	if len(dims) == 0 || len(dims) > 2 {
		panic("histogram: queries support 1 or 2 dimensions")
	}
	return Query{Where: where, Dims: dims}
}

// Bins returns the flattened output arity (product of dimension sizes).
func (q Query) Bins() int {
	n := 1
	for _, d := range q.Dims {
		n *= d.Size()
	}
	return n
}

// maxParallelAccumulateBins caps the output arity above which Eval
// accumulates serially even on large tables: the parallel path gives
// each worker a private partial histogram, and pinning workers x bins
// float64s of scratch for a huge, necessarily sparse output would cost
// more in allocation than the scan saves. Below the cap the scratch is
// at most a few MB across the whole pool.
const maxParallelAccumulateBins = 1 << 16

// Eval runs the query over the table, returning a dense histogram in
// row-major order (first dimension outermost). Records outside the domain
// or failing the condition are ignored.
//
// Execution is columnar: the WHERE condition compiles to a selection
// bitset (dataset.Table.Select) and each dimension contributes a cached
// per-row bin-id vector, so the scan is one pass over int slices with no
// per-record rendering, map entries, or interface dispatch. Reusing the
// same Domain values across queries (as the server registry does) makes
// the binning pass a one-time cost per (table, domain).
//
// On tables above one chunk (64K rows) the accumulation pass is sharded
// across the dataset scan worker pool: each worker counts its chunks
// into a private partial histogram and the partials are summed at the
// end. Counts are exact integers far below 2^53, so the float64 merge
// is order-independent and the result is bit-identical to a serial
// evaluation, whatever the worker count — pinned by the differential
// tests. Eval is safe for concurrent use.
func (q Query) Eval(t *dataset.Table) *Histogram {
	if len(q.Dims) == 0 {
		panic("histogram: query has no dimensions")
	}
	h := New(q.Bins())
	base := t.Base()
	bins0 := q.Dims[0].binVector(base)
	var bins1 []int32
	size1 := 0
	switch len(q.Dims) {
	case 1:
	case 2:
		bins1 = q.Dims[1].binVector(base)
		size1 = q.Dims[1].Size()
	default:
		// NewQuery only builds 1-D and 2-D queries, but Dims is an
		// exported field; evaluate hand-built higher dimensionality
		// generically rather than silently dropping dimensions.
		return q.evalND(t, h)
	}
	var where *dataset.Bitset
	if q.Where != nil {
		where = t.Select(q.Where)
	}
	sel := t.Selection()
	n := t.Len()
	// accumulate counts rows [lo, hi) of the (table-relative) row range
	// into counts. Everything it reads — bin vectors, the WHERE bitset,
	// the selection — is immutable during the pass.
	accumulate := func(counts []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			if where != nil && !where.Get(i) {
				continue
			}
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			b := bins0[p]
			if b < 0 {
				continue
			}
			if bins1 != nil {
				b2 := bins1[p]
				if b2 < 0 {
					continue
				}
				b = b*int32(size1) + b2
			}
			counts[b]++
		}
	}
	if dataset.ScanParallelism(n) > 1 && len(h.counts) <= maxParallelAccumulateBins {
		// Slots are bounded by MaxScanWorkers even if the configured
		// worker count changes while the pass is being set up; unused
		// slots stay nil and merge as zero.
		partials := make([][]float64, dataset.MaxScanWorkers)
		dataset.ParallelRows(n, func(w, lo, hi int) {
			p := partials[w]
			if p == nil {
				p = make([]float64, len(h.counts))
				partials[w] = p
			}
			accumulate(p, lo, hi)
		})
		for _, p := range partials {
			if p == nil {
				continue
			}
			for i, c := range p {
				h.counts[i] += c
			}
		}
	} else {
		accumulate(h.counts, 0, n)
	}
	if len(q.Dims) == 1 {
		h.labels = q.Dims[0].Labels()
	}
	return h
}

// evalND is the general row-major accumulation for queries with more
// than two dimensions. It stays serial: only hand-built queries reach
// it, and its bin vectors still come from the (parallel) binVector
// build above.
func (q Query) evalND(t *dataset.Table, h *Histogram) *Histogram {
	base := t.Base()
	binVecs := make([][]int32, len(q.Dims))
	sizes := make([]int, len(q.Dims))
	for d, dom := range q.Dims {
		binVecs[d] = dom.binVector(base)
		sizes[d] = dom.Size()
	}
	var where *dataset.Bitset
	if q.Where != nil {
		where = t.Select(q.Where)
	}
	sel := t.Selection()
	n := t.Len()
	for i := 0; i < n; i++ {
		if where != nil && !where.Get(i) {
			continue
		}
		p := i
		if sel != nil {
			p = int(sel[i])
		}
		bin, ok := 0, true
		for d := range binVecs {
			b := binVecs[d][p]
			if b < 0 {
				ok = false
				break
			}
			bin = bin*sizes[d] + int(b)
		}
		if ok {
			h.counts[bin]++
		}
	}
	return h
}

// EvalSplit evaluates the query separately on the sensitive and
// non-sensitive portions of the table under policy p, returning (x, xns):
// the full histogram and the non-sensitive histogram. These are the two
// inputs to the DAWAz recipe. Both the policy split (dataset.Table.Split)
// and the two evaluations shard over the scan worker pool on large
// tables; like Eval, the results are bit-identical to serial execution.
func (q Query) EvalSplit(t *dataset.Table, p dataset.Policy) (x, xns *Histogram) {
	x = q.Eval(t)
	_, ns := t.Split(p)
	xns = q.Eval(ns)
	return x, xns
}

// SparseCounts is a sparse histogram over an unbounded string domain, used
// for high-dimensional tasks like n-gram release where materialising all
// 64ⁿ bins is intractable (§6.3.2). Zero-count keys are implicit.
type SparseCounts map[string]float64

// AddKey increments the count of key by delta.
func (s SparseCounts) AddKey(key string, delta float64) { s[key] += delta }

// Scale returns the total mass.
func (s SparseCounts) Scale() float64 {
	var sum float64
	for _, c := range s {
		sum += c
	}
	return sum
}

// Keys returns the non-zero keys in sorted order.
func (s SparseCounts) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone deep-copies the sparse counts.
func (s SparseCounts) Clone() SparseCounts {
	out := make(SparseCounts, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
