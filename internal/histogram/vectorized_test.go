package histogram

import (
	"fmt"
	"math/rand"
	"testing"

	"osdp/internal/dataset"
)

// evalReference is the row-at-a-time histogram evaluation the vectorized
// Query.Eval replaced; the differential tests below pin exact agreement.
func evalReference(q Query, t *dataset.Table) *Histogram {
	h := New(q.Bins())
	for _, r := range t.Records() {
		if q.Where != nil && !q.Where.Eval(r) {
			continue
		}
		bin := 0
		ok := true
		for _, d := range q.Dims {
			b := d.BinOf(r)
			if b < 0 {
				ok = false
				break
			}
			bin = bin*d.Size() + b
		}
		if ok {
			h.Add(bin, 1)
		}
	}
	return h
}

func randomHistTable(rng *rand.Rand, rows int) *dataset.Table {
	s := dataset.NewSchema(
		dataset.Field{Name: "Cat", Kind: dataset.KindString},
		dataset.Field{Name: "N", Kind: dataset.KindInt},
		dataset.Field{Name: "X", Kind: dataset.KindFloat},
		dataset.Field{Name: "B", Kind: dataset.KindBool},
	)
	tb := dataset.NewTable(s)
	for i := 0; i < rows; i++ {
		tb.AppendValues(
			dataset.Str(fmt.Sprintf("c%d", rng.Intn(6))),
			dataset.Int(int64(rng.Intn(30)-5)),
			dataset.Float(float64(rng.Intn(200))/7-3),
			dataset.Bool(rng.Intn(2) == 0),
		)
	}
	return tb
}

func mustEqualHist(t *testing.T, name string, got, want *Histogram) {
	t.Helper()
	if got.Bins() != want.Bins() {
		t.Fatalf("%s: bins %d vs %d", name, got.Bins(), want.Bins())
	}
	for i := 0; i < got.Bins(); i++ {
		if got.Count(i) != want.Count(i) {
			t.Fatalf("%s: bin %d = %v, reference %v", name, i, got.Count(i), want.Count(i))
		}
	}
}

// TestEvalMatchesRowReference sweeps random tables, domains (categorical
// explicit + derived, numeric over every column kind), conditions, and
// 2-D combinations, on base tables and on policy-split views.
func TestEvalMatchesRowReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomHistTable(rng, rng.Intn(300))

		domains := []*Domain{
			NewCategoricalDomain("Cat", []string{"c0", "c1", "c2", "c9"}),
			NewCategoricalDomain("N", []string{"0", "3", "12", "oops", "-2"}),
			NewCategoricalDomain("B", []string{"true", "false"}),
			NewCategoricalDomain("X", []string{"0", "-3", "1.5714285714285714"}),
			NewNumericDomain("N", -5, 7, 5),
			NewNumericDomain("X", -3, 5.5, 6),
			NewNumericDomain("B", 0, 0.5, 3),
			NewNumericDomain("Cat", 0, 1, 4), // strings AsFloat to 0 or parse
		}
		if tb.Len() > 0 {
			domains = append(domains, DomainFromTable(tb, "Cat"), DomainFromTable(tb, "N"))
		}
		wheres := []dataset.Predicate{
			nil,
			dataset.Cmp("N", dataset.OpGe, dataset.Int(3)),
			dataset.And(
				dataset.Cmp("B", dataset.OpEq, dataset.Bool(true)),
				dataset.Cmp("X", dataset.OpLt, dataset.Float(10)),
			),
			dataset.FuncPredicate("odd", func(r dataset.Record) bool {
				return r.Get("N").AsInt()%2 != 0
			}),
		}

		pol := dataset.NewPolicy("split", dataset.Cmp("N", dataset.OpLt, dataset.Int(10)))
		_, nsView := tb.Split(pol)
		tables := []*dataset.Table{tb, nsView}

		for _, tab := range tables {
			for _, d := range domains {
				for _, w := range wheres {
					q := NewQuery(w, d)
					mustEqualHist(t, fmt.Sprintf("seed %d 1-D %s", seed, d.Attr()), q.Eval(tab), evalReference(q, tab))
				}
			}
			q2 := NewQuery(wheres[1], domains[0], domains[4])
			mustEqualHist(t, fmt.Sprintf("seed %d 2-D", seed), q2.Eval(tab), evalReference(q2, tab))
		}
	}
}

// Hand-built queries with more than two dimensions (bypassing NewQuery)
// must still evaluate every dimension.
func TestEvalHandBuilt3D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := randomHistTable(rng, 200)
	q := Query{Dims: []*Domain{
		NewCategoricalDomain("Cat", []string{"c0", "c1", "c2", "c3", "c4", "c5"}),
		NewNumericDomain("N", -5, 7, 5),
		NewCategoricalDomain("B", []string{"false", "true"}),
	}}
	mustEqualHist(t, "3-D", q.Eval(tb), evalReference(q, tb))
}

// TestBinVectorInvalidatedOnAppend guards the cache consistency contract:
// a Domain reused after the table grew must re-bin.
func TestBinVectorInvalidatedOnAppend(t *testing.T) {
	s := dataset.NewSchema(dataset.Field{Name: "K", Kind: dataset.KindString})
	tb := dataset.NewTable(s)
	tb.AppendValues(dataset.Str("a"))
	d := NewCategoricalDomain("K", []string{"a", "b"})
	q := NewQuery(nil, d)
	if got := q.Eval(tb).Count(0); got != 1 {
		t.Fatalf("initial count = %v", got)
	}
	tb.AppendValues(dataset.Str("b"))
	h := q.Eval(tb)
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Fatalf("after append: counts = %v, want [1 1]", h.Counts())
	}
}
