package histogram

import (
	"fmt"
	"math/rand"
	"testing"

	"osdp/internal/dataset"
)

// parallelRows spans several 64K-row chunks so the sharded paths
// actually engage (smaller tables run serially by design).
const parallelRows = 3*65536 + 777

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := dataset.ScanWorkers()
	dataset.SetScanWorkers(n)
	defer dataset.SetScanWorkers(prev)
	f()
}

// parallelTestTable builds a multi-chunk table with one column per kind,
// including values that fall outside the domains declared below.
func parallelTestTable(rng *rand.Rand, rows int) *dataset.Table {
	s := dataset.NewSchema(
		dataset.Field{Name: "Group", Kind: dataset.KindString},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "Score", Kind: dataset.KindFloat},
		dataset.Field{Name: "Opt", Kind: dataset.KindBool},
	)
	tb := dataset.NewTable(s)
	for i := 0; i < rows; i++ {
		tb.AppendValues(
			dataset.Str(fmt.Sprintf("g%02d", rng.Intn(40))),
			dataset.Int(int64(rng.Intn(140)-20)), // some below 0 / above 99: outside the numeric domain
			dataset.Float(rng.Float64()*120-10),
			dataset.Bool(rng.Intn(2) == 0),
		)
	}
	return tb
}

func sameCounts(a, b *Histogram) bool {
	if a.Bins() != b.Bins() {
		return false
	}
	for i := 0; i < a.Bins(); i++ {
		if a.Count(i) != b.Count(i) {
			return false
		}
	}
	return true
}

// evalQueries builds the query shapes the serving layer exercises:
// derived-categorical, numeric-bucketed, 2-D, with and without a WHERE.
func evalQueries(tb *dataset.Table) []Query {
	where := dataset.And(
		dataset.Cmp("Age", dataset.OpGe, dataset.Int(18)),
		dataset.Cmp("Age", dataset.OpLt, dataset.Int(60)),
	)
	return []Query{
		NewQuery(nil, DomainFromTable(tb, "Group")),
		NewQuery(where, DomainFromTable(tb, "Group")),
		NewQuery(where, NewNumericDomain("Age", 0, 10, 10)), // rows outside [0, 100) bin as -1
		NewQuery(nil, NewNumericDomain("Score", 0, 25, 4), NewCategoricalDomain("Opt", []string{"true", "false"})),
		NewQuery(where, NewNumericDomain("Age", 0, 5, 20), NewNumericDomain("Score", 0, 50, 2)),
	}
}

// TestParallelEvalDifferential pins Query.Eval and Query.EvalSplit
// bit-identical between serial and parallel execution on a multi-chunk
// table. Fresh Domain values per worker count defeat the per-domain bin
// caches, so the binning pass itself is re-run and compared too.
func TestParallelEvalDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	rng := rand.New(rand.NewSource(1))
	tb := parallelTestTable(rng, parallelRows)
	var serial []*Histogram
	withWorkers(t, 1, func() {
		for _, q := range evalQueries(tb) {
			serial = append(serial, q.Eval(tb))
		}
	})
	for _, workers := range []int{2, 8} {
		withWorkers(t, workers, func() {
			for i, q := range evalQueries(tb) {
				if got := q.Eval(tb); !sameCounts(got, serial[i]) {
					t.Fatalf("query %d: Eval differs between 1 and %d workers", i, workers)
				}
			}
		})
	}

	// EvalSplit: the policy split and both evaluations shard; distinct
	// policy names defeat the table's split cache between runs.
	pred := dataset.Or(
		dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)),
		dataset.Cmp("Opt", dataset.OpEq, dataset.Bool(false)),
	)
	var sx, sxns *Histogram
	withWorkers(t, 1, func() {
		q := NewQuery(nil, NewNumericDomain("Age", 0, 10, 10))
		sx, sxns = q.EvalSplit(tb, dataset.NewPolicy("serial", pred))
	})
	withWorkers(t, 8, func() {
		q := NewQuery(nil, NewNumericDomain("Age", 0, 10, 10))
		px, pxns := q.EvalSplit(tb, dataset.NewPolicy("parallel", pred))
		if !sameCounts(sx, px) || !sameCounts(sxns, pxns) {
			t.Fatal("EvalSplit differs between 1 and 8 workers")
		}
	})
}

// TestParallelEvalOnView runs the sharded accumulate over a proper
// selection view (non-identity), where rows map through the selection
// vector.
func TestParallelEvalOnView(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	rng := rand.New(rand.NewSource(2))
	tb := parallelTestTable(rng, parallelRows)
	view := tb.Filter(dataset.Cmp("Opt", dataset.OpEq, dataset.Bool(true)))
	if view.Len() <= 65536 {
		t.Fatalf("view too small to span chunks: %d rows", view.Len())
	}
	q := NewQuery(dataset.Cmp("Score", dataset.OpGe, dataset.Float(5)), DomainFromTable(tb, "Group"))
	var serial *Histogram
	withWorkers(t, 1, func() { serial = q.Eval(view) })
	withWorkers(t, 8, func() {
		if got := q.Eval(view); !sameCounts(got, serial) {
			t.Fatal("view Eval differs between 1 and 8 workers")
		}
	})
}

// TestParallelPrecompute pins the sharded bin-vector build: two Domain
// values with identical specs, one built serially and one in parallel,
// must produce element-identical vectors (observed through Eval).
func TestParallelPrecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk differential tables are slow to build")
	}
	rng := rand.New(rand.NewSource(3))
	tb := parallelTestTable(rng, parallelRows)
	specs := []func() *Domain{
		func() *Domain { return DomainFromTable(tb, "Group") },
		func() *Domain { return NewNumericDomain("Age", 0, 10, 10) },
		func() *Domain { return NewNumericDomain("Score", -10, 13, 10) },
		func() *Domain { return NewCategoricalDomain("Opt", []string{"true", "false"}) },
		func() *Domain { return NewCategoricalDomain("Age", []string{"1", "7", "33", "nope"}) },
	}
	for i, mk := range specs {
		var serial, parallel []int32
		withWorkers(t, 1, func() {
			d := mk()
			d.Precompute(tb)
			serial = d.binVector(tb.Base())
		})
		withWorkers(t, 8, func() {
			d := mk()
			d.Precompute(tb)
			parallel = d.binVector(tb.Base())
		})
		if len(serial) != len(parallel) {
			t.Fatalf("spec %d: bin vector lengths differ", i)
		}
		for r := range serial {
			if serial[r] != parallel[r] {
				t.Fatalf("spec %d: bin vector differs at row %d: %d vs %d", i, r, serial[r], parallel[r])
			}
		}
	}
}
