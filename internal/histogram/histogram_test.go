package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/dataset"
)

func visitSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Field{Name: "AP", Kind: dataset.KindString},
		dataset.Field{Name: "Hour", Kind: dataset.KindInt},
		dataset.Field{Name: "Sensitive", Kind: dataset.KindBool},
	)
}

func visitTable() *dataset.Table {
	t := dataset.NewTable(visitSchema())
	add := func(ap string, hour int64, sens bool) {
		t.AppendValues(dataset.Str(ap), dataset.Int(hour), dataset.Bool(sens))
	}
	add("ap1", 9, false)
	add("ap1", 9, false)
	add("ap1", 10, true)
	add("ap2", 9, false)
	add("ap3", 23, true)
	return t
}

func TestBasicAccessors(t *testing.T) {
	h := New(4)
	if h.Bins() != 4 || h.Scale() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	h.SetCount(1, 3)
	h.Add(1, 2)
	if h.Count(1) != 5 {
		t.Errorf("Count(1) = %v", h.Count(1))
	}
	if h.Scale() != 5 {
		t.Errorf("Scale = %v", h.Scale())
	}
	if h.Sparsity() != 0.75 {
		t.Errorf("Sparsity = %v", h.Sparsity())
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestFromCountsCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	h := FromCounts(src)
	src[0] = 99
	if h.Count(0) != 1 {
		t.Error("FromCounts aliases input")
	}
	hi := FromInts([]int{4, 5})
	if hi.Count(1) != 5 {
		t.Error("FromInts wrong")
	}
}

func TestZeroBins(t *testing.T) {
	h := FromCounts([]float64{0, 1, 0, 2, 0})
	z := h.ZeroBins()
	want := []int{0, 2, 4}
	if len(z) != len(want) {
		t.Fatalf("ZeroBins = %v", z)
	}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("ZeroBins = %v, want %v", z, want)
		}
	}
}

func TestRangeSum(t *testing.T) {
	h := FromCounts([]float64{1, 2, 3, 4})
	if got := h.RangeSum(1, 2); got != 5 {
		t.Errorf("RangeSum(1,2) = %v", got)
	}
	if got := h.RangeSum(0, 3); got != 10 {
		t.Errorf("RangeSum(0,3) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad range did not panic")
		}
	}()
	h.RangeSum(2, 1)
}

func TestArithmeticAndDistance(t *testing.T) {
	a := FromCounts([]float64{3, 0, 5})
	b := FromCounts([]float64{1, 2, 5})
	if d := a.L1Distance(b); d != 4 {
		t.Errorf("L1Distance = %v", d)
	}
	s := a.Sub(b)
	if s.Count(0) != 2 || s.Count(1) != -2 || s.Count(2) != 0 {
		t.Errorf("Sub = %v", s.Counts())
	}
	sum := a.AddHist(b)
	if sum.Count(0) != 4 || sum.Count(1) != 2 {
		t.Errorf("AddHist = %v", sum.Counts())
	}
	s.ClampNonNegative()
	if s.Count(1) != 0 {
		t.Error("ClampNonNegative failed")
	}
	if !a.Dominates(FromCounts([]float64{3, 0, 4})) {
		t.Error("Dominates false negative")
	}
	if a.Dominates(b) {
		t.Error("Dominates false positive")
	}
}

func TestCloneDeep(t *testing.T) {
	a := FromCounts([]float64{1, 2})
	a.SetLabels([]string{"x", "y"})
	c := a.Clone()
	c.SetCount(0, 9)
	if a.Count(0) != 1 {
		t.Error("Clone aliases counts")
	}
	if c.Label(1) != "y" {
		t.Error("Clone lost labels")
	}
}

func TestCategoricalDomain(t *testing.T) {
	d := NewCategoricalDomain("AP", []string{"ap1", "ap2", "ap3"})
	if d.Size() != 3 || d.Attr() != "AP" {
		t.Fatal("domain metadata wrong")
	}
	r := dataset.NewRecord(visitSchema(), dataset.Str("ap2"), dataset.Int(0), dataset.Bool(false))
	if d.BinOf(r) != 1 {
		t.Errorf("BinOf(ap2) = %d", d.BinOf(r))
	}
	out := dataset.NewRecord(visitSchema(), dataset.Str("nope"), dataset.Int(0), dataset.Bool(false))
	if d.BinOf(out) != -1 {
		t.Error("out-of-domain value not rejected")
	}
}

func TestCategoricalDomainDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	NewCategoricalDomain("A", []string{"x", "x"})
}

func TestNumericDomain(t *testing.T) {
	d := NewNumericDomain("Hour", 0, 6, 4) // [0,6) [6,12) [12,18) [18,24)
	if d.Size() != 4 {
		t.Fatal("size wrong")
	}
	r := dataset.NewRecord(visitSchema(), dataset.Str("a"), dataset.Int(9), dataset.Bool(false))
	if d.BinOf(r) != 1 {
		t.Errorf("BinOf(hour 9) = %d", d.BinOf(r))
	}
	r = dataset.NewRecord(visitSchema(), dataset.Str("a"), dataset.Int(24), dataset.Bool(false))
	if d.BinOf(r) != -1 {
		t.Error("hour 24 should be out of domain")
	}
	labels := d.Labels()
	if labels[0] != "[0,6)" {
		t.Errorf("label = %q", labels[0])
	}
}

func TestDomainFromTable(t *testing.T) {
	d := DomainFromTable(visitTable(), "AP")
	if d.Size() != 3 {
		t.Fatalf("Size = %d", d.Size())
	}
	labels := d.Labels()
	if labels[0] != "ap1" || labels[2] != "ap3" {
		t.Errorf("labels = %v", labels)
	}
}

func TestQuery1D(t *testing.T) {
	tb := visitTable()
	q := NewQuery(nil, DomainFromTable(tb, "AP"))
	h := q.Eval(tb)
	if h.Count(0) != 3 || h.Count(1) != 1 || h.Count(2) != 1 {
		t.Errorf("counts = %v", h.Counts())
	}
	if h.Scale() != float64(tb.Len()) {
		t.Errorf("mass %v != table size %d", h.Scale(), tb.Len())
	}
	if h.Label(0) != "ap1" {
		t.Errorf("label = %q", h.Label(0))
	}
}

func TestQueryWithCondition(t *testing.T) {
	tb := visitTable()
	q := NewQuery(dataset.Cmp("Hour", dataset.OpLe, dataset.Int(9)), DomainFromTable(tb, "AP"))
	h := q.Eval(tb)
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(2) != 0 {
		t.Errorf("counts = %v", h.Counts())
	}
}

func TestQuery2D(t *testing.T) {
	tb := visitTable()
	ap := DomainFromTable(tb, "AP")
	hour := NewNumericDomain("Hour", 0, 12, 2)
	q := NewQuery(nil, ap, hour)
	if q.Bins() != 6 {
		t.Fatalf("Bins = %d", q.Bins())
	}
	h := q.Eval(tb)
	// ap1 morning: rows at hour 9,9,10 -> bin (0,0) = 3
	if h.Count(0) != 3 {
		t.Errorf("bin(ap1, morning) = %v", h.Count(0))
	}
	// ap3 at 23 -> bin index 2*2+1 = 5
	if h.Count(5) != 1 {
		t.Errorf("bin(ap3, evening) = %v", h.Count(5))
	}
	if h.Scale() != 5 {
		t.Errorf("mass = %v", h.Scale())
	}
}

func TestQueryBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0-dim query did not panic")
		}
	}()
	NewQuery(nil)
}

func TestEvalSplitPartitions(t *testing.T) {
	tb := visitTable()
	pol := dataset.NewPolicy("sens-flag", dataset.Cmp("Sensitive", dataset.OpEq, dataset.Bool(true)))
	q := NewQuery(nil, DomainFromTable(tb, "AP"))
	x, xns := q.EvalSplit(tb, pol)
	// x = xs + xns must hold bin-wise.
	sens, _ := tb.Split(pol)
	xs := q.Eval(sens)
	for i := 0; i < x.Bins(); i++ {
		if x.Count(i) != xs.Count(i)+xns.Count(i) {
			t.Fatalf("bin %d: %v != %v + %v", i, x.Count(i), xs.Count(i), xns.Count(i))
		}
	}
	if !x.Dominates(xns) {
		t.Error("full histogram does not dominate non-sensitive histogram")
	}
}

// Property: for random tables, group counts sum to table size and the
// policy split partitions mass exactly.
func TestQueryMassConservationQuick(t *testing.T) {
	s := visitSchema()
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		tb := dataset.NewTable(s)
		for i := 0; i < int(n%100)+1; i++ {
			tb.AppendValues(
				dataset.Str([]string{"ap1", "ap2", "ap3", "ap4"}[rng.Intn(4)]),
				dataset.Int(int64(rng.Intn(24))),
				dataset.Bool(rng.Intn(2) == 0),
			)
		}
		q := NewQuery(nil, NewCategoricalDomain("AP", []string{"ap1", "ap2", "ap3", "ap4"}))
		x := q.Eval(tb)
		if x.Scale() != float64(tb.Len()) {
			return false
		}
		pol := dataset.NewPolicy("s", dataset.Cmp("Sensitive", dataset.OpEq, dataset.Bool(true)))
		full, xns := q.EvalSplit(tb, pol)
		sens, _ := tb.Split(pol)
		xs := q.Eval(sens)
		return full.L1Distance(xs.AddHist(xns)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseCounts(t *testing.T) {
	s := make(SparseCounts)
	s.AddKey("a>b>c", 2)
	s.AddKey("a>b>c", 1)
	s.AddKey("x>y>z", 5)
	if s.Scale() != 8 {
		t.Errorf("Scale = %v", s.Scale())
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a>b>c" {
		t.Errorf("Keys = %v", keys)
	}
	c := s.Clone()
	c.AddKey("a>b>c", 1)
	if s["a>b>c"] != 3 {
		t.Error("Clone aliases map")
	}
}

func TestSparsityExtremes(t *testing.T) {
	if got := New(10).Sparsity(); got != 1 {
		t.Errorf("empty sparsity = %v", got)
	}
	h := FromCounts([]float64{1, 1, 1})
	if got := h.Sparsity(); got != 0 {
		t.Errorf("full sparsity = %v", got)
	}
	if math.IsNaN(h.Sparsity()) {
		t.Error("NaN sparsity")
	}
}
