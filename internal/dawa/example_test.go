package dawa_test

import (
	"fmt"

	"osdp/internal/dawa"
	"osdp/internal/histogram"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// DAWAz (Algorithm 3) upgrades DAWA with one-sided zero detection: on
// sparse data the detected empty region comes out exactly zero.
func ExampleDAWAz() {
	// A sparse histogram whose right half is empty; 90% of records opted in.
	x := histogram.New(64)
	xns := histogram.New(64)
	for i := 0; i < 16; i++ {
		x.SetCount(i, 500)
		xns.SetCount(i, 450)
	}

	est := dawa.DAWAz(x, xns, 1.0 /* ε */, 0.1 /* ρ */, noise.NewSource(3))

	emptyMass := 0.0
	for i := 16; i < 64; i++ {
		emptyMass += est.Count(i)
	}
	fmt.Println("mass on empty bins:", emptyMass)
	fmt.Println("MRE below 0.1:", metrics.MRE(x, est, 1) < 0.1)
	// Output:
	// mass on empty bins: 0
	// MRE below 0.1: true
}
