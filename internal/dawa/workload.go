package dawa

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Fit adapts DAWA to core.WorkloadEstimator: one ε-DP release of the
// workload domain's histogram whose partition structure makes bucket
// noise cancel inside any range covering whole buckets — DAWA's
// original target workload. 2-D domains are fitted over the flattened
// row-major vector (the partition DP sees a 1-D domain; rectangle
// answers still come from the synopsis). Unlike Estimate it returns
// errors instead of panicking, because the serving layer calls it
// after the budget is charged.
func (a *Algorithm) Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("dawa: eps must be positive, got %g", eps)
	}
	if a.PartitionRatio <= 0 || a.PartitionRatio >= 1 {
		return nil, fmt.Errorf("dawa: partition ratio %g must lie in (0, 1)", a.PartitionRatio)
	}
	est, _ := a.Estimate(x, eps, src)
	return est, nil
}
