// Package dawa implements the DAWA algorithm (Li, Hay, Miklau et al.,
// "A Data- and Workload-Aware Algorithm for Range Queries Under
// Differential Privacy"), the state-of-the-art DP histogram baseline the
// paper evaluates against (§5.2, §6.3.3), and its OSDP upgrade DAWAz
// (Algorithm 3).
//
// DAWA is a two-phase algorithm:
//
//  1. Partitioning (budget ε₁ = ρ·ε): privately choose a partition of the
//     domain into contiguous buckets whose contents are close to uniform.
//     This implementation releases one ε₁-DP noisy histogram
//     x̃ = x + Lap(2/ε₁)ⁿ and then optimises the partition *non-privately*
//     on x̃ — any partition derived from x̃ is post-processing, so phase 1
//     costs exactly ε₁. Like the original DAWA, the optimiser is a
//     dynamic program over all intervals with arbitrary start and
//     power-of-two length; its per-bucket objective is the bucket's
//     within-bucket squared deviation (debiased by the deviation pure
//     noise would exhibit) plus the expected squared phase-2 noise
//     8/(ε₂²·L) of estimating that bucket — so isolating a genuine spike
//     pays one extra bucket but saves its entire deviation, and merging a
//     flat or empty run amortises one noisy total over many bins. (The
//     original optimises the analogous L1 objective over noisy interval
//     costs; the squared-deviation form admits O(1) interval costs via
//     prefix sums, and the noisy-histogram formulation gives the same
//     privacy accounting with a simpler argument — see DESIGN.md.)
//
//  2. Bucket estimation (budget ε₂ = (1−ρ)·ε): release each chosen
//     bucket's total with Lap(2/ε₂) noise and spread it uniformly across
//     the bucket's bins ("uniform expansion").
//
// Both phases compose sequentially to ε-DP, which by Lemma 3.1 is also
// (P, ε)-OSDP for every policy P.
package dawa

import (
	"math"

	"osdp/internal/core"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// DefaultPartitionBudgetRatio is the fraction of the budget DAWA spends on
// phase 1; the DAWA authors recommend 25%.
const DefaultPartitionBudgetRatio = 0.25

// Algorithm is a configured DAWA instance. It satisfies
// core.PartitionedEstimator so it can be plugged into the §5.2 recipe.
type Algorithm struct {
	// PartitionRatio is the phase-1 budget share ρ_dawa in (0, 1).
	PartitionRatio float64
}

// New returns a DAWA instance with the default budget split.
func New() *Algorithm {
	return &Algorithm{PartitionRatio: DefaultPartitionBudgetRatio}
}

// Name implements core.PartitionedEstimator.
func (a *Algorithm) Name() string { return "DAWA" }

// Estimate runs both phases on x under eps-DP and returns the private
// estimate along with the partition chosen in phase 1.
func (a *Algorithm) Estimate(x *histogram.Histogram, eps float64, src noise.Source) (*histogram.Histogram, []core.Partition) {
	if eps <= 0 {
		panic("dawa: eps must be positive")
	}
	if a.PartitionRatio <= 0 || a.PartitionRatio >= 1 {
		panic("dawa: partition ratio must lie in (0, 1)")
	}
	eps1 := eps * a.PartitionRatio
	eps2 := eps - eps1
	parts := a.partition(x, eps1, eps2, src)
	est := estimateBuckets(x, parts, eps2, src)
	return est, parts
}

// partition implements phase 1: release the ε₁-DP noisy histogram, then
// run the interval dynamic program on it.
//
// Bucket cost model, in expected squared error per bucket [lo, hi] of
// length L: the uniform-expansion error is the bucket's true squared
// deviation SSE = Σ(x_i − mean)², estimated from the noisy histogram as
// SSE(x̃) − (L−1)·2b² (pure Lap(b) noise inflates SSE by (L−1)·Var =
// (L−1)·2b² in expectation), clamped at 0; the phase-2 estimation error is
// E[(Lap(2/ε₂)/L)²]·L = 8/(ε₂²·L). The DP chooses the partition with the
// minimum total estimated cost over cut points, with bucket lengths
// restricted to powers of two exactly as in the original DAWA.
func (a *Algorithm) partition(x *histogram.Histogram, eps1, eps2 float64, src noise.Source) []core.Partition {
	n := x.Bins()
	b := 2.0 / eps1
	// Prefix sums of x̃ and x̃² give O(1) interval SSE.
	prefix1 := make([]float64, n+1)
	prefix2 := make([]float64, n+1)
	for i := 0; i < n; i++ {
		v := x.Count(i) + noise.Laplace(src, b)
		prefix1[i+1] = prefix1[i] + v
		prefix2[i+1] = prefix2[i] + v*v
	}
	noiseVar := 2 * b * b
	bucketNoise := 8 / (eps2 * eps2)
	// splitPenalty charges every bucket a slice of the cost-estimate noise
	// so the DP's min-selection cannot profit from noise dips alone;
	// without it, zero runs fragment whenever a local SSE estimate happens
	// to dip negative.
	splitPenalty := noiseVar
	// sseGuard is one standard deviation of the SSE noise at length L
	// (Var[ΣLap²] = 20·L·b⁴); subtracting it makes flat regions read as
	// zero structure with high probability while genuine structure, which
	// grows linearly in L, still clears it.
	sseGuard := math.Sqrt(20) * b * b
	cost := func(lo, hi int) float64 { // inclusive bin indices
		l := float64(hi - lo + 1)
		s1 := prefix1[hi+1] - prefix1[lo]
		s2 := prefix2[hi+1] - prefix2[lo]
		sse := s2 - s1*s1/l
		sse -= (l-1)*noiseVar + math.Sqrt(l)*sseGuard
		if sse < 0 {
			sse = 0
		}
		return sse + bucketNoise/l + splitPenalty
	}

	// best[j]: minimal cost of partitioning bins [0, j); cut lengths are
	// powers of two.
	best := make([]float64, n+1)
	from := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		for length := 1; length <= j; length *= 2 {
			if c := best[j-length] + cost(j-length, j-1); c < best[j] {
				best[j] = c
				from[j] = j - length
			}
		}
	}
	var parts []core.Partition
	for j := n; j > 0; j = from[j] {
		parts = append(parts, core.Partition{Lo: from[j], Hi: j - 1})
	}
	// Reverse into ascending order.
	for i, k := 0, len(parts)-1; i < k; i, k = i+1, k-1 {
		parts[i], parts[k] = parts[k], parts[i]
	}
	return parts
}

// deviation is the phase-1 uniformity cost of interval [lo, hi]:
// Σ |x_i − mean|.
func deviation(x *histogram.Histogram, lo, hi int) float64 {
	mean := x.RangeSum(lo, hi) / float64(hi-lo+1)
	var s float64
	for i := lo; i <= hi; i++ {
		s += math.Abs(x.Count(i) - mean)
	}
	return s
}

// estimateBuckets implements phase 2: noisy totals with uniform expansion.
// Disjoint bucket totals form a histogram of sensitivity 2.
func estimateBuckets(x *histogram.Histogram, parts []core.Partition, eps2 float64, src noise.Source) *histogram.Histogram {
	out := histogram.New(x.Bins())
	scale := 2.0 / eps2
	for _, p := range parts {
		total := x.RangeSum(p.Lo, p.Hi) + noise.Laplace(src, scale)
		if total < 0 {
			total = 0
		}
		per := total / float64(p.Size())
		for i := p.Lo; i <= p.Hi; i++ {
			out.SetCount(i, per)
		}
	}
	return out
}

// DAWAz is Algorithm 3: the §5.2 recipe instantiated with DAWA. x is the
// full histogram, xns the non-sensitive histogram, eps the total budget,
// rho the share spent on OSDP zero detection (the paper uses 0.1). The
// result satisfies (P, ε)-OSDP.
func DAWAz(x, xns *histogram.Histogram, eps, rho float64, src noise.Source) *histogram.Histogram {
	return core.Recipe(New(), x, xns, eps, core.RecipeConfig{Rho: rho}, src)
}

// DAWAzWithDetector is DAWAz with an explicit zero detector, used by the
// ablation benchmarks to compare RR-based and Laplace-based detection.
func DAWAzWithDetector(x, xns *histogram.Histogram, eps, rho float64, detect core.ZeroDetector, src noise.Source) *histogram.Histogram {
	return core.Recipe(New(), x, xns, eps, core.RecipeConfig{Rho: rho, Detect: detect}, src)
}
