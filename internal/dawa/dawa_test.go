package dawa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/core"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func uniformHist(d int, v float64) *histogram.Histogram {
	h := histogram.New(d)
	for i := 0; i < d; i++ {
		h.SetCount(i, v)
	}
	return h
}

func checkIsCover(t *testing.T, parts []core.Partition, n int) {
	t.Helper()
	covered := make([]int, n)
	for _, p := range parts {
		if p.Lo < 0 || p.Hi >= n || p.Lo > p.Hi {
			t.Fatalf("invalid partition %+v over %d bins", p, n)
		}
		for i := p.Lo; i <= p.Hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("bin %d covered %d times", i, c)
		}
	}
}

func TestPartitionIsDisjointCover(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100, 1024} {
		x := histogram.New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			x.SetCount(i, float64(rng.Intn(100)))
		}
		_, parts := New().Estimate(x, 1.0, noise.NewSource(int64(n)))
		checkIsCover(t, parts, n)
	}
}

func TestUniformHistogramMergesIntoFewBuckets(t *testing.T) {
	// A perfectly uniform histogram should collapse to (near) one bucket:
	// zero deviation everywhere, so the noise cost of many buckets loses.
	x := uniformHist(256, 50)
	_, parts := New().Estimate(x, 1.0, noise.NewSource(1))
	if len(parts) > 8 {
		t.Errorf("uniform histogram split into %d buckets, want few", len(parts))
	}
}

func TestSpikyHistogramSplits(t *testing.T) {
	// Alternating 0 / 1000 has huge deviation at every merge level, so the
	// partition should stay fine-grained.
	d := 128
	x := histogram.New(d)
	for i := 0; i < d; i += 2 {
		x.SetCount(i, 1000)
	}
	_, parts := New().Estimate(x, 5.0, noise.NewSource(2))
	if len(parts) < d/4 {
		t.Errorf("spiky histogram merged into %d buckets, want near %d", len(parts), d)
	}
}

func TestEstimateNonNegativeAndRightArity(t *testing.T) {
	x := uniformHist(100, 10)
	est, _ := New().Estimate(x, 0.5, noise.NewSource(3))
	if est.Bins() != 100 {
		t.Fatalf("arity = %d", est.Bins())
	}
	for i := 0; i < est.Bins(); i++ {
		if est.Count(i) < 0 {
			t.Fatalf("negative estimate %v", est.Count(i))
		}
	}
}

// On a smooth (sorted) histogram DAWA should beat the plain Laplace
// mechanism — the behaviour behind Nettrace's regret drop in Fig 9.
func TestDAWABeatsLaplaceOnSortedData(t *testing.T) {
	// Long flat runs with large per-bin counts, the regime of the DPBench
	// datasets (per-bin counts in the thousands) where partition structure
	// is detectable even at small ε.
	d := 512
	x := histogram.New(d)
	for i := 0; i < d; i++ {
		x.SetCount(i, float64(i/32)*200)
	}
	src := noise.NewSource(4)
	const eps = 0.1
	const trials = 20
	var dawaErr, lapErr float64
	for i := 0; i < trials; i++ {
		est, _ := New().Estimate(x, eps, src)
		dawaErr += metrics.L1(x, est)
		lapErr += metrics.L1(x, mechanism.LaplaceHistogram(x, eps, src))
	}
	if dawaErr >= lapErr {
		t.Errorf("DAWA L1 %v not better than Laplace %v on sorted data", dawaErr/trials, lapErr/trials)
	}
}

// On a uniform-random (incompressible) histogram with large counts and a
// generous budget, plain Laplace should be at least competitive — DAWA's
// advantage disappears, matching the benchmark study's findings.
func TestDAWANoWorseThanTwiceLaplaceOnRandomData(t *testing.T) {
	d := 256
	rng := rand.New(rand.NewSource(5))
	x := histogram.New(d)
	for i := 0; i < d; i++ {
		x.SetCount(i, float64(rng.Intn(2000)))
	}
	src := noise.NewSource(6)
	const eps = 1.0
	const trials = 20
	var dawaErr, lapErr float64
	for i := 0; i < trials; i++ {
		est, _ := New().Estimate(x, eps, src)
		dawaErr += metrics.L1(x, est)
		lapErr += metrics.L1(x, mechanism.LaplaceHistogram(x, eps, src))
	}
	if dawaErr > 100*lapErr {
		t.Errorf("DAWA catastrophically worse on random data: %v vs %v", dawaErr/trials, lapErr/trials)
	}
}

func TestEstimatePanicsOnBadInputs(t *testing.T) {
	x := uniformHist(4, 1)
	if err := shouldPanic(func() { New().Estimate(x, 0, noise.NewSource(1)) }); !err {
		t.Error("eps=0 did not panic")
	}
	bad := &Algorithm{PartitionRatio: 1.5}
	if err := shouldPanic(func() { bad.Estimate(x, 1, noise.NewSource(1)) }); !err {
		t.Error("bad ratio did not panic")
	}
}

func shouldPanic(f func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	f()
	return false
}

func TestDAWAzZeroesEmptyRegion(t *testing.T) {
	// Histogram with an empty right half and non-sensitive data covering
	// the left half: DAWAz should output exact zeros on the right.
	d := 64
	x := histogram.New(d)
	xns := histogram.New(d)
	for i := 0; i < d/2; i++ {
		x.SetCount(i, 300)
		xns.SetCount(i, 250)
	}
	src := noise.NewSource(7)
	out := DAWAz(x, xns, 1.0, 0.1, src)
	for i := d / 2; i < d; i++ {
		if out.Count(i) != 0 {
			t.Fatalf("empty bin %d got %v", i, out.Count(i))
		}
	}
}

// DAWAz at small ε should beat DAWA on sparse histograms — the paper's
// headline low-dimensional result (Fig 4b, Fig 9a).
func TestDAWAzBeatsDAWAOnSparseData(t *testing.T) {
	d := 512
	x := histogram.New(d)
	xns := histogram.New(d)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 25; i++ { // 5% of bins occupied
		bin := rng.Intn(d)
		c := float64(rng.Intn(400) + 100)
		x.SetCount(bin, c)
		xns.SetCount(bin, c*0.9)
	}
	src := noise.NewSource(9)
	const eps = 0.1
	const trials = 15
	var dz, dw float64
	for i := 0; i < trials; i++ {
		dz += metrics.MRE(x, DAWAz(x, xns, eps, 0.1, src), 1)
		est, _ := New().Estimate(x, eps, src)
		dw += metrics.MRE(x, est, 1)
	}
	if dz >= dw {
		t.Errorf("DAWAz MRE %v not better than DAWA %v on sparse data", dz/trials, dw/trials)
	}
}

func TestDAWAzWithDetectorUsesCustomDetector(t *testing.T) {
	called := false
	det := func(xns *histogram.Histogram, eps float64, src noise.Source) []int {
		called = true
		return core.LaplaceZeroDetector(xns, eps, src)
	}
	x := uniformHist(16, 10)
	DAWAzWithDetector(x, x.Clone(), 1, 0.1, det, noise.NewSource(10))
	if !called {
		t.Error("custom detector not invoked")
	}
}

// Property: the partition is always a disjoint cover regardless of data,
// domain size, or budget.
func TestPartitionCoverQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(sizeRaw, epsRaw uint8) bool {
		n := int(sizeRaw)%200 + 1
		eps := float64(epsRaw%30)/10 + 0.1
		x := histogram.New(n)
		for i := 0; i < n; i++ {
			x.SetCount(i, float64(rng.Intn(50)))
		}
		_, parts := New().Estimate(x, eps, noise.NewSource(int64(sizeRaw)*7+1))
		covered := make([]int, n)
		for _, p := range parts {
			if p.Lo < 0 || p.Hi >= n || p.Lo > p.Hi {
				return false
			}
			for i := p.Lo; i <= p.Hi; i++ {
				covered[i]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Deviation of a constant interval is zero; of a two-point spread it is
// the L1 distance to the mean.
func TestDeviation(t *testing.T) {
	x := histogram.FromCounts([]float64{5, 5, 5, 5})
	if got := deviation(x, 0, 3); got != 0 {
		t.Errorf("uniform deviation = %v", got)
	}
	y := histogram.FromCounts([]float64{0, 10})
	if got := deviation(y, 0, 1); got != 10 {
		t.Errorf("two-point deviation = %v, want 10", got)
	}
	if math.IsNaN(deviation(x, 2, 2)) {
		t.Error("single-bin deviation NaN")
	}
}
