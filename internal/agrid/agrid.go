// Package agrid implements the adaptive-grid algorithm for 2-dimensional
// histograms (Qardaji, Yang & Li, "Differentially private grids for
// geospatial data", ICDE 2013 — the paper's AGrid reference for 2-D
// histograms in §5.2) and AGridz, its OSDP upgrade via the §5.2 recipe.
//
// AGrid publishes a 2-D histogram in two passes:
//
//  1. Coarse grid (budget α·ε): overlay an m₁×m₁ grid, release each coarse
//     cell's count with Laplace noise. m₁ grows with √(N·ε) so denser data
//     affords finer top-level resolution.
//  2. Adaptive refinement (budget (1−α)·ε): each coarse cell is subdivided
//     into m₂×m₂ subcells with m₂ ∝ √(N′·(1−α)·ε), where N′ is the cell's
//     noisy coarse count — dense regions get fine subdivision, empty ones
//     stay whole. Subcell counts are released with Laplace noise and
//     scaled to agree with the coarse estimate (a simple consistency
//     step), then spread uniformly over their bins.
//
// The released leaf cells form disjoint bin groups, so the §5.2 recipe
// applies exactly as for DAWA and AHP: detect the zero set from the
// non-sensitive histogram with ρ·ε, zero those bins, and rescale within
// each leaf cell.
package agrid

import (
	"math"

	"osdp/internal/core"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Algorithm is a configured AGrid instance.
type Algorithm struct {
	// Alpha is the share of ε spent on the coarse grid (the authors
	// recommend 0.5).
	Alpha float64
	// C1, C2 are the grid-sizing constants (authors: c₁≈10, c₂≈5).
	C1, C2 float64
}

// New returns an AGrid with the authors' recommended constants.
func New() *Algorithm {
	return &Algorithm{Alpha: 0.5, C1: 10, C2: 5}
}

// Name identifies the algorithm in reports.
func (a *Algorithm) Name() string { return "AGrid" }

// Estimate releases an eps-DP estimate of the rows×cols histogram x
// (flattened row-major) along with the leaf cells (disjoint bin groups)
// the adaptive grid produced.
func (a *Algorithm) Estimate(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, [][]int) {
	if rows <= 0 || cols <= 0 || rows*cols != x.Bins() {
		panic("agrid: rows×cols must equal the histogram arity")
	}
	if eps <= 0 {
		panic("agrid: eps must be positive")
	}
	if a.Alpha <= 0 || a.Alpha >= 1 {
		panic("agrid: alpha must lie in (0, 1)")
	}
	eps1 := a.Alpha * eps
	eps2 := eps - eps1

	// Coarse grid size m₁ = max(10, ¼·⌈√(N·ε/c₁)⌉), clamped to the domain.
	n := x.Scale()
	m1 := int(math.Ceil(math.Sqrt(n*eps/a.C1)) / 4)
	if m1 < 10 {
		m1 = 10
	}
	gridRows := minInt(m1, rows)
	gridCols := minInt(m1, cols)

	out := histogram.New(x.Bins())
	var leaves [][]int
	for _, cell := range tile(rows, cols, gridRows, gridCols) {
		bins := cell.bins(cols)
		var total float64
		for _, b := range bins {
			total += x.Count(b)
		}
		noisyTotal := total + noise.Laplace(src, 2/eps1)
		if noisyTotal < 0 {
			noisyTotal = 0
		}

		// Refinement: m₂ = ⌈√(N′·ε₂/c₂)⌉ per side.
		m2 := int(math.Ceil(math.Sqrt(noisyTotal * eps2 / a.C2)))
		if m2 < 1 {
			m2 = 1
		}
		subRows := minInt(m2, cell.hiR-cell.loR+1)
		subCols := minInt(m2, cell.hiC-cell.loC+1)
		subCells := tileRegion(cell, subRows, subCols)

		// Release subcell counts and rescale them to the coarse estimate.
		subTotals := make([]float64, len(subCells))
		var subSum float64
		for i, sc := range subCells {
			var t float64
			for _, b := range sc.bins(cols) {
				t += x.Count(b)
			}
			t += noise.Laplace(src, 2/eps2)
			if t < 0 {
				t = 0
			}
			subTotals[i] = t
			subSum += t
		}
		scale := 1.0
		if subSum > 0 {
			scale = noisyTotal / subSum
		}
		for i, sc := range subCells {
			bins := sc.bins(cols)
			per := subTotals[i] * scale / float64(len(bins))
			for _, b := range bins {
				out.SetCount(b, per)
			}
			leaves = append(leaves, bins)
		}
	}
	return out, leaves
}

// region is a rectangle of bins [loR, hiR]×[loC, hiC], inclusive.
type region struct {
	loR, hiR, loC, hiC int
}

func (r region) bins(cols int) []int {
	out := make([]int, 0, (r.hiR-r.loR+1)*(r.hiC-r.loC+1))
	for i := r.loR; i <= r.hiR; i++ {
		for j := r.loC; j <= r.hiC; j++ {
			out = append(out, i*cols+j)
		}
	}
	return out
}

// tile splits a rows×cols domain into an nR×nC grid of near-equal regions.
func tile(rows, cols, nR, nC int) []region {
	return tileRegion(region{0, rows - 1, 0, cols - 1}, nR, nC)
}

// tileRegion splits a region into nR×nC near-equal subregions.
func tileRegion(r region, nR, nC int) []region {
	rowEdges := edges(r.loR, r.hiR, nR)
	colEdges := edges(r.loC, r.hiC, nC)
	out := make([]region, 0, nR*nC)
	for i := 0; i+1 < len(rowEdges); i++ {
		for j := 0; j+1 < len(colEdges); j++ {
			out = append(out, region{
				loR: rowEdges[i], hiR: rowEdges[i+1] - 1,
				loC: colEdges[j], hiC: colEdges[j+1] - 1,
			})
		}
	}
	return out
}

// edges returns n+1 cut points splitting [lo, hi] into n near-equal runs.
func edges(lo, hi, n int) []int {
	size := hi - lo + 1
	if n > size {
		n = size
	}
	out := make([]int, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + i*size/n
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AGridz applies the §5.2 recipe to AGrid: zero detection from the
// non-sensitive histogram with ρ·ε, AGrid with (1−ρ)·ε, then zeroing and
// per-leaf-cell mass rescaling. Satisfies (P, ε)-OSDP by sequential
// composition and post-processing.
func AGridz(x, xns *histogram.Histogram, rows, cols int, eps, rho float64, src noise.Source) *histogram.Histogram {
	if x.Bins() != xns.Bins() {
		panic("agrid: x and xns disagree on domain size")
	}
	epsZero, epsDP := core.SplitBudget(eps, rho)
	zeros := core.RRZeroDetector(xns, epsZero, src)
	est, leaves := New().Estimate(x, rows, cols, epsDP, src)
	return core.ApplyZeroSetGroups(est, leaves, zeros)
}
