package agrid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

func checkLeavesPartition(t *testing.T, leaves [][]int, bins int) {
	t.Helper()
	seen := make([]int, bins)
	for _, leaf := range leaves {
		if len(leaf) == 0 {
			t.Fatal("empty leaf cell")
		}
		for _, b := range leaf {
			if b < 0 || b >= bins {
				t.Fatalf("bin %d out of range", b)
			}
			seen[b]++
		}
	}
	for b, c := range seen {
		if c != 1 {
			t.Fatalf("bin %d covered %d times", b, c)
		}
	}
}

func clusteredHist(rows, cols int, rng *rand.Rand) *histogram.Histogram {
	h := histogram.New(rows * cols)
	// A dense cluster in the top-left quadrant, emptiness elsewhere.
	for i := 0; i < rows/2; i++ {
		for j := 0; j < cols/2; j++ {
			h.SetCount(i*cols+j, float64(rng.Intn(500)+200))
		}
	}
	return h
}

func TestLeavesPartitionDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{8, 8}, {64, 24}, {5, 37}, {1, 16}} {
		rows, cols := dims[0], dims[1]
		x := histogram.New(rows * cols)
		for i := 0; i < x.Bins(); i++ {
			x.SetCount(i, float64(rng.Intn(100)))
		}
		_, leaves := New().Estimate(x, rows, cols, 1.0, noise.NewSource(int64(rows*cols)))
		checkLeavesPartition(t, leaves, rows*cols)
	}
}

func TestAdaptiveRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredHist(64, 64, rng)
	_, leaves := New().Estimate(x, 64, 64, 1.0, noise.NewSource(3))
	// Dense quadrant should be covered by many small leaves, empty region
	// by few large ones: compare mean leaf size between the two regions.
	var denseLeaves, emptyLeaves int
	for _, leaf := range leaves {
		b := leaf[0]
		r, c := b/64, b%64
		if r < 32 && c < 32 {
			denseLeaves++
		} else if r >= 32 && c >= 32 {
			emptyLeaves++
		}
	}
	if denseLeaves <= emptyLeaves {
		t.Errorf("dense region has %d leaves vs empty region %d; refinement not adaptive",
			denseLeaves, emptyLeaves)
	}
}

func TestEstimateNonNegativeMassPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clusteredHist(32, 32, rng)
	est, _ := New().Estimate(x, 32, 32, 1.0, noise.NewSource(5))
	var mass float64
	for i := 0; i < est.Bins(); i++ {
		if est.Count(i) < 0 {
			t.Fatalf("negative estimate %v", est.Count(i))
		}
		mass += est.Count(i)
	}
	if rel := mass / x.Scale(); rel < 0.9 || rel > 1.1 {
		t.Errorf("mass ratio %v, want ~1", rel)
	}
}

func TestAGridBeatsLaplaceOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := clusteredHist(64, 64, rng)
	src := noise.NewSource(7)
	const eps = 0.1
	const trials = 10
	var ag, lap float64
	for i := 0; i < trials; i++ {
		est, _ := New().Estimate(x, 64, 64, eps, src)
		ag += metrics.L1(x, est)
		lap += metrics.L1(x, mechanism.LaplaceHistogram(x, eps, src))
	}
	if ag >= lap {
		t.Errorf("AGrid L1 %v not better than Laplace %v on clustered data", ag/trials, lap/trials)
	}
}

func TestEstimatePanics(t *testing.T) {
	x := histogram.New(12)
	for _, f := range []func(){
		func() { New().Estimate(x, 3, 5, 1, noise.NewSource(1)) }, // arity mismatch
		func() { New().Estimate(x, 3, 4, 0, noise.NewSource(1)) },
		func() { (&Algorithm{Alpha: 1.5, C1: 10, C2: 5}).Estimate(x, 3, 4, 1, noise.NewSource(1)) },
		func() { AGridz(histogram.New(4), histogram.New(6), 2, 2, 1, 0.1, noise.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAGridzZeroesEmptyRegion(t *testing.T) {
	rows, cols := 16, 16
	x := histogram.New(rows * cols)
	xns := histogram.New(rows * cols)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			x.SetCount(i*cols+j, 300)
			xns.SetCount(i*cols+j, 260)
		}
	}
	out := AGridz(x, xns, rows, cols, 1.0, 0.1, noise.NewSource(8))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i < 4 && j < 4 {
				continue
			}
			if v := out.Count(i*cols + j); v != 0 {
				t.Fatalf("empty bin (%d,%d) got %v", i, j, v)
			}
		}
	}
}

func TestAGridzBeatsAGridOnSparseData(t *testing.T) {
	rows, cols := 32, 32
	rng := rand.New(rand.NewSource(9))
	x := histogram.New(rows * cols)
	xns := histogram.New(rows * cols)
	for i := 0; i < 20; i++ {
		b := rng.Intn(rows * cols)
		c := float64(rng.Intn(300) + 100)
		x.SetCount(b, c)
		xns.SetCount(b, c*0.9)
	}
	src := noise.NewSource(10)
	const eps = 0.1
	const trials = 10
	var withZ, plain float64
	for t := 0; t < trials; t++ {
		withZ += metrics.MRE(x, AGridz(x, xns, rows, cols, eps, 0.1, src), 1)
		est, _ := New().Estimate(x, rows, cols, eps, src)
		plain += metrics.MRE(x, est, 1)
	}
	if withZ >= plain {
		t.Errorf("AGridz MRE %v not better than AGrid %v", withZ/trials, plain/trials)
	}
}

// Property: leaves partition the domain for arbitrary shapes and budgets.
func TestLeafPartitionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(rRaw, cRaw, epsRaw uint8) bool {
		rows := int(rRaw%30) + 1
		cols := int(cRaw%30) + 1
		eps := float64(epsRaw%30)/10 + 0.1
		x := histogram.New(rows * cols)
		for i := 0; i < x.Bins(); i++ {
			x.SetCount(i, float64(rng.Intn(400)))
		}
		_, leaves := New().Estimate(x, rows, cols, eps, noise.NewSource(int64(rRaw)*31+int64(cRaw)))
		seen := make([]int, rows*cols)
		for _, leaf := range leaves {
			for _, b := range leaf {
				if b < 0 || b >= rows*cols {
					return false
				}
				seen[b]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdges(t *testing.T) {
	e := edges(0, 9, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("edges = %v, want %v", e, want)
		}
	}
	// n larger than the interval collapses to per-bin edges.
	if got := edges(0, 1, 5); len(got) != 3 {
		t.Errorf("edges over-split: %v", got)
	}
}
