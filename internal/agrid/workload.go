package agrid

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Fit adapts AGrid to core.WorkloadEstimator. AGrid is the native 2-D
// estimator: rows×cols is the grid it adapts to. A 1-D domain arrives
// as rows×1 and degenerates to a 1-D adaptive grid (coarse runs
// refined where the noisy mass is). Returns errors instead of
// panicking: the serving layer calls it after the budget is charged.
func (a *Algorithm) Fit(x *histogram.Histogram, rows, cols int, eps float64, src noise.Source) (*histogram.Histogram, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("agrid: eps must be positive, got %g", eps)
	}
	if rows <= 0 || cols <= 0 || rows*cols != x.Bins() {
		return nil, fmt.Errorf("agrid: shape %dx%d does not match %d bins", rows, cols, x.Bins())
	}
	if a.Alpha <= 0 || a.Alpha >= 1 {
		return nil, fmt.Errorf("agrid: alpha %g must lie in (0, 1)", a.Alpha)
	}
	est, _ := a.Estimate(x, rows, cols, eps, src)
	return est, nil
}
