// Package tippers simulates the TIPPERS dataset of the paper's evaluation
// (§6.1.1): Wi-Fi connectivity traces from a smart building with 64 access
// points, discretised to 10-minute intervals, one trajectory per user per
// day. The real dataset (UC Irvine's Bren Hall testbed) is IRB-restricted,
// so this package generates synthetic traces that preserve the structural
// properties the experiments depend on:
//
//   - two behavioural populations — residents with long, routine,
//     office-anchored, evening-tailed days, and visitors with short
//     erratic visits — so the resident/visitor classification task of
//     §6.3.1 is learnable;
//   - heavy-tailed access-point popularity, so n-gram histograms (§6.3.2)
//     are sparse with a few heavy trajectories;
//   - access-point-level privacy policies ("every trajectory through a
//     sensitive AP is sensitive"), so sensitivity is value-correlated and
//     histogram bins tend to be purely sensitive or purely non-sensitive,
//     the property behind §6.3.3.1's observations.
package tippers

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Building geometry and time discretisation, matching the paper.
const (
	// NumAPs is the number of Wi-Fi access points (64 in Bren Hall).
	NumAPs = 64
	// SlotsPerDay is the number of 10-minute intervals in a day.
	SlotsPerDay = 144
	// SlotMinutes is the slot width in minutes.
	SlotMinutes = 10
)

// Trajectory is one user's movement on one day: Slots[i] holds the AP the
// user was connected to during 10-minute interval i, or -1 when absent.
type Trajectory struct {
	User     int
	Day      int
	Resident bool // generator ground truth (stands in for the paper's heuristic labels)
	Slots    [SlotsPerDay]int8
}

// Duration returns the number of slots the user was present.
func (t *Trajectory) Duration() int {
	n := 0
	for _, ap := range t.Slots {
		if ap >= 0 {
			n++
		}
	}
	return n
}

// DistinctAPs returns the number of distinct access points visited.
func (t *Trajectory) DistinctAPs() int {
	var seen [NumAPs]bool
	n := 0
	for _, ap := range t.Slots {
		if ap >= 0 && !seen[ap] {
			seen[ap] = true
			n++
		}
	}
	return n
}

// VisitsAP reports whether the trajectory ever connects to ap.
func (t *Trajectory) VisitsAP(ap int) bool {
	for _, a := range t.Slots {
		if int(a) == ap {
			return true
		}
	}
	return false
}

// NGrams returns the distinct n-grams of the trajectory: sequences of APs
// at n consecutive present slots, rendered as "a>b>c" keys. Duplicate
// occurrences within the trajectory are collapsed, matching the paper's
// distinct-user counting.
func (t *Trajectory) NGrams(n int) []string {
	if n < 1 {
		panic("tippers: n-gram size must be positive")
	}
	seen := make(map[string]bool)
	var out []string
	var parts []string
	for i := 0; i+n <= SlotsPerDay; i++ {
		ok := true
		parts = parts[:0]
		for j := i; j < i+n; j++ {
			if t.Slots[j] < 0 {
				ok = false
				break
			}
			parts = append(parts, strconv.Itoa(int(t.Slots[j])))
		}
		if !ok {
			continue
		}
		key := strings.Join(parts, ">")
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// Config parameterises the generator.
type Config struct {
	// Users is the total population size.
	Users int
	// Days is the number of simulated days.
	Days int
	// ResidentFrac is the fraction of users that are residents
	// (the paper's data has 381 residents among 16K users ≈ 2.4%).
	ResidentFrac float64
	// ResidentPresence and VisitorPresence are per-day presence
	// probabilities for the two populations.
	ResidentPresence, VisitorPresence float64
	// Weekends, when true, treats every 6th and 7th day as a weekend:
	// resident presence drops to a fifth and visitor presence to a
	// quarter, giving the traces the weekly rhythm of a real office
	// building.
	Weekends bool
	// Seed drives all randomness.
	Seed int64
}

// IsWeekend reports whether day falls on the simulated weekend (days 5 and
// 6 of each 7-day week).
func IsWeekend(day int) bool { return day%7 >= 5 }

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's population proportions.
func DefaultConfig() Config {
	return Config{
		Users:            800,
		Days:             30,
		ResidentFrac:     0.05,
		ResidentPresence: 0.8,
		VisitorPresence:  0.12,
		Seed:             1,
	}
}

// Corpus is the generated trace: all trajectories plus the AP popularity
// ranking the generator used.
type Corpus struct {
	Trajectories []*Trajectory
	// apWeight is the sampling weight of each AP (heavy-tailed).
	apWeight [NumAPs]float64
}

// Generate produces a synthetic TIPPERS corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Users <= 0 || cfg.Days <= 0 {
		panic("tippers: Users and Days must be positive")
	}
	if cfg.ResidentFrac < 0 || cfg.ResidentFrac > 1 {
		panic("tippers: ResidentFrac outside [0, 1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{}

	// Heavy-tailed AP popularity: Zipf-ish weights over a random AP order.
	perm := rng.Perm(NumAPs)
	for rank, ap := range perm {
		c.apWeight[ap] = 1.0 / float64(rank+1)
	}

	nResidents := int(float64(cfg.Users) * cfg.ResidentFrac)
	for user := 0; user < cfg.Users; user++ {
		resident := user < nResidents
		// Residents anchor on 2–3 "office" APs drawn from the popularity
		// distribution; visitors roam.
		var home []int8
		if resident {
			for len(home) < 2+rng.Intn(2) {
				home = append(home, int8(c.sampleAP(rng)))
			}
		}
		for day := 0; day < cfg.Days; day++ {
			presence := cfg.VisitorPresence
			if resident {
				presence = cfg.ResidentPresence
			}
			if cfg.Weekends && IsWeekend(day) {
				if resident {
					presence /= 5
				} else {
					presence /= 4
				}
			}
			if rng.Float64() >= presence {
				continue
			}
			c.Trajectories = append(c.Trajectories, c.genDay(user, day, resident, home, rng))
		}
	}
	return c
}

// sampleAP draws an AP from the popularity distribution.
func (c *Corpus) sampleAP(rng *rand.Rand) int {
	var total float64
	for _, w := range c.apWeight {
		total += w
	}
	u := rng.Float64() * total
	for ap, w := range c.apWeight {
		u -= w
		if u <= 0 {
			return ap
		}
	}
	return NumAPs - 1
}

// genDay simulates one trajectory.
func (c *Corpus) genDay(user, day int, resident bool, home []int8, rng *rand.Rand) *Trajectory {
	t := &Trajectory{User: user, Day: day, Resident: resident}
	for i := range t.Slots {
		t.Slots[i] = -1
	}
	var arrive, stay int
	if resident {
		// Arrive ~8:40 ± 1h, stay 6–10 h; 25% work into the evening.
		arrive = clampSlot(52 + int(rng.NormFloat64()*6))
		stay = 36 + rng.Intn(25) // 6h..10h in slots
		if rng.Float64() < 0.25 {
			stay += 12 + rng.Intn(18) // evening tail: +2..5h
		}
	} else {
		// Arrive uniformly 9:00–18:00, stay 30 min – 3 h.
		arrive = 54 + rng.Intn(54)
		stay = 3 + rng.Intn(16)
	}
	end := arrive + stay
	if end > SlotsPerDay {
		end = SlotsPerDay
	}

	cur := c.startAP(resident, home, rng)
	dwell := c.dwell(resident, rng)
	for s := arrive; s < end; s++ {
		t.Slots[s] = cur
		dwell--
		if dwell <= 0 {
			cur = c.nextAP(resident, home, cur, rng)
			dwell = c.dwell(resident, rng)
		}
	}
	return t
}

func (c *Corpus) startAP(resident bool, home []int8, rng *rand.Rand) int8 {
	if resident && len(home) > 0 {
		return home[rng.Intn(len(home))]
	}
	return int8(c.sampleAP(rng))
}

// dwell returns how many slots the user stays at the current AP: residents
// settle (~50 min), visitors churn (~20 min).
func (c *Corpus) dwell(resident bool, rng *rand.Rand) int {
	mean := 2.0
	if resident {
		mean = 5.0
	}
	d := int(rng.ExpFloat64()*mean) + 1
	if d > 30 {
		d = 30
	}
	return d
}

// nextAP picks the user's next location: residents mostly bounce between
// their home APs, visitors follow popularity.
func (c *Corpus) nextAP(resident bool, home []int8, cur int8, rng *rand.Rand) int8 {
	if resident && len(home) > 0 && rng.Float64() < 0.75 {
		return home[rng.Intn(len(home))]
	}
	return int8(c.sampleAP(rng))
}

func clampSlot(s int) int {
	if s < 0 {
		return 0
	}
	if s >= SlotsPerDay {
		return SlotsPerDay - 1
	}
	return s
}

// APCoverage returns, per AP, the fraction of trajectories visiting it.
func (c *Corpus) APCoverage() [NumAPs]float64 {
	var cov [NumAPs]float64
	if len(c.Trajectories) == 0 {
		return cov
	}
	for _, t := range c.Trajectories {
		var seen [NumAPs]bool
		for _, ap := range t.Slots {
			if ap >= 0 {
				seen[ap] = true
			}
		}
		for ap, s := range seen {
			if s {
				cov[ap]++
			}
		}
	}
	for ap := range cov {
		cov[ap] /= float64(len(c.Trajectories))
	}
	return cov
}

// Policy marks trajectories sensitive when they pass through any sensitive
// access point — the paper's AP-level policy recipe (§6.1.1). It is the
// trajectory-granularity counterpart of dataset.Policy.
type Policy struct {
	Name         string
	SensitiveAPs map[int]bool
}

// Sensitive reports whether the trajectory is sensitive (P(t) = 0).
func (p Policy) Sensitive(t *Trajectory) bool {
	for _, ap := range t.Slots {
		if ap >= 0 && p.SensitiveAPs[int(ap)] {
			return true
		}
	}
	return false
}

// NonSensitive reports P(t) = 1.
func (p Policy) NonSensitive(t *Trajectory) bool { return !p.Sensitive(t) }

// NonSensitiveShare returns the fraction of trajectories that are
// non-sensitive under p.
func (c *Corpus) NonSensitiveShare(p Policy) float64 {
	if len(c.Trajectories) == 0 {
		return 1
	}
	ns := 0
	for _, t := range c.Trajectories {
		if p.NonSensitive(t) {
			ns++
		}
	}
	return float64(ns) / float64(len(c.Trajectories))
}

// PolicyForShare constructs the paper's P_ρ: it greedily marks access
// points sensitive — least-visited first, so the sensitive set stays
// small and localised like a lounge or restroom — until the non-sensitive
// share of trajectories drops to at most target (e.g. 0.99 for P99).
func (c *Corpus) PolicyForShare(target float64) Policy {
	if target < 0 || target > 1 {
		panic("tippers: target share outside [0, 1]")
	}
	cov := c.APCoverage()
	order := make([]int, NumAPs)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cov[order[a]] < cov[order[b]] })

	p := Policy{
		Name:         fmt.Sprintf("P%d", int(target*100+0.5)),
		SensitiveAPs: make(map[int]bool),
	}
	for _, ap := range order {
		if c.NonSensitiveShare(p) <= target {
			break
		}
		p.SensitiveAPs[ap] = true
	}
	return p
}

// ReleaseRR applies OsdpRR (Algorithm 1) at trajectory granularity: every
// non-sensitive trajectory is released truthfully with probability
// 1 − e^(−ε); sensitive trajectories are always suppressed. The daily
// trajectory is the paper's unit of privacy, so this satisfies
// (P_traj, ε)-OSDP with one-sided neighbors that replace one sensitive
// trajectory.
func (c *Corpus) ReleaseRR(p Policy, eps float64, rng *rand.Rand) []*Trajectory {
	if eps <= 0 {
		panic("tippers: eps must be positive")
	}
	keep := 1 - math.Exp(-eps)
	var out []*Trajectory
	for _, t := range c.Trajectories {
		if p.NonSensitive(t) && rng.Float64() < keep {
			out = append(out, t)
		}
	}
	return out
}

// ReleaseAllNS returns every non-sensitive trajectory — the All NS
// baseline, which is vulnerable to exclusion attacks.
func (c *Corpus) ReleaseAllNS(p Policy) []*Trajectory {
	var out []*Trajectory
	for _, t := range c.Trajectories {
		if p.NonSensitive(t) {
			out = append(out, t)
		}
	}
	return out
}
