package tippers_test

import (
	"fmt"
	"math/rand"

	"osdp/internal/tippers"
)

// Generate a corpus, derive the paper's P75 policy, and release a true
// trajectory sample under (P, 1)-OSDP.
func ExampleCorpus_ReleaseRR() {
	cfg := tippers.DefaultConfig()
	cfg.Users = 200
	cfg.Days = 10
	corpus := tippers.Generate(cfg)

	policy := corpus.PolicyForShare(0.75) // ≥25% of trajectories sensitive
	released := corpus.ReleaseRR(policy, 1.0, rand.New(rand.NewSource(1)))

	leaked := 0
	for _, t := range released {
		if policy.Sensitive(t) {
			leaked++
		}
	}
	fmt.Println("sensitive trajectories released:", leaked)
	fmt.Println("released non-empty:", len(released) > 0)
	// Output:
	// sensitive trajectories released: 0
	// released non-empty: true
}

// The §7 constraint closure hardens a policy against reachability
// inference: enclosed locations become sensitive too.
func ExampleTopology_ClosePolicy() {
	topo := tippers.GridTopology()
	// Surround zone 9 with sensitive zones; zone 9 itself is reachable
	// only through them.
	ring := tippers.Policy{
		Name:         "ring",
		SensitiveAPs: map[int]bool{1: true, 8: true, 10: true, 17: true},
	}
	fmt.Println("leaking:", topo.LeakingAPs(ring))
	closed := topo.ClosePolicy(ring)
	fmt.Println("zone 9 sensitive after closure:", closed.SensitiveAPs[9])
	// Output:
	// leaking: [9]
	// zone 9 sensitive after closure: true
}
