package tippers

import "fmt"

// This file implements the constraint-aware policy extension sketched in
// the paper's §7 ("One-sided differential privacy and constraints"): when
// locations are physically connected, a non-sensitive location reachable
// only through sensitive locations leaks — revealing a user was there
// reveals, with certainty, that they previously crossed a sensitive
// location. The fix is a policy *closure*: extend the sensitive set until
// every location still marked non-sensitive is reachable from a building
// entrance along non-sensitive locations only.

// Topology is the corridor graph of the building: which access-point zones
// are physically adjacent, and which are entrances.
type Topology struct {
	adj       [NumAPs][]int
	entrances []int
}

// GridTopology returns the default 8×8 grid corridor graph (64 AP zones,
// 4-neighbor adjacency) with the four corner zones as entrances — a
// reasonable stand-in for a rectangular office building.
func GridTopology() *Topology {
	t := &Topology{entrances: []int{0, 7, 56, 63}}
	const w = 8
	for ap := 0; ap < NumAPs; ap++ {
		r, c := ap/w, ap%w
		if c > 0 {
			t.adj[ap] = append(t.adj[ap], ap-1)
		}
		if c < w-1 {
			t.adj[ap] = append(t.adj[ap], ap+1)
		}
		if r > 0 {
			t.adj[ap] = append(t.adj[ap], ap-w)
		}
		if r < NumAPs/w-1 {
			t.adj[ap] = append(t.adj[ap], ap+w)
		}
	}
	return t
}

// NewTopology builds a topology from an explicit adjacency list and
// entrance set. Adjacency is symmetrised.
func NewTopology(edges [][2]int, entrances []int) *Topology {
	t := &Topology{entrances: append([]int(nil), entrances...)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= NumAPs || b < 0 || b >= NumAPs {
			panic(fmt.Sprintf("tippers: edge (%d, %d) out of AP range", a, b))
		}
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	for _, e := range entrances {
		if e < 0 || e >= NumAPs {
			panic(fmt.Sprintf("tippers: entrance %d out of AP range", e))
		}
	}
	return t
}

// Neighbors returns the zones adjacent to ap.
func (t *Topology) Neighbors(ap int) []int { return t.adj[ap] }

// Entrances returns the entrance zones.
func (t *Topology) Entrances() []int { return t.entrances }

// ReachableNonSensitive returns, per AP, whether it can be reached from
// some entrance along a path of exclusively non-sensitive APs (entrances
// included). Sensitive APs are never reachable by definition.
func (t *Topology) ReachableNonSensitive(sensitive map[int]bool) [NumAPs]bool {
	var reach [NumAPs]bool
	queue := make([]int, 0, NumAPs)
	for _, e := range t.entrances {
		if !sensitive[e] && !reach[e] {
			reach[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		ap := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[ap] {
			if !sensitive[nb] && !reach[nb] {
				reach[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return reach
}

// ClosePolicy returns the constraint closure of p under the topology: the
// minimal extension of p's sensitive AP set such that every remaining
// non-sensitive AP is reachable from an entrance through non-sensitive APs
// only. Under the closed policy, presence at any released location never
// implies presence at a sensitive one, eliminating the §7 inference.
func (t *Topology) ClosePolicy(p Policy) Policy {
	closed := Policy{
		Name:         p.Name + "+closure",
		SensitiveAPs: make(map[int]bool, len(p.SensitiveAPs)),
	}
	for ap := range p.SensitiveAPs {
		closed.SensitiveAPs[ap] = true
	}
	reach := t.ReachableNonSensitive(closed.SensitiveAPs)
	for ap := 0; ap < NumAPs; ap++ {
		if !reach[ap] {
			closed.SensitiveAPs[ap] = true
		}
	}
	return closed
}

// LeakingAPs reports the non-sensitive APs of p that are unreachable
// without crossing a sensitive AP — exactly the locations whose release
// would leak under the §7 constraint argument. A policy is closure-safe
// iff this is empty.
func (t *Topology) LeakingAPs(p Policy) []int {
	reach := t.ReachableNonSensitive(p.SensitiveAPs)
	var out []int
	for ap := 0; ap < NumAPs; ap++ {
		if !p.SensitiveAPs[ap] && !reach[ap] {
			out = append(out, ap)
		}
	}
	return out
}
