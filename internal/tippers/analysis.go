package tippers

import (
	"sort"
	"strconv"

	"osdp/internal/classify"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
)

// This file derives the paper's analysis inputs from trajectory sets:
// classification features (§6.2), n-gram distinct-user counts (§6.3.2),
// and the 2-D AP×hour histogram (§6.3.3.1).

// MineFrequentTrigrams returns the 3-gram patterns appearing in at least
// minSupport trajectories, sorted for determinism. The paper mines
// (AP1, AP2, AP3) patterns with support ≥ 50 as classification features.
func MineFrequentTrigrams(trajs []*Trajectory, minSupport int) []string {
	counts := make(map[string]int)
	for _, t := range trajs {
		for _, g := range t.NGrams(3) {
			counts[g]++
		}
	}
	var out []string
	for g, c := range counts {
		if c >= minSupport {
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// FeatureSet fixes the feature layout so train and test trajectories are
// embedded consistently: [duration, distinct APs, per-AP visit counts (64),
// one count per mined frequent trigram].
type FeatureSet struct {
	Patterns []string
	patIdx   map[string]int
}

// NewFeatureSet builds the layout from mined patterns.
func NewFeatureSet(patterns []string) *FeatureSet {
	fs := &FeatureSet{Patterns: patterns, patIdx: make(map[string]int, len(patterns))}
	for i, p := range patterns {
		fs.patIdx[p] = i
	}
	return fs
}

// Dim returns the feature dimension.
func (fs *FeatureSet) Dim() int { return 2 + NumAPs + len(fs.Patterns) }

// Vector embeds one trajectory.
func (fs *FeatureSet) Vector(t *Trajectory) []float64 {
	v := make([]float64, fs.Dim())
	v[0] = float64(t.Duration())
	v[1] = float64(t.DistinctAPs())
	for _, ap := range t.Slots {
		if ap >= 0 {
			v[2+int(ap)]++
		}
	}
	// Count occurrences of each frequent trigram (not just presence).
	for i := 0; i+3 <= SlotsPerDay; i++ {
		if t.Slots[i] < 0 || t.Slots[i+1] < 0 || t.Slots[i+2] < 0 {
			continue
		}
		key := gramKey(t.Slots[i], t.Slots[i+1], t.Slots[i+2])
		if j, ok := fs.patIdx[key]; ok {
			v[2+NumAPs+j]++
		}
	}
	return v
}

func gramKey(a, b, c int8) string {
	return strconv.Itoa(int(a)) + ">" + strconv.Itoa(int(b)) + ">" + strconv.Itoa(int(c))
}

// ClassificationDataset embeds trajectories as a classify.Dataset labelled
// with resident ground truth.
func ClassificationDataset(trajs []*Trajectory, fs *FeatureSet) classify.Dataset {
	d := classify.Dataset{
		X: make([][]float64, len(trajs)),
		Y: make([]int, len(trajs)),
	}
	for i, t := range trajs {
		d.X[i] = fs.Vector(t)
		if t.Resident {
			d.Y[i] = 1
		}
	}
	return d
}

// NGramCounts returns the distinct-trajectory count of every n-gram in the
// given trajectory set (the true histogram x of §6.3.2, materialised
// sparsely because the domain has 64ⁿ bins).
func NGramCounts(trajs []*Trajectory, n int) histogram.SparseCounts {
	out := make(histogram.SparseCounts)
	for _, t := range trajs {
		for _, g := range t.NGrams(n) {
			out[g]++
		}
	}
	return out
}

// NGramDomainSize returns |domain| = 64ⁿ as a float (it overflows int early).
func NGramDomainSize(n int) float64 {
	size := 1.0
	for i := 0; i < n; i++ {
		size *= NumAPs
	}
	return size
}

// UserGramLists converts trajectories to the per-user n-gram lists consumed
// by the truncated Laplace baseline (mechanism.NGramLaplace). Each
// trajectory is one privacy unit, matching the paper's daily-trajectory
// neighbor definition.
func UserGramLists(trajs []*Trajectory, n int) []mechanism.UserGrams {
	out := make([]mechanism.UserGrams, len(trajs))
	for i, t := range trajs {
		out[i] = mechanism.UserGrams(t.NGrams(n))
	}
	return out
}

// HoursPerDay is the bin count of the time dimension of the 2-D histogram.
const HoursPerDay = 24

// Hist2D builds the paper's 2-D histogram: the number of distinct users
// connected to each access point during each hour, over the given
// trajectories, flattened row-major as AP×hour (64×24 = 1536 bins).
func Hist2D(trajs []*Trajectory) *histogram.Histogram {
	h := histogram.New(NumAPs * HoursPerDay)
	slotsPerHour := SlotsPerDay / HoursPerDay
	type cell struct{ user, bin int }
	seen := make(map[cell]bool)
	for _, t := range trajs {
		for s, ap := range t.Slots {
			if ap < 0 {
				continue
			}
			hour := s / slotsPerHour
			bin := int(ap)*HoursPerDay + hour
			key := cell{t.User, bin}
			if !seen[key] {
				seen[key] = true
				h.Add(bin, 1)
			}
		}
	}
	return h
}

// Hist2DSplit evaluates the 2-D histogram over all trajectories and over
// the non-sensitive subset — the (x, xns) pair the OSDP mechanisms need.
func Hist2DSplit(trajs []*Trajectory, p Policy) (x, xns *histogram.Histogram) {
	var ns []*Trajectory
	for _, t := range trajs {
		if p.NonSensitive(t) {
			ns = append(ns, t)
		}
	}
	return Hist2D(trajs), Hist2D(ns)
}
