package tippers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridTopologyShape(t *testing.T) {
	topo := GridTopology()
	// Corner: 2 neighbors; edge: 3; interior: 4.
	if n := len(topo.Neighbors(0)); n != 2 {
		t.Errorf("corner neighbors = %d", n)
	}
	if n := len(topo.Neighbors(1)); n != 3 {
		t.Errorf("edge neighbors = %d", n)
	}
	if n := len(topo.Neighbors(9)); n != 4 {
		t.Errorf("interior neighbors = %d", n)
	}
	if len(topo.Entrances()) != 4 {
		t.Errorf("entrances = %v", topo.Entrances())
	}
}

func TestNewTopologyValidates(t *testing.T) {
	for _, f := range []func(){
		func() { NewTopology([][2]int{{0, 64}}, nil) },
		func() { NewTopology(nil, []int{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	topo := NewTopology([][2]int{{0, 1}}, []int{0})
	if len(topo.Neighbors(1)) != 1 {
		t.Error("adjacency not symmetrised")
	}
}

func TestReachabilityWithNoSensitiveAPs(t *testing.T) {
	topo := GridTopology()
	reach := topo.ReachableNonSensitive(map[int]bool{})
	for ap := 0; ap < NumAPs; ap++ {
		if !reach[ap] {
			t.Fatalf("AP %d unreachable in empty-policy grid", ap)
		}
	}
}

func TestEnclosedRoomLeaks(t *testing.T) {
	topo := GridTopology()
	// Surround interior AP 9 (row 1, col 1) with sensitive APs: its only
	// neighbors are 8, 10, 1, 17.
	p := Policy{Name: "ring", SensitiveAPs: map[int]bool{8: true, 10: true, 1: true, 17: true}}
	leaking := topo.LeakingAPs(p)
	if len(leaking) != 1 || leaking[0] != 9 {
		t.Fatalf("leaking = %v, want [9]", leaking)
	}
	closed := topo.ClosePolicy(p)
	if !closed.SensitiveAPs[9] {
		t.Error("closure did not absorb the enclosed AP")
	}
	if len(topo.LeakingAPs(closed)) != 0 {
		t.Error("closed policy still leaks")
	}
}

func TestClosureIsMonotoneAndIdempotent(t *testing.T) {
	topo := GridTopology()
	rng := rand.New(rand.NewSource(1))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		p := Policy{Name: "rand", SensitiveAPs: map[int]bool{}}
		for ap := 0; ap < NumAPs; ap++ {
			if r.Float64() < 0.3 {
				p.SensitiveAPs[ap] = true
			}
		}
		closed := topo.ClosePolicy(p)
		// Monotone: original sensitive APs stay sensitive.
		for ap := range p.SensitiveAPs {
			if !closed.SensitiveAPs[ap] {
				return false
			}
		}
		// Safe: no leaking APs remain.
		if len(topo.LeakingAPs(closed)) != 0 {
			return false
		}
		// Idempotent.
		twice := topo.ClosePolicy(closed)
		return len(twice.SensitiveAPs) == len(closed.SensitiveAPs)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSensitiveEntranceBlocksRegion(t *testing.T) {
	topo := GridTopology()
	// Make every entrance sensitive: nothing is reachable, so the closure
	// must mark every AP sensitive.
	p := Policy{Name: "locked", SensitiveAPs: map[int]bool{0: true, 7: true, 56: true, 63: true}}
	// Cut the grid: not the case here (interior still reachable? no —
	// entrances are the only BFS sources, all sensitive → nothing reachable).
	closed := topo.ClosePolicy(p)
	if len(closed.SensitiveAPs) != NumAPs {
		t.Errorf("locked building closure marked %d of %d APs", len(closed.SensitiveAPs), NumAPs)
	}
}

// End-to-end: releases under a closed policy never place a user at a
// location that implies crossing a sensitive one.
func TestClosedPolicyReleaseIsConstraintSafe(t *testing.T) {
	topo := GridTopology()
	c := smallCorpus()
	base := c.PolicyForShare(0.75)
	closed := topo.ClosePolicy(base)
	reach := topo.ReachableNonSensitive(closed.SensitiveAPs)
	released := c.ReleaseRR(closed, 1.0, rand.New(rand.NewSource(2)))
	for _, tr := range released {
		for _, ap := range tr.Slots {
			if ap >= 0 && !reach[ap] {
				t.Fatalf("released trajectory visits unreachable AP %d", ap)
			}
		}
	}
}
