package tippers

import (
	"math"
	"math/rand"
	"testing"

	"osdp/internal/classify"
)

func smallCorpus() *Corpus {
	cfg := DefaultConfig()
	cfg.Users = 300
	cfg.Days = 20
	return Generate(cfg)
}

func TestGenerateBasicShape(t *testing.T) {
	c := smallCorpus()
	if len(c.Trajectories) == 0 {
		t.Fatal("no trajectories generated")
	}
	for _, tr := range c.Trajectories {
		if tr.Duration() == 0 {
			t.Fatal("empty trajectory emitted")
		}
		for _, ap := range tr.Slots {
			if ap < -1 || int(ap) >= NumAPs {
				t.Fatalf("AP %d out of range", ap)
			}
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Users: 0, Days: 1},
		{Users: 1, Days: 0},
		{Users: 1, Days: 1, ResidentFrac: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestResidentsStayLongerAndMoreOften(t *testing.T) {
	c := smallCorpus()
	var resDur, visDur, resN, visN float64
	for _, tr := range c.Trajectories {
		if tr.Resident {
			resDur += float64(tr.Duration())
			resN++
		} else {
			visDur += float64(tr.Duration())
			visN++
		}
	}
	if resN == 0 || visN == 0 {
		t.Fatal("one population missing")
	}
	if resDur/resN < 2*(visDur/visN) {
		t.Errorf("resident mean duration %v not much larger than visitor %v",
			resDur/resN, visDur/visN)
	}
	// Residents are a small fraction of users but trajectory-heavy.
	perCapitaRes := resN / (300 * 0.05)
	perCapitaVis := visN / (300 * 0.95)
	if perCapitaRes < 3*perCapitaVis {
		t.Errorf("resident per-capita trajectories %v vs visitor %v", perCapitaRes, perCapitaVis)
	}
}

func TestWeekendsThinTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 400
	cfg.Days = 28
	cfg.Weekends = true
	c := Generate(cfg)
	var weekday, weekend float64
	for _, tr := range c.Trajectories {
		if IsWeekend(tr.Day) {
			weekend++
		} else {
			weekday++
		}
	}
	// 20 weekdays vs 8 weekend days; per-day traffic should differ by far
	// more than the 2.5× day-count ratio.
	perWeekday := weekday / 20
	perWeekend := weekend / 8
	if perWeekday < 3*perWeekend {
		t.Errorf("per-day traffic weekday %v vs weekend %v; weekends not thinned",
			perWeekday, perWeekend)
	}
	// Default config remains weekend-free and unaffected.
	if IsWeekend(4) || !IsWeekend(5) || !IsWeekend(6) || IsWeekend(7) {
		t.Error("IsWeekend boundaries wrong")
	}
}

func TestAPPopularityHeavyTailed(t *testing.T) {
	c := smallCorpus()
	cov := c.APCoverage()
	var max, min float64 = 0, 1
	for _, v := range cov {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if max < 5*min+0.01 {
		t.Errorf("AP coverage not heavy-tailed: max %v, min %v", max, min)
	}
}

func TestNGramsConsecutiveOnly(t *testing.T) {
	tr := &Trajectory{}
	for i := range tr.Slots {
		tr.Slots[i] = -1
	}
	tr.Slots[10], tr.Slots[11], tr.Slots[12] = 1, 2, 3
	tr.Slots[20] = 4 // isolated: no 2-gram through it
	g2 := tr.NGrams(2)
	want := map[string]bool{"1>2": true, "2>3": true}
	if len(g2) != 2 {
		t.Fatalf("2-grams = %v", g2)
	}
	for _, g := range g2 {
		if !want[g] {
			t.Fatalf("unexpected 2-gram %q", g)
		}
	}
	g3 := tr.NGrams(3)
	if len(g3) != 1 || g3[0] != "1>2>3" {
		t.Fatalf("3-grams = %v", g3)
	}
}

func TestNGramsDeduplicated(t *testing.T) {
	tr := &Trajectory{}
	for i := range tr.Slots {
		tr.Slots[i] = -1
	}
	// Pattern 5>6 appears twice.
	tr.Slots[0], tr.Slots[1] = 5, 6
	tr.Slots[30], tr.Slots[31] = 5, 6
	if g := tr.NGrams(2); len(g) != 1 {
		t.Fatalf("duplicate n-gram not collapsed: %v", g)
	}
}

func TestNGramsPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	(&Trajectory{}).NGrams(0)
}

func TestPolicyForShareHitsTargets(t *testing.T) {
	c := smallCorpus()
	for _, target := range []float64{0.99, 0.9, 0.75, 0.5, 0.25, 0.1} {
		p := c.PolicyForShare(target)
		share := c.NonSensitiveShare(p)
		if share > target {
			t.Errorf("target %v: share %v above target", target, share)
		}
		// Greedy granularity: the share shouldn't wildly undershoot either.
		if share < target-0.35 {
			t.Errorf("target %v: share %v far below target", target, share)
		}
	}
}

func TestPolicyForShareExtremes(t *testing.T) {
	c := smallCorpus()
	p0 := c.PolicyForShare(1.0)
	if len(p0.SensitiveAPs) != 0 {
		t.Error("target 1.0 should mark nothing sensitive")
	}
	pAll := c.PolicyForShare(0.0)
	if share := c.NonSensitiveShare(pAll); share > 0 {
		t.Errorf("target 0: share %v", share)
	}
}

func TestPolicySensitivityMatchesAPSet(t *testing.T) {
	c := smallCorpus()
	p := c.PolicyForShare(0.75)
	for _, tr := range c.Trajectories {
		visits := false
		for ap := range p.SensitiveAPs {
			if tr.VisitsAP(ap) {
				visits = true
				break
			}
		}
		if visits != p.Sensitive(tr) {
			t.Fatal("policy sensitivity disagrees with AP membership")
		}
	}
}

func TestReleaseRRProperties(t *testing.T) {
	c := smallCorpus()
	p := c.PolicyForShare(0.75)
	rng := rand.New(rand.NewSource(3))
	out := c.ReleaseRR(p, 1.0, rng)
	for _, tr := range out {
		if p.Sensitive(tr) {
			t.Fatal("sensitive trajectory released")
		}
	}
	nsTotal := 0
	for _, tr := range c.Trajectories {
		if p.NonSensitive(tr) {
			nsTotal++
		}
	}
	rate := float64(len(out)) / float64(nsTotal)
	want := 1 - math.Exp(-1)
	if math.Abs(rate-want) > 0.06 {
		t.Errorf("release rate %v, want ~%v", rate, want)
	}
}

func TestReleaseAllNS(t *testing.T) {
	c := smallCorpus()
	p := c.PolicyForShare(0.5)
	out := c.ReleaseAllNS(p)
	nsTotal := 0
	for _, tr := range c.Trajectories {
		if p.NonSensitive(tr) {
			nsTotal++
		}
	}
	if len(out) != nsTotal {
		t.Errorf("AllNS released %d, want %d", len(out), nsTotal)
	}
}

func TestReleaseRRPanicsOnBadEps(t *testing.T) {
	c := smallCorpus()
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 did not panic")
		}
	}()
	c.ReleaseRR(Policy{}, 0, rand.New(rand.NewSource(1)))
}

func TestMineFrequentTrigrams(t *testing.T) {
	c := smallCorpus()
	pats := MineFrequentTrigrams(c.Trajectories, 30)
	if len(pats) == 0 {
		t.Fatal("no frequent trigrams found; generator should produce routine movement")
	}
	// Verify support is honoured.
	counts := make(map[string]int)
	for _, tr := range c.Trajectories {
		for _, g := range tr.NGrams(3) {
			counts[g]++
		}
	}
	for _, pat := range pats {
		if counts[pat] < 30 {
			t.Errorf("pattern %q has support %d < 30", pat, counts[pat])
		}
	}
}

func TestFeatureVectorLayout(t *testing.T) {
	fs := NewFeatureSet([]string{"1>2>3"})
	if fs.Dim() != 2+NumAPs+1 {
		t.Fatalf("Dim = %d", fs.Dim())
	}
	tr := &Trajectory{}
	for i := range tr.Slots {
		tr.Slots[i] = -1
	}
	tr.Slots[0], tr.Slots[1], tr.Slots[2], tr.Slots[3] = 1, 2, 3, 3
	v := fs.Vector(tr)
	if v[0] != 4 { // duration
		t.Errorf("duration feature = %v", v[0])
	}
	if v[1] != 3 { // distinct APs
		t.Errorf("distinct feature = %v", v[1])
	}
	if v[2+3] != 2 { // AP 3 visited twice
		t.Errorf("AP3 count = %v", v[2+3])
	}
	if v[2+NumAPs] != 1 { // pattern 1>2>3 occurs once
		t.Errorf("pattern count = %v", v[2+NumAPs])
	}
}

func TestClassificationDatasetLearnable(t *testing.T) {
	c := smallCorpus()
	pats := MineFrequentTrigrams(c.Trajectories, 50)
	fs := NewFeatureSet(pats)
	d := ClassificationDataset(c.Trajectories, fs)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	auc, err := classify.CrossValidateAUC(d, 5, func(train classify.Dataset) (classify.Scorer, error) {
		return classify.Train(train, classify.DefaultTrainConfig())
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.85 {
		t.Errorf("resident classification AUC = %v, want > 0.85 (task must be learnable)", auc)
	}
}

func TestNGramCountsAndDomain(t *testing.T) {
	c := smallCorpus()
	counts := NGramCounts(c.Trajectories, 4)
	if len(counts) == 0 {
		t.Fatal("no 4-grams")
	}
	if NGramDomainSize(4) != 64*64*64*64 {
		t.Errorf("domain size = %v", NGramDomainSize(4))
	}
	// Counts bounded by the trajectory count.
	for g, n := range counts {
		if n > float64(len(c.Trajectories)) {
			t.Errorf("gram %q count %v exceeds trajectories", g, n)
		}
	}
}

func TestUserGramLists(t *testing.T) {
	c := smallCorpus()
	lists := UserGramLists(c.Trajectories[:10], 4)
	if len(lists) != 10 {
		t.Fatalf("lists = %d", len(lists))
	}
}

func TestHist2DDistinctUsers(t *testing.T) {
	// One user in two trajectories hitting the same (AP, hour) counts once.
	t1 := &Trajectory{User: 7}
	t2 := &Trajectory{User: 7, Day: 1}
	for i := range t1.Slots {
		t1.Slots[i] = -1
		t2.Slots[i] = -1
	}
	t1.Slots[0] = 5 // hour 0
	t2.Slots[1] = 5 // hour 0 as well
	h := Hist2D([]*Trajectory{t1, t2})
	bin := 5*HoursPerDay + 0
	if h.Count(bin) != 1 {
		t.Errorf("distinct-user count = %v, want 1", h.Count(bin))
	}
	if h.Scale() != 1 {
		t.Errorf("total mass = %v", h.Scale())
	}
}

func TestHist2DSplitDominance(t *testing.T) {
	c := smallCorpus()
	p := c.PolicyForShare(0.5)
	x, xns := Hist2DSplit(c.Trajectories, p)
	if x.Bins() != NumAPs*HoursPerDay {
		t.Fatalf("bins = %d", x.Bins())
	}
	if !x.Dominates(xns) {
		t.Error("full histogram must dominate non-sensitive histogram")
	}
	if xns.Scale() >= x.Scale() {
		t.Error("non-sensitive mass should be strictly smaller under a non-trivial policy")
	}
}

// Value-correlated policies produce bins that are purely sensitive or
// purely non-sensitive (the §6.3.3.1 observation): bins at sensitive APs
// should carry no non-sensitive mass at all.
func TestPolicyValueCorrelationInHistogram(t *testing.T) {
	c := smallCorpus()
	p := c.PolicyForShare(0.5)
	_, xns := Hist2DSplit(c.Trajectories, p)
	for ap := range p.SensitiveAPs {
		for hour := 0; hour < HoursPerDay; hour++ {
			if v := xns.Count(ap*HoursPerDay + hour); v != 0 {
				t.Fatalf("sensitive AP %d has non-sensitive mass %v", ap, v)
			}
		}
	}
}
