// Package privbayes implements PrivBayes (Zhang, Cormode, Procopiuc,
// Srivastava & Xiao, SIGMOD 2014), the high-dimensional histogram
// algorithm the paper names as recipe-extendable in §5.2, and PrivBayesz,
// its OSDP upgrade via the same zero-detection recipe as DAWAz.
//
// PrivBayes publishes a multi-attribute contingency table in two phases:
//
//  1. Network learning (budget ε₁): greedily build a Bayesian network over
//     the attributes — here a tree (each attribute gets at most one
//     parent) — choosing each (child, parent) edge with the exponential
//     mechanism whose utility is the empirical mutual information. The
//     sensitivity bound for mutual information on n records is the
//     standard Δ(I) = (2/n)·log((n+1)/2) + ((n−1)/n)·log((n+1)/(n−1)).
//  2. Marginal release (budget ε₂): for each attribute, release the joint
//     contingency of (child, parent) with Laplace noise, ε₂ split evenly
//     across the d marginals; derive the conditional distributions.
//
// The joint estimate P̂(x₁…x_d) = Π P̂(xᵢ | parent(xᵢ)) then reconstructs
// the full contingency table. Dimensionality is what defeats plain
// Laplace here: the full table has Π|domainᵢ| cells of sensitivity 2,
// while PrivBayes touches only d small 2-way marginals.
package privbayes

import (
	"fmt"
	"math"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/noise"
)

// Attribute declares one categorical dimension of the contingency table.
type Attribute struct {
	// Name is the dataset attribute name.
	Name string
	// Values is the ordered category list; records with values outside it
	// are rejected at encoding time.
	Values []string
}

// Encoder maps records to dense per-attribute category indices and flat
// contingency-table cells.
type Encoder struct {
	attrs []Attribute
	index []map[string]int
	dims  []int
}

// NewEncoder builds an encoder over the given attributes. It panics on
// empty attribute lists or duplicate category values, which indicate a
// miswritten schema rather than bad data.
func NewEncoder(attrs []Attribute) *Encoder {
	if len(attrs) == 0 {
		panic("privbayes: need at least one attribute")
	}
	e := &Encoder{attrs: attrs}
	for _, a := range attrs {
		if len(a.Values) == 0 {
			panic(fmt.Sprintf("privbayes: attribute %q has no values", a.Name))
		}
		idx := make(map[string]int, len(a.Values))
		for i, v := range a.Values {
			if _, dup := idx[v]; dup {
				panic(fmt.Sprintf("privbayes: duplicate value %q in attribute %q", v, a.Name))
			}
			idx[v] = i
		}
		e.index = append(e.index, idx)
		e.dims = append(e.dims, len(a.Values))
	}
	return e
}

// Dims returns the per-attribute domain sizes.
func (e *Encoder) Dims() []int { return e.dims }

// TableSize returns the number of cells in the full contingency table.
func (e *Encoder) TableSize() int {
	n := 1
	for _, d := range e.dims {
		n *= d
	}
	return n
}

// Encode maps a record to per-attribute category indices, or an error if a
// value is outside a declared domain.
func (e *Encoder) Encode(r dataset.Record) ([]int, error) {
	out := make([]int, len(e.attrs))
	for i, a := range e.attrs {
		v := r.Get(a.Name).AsString()
		j, ok := e.index[i][v]
		if !ok {
			return nil, fmt.Errorf("privbayes: value %q outside the domain of %q", v, a.Name)
		}
		out[i] = j
	}
	return out, nil
}

// Cell flattens category indices to a contingency-table cell (row-major).
func (e *Encoder) Cell(idx []int) int {
	cell := 0
	for i, j := range idx {
		cell = cell*e.dims[i] + j
	}
	return cell
}

// Contingency evaluates the full contingency table of db (a histogram
// with TableSize() bins). Records outside any domain are an error.
func (e *Encoder) Contingency(db *dataset.Table) (*histogram.Histogram, error) {
	h := histogram.New(e.TableSize())
	for _, r := range db.Records() {
		idx, err := e.Encode(r)
		if err != nil {
			return nil, err
		}
		h.Add(e.Cell(idx), 1)
	}
	return h, nil
}

// Edge is one learned network edge: child's parent, or -1 for a root.
type Edge struct {
	Child, Parent int
}

// Model is a learned PrivBayes network plus its noisy conditionals.
type Model struct {
	enc *Encoder
	// edges[i] is attribute i's parent (-1 = root), in sampling order.
	parent []int
	// cond[i] is the conditional distribution of attribute i given its
	// parent value: cond[i][parentValue][childValue]. Roots have a single
	// pseudo parent value 0.
	cond [][][]float64
	// total is the noisy record count used to scale reconstructions.
	total float64
}

// Algorithm is a configured PrivBayes instance.
type Algorithm struct {
	// StructureBudgetRatio is the share of ε for phase 1 (authors: 0.3–0.5).
	StructureBudgetRatio float64
}

// New returns a PrivBayes instance with the default budget split.
func New() *Algorithm {
	return &Algorithm{StructureBudgetRatio: 0.3}
}

// Name identifies the algorithm in reports.
func (a *Algorithm) Name() string { return "PrivBayes" }

// Fit learns an eps-DP model of db over the encoder's attributes.
func (a *Algorithm) Fit(enc *Encoder, db *dataset.Table, eps float64, src noise.Source) (*Model, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("privbayes: eps must be positive")
	}
	if a.StructureBudgetRatio <= 0 || a.StructureBudgetRatio >= 1 {
		return nil, fmt.Errorf("privbayes: structure budget ratio must lie in (0, 1)")
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("privbayes: empty database")
	}
	encoded := make([][]int, db.Len())
	for i, r := range db.Records() {
		idx, err := enc.Encode(r)
		if err != nil {
			return nil, err
		}
		encoded[i] = idx
	}
	eps1 := eps * a.StructureBudgetRatio
	eps2 := eps - eps1

	parent := learnStructure(enc, encoded, eps1, src)
	cond, total := releaseConditionals(enc, encoded, parent, eps2, src)
	return &Model{enc: enc, parent: parent, cond: cond, total: total}, nil
}

// learnStructure greedily picks each attribute's parent with the
// exponential mechanism over mutual information. The first attribute (the
// root) is chosen uniformly; each subsequent attribute joins with the
// in-network parent maximising noisy MI. ε₁ is split across the d−1
// selections.
func learnStructure(enc *Encoder, encoded [][]int, eps1 float64, src noise.Source) []int {
	d := len(enc.dims)
	parent := make([]int, d)
	for i := range parent {
		parent[i] = -1
	}
	if d == 1 {
		return parent
	}
	n := float64(len(encoded))
	// Sensitivity of mutual information on n records (PrivBayes Lemma 3,
	// bounded model doubles it).
	sens := 2 * ((2/n)*math.Log((n+1)/2) + ((n-1)/n)*math.Log((n+1)/(n-1)))
	epsPerPick := eps1 / float64(d-1)

	inNet := make([]bool, d)
	root := int(math.Floor(src.Float64() * float64(d)))
	if root == d {
		root = d - 1
	}
	inNet[root] = true

	for picked := 1; picked < d; picked++ {
		// Candidates: (child not in net, parent in net).
		type cand struct {
			child, par int
			mi         float64
		}
		var cands []cand
		for c := 0; c < d; c++ {
			if inNet[c] {
				continue
			}
			for p := 0; p < d; p++ {
				if !inNet[p] {
					continue
				}
				cands = append(cands, cand{c, p, mutualInformation(enc, encoded, c, p)})
			}
		}
		// Exponential mechanism: Pr ∝ exp(ε·u / (2Δ)).
		weights := make([]float64, len(cands))
		var maxU float64
		for i, cd := range cands {
			if cd.mi > maxU {
				maxU = cd.mi
			}
			weights[i] = cd.mi
		}
		var sum float64
		for i := range weights {
			weights[i] = math.Exp(epsPerPick * (weights[i] - maxU) / (2 * sens))
			sum += weights[i]
		}
		u := src.Float64() * sum
		chosen := len(cands) - 1
		for i, w := range weights {
			u -= w
			if u <= 0 {
				chosen = i
				break
			}
		}
		parent[cands[chosen].child] = cands[chosen].par
		inNet[cands[chosen].child] = true
	}
	return parent
}

// mutualInformation computes the empirical I(X_c; X_p) in nats.
func mutualInformation(enc *Encoder, encoded [][]int, c, p int) float64 {
	dc, dp := enc.dims[c], enc.dims[p]
	joint := make([]float64, dc*dp)
	mc := make([]float64, dc)
	mp := make([]float64, dp)
	n := float64(len(encoded))
	for _, row := range encoded {
		joint[row[c]*dp+row[p]]++
		mc[row[c]]++
		mp[row[p]]++
	}
	var mi float64
	for i := 0; i < dc; i++ {
		for j := 0; j < dp; j++ {
			pij := joint[i*dp+j] / n
			if pij == 0 {
				continue
			}
			mi += pij * math.Log(pij/(mc[i]/n*mp[j]/n))
		}
	}
	return mi
}

// releaseConditionals releases each attribute's (child, parent) joint with
// Laplace noise (ε₂ split evenly over the d marginals, each of sensitivity
// 2) and normalises to conditional distributions.
func releaseConditionals(enc *Encoder, encoded [][]int, parent []int, eps2 float64, src noise.Source) ([][][]float64, float64) {
	d := len(enc.dims)
	scale := 2 * float64(d) / eps2
	cond := make([][][]float64, d)
	var total float64
	for c := 0; c < d; c++ {
		dp := 1
		if parent[c] >= 0 {
			dp = enc.dims[parent[c]]
		}
		dc := enc.dims[c]
		counts := make([][]float64, dp)
		for j := range counts {
			counts[j] = make([]float64, dc)
		}
		for _, row := range encoded {
			pj := 0
			if parent[c] >= 0 {
				pj = row[parent[c]]
			}
			counts[pj][row[c]]++
		}
		var marginalTotal float64
		for j := range counts {
			for k := range counts[j] {
				v := counts[j][k] + noise.Laplace(src, scale)
				if v < 0 {
					v = 0
				}
				counts[j][k] = v
				marginalTotal += v
			}
		}
		// Normalise each parent slice to a distribution; empty slices fall
		// back to uniform.
		for j := range counts {
			var s float64
			for _, v := range counts[j] {
				s += v
			}
			if s == 0 {
				for k := range counts[j] {
					counts[j][k] = 1 / float64(dc)
				}
				continue
			}
			for k := range counts[j] {
				counts[j][k] /= s
			}
		}
		cond[c] = counts
		if c == 0 {
			total = marginalTotal
		}
	}
	return cond, total
}

// Reconstruct materialises the model's estimate of the full contingency
// table: cell count = total · Π P̂(xᵢ | parentᵢ). Evaluation of the joint
// follows the network's topological order implicitly — conditionals are
// stored per attribute, so the product is order-free.
func (m *Model) Reconstruct() *histogram.Histogram {
	size := m.enc.TableSize()
	h := histogram.New(size)
	d := len(m.enc.dims)
	idx := make([]int, d)
	for cell := 0; cell < size; cell++ {
		// Unflatten (row-major).
		rem := cell
		for i := d - 1; i >= 0; i-- {
			idx[i] = rem % m.enc.dims[i]
			rem /= m.enc.dims[i]
		}
		p := 1.0
		for c := 0; c < d; c++ {
			pj := 0
			if m.parent[c] >= 0 {
				pj = idx[m.parent[c]]
			}
			p *= m.cond[c][pj][idx[c]]
		}
		h.SetCount(cell, m.total*p)
	}
	return h
}

// Parents exposes the learned structure for tests and reports.
func (m *Model) Parents() []int { return append([]int(nil), m.parent...) }

// PrivBayesz upgrades PrivBayes to (P, ε)-OSDP via the §5.2 recipe: the
// zero set of the full contingency table is detected from the
// non-sensitive records with ρ·ε, PrivBayes runs with (1−ρ)·ε, detected
// cells are zeroed, and the surviving cells are rescaled to preserve the
// estimate's total mass. (The count-ratio rescale of
// core.ApplyZeroSetGroups assumes within-group-uniform estimates — true
// for DAWA/AHP/AGrid buckets, false for a Bayesian-network joint — so the
// mass-ratio form is used here.) All steps after the two budgeted phases
// are post-processing.
func PrivBayesz(alg *Algorithm, enc *Encoder, db *dataset.Table, p dataset.Policy, eps, rho float64, src noise.Source) (*histogram.Histogram, error) {
	epsZero, epsDP := core.SplitBudget(eps, rho)
	_, ns := db.Split(p)
	xns, err := enc.Contingency(ns)
	if err != nil {
		return nil, err
	}
	zeros := core.RRZeroDetector(xns, epsZero, src)
	model, err := alg.Fit(enc, db, epsDP, src)
	if err != nil {
		return nil, err
	}
	est := model.Reconstruct()
	total := est.Scale()
	out := est.Clone()
	for _, z := range zeros {
		out.SetCount(z, 0)
	}
	if surviving := out.Scale(); surviving > 0 {
		ratio := total / surviving
		for i := 0; i < out.Bins(); i++ {
			out.SetCount(i, out.Count(i)*ratio)
		}
	}
	return out, nil
}
