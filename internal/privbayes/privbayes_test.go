package privbayes

import (
	"math"
	"math/rand"
	"testing"

	"osdp/internal/dataset"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// Synthetic correlated table: City determines Region deterministically,
// Age bracket is independent, Product correlates with Age.
func testAttrs() []Attribute {
	return []Attribute{
		{Name: "Region", Values: []string{"north", "south"}},
		{Name: "City", Values: []string{"oslo", "bergen", "rome", "bari"}},
		{Name: "AgeBand", Values: []string{"young", "mid", "old"}},
		{Name: "Product", Values: []string{"games", "tools", "meds"}},
	}
}

func testSchemaPB() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Field{Name: "Region", Kind: dataset.KindString},
		dataset.Field{Name: "City", Kind: dataset.KindString},
		dataset.Field{Name: "AgeBand", Kind: dataset.KindString},
		dataset.Field{Name: "Product", Kind: dataset.KindString},
	)
}

func genTable(n int, seed int64) *dataset.Table {
	s := testSchemaPB()
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.NewTable(s)
	cities := []string{"oslo", "bergen", "rome", "bari"}
	regionOf := map[string]string{"oslo": "north", "bergen": "north", "rome": "south", "bari": "south"}
	ages := []string{"young", "mid", "old"}
	for i := 0; i < n; i++ {
		city := cities[rng.Intn(4)]
		age := ages[rng.Intn(3)]
		// Product depends on age band.
		var product string
		switch age {
		case "young":
			product = pick(rng, []string{"games", "games", "games", "tools"})
		case "mid":
			product = pick(rng, []string{"tools", "tools", "games", "meds"})
		default:
			product = pick(rng, []string{"meds", "meds", "tools", "meds"})
		}
		tb.AppendValues(
			dataset.Str(regionOf[city]), dataset.Str(city),
			dataset.Str(age), dataset.Str(product),
		)
	}
	return tb
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func TestEncoderBasics(t *testing.T) {
	enc := NewEncoder(testAttrs())
	if enc.TableSize() != 2*4*3*3 {
		t.Fatalf("TableSize = %d", enc.TableSize())
	}
	tb := genTable(50, 1)
	x, err := enc.Contingency(tb)
	if err != nil {
		t.Fatal(err)
	}
	if x.Scale() != 50 {
		t.Errorf("contingency mass = %v", x.Scale())
	}
}

func TestEncoderRejectsUnknownValue(t *testing.T) {
	enc := NewEncoder(testAttrs())
	s := testSchemaPB()
	tb := dataset.NewTable(s)
	tb.AppendValues(dataset.Str("north"), dataset.Str("paris"), dataset.Str("mid"), dataset.Str("tools"))
	if _, err := enc.Contingency(tb); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestEncoderPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewEncoder(nil) },
		func() { NewEncoder([]Attribute{{Name: "A", Values: nil}}) },
		func() { NewEncoder([]Attribute{{Name: "A", Values: []string{"x", "x"}}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCellFlattenRoundTrip(t *testing.T) {
	enc := NewEncoder(testAttrs())
	// Cell of the last combination must be TableSize-1.
	if got := enc.Cell([]int{1, 3, 2, 2}); got != enc.TableSize()-1 {
		t.Errorf("Cell(last) = %d", got)
	}
	if got := enc.Cell([]int{0, 0, 0, 0}); got != 0 {
		t.Errorf("Cell(first) = %d", got)
	}
}

func TestMutualInformationDetectsDependence(t *testing.T) {
	enc := NewEncoder(testAttrs())
	tb := genTable(4000, 2)
	encoded := make([][]int, tb.Len())
	for i, r := range tb.Records() {
		idx, err := enc.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		encoded[i] = idx
	}
	// Region–City is deterministic: MI ≈ H(Region) = ln 2.
	strong := mutualInformation(enc, encoded, 0, 1)
	if math.Abs(strong-math.Ln2) > 0.05 {
		t.Errorf("MI(Region, City) = %v, want ~ln2", strong)
	}
	// Region–AgeBand is independent: MI ≈ 0.
	weak := mutualInformation(enc, encoded, 0, 2)
	if weak > 0.01 {
		t.Errorf("MI(Region, AgeBand) = %v, want ~0", weak)
	}
	if strong <= weak {
		t.Error("dependence ordering violated")
	}
}

func TestFitLearnsInformativeStructure(t *testing.T) {
	enc := NewEncoder(testAttrs())
	tb := genTable(4000, 3)
	// With a generous budget the exponential mechanism should almost
	// always link Region and City (the deterministic pair).
	hits := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		model, err := New().Fit(enc, tb, 20, noise.NewSource(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		par := model.Parents()
		if par[0] == 1 || par[1] == 0 {
			hits++
		}
		// Exactly one root.
		roots := 0
		for _, p := range par {
			if p == -1 {
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("parents %v has %d roots", par, roots)
		}
	}
	if hits < trials*7/10 {
		t.Errorf("Region-City edge chosen %d/%d times", hits, trials)
	}
}

func TestReconstructMassAndShape(t *testing.T) {
	enc := NewEncoder(testAttrs())
	tb := genTable(5000, 4)
	model, err := New().Fit(enc, tb, 5, noise.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	est := model.Reconstruct()
	if est.Bins() != enc.TableSize() {
		t.Fatalf("bins = %d", est.Bins())
	}
	if ratio := est.Scale() / 5000; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mass ratio %v", ratio)
	}
	for i := 0; i < est.Bins(); i++ {
		if est.Count(i) < 0 {
			t.Fatal("negative reconstructed count")
		}
	}
	// Deterministic structure: cells pairing oslo with region "south" must
	// carry (near-)zero mass.
	x, _ := enc.Contingency(tb)
	var impossibleMass float64
	for cell := 0; cell < est.Bins(); cell++ {
		if x.Count(cell) == 0 && est.Count(cell) > 0 {
			impossibleMass += est.Count(cell)
		}
	}
	if impossibleMass > 0.25*est.Scale() {
		t.Errorf("%.1f%% of mass on empty cells", 100*impossibleMass/est.Scale())
	}
}

// The dimensionality argument: PrivBayes touches d small marginals where
// the Laplace mechanism perturbs every cell of the joint table, so on a
// genuinely high-dimensional domain (here 4⁶ = 4096 cells) PrivBayes wins
// at equal ε. (On tiny domains direct Laplace is competitive — that is
// expected and is why the paper positions PrivBayes for high dimensions.)
func TestPrivBayesBeatsLaplaceOnHighDimensionalTable(t *testing.T) {
	const d = 6
	vals := []string{"a", "b", "c", "d"}
	attrs := make([]Attribute, d)
	fields := make([]dataset.Field, d)
	names := []string{"A0", "A1", "A2", "A3", "A4", "A5"}
	for i := 0; i < d; i++ {
		attrs[i] = Attribute{Name: names[i], Values: vals}
		fields[i] = dataset.Field{Name: names[i], Kind: dataset.KindString}
	}
	enc := NewEncoder(attrs)
	s := dataset.NewSchema(fields...)
	// Markov chain across attributes: each copies its predecessor w.p. 0.7.
	rng := rand.New(rand.NewSource(6))
	tb := dataset.NewTable(s)
	for i := 0; i < 4000; i++ {
		row := make([]dataset.Value, d)
		cur := rng.Intn(4)
		for j := 0; j < d; j++ {
			if j > 0 && rng.Float64() >= 0.7 {
				cur = rng.Intn(4)
			}
			row[j] = dataset.Str(vals[cur])
		}
		tb.AppendValues(row...)
	}
	x, err := enc.Contingency(tb)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.NewSource(7)
	const eps = 0.2
	const trials = 5
	var pb, lap float64
	for i := 0; i < trials; i++ {
		model, err := New().Fit(enc, tb, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		pb += metrics.L1(x, model.Reconstruct())
		lap += metrics.L1(x, mechanism.LaplaceHistogram(x, eps, src))
	}
	if pb >= lap {
		t.Errorf("PrivBayes L1 %v not better than Laplace %v on 4096-cell joint", pb/trials, lap/trials)
	}
}

func TestFitErrors(t *testing.T) {
	enc := NewEncoder(testAttrs())
	tb := genTable(100, 8)
	if _, err := New().Fit(enc, tb, 0, noise.NewSource(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	bad := &Algorithm{StructureBudgetRatio: 2}
	if _, err := bad.Fit(enc, tb, 1, noise.NewSource(1)); err == nil {
		t.Error("bad ratio accepted")
	}
	empty := dataset.NewTable(testSchemaPB())
	if _, err := New().Fit(enc, empty, 1, noise.NewSource(1)); err == nil {
		t.Error("empty table accepted")
	}
}

func TestSingleAttributeModel(t *testing.T) {
	enc := NewEncoder(testAttrs()[:1])
	s := dataset.NewSchema(dataset.Field{Name: "Region", Kind: dataset.KindString})
	tb := dataset.NewTable(s)
	for i := 0; i < 100; i++ {
		v := "north"
		if i%3 == 0 {
			v = "south"
		}
		tb.AppendValues(dataset.Str(v))
	}
	model, err := New().Fit(enc, tb, 5, noise.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	est := model.Reconstruct()
	if est.Bins() != 2 {
		t.Fatalf("bins = %d", est.Bins())
	}
	if math.Abs(est.Scale()-100) > 15 {
		t.Errorf("mass = %v", est.Scale())
	}
}

func TestPrivBayeszZeroesAndImproves(t *testing.T) {
	enc := NewEncoder(testAttrs())
	tb := genTable(3000, 10)
	// Policy: "young" records are sensitive (value-correlated).
	p := dataset.NewPolicy("young", dataset.Cmp("AgeBand", dataset.OpEq, dataset.Str("young")))
	x, err := enc.Contingency(tb)
	if err != nil {
		t.Fatal(err)
	}
	src := noise.NewSource(11)
	const eps = 0.2
	const trials = 8
	var plain, withZ float64
	for i := 0; i < trials; i++ {
		model, err := New().Fit(enc, tb, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		plain += metrics.MRE(x, model.Reconstruct(), 1)
		z, err := PrivBayesz(New(), enc, tb, p, eps, 0.1, src)
		if err != nil {
			t.Fatal(err)
		}
		withZ += metrics.MRE(x, z, 1)
		// Structural-zero cells detected from the non-sensitive data stay
		// zero in the upgraded release.
		_, ns := tb.Split(p)
		xns, _ := enc.Contingency(ns)
		_ = xns
		if zh := z; zh.Bins() != x.Bins() {
			t.Fatal("arity mismatch")
		}
	}
	if withZ >= plain {
		t.Errorf("PrivBayesz MRE %v not better than PrivBayes %v", withZ/trials, plain/trials)
	}
}

func TestPrivBayeszPropagatesEncodingErrors(t *testing.T) {
	enc := NewEncoder(testAttrs())
	s := testSchemaPB()
	tb := dataset.NewTable(s)
	tb.AppendValues(dataset.Str("north"), dataset.Str("paris"), dataset.Str("mid"), dataset.Str("tools"))
	p := dataset.AllNonSensitive()
	if _, err := PrivBayesz(New(), enc, tb, p, 1, 0.1, noise.NewSource(1)); err == nil {
		t.Error("encoding error not propagated")
	}
}
