package metrics

import (
	"math"
	"math/rand"
	"testing"

	"osdp/internal/histogram"
)

func TestRangeQueryAnswer(t *testing.T) {
	h := histogram.FromCounts([]float64{1, 2, 3, 4})
	if got := (RangeQuery{1, 3}).Answer(h); got != 9 {
		t.Errorf("answer = %v", got)
	}
}

func TestRandomRangeWorkloadValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := RandomRangeWorkload(500, 4096, rng)
	if len(w) != 500 {
		t.Fatalf("len = %d", len(w))
	}
	if err := ValidateWorkload(w, 4096); err != nil {
		t.Fatal(err)
	}
	// Length mix: both short (<8) and long (>512) queries should appear.
	short, long := 0, 0
	for _, q := range w {
		l := q.Hi - q.Lo + 1
		if l < 8 {
			short++
		}
		if l > 512 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("workload lacks length diversity: %d short, %d long", short, long)
	}
}

func TestRandomRangeWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad size did not panic")
		}
	}()
	RandomRangeWorkload(0, 10, rand.New(rand.NewSource(1)))
}

func TestWorkloadErrors(t *testing.T) {
	x := histogram.FromCounts([]float64{10, 10, 10, 10})
	est := histogram.FromCounts([]float64{12, 8, 10, 10}) // range [0,1] exact, point errors cancel
	w := []RangeQuery{{0, 1}, {0, 0}}
	if got := WorkloadMAE(x, est, w); got != 1 { // (0 + 2) / 2
		t.Errorf("MAE = %v", got)
	}
	want := (0.0/20 + 2.0/10) / 2
	if got := WorkloadMRE(x, est, w, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("MRE = %v, want %v", got, want)
	}
}

func TestWorkloadErrorPanicsOnEmpty(t *testing.T) {
	x := histogram.New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty workload did not panic")
		}
	}()
	WorkloadMRE(x, x, nil, 1)
}

func TestValidateWorkloadRejectsBadQueries(t *testing.T) {
	for _, w := range [][]RangeQuery{
		{{-1, 2}}, {{0, 10}}, {{3, 1}},
	} {
		if err := ValidateWorkload(w, 10); err == nil {
			t.Errorf("workload %v accepted", w)
		}
	}
}

// Within-bucket noise cancels over ranges covering whole buckets: a
// uniform-expansion estimate answers any whole-bucket range exactly.
func TestRangeErrorCancellation(t *testing.T) {
	x := histogram.FromCounts([]float64{0, 20, 5, 15}) // total 40
	// Uniform expansion over one bucket [0,3]: every bin 10.
	est := histogram.FromCounts([]float64{10, 10, 10, 10})
	if got := WorkloadMAE(x, est, []RangeQuery{{0, 3}}); got != 0 {
		t.Errorf("whole-bucket range error = %v, want 0", got)
	}
	// Point queries on the same estimate are badly off.
	if got := WorkloadMAE(x, est, []RangeQuery{{0, 0}}); got != 10 {
		t.Errorf("point error = %v", got)
	}
}
