package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osdp/internal/histogram"
)

func h(counts ...float64) *histogram.Histogram { return histogram.FromCounts(counts) }

func TestMREIdenticalIsZero(t *testing.T) {
	x := h(1, 5, 0, 10)
	if got := MRE(x, x.Clone(), DefaultDelta); got != 0 {
		t.Errorf("MRE(x,x) = %v", got)
	}
}

func TestMREKnownValue(t *testing.T) {
	x := h(10, 0) // est off by 5 on bin 0, 2 on bin 1 (true zero, δ=1)
	est := h(5, 2)
	want := (5.0/10 + 2.0/1) / 2
	if got := MRE(x, est, DefaultDelta); math.Abs(got-want) > 1e-12 {
		t.Errorf("MRE = %v, want %v", got, want)
	}
}

func TestMREDeltaFloor(t *testing.T) {
	x := h(0.5) // count below δ; denominator floors at δ
	est := h(1.5)
	if got := MRE(x, est, 1.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MRE = %v, want 1", got)
	}
}

func TestRelVectorAndPercentiles(t *testing.T) {
	x := h(10, 10, 10, 10)
	est := h(10, 11, 15, 30)
	rel := RelVector(x, est, DefaultDelta)
	want := []float64{0, 0.1, 0.5, 2}
	for i := range want {
		if math.Abs(rel[i]-want[i]) > 1e-12 {
			t.Fatalf("rel = %v", rel)
		}
	}
	if got := RelPercentile(x, est, DefaultDelta, 50); got != 0.1 {
		t.Errorf("Rel50 = %v", got)
	}
	if got := RelPercentile(x, est, DefaultDelta, 95); got != 2 {
		t.Errorf("Rel95 = %v", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("P50 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, c := range []struct {
		xs []float64
		p  float64
	}{{nil, 50}, {[]float64{1}, -1}, {[]float64{1}, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v, %v) did not panic", c.xs, c.p)
				}
			}()
			Percentile(c.xs, c.p)
		}()
	}
}

func TestL1L2(t *testing.T) {
	x, est := h(3, 4), h(0, 0)
	if got := L1(x, est); got != 7 {
		t.Errorf("L1 = %v", got)
	}
	if got := L2(x, est); got != 5 {
		t.Errorf("L2 = %v", got)
	}
}

func TestSparseMRE(t *testing.T) {
	x := histogram.SparseCounts{"a": 10, "b": 2}
	est := histogram.SparseCounts{"a": 5, "c": 3}
	// |10-5|/10 + |2-0|/2 + |0-3|/1 over domain of 10 keys
	want := (0.5 + 1 + 3) / 10
	if got := SparseMRE(x, est, 10, DefaultDelta); math.Abs(got-want) > 1e-12 {
		t.Errorf("SparseMRE = %v, want %v", got, want)
	}
}

func TestSparseMREPanicsOnBadDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero domain")
		}
	}()
	SparseMRE(nil, nil, 0, 1)
}

func TestRegretBasics(t *testing.T) {
	rt := NewRegretTable("A", "B", "C")
	rt.Record("in1", "A", 2)
	rt.Record("in1", "B", 1)
	rt.Record("in1", "C", 6)
	if got := rt.Regret("in1", "B"); got != 1 {
		t.Errorf("best regret = %v", got)
	}
	if got := rt.Regret("in1", "A"); got != 2 {
		t.Errorf("A regret = %v", got)
	}
	if got := rt.Regret("in1", "C"); got != 6 {
		t.Errorf("C regret = %v", got)
	}
}

func TestRegretMissingValues(t *testing.T) {
	rt := NewRegretTable("A", "B")
	rt.Record("in1", "A", 4)
	if !math.IsNaN(rt.Regret("in1", "B")) {
		t.Error("missing algorithm regret should be NaN")
	}
	if !math.IsNaN(rt.Regret("nope", "A")) {
		t.Error("missing input regret should be NaN")
	}
	// A alone on in1 is the best by definition.
	if got := rt.Regret("in1", "A"); got != 1 {
		t.Errorf("solo regret = %v", got)
	}
}

func TestRegretZeroError(t *testing.T) {
	rt := NewRegretTable("A", "B")
	rt.Record("in1", "A", 0)
	rt.Record("in1", "B", 3)
	if got := rt.Regret("in1", "A"); got != 1 {
		t.Errorf("zero-error regret = %v", got)
	}
	if got := rt.Regret("in1", "B"); !math.IsInf(got, 1) {
		t.Errorf("vs-zero regret = %v, want +Inf", got)
	}
}

func TestAverageRegretWithFilter(t *testing.T) {
	rt := NewRegretTable("A", "B")
	rt.Record("close/1", "A", 2)
	rt.Record("close/1", "B", 1)
	rt.Record("far/1", "A", 1)
	rt.Record("far/1", "B", 3)
	avgAll := rt.AverageRegret("A", nil)
	if math.Abs(avgAll-1.5) > 1e-12 {
		t.Errorf("avg = %v", avgAll)
	}
	onlyFar := rt.AverageRegret("A", func(in string) bool { return in[:3] == "far" })
	if onlyFar != 1 {
		t.Errorf("far avg = %v", onlyFar)
	}
	if !math.IsNaN(rt.AverageRegret("A", func(string) bool { return false })) {
		t.Error("empty filter should give NaN")
	}
}

func TestRegretTableAccessors(t *testing.T) {
	rt := NewRegretTable("A", "B")
	rt.Record("x", "A", 1)
	rt.Record("y", "A", 1)
	if len(rt.Algorithms()) != 2 || len(rt.Inputs()) != 2 {
		t.Error("accessors wrong")
	}
}

func TestRegretPanicsOnUnknownAlg(t *testing.T) {
	rt := NewRegretTable("A")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown alg did not panic")
		}
	}()
	rt.Record("in", "Z", 1)
}

func TestRegretDuplicateAlgPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate alg did not panic")
		}
	}()
	NewRegretTable("A", "A")
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

// Properties of the error metrics.
func TestMetricPropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	randHist := func(d int) *histogram.Histogram {
		hh := histogram.New(d)
		for i := 0; i < d; i++ {
			hh.SetCount(i, float64(rng.Intn(50)))
		}
		return hh
	}
	f := func(seed uint8) bool {
		d := int(seed%20) + 2
		x, est := randHist(d), randHist(d)
		// Non-negativity.
		if MRE(x, est, 1) < 0 || L1(x, est) < 0 || L2(x, est) < 0 {
			return false
		}
		// Identity of indiscernibles for L1.
		if L1(x, x) != 0 {
			return false
		}
		// Rel95 >= Rel50.
		if RelPercentile(x, est, 1, 95) < RelPercentile(x, est, 1, 50) {
			return false
		}
		// Symmetry in arguments does not hold for MRE (denominator is x),
		// but L1/L2 are symmetric.
		if L1(x, est) != L1(est, x) || L2(x, est) != L2(est, x) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regret is invariant to rescaling all errors on an input.
func TestRegretScaleInvarianceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(_ uint8) bool {
		e1, e2 := rng.Float64()+0.01, rng.Float64()+0.01
		scale := rng.Float64()*99 + 1
		a := NewRegretTable("A", "B")
		a.Record("in", "A", e1)
		a.Record("in", "B", e2)
		b := NewRegretTable("A", "B")
		b.Record("in", "A", e1*scale)
		b.Record("in", "B", e2*scale)
		return math.Abs(a.Regret("in", "A")-b.Regret("in", "A")) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
