package metrics

import (
	"fmt"
	"math"
	"math/rand"

	"osdp/internal/histogram"
)

// Range-query workloads: DAWA was designed for range queries, where a
// partition's internal errors cancel inside any range that covers whole
// buckets. Evaluating the OSDP algorithms on the same workloads checks
// that their point-query advantage does not come at range-query cost.

// RangeQuery is an inclusive bin interval whose answer is the sum of
// counts within it.
type RangeQuery struct {
	Lo, Hi int
}

// Answer evaluates the query on a histogram.
func (q RangeQuery) Answer(h *histogram.Histogram) float64 {
	return h.RangeSum(q.Lo, q.Hi)
}

// RandomRangeWorkload draws n random intervals over a domain of the given
// size, with lengths log-uniform between 1 and the domain size — the
// standard mix of short and long ranges used by range-query benchmarks.
func RandomRangeWorkload(n, domainSize int, rng *rand.Rand) []RangeQuery {
	if n <= 0 || domainSize <= 0 {
		panic("metrics: workload size and domain must be positive")
	}
	out := make([]RangeQuery, n)
	maxLog := math.Log(float64(domainSize))
	for i := range out {
		length := int(math.Exp(rng.Float64() * maxLog))
		if length < 1 {
			length = 1
		}
		if length > domainSize {
			length = domainSize
		}
		lo := rng.Intn(domainSize - length + 1)
		out[i] = RangeQuery{Lo: lo, Hi: lo + length - 1}
	}
	return out
}

// WorkloadMRE is the mean relative error of est over the workload:
// (1/|W|) Σ |q(x) − q(x̃)| / max(q(x), δ).
func WorkloadMRE(x, est *histogram.Histogram, w []RangeQuery, delta float64) float64 {
	if len(w) == 0 {
		panic("metrics: empty workload")
	}
	var sum float64
	for _, q := range w {
		truth := q.Answer(x)
		sum += math.Abs(truth-q.Answer(est)) / math.Max(truth, delta)
	}
	return sum / float64(len(w))
}

// WorkloadMAE is the mean absolute error of est over the workload.
func WorkloadMAE(x, est *histogram.Histogram, w []RangeQuery) float64 {
	if len(w) == 0 {
		panic("metrics: empty workload")
	}
	var sum float64
	for _, q := range w {
		sum += math.Abs(q.Answer(x) - q.Answer(est))
	}
	return sum / float64(len(w))
}

// ValidateWorkload checks every query fits the domain.
func ValidateWorkload(w []RangeQuery, domainSize int) error {
	for i, q := range w {
		if q.Lo < 0 || q.Hi >= domainSize || q.Lo > q.Hi {
			return fmt.Errorf("metrics: query %d = [%d, %d] invalid over %d bins", i, q.Lo, q.Hi, domainSize)
		}
	}
	return nil
}
