// Package metrics implements the error measures of the paper's evaluation
// (§6.2): mean relative error (MRE), per-bin relative error with percentile
// summaries (Rel50, Rel95), plain L1/L2 error, and the regret framework of
// §6.3.3.2 that normalises an algorithm's error by the best error achieved
// by any algorithm in a comparison set.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"osdp/internal/histogram"
)

// DefaultDelta is the denominator floor δ used by the paper for relative
// errors (it sets δ = 1).
const DefaultDelta = 1.0

// MRE returns the mean relative error between a true histogram x and an
// estimate xh:
//
//	MRE(x, x̃) = (1/d) Σ_i |x_i − x̃_i| / max(x_i, δ)
func MRE(x, est *histogram.Histogram, delta float64) float64 {
	mustSameBins(x, est)
	d := x.Bins()
	var sum float64
	for i := 0; i < d; i++ {
		sum += math.Abs(x.Count(i)-est.Count(i)) / math.Max(x.Count(i), delta)
	}
	return sum / float64(d)
}

// RelVector returns the per-bin relative error vector
// [|x_i − x̃_i| / max(x_i, δ)].
func RelVector(x, est *histogram.Histogram, delta float64) []float64 {
	mustSameBins(x, est)
	out := make([]float64, x.Bins())
	for i := range out {
		out[i] = math.Abs(x.Count(i)-est.Count(i)) / math.Max(x.Count(i), delta)
	}
	return out
}

// RelPercentile returns the p-th percentile (p in [0, 100]) of the per-bin
// relative error. Rel50 is the median, Rel95 the 95th percentile the paper
// uses as a worst-case summary.
func RelPercentile(x, est *histogram.Histogram, delta, p float64) float64 {
	rel := RelVector(x, est, delta)
	return Percentile(rel, p)
}

// Percentile returns the p-th percentile of xs using the nearest-rank
// method. It does not modify xs. Panics on empty input or p outside
// [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}

// L1 returns the total absolute error Σ|x_i − x̃_i|.
func L1(x, est *histogram.Histogram) float64 { return x.L1Distance(est) }

// L2 returns the Euclidean error sqrt(Σ (x_i − x̃_i)²).
func L2(x, est *histogram.Histogram) float64 {
	mustSameBins(x, est)
	var s float64
	for i := 0; i < x.Bins(); i++ {
		d := x.Count(i) - est.Count(i)
		s += d * d
	}
	return math.Sqrt(s)
}

// SparseMRE computes MRE between a true sparse count map and an estimate,
// over a total domain of domainSize keys. Keys absent from both maps
// contribute zero error but still count toward the mean; keys absent from
// one map are treated as zero there. This is the analytic zero-count
// handling the paper describes for n-gram histograms (§6.3.2).
func SparseMRE(x, est histogram.SparseCounts, domainSize float64, delta float64) float64 {
	if domainSize <= 0 {
		panic("metrics: non-positive domain size")
	}
	var sum float64
	seen := make(map[string]bool, len(x))
	for k, xv := range x {
		seen[k] = true
		sum += math.Abs(xv-est[k]) / math.Max(xv, delta)
	}
	for k, ev := range est {
		if !seen[k] {
			sum += math.Abs(ev) / delta // true count is zero
		}
	}
	return sum / domainSize
}

// mustSameBins panics when histograms disagree on arity.
func mustSameBins(a, b *histogram.Histogram) {
	if a.Bins() != b.Bins() {
		panic(fmt.Sprintf("metrics: bin mismatch %d vs %d", a.Bins(), b.Bins()))
	}
}

// Regret normalises errors across inputs with very different scales
// (§6.3.3.2): regret(A, x) = Err(A(x)) / min_B Err(B(x)) over an algorithm
// comparison set. A regret of 1 means A was the best algorithm on x.
//
// Errors are collected into a RegretTable keyed by (input, algorithm).
type RegretTable struct {
	algs   []string
	algIdx map[string]int
	inputs []string
	inIdx  map[string]int
	errs   [][]float64 // [input][alg], NaN when missing
}

// NewRegretTable creates an empty table over the named algorithms.
func NewRegretTable(algs ...string) *RegretTable {
	t := &RegretTable{algIdx: make(map[string]int), inIdx: make(map[string]int)}
	for _, a := range algs {
		if _, dup := t.algIdx[a]; dup {
			panic(fmt.Sprintf("metrics: duplicate algorithm %q", a))
		}
		t.algIdx[a] = len(t.algs)
		t.algs = append(t.algs, a)
	}
	return t
}

// Record stores the error of algorithm alg on the named input.
func (t *RegretTable) Record(input, alg string, err float64) {
	ai, ok := t.algIdx[alg]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown algorithm %q", alg))
	}
	ii, ok := t.inIdx[input]
	if !ok {
		ii = len(t.inputs)
		t.inIdx[input] = ii
		t.inputs = append(t.inputs, input)
		row := make([]float64, len(t.algs))
		for i := range row {
			row[i] = math.NaN()
		}
		t.errs = append(t.errs, row)
	}
	t.errs[ii][ai] = err
}

// Algorithms returns the algorithm names in registration order.
func (t *RegretTable) Algorithms() []string { return t.algs }

// Inputs returns the input names in first-recorded order.
func (t *RegretTable) Inputs() []string { return t.inputs }

// Regret returns the regret of alg on input: its error divided by the
// minimum error over all algorithms with a recorded (non-NaN) error on that
// input. It returns NaN if alg has no recorded error there.
func (t *RegretTable) Regret(input, alg string) float64 {
	ii, ok := t.inIdx[input]
	if !ok {
		return math.NaN()
	}
	ai := t.algIdx[alg]
	e := t.errs[ii][ai]
	if math.IsNaN(e) {
		return math.NaN()
	}
	best := math.Inf(1)
	for _, v := range t.errs[ii] {
		if !math.IsNaN(v) && v < best {
			best = v
		}
	}
	if best == 0 {
		if e == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return e / best
}

// AverageRegret returns the mean regret of alg over the inputs that satisfy
// keep (nil keeps all). Inputs where alg has no record are skipped.
func (t *RegretTable) AverageRegret(alg string, keep func(input string) bool) float64 {
	var sum float64
	n := 0
	for _, in := range t.inputs {
		if keep != nil && !keep(in) {
			continue
		}
		r := t.Regret(in, alg)
		if math.IsNaN(r) {
			continue
		}
		sum += r
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Mean is a small helper used by experiment runners.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
