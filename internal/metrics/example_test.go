package metrics_test

import (
	"fmt"

	"osdp/internal/histogram"
	"osdp/internal/metrics"
)

// MRE is the paper's primary error measure: per-bin relative error with a
// δ=1 floor, averaged over the domain.
func ExampleMRE() {
	truth := histogram.FromCounts([]float64{100, 0, 50})
	estimate := histogram.FromCounts([]float64{90, 2, 50})
	fmt.Printf("%.3f\n", metrics.MRE(truth, estimate, metrics.DefaultDelta))
	// (|100−90|/100 + |0−2|/1 + 0/50) / 3 = (0.1 + 2 + 0) / 3
	// Output:
	// 0.700
}

// Regret normalises errors by the best algorithm per input — the §6.3.3.2
// framework behind Figures 6–10.
func ExampleRegretTable() {
	rt := metrics.NewRegretTable("DAWA", "DAWAz")
	rt.Record("Adult", "DAWA", 0.345)
	rt.Record("Adult", "DAWAz", 0.014)
	fmt.Printf("DAWA regret on Adult: %.1f\n", rt.Regret("Adult", "DAWA"))
	fmt.Printf("DAWAz regret on Adult: %.1f\n", rt.Regret("Adult", "DAWAz"))
	// Output:
	// DAWA regret on Adult: 24.6
	// DAWAz regret on Adult: 1.0
}
