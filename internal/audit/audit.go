// Package audit records one durable event per ε-bearing decision the
// server makes, so an operator can reconstruct every analyst's privacy
// spend independently of the ledger.
//
// The trail is an append-only JSONL file governed by the same
// durability discipline as the ledger WAL: events are group-committed
// (one buffered write + one fsync per batch of concurrent appends), a
// torn final line — the only damage a crash mid-write can produce — is
// truncated on open, and corruption anywhere earlier refuses to open
// rather than silently dropping spend history. Append itself never
// blocks on the disk; Sync is the acknowledgement barrier: once it
// returns nil, every earlier event survives a crash.
//
// A fixed-size in-memory ring of recent events backs the
// /admin/audit endpoint whether or not a directory is configured, so
// the query hot path pays the same O(1) cost either way.
package audit

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"osdp/internal/telemetry"
)

// Outcomes of an ε-bearing decision. The invariant mirrors the
// ledger's: recorded spend only ever errs high. Reconstructed spend is
// the sum of Eps over "released" and "retained" events.
const (
	// OutcomeReleased: the mechanism ran and the answer was returned;
	// ε stands.
	OutcomeReleased = "released"
	// OutcomeRetained: the mechanism failed after randomness was
	// observed; no answer was returned but ε stands.
	OutcomeRetained = "retained"
	// OutcomeRefunded: the session accountant rejected the query
	// before noise was drawn; the ledger charge was refunded.
	OutcomeRefunded = "refunded"
	// OutcomeDenied: the ledger refused the charge; nothing was spent.
	OutcomeDenied = "denied"
)

// Event is one ε-bearing decision. Field names and JSON keys are a
// stable schema (pinned by a golden test): external consumers parse
// the JSONL trail.
type Event struct {
	// Seq is the append-order sequence number, contiguous from 1.
	Seq uint64 `json:"seq"`
	// Time is when the decision was recorded (UTC).
	Time time.Time `json:"time"`
	// RequestID correlates the event with the request trace and
	// access log ("" for requests without an ID).
	RequestID string `json:"request_id,omitempty"`
	// Analyst is the authenticated analyst ID ("" on ledger-less
	// servers).
	Analyst string `json:"analyst,omitempty"`
	// Dataset is the dataset charged against.
	Dataset string `json:"dataset"`
	// Session is the session the query ran in.
	Session string `json:"session,omitempty"`
	// Kind is the query kind ("histogram", "workload", ...).
	Kind string `json:"kind"`
	// Eps is the ε the decision concerned.
	Eps float64 `json:"eps"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
}

// ErrBroken reports that a previous write or fsync failed; the log
// refuses further durable appends so spend history cannot silently
// diverge from what the file holds.
var ErrBroken = errors.New("audit: log broken by earlier write failure")

// logFile is the JSONL file name inside the configured directory.
const logFile = "audit.jsonl"

// Config configures Open.
type Config struct {
	// Dir is the directory holding audit.jsonl. Empty means
	// in-memory only: events are served from the ring but do not
	// survive a restart.
	Dir string
	// RingSize caps the in-memory ring of recent events served by
	// Recent (default 1024).
	RingSize int
	// NoSync skips fsync on commit (tests only; crash durability is
	// lost).
	NoSync bool
	// Telemetry registers audit metrics when non-nil.
	Telemetry *telemetry.Registry
}

// Log is the append-only audit trail. Append is non-blocking; a
// background committer batches concurrent events into one write + one
// fsync. A nil *Log is the disabled log: Append and Sync are no-ops.
type Log struct {
	dir    string
	noSync bool
	met    auditMetrics

	mu      sync.Mutex
	closed  bool
	broken  error
	seq     uint64 // last assigned sequence number
	durable uint64 // last sequence number known durable
	ring    []Event
	ringN   int // events currently in the ring
	ringAt  int // next slot to write
	pending []Event
	waiters []*syncWaiter

	f    *os.File
	size int64
	buf  []byte

	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

// syncWaiter parks a Sync call until seq is durable (or the log
// breaks).
type syncWaiter struct {
	seq  uint64
	done chan error
}

// auditMetrics bundles the audit instruments; the zero value is the
// disabled state.
type auditMetrics struct {
	events *telemetry.Counter
	fsync  *telemetry.Histogram
}

func newAuditMetrics(r *telemetry.Registry) auditMetrics {
	if r == nil {
		return auditMetrics{}
	}
	return auditMetrics{
		events: r.NewCounter("osdp_audit_events_total",
			"Privacy-audit events recorded (one per ε-bearing decision)."),
		fsync: r.NewHistogram("osdp_audit_fsync_seconds",
			"Latency of one audit-log group-commit fsync.", nil),
	}
}

// Open loads (replaying and truncating a torn tail) or creates the
// audit log. With an empty Dir the log is in-memory only.
func Open(cfg Config) (*Log, error) {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	l := &Log{
		dir:    cfg.Dir,
		noSync: cfg.NoSync,
		met:    newAuditMetrics(cfg.Telemetry),
		ring:   make([]Event, cfg.RingSize),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("audit: create dir: %w", err)
		}
		path := filepath.Join(cfg.Dir, logFile)
		last, truncateTo, err := Replay(cfg.Dir, func(e Event) error {
			l.ringStore(e)
			return nil
		})
		if err != nil {
			return nil, err
		}
		l.seq = last
		l.durable = last
		if truncateTo >= 0 {
			if err := os.Truncate(path, truncateTo); err != nil {
				return nil, fmt.Errorf("audit: truncate torn tail: %w", err)
			}
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("audit: open log: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("audit: stat log: %w", err)
		}
		l.f, l.size = f, st.Size()
		if err := syncDir(cfg.Dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	go l.runCommitter()
	return l, nil
}

// ringStore writes e into the recent-events ring. Caller holds l.mu
// (or has exclusive access during Open).
func (l *Log) ringStore(e Event) {
	l.ring[l.ringAt] = e
	l.ringAt = (l.ringAt + 1) % len(l.ring)
	if l.ringN < len(l.ring) {
		l.ringN++
	}
}

// Append records one event, assigning its sequence number and (if
// unset) timestamp, and returns the sequence number. It never blocks
// on the disk: durability happens on the committer goroutine, and
// Sync is the barrier that observes it. No-op (returning 0) on a nil
// or closed log.
func (l *Log) Append(e Event) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0
	}
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	l.ringStore(e)
	durable := l.f != nil && l.broken == nil
	if durable {
		l.pending = append(l.pending, e)
	} else {
		l.durable = l.seq // nothing to persist; Sync must not wait
	}
	l.mu.Unlock()
	if durable {
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
	l.met.events.Inc()
	return e.Seq
}

// Sync blocks until every event appended before the call is durable.
// It is the acknowledgement barrier: after Sync returns nil, a crash
// loses none of those events. In-memory logs return immediately.
func (l *Log) Sync() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return err
	}
	if l.f == nil || l.durable >= l.seq || l.closed {
		l.mu.Unlock()
		return nil
	}
	w := &syncWaiter{seq: l.seq, done: make(chan error, 1)}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return <-w.done
}

// runCommitter drains pending events in batches: one buffered write,
// one fsync, then wake every Sync waiting at or below the new durable
// sequence number.
func (l *Log) runCommitter() {
	defer close(l.done)
	for {
		select {
		case <-l.notify:
			l.commitPending()
		case <-l.stop:
			l.commitPending()
			return
		}
	}
}

// commitPending writes and fsyncs everything queued, then settles
// waiters. A write/fsync failure marks the log broken: in-flight and
// future Syncs fail, the ring keeps serving, the file gains nothing.
func (l *Log) commitPending() {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	l.mu.Unlock()

	var commitErr error
	if len(batch) > 0 {
		l.buf = l.buf[:0]
		for _, e := range batch {
			line, err := json.Marshal(e)
			if err != nil {
				commitErr = fmt.Errorf("audit: marshal event: %w", err)
				break
			}
			l.buf = append(l.buf, line...)
			l.buf = append(l.buf, '\n')
		}
		if commitErr == nil {
			if n, err := l.f.Write(l.buf); err != nil {
				// Truncate back so a partial line never becomes
				// mid-file corruption for the next Open.
				if terr := l.f.Truncate(l.size); terr != nil {
					commitErr = fmt.Errorf("audit: append failed (%v) and truncate failed: %w", err, terr)
				} else {
					commitErr = fmt.Errorf("audit: append: %w", err)
				}
			} else {
				l.size += int64(n)
				if !l.noSync {
					start := time.Now()
					if err := l.f.Sync(); err != nil {
						commitErr = fmt.Errorf("audit: fsync: %w", err)
					}
					l.met.fsync.ObserveDuration(time.Since(start))
				}
			}
		}
	}

	l.mu.Lock()
	if commitErr != nil {
		l.broken = fmt.Errorf("%w: %v", ErrBroken, commitErr)
		for _, w := range l.waiters {
			w.done <- l.broken
		}
		l.waiters = nil
	} else {
		if len(batch) > 0 {
			l.durable = batch[len(batch)-1].Seq
		}
		durable := l.durable
		kept := l.waiters[:0]
		for _, w := range l.waiters {
			if w.seq <= durable {
				w.done <- nil
			} else {
				kept = append(kept, w)
			}
		}
		l.waiters = kept
	}
	l.mu.Unlock()
}

// Close flushes pending events, stops the committer, and closes the
// file. Safe on nil.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, w := range l.waiters {
		w.done <- errors.New("audit: log closed")
	}
	l.waiters = nil
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("audit: close log: %w", err)
		}
	}
	return l.broken
}

// Durable reports whether the log is backed by a directory (and has
// not broken). False for nil and in-memory logs.
func (l *Log) Durable() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f != nil && l.broken == nil
}

// Seq returns the last assigned sequence number (total events ever
// appended, including replayed history).
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Filter selects events from the in-memory ring. Zero fields match
// everything.
type Filter struct {
	// Analyst keeps only events for this analyst ID.
	Analyst string
	// Since keeps only events at or after this time.
	Since time.Time
	// Until keeps only events at or before this time.
	Until time.Time
	// Limit caps the number of events returned (0 = no cap).
	Limit int
}

// Recent returns matching events from the ring, newest first. Nil log
// returns nil.
func (l *Log) Recent(f Filter) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.ringN; i++ {
		// Walk backwards from the most recently written slot.
		at := (l.ringAt - 1 - i + 2*len(l.ring)) % len(l.ring)
		e := l.ring[at]
		if f.Analyst != "" && e.Analyst != f.Analyst {
			continue
		}
		if !f.Since.IsZero() && e.Time.Before(f.Since) {
			continue
		}
		if !f.Until.IsZero() && e.Time.After(f.Until) {
			continue
		}
		out = append(out, e)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Replay reads every event in dir's audit log in order, calling fn for
// each. It returns the last sequence number seen and, when the final
// line is torn (crash mid-write), the byte offset the file should be
// truncated to (-1 when intact). Corruption anywhere before the final
// line is an error: audit history must not silently lose ε events. A
// missing file replays zero events.
func Replay(dir string, fn func(Event) error) (lastSeq uint64, truncateTo int64, err error) {
	f, err := os.Open(filepath.Join(dir, logFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, -1, nil
	}
	if err != nil {
		return 0, -1, fmt.Errorf("audit: open for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var offset, lineStart int64
	truncateTo = -1
	for {
		line, rerr := r.ReadBytes('\n')
		lineStart = offset
		offset += int64(len(line))
		if len(line) > 0 {
			if line[len(line)-1] != '\n' {
				// Torn tail: the crash cut the batch write short
				// before this line's newline, so the event here was
				// never acknowledged — truncating it never loses
				// acknowledged spend, and keeps the file
				// newline-terminated for the O_APPEND reopen.
				return lastSeq, lineStart, nil
			}
			var e Event
			if jerr := json.Unmarshal(line, &e); jerr != nil || e.Seq == 0 {
				// A terminated line that doesn't parse is real
				// corruption, not a torn tail.
				return 0, -1, fmt.Errorf("audit: corrupt record at byte %d", lineStart)
			}
			if e.Seq <= lastSeq {
				return 0, -1, fmt.Errorf("audit: sequence regressed at byte %d (%d after %d)", lineStart, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if fn != nil {
				if ferr := fn(e); ferr != nil {
					return lastSeq, -1, ferr
				}
			}
		}
		if rerr == io.EOF {
			return lastSeq, truncateTo, nil
		}
		if rerr != nil {
			return lastSeq, -1, fmt.Errorf("audit: read log: %w", rerr)
		}
	}
}

// syncDir fsyncs the directory so a newly created log file's entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("audit: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("audit: fsync dir: %w", err)
	}
	return nil
}
