package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func event(analyst string, eps float64, outcome string) Event {
	return Event{
		RequestID: "0123456789abcdef",
		Analyst:   analyst,
		Dataset:   "people",
		Session:   "sess-1",
		Kind:      "workload",
		Eps:       eps,
		Outcome:   outcome,
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	if seq := l.Append(event("a", 0.5, OutcomeReleased)); seq != 0 {
		t.Fatalf("nil Append returned %d", seq)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Recent(Filter{}); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if l.Durable() || l.Seq() != 0 {
		t.Fatal("nil log should be empty and not durable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEventJSONGolden pins the audit JSONL schema: external consumers
// parse this file, so key names, casing, and omission rules must not
// drift silently.
func TestEventJSONGolden(t *testing.T) {
	e := Event{
		Seq:       7,
		Time:      time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		RequestID: "0123456789abcdef",
		Analyst:   "a-1f2e3d4c",
		Dataset:   "people",
		Session:   "s-42",
		Kind:      "workload",
		Eps:       0.5,
		Outcome:   OutcomeReleased,
	}
	got, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":7,"time":"2026-01-02T03:04:05Z","request_id":"0123456789abcdef",` +
		`"analyst":"a-1f2e3d4c","dataset":"people","session":"s-42",` +
		`"kind":"workload","eps":0.5,"outcome":"released"}`
	if string(got) != want {
		t.Fatalf("audit JSONL schema drifted:\n got %s\nwant %s", got, want)
	}
	// Optional fields are omitted, not emitted empty.
	minimal, err := json.Marshal(Event{Seq: 1, Time: e.Time, Dataset: "d", Kind: "count", Eps: 0.1, Outcome: OutcomeDenied})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"request_id", "analyst", "session"} {
		if strings.Contains(string(minimal), key) {
			t.Fatalf("empty %q not omitted: %s", key, minimal)
		}
	}
}

func TestAppendSyncReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Durable() {
		t.Fatal("directory-backed log should be durable")
	}
	outcomes := []string{OutcomeReleased, OutcomeRetained, OutcomeRefunded, OutcomeDenied}
	for i, o := range outcomes {
		if seq := l.Append(event("alice", 0.1*float64(i+1), o)); seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed []Event
	last, truncateTo, err := Replay(dir, func(e Event) error {
		replayed = append(replayed, e)
		return nil
	})
	if err != nil || truncateTo != -1 {
		t.Fatalf("replay: last=%d truncateTo=%d err=%v", last, truncateTo, err)
	}
	if last != 4 || len(replayed) != 4 {
		t.Fatalf("replayed %d events, last seq %d; want 4, 4", len(replayed), last)
	}
	for i, o := range outcomes {
		if replayed[i].Outcome != o || replayed[i].Analyst != "alice" {
			t.Fatalf("event %d = %+v", i, replayed[i])
		}
	}

	// Reopen continues the sequence and pre-fills the ring.
	l2, err := Open(Config{Dir: dir, RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Seq() != 4 {
		t.Fatalf("reopened seq %d, want 4", l2.Seq())
	}
	if got := l2.Recent(Filter{}); len(got) != 4 || got[0].Seq != 4 {
		t.Fatalf("reopened ring: %+v", got)
	}
	if seq := l2.Append(event("bob", 0.2, OutcomeReleased)); seq != 5 {
		t.Fatalf("append after reopen assigned seq %d, want 5", seq)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRecentFilters(t *testing.T) {
	l, err := Open(Config{RingSize: 4}) // in-memory
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		e := event("alice", 0.1, OutcomeReleased)
		if i%2 == 1 {
			e.Analyst = "bob"
		}
		e.Time = base.Add(time.Duration(i) * time.Minute)
		l.Append(e)
	}
	// Ring holds only the newest 4 (seqs 3..6), newest first.
	all := l.Recent(Filter{})
	if len(all) != 4 || all[0].Seq != 6 || all[3].Seq != 3 {
		t.Fatalf("ring contents: %+v", all)
	}
	if got := l.Recent(Filter{Analyst: "bob"}); len(got) != 2 {
		t.Fatalf("analyst filter: %+v", got)
	}
	if got := l.Recent(Filter{Since: base.Add(4 * time.Minute)}); len(got) != 2 {
		t.Fatalf("since filter: %+v", got)
	}
	if got := l.Recent(Filter{Until: base.Add(3 * time.Minute)}); len(got) != 2 {
		t.Fatalf("until filter: %+v", got)
	}
	if got := l.Recent(Filter{Limit: 1}); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("limit: %+v", got)
	}
	if l.Durable() {
		t.Fatal("in-memory log must not report durable")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditTornTailTruncated cuts the log at every byte offset of its
// final record: replay must either keep all events or drop exactly the
// torn final one, and Open must truncate and resume cleanly.
func TestAuditTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Append(event("alice", 0.25, OutcomeReleased))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logFile)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offset where the final record starts.
	trimmed := strings.TrimRight(string(body), "\n")
	lastStart := strings.LastIndexByte(trimmed, '\n') + 1

	for cut := lastStart + 1; cut < len(body); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, logFile), body[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantEvents := 2
		if cut == len(body) { // intact
			wantEvents = 3
		}
		n := 0
		last, truncateTo, err := Replay(sub, func(Event) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut at %d: replay failed: %v", cut, err)
		}
		if n != wantEvents || last != uint64(wantEvents) {
			t.Fatalf("cut at %d: replayed %d events (last %d), want %d", cut, n, last, wantEvents)
		}
		if wantEvents == 2 && truncateTo != int64(lastStart) {
			t.Fatalf("cut at %d: truncateTo %d, want %d", cut, truncateTo, lastStart)
		}
		// Open truncates and appends cleanly on the damaged copy.
		l2, err := Open(Config{Dir: sub})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		if seq := l2.Append(event("alice", 0.5, OutcomeRetained)); seq != uint64(wantEvents+1) {
			t.Fatalf("cut at %d: resumed seq %d", cut, seq)
		}
		if err := l2.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		if last, _, err := Replay(sub, nil); err != nil || last != uint64(wantEvents+1) {
			t.Fatalf("cut at %d: re-replay after resume: last %d err %v", cut, last, err)
		}
	}
}

func TestMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Append(event("alice", 0.25, OutcomeReleased))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logFile)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle the FIRST record: that's corruption, not a torn tail.
	body[2] = 0xff
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(dir, nil); err == nil {
		t.Fatal("mid-file corruption replayed without error")
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("mid-file corruption opened without error")
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append(event(fmt.Sprintf("a-%d", w), 0.001, OutcomeReleased))
				if i%10 == 9 {
					if err := l.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	var prev uint64
	last, truncateTo, err := Replay(dir, func(e Event) error {
		if e.Seq != prev+1 {
			return fmt.Errorf("gap: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		n++
		return nil
	})
	if err != nil || truncateTo != -1 {
		t.Fatalf("replay: %v (truncateTo %d)", err, truncateTo)
	}
	if n != writers*each || last != uint64(writers*each) {
		t.Fatalf("replayed %d events, want %d", n, writers*each)
	}
}

// TestAuditCrashRecovery is the audit half of the CI crash smoke: a
// helper process appends events from concurrent goroutines, streaming
// "acked N" after each Sync; the parent SIGKILLs it mid-write and
// asserts replay keeps every acknowledged event (torn tail truncated,
// history parseable, sequence contiguous).
func TestAuditCrashRecovery(t *testing.T) {
	if dir := os.Getenv("OSDP_AUDIT_CRASH_DIR"); dir != "" {
		auditCrashHelper(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash smoke skipped in -short")
	}
	dir := t.TempDir()
	var prev uint64
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestAuditCrashRecovery$")
		cmd.Env = append(os.Environ(), "OSDP_AUDIT_CRASH_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		ready := make(chan error, 1)
		ackCh := make(chan uint64, 4096)
		scanDone := make(chan struct{})
		go func() {
			defer close(scanDone)
			sc := bufio.NewScanner(stdout)
			first := true
			for sc.Scan() {
				line := sc.Text()
				if first {
					first = false
					if line != "ready" {
						ready <- fmt.Errorf("unexpected first line %q", line)
						return
					}
					ready <- nil
					continue
				}
				var n uint64
				if _, err := fmt.Sscanf(line, "acked %d", &n); err == nil {
					select {
					case ackCh <- n:
					default:
					}
				}
			}
		}()
		select {
		case err := <-ready:
			if err != nil {
				t.Fatalf("round %d: helper never became ready: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatalf("round %d: helper timed out", round)
		}
		time.Sleep(time.Duration(5+round*7) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		<-scanDone
		_ = cmd.Wait()
		var lastAcked uint64
		for loop := true; loop; {
			select {
			case n := <-ackCh:
				if n > lastAcked {
					lastAcked = n
				}
			default:
				loop = false
			}
		}

		// Replay must parse cleanly with a contiguous sequence and keep
		// at least every acknowledged event.
		var count uint64
		var prevSeq uint64
		last, _, err := Replay(dir, func(e Event) error {
			if e.Seq != prevSeq+1 {
				return fmt.Errorf("sequence gap: %d after %d", e.Seq, prevSeq)
			}
			prevSeq = e.Seq
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: replay after crash failed: %v", round, err)
		}
		if last < prev {
			t.Fatalf("round %d: audit history went backwards: %d -> %d", round, prev, last)
		}
		if last < lastAcked {
			t.Fatalf("round %d: replay lost acknowledged events: last seq %d < acked %d", round, last, lastAcked)
		}
		// Open must also succeed (truncating any torn tail).
		l, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: open after crash failed: %v", round, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("round %d: replayed %d events (acked floor %d)", round, count, lastAcked)
		prev = last
	}
	if prev == 0 {
		t.Fatal("no events survived any crash round; helper never appended")
	}
}

// auditCrashHelper runs inside the subprocess: concurrent appenders
// plus a syncer that acknowledges progress, until SIGKILLed.
func auditCrashHelper(dir string) {
	l, err := Open(Config{Dir: dir})
	if err != nil {
		fmt.Printf("open failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ready")
	// Each goroutine appends then blocks on Sync, so the SIGKILL lands
	// with writers parked mid-batch and the committer mid-write. After
	// Sync returns nil every event at or below seq is durable, so seq
	// is a valid acknowledgement floor.
	for w := 0; w < 8; w++ {
		go func(w int) {
			analyst := fmt.Sprintf("a-%d", w)
			for {
				seq := l.Append(event(analyst, 0.001, OutcomeReleased))
				if err := l.Sync(); err != nil {
					fmt.Printf("sync failed: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("acked %d\n", seq)
			}
		}(w)
	}
	select {} // appenders run until the parent kills the process
}
