package lint

import (
	"go/ast"
	"go/token"

	"osdp/internal/lint/analysis"
)

// NilSafeTelemetry enforces the "nil registry IS the disabled mode"
// contract from DESIGN.md "Observability": every exported method on a
// pointer receiver in internal/telemetry must be a no-op on a nil
// receiver, so call sites pay one branch — never a nil-check — and
// disabling telemetry is configuration, not plumbing.
//
// Accepted shapes:
//
//   - the first statement is a nil-receiver guard: `if recv == nil
//     { return ... }`, including compound conditions whose leftmost
//     operand is the nil test (`if h == nil || math.IsNaN(v)`);
//   - pure delegation: every statement is a call to a method on the
//     same receiver (which carries the guard), e.g. Counter.Inc's
//     `c.Add(1)` or Histogram.Summary's `return h.Quantile(...), ...`.
var NilSafeTelemetry = &analysis.Analyzer{
	Name: "nilsafetelemetry",
	Doc:  "exported telemetry methods on pointer receivers must no-op on a nil receiver (nil registry IS the disabled mode)",
	Run:  runNilSafeTelemetry,
}

func runNilSafeTelemetry(pass *analysis.Pass) error {
	if !pass.PathIn("osdp/internal/telemetry") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || !d.Name.IsExported() || d.Body == nil {
				continue
			}
			recv, _, ptr, isMethod := receiverName(d)
			if !isMethod || !ptr {
				continue
			}
			if recv == "" {
				pass.Reportf(d.Name.Pos(), "exported method %s has an unnamed pointer receiver and so cannot guard against nil; name it and add the guard", d.Name.Name)
				continue
			}
			if startsWithNilGuard(d.Body, recv) || delegatesToReceiver(d.Body, recv) {
				continue
			}
			pass.Reportf(d.Name.Pos(), "exported method %s on pointer receiver %q must start with a nil-receiver guard (nil registry IS the disabled mode; DESIGN.md \"Observability\")", d.Name.Name, recv)
		}
	}
	return nil
}

// startsWithNilGuard reports whether the body's first statement is
// `if recv == nil ... { ...; return }`.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condHasNilTest(ifs.Cond, recv) {
		return false
	}
	// The guard must leave the method: its body ends in a return.
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condHasNilTest reports whether the condition is `recv == nil`, or a
// || chain whose leftmost operand is.
func condHasNilTest(cond ast.Expr, recv string) bool {
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = bin.X
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		x, xok := bin.X.(*ast.Ident)
		y, yok := bin.Y.(*ast.Ident)
		return xok && yok && ((x.Name == recv && y.Name == "nil") || (x.Name == "nil" && y.Name == recv))
	}
}

// delegatesToReceiver reports whether every statement is a call (or a
// return of calls) dispatched on the receiver itself.
func delegatesToReceiver(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	isRecvCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == recv
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if !isRecvCall(s.X) {
				return false
			}
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				return false
			}
			for _, r := range s.Results {
				if !isRecvCall(r) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}
