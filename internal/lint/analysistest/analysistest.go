// Package analysistest runs one analyzer over fixture packages under
// testdata and matches its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Layout: testdata/src/<importpath>/... — each fixture package's
// directory path below src IS its import path, so analyzers' PathIn
// scoping works unchanged. A fixture line expecting a diagnostic
// carries a trailing comment
//
//	// want "regexp"
//
// and the runner fails the test for any unmatched want or unexpected
// diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"osdp/internal/lint/analysis"
)

// wantRe extracts the quoted pattern from a // want comment; both
// backtick and double-quote delimiters are accepted (backticks avoid
// escaping when the message itself contains quotes). The optional
// "+N" suffix anchors the expectation N lines below the comment, for
// cases where a trailing comment would change the fixture's meaning
// (e.g. it would count as a var's doc comment).
var wantRe = regexp.MustCompile("//\\s*want(\\+\\d+)?\\s+(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// Run loads the fixture packages rooted at dir (a testdata/src
// directory) whose import paths are given, runs the analyzer over all
// of them (suppressions applied), and checks diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, ip := range importPaths {
		pkgDir := filepath.Join(dir, filepath.FromSlash(ip))
		pkg, err := analysis.LoadDir(fset, pkgDir, ip)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", ip, err)
		}
		if pkg == nil {
			t.Fatalf("fixture %s: no Go files in %s", ip, pkgDir)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type want struct {
		pattern *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, name := range fixtureFiles(t, pkg.Dir) {
			path := filepath.Join(pkg.Dir, name)
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", path, err)
			}
			for i, line := range strings.Split(string(body), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				raw := m[2]
				if raw == "" {
					raw = m[3]
				}
				re, err := regexp.Compile(strings.ReplaceAll(raw, `\"`, `"`))
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, raw, err)
				}
				offset := 0
				if m[1] != "" {
					if offset, err = strconv.Atoi(m[1][1:]); err != nil {
						t.Fatalf("%s:%d: bad want offset %q: %v", path, i+1, m[1], err)
					}
				}
				key := fmt.Sprintf("%s:%d", path, i+1+offset)
				wants[key] = append(wants[key], &want{pattern: re, raw: raw})
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}

func fixtureFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	return names
}
