package lint_test

import (
	"testing"

	"osdp/internal/lint"
	"osdp/internal/lint/analysis"
)

// TestRepoIsClean runs the full analyzer suite over the repository
// itself — the same scan CI's osdp-lint step performs — and requires
// zero findings. Every invariant the suite encodes holds on HEAD; a
// failure here means a change broke a documented contract (or needs a
// reasoned //lint:ignore).
func TestRepoIsClean(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	diags = append(diags, analysis.MalformedIgnores(pkgs)...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
