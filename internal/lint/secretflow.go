package lint

import (
	"go/ast"
	"strings"

	"osdp/internal/lint/analysis"
)

// SecretFlow guards the credential plane: API keys, tokens, and other
// secrets must never reach a formatting or logging sink, where they
// would land in process logs, error chains returned to clients, or the
// audit trail. The analyzer flags any fmt/log/slog call (including
// slog attribute constructors and method-style logger calls) whose
// argument list contains an identifier or field selector whose name
// matches a secret pattern: secret, password, credential, apikey,
// token, key. Names containing "hash" are exempt — logging a key HASH
// is the sanctioned way to correlate without disclosure (the audit
// trail stores analyst key hashes for exactly this reason).
var SecretFlow = &analysis.Analyzer{
	Name: "secretflow",
	Doc:  "no identifier matching key/token/secret/password may flow into a fmt, log, or slog sink; log hashes instead",
	Run:  runSecretFlow,
}

// secretScope lists the packages that handle credentials; elsewhere
// the patterns would be noise (e.g. histogram "keys").
var secretScope = []string{
	"osdp/internal/server",
	"osdp/internal/ledger",
	"osdp/internal/audit",
	"osdp/internal/telemetry",
	"osdp/cmd/osdp-server",
}

// sinkFuncs are package-level formatting/logging calls by qualifier.
var sinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Errorf": true, "Sprintf": true, "Printf": true, "Fprintf": true,
		"Print": true, "Println": true, "Sprint": true, "Sprintln": true,
		"Fprint": true, "Fprintln": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"slog": {
		"Info": true, "Warn": true, "Error": true, "Debug": true,
		"Log": true, "LogAttrs": true,
		"String": true, "Any": true, "Group": true,
	},
}

// sinkMethods are method names that act as logging sinks regardless of
// receiver (logger values, telemetry trace spans).
var sinkMethods = map[string]bool{
	"Info": true, "Warn": true, "Error": true, "Debug": true,
	"Log": true, "LogAttrs": true, "Printf": true, "Println": true, "Print": true,
}

func runSecretFlow(pass *analysis.Pass) error {
	if !pass.PathIn(secretScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qual, name := calleeName(call)
			isSink := false
			if fns, ok := sinkFuncs[qual]; ok && fns[name] {
				isSink = true
			} else if qual != "" && sinkMethods[name] {
				isSink = true
			}
			if !isSink || len(call.Args) == 0 {
				return true
			}
			for _, arg := range call.Args {
				if secret, found := secretArg(arg); found {
					pass.Reportf(arg.Pos(), "%q flows into %s.%s: secrets must not reach logs or error chains; log a hash instead (DESIGN.md \"Static analysis\")", secret, qual, name)
				}
			}
			return true
		})
	}
	return nil
}

// secretArg reports whether the expression is (or contains, for unary
// and simple composite shapes) an identifier whose terminal name
// matches a secret pattern.
func secretArg(arg ast.Expr) (string, bool) {
	found := ""
	ast.Inspect(arg, func(n ast.Node) bool {
		// Do not descend into calls: hashKey(key) sanitises its
		// argument, and flagging the callee's args would punish the fix.
		if _, isCall := n.(*ast.CallExpr); isCall {
			return false
		}
		var name string
		switch x := n.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			// The terminal field names the value that flows; the base
			// is just a path (key.analyst carries an analyst ID, not a
			// key). Judge the selector and skip its children.
			if isSecretName(x.Sel.Name) && found == "" {
				found = x.Sel.Name
			}
			return false
		default:
			return true
		}
		if isSecretName(name) && found == "" {
			found = name
		}
		return found == ""
	})
	return found, found != ""
}

// isSecretName applies the credential naming patterns. Exact-match
// short names catch `key`, `tok`; suffix matches catch `apiKey`,
// `authToken`, `clientSecret`. "hash" anywhere in the name exempts it.
func isSecretName(name string) bool {
	lower := strings.ToLower(name)
	if strings.Contains(lower, "hash") {
		return false
	}
	switch lower {
	case "key", "apikey", "tok", "token", "secret", "password", "passwd", "credential", "credentials":
		return true
	}
	for _, suffix := range []string{"key", "token", "secret", "password", "credential"} {
		if strings.HasSuffix(lower, suffix) && len(lower) > len(suffix) {
			return true
		}
	}
	return false
}
