package lint

import (
	"go/ast"
	"go/token"
	"sort"

	"osdp/internal/lint/analysis"
)

// ChargeBeforeNoise enforces the charge-ordering contract from
// DESIGN.md "Budget control plane": on the query path, every ε-bearing
// release is charged to an accountant BEFORE any noise is sampled, so
// an exhausted budget can never leak a partial answer and a crash
// between charge and answer errs toward over-counting spend.
//
// Two syntactic rules approximate the CFG-dominance property:
//
//   - internal/core: a Session method that touches the session's noise
//     source (any use of the recv.src field, or a direct noise.<Sampler>
//     call) must make a charge call — charge/Charge/Spend — lexically
//     before the first such touch. Mechanism primitives that take a
//     noise.Source parameter are exempt: their caller owns the charge.
//
//   - internal/server: a call to a session query method
//     (.sess.Histogram and friends) outside a function literal, a call
//     of a function literal that contains one, and a call of the
//     conventional compiled-mechanism closure `run` must all be
//     lexically preceded by a .Charge( call in the same function.
//     Function-literal BODIES are skipped at definition sites — the
//     charge is required where the closure is invoked, not built.
//
//   - internal/server, admission ordering: in a function that acquires
//     an admission slot (.adm.acquire or .acquire), every .Charge(
//     must come lexically AFTER the first acquire. Charging before
//     admission would bill requests that are then rejected or
//     cancelled while queued — the accounting the admission layer
//     exists to prevent (DESIGN.md "Admission control").
//
// Lexical precedence (not true dominance) is deliberate: the real code
// guards the ledger charge behind "if Ledger != nil" for ledger-less
// servers, which strict dominance would flag.
var ChargeBeforeNoise = &analysis.Analyzer{
	Name: "chargebeforenoise",
	Doc:  "on core/server query paths, an accountant/ledger charge must precede noise sampling and private releases",
	Run:  runChargeBeforeNoise,
}

// noiseSamplers are the sampling entry points of internal/noise.
var noiseSamplers = map[string]bool{
	"Laplace": true, "LaplaceVec": true,
	"OneSidedLaplace": true, "OneSidedLaplaceVec": true,
	"Bernoulli": true, "Geometric": true, "Binomial": true,
	"Gaussian": true, "Exponential": true,
}

// sessionQueryMethods are the noise-drawing methods of core.Session as
// the serving layer calls them.
var sessionQueryMethods = map[string]bool{
	"Histogram": true, "IntHistogram": true, "Count": true,
	"Quantile": true, "Sample": true, "Workload": true,
}

// chargeNames are the calls that admit ε against a budget.
var chargeNames = map[string]bool{"charge": true, "Charge": true, "Spend": true}

func runChargeBeforeNoise(pass *analysis.Pass) error {
	switch {
	case pass.PathIn("osdp/internal/core"):
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if d, ok := decl.(*ast.FuncDecl); ok {
					checkCoreFunc(pass, d)
				}
			}
		}
	case pass.PathIn("osdp/internal/server"):
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if d, ok := decl.(*ast.FuncDecl); ok {
					checkServerFunc(pass, d)
				}
			}
		}
	}
	return nil
}

// takesNoiseSource reports whether the function receives a
// noise.Source parameter — the mark of a mechanism primitive whose
// caller owns the charge.
func takesNoiseSource(d *ast.FuncDecl) bool {
	if d.Type.Params == nil {
		return false
	}
	for _, field := range d.Type.Params.List {
		chain := selectorChain(field.Type)
		if len(chain) == 2 && chain[0] == "noise" && chain[1] == "Source" {
			return true
		}
	}
	return false
}

// checkCoreFunc applies the core rule to one Session method.
func checkCoreFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	recv, typ, _, isMethod := receiverName(d)
	if !isMethod || typ != "Session" || d.Body == nil || takesNoiseSource(d) {
		return
	}
	firstCharge := token.NoPos
	firstNoise := token.NoPos
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			qual, name := calleeName(x)
			if chargeNames[name] && (firstCharge == token.NoPos || x.Pos() < firstCharge) {
				firstCharge = x.Pos()
			}
			if qual == "noise" && noiseSamplers[name] && (firstNoise == token.NoPos || x.Pos() < firstNoise) {
				firstNoise = x.Pos()
			}
		case *ast.SelectorExpr:
			// Touching the session's noise source (s.src) hands out
			// sampling capability — estimator Fit calls, mechanism
			// constructors, direct draws all receive it this way.
			if id, ok := x.X.(*ast.Ident); ok && recv != "" && id.Name == recv && x.Sel.Name == "src" {
				if firstNoise == token.NoPos || x.Pos() < firstNoise {
					firstNoise = x.Pos()
				}
			}
		}
		return true
	})
	if firstNoise == token.NoPos {
		return
	}
	if firstCharge == token.NoPos || firstCharge > firstNoise {
		pass.Reportf(firstNoise, "Session.%s reaches the noise source before charging the accountant; charge ε first (DESIGN.md \"Budget control plane\")", d.Name.Name)
	}
}

// checkServerFunc applies the server rule to one function.
func checkServerFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	// Function-literal interiors are deferred execution: excluded from
	// the linear scan, except that CALLING a literal inline makes its
	// releases happen here.
	lits := map[*ast.FuncLit]bool{} // lit -> contains a session query call
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits[lit] = containsSessionQuery(lit.Body)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for lit := range lits {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				return true
			}
		}
		return false
	}

	const (
		evCharge = iota
		evRelease
		evAdmit
	)
	type event struct {
		pos  token.Pos
		kind int
		what string
	}
	var events []event
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inLit(call.Pos()) {
			return true
		}
		qual, name := calleeName(call)
		switch {
		case chargeNames[name]:
			events = append(events, event{pos: call.Pos(), kind: evCharge})
		case name == "acquire":
			// The admission controller's slot acquisition (s.adm.acquire
			// by convention) starts the admitted region.
			events = append(events, event{pos: call.Pos(), kind: evAdmit})
		case qual == "sess" && sessionQueryMethods[name]:
			events = append(events, event{pos: call.Pos(), kind: evRelease, what: "session query " + name})
		case name == "run" && qual == "":
			// The compiled-mechanism closure is by convention bound to
			// `run`; invoking it executes charge-gated sampling.
			if _, isIdent := call.Fun.(*ast.Ident); isIdent {
				events = append(events, event{pos: call.Pos(), kind: evRelease, what: "compiled mechanism run()"})
			}
		default:
			if lit, isLit := call.Fun.(*ast.FuncLit); isLit && lits[lit] {
				events = append(events, event{pos: call.Pos(), kind: evRelease, what: "inline mechanism closure"})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	admits := false
	for _, e := range events {
		admits = admits || e.kind == evAdmit
	}
	charged, admitted := false, false
	for _, e := range events {
		switch e.kind {
		case evAdmit:
			admitted = true
		case evCharge:
			if admits && !admitted {
				pass.Reportf(e.pos, "ledger/accountant charge executes before admission acquire in %s; admit first so a rejected or cancelled-while-queued request never charges ε (DESIGN.md \"Admission control\")", d.Name.Name)
			}
			charged = true
		case evRelease:
			if !charged {
				pass.Reportf(e.pos, "%s executes before any ledger/accountant charge in %s; charge ε first (DESIGN.md \"Budget control plane\")", e.what, d.Name.Name)
			}
		}
	}
}

// containsSessionQuery reports whether the block calls a session query
// method.
func containsSessionQuery(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if qual, name := calleeName(call); qual == "sess" && sessionQueryMethods[name] {
				found = true
			}
		}
		return !found
	})
	return found
}
