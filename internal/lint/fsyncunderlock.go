package lint

import (
	"go/ast"
	"strings"

	"osdp/internal/lint/analysis"
)

// FsyncUnderLock enforces the group-commit lesson from DESIGN.md
// "Group commit" (the PR 7 regression class): in the durable planes —
// internal/ledger and internal/audit — no blocking file I/O may run
// while the state mutex is held. Writers admit under the lock, park on
// the commit queue, release, and await the committer; an fsync under
// the mutex re-serialises every concurrent charge behind the disk.
//
// The check is intra-procedural with an intra-package closure: a
// function "does I/O" if it calls a file verb (Sync, Write, Truncate,
// Rename, ...) directly or calls a same-package function that does.
// Within each function, a linear walk tracks mutex state — `<x>.mu
// .Lock()` raises it, `.Unlock()` lowers it, `defer ....Unlock()`
// pins it to the end of the function — and any I/O-bearing call made
// while the mutex is held is reported. An Unlock inside a branch that
// ends in return (the bail-out idiom) does not lower the outer path's
// state. Function-literal bodies are analysed separately with a fresh
// lock state: goroutine bodies do not inherit the spawner's lock.
var FsyncUnderLock = &analysis.Analyzer{
	Name: "fsyncunderlock",
	Doc:  "no file Write/Sync (or call reaching one) while a mutex is held in internal/ledger and internal/audit",
	Run:  runFsyncUnderLock,
}

// ioVerbs are the blocking file operations of the durable planes.
var ioVerbs = map[string]bool{
	"Sync": true, "Write": true, "WriteString": true, "WriteFile": true,
	"Truncate": true, "Rename": true, "ReadFile": true, "OpenFile": true,
	"Create": true, "MkdirAll": true, "Remove": true,
}

func runFsyncUnderLock(pass *analysis.Pass) error {
	if !pass.PathIn("osdp/internal/ledger", "osdp/internal/audit") {
		return nil
	}
	doesIO := ioClosure(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, doesIO: doesIO}
			w.walkBody(d.Body, lockState{})
		}
	}
	return nil
}

// mutexChain reports whether a Lock/Unlock call's receiver chain names
// a mutex ("mu" component, or a name ending in "Mu"/"Mutex").
func mutexChain(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for _, part := range selectorChain(sel.X) {
		lower := strings.ToLower(part)
		if lower == "mu" || strings.HasSuffix(lower, "mu") || strings.HasSuffix(lower, "mutex") || strings.HasSuffix(lower, "lock") {
			return true
		}
	}
	return false
}

// directIO reports whether the call is a file verb itself, excluding
// obvious in-memory writers (append to byte slices is not a call;
// buffered builders do not appear in these packages).
func directIO(call *ast.CallExpr) (string, bool) {
	_, name := calleeName(call)
	if ioVerbs[name] {
		return name, true
	}
	return "", false
}

// ioClosure computes the set of same-package function names that
// transitively perform file I/O. Names are bare identifiers (methods
// and functions share the namespace), which is precise enough inside
// these two small packages.
func ioClosure(files []*ast.File) map[string]bool {
	bodies := map[string]*ast.BlockStmt{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if d, ok := decl.(*ast.FuncDecl); ok && d.Body != nil {
				bodies[d.Name.Name] = d.Body
			}
		}
	}
	doesIO := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for name, body := range bodies {
			if doesIO[name] {
				continue
			}
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, io := directIO(call); io {
					found = true
					return false
				}
				if _, callee := calleeName(call); doesIO[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				doesIO[name] = true
				changed = true
			}
		}
	}
	return doesIO
}

// lockState is the mutex accounting at one point of the linear walk.
type lockState struct {
	depth    int  // Lock minus Unlock on the current path
	deferred bool // a defer ...Unlock() pins the mutex to function end
}

func (s lockState) held() bool { return s.depth > 0 || s.deferred }

// lockWalker performs the per-function scan.
type lockWalker struct {
	pass   *analysis.Pass
	doesIO map[string]bool
}

// walkBody scans statements in order, returning the state at the end
// of the block.
func (w *lockWalker) walkBody(body *ast.BlockStmt, st lockState) lockState {
	for _, stmt := range body.List {
		st = w.walkStmt(stmt, st)
	}
	return st
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, st lockState) lockState {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st = w.walkExpr(e, st)
		}
		return st
	case *ast.DeferStmt:
		if call := s.Call; mutexChain(call) {
			if _, name := calleeName(call); name == "Unlock" || name == "RUnlock" {
				if st.depth > 0 {
					st.depth--
				}
				st.deferred = true
				return st
			}
		}
		// Deferred I/O runs at return, after explicit Unlocks — only a
		// deferred unlock still pins it, which held() covers.
		return st
	case *ast.GoStmt:
		// The goroutine body runs with its own (empty) lock state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkBody(lit.Body, lockState{})
		}
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		st = w.walkExpr(s.Cond, st)
		branch := w.walkBody(s.Body, st)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkBody(e, st)
			case *ast.IfStmt:
				w.walkStmt(e, st)
			}
		}
		// A branch that exits the function does not change the
		// fall-through path's lock state (the bail-out idiom:
		// `if bad { mu.Unlock(); return }`).
		if endsInExit(s.Body) {
			return st
		}
		return branch
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.walkExpr(s.Cond, st)
		}
		return w.walkBody(s.Body, st)
	case *ast.RangeStmt:
		st = w.walkExpr(s.X, st)
		return w.walkBody(s.Body, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.walkExpr(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := st
				for _, cs := range cc.Body {
					inner = w.walkStmt(cs, inner)
				}
			}
		}
		return st
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := st
				for _, cs := range cc.Body {
					inner = w.walkStmt(cs, inner)
				}
			}
		}
		return st
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := st
				for _, cs := range cc.Body {
					inner = w.walkStmt(cs, inner)
				}
			}
		}
		return st
	case *ast.BlockStmt:
		return w.walkBody(s, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st = w.walkExpr(e, st)
		}
		return st
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
		return st
	}
	return st
}

// walkExpr scans one expression for lock transitions and I/O calls.
func (w *lockWalker) walkExpr(expr ast.Expr, st lockState) lockState {
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				// Analysed separately when invoked; skip here.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name := calleeName(call)
			if mutexChain(call) {
				switch name {
				case "Lock", "RLock":
					st.depth++
				case "Unlock", "RUnlock":
					if st.depth > 0 {
						st.depth--
					}
				}
				return true
			}
			if st.held() {
				if verb, io := directIO(call); io {
					w.pass.Reportf(call.Pos(), "file %s while a mutex is held: move durable I/O outside the lock (group-commit discipline, DESIGN.md \"Group commit\")", verb)
				} else if w.doesIO[name] {
					w.pass.Reportf(call.Pos(), "call to %s (which performs file I/O) while a mutex is held: move durable I/O outside the lock (DESIGN.md \"Group commit\")", name)
				}
			}
			return true
		})
	}
	walk(expr)
	return st
}

// endsInExit reports whether the block's last statement leaves the
// function (return or panic).
func endsInExit(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
