// Package server fixture: credentials must not reach fmt/log/slog
// sinks.
package server

import (
	"fmt"
	"log/slog"
)

func badError(apiKey string) error {
	return fmt.Errorf("auth failed for %s", apiKey) // want `apiKey.*flows into fmt.Errorf`
}

func badLog(logger *slog.Logger, token string) {
	logger.Info("session issued", "token", token) // want `token.*flows into logger.Info`
}

func badField(c struct{ Secret string }) string {
	return fmt.Sprintf("config: %v", c.Secret) // want `Secret.*flows into fmt.Sprintf`
}

// goodHash logs the sanctioned correlate: a hash of the credential.
func goodHash(logger *slog.Logger, apiKey string) {
	logger.Info("auth ok", "key_hash", hashKey(apiKey))
}

// goodName logs a non-secret identifier.
func goodName(logger *slog.Logger, analyst string) {
	logger.Info("auth ok", "analyst", analyst)
}

func hashKey(k string) string { return k }
