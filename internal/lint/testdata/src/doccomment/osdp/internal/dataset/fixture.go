// Package dataset fixture: exported identifiers need godoc-convention
// doc comments.
package dataset

// Good is documented and starts with its own name.
func Good() {}

func Bad() {} // want `exported Bad has no doc comment`

// Returns a thing, which breaks the convention.
func Misnamed() {} // want `doc comment for Misnamed does not start with`

// A Table follows the standard article opener.
type Table struct{}

type Row struct{} // want `exported Row has no doc comment`

// Limits are grouped constants: the group doc covers the members.
const (
	MaxRows = 1 << 20
	MaxCols = 1 << 10
)

// want+2 `exported var MaxName has no doc comment`

var MaxName = 64

// methods on unexported types are not part of the godoc surface.
type internalThing struct{}

func (internalThing) Visible() {}

// unexported declarations are exempt.
func helper() {}
