// Package telemetry fixture: exported pointer-receiver methods must
// no-op on a nil receiver.
package telemetry

import "sync/atomic"

// Counter is a monotone counter.
type Counter struct {
	n atomic.Int64
}

// Bad mutates through the receiver with no guard.
func (c *Counter) Bad() { // want `must start with a nil-receiver guard`
	c.n.Add(1)
}

// Add is the guarded primitive.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Inc delegates to the guarded primitive, which is also accepted.
func (c *Counter) Inc() {
	c.Add(1)
}

// Value shows a compound guard: the nil test leads a || chain.
func (c *Counter) Value(scale float64) int64 {
	if c == nil || scale == 0 {
		return 0
	}
	return c.n.Load()
}

// Snapshot returns receiver-method calls only: pure delegation.
func (c *Counter) Snapshot() (int64, int64) {
	return c.Load(), c.Load()
}

// Load is guarded.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// ByValue is a value-receiver method: nil cannot reach it, so it is
// exempt.
func (c Counter) ByValue() {}

// unexported methods are internal plumbing and exempt.
func (c *Counter) reset() { c.n.Store(0) }
