// Package server fixture for chargebeforenoise: session query methods
// and compiled-mechanism closures must run after a ledger charge.
package server

// Server mirrors the serving layer's shape.
type Server struct {
	ledger Ledger
	adm    Admitter
}

// Ledger stands in for the real ledger.
type Ledger struct{}

// Charge admits spend.
func (Ledger) Charge(analyst, dataset string, eps float64) error { return nil }

// Admitter stands in for the admission controller.
type Admitter struct{}

// acquire blocks for a fair-queue slot.
func (Admitter) acquire(analyst string) (func(), error) { return func() {}, nil }

func (s *Server) badQuery(sess Sess) {
	_, _ = sess.Histogram("age", 0.1) // want `session query Histogram executes before any ledger/accountant charge`
}

func (s *Server) goodQuery(sess Sess) {
	_ = s.ledger.Charge("a", "d", 0.1)
	_, _ = sess.Histogram("age", 0.1)
}

func (s *Server) badRun(run func() error) {
	_ = run() // want `compiled mechanism run\(\) executes before any ledger/accountant charge`
}

func (s *Server) goodRun(run func() error) {
	_ = s.ledger.Charge("a", "d", 0.1)
	_ = run()
}

// goodDeferred BUILDS a closure over the session but never invokes it:
// the charge obligation belongs to the eventual caller.
func (s *Server) goodDeferred(sess Sess) func() {
	return func() { _, _ = sess.Histogram("age", 0.1) }
}

func (s *Server) badInline(sess Sess) {
	func() { _, _ = sess.Histogram("age", 0.1) }() // want `inline mechanism closure executes before any ledger/accountant charge`
}

// goodAdmitted mirrors queryCounted: admission slot first, then the
// charge, then the release.
func (s *Server) goodAdmitted(sess Sess) {
	release, _ := s.adm.acquire("a")
	defer release()
	_ = s.ledger.Charge("a", "d", 0.1)
	_, _ = sess.Histogram("age", 0.1)
}

// badChargeBeforeAdmit bills the analyst before admission decides the
// request's fate — a rejected or cancelled-while-queued request would
// still have spent ε.
func (s *Server) badChargeBeforeAdmit(sess Sess) {
	_ = s.ledger.Charge("a", "d", 0.1) // want `ledger/accountant charge executes before admission acquire`
	release, _ := s.adm.acquire("a")
	defer release()
	_, _ = sess.Histogram("age", 0.1)
}

// Sess stands in for *core.Session.
type Sess interface {
	Histogram(col string, eps float64) ([]float64, error)
}
