// Package core fixture for chargebeforenoise: Session methods must
// charge before touching the noise source.
package core

// Session mirrors the real session shape: an accountant and a noise
// source.
type Session struct {
	acct *Accountant
	src  Source
}

// Accountant and Source stand in for the real types; the analyzer is
// purely syntactic.
type (
	Accountant struct{}
	Source     struct{}
)

func (s *Session) charge(eps float64) error { return nil }

// BadCount samples before charging.
func (s *Session) BadCount(eps float64) float64 {
	v := noise.Laplace(s.src, 1/eps) // want `reaches the noise source before charging`
	_ = s.charge(eps)
	return v
}

// GoodCount charges first, then samples.
func (s *Session) GoodCount(eps float64) float64 {
	if err := s.charge(eps); err != nil {
		return 0
	}
	return noise.Laplace(s.src, 1/eps)
}

// NoNoise never touches the source, so no charge is required.
func (s *Session) NoNoise() int { return 0 }

// Primitive takes a noise.Source parameter: a mechanism primitive whose
// caller owns the charge, so sampling without a charge is fine here.
func (s *Session) Primitive(src noise.Source, eps float64) float64 {
	return noise.Laplace(src, 1/eps)
}
