// Package ledger fixture: credential minting may use crypto/rand, but
// math/rand stays forbidden.
package ledger

import (
	"crypto/rand"
	mrand "math/rand" // want `import of math/rand in privacy-bearing package`
)

var (
	_ = rand.Read
	_ = mrand.Int
)
