// Package noise fixture: the noise package itself owns the generators
// and may import anything.
package noise

import (
	"crypto/rand"
	mrand "math/rand"
)

var (
	_ = rand.Read
	_ = mrand.Int
)
