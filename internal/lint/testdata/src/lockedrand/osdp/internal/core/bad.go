// Package core fixture: direct rand imports in a privacy-bearing
// package are forbidden.
package core

import (
	"crypto/rand" // want `import of crypto/rand in privacy-bearing package`
	"math/rand"   // want `import of math/rand in privacy-bearing package`
)

var _ = rand.Int
