package core

import (
	//lint:ignore lockedrand fixture demonstrating a documented exception
	"math/rand/v2"
)

var _ = rand.IntN
