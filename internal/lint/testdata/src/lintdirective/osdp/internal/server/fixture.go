// Package server fixture: //lint:ignore directives must name analyzers
// AND give a reason.
package server

//lint:ignore secretflow
func malformed() {} // the directive above lacks a reason

//lint:ignore secretflow the reason documents the exception
func wellFormed() {}

var (
	_ = malformed
	_ = wellFormed
)
