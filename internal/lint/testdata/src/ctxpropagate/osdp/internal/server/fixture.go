// Package server fixture: functions that receive a context must
// thread it, not mint a fresh one.
package server

import "context"

func bad(ctx context.Context) error {
	return query(context.Background()) // want `context.Background\(\) inside a function that already receives`
}

func badTODO(ctx context.Context) error {
	return query(context.TODO()) // want `context.TODO\(\) inside a function that already receives`
}

func good(ctx context.Context) error {
	return query(ctx)
}

// root has no context parameter: it IS a context root, and
// Background() is correct here.
func root() error {
	return query(context.Background())
}

// detached spawns a goroutine whose literal takes no context: a new
// root, deliberately severed from the request (e.g. a background
// committer), which is allowed.
func detached(ctx context.Context) {
	go func() {
		_ = query(context.Background())
	}()
}

// literal: a function literal that takes ctx must thread it too.
func literal(ctx context.Context) {
	f := func(ctx context.Context) error {
		return query(context.Background()) // want `context.Background\(\) inside a function that already receives`
	}
	_ = f(ctx)
}

func query(ctx context.Context) error { return ctx.Err() }
