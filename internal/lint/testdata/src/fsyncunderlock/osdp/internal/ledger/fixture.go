// Package ledger fixture: no file I/O while a mutex is held.
package ledger

import (
	"os"
	"sync"
)

type store struct {
	mu     sync.Mutex
	f      *os.File
	buf    []byte
	closed bool
}

func (s *store) bad() {
	s.mu.Lock()
	_ = s.f.Sync() // want `file Sync while a mutex is held`
	s.mu.Unlock()
}

func (s *store) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush() // want `call to flush \(which performs file I/O\) while a mutex is held`
}

// flush reaches Sync, so callers holding the mutex are flagged through
// the transitive closure.
func (s *store) flush() {
	_, _ = s.f.Write(s.buf)
	_ = s.f.Sync()
}

// good snapshots state under the lock and does I/O after releasing it.
func (s *store) good() {
	s.mu.Lock()
	data := append([]byte(nil), s.buf...)
	s.mu.Unlock()
	_, _ = s.f.Write(data)
	_ = s.f.Sync()
}

// goodBailout shows the unlock-and-return idiom: the early-exit branch
// does not unlock the fall-through path.
func (s *store) goodBailout() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	_ = s.f.Sync()
}

// goodGoroutine spawns I/O onto a fresh goroutine, which starts with
// its own (unlocked) state.
func (s *store) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.f.Sync()
	}()
}
