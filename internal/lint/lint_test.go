package lint_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"osdp/internal/lint"
	"osdp/internal/lint/analysis"
	"osdp/internal/lint/analysistest"
)

// fixtures returns the testdata/src root for one analyzer's fixture
// tree.
func fixtures(analyzer string) string {
	return filepath.Join("testdata", "src", analyzer)
}

func TestLockedRand(t *testing.T) {
	analysistest.Run(t, fixtures("lockedrand"), lint.LockedRand,
		"osdp/internal/core",
		"osdp/internal/noise",
		"osdp/internal/ledger",
	)
}

func TestChargeBeforeNoise(t *testing.T) {
	analysistest.Run(t, fixtures("chargebeforenoise"), lint.ChargeBeforeNoise,
		"osdp/internal/core",
		"osdp/internal/server",
	)
}

func TestNilSafeTelemetry(t *testing.T) {
	analysistest.Run(t, fixtures("nilsafetelemetry"), lint.NilSafeTelemetry,
		"osdp/internal/telemetry",
	)
}

func TestFsyncUnderLock(t *testing.T) {
	analysistest.Run(t, fixtures("fsyncunderlock"), lint.FsyncUnderLock,
		"osdp/internal/ledger",
	)
}

func TestSecretFlow(t *testing.T) {
	analysistest.Run(t, fixtures("secretflow"), lint.SecretFlow,
		"osdp/internal/server",
	)
}

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, fixtures("ctxpropagate"), lint.CtxPropagate,
		"osdp/internal/server",
	)
}

func TestDocComment(t *testing.T) {
	analysistest.Run(t, fixtures("doccomment"), lint.DocComment,
		"osdp/internal/dataset",
	)
}

// TestMalformedIgnores checks that a //lint:ignore directive without a
// reason is itself reported, and a well-formed one is not.
func TestMalformedIgnores(t *testing.T) {
	fset := token.NewFileSet()
	dir := filepath.Join(fixtures("lintdirective"), "osdp", "internal", "server")
	pkg, err := analysis.LoadDir(fset, dir, "osdp/internal/server")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.MalformedIgnores([]*analysis.Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("got %d malformed-directive diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("diagnostic at line %d, want 5 (the reason-less directive)", diags[0].Pos.Line)
	}
}

// TestByName covers the -only flag's resolver.
func TestByName(t *testing.T) {
	got, ok := lint.ByName("lockedrand, doccomment")
	if !ok || len(got) != 2 || got[0].Name != "lockedrand" || got[1].Name != "doccomment" {
		t.Fatalf("ByName resolved %v, ok=%v", got, ok)
	}
	if _, ok := lint.ByName("nosuchanalyzer"); ok {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
