package analysis

import (
	"strings"
)

// Suppression: a comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason for the exception
//
// on the flagged line, or on the line directly above it, cancels
// diagnostics from the named analyzers (or from all of them, with the
// word "all"). The reason is mandatory — a suppression without one is
// itself reported by the driver — so every accepted exception is
// documented at the site it covers. This is the only sanctioned way to
// silence the suite; see DESIGN.md "Static analysis".

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // nil means malformed (missing reason)
}

// parseIgnores extracts every //lint:ignore directive in the package.
// Directives missing a reason are returned with nil analyzers so the
// driver can flag them.
func parseIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(rest)
				// Need the analyzer list AND a reason.
				if len(fields) >= 2 {
					d.analyzers = strings.Split(fields[0], ",")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether d is cancelled by an ignore directive on
// its own line or the line above. Malformed directives (no reason)
// never suppress.
func suppressed(pkgs []*Package, d Diagnostic) bool {
	for _, pkg := range pkgs {
		for _, ig := range parseIgnores(pkg) {
			if ig.file != d.Pos.Filename || ig.analyzers == nil {
				continue
			}
			if ig.line != d.Pos.Line && ig.line != d.Pos.Line-1 {
				continue
			}
			for _, name := range ig.analyzers {
				if name == "all" || name == d.Analyzer {
					return true
				}
			}
		}
	}
	return false
}

// MalformedIgnores returns a diagnostic for every //lint:ignore
// directive that lacks a reason, so undocumented suppressions fail the
// build instead of silently widening the exception surface.
func MalformedIgnores(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					if len(strings.Fields(rest)) < 2 {
						out = append(out, Diagnostic{
							Pos:      pkg.Fset.Position(c.Pos()),
							Analyzer: "lintdirective",
							Message:  "malformed //lint:ignore: need analyzer list and a reason",
						})
					}
				}
			}
		}
	}
	return out
}
