// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver plumbing to run
// this repository's invariant analyzers (internal/lint) from a
// multichecker binary (cmd/osdp-lint) and from tests, without pulling
// x/tools into the module. Analyzers are purely syntactic — they work
// on parsed files plus the package's import path — which keeps the
// loader trivial (no type checking, no export data) and is sufficient
// for the domain invariants the suite encodes.
//
// The API mirrors x/tools deliberately (Analyzer, Pass, Diagnostic,
// Reportf) so analyzers can be ported to the real framework if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer describes one invariant check. Name is the identifier used
// in diagnostics and //lint:ignore suppressions; Doc is the one-line
// contract shown by `osdp-lint -list`.
type Analyzer struct {
	// Name is the analyzer's identifier (lowercase, no spaces).
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings via the Pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed syntax to an analyzer run.
// Test files (_test.go) are never loaded: the invariants govern
// production code, and test-only randomness/logging is exempt by
// construction.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Path is the package's import path (e.g. "osdp/internal/core").
	Path string
	// Files holds the package's parsed non-test files, with comments.
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced
// it, and the message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the invariant violation.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run executes the analyzers over the packages and returns every
// diagnostic not cancelled by a //lint:ignore suppression, sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(pkgs, d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept, nil
}

// PathIn reports whether the pass's package path is one of (or below)
// the given import-path prefixes — the standard way analyzers scope
// themselves to the packages their invariant governs.
func (p *Pass) PathIn(prefixes ...string) bool {
	for _, pre := range prefixes {
		if p.Path == pre || strings.HasPrefix(p.Path, pre+"/") {
			return true
		}
	}
	return false
}

func sortDiagnostics(ds []Diagnostic) {
	less := func(a, b Diagnostic) bool {
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
