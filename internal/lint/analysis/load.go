package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded package: its import path and parsed non-test
// files sharing a FileSet.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset holds position information for Files.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
}

// LoadDir parses the non-test .go files of one directory as a package
// with the given import path. Directories without Go files yield a nil
// package and no error.
func LoadDir(fset *token.FileSet, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: importPath, Dir: dir, Fset: fset}
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, n), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// LoadModule walks the module rooted at root (the directory holding
// go.mod) and loads every package, deriving import paths from the
// module path plus each directory's relative path. testdata, hidden,
// and vendor directories are skipped, matching the go tool's rules.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(fset, path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	body, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
