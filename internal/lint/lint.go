// Package lint is osdp's domain-invariant static-analysis suite: one
// analyzer per contract the design docs state but the compiler cannot
// check. The analyzers are purely syntactic (see internal/lint/analysis)
// and scope themselves by import path, so running the suite over ./...
// is cheap enough for every CI run.
//
// The catalogue, the DESIGN.md contract each analyzer enforces, and the
// suppression policy live in DESIGN.md "Static analysis". Run the suite
// with:
//
//	go run ./cmd/osdp-lint ./...
package lint

import (
	"go/ast"
	"strings"

	"osdp/internal/lint/analysis"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		LockedRand,
		ChargeBeforeNoise,
		NilSafeTelemetry,
		FsyncUnderLock,
		SecretFlow,
		CtxPropagate,
		DocComment,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names return
// false.
func ByName(names string) ([]*analysis.Analyzer, bool) {
	all := Analyzers()
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// calleeName splits a call's function expression into a qualifier (the
// terminal receiver/package identifier, "" for bare calls) and the
// called name. x.y.Fn(...) yields ("y", "Fn"); Fn(...) yields
// ("", "Fn").
func calleeName(call *ast.CallExpr) (qual, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		switch x := fn.X.(type) {
		case *ast.Ident:
			return x.Name, fn.Sel.Name
		case *ast.SelectorExpr:
			return x.Sel.Name, fn.Sel.Name
		case *ast.CallExpr:
			return "", fn.Sel.Name
		}
		return "", fn.Sel.Name
	}
	return "", ""
}

// selectorChain flattens a selector expression x.y.z into its component
// names ["x", "y", "z"]; non-ident roots contribute nothing.
func selectorChain(e ast.Expr) []string {
	var out []string
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			out = append([]string{x.Sel.Name}, out...)
			e = x.X
		case *ast.Ident:
			return append([]string{x.Name}, out...)
		default:
			return out
		}
	}
}

// receiverName returns the name of a method's receiver and the bare
// (star-stripped, generics-stripped) receiver type name. ok is false
// for plain functions.
func receiverName(d *ast.FuncDecl) (recv, typ string, ptr, ok bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", "", false, false
	}
	field := d.Recv.List[0]
	if len(field.Names) > 0 {
		recv = field.Names[0].Name
	}
	t := field.Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			ptr = true
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return recv, x.Name, ptr, true
		default:
			return recv, "", ptr, true
		}
	}
}

// importsPath reports whether the file imports the given path, and the
// import spec's position when it does.
func importsPath(f *ast.File, path string) (*ast.ImportSpec, bool) {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return imp, true
		}
	}
	return nil, false
}
