package lint

import (
	"osdp/internal/lint/analysis"
)

// noiseDiscipline lists the packages where randomness IS privacy noise:
// everything on the charge-and-release path. In these packages every
// random draw must flow through internal/noise (whose sources are
// concurrency-safe once wrapped with noise.Locked), or the released
// distribution silently depends on generator races. Generator and
// benchmark packages (tippers, dpbench, experiments, examples, ...)
// draw public synthetic data and are deliberately out of scope.
var noiseDiscipline = []string{
	"osdp/internal/core",
	"osdp/internal/mechanism",
	"osdp/internal/histogram",
	"osdp/internal/quantile",
	"osdp/internal/server",
	"osdp/internal/ledger",
	"osdp/internal/audit",
	"osdp/internal/dawa",
	"osdp/internal/ahp",
	"osdp/internal/agrid",
	"osdp/internal/hier",
	"osdp/internal/privbayes",
}

// credentialExempt may import crypto/rand: API keys, session IDs, and
// request IDs MUST come from a CSPRNG, and none of that randomness is
// privacy noise. math/rand stays forbidden there too.
var credentialExempt = []string{
	"osdp/internal/ledger",
	"osdp/internal/server",
}

// LockedRand enforces the noise-source discipline from DESIGN.md
// "Concurrency & memory model": privacy-bearing packages must not read
// math/rand or crypto/rand directly — noise flows through
// internal/noise so it can be serialised by noise.Locked.
var LockedRand = &analysis.Analyzer{
	Name: "lockedrand",
	Doc:  "forbid math/rand and crypto/rand outside internal/noise; privacy noise must use the noise package's locked sources",
	Run:  runLockedRand,
}

func runLockedRand(pass *analysis.Pass) error {
	if !pass.PathIn(noiseDiscipline...) || pass.PathIn("osdp/internal/noise") {
		return nil
	}
	credOK := pass.PathIn(credentialExempt...)
	for _, f := range pass.Files {
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			if imp, ok := importsPath(f, path); ok {
				pass.Reportf(imp.Pos(), "import of %s in privacy-bearing package %s: sample noise via internal/noise (locked sources) instead", path, pass.Path)
			}
		}
		if imp, ok := importsPath(f, "crypto/rand"); ok && !credOK {
			pass.Reportf(imp.Pos(), "import of crypto/rand in privacy-bearing package %s: sample noise via internal/noise (use noise.NewSecureSource for CSPRNG draws)", pass.Path)
		}
	}
	return nil
}
