package lint

import (
	"go/ast"
	"go/token"

	"osdp/internal/lint/analysis"
	"strings"
)

// DocComment is the documentation lint, migrated here from the old
// docs_lint_test.go so it rides the same driver, suppression policy,
// and CI gate as the invariant analyzers. Every exported top-level
// identifier in the documented-surface packages must carry a doc
// comment starting with the identifier's name per godoc convention
// (the standard "A "/"An "/"The " openers are allowed). A doc comment
// on a const/var group covers its members.
//
// Coverage: the columnar data plane, the histogram substrate, the
// serving layer, and — new with the analyzer migration — the
// observability and durability planes (telemetry, ledger, audit),
// whose exported surfaces carry concurrency and durability contracts
// that MUST be written down.
var DocComment = &analysis.Analyzer{
	Name: "doccomment",
	Doc:  "exported identifiers in documented-surface packages need godoc-convention doc comments",
	Run:  runDocComment,
}

// documentedSurface lists the packages whose exported surface is held
// to the doc-comment standard.
var documentedSurface = []string{
	"osdp/internal/dataset",
	"osdp/internal/histogram",
	"osdp/internal/server",
	"osdp/internal/telemetry",
	"osdp/internal/ledger",
	"osdp/internal/audit",
}

func runDocComment(pass *analysis.Pass) error {
	if !pass.PathIn(documentedSurface...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				checkDoc(pass, d.Pos(), d.Doc, d.Name.Name)
			case *ast.GenDecl:
				lintGenDecl(pass, d)
			}
		}
	}
	return nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the godoc surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	_, typ, _, isMethod := receiverName(d)
	if !isMethod {
		return true // plain function
	}
	if typ == "" {
		return true // unusual shape: lint rather than skip
	}
	return ast.IsExported(typ)
}

// lintGenDecl checks type/const/var declarations: a doc comment on the
// group covers its members; otherwise each exported member needs its
// own.
func lintGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && groupDoc && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkDoc(pass, s.Pos(), doc, s.Name.Name)
		case *ast.ValueSpec:
			var exported *ast.Ident
			for _, name := range s.Names {
				if name.IsExported() {
					exported = name
					break
				}
			}
			if exported == nil {
				continue
			}
			if s.Doc == nil && s.Comment == nil && !groupDoc {
				pass.Reportf(s.Pos(), "exported %s %s has no doc comment (and its group has none)",
					tokenName(d.Tok), exported.Name)
			}
		}
	}
}

// checkDoc requires a doc comment that follows the "Name ..." godoc
// convention (allowing the standard "A Name"/"An Name"/"The Name"
// openers).
func checkDoc(pass *analysis.Pass, pos token.Pos, doc *ast.CommentGroup, name string) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		pass.Reportf(pos, "exported %s has no doc comment", name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, opener := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(text, opener+name) {
			return
		}
	}
	pass.Reportf(pos, "doc comment for %s does not start with %q (godoc convention)", name, name)
}

func tokenName(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "declaration"
	}
}
