package lint

import (
	"go/ast"

	"osdp/internal/lint/analysis"
)

// CtxPropagate keeps cancellation and request tracing intact: a
// function that RECEIVES a context.Context must thread it to callees,
// not mint a fresh context.Background() or context.TODO(). A detached
// context severs deadline propagation (a cancelled query keeps
// running) and breaks the request-trace chain the observability plane
// hangs off the context.
//
// Functions without a context parameter are exempt — they are roots
// (main, tests, background committers) where Background() is correct.
// Function literals are checked against their own signature: a literal
// that takes ctx must not discard it, while a literal inside a
// ctx-taking function but with no ctx parameter of its own is a new
// root (e.g. a goroutine deliberately detached from the request).
var CtxPropagate = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "functions that receive a context.Context must not call context.Background()/TODO(); thread the parameter",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			checkCtxScope(pass, d.Type, d.Body)
		}
	}
	return nil
}

// hasContextParam reports whether the signature includes a
// context.Context parameter.
func hasContextParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		chain := selectorChain(field.Type)
		if len(chain) == 2 && chain[0] == "context" && chain[1] == "Context" {
			return true
		}
	}
	return false
}

// checkCtxScope walks one function scope. Nested literals are handed
// their own scope check and excluded from the enclosing walk.
func checkCtxScope(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	takesCtx := hasContextParam(ft)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCtxScope(pass, lit.Type, lit.Body)
			return false
		}
		if !takesCtx {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if qual, name := calleeName(call); qual == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a context.Context: thread the parameter to preserve cancellation and tracing", name)
		}
		return true
	})
}
