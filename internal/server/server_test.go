package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
)

// ctx is shared by tests that don't exercise cancellation; the client
// threads it into every request.
var ctx = context.Background()

// peopleCSV is a small typed dataset: minors and opted-out users are the
// sensitive records under testPolicy.
func peopleCSV(rows int) string {
	var b strings.Builder
	b.WriteString("Age:int,OptIn:bool,City:string\n")
	cities := []string{"irvine", "tustin", "orange"}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%v,%s\n", (i*7)%80+5, i%4 != 0, cities[i%len(cities)])
	}
	return b.String()
}

func testPolicy() PolicySpec {
	return PolicySpec{
		Name: "gdpr",
		SensitiveWhen: PredicateSpec{Op: "or", Args: []PredicateSpec{
			{Op: "cmp", Attr: "Age", Cmp: "<=", Value: float64(17)},
			{Op: "cmp", Attr: "OptIn", Cmp: "=", Value: false},
		}},
	}
}

// newTestClient spins up a full HTTP server and returns a wire client.
// Seeded sessions are enabled so tests are reproducible.
func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	cfg.AllowSeededSessions = true
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return NewClient(ts.URL, ts.Client())
}

func seed(n int64) *int64 { return &n }

// TestEndToEndAllQueryKinds drives every query kind over the real wire
// and checks the budget ledger after each answer.
func TestEndToEndAllQueryKinds(t *testing.T) {
	c := newTestClient(t, Config{})

	info, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(400), Policy: testPolicy(),
	})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if info.Rows != 400 || info.NonSensitive >= info.Rows || info.NonSensitive == 0 {
		t.Fatalf("unexpected dataset info: %+v", info)
	}

	sc, err := c.OpenSession(ctx, "people", 5, seed(1))
	if err != nil {
		t.Fatalf("open session: %v", err)
	}

	// histogram over derived categorical domain
	h, err := sc.Histogram(ctx, 0.5, nil, DomainSpec{Attr: "City"})
	if err != nil {
		t.Fatalf("histogram: %v", err)
	}
	if len(h.Counts) != 3 || len(h.Labels) != 3 {
		t.Fatalf("histogram arity: %d counts, %d labels", len(h.Counts), len(h.Labels))
	}
	if got := h.Budget.Spent; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("spent %g after histogram, want 0.5", got)
	}

	// int-histogram over numeric buckets, with a condition
	adults := &PredicateSpec{Op: "cmp", Attr: "Age", Cmp: ">=", Value: float64(18)}
	ih, err := sc.IntHistogram(ctx, 0.5, adults, DomainSpec{Attr: "Age", Lo: 0, Width: 20, Bins: 5})
	if err != nil {
		t.Fatalf("int-histogram: %v", err)
	}
	if len(ih.Counts) != 5 {
		t.Fatalf("int-histogram bins = %d, want 5", len(ih.Counts))
	}
	for _, cnt := range ih.Counts {
		if cnt != math.Trunc(cnt) {
			t.Fatalf("int-histogram returned non-integer count %v", cnt)
		}
	}

	// 2-D histogram over derived domains: counts flatten row-major and
	// DimLabels tells the client what bins it paid for.
	h2, err := sc.Histogram(ctx, 0.5, nil, DomainSpec{Attr: "City"}, DomainSpec{Attr: "OptIn"})
	if err != nil {
		t.Fatalf("2-D histogram: %v", err)
	}
	if len(h2.DimLabels) != 2 {
		t.Fatalf("2-D histogram DimLabels arity = %d, want 2", len(h2.DimLabels))
	}
	if want := len(h2.DimLabels[0]) * len(h2.DimLabels[1]); len(h2.Counts) != want {
		t.Fatalf("2-D counts = %d, want %d (product of dim sizes)", len(h2.Counts), want)
	}
	if len(h2.Labels) != 0 {
		t.Fatalf("2-D histogram set legacy 1-D Labels: %v", h2.Labels)
	}

	// count
	n, err := sc.Count(ctx, 0.5, &PredicateSpec{Op: "cmp", Attr: "City", Cmp: "=", Value: "irvine"})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if n < 0 || n > 400 {
		t.Fatalf("count %g out of range", n)
	}

	// quantile
	med, err := sc.Quantile(ctx, 1, "Age", 0.5)
	if err != nil {
		t.Fatalf("quantile: %v", err)
	}
	if med < 18 || med > 85 {
		t.Fatalf("median age %g outside the non-sensitive range", med)
	}

	// sample
	sample, err := sc.Sample(ctx, 1)
	if err != nil {
		t.Fatalf("sample: %v", err)
	}
	if sample.Len() == 0 || sample.Len() > info.NonSensitive {
		t.Fatalf("sample size %d, want in (0, %d]", sample.Len(), info.NonSensitive)
	}
	// OsdpRR releases true records: every sampled record must be
	// non-sensitive (adult + opted in).
	for _, r := range sample.Records() {
		if r.Get("Age").AsInt() <= 17 || !r.Get("OptIn").AsBool() {
			t.Fatalf("sample leaked a sensitive record: %v %v", r.Get("Age").AsInt(), r.Get("OptIn").AsBool())
		}
	}

	st, err := sc.Info(ctx)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := 0.5 + 0.5 + 0.5 + 0.5 + 1 + 1; math.Abs(st.Spent-want) > 1e-9 {
		t.Fatalf("total spent %g, want %g", st.Spent, want)
	}
	if !strings.Contains(st.Guarantee, "OSDP") {
		t.Fatalf("guarantee %q does not mention OSDP", st.Guarantee)
	}

	// closing twice: second close is a 404
	if _, err := sc.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := sc.Close(ctx); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double close: got %v, want ErrNotFound", err)
	}
}

// TestConcurrentClientsSharedSession is the acceptance test: many
// concurrent clients hammer ONE session whose budget admits only a
// fraction of their demand, and the accountant must never over-spend.
// Run under -race this also exercises the Locked noise source and the
// registry locking.
func TestConcurrentClientsSharedSession(t *testing.T) {
	c := newTestClient(t, Config{})
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(300), Policy: testPolicy(),
	}); err != nil {
		t.Fatalf("register: %v", err)
	}

	const (
		budget  = 2.0
		clients = 12
		rounds  = 10
		eps     = 0.05 // total demand 12*10*0.05 = 6.0 >> budget
	)
	owner, err := c.OpenSession(ctx, "people", budget, seed(7))
	if err != nil {
		t.Fatalf("open session: %v", err)
	}

	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine is its own client process sharing the
			// session id — the multi-tenant shape of the serving layer.
			sc := c.Session(owner.ID())
			for j := 0; j < rounds; j++ {
				var err error
				switch j % 3 {
				case 0:
					_, err = sc.Count(ctx, eps, nil)
				case 1:
					_, err = sc.Histogram(ctx, eps, nil, DomainSpec{Attr: "City"})
				default:
					_, err = sc.IntHistogram(ctx, eps, nil, DomainSpec{Attr: "Age", Lo: 0, Width: 20, Bins: 5})
				}
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, core.ErrBudgetExceeded):
					rejected.Add(1)
				default:
					t.Errorf("client %d round %d: unexpected error %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	st, err := owner.Info(ctx)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if st.Spent > budget+1e-9 {
		t.Fatalf("session over-spent: %g > %g", st.Spent, budget)
	}
	if want := float64(accepted.Load()) * eps; math.Abs(st.Spent-want) > 1e-9 {
		t.Fatalf("spent %g but %d accepted charges total %g", st.Spent, accepted.Load(), want)
	}
	// The budget admits exactly 40 of the 120 attempts.
	if accepted.Load() != int64(budget/eps) {
		t.Fatalf("accepted %d charges, want %d", accepted.Load(), int64(budget/eps))
	}
	if rejected.Load() == 0 {
		t.Fatal("expected some charges to be rejected over budget")
	}
}

// TestIndependentSessionBudgets checks tenant isolation: exhausting one
// session's budget leaves another untouched.
func TestIndependentSessionBudgets(t *testing.T) {
	c := newTestClient(t, Config{})
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(100), Policy: testPolicy(),
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	a, err := c.OpenSession(ctx, "people", 1, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.OpenSession(ctx, "people", 1, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Count(ctx, 1, nil); err != nil {
		t.Fatalf("exhausting session a: %v", err)
	}
	if _, err := a.Count(ctx, 0.1, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("session a should be exhausted, got %v", err)
	}
	if _, err := b.Count(ctx, 0.5, nil); err != nil {
		t.Fatalf("session b should be unaffected: %v", err)
	}
}

// TestQuantileEmptySampleOverWire pins the wire behaviour of the
// documented Quantile budget semantics: an all-sensitive dataset keeps
// zero records, the answer is 409/ErrEmptySample, and the charge stands.
func TestQuantileEmptySampleOverWire(t *testing.T) {
	c := newTestClient(t, Config{})
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "vault", CSV: peopleCSV(50),
		Policy: PolicySpec{Name: "P_all", SensitiveWhen: PredicateSpec{Op: "true"}},
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	sc, err := c.OpenSession(ctx, "vault", 2, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Quantile(ctx, 0.5, "Age", 0.5)
	if !errors.Is(err, core.ErrEmptySample) {
		t.Fatalf("got %v, want ErrEmptySample", err)
	}
	st, err := sc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Spent-0.5) > 1e-12 {
		t.Fatalf("spent %g after empty-sample quantile, want the charge to stand at 0.5", st.Spent)
	}
}

// TestErrorMapping checks each failure class surfaces with the right
// sentinel through the wire.
func TestErrorMapping(t *testing.T) {
	c := newTestClient(t, Config{MaxSessions: 1})
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(50), Policy: testPolicy(),
	}); err != nil {
		t.Fatalf("register: %v", err)
	}

	// duplicate dataset -> 409
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(50), Policy: testPolicy(),
	}); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate register: got %v, want ErrConflict", err)
	}
	// bad policy attribute -> 400
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "bad", CSV: peopleCSV(5),
		Policy: PolicySpec{Name: "p", SensitiveWhen: PredicateSpec{Op: "cmp", Attr: "Nope", Cmp: "=", Value: "x"}},
	}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad policy: got %v, want ErrBadRequest", err)
	}
	// unknown dataset -> 404
	if _, err := c.OpenSession(ctx, "ghost", 1, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown dataset: got %v, want ErrNotFound", err)
	}
	sc, err := c.OpenSession(ctx, "people", 1, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	// session cap -> 429
	if _, err := c.OpenSession(ctx, "people", 1, nil); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("session cap: got %v, want ErrTooManySessions", err)
	}
	// unknown query kind -> 400
	if _, err := sc.Query(ctx, QueryRequest{Kind: "mean", Eps: 0.1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown kind: got %v, want ErrBadRequest", err)
	}
	// non-positive eps -> 400, nothing charged
	if _, err := sc.Count(ctx, 0, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero eps: got %v, want ErrBadRequest", err)
	}
	// subnormal eps -> 400: 1/eps would overflow to +Inf in the samplers
	if _, err := sc.Count(ctx, 1e-320, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("subnormal eps: got %v, want ErrBadRequest", err)
	}
	// string quantile -> 400
	if _, err := sc.Quantile(ctx, 0.1, "City", 0.5); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("string quantile: got %v, want ErrBadRequest", err)
	}
	// unknown session -> 404
	if _, err := c.Session("deadbeef").Count(ctx, 0.1, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: got %v, want ErrNotFound", err)
	}
	if st, err := sc.Info(ctx); err != nil || st.Spent != 0 {
		t.Fatalf("rejected queries must not charge: spent %g, err %v", st.Spent, err)
	}
}

// TestHardeningGates checks the production-posture knobs: seeded
// sessions are refused unless explicitly enabled, MaxSessionBudget
// bounds per-transcript leakage (including forbidding unlimited
// sessions), and dataset names that would break URL routing are
// rejected at registration.
func TestHardeningGates(t *testing.T) {
	// Default server: no seeds allowed. Bypass newTestClient, which
	// turns them on.
	srv := New(Config{MaxSessionBudget: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := NewClient(ts.URL, ts.Client())

	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "people", CSV: peopleCSV(50), Policy: testPolicy(),
	}); err != nil {
		t.Fatalf("register: %v", err)
	}

	if _, err := c.OpenSession(ctx, "people", 1, seed(42)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("seeded session without AllowSeededSessions: got %v, want ErrBadRequest", err)
	}
	if _, err := c.OpenSession(ctx, "people", 5, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("budget above MaxSessionBudget: got %v, want ErrBadRequest", err)
	}
	if _, err := c.OpenSession(ctx, "people", 0, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unlimited budget under MaxSessionBudget: got %v, want ErrBadRequest", err)
	}
	sc, err := c.OpenSession(ctx, "people", 2, nil)
	if err != nil {
		t.Fatalf("compliant session: %v", err)
	}
	if _, err := sc.Count(ctx, 0.1, nil); err != nil {
		t.Fatalf("query on secure-source session: %v", err)
	}

	for _, name := range []string{"us/census", "a b", "x%2fy", "", ".", ".."} {
		if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
			Name: name, CSV: peopleCSV(5), Policy: testPolicy(),
		}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("name %q: got %v, want ErrBadRequest", name, err)
		}
	}
}

// TestSessionTTLEviction checks both lazy eviction on access and the
// Sweep path, with a stubbed clock.
func TestSessionTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	srv := New(Config{SessionTTL: time.Minute, AllowSeededSessions: true, now: clock})
	tbl, err := dataset.ReadCSV(strings.NewReader(peopleCSV(20)))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, dataset.AllNonSensitive()); err != nil {
		t.Fatal(err)
	}

	open := func() string {
		t.Helper()
		info, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: 1, Seed: seed(1)})
		if err != nil {
			t.Fatal(err)
		}
		return info.ID
	}

	// Lazy path: expired id is rejected and removed on access.
	stale := open()
	advance(2 * time.Minute)
	if _, err := srv.SessionInfo("", stale); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired session: got %v, want ErrNotFound", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions after lazy eviction, want 0", n)
	}

	// Sweep path: activity keeps a session alive, idleness kills it.
	live, idle := open(), open()
	advance(45 * time.Second)
	if _, err := srv.SessionInfo("", live); err != nil { // bumps lastUsed
		t.Fatal(err)
	}
	advance(30 * time.Second) // live idle 30s, idle idle 75s
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if _, err := srv.SessionInfo("", idle); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle session should be gone, got %v", err)
	}
	if _, err := srv.SessionInfo("", live); err != nil {
		t.Fatalf("active session should survive: %v", err)
	}
}

// TestOpenSessionRejectsNonFiniteBudget guards the Go-level API (JSON
// cannot carry NaN/Inf, but embedders call OpenSession directly): NaN
// passes every <, ==, > comparison and would bypass both the cap and
// the unlimited-session ban.
func TestOpenSessionRejectsNonFiniteBudget(t *testing.T) {
	srv := New(Config{MaxSessionBudget: 1})
	tbl, err := dataset.ReadCSV(strings.NewReader(peopleCSV(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, dataset.AllNonSensitive()); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: budget}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("budget %v: got %v, want ErrBadRequest", budget, err)
		}
	}
}

// TestExpiredSessionsDoNotHoldCap checks that abandoned sessions past
// their TTL are evicted when the MaxSessions cap is hit, instead of
// denying service until the janitor's next pass.
func TestExpiredSessionsDoNotHoldCap(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	srv := New(Config{SessionTTL: time.Minute, MaxSessions: 1, now: clock})
	tbl, err := dataset.ReadCSV(strings.NewReader(peopleCSV(10)))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, dataset.AllNonSensitive()); err != nil {
		t.Fatal(err)
	}

	if _, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: 1}); err != nil {
		t.Fatalf("first session: %v", err)
	}
	// Cap is full and the occupant is live: refuse.
	if _, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: 1}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("cap with live occupant: got %v, want ErrTooManySessions", err)
	}
	// Occupant expires: the cap must make way without a janitor.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: 1}); err != nil {
		t.Fatalf("cap held by expired session: %v", err)
	}
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("%d sessions after eviction + open, want 1", n)
	}
}
