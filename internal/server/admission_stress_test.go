package server

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/ledger"
	"osdp/internal/telemetry"
)

// TestAdmissionStressRace hammers the fair queue under the race
// detector: 8 analysts flooding a 2-slot pipe with concurrent
// enqueue/dequeue, random mid-wait cancellations, and session TTL
// eviction sweeps interleaved throughout. The invariants checked are
// the PR's acceptance bar:
//
//   - ledger spend equals successes x ε exactly — cancelled-while-
//     queued and evicted-while-queued requests charge zero
//   - the queue-depth and in-flight gauges return to zero (each waiter
//     moved them exactly once)
//   - no goroutine is left behind
func TestAdmissionStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	led, err := ledger.Open(ledger.Config{}) // in-memory, unlimited budgets
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	reg := telemetry.NewRegistry()
	srv := New(Config{
		Ledger:              led,
		SessionTTL:          time.Minute,
		AllowSeededSessions: true,
		Telemetry:           reg,
		Admission:           &AdmissionConfig{MaxConcurrent: 2},
		now:                 clock,
	})
	defer srv.Close()
	registerPeople(t, srv, 50)

	const (
		analysts   = 8
		iterations = 150
		eps        = 0.001
	)
	ids := make([]string, analysts)
	for i := range ids {
		info, _, err := led.CreateAnalyst("w"+string(rune('0'+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}

	// Baseline AFTER setup: the ledger and server own long-lived
	// goroutines the admission layer must not be blamed for.
	before := runtime.NumGoroutine()

	var successes atomic.Int64
	stop := make(chan struct{})

	// Evictor: jump the stubbed clock past the TTL and sweep, so whole
	// generations of sessions vanish while their queries sit in the
	// admission queue.
	var evictorDone sync.WaitGroup
	evictorDone.Add(1)
	go func() {
		defer evictorDone.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				advance(2 * time.Minute)
				srv.Sweep()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < analysts; w++ {
		wg.Add(1)
		go func(analyst string, rng *rand.Rand) {
			defer wg.Done()
			sessID := ""
			for i := 0; i < iterations; i++ {
				if sessID == "" {
					info, err := srv.OpenSession(analyst, OpenSessionRequest{Dataset: "people", Budget: 0, Seed: seed(rng.Int63())})
					if err != nil {
						t.Errorf("open session: %v", err)
						return
					}
					sessID = info.ID
				}
				qctx, cancel := context.Background(), context.CancelFunc(func() {})
				if rng.Intn(2) == 0 {
					// Half the requests carry a fuse that often burns
					// while they wait in the queue.
					qctx, cancel = context.WithTimeout(qctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				_, err := srv.QueryContext(qctx, analyst, sessID, QueryRequest{Kind: KindCount, Eps: eps})
				cancel()
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, ErrNotFound):
					sessID = "" // TTL-evicted; reopen
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					// Cancelled while queued: charged nothing, by the
					// accounting check below.
				default:
					t.Errorf("analyst %s: unexpected error: %v", analyst, err)
					return
				}
			}
		}(ids[w], rand.New(rand.NewSource(int64(w))))
	}
	wg.Wait()
	close(stop)
	evictorDone.Wait()

	// Exactness, not tolerance: N identical float64 charges of the same
	// ε sum identically on both sides of the comparison.
	wantSpend := float64(successes.Load()) * eps
	if got := led.TotalSpent(); math.Abs(got-wantSpend) > 1e-9 {
		t.Errorf("ledger spent %.9f, want %.9f (%d successes x %g) — a cancelled or evicted request charged ε",
			got, wantSpend, successes.Load(), eps)
	}
	if got := srv.adm.met.depth.Value(); got != 0 {
		t.Errorf("queue-depth gauge %g at quiescence, want 0", got)
	}
	if got := srv.adm.met.inflight.Value(); got != 0 {
		t.Errorf("in-flight gauge %g at quiescence, want 0", got)
	}
	if d := srv.adm.queueDepth(); d != 0 {
		t.Errorf("queue depth %d at quiescence, want 0", d)
	}

	// No goroutine left behind: waiters park on their own request
	// goroutines, so quiescence must return the count to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines after stress, baseline %d — admission leaked waiters", got, before)
	}
}
