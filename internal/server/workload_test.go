package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/ledger"
)

// ageDomain is the 1-D workload domain the tests use: one bin per year
// of Age, matching peopleCSV's 5..84 value range.
func ageDomain() DomainSpec { return DomainSpec{Attr: "Age", Lo: 0, Width: 1, Bins: 90} }

// randomAgeRanges draws n inclusive bin ranges over ageDomain.
func randomAgeRanges(n int, rng *rand.Rand) []RangeSpec {
	out := make([]RangeSpec, n)
	for i := range out {
		lo := rng.Intn(90)
		out[i] = RangeSpec{Lo: lo, Hi: lo + rng.Intn(90-lo)}
	}
	return out
}

// trueNSRangeSums computes the exact non-sensitive range counts the
// workload answers approximate, independently of the server stack.
func trueNSRangeSums(t *testing.T, csv string, spec PolicySpec, dom DomainSpec, ranges []RangeSpec) []float64 {
	t.Helper()
	tbl, err := dataset.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := CompilePolicy(spec, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	_, ns := tbl.Split(pol)
	h := histogram.NewQuery(nil, histogram.NewNumericDomain(dom.Attr, dom.Lo, dom.Width, dom.Bins)).Eval(ns)
	out := make([]float64, len(ranges))
	for i, r := range ranges {
		out[i] = h.RangeSum(r.Lo, r.Hi)
	}
	return out
}

// TestWorkloadSingleComposedCharge is the PR's acceptance test: a
// 1000-range workload answered via /v1 in ONE request charges exactly
// one composed ε — asserted on the durable ledger, the session
// accountant, and the composite guarantee.
func TestWorkloadSingleComposedCharge(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 500)
	ac, analyst := mintAnalyst(t, c, "alice", 0)

	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	ranges := randomAgeRanges(1000, rand.New(rand.NewSource(3)))
	const eps = 0.8
	resp, err := sc.Workload(ctx, eps, EstimatorHier, nil, []DomainSpec{ageDomain()}, ranges)
	if err != nil {
		t.Fatalf("1000-range workload: %v", err)
	}
	if len(resp.Answers) != 1000 {
		t.Fatalf("got %d answers, want 1000", len(resp.Answers))
	}
	if resp.Estimator != EstimatorHier {
		t.Fatalf("estimator %q, want %q", resp.Estimator, EstimatorHier)
	}
	// The session accountant recorded ONE eps charge…
	if got := resp.Budget.Spent; math.Abs(got-eps) > 1e-12 {
		t.Fatalf("session spent %g after 1000-range workload, want exactly %g", got, eps)
	}
	// …and so did the analyst's durable ledger account.
	acct, err := c.WithToken(adminToken).Budgets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, a := range acct {
		if a.Analyst == analyst && a.Dataset == "people" {
			found = true
			if math.Abs(a.Spent-eps) > 1e-12 {
				t.Fatalf("ledger spent %g, want exactly %g (one composed charge for the whole batch)", a.Spent, eps)
			}
		}
	}
	if !found {
		t.Fatal("no ledger account touched by the workload")
	}
	// The composite guarantee must price the batch at one eps too.
	if g := resp.Budget.Guarantee; !strings.Contains(g, "0.8") {
		t.Fatalf("composite guarantee %q does not reflect the single 0.8 charge", g)
	}
}

// TestWorkloadAllEstimators answers the same batch with every
// estimator over the real wire and sanity-checks the answers against
// the exact non-sensitive counts at large eps (noise is small there,
// so every estimator must track the truth).
func TestWorkloadAllEstimators(t *testing.T) {
	c := newTestClient(t, Config{})
	csv := peopleCSV(600)
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{Name: "people", CSV: csv, Policy: testPolicy()}); err != nil {
		t.Fatal(err)
	}
	ranges := randomAgeRanges(50, rand.New(rand.NewSource(9)))
	truth := trueNSRangeSums(t, csv, testPolicy(), ageDomain(), ranges)

	for _, est := range []string{EstimatorFlat, EstimatorHier, EstimatorDAWA, EstimatorAHP, EstimatorAGrid, ""} {
		sc, err := c.OpenSession(ctx, "people", 0, seed(11))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := sc.Workload(ctx, 20, est, nil, []DomainSpec{ageDomain()}, ranges)
		if err != nil {
			t.Fatalf("estimator %q: %v", est, err)
		}
		if len(resp.Answers) != len(ranges) {
			t.Fatalf("estimator %q: %d answers for %d ranges", est, len(resp.Answers), len(ranges))
		}
		wantName := est
		if est == "" {
			wantName = EstimatorFlat
		}
		if resp.Estimator != wantName {
			t.Fatalf("estimator %q echoed as %q", est, resp.Estimator)
		}
		for i := range ranges {
			if math.IsNaN(resp.Answers[i]) || math.Abs(resp.Answers[i]-truth[i]) > 60 {
				t.Fatalf("estimator %q range %d: answer %g too far from true %g",
					est, i, resp.Answers[i], truth[i])
			}
		}
	}
}

// TestWorkload2D exercises the rectangle path end to end with the 2-D
// native estimator.
func TestWorkload2D(t *testing.T) {
	c := newTestClient(t, Config{})
	var b strings.Builder
	b.WriteString("X:int,Y:int\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i%20, (i*3)%20)
	}
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "grid", CSV: b.String(),
		Policy: PolicySpec{Name: "open", SensitiveWhen: PredicateSpec{Op: "false"}},
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := c.OpenSession(ctx, "grid", 0, seed(5))
	if err != nil {
		t.Fatal(err)
	}
	dims := []DomainSpec{
		{Attr: "X", Lo: 0, Width: 1, Bins: 20},
		{Attr: "Y", Lo: 0, Width: 1, Bins: 20},
	}
	two := func(lo, hi int) (*int, *int) { return &lo, &hi }
	// trueRect recomputes a rectangle's count straight from the row
	// formula, independent of the whole histogram/synopsis stack.
	trueRect := func(lo, hi, lo2, hi2 int) float64 {
		n := 0.0
		for i := 0; i < 400; i++ {
			if x, y := i%20, (i*3)%20; x >= lo && x <= hi && y >= lo2 && y <= hi2 {
				n++
			}
		}
		return n
	}
	var ranges []RangeSpec
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		lo, hi := rng.Intn(20), 0
		hi = lo + rng.Intn(20-lo)
		lo2, hi2 := two(rng.Intn(10), 10+rng.Intn(10))
		ranges = append(ranges, RangeSpec{Lo: lo, Hi: hi, Lo2: lo2, Hi2: hi2})
	}
	// Transposition canaries: rectangles whose truth differs from their
	// transpose's, so a swapped dim-0/dim-1 mapping anywhere in the
	// stack cannot cancel out. [1,1]x[3,3] holds a 20-row point mass
	// ((X=1, Y=3) occurs for i ≡ 1 mod 20) while [3,3]x[1,1] is empty.
	asym0, asym1 := two(3, 3)
	ranges = append(ranges, RangeSpec{Lo: 1, Hi: 1, Lo2: asym0, Hi2: asym1})
	swap0, swap1 := two(1, 1)
	ranges = append(ranges, RangeSpec{Lo: 3, Hi: 3, Lo2: swap0, Hi2: swap1})
	// Full-domain rectangle: answer must approximate the total count.
	full0, full1 := two(0, 19)
	ranges = append(ranges, RangeSpec{Lo: 0, Hi: 19, Lo2: full0, Hi2: full1})

	if got, want := trueRect(1, 1, 3, 3), 20.0; got != want {
		t.Fatalf("test-internal truth check: [1,1]x[3,3] = %g, want %g", got, want)
	}
	if got := trueRect(3, 3, 1, 1); got != 0 {
		t.Fatalf("test-internal truth check: [3,3]x[1,1] = %g, want 0", got)
	}

	resp, err := sc.Workload(ctx, 20, EstimatorAGrid, nil, dims, ranges)
	if err != nil {
		t.Fatalf("2-D workload: %v", err)
	}
	if len(resp.Answers) != len(ranges) {
		t.Fatalf("%d answers for %d ranges", len(resp.Answers), len(ranges))
	}
	n := len(ranges)
	if total := resp.Answers[n-1]; math.Abs(total-400) > 80 {
		t.Fatalf("full-domain rectangle answered %g, want ~400", total)
	}
	// The canary answers must each sit near THEIR truth; a transposed
	// mapping would swap them (20 <-> 0) and trip both checks.
	if got := resp.Answers[n-3]; math.Abs(got-20) > 9 {
		t.Fatalf("[1,1]x[3,3] answered %g, want ~20 (transposed dims?)", got)
	}
	if got := resp.Answers[n-2]; math.Abs(got-0) > 9 {
		t.Fatalf("[3,3]x[1,1] answered %g, want ~0 (transposed dims?)", got)
	}
	// And every random rectangle tracks its independently computed
	// truth at eps=20.
	for i := 0; i < 40; i++ {
		r := ranges[i]
		want := trueRect(r.Lo, r.Hi, *r.Lo2, *r.Hi2)
		if math.Abs(resp.Answers[i]-want) > 60 {
			t.Fatalf("rect %d [%d,%d]x[%d,%d]: answer %g too far from true %g",
				i, r.Lo, r.Hi, *r.Lo2, *r.Hi2, resp.Answers[i], want)
		}
	}
	if got := resp.Budget.Spent; math.Abs(got-20) > 1e-12 {
		t.Fatalf("spent %g, want one 20 charge", got)
	}
}

// TestWorkloadValidation pins the reject-before-charge contract: every
// malformed workload is a 400 and neither the ledger nor the session
// accountant records anything.
func TestWorkloadValidation(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 100)
	ac, _ := mintAnalyst(t, c, "bob", 0)
	sc, err := ac.OpenSession(ctx, "people", 0, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	ok := []RangeSpec{{Lo: 0, Hi: 10}}
	lo2 := 1
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"no dims", QueryRequest{Kind: KindWorkload, Eps: 1, Ranges: ok}},
		{"categorical dim", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{{Attr: "City", Keys: []string{"irvine"}}}, Ranges: []RangeSpec{{Lo: 0, Hi: 0}}}},
		{"derived dim", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{{Attr: "Age"}}, Ranges: ok}},
		{"no ranges", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain()}}},
		{"range out of bounds", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain()}, Ranges: []RangeSpec{{Lo: 0, Hi: 90}}}},
		{"inverted range", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain()}, Ranges: []RangeSpec{{Lo: 5, Hi: 2}}}},
		{"lo2 on 1-D", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain()}, Ranges: []RangeSpec{{Lo: 0, Hi: 1, Lo2: &lo2, Hi2: &lo2}}}},
		{"2-D missing hi2", QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain(), ageDomain()}, Ranges: []RangeSpec{{Lo: 0, Hi: 1, Lo2: &lo2}}}},
		{"unknown estimator", QueryRequest{Kind: KindWorkload, Eps: 1, Estimator: "magic", Dims: []DomainSpec{ageDomain()}, Ranges: ok}},
	}
	for _, tc := range cases {
		if _, err := sc.Query(ctx, tc.req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
	if spent := srv.cfg.Ledger.TotalSpent(); spent != 0 {
		t.Fatalf("rejected workloads charged the ledger %g", spent)
	}
	info, err := sc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Spent != 0 {
		t.Fatalf("rejected workloads charged the session %g", info.Spent)
	}
}

// TestWorkloadBudgetRejectionRefundsLedger pins the charge/refund
// contract for the workload path: a session-accountant rejection
// provably precedes any noise, so the ledger reservation comes back.
func TestWorkloadBudgetRejectionRefundsLedger(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 100)
	ac, _ := mintAnalyst(t, c, "carol", 0)
	// Session budget 0.5 < eps 1: the ledger admits the charge, the
	// session accountant refuses it before any noise.
	sc, err := ac.OpenSession(ctx, "people", 0.5, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Workload(ctx, 1, EstimatorDAWA, nil, []DomainSpec{ageDomain()}, randomAgeRanges(10, rand.New(rand.NewSource(1))))
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if spent := srv.cfg.Ledger.TotalSpent(); spent != 0 {
		t.Fatalf("ledger kept %g after a pre-noise rejection (refund contract broken)", spent)
	}
}

// TestWorkloadDomainLRUReuse pins that repeated workload shapes hit the
// explicit-domain LRU instead of recompiling.
func TestWorkloadDomainLRUReuse(t *testing.T) {
	srv := New(Config{AllowSeededSessions: true})
	registerPeople(t, srv, 100)
	srv.mu.Lock()
	d := srv.datasets["people"]
	srv.mu.Unlock()
	info, err := srv.OpenSession("", OpenSessionRequest{Dataset: "people", Budget: 0, Seed: seed(1)})
	if err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{Kind: KindWorkload, Eps: 1, Dims: []DomainSpec{ageDomain()},
		Ranges: []RangeSpec{{Lo: 0, Hi: 10}}}
	if _, err := srv.Query("", info.ID, req); err != nil {
		t.Fatal(err)
	}
	if got := d.art.domains.len(); got != 1 {
		t.Fatalf("domain LRU holds %d entries after first workload, want 1", got)
	}
	if _, err := srv.Query("", info.ID, req); err != nil {
		t.Fatal(err)
	}
	if got := d.art.domains.len(); got != 1 {
		t.Fatalf("domain LRU holds %d entries after repeat workload, want 1 (shape must be reused)", got)
	}
}
