package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osdp/internal/telemetry"
)

// Observability layer: every instrument the serving plane reports into,
// plus the HTTP middleware that feeds the per-route series, stamps
// request IDs, and emits structured access logs.
//
// Metric naming: all series are osdp_<layer>_<what>_<unit|total>, and
// every label is drawn from a CLOSED set — query kinds, registered mux
// route patterns, produced status codes, cache names. Client-chosen
// strings (dataset names, session ids, analyst ids) never become
// labels, so the series count is bounded by the code, not the
// workload.

// queryKinds is the closed label set for per-kind query series; requests
// with any other kind string are folded into kindOther before labelling.
var queryKinds = []string{KindHistogram, KindIntHistogram, KindCount, KindQuantile, KindSample, KindWorkload, kindOther}

// kindOther labels queries whose kind is not a known wire constant, so
// unknown client strings cannot mint new series.
const kindOther = "other"

// serverMetrics bundles the serving layer's instruments. A nil
// *serverMetrics is the disabled state; every method is nil-receiver
// safe, and the telemetry metrics themselves tolerate nil too.
type serverMetrics struct {
	reg *telemetry.Registry

	httpInFlight *telemetry.Gauge
	httpDur      *telemetry.Histogram

	queryDur    map[string]*telemetry.Histogram
	queryOK     map[string]*telemetry.Counter
	queryErr    map[string]*telemetry.Counter
	queryEps    map[string]*telemetry.Counter
	sessOpened  *telemetry.Counter
	sessDropped *telemetry.Counter
	cacheHits   *telemetry.CounterVec
	cacheMisses *telemetry.CounterVec

	// httpReqs caches the per-(route, status) request counters behind
	// an atomic copy-on-write map, so the steady-state hot path is one
	// lock-free map read instead of a registry lookup under its mutex.
	// Both key components come from closed sets, so the map converges
	// to a few dozen entries and then never changes again.
	httpReqs atomic.Pointer[map[httpReqKey]*telemetry.Counter]
	httpMu   sync.Mutex // serializes copy-on-write inserts into httpReqs
}

// httpReqKey identifies one osdp_http_requests_total series.
type httpReqKey struct {
	route  string
	status int
}

// newServerMetrics registers the serving-layer series on reg (nil reg
// disables). Per-kind series are registered eagerly so the exposition
// shows a complete, stable set from the first scrape.
func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		reg: reg,
		httpInFlight: reg.NewGauge("osdp_http_in_flight_requests",
			"HTTP requests currently being served."),
		httpDur: reg.NewHistogram("osdp_http_request_duration_seconds",
			"End-to-end HTTP request latency.", nil),
		queryDur: make(map[string]*telemetry.Histogram, len(queryKinds)),
		queryOK:  make(map[string]*telemetry.Counter, len(queryKinds)),
		queryErr: make(map[string]*telemetry.Counter, len(queryKinds)),
		queryEps: make(map[string]*telemetry.Counter, len(queryKinds)),
		sessOpened: reg.NewCounter("osdp_sessions_opened_total",
			"Sessions opened."),
		sessDropped: reg.NewCounter("osdp_sessions_closed_total",
			"Sessions removed, whether closed by the client or TTL-evicted."),
		cacheHits: reg.NewCounterVec("osdp_cache_hits_total",
			"Artifact cache hits.", "cache"),
		cacheMisses: reg.NewCounterVec("osdp_cache_misses_total",
			"Artifact cache misses.", "cache"),
	}
	empty := make(map[httpReqKey]*telemetry.Counter)
	m.httpReqs.Store(&empty)
	for _, k := range queryKinds {
		m.queryDur[k] = reg.NewHistogram("osdp_query_duration_seconds",
			"Query latency through Server.Query, by query kind.", nil, telemetry.L("kind", k))
		m.queryOK[k] = reg.NewCounter("osdp_queries_total",
			"Queries answered successfully, by query kind.", telemetry.L("kind", k))
		m.queryErr[k] = reg.NewCounter("osdp_query_errors_total",
			"Queries that returned an error, by query kind.", telemetry.L("kind", k))
		m.queryEps[k] = reg.NewCounter("osdp_query_eps_charged_total",
			"Total ε retained by the accountants, by query kind. Refunded charges are not counted.", telemetry.L("kind", k))
	}
	return m
}

// canonicalKind folds unknown kind strings into kindOther so labels stay
// a closed set.
func canonicalKind(kind string) string {
	switch kind {
	case KindHistogram, KindIntHistogram, KindCount, KindQuantile, KindSample, KindWorkload:
		return kind
	}
	return kindOther
}

// observeQuery records one Server.Query call: latency always, a success
// or error count, and the ε that actually stayed charged.
func (m *serverMetrics) observeQuery(kind string, d time.Duration, eps float64, charged bool, err error) {
	if m == nil {
		return
	}
	k := canonicalKind(kind)
	m.queryDur[k].ObserveDuration(d)
	if err != nil {
		m.queryErr[k].Inc()
	} else {
		m.queryOK[k].Inc()
	}
	if charged {
		m.queryEps[k].Add(eps)
	}
}

// sessionOpened counts a successful OpenSession.
func (m *serverMetrics) sessionOpened() {
	if m != nil {
		m.sessOpened.Inc()
	}
}

// sessionDropped counts a session removal (client close or eviction).
func (m *serverMetrics) sessionDropped() {
	if m != nil {
		m.sessDropped.Inc()
	}
}

// cacheCounters returns the hit/miss counters for a named artifact
// cache; (nil, nil) when telemetry is off.
func (m *serverMetrics) cacheCounters(cache string) (hits, misses *telemetry.Counter) {
	if m == nil {
		return nil, nil
	}
	return m.cacheHits.With(cache), m.cacheMisses.With(cache)
}

// httpRequest records one served request under its matched route pattern
// and produced status. Both label values come from closed sets: patterns
// are fixed in Handler, and statuses are the codes statusOf can map to.
// The steady state is allocation-free (pinned by a test): a lock-free
// read of the copy-on-write counter cache, falling back to a registry
// lookup only the first time a (route, status) pair is seen.
func (m *serverMetrics) httpRequest(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.httpDur.ObserveDuration(d)
	key := httpReqKey{route, status}
	if c, ok := (*m.httpReqs.Load())[key]; ok {
		c.Inc()
		return
	}
	m.httpReqCounter(key).Inc()
}

// httpReqCounter registers (or re-fetches) the counter for key and
// publishes an extended copy of the cache. The registry call is
// idempotent, so racing inserts of the same key converge on the same
// *Counter.
func (m *serverMetrics) httpReqCounter(key httpReqKey) *telemetry.Counter {
	m.httpMu.Lock()
	defer m.httpMu.Unlock()
	cur := *m.httpReqs.Load()
	if c, ok := cur[key]; ok {
		return c
	}
	c := m.reg.NewCounter("osdp_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		telemetry.L("route", key.route), telemetry.L("status", strconv.Itoa(key.status)))
	next := make(map[httpReqKey]*telemetry.Counter, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = c
	m.httpReqs.Store(&next)
	return c
}

// requestIDKey is the context key RequestID reads; only the middleware
// writes it.
type requestIDKey struct{}

// RequestID returns the request's trace id stamped by the server's HTTP
// middleware ("" outside an instrumented request). The same id is echoed
// to the client in the X-Request-Id response header and attached to the
// structured access log line, so a client-reported failure can be joined
// to its server-side log entry.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ContextWithRequestID returns ctx carrying a request id the Client
// sends as the outbound X-Request-Id header. The server honors a valid
// 16-hex id end to end — trace, audit trail, access log, and response
// header all carry it — so retries and cross-service hops correlate.
// Invalid ids are ignored server-side (a fresh one is minted).
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// newRequestID mints a 16-hex-char random id. Failure of the system
// randomness is unrecoverable elsewhere (session ids also need it), so
// here it degrades to an empty id rather than failing the request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// validRequestID reports whether an inbound X-Request-Id is exactly 16
// lowercase hex characters — the shape newRequestID mints. Anything
// else is replaced rather than propagated, so arbitrary client strings
// never reach logs, traces, or the audit trail as ids.
func validRequestID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// statusRecorder captures the status code and body size a handler
// produced, delegating everything else to the wrapped ResponseWriter.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers keep
// working through the middleware.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route mux with the observability middleware:
// request-ID stamping (context + X-Request-Id header, honoring a valid
// inbound id), the request trace, the in-flight gauge, per-route/
// per-status counters, the request latency histogram, and the
// structured access log (with the authenticated analyst once auth has
// resolved, and a promoted warn line for slow traces). With telemetry,
// tracing, and access logging all disabled the mux is returned
// unwrapped, so the legacy configuration serves with zero added
// overhead.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	if s.met == nil && s.cfg.AccessLog == nil && s.cfg.Tracer == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = newRequestID()
		}
		ctx := r.Context()
		if id != "" {
			w.Header().Set("X-Request-Id", id)
			ctx = context.WithValue(ctx, requestIDKey{}, id)
		}
		var tr *telemetry.Trace
		if s.cfg.Tracer != nil {
			tr = s.cfg.Tracer.Start(id)
			ctx = telemetry.ContextWithTrace(ctx, tr)
		}
		var auth *authResolution
		if s.cfg.AccessLog != nil {
			auth = &authResolution{}
			ctx = context.WithValue(ctx, authResolutionKey{}, auth)
		}
		r = r.WithContext(ctx)
		if s.met != nil {
			s.met.httpInFlight.Inc()
			defer s.met.httpInFlight.Dec()
		}
		rec := &statusRecorder{ResponseWriter: w}
		mux.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		// The matched pattern, not the raw path: path segments carry
		// client-chosen ids and would blow the label cardinality budget.
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		elapsed := time.Since(start)
		s.met.httpRequest(route, rec.status, elapsed)
		tr.Finish(route, rec.status)
		if lg := s.cfg.AccessLog; lg != nil {
			attrs := make([]slog.Attr, 0, 8)
			attrs = append(attrs,
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
			)
			// The analyst ID (never the key) once auth resolved;
			// unauthenticated requests log without the attribute.
			if auth.analyst != "" {
				attrs = append(attrs, slog.String("analyst", auth.analyst))
			}
			lg.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
			// Slow-query promotion: outliers past the tracer threshold
			// get a warn line carrying the span breakdown (they are
			// also pinned in the tracer's slow ring for /admin/traces).
			if tr.Slow() {
				lg.LogAttrs(ctx, slog.LevelWarn, "slow_request",
					slog.String("id", id),
					slog.String("route", route),
					slog.Duration("duration", tr.Duration()),
					slog.String("spans", spanSummary(tr.View())),
				)
			}
		}
	})
}

// spanSummary renders a finished trace's spans as "name=dur ..." for
// the slow-request log line.
func spanSummary(v telemetry.TraceView) string {
	var b strings.Builder
	for i, sp := range v.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Name, sp.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// metricsHandler serves GET /metrics in Prometheus text exposition
// format. Like /stats it is credential-free: every series is a coarse
// pre-noised aggregate with labels from closed sets, so the endpoint
// reveals operational shape, never data or per-analyst detail. With
// telemetry disabled it serves an empty (valid) exposition.
func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Telemetry.WritePrometheus(w)
}

// pprofHandler serves net/http/pprof under /admin/pprof/, so profiles
// require the operator bearer token — goroutine dumps and heap profiles
// reveal internals no analyst should see. The standard handlers route
// by path under /debug/pprof/, so named profiles are re-pathed before
// delegating to pprof.Index.
func (s *Server) pprofHandler(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/admin/pprof/")
	switch name {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		r2 := new(http.Request)
		*r2 = *r
		u := *r.URL
		u.Path = "/debug/pprof/" + name
		r2.URL = &u
		pprof.Index(w, r2)
	}
}
