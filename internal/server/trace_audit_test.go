package server

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"osdp/internal/audit"
	"osdp/internal/core"
	"osdp/internal/ledger"
	"osdp/internal/telemetry"
)

// newTraceAuditServer extends newLedgerServer with the full
// observability plane: metrics, a tracer, and a durable audit trail.
func newTraceAuditServer(t *testing.T, lcfg ledger.Config, cfg Config) (*Client, *Server, *audit.Log) {
	t.Helper()
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(telemetry.TracerConfig{})
	}
	trail, err := audit.Open(audit.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { trail.Close() })
	cfg.Audit = trail
	c, srv := newLedgerServer(t, "", lcfg, cfg)
	return c, srv, trail
}

// TestTraceAuditEndToEnd is the PR's acceptance test. One authenticated
// workload query, issued under a caller-chosen request id, must be
// reconstructible from the outside afterwards: the trace fetched by
// that id via /admin/traces/{id} shows the query's named phases
// (including the ledger charge and the scan), and /admin/audit holds
// exactly one matching event whose ε equals what the ledger recorded.
func TestTraceAuditEndToEnd(t *testing.T) {
	c, srv, _ := newTraceAuditServer(t, ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 200)
	ac, analyst := mintAnalyst(t, c, "alice", 0)
	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}

	const reqID = "00c0ffee00c0ffee"
	qctx := ContextWithRequestID(ctx, reqID)
	const eps = 0.25
	if _, err := sc.Workload(qctx, eps, EstimatorHier, nil,
		[]DomainSpec{{Attr: "Age", Lo: 0, Width: 10, Bins: 10}},
		[]RangeSpec{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 9}}); err != nil {
		t.Fatal(err)
	}

	admin := c.WithToken(adminToken)
	tr, err := admin.Trace(ctx, reqID)
	if err != nil {
		t.Fatalf("fetching own trace by request id: %v", err)
	}
	if tr.ID != reqID {
		t.Fatalf("trace id = %q, want %q", tr.ID, reqID)
	}
	if tr.Kind != KindWorkload || tr.Analyst != analyst {
		t.Fatalf("trace kind/analyst = %q/%q, want %q/%q", tr.Kind, tr.Analyst, KindWorkload, analyst)
	}
	if tr.Status != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", tr.Status)
	}
	names := make(map[string]bool)
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	if len(tr.Spans) < 5 {
		t.Fatalf("trace has %d spans, acceptance bar is >=5: %+v", len(tr.Spans), tr.Spans)
	}
	for _, want := range []string{"auth", "compile", "ledger.charge", "scan", "noise", "encode"} {
		if !names[want] {
			t.Errorf("span %q missing from trace: %+v", want, tr.Spans)
		}
	}
	// The scan span carries the pool shape attributes.
	for _, sp := range tr.Spans {
		if sp.Name == "scan" && (sp.Attrs["rows"] == "" || sp.Attrs["workers"] == "") {
			t.Errorf("scan span missing rows/workers attrs: %+v", sp)
		}
	}

	rep, err := admin.AuditEvents(ctx, AuditQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Durable {
		t.Fatalf("audit trail backed by a directory reports durable=false")
	}
	var matched []audit.Event
	for _, e := range rep.Events {
		if e.RequestID == reqID {
			matched = append(matched, e)
		}
	}
	if len(matched) != 1 {
		t.Fatalf("audit events for request %s = %d, want exactly 1: %+v", reqID, len(matched), rep.Events)
	}
	ev := matched[0]
	if ev.Outcome != audit.OutcomeReleased || ev.Analyst != analyst ||
		ev.Dataset != "people" || ev.Kind != KindWorkload || ev.Session != sc.ID() {
		t.Fatalf("audit event fields wrong: %+v", ev)
	}
	// The audited ε equals the ledger's recorded charge: a workload
	// batch charges its composed ε exactly once.
	spend, err := admin.Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Eps-eps) > 1e-12 || math.Abs(spend.TotalSpent-eps) > 1e-12 {
		t.Fatalf("audit eps %g vs ledger spend %g, want both %g", ev.Eps, spend.TotalSpent, eps)
	}
}

// TestAuditOutcomesOnWire drives the two refusal paths and checks each
// produces its distinct audit outcome: a pre-noise session-accountant
// rejection is "refunded" (the ledger reservation came back), a ledger
// refusal is "denied" (nothing was ever reserved).
func TestAuditOutcomesOnWire(t *testing.T) {
	c, srv, _ := newTraceAuditServer(t, ledger.Config{DefaultBudget: 1}, Config{})
	registerPeople(t, srv, 200)
	ac, _ := mintAnalyst(t, c, "alice", 0)

	// Session budget 0.2 < ledger budget 1: the session accountant
	// rejects a 0.5 charge after the ledger admitted it -> refunded.
	sc, err := ac.OpenSession(ctx, "people", 0.2, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.5, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("over-session-budget count: got %v, want ErrBudgetExceeded", err)
	}
	// Now exhaust the ledger: open an unlimited session and overspend ->
	// the ledger itself refuses -> denied.
	sc2, err := ac.OpenSession(ctx, "people", 0, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc2.Count(ctx, 0.9, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc2.Count(ctx, 0.9, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("over-ledger-budget count: got %v, want ErrBudgetExceeded", err)
	}

	rep, err := c.WithToken(adminToken).AuditEvents(ctx, AuditQuery{})
	if err != nil {
		t.Fatal(err)
	}
	byOutcome := make(map[string]int)
	var reconstructed float64
	for _, e := range rep.Events {
		byOutcome[e.Outcome]++
		if e.Outcome == audit.OutcomeReleased || e.Outcome == audit.OutcomeRetained {
			reconstructed += e.Eps
		}
	}
	if byOutcome[audit.OutcomeRefunded] != 1 || byOutcome[audit.OutcomeDenied] != 1 || byOutcome[audit.OutcomeReleased] != 1 {
		t.Fatalf("outcomes = %v, want 1 refunded, 1 denied, 1 released", byOutcome)
	}
	// Spend reconstructed from the audit trail alone agrees with the
	// ledger — the independence property the trail exists for.
	spend, err := c.WithToken(adminToken).Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reconstructed-spend.TotalSpent) > 1e-12 {
		t.Fatalf("audit-reconstructed spend %g != ledger spend %g", reconstructed, spend.TotalSpent)
	}
}

// TestInboundRequestIDValidation pins the honor-or-mint contract: a
// valid 16-hex inbound X-Request-Id is echoed and used; anything else
// is replaced with a fresh id, never propagated.
func TestInboundRequestIDValidation(t *testing.T) {
	c, _, _ := newTraceAuditServer(t, ledger.Config{}, Config{})
	get := func(inbound string) string {
		req, err := http.NewRequest(http.MethodGet, c.base+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inbound != "" {
			req.Header.Set("X-Request-Id", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}
	if got := get("fedcba9876543210"); got != "fedcba9876543210" {
		t.Fatalf("valid inbound id not honored: got %q", got)
	}
	for _, bad := range []string{"short", "FEDCBA9876543210", "fedcba987654321g", "fedcba98765432100", "../../../../etc"} {
		got := get(bad)
		if got == bad {
			t.Fatalf("invalid inbound id %q propagated", bad)
		}
		if !validRequestID(got) {
			t.Fatalf("minted replacement %q is not a valid id", got)
		}
	}
}

// TestClientAPIErrorRequestID is the satellite regression test: a 4xx
// from an instrumented server surfaces the request id on the APIError,
// both as a field and in the rendered message.
func TestClientAPIErrorRequestID(t *testing.T) {
	c, srv, _ := newTraceAuditServer(t, ledger.Config{DefaultBudget: 1}, Config{})
	registerPeople(t, srv, 50)
	ac, _ := mintAnalyst(t, c, "alice", 0)
	_, err := ac.Session("no-such-session").Count(ctx, 0.1, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", apiErr.Status)
	}
	if !validRequestID(apiErr.RequestID) {
		t.Fatalf("APIError.RequestID = %q, want a 16-hex id", apiErr.RequestID)
	}
	if !strings.Contains(apiErr.Error(), "(request "+apiErr.RequestID+")") {
		t.Fatalf("Error() does not carry the request id: %q", apiErr.Error())
	}
	// A caller-chosen id comes back on the error too, so a failed call
	// can be joined to its server-side trace without any hook.
	_, err = ac.Session("no-such-session").Count(ContextWithRequestID(ctx, "0123456789abcdef"), 0.1, nil)
	if !errors.As(err, &apiErr) || apiErr.RequestID != "0123456789abcdef" {
		t.Fatalf("chosen id not echoed on APIError: %v", err)
	}
}

// TestClientRequestIDHook checks the success path: WithRequestIDHook
// observes the server-assigned id of every response, since successful
// calls have no error to hang it on.
func TestClientRequestIDHook(t *testing.T) {
	c, srv, _ := newTraceAuditServer(t, ledger.Config{DefaultBudget: 1}, Config{})
	registerPeople(t, srv, 50)
	ac, _ := mintAnalyst(t, c, "alice", 0)

	var mu sync.Mutex
	var seen []string
	hooked := ac.WithRequestIDHook(func(method, path, requestID string) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, method+" "+path+" "+requestID)
	})
	sc, err := hooked.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.1, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("hook saw %d calls, want 2 (open + query): %v", len(seen), seen)
	}
	for _, s := range seen {
		parts := strings.Split(s, " ")
		if len(parts) != 3 || !validRequestID(parts[2]) {
			t.Fatalf("hook observation malformed: %q", s)
		}
	}
	if !strings.HasPrefix(seen[0], "POST /v1/sessions ") {
		t.Fatalf("first hook call = %q, want the session open", seen[0])
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from serving goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLogAnalystAttr pins the satellite: once auth resolves, the
// access-log line carries the analyst ID (never the key); requests that
// never authenticate log without the attribute.
func TestAccessLogAnalystAttr(t *testing.T) {
	buf := &syncBuffer{}
	cfg := Config{AccessLog: slog.New(slog.NewTextHandler(buf, nil))}
	c, srv, _ := newTraceAuditServer(t, ledger.Config{DefaultBudget: 1}, cfg)
	registerPeople(t, srv, 50)
	ac, analyst := mintAnalyst(t, c, "alice", 0)
	key := ac.token

	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	logged := buf.String()
	if strings.Contains(logged, key) {
		t.Fatalf("access log leaked the analyst API key:\n%s", logged)
	}
	var healthLine, queryLine string
	for _, line := range strings.Split(logged, "\n") {
		if strings.Contains(line, "route=\"GET /healthz\"") || strings.Contains(line, "route=GET /healthz") {
			healthLine = line
		}
		if strings.Contains(line, "query") && strings.Contains(line, "POST") {
			queryLine = line
		}
	}
	if queryLine == "" || !strings.Contains(queryLine, "analyst="+analyst) {
		t.Fatalf("authenticated query line missing analyst=%s:\n%s", analyst, logged)
	}
	if healthLine == "" {
		t.Fatalf("no /healthz access-log line:\n%s", logged)
	}
	if strings.Contains(healthLine, "analyst=") {
		t.Fatalf("unauthenticated /healthz line carries an analyst attr: %q", healthLine)
	}
}

// TestTraceAuditConcurrentScrape hammers /admin/traces and /admin/audit
// while queries, TTL evictions, and ledger WAL compactions run. Under
// -race (CI) it proves the trace rings, audit ring, and group
// committer are data-race free against live traffic.
func TestTraceAuditConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, srv, trail := newTraceAuditServer(t,
		ledger.Config{DefaultBudget: 1e9, SnapshotEvery: 8, Telemetry: reg},
		Config{Telemetry: reg, SessionTTL: 10 * time.Millisecond})
	registerPeople(t, srv, 200)
	ac, _ := mintAnalyst(t, c, "alice", 0)
	admin := c.WithToken(adminToken)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sc, err := ac.OpenSession(ctx, "people", 0, seed(int64(w*1000+i)))
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				// Expiry may race the query; that is the TTL contract, not
				// a failure.
				if _, err := sc.Count(ctx, 0.1, nil); err != nil && !strings.Contains(err.Error(), "session") {
					t.Errorf("count: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Sweep()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := admin.Traces(ctx, TraceQuery{Kind: KindCount, Limit: 32}); err != nil {
			t.Errorf("traces scrape: %v", err)
			break
		}
		rep, err := admin.AuditEvents(ctx, AuditQuery{Limit: 64})
		if err != nil {
			t.Errorf("audit scrape: %v", err)
			break
		}
		if uint64(len(rep.Events)) > rep.Total {
			t.Errorf("audit scrape returned %d events but total is %d", len(rep.Events), rep.Total)
			break
		}
	}
	close(stop)
	wg.Wait()
	// Everything appended must be durable after a final barrier.
	if err := trail.Sync(); err != nil {
		t.Fatalf("final audit sync: %v", err)
	}
	if trail.Durable() != true || trail.Seq() == 0 {
		t.Fatalf("audit trail did not persist events (seq=%d)", trail.Seq())
	}
}

// TestHTTPRequestMetricZeroAlloc pins the satellite hot-path fix:
// recording a served request under an already-seen (route, status) pair
// allocates nothing — the per-request counter lookup is one atomic map
// read, not a registry lookup.
func TestHTTPRequestMetricZeroAlloc(t *testing.T) {
	m := newServerMetrics(telemetry.NewRegistry())
	// Warm the copy-on-write cache.
	m.httpRequest("POST /v1/sessions/{id}/query", http.StatusOK, time.Millisecond)
	avg := testing.AllocsPerRun(1000, func() {
		m.httpRequest("POST /v1/sessions/{id}/query", http.StatusOK, time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("httpRequest allocates %.1f times per op on the warm path, want 0", avg)
	}
}
