package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"osdp/internal/audit"
	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/noise"
	"osdp/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: sessions never expire
// and the session count is uncapped.
type Config struct {
	// SessionTTL evicts sessions idle longer than this. 0 disables
	// eviction. Eviction forgets the session id, not the spent budget —
	// a new session starts with a fresh budget by design, which is why
	// TTLs should be generous and budgets per-client, not per-session.
	SessionTTL time.Duration
	// MaxSessions caps concurrently open sessions (0 = unlimited).
	MaxSessions int
	// MaxSessionBudget caps the ε budget any one session may be opened
	// with; when set it also forbids unlimited (budget 0) sessions.
	// 0 disables the cap. It bounds per-transcript leakage only —
	// composition ACROSS sessions is not yet accounted (that needs
	// client identity; see the package comment).
	MaxSessionBudget float64
	// AllowSeededSessions permits clients to supply a noise seed when
	// opening a session. Seeded noise is fully predictable: an analyst
	// who knows the seed can replay the generator and subtract the
	// noise, voiding the OSDP guarantee. Leave this off in production;
	// turn it on for reproducible tests and demos.
	AllowSeededSessions bool
	// Ledger, when set, turns on the privacy-budget control plane: every
	// /v1 request must authenticate with an analyst API key, every
	// ε-bearing query is charged to the analyst's durable per-dataset
	// ledger account BEFORE any noise is drawn, and sessions are bound
	// to the analyst that opened them. Without it the server runs in the
	// legacy per-session-budget mode with no identity (composition
	// across sessions unaccounted).
	Ledger *ledger.Ledger
	// AdminToken guards the /admin API (analyst creation, budget grants,
	// spend inspection). Empty disables /admin entirely. It is a bearer
	// token distinct from every analyst key.
	AdminToken string
	// MaxSessionsPerAnalyst caps one analyst's concurrently open
	// sessions (0 = unlimited). An analyst's own SessionCap, when set,
	// takes precedence. Only meaningful with Ledger.
	MaxSessionsPerAnalyst int
	// Telemetry, when non-nil, registers the serving layer's metric
	// series on the given registry and enables the HTTP observability
	// middleware. The same registry should be handed to the ledger
	// (ledger.Config.Telemetry) and the scan pool
	// (dataset.NewScanMetrics) so one GET /metrics scrape covers every
	// layer. Nil disables collection at zero query-path cost.
	Telemetry *telemetry.Registry
	// AccessLog, when non-nil, receives one structured log line per
	// served HTTP request (request id, method, route, status, bytes,
	// duration, and the authenticated analyst once auth resolves)
	// from the middleware, plus a warn line for requests past the
	// tracer's slow threshold.
	AccessLog *slog.Logger
	// Tracer, when non-nil, records a per-request span trace (auth,
	// compile, artifact lookups, ledger charge, scan, noise, encode)
	// into its ring buffers, served by GET /admin/traces. Nil disables
	// tracing at one branch per span site.
	Tracer *telemetry.Tracer
	// Audit, when non-nil, receives one event per ε-bearing decision
	// the query path makes (released/retained/refunded/denied), served
	// by GET /admin/audit. The server does not close it.
	Audit *audit.Log
	// Admission, when non-nil, turns on the admission layer in front of
	// query execution: per-analyst token buckets and concurrency caps
	// plus a weighted-fair queue (see AdmissionConfig and DESIGN.md
	// "Admission control"). Nil disables admission entirely — every
	// query runs immediately, as before.
	Admission *AdmissionConfig
	// now is stubbed by tests; defaults to time.Now.
	now func() time.Time
}

// ds is a registered dataset: the columnar table, its policy, the cached
// non-sensitive partition view (used to derive histogram domains without
// leaking sensitive-only values), and the precompiled query artifacts.
// All fields are immutable after registration; art's caches carry their
// own synchronization.
type ds struct {
	table  *dataset.Table
	ns     *dataset.Table
	policy dataset.Policy
	art    *artifacts
}

// session is one client's budgeted OSDP endpoint plus bookkeeping for
// TTL eviction. analyst is the owning principal's id ("" when the
// server runs without a ledger).
type session struct {
	id       string
	dataset  string
	analyst  string
	sess     *core.Session
	created  time.Time
	lastUsed time.Time
}

// Server is the multi-tenant query service: a dataset registry plus a
// session registry, both guarded by one mutex. Query execution itself
// happens outside the lock — core.Session is safe for concurrent use
// (its noise source is wrapped with noise.Locked at session open), so
// the mutex only protects the maps.
type Server struct {
	cfg Config
	met *serverMetrics // nil when Config.Telemetry is nil
	adm *admitter      // nil when Config.Admission is nil

	mu         sync.Mutex
	datasets   map[string]*ds
	sessions   map[string]*session
	perAnalyst map[string]int // live sessions per analyst id

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New returns a Server with the given config. If cfg.SessionTTL > 0 the
// caller should also call StartJanitor (expired sessions are additionally
// rejected lazily on access, so the janitor is an optimisation, not a
// correctness requirement).
func New(cfg Config) *Server {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:        cfg,
		met:        newServerMetrics(cfg.Telemetry),
		datasets:   make(map[string]*ds),
		sessions:   make(map[string]*session),
		perAnalyst: make(map[string]int),
	}
	if cfg.Admission != nil {
		s.adm = newAdmitter(*cfg.Admission, cfg.now, cfg.Telemetry)
	}
	if reg := cfg.Telemetry; reg != nil {
		// Registry sizes are collected at scrape time rather than
		// counted on mutation — they are exact either way, and a
		// GaugeFunc cannot drift from the maps it reads.
		reg.NewGaugeFunc("osdp_sessions_active",
			"Sessions currently open.", func() float64 { return float64(s.SessionCount()) })
		reg.NewGaugeFunc("osdp_datasets_registered",
			"Datasets currently registered.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.datasets))
			})
		if l := cfg.Ledger; l != nil {
			reg.NewGaugeFunc("osdp_ledger_spent_eps",
				"Total ε spent across all ledger accounts.", l.TotalSpent)
			reg.NewGaugeFunc("osdp_ledger_analysts",
				"Analyst principals in the ledger.", func() float64 {
					analysts, _ := l.Counts()
					return float64(analysts)
				})
			reg.NewGaugeFunc("osdp_ledger_accounts",
				"Touched (analyst, dataset) budget accounts.", func() float64 {
					_, accounts := l.Counts()
					return float64(accounts)
				})
		}
	}
	return s
}

// StartJanitor begins periodic eviction of expired sessions, sweeping at
// the given interval. It is a no-op when SessionTTL is 0. Close stops it.
func (s *Server) StartJanitor(interval time.Duration) {
	if s.cfg.SessionTTL <= 0 || s.janitorStop != nil {
		return
	}
	s.janitorStop = make(chan struct{})
	s.janitorDone = make(chan struct{})
	go func() {
		defer close(s.janitorDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sweep()
			case <-s.janitorStop:
				return
			}
		}
	}()
}

// Close stops the janitor (if running) and drops all sessions.
func (s *Server) Close() {
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
		s.janitorStop = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[string]*session)
	s.perAnalyst = make(map[string]int)
}

// Sweep evicts every session idle longer than SessionTTL and returns how
// many were evicted.
func (s *Server) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLocked()
}

func (s *Server) sweepLocked() int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := s.cfg.now().Add(-s.cfg.SessionTTL)
	n := 0
	for id, se := range s.sessions {
		if se.lastUsed.Before(cutoff) {
			s.dropSessionLocked(id, se)
			n++
		}
	}
	return n
}

// dropSessionLocked forgets a session and releases its slot in the
// per-analyst count. Every eviction/close path goes through it so the
// analyst cap can never leak slots.
func (s *Server) dropSessionLocked(id string, se *session) {
	delete(s.sessions, id)
	s.met.sessionDropped()
	if se.analyst != "" {
		if n := s.perAnalyst[se.analyst] - 1; n > 0 {
			s.perAnalyst[se.analyst] = n
		} else {
			delete(s.perAnalyst, se.analyst)
		}
	}
}

// RegisterTable registers an in-memory table under name. Used by
// cmd/osdp-server for datasets loaded from disk; the HTTP path goes
// through RegisterDataset.
func (s *Server) RegisterTable(name string, t *dataset.Table, p dataset.Policy) error {
	if !validName(name) {
		return badf("dataset name %q must be non-empty [A-Za-z0-9._-]+ (it becomes a URL path segment)", name)
	}
	// Precompute the serving artifacts outside the lock: the policy
	// partition (bitsets cached on the table, shared by every session),
	// and per-attribute derived domains with their bin-id vectors. See
	// the artifacts type for the full caching contract. On large tables
	// both passes shard across the dataset scan worker pool
	// (dataset.SetScanWorkers; cmd/osdp-server exposes -scan-workers),
	// so registration-time precompute uses every core the operator
	// granted.
	_, ns := t.Split(p)
	art := newArtifacts(t, ns, s.met)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("%w: dataset %q already registered", ErrConflict, name)
	}
	s.datasets[name] = &ds{table: t, ns: ns, policy: p, art: art}
	return nil
}

// RegisterDataset parses and registers a dataset from a wire request.
func (s *Server) RegisterDataset(req RegisterDatasetRequest) (DatasetInfo, error) {
	t, err := dataset.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	p, err := CompilePolicy(req.Policy, t.Schema())
	if err != nil {
		return DatasetInfo{}, err
	}
	if err := s.RegisterTable(req.Name, t, p); err != nil {
		return DatasetInfo{}, err
	}
	return s.DatasetInfo(req.Name)
}

// DatasetInfo describes a registered dataset.
func (s *Server) DatasetInfo(name string) (DatasetInfo, error) {
	s.mu.Lock()
	d, ok := s.datasets[name]
	s.mu.Unlock()
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, name)
	}
	return datasetInfo(name, d), nil
}

// Datasets lists registered datasets sorted by name.
func (s *Server) Datasets() []DatasetInfo {
	s.mu.Lock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		out = append(out, datasetInfo(name, d))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetInfo needs no lock beyond the map access: registered tables and
// policies are immutable.
func datasetInfo(name string, d *ds) DatasetInfo {
	return DatasetInfo{
		Name:         name,
		Rows:         d.table.Len(),
		NonSensitive: d.ns.Len(),
		Attrs:        d.table.Schema().Names(),
		Policy:       d.policy.String(),
	}
}

// OpenSession opens a budgeted session over a registered dataset for
// the given analyst and returns its info (including the fresh session
// id). analyst is the authenticated principal's id; pass "" only on a
// server running without a ledger. Opening is free — ε is charged per
// query — but counts against the analyst's session cap.
func (s *Server) OpenSession(analyst string, req OpenSessionRequest) (SessionInfo, error) {
	if err := s.checkAnalyst(analyst); err != nil {
		return SessionInfo{}, err
	}
	// NaN slips past <, ==, and > alike, which would bypass both the
	// cap and the unlimited-session ban below.
	if math.IsNaN(req.Budget) || math.IsInf(req.Budget, 0) || req.Budget < 0 {
		return SessionInfo{}, badf("budget %g must be finite and non-negative", req.Budget)
	}
	if s.cfg.MaxSessionBudget > 0 {
		if req.Budget == 0 {
			return SessionInfo{}, badf("unlimited sessions are disabled; budget must be in (0, %g]", s.cfg.MaxSessionBudget)
		}
		if req.Budget > s.cfg.MaxSessionBudget {
			return SessionInfo{}, badf("budget %g exceeds the per-session cap %g", req.Budget, s.cfg.MaxSessionBudget)
		}
	}
	var src noise.Source
	if req.Seed != nil {
		if !s.cfg.AllowSeededSessions {
			return SessionInfo{}, badf("seeded sessions are disabled: predictable noise voids the OSDP guarantee")
		}
		src = noise.Locked(noise.NewSource(*req.Seed))
	} else {
		// Secure sources carry their own mutex; wrapping in Locked
		// would double the lock traffic on every draw.
		src = noise.NewSecureSource()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[req.Dataset]
	if !ok {
		return SessionInfo{}, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, req.Dataset)
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		// Expired-but-unswept sessions must not hold the cap; evict
		// them before refusing, or abandoned sessions would deny
		// service until the janitor's next pass.
		s.sweepLocked()
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		return SessionInfo{}, fmt.Errorf("%w: limit %d reached", ErrTooManySessions, s.cfg.MaxSessions)
	}
	if cap := s.analystSessionCap(analyst); cap > 0 && s.perAnalyst[analyst] >= cap {
		// Abandoned-but-unswept sessions must not hold the analyst's
		// cap any more than the global one.
		s.sweepLocked()
		if s.perAnalyst[analyst] >= cap {
			return SessionInfo{}, fmt.Errorf("%w: analyst %s at its cap of %d concurrent sessions", ErrTooManySessions, analyst, cap)
		}
	}
	id, err := newSessionID()
	if err != nil {
		return SessionInfo{}, err
	}
	now := s.cfg.now()
	se := &session{
		id:      id,
		dataset: req.Dataset,
		analyst: analyst,
		// Reuse the partition cached at registration: opening N
		// sessions must not split the table N times.
		sess:     core.NewSessionWithPartition(d.table, d.ns, d.policy, req.Budget, src),
		created:  now,
		lastUsed: now,
	}
	s.sessions[id] = se
	if analyst != "" {
		s.perAnalyst[analyst]++
	}
	s.met.sessionOpened()
	return infoFor(se), nil
}

// checkAnalyst validates the analyst/ledger pairing: ledger-backed
// servers require a principal on every session operation, ledger-less
// servers forbid one (there is nothing to charge).
func (s *Server) checkAnalyst(analyst string) error {
	if s.cfg.Ledger == nil {
		if analyst != "" {
			return fmt.Errorf("%w: server has no ledger; analyst identity is not accepted", ErrBadRequest)
		}
		return nil
	}
	if analyst == "" {
		return fmt.Errorf("%w: missing analyst identity", ErrUnauthorized)
	}
	return nil
}

// analystSessionCap resolves the effective concurrent-session cap for
// an analyst: their own SessionCap when set, else the server default,
// else the ledger default. 0 = unlimited. Callers hold s.mu.
func (s *Server) analystSessionCap(analyst string) int {
	if analyst == "" || s.cfg.Ledger == nil {
		return 0
	}
	if info, err := s.cfg.Ledger.Analyst(analyst); err == nil && info.SessionCap > 0 {
		return info.SessionCap
	}
	if s.cfg.MaxSessionsPerAnalyst > 0 {
		return s.cfg.MaxSessionsPerAnalyst
	}
	return s.cfg.Ledger.DefaultSessionCap()
}

// lookup fetches a live session and its dataset, bumping lastUsed and
// enforcing ownership: a session is only visible to the analyst that
// opened it. Expired sessions are evicted here even when no janitor
// runs — an evicted session fails closed with ErrNotFound.
func (s *Server) lookup(analyst, id string) (*session, *ds, error) {
	if err := s.checkAnalyst(analyst); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown session %q", ErrNotFound, id)
	}
	if se.analyst != analyst {
		return nil, nil, fmt.Errorf("%w: session %q belongs to another analyst", ErrForbidden, id)
	}
	now := s.cfg.now()
	if s.cfg.SessionTTL > 0 && se.lastUsed.Before(now.Add(-s.cfg.SessionTTL)) {
		s.dropSessionLocked(id, se)
		return nil, nil, fmt.Errorf("%w: session %q expired", ErrNotFound, id)
	}
	se.lastUsed = now
	d, ok := s.datasets[se.dataset]
	if !ok {
		return nil, nil, fmt.Errorf("server: dataset %q for session %q is gone", se.dataset, id)
	}
	return se, d, nil
}

// SessionInfo reports a session's budget state to its owning analyst.
func (s *Server) SessionInfo(analyst, id string) (SessionInfo, error) {
	se, _, err := s.lookup(analyst, id)
	if err != nil {
		return SessionInfo{}, err
	}
	return infoFor(se), nil
}

// CloseSession forgets a session and returns its final budget state,
// removed and snapshotted under one registry lock so no new query can
// slip between the read and the removal. A query already executing when
// the close lands may still charge the accountant after the snapshot, so
// the returned state can trail the transcript by those in-flight charges;
// audits needing exactness must quiesce clients before closing. Closing
// an unknown id is an error so clients notice double-closes.
func (s *Server) CloseSession(analyst, id string) (SessionInfo, error) {
	if err := s.checkAnalyst(analyst); err != nil {
		return SessionInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	if !ok {
		return SessionInfo{}, fmt.Errorf("%w: unknown session %q", ErrNotFound, id)
	}
	if se.analyst != analyst {
		return SessionInfo{}, fmt.Errorf("%w: session %q belongs to another analyst", ErrForbidden, id)
	}
	s.dropSessionLocked(id, se)
	return infoFor(se), nil
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// infoFor snapshots a session's budget state. It takes no registry lock:
// id and dataset are immutable after creation, and the spent/guarantee
// pair comes from one atomic accountant read so a racing charge cannot
// make the reported ledger disagree with itself.
func infoFor(se *session) SessionInfo {
	budget := se.sess.Budget()
	spent, composite := se.sess.Snapshot()
	remaining := budget - spent
	if budget == 0 { // unlimited: mirror Session.Remaining's convention
		remaining = 0
	}
	return SessionInfo{
		ID:        se.id,
		Dataset:   se.dataset,
		Analyst:   se.analyst,
		Budget:    budget,
		Spent:     spent,
		Remaining: remaining,
		Guarantee: composite.String(),
		Policy:    se.sess.Policy().String(),
	}
}

// Stats reports coarse service health: registry sizes plus, when the
// control plane is on, ledger aggregates. Everything here is an
// aggregate an operator dashboard can poll — no per-analyst detail (the
// admin API has that).
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	resp := StatsResponse{
		Datasets: len(s.datasets),
		Sessions: len(s.sessions),
	}
	s.mu.Unlock()
	if l := s.cfg.Ledger; l != nil {
		resp.LedgerEnabled = true
		resp.LedgerDurable = l.Durable()
		resp.Analysts, resp.Accounts = l.Counts()
		// Always a non-nil pointer on ledger servers: a fresh ledger
		// reports "spent_eps":0 on the wire, distinguishable from a
		// ledger-less server, which omits the field entirely.
		spent := l.TotalSpent()
		resp.SpentEps = &spent
	}
	return resp
}

// validName reports whether a dataset name is safe to embed as a URL
// path segment without escaping surprises. "." and ".." pass the
// character check but are collapsed by ServeMux path cleaning, which
// would make the dataset unreachable.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
