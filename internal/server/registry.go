package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/noise"
)

// Config tunes a Server. The zero value is usable: sessions never expire
// and the session count is uncapped.
type Config struct {
	// SessionTTL evicts sessions idle longer than this. 0 disables
	// eviction. Eviction forgets the session id, not the spent budget —
	// a new session starts with a fresh budget by design, which is why
	// TTLs should be generous and budgets per-client, not per-session.
	SessionTTL time.Duration
	// MaxSessions caps concurrently open sessions (0 = unlimited).
	MaxSessions int
	// MaxSessionBudget caps the ε budget any one session may be opened
	// with; when set it also forbids unlimited (budget 0) sessions.
	// 0 disables the cap. It bounds per-transcript leakage only —
	// composition ACROSS sessions is not yet accounted (that needs
	// client identity; see the package comment).
	MaxSessionBudget float64
	// AllowSeededSessions permits clients to supply a noise seed when
	// opening a session. Seeded noise is fully predictable: an analyst
	// who knows the seed can replay the generator and subtract the
	// noise, voiding the OSDP guarantee. Leave this off in production;
	// turn it on for reproducible tests and demos.
	AllowSeededSessions bool
	// now is stubbed by tests; defaults to time.Now.
	now func() time.Time
}

// ds is a registered dataset: the columnar table, its policy, the cached
// non-sensitive partition view (used to derive histogram domains without
// leaking sensitive-only values), and the precompiled query artifacts.
// All fields are immutable after registration; art's caches carry their
// own synchronization.
type ds struct {
	table  *dataset.Table
	ns     *dataset.Table
	policy dataset.Policy
	art    *artifacts
}

// session is one client's budgeted OSDP endpoint plus bookkeeping for
// TTL eviction.
type session struct {
	id       string
	dataset  string
	sess     *core.Session
	created  time.Time
	lastUsed time.Time
}

// Server is the multi-tenant query service: a dataset registry plus a
// session registry, both guarded by one mutex. Query execution itself
// happens outside the lock — core.Session is safe for concurrent use
// (its noise source is wrapped with noise.Locked at session open), so
// the mutex only protects the maps.
type Server struct {
	cfg Config

	mu       sync.Mutex
	datasets map[string]*ds
	sessions map[string]*session

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New returns a Server with the given config. If cfg.SessionTTL > 0 the
// caller should also call StartJanitor (expired sessions are additionally
// rejected lazily on access, so the janitor is an optimisation, not a
// correctness requirement).
func New(cfg Config) *Server {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Server{
		cfg:      cfg,
		datasets: make(map[string]*ds),
		sessions: make(map[string]*session),
	}
}

// StartJanitor begins periodic eviction of expired sessions, sweeping at
// the given interval. It is a no-op when SessionTTL is 0. Close stops it.
func (s *Server) StartJanitor(interval time.Duration) {
	if s.cfg.SessionTTL <= 0 || s.janitorStop != nil {
		return
	}
	s.janitorStop = make(chan struct{})
	s.janitorDone = make(chan struct{})
	go func() {
		defer close(s.janitorDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sweep()
			case <-s.janitorStop:
				return
			}
		}
	}()
}

// Close stops the janitor (if running) and drops all sessions.
func (s *Server) Close() {
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
		s.janitorStop = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[string]*session)
}

// Sweep evicts every session idle longer than SessionTTL and returns how
// many were evicted.
func (s *Server) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLocked()
}

func (s *Server) sweepLocked() int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := s.cfg.now().Add(-s.cfg.SessionTTL)
	n := 0
	for id, se := range s.sessions {
		if se.lastUsed.Before(cutoff) {
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// RegisterTable registers an in-memory table under name. Used by
// cmd/osdp-server for datasets loaded from disk; the HTTP path goes
// through RegisterDataset.
func (s *Server) RegisterTable(name string, t *dataset.Table, p dataset.Policy) error {
	if !validName(name) {
		return badf("dataset name %q must be non-empty [A-Za-z0-9._-]+ (it becomes a URL path segment)", name)
	}
	// Precompute the serving artifacts outside the lock: the policy
	// partition (bitsets cached on the table, shared by every session),
	// and per-attribute derived domains with their bin-id vectors. See
	// the artifacts type for the full caching contract.
	_, ns := t.Split(p)
	art := newArtifacts(t, ns)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("%w: dataset %q already registered", ErrConflict, name)
	}
	s.datasets[name] = &ds{table: t, ns: ns, policy: p, art: art}
	return nil
}

// RegisterDataset parses and registers a dataset from a wire request.
func (s *Server) RegisterDataset(req RegisterDatasetRequest) (DatasetInfo, error) {
	t, err := dataset.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	p, err := CompilePolicy(req.Policy, t.Schema())
	if err != nil {
		return DatasetInfo{}, err
	}
	if err := s.RegisterTable(req.Name, t, p); err != nil {
		return DatasetInfo{}, err
	}
	return s.DatasetInfo(req.Name)
}

// DatasetInfo describes a registered dataset.
func (s *Server) DatasetInfo(name string) (DatasetInfo, error) {
	s.mu.Lock()
	d, ok := s.datasets[name]
	s.mu.Unlock()
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, name)
	}
	return datasetInfo(name, d), nil
}

// Datasets lists registered datasets sorted by name.
func (s *Server) Datasets() []DatasetInfo {
	s.mu.Lock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		out = append(out, datasetInfo(name, d))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetInfo needs no lock beyond the map access: registered tables and
// policies are immutable.
func datasetInfo(name string, d *ds) DatasetInfo {
	return DatasetInfo{
		Name:         name,
		Rows:         d.table.Len(),
		NonSensitive: d.ns.Len(),
		Attrs:        d.table.Schema().Names(),
		Policy:       d.policy.String(),
	}
}

// OpenSession opens a budgeted session over a registered dataset and
// returns its info (including the fresh session id).
func (s *Server) OpenSession(req OpenSessionRequest) (SessionInfo, error) {
	// NaN slips past <, ==, and > alike, which would bypass both the
	// cap and the unlimited-session ban below.
	if math.IsNaN(req.Budget) || math.IsInf(req.Budget, 0) || req.Budget < 0 {
		return SessionInfo{}, badf("budget %g must be finite and non-negative", req.Budget)
	}
	if s.cfg.MaxSessionBudget > 0 {
		if req.Budget == 0 {
			return SessionInfo{}, badf("unlimited sessions are disabled; budget must be in (0, %g]", s.cfg.MaxSessionBudget)
		}
		if req.Budget > s.cfg.MaxSessionBudget {
			return SessionInfo{}, badf("budget %g exceeds the per-session cap %g", req.Budget, s.cfg.MaxSessionBudget)
		}
	}
	var src noise.Source
	if req.Seed != nil {
		if !s.cfg.AllowSeededSessions {
			return SessionInfo{}, badf("seeded sessions are disabled: predictable noise voids the OSDP guarantee")
		}
		src = noise.Locked(noise.NewSource(*req.Seed))
	} else {
		// Secure sources carry their own mutex; wrapping in Locked
		// would double the lock traffic on every draw.
		src = noise.NewSecureSource()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[req.Dataset]
	if !ok {
		return SessionInfo{}, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, req.Dataset)
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		// Expired-but-unswept sessions must not hold the cap; evict
		// them before refusing, or abandoned sessions would deny
		// service until the janitor's next pass.
		s.sweepLocked()
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		return SessionInfo{}, fmt.Errorf("%w: limit %d reached", ErrTooManySessions, s.cfg.MaxSessions)
	}
	id, err := newSessionID()
	if err != nil {
		return SessionInfo{}, err
	}
	now := s.cfg.now()
	se := &session{
		id:      id,
		dataset: req.Dataset,
		// Reuse the partition cached at registration: opening N
		// sessions must not split the table N times.
		sess:     core.NewSessionWithPartition(d.table, d.ns, d.policy, req.Budget, src),
		created:  now,
		lastUsed: now,
	}
	s.sessions[id] = se
	return infoFor(se), nil
}

// lookup fetches a live session and its dataset, bumping lastUsed.
// Expired sessions are evicted here even when no janitor runs.
func (s *Server) lookup(id string) (*session, *ds, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown session %q", ErrNotFound, id)
	}
	now := s.cfg.now()
	if s.cfg.SessionTTL > 0 && se.lastUsed.Before(now.Add(-s.cfg.SessionTTL)) {
		delete(s.sessions, id)
		return nil, nil, fmt.Errorf("%w: session %q expired", ErrNotFound, id)
	}
	se.lastUsed = now
	d, ok := s.datasets[se.dataset]
	if !ok {
		return nil, nil, fmt.Errorf("server: dataset %q for session %q is gone", se.dataset, id)
	}
	return se, d, nil
}

// SessionInfo reports a session's budget state.
func (s *Server) SessionInfo(id string) (SessionInfo, error) {
	se, _, err := s.lookup(id)
	if err != nil {
		return SessionInfo{}, err
	}
	return infoFor(se), nil
}

// CloseSession forgets a session and returns its final budget state,
// removed and snapshotted under one registry lock so no new query can
// slip between the read and the removal. A query already executing when
// the close lands may still charge the accountant after the snapshot, so
// the returned state can trail the transcript by those in-flight charges;
// audits needing exactness must quiesce clients before closing. Closing
// an unknown id is an error so clients notice double-closes.
func (s *Server) CloseSession(id string) (SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	if !ok {
		return SessionInfo{}, fmt.Errorf("%w: unknown session %q", ErrNotFound, id)
	}
	delete(s.sessions, id)
	return infoFor(se), nil
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// infoFor snapshots a session's budget state. It takes no registry lock:
// id and dataset are immutable after creation, and the spent/guarantee
// pair comes from one atomic accountant read so a racing charge cannot
// make the reported ledger disagree with itself.
func infoFor(se *session) SessionInfo {
	budget := se.sess.Budget()
	spent, composite := se.sess.Snapshot()
	remaining := budget - spent
	if budget == 0 { // unlimited: mirror Session.Remaining's convention
		remaining = 0
	}
	return SessionInfo{
		ID:        se.id,
		Dataset:   se.dataset,
		Budget:    budget,
		Spent:     spent,
		Remaining: remaining,
		Guarantee: composite.String(),
		Policy:    se.sess.Policy().String(),
	}
}

// validName reports whether a dataset name is safe to embed as a URL
// path segment without escaping surprises. "." and ".." pass the
// character check but are collapsed by ServeMux path cleaning, which
// would make the dataset unreachable.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
