package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"osdp/internal/telemetry"
)

// waitForDepth polls until the admitter's queue holds exactly want
// waiters — acquire calls park asynchronously, so tests must wait for
// the backlog to form before opening the pipe.
func waitForDepth(t *testing.T, a *admitter, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.queueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", a.queueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWeightedFairServiceOrder is the deterministic SFQ check: with a
// single execution slot, one weight-1 analyst and one weight-3 analyst
// both backlogged with 30 requests each, the first 20 grants must be
// exactly 5 vs 15 — the tag arithmetic admits no other split (ties
// only occur inside the window).
func TestWeightedFairServiceOrder(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxConcurrent: 1}, time.Now, nil)
	if _, err := a.setLimits(AnalystLimits{Analyst: "heavy", Weight: 3}); err != nil {
		t.Fatal(err)
	}

	// Occupy the single slot so every subsequent acquire queues.
	plug, err := a.acquire(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}

	const perAnalyst = 30
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, analyst := range []string{"light", "heavy"} {
		for i := 0; i < perAnalyst; i++ {
			wg.Add(1)
			go func(analyst string) {
				defer wg.Done()
				release, err := a.acquire(context.Background(), analyst)
				if err != nil {
					t.Errorf("acquire(%s): %v", analyst, err)
					return
				}
				// The single slot serialises these sections, so the
				// append order IS the service order.
				mu.Lock()
				order = append(order, analyst)
				mu.Unlock()
				release()
			}(analyst)
		}
	}
	waitForDepth(t, a, 2*perAnalyst)
	plug()
	wg.Wait()

	if len(order) != 2*perAnalyst {
		t.Fatalf("%d grants, want %d (lost or duplicated dequeues)", len(order), 2*perAnalyst)
	}
	heavy := 0
	for _, analyst := range order[:20] {
		if analyst == "heavy" {
			heavy++
		}
	}
	if heavy != 15 {
		t.Errorf("first 20 grants served heavy %d times, want exactly 15 (weight 3 vs 1)", heavy)
	}
	if d := a.queueDepth(); d != 0 {
		t.Errorf("queue depth %d after drain, want 0", d)
	}
}

// TestAdmissionRateLimit exercises the token bucket with a stubbed
// clock: burst spends down, an empty bucket rejects with ErrRateLimited
// and an honest Retry-After, and refill restores admission.
func TestAdmissionRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	a := newAdmitter(AdmissionConfig{MaxConcurrent: 8, RatePerSec: 1, Burst: 2}, clock, nil)
	for i := 0; i < 2; i++ {
		release, err := a.acquire(context.Background(), "a")
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		release()
	}
	_, err := a.acquire(context.Background(), "a")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty bucket: got %v, want ErrRateLimited", err)
	}
	var ra retryAfterer
	if !errors.As(err, &ra) {
		t.Fatalf("rate rejection %v does not advertise Retry-After", err)
	}
	if got := ra.RetryAfter(); got <= 0 || got > time.Second {
		t.Errorf("Retry-After %v, want in (0, 1s] at rate 1/s", got)
	}
	// A second analyst has its own bucket.
	if release, err := a.acquire(context.Background(), "b"); err != nil {
		t.Fatalf("other analyst's bucket should be full: %v", err)
	} else {
		release()
	}
	advance(1100 * time.Millisecond)
	release, err := a.acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	release()
}

// TestAdmissionQueueFull checks the per-analyst queue bound: waiters
// past MaxQueued are rejected with ErrRateLimited instead of queued,
// and the bound is per analyst, not global.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxConcurrent: 1, MaxQueued: 2}, time.Now, nil)
	plug, err := a.acquire(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background(), "a")
			if err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			release()
		}()
	}
	waitForDepth(t, a, 2)
	if _, err := a.acquire(context.Background(), "a"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("full queue: got %v, want ErrRateLimited", err)
	}
	// Another analyst still has its own (empty) queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := a.acquire(context.Background(), "b")
		if err != nil {
			t.Errorf("other analyst blocked by a's full queue: %v", err)
			return
		}
		release()
	}()
	waitForDepth(t, a, 3)
	plug()
	wg.Wait()
}

// TestAdmissionCancelWhileQueued checks the cancellation contract: a
// cancelled waiter returns the context error wrapped, leaves the queue
// depth at zero (gauge decremented exactly once), and never blocks the
// pipe for later requests.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := newAdmitter(AdmissionConfig{MaxConcurrent: 1}, time.Now, reg)
	plug, err := a.acquire(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(cctx, "a")
		done <- err
	}()
	waitForDepth(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	if d := a.queueDepth(); d != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", d)
	}
	if got := a.met.depth.Value(); got != 0 {
		t.Fatalf("queue-depth gauge %g after cancel, want 0 (must decrement exactly once)", got)
	}
	if got := a.met.cancels.Value(); got != 1 {
		t.Fatalf("cancelled counter %g, want 1", got)
	}
	plug()
	// The pipe still works.
	release, err := a.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if got := a.met.inflight.Value(); got != 0 {
		t.Fatalf("in-flight gauge %g at idle, want 0", got)
	}
}

// TestAdmissionWeightChangeWhileQueued changes an analyst's weight with
// waiters in its queue: already-queued waiters keep their tags (no
// reorder of promised grants), the queue drains completely, and the
// override sticks for inspection.
func TestAdmissionWeightChangeWhileQueued(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxConcurrent: 1}, time.Now, nil)
	plug, err := a.acquire(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	var served int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background(), "a")
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			served++
			mu.Unlock()
			release()
		}()
	}
	waitForDepth(t, a, n)
	if _, err := a.setLimits(AnalystLimits{Analyst: "a", Weight: 5}); err != nil {
		t.Fatal(err)
	}
	plug()
	wg.Wait()
	if served != n {
		t.Fatalf("served %d, want %d after weight change", served, n)
	}
	resp := a.limits()
	if len(resp.Overrides) != 1 || resp.Overrides[0].Analyst != "a" || resp.Overrides[0].Weight != 5 {
		t.Fatalf("override not retained: %+v", resp.Overrides)
	}
	// Clearing the override prunes the idle analyst entirely.
	if _, err := a.setLimits(AnalystLimits{Analyst: "a"}); err != nil {
		t.Fatal(err)
	}
	if resp := a.limits(); len(resp.Overrides) != 0 {
		t.Fatalf("override survived clearing: %+v", resp.Overrides)
	}
}

// TestSetLimitsValidation rejects NaN/Inf/negative knobs — an Inf
// weight would make 1/weight collapse every tag to the same instant.
func TestSetLimitsValidation(t *testing.T) {
	a := newAdmitter(AdmissionConfig{}, time.Now, nil)
	bad := []AnalystLimits{
		{},                             // missing analyst
		{Analyst: "a", Weight: -1},     // negative
		{Analyst: "a", RatePerSec: -2}, // negative
		{Analyst: "a", MaxQueued: -1},  // negative
	}
	for _, req := range bad {
		if _, err := a.setLimits(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("setLimits(%+v): got %v, want ErrBadRequest", req, err)
		}
	}
}

// FuzzAdmissionFairQueue drives a random schedule of enqueues,
// releases, cancellations, and weight changes through the admitter and
// checks the conservation invariants: every acquire resolves exactly
// once (granted or cancelled), and after a full drain nothing is
// queued or in flight.
func FuzzAdmissionFairQueue(f *testing.F) {
	f.Add([]byte{1, 0, 17, 33, 2, 250, 128, 64, 9})
	f.Add([]byte{3, 5, 5, 5, 80, 80, 161, 161, 242, 7})
	f.Add([]byte{0, 255, 254, 253, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 256 {
			t.Skip()
		}
		cfg := AdmissionConfig{
			MaxConcurrent: 1 + int(data[0]%3),
			MaxQueued:     64,
		}
		a := newAdmitter(cfg, time.Now, nil)
		names := []string{"a", "b", "c"}

		type waiter struct {
			cancel context.CancelFunc
			done   chan func() // the release closure, nil if not granted
		}
		var pending []*waiter
		var grants []func()

		// sweep moves resolved waiters from pending to grants without
		// blocking.
		sweep := func() {
			kept := pending[:0]
			for _, w := range pending {
				select {
				case rel := <-w.done:
					if rel != nil {
						grants = append(grants, rel)
					}
				default:
					kept = append(kept, w)
				}
			}
			pending = kept
		}

		for _, b := range data[1:] {
			switch b % 4 {
			case 0, 1: // enqueue one request
				cctx, cancel := context.WithCancel(context.Background())
				w := &waiter{cancel: cancel, done: make(chan func(), 1)}
				pending = append(pending, w)
				go func() {
					rel, err := a.acquire(cctx, names[int(b>>4)%len(names)])
					if err != nil {
						rel = nil
					}
					w.done <- rel
				}()
			case 2: // release the oldest grant
				sweep()
				if len(grants) > 0 {
					grants[0]()
					grants = grants[1:]
				}
			case 3: // cancel the oldest pending, or change a weight
				if len(pending) > 0 {
					pending[0].cancel()
				} else if _, err := a.setLimits(AnalystLimits{
					Analyst: names[int(b>>4)%len(names)],
					Weight:  float64(1 + int(b>>4)%4),
				}); err != nil {
					t.Fatalf("setLimits: %v", err)
				}
			}
		}

		// Drain: keep releasing grants until every waiter resolved.
		deadline := time.After(10 * time.Second)
		for len(pending) > 0 || len(grants) > 0 {
			sweep()
			for _, rel := range grants {
				rel()
			}
			grants = grants[:0]
			if len(pending) == 0 {
				continue
			}
			select {
			case <-deadline:
				t.Fatalf("drain deadlock: %d pending, depth %d", len(pending), a.queueDepth())
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
		if d := a.queueDepth(); d != 0 {
			t.Fatalf("queue depth %d after drain, want 0", d)
		}
		a.mu.Lock()
		inflight := a.inflight
		a.mu.Unlock()
		if inflight != 0 {
			t.Fatalf("%d in flight after drain, want 0", inflight)
		}
	})
}
