package server

import (
	"encoding/json"
	"fmt"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// predCacheSize bounds the per-dataset compiled-predicate LRU. Compiled
// predicates are a few small structs, so the cap can be generous.
const predCacheSize = 256

// domainCacheSize bounds the per-dataset explicit-shape domain LRU. Kept
// deliberately small: a cached Domain pins a 4-bytes-per-row bin vector
// after its first evaluation, so the worst-case retained memory is
// domainCacheSize x 4 x rows per dataset (32 MB at 1M rows) — bounded
// even against an unauthenticated client spraying distinct shapes.
const domainCacheSize = 8

// maxDerivedDomainKeys caps the distinct-value count above which a
// derived domain is neither precompiled at registration (it would pin a
// key slice + index map + bin vector per attribute forever) nor served
// per query (re-deriving it on every request would be a CPU/allocation
// amplifier for unauthenticated clients). Derived-shape queries against
// such attributes are rejected with an error directing the client to
// declare explicit keys or buckets, which ARE served and LRU-cached.
const maxDerivedDomainKeys = 1 << 16

// artifacts is the per-dataset compiled-query cache. The serving caching
// contract is:
//
//   - Precomputed at REGISTRATION (tables are immutable once registered):
//     the columnar store itself (built as the CSV loads), the policy
//     partition bitsets (dataset.Table caches the split, shared by every
//     session), and one derived histogram domain per attribute (up to
//     maxDerivedDomainKeys distinct values) — distinct
//     non-sensitive values plus the per-row bin-id vector
//     (histogram.Domain.Precompute), so data-derived GROUP BYs never
//     rescan strings at query time.
//   - Cached ACROSS queries (bounded LRUs): predicates compiled from
//     PredicateSpec trees and domains for explicit shapes (keys or
//     lo/width/bins), keyed by the canonical JSON of their spec. A reused
//     Domain carries its bin vector with it, so repeated shapes skip the
//     binning pass too. Workload queries ride the same LRUs: their
//     numeric synopsis domains are explicit shapes, so a repeated
//     workload shape reuses its compiled domain and bin vector.
//   - Computed PER QUERY: the WHERE selection bitset, the noised counts,
//     and everything ε-bearing — including every fitted workload
//     synopsis, which is a noised release and must be drawn fresh per
//     charge. Nothing derived from noise is ever cached.
//
// derived is read-only after construction; the LRUs carry their own
// locks.
type artifacts struct {
	derived   map[string]*histogram.Domain // attr -> domain derived from ns values
	oversized map[string]int               // attr -> distinct count, above the precompute cap
	domains   *lru[*histogram.Domain]      // spec-keyed explicit domains
	preds     *lru[dataset.Predicate]      // spec-keyed compiled predicates
}

// newArtifacts precompiles the registration-time artifacts for a dataset.
// table is the full table (owner of the column store); ns the
// non-sensitive view domains are derived from. met wires the LRUs'
// hit/miss counters (nil disables them).
func newArtifacts(table, ns *dataset.Table, met *serverMetrics) *artifacts {
	a := &artifacts{
		derived:   make(map[string]*histogram.Domain),
		oversized: make(map[string]int),
		domains:   newLRU[*histogram.Domain](domainCacheSize),
		preds:     newLRU[dataset.Predicate](predCacheSize),
	}
	a.domains.hits, a.domains.misses = met.cacheCounters("domain")
	a.preds.hits, a.preds.misses = met.cacheCounters("predicate")
	for _, attr := range table.Schema().Names() {
		d := histogram.DomainFromTable(ns, attr)
		switch {
		case d.Size() == 0:
			// Empty derived domains stay unlisted; the per-query path
			// reports them precisely.
		case d.Size() > maxDerivedDomainKeys:
			// Too many distinct values to pin; remembered so queries
			// against it are rejected in O(1), not re-derived.
			a.oversized[attr] = d.Size()
		default:
			d.Precompute(table)
			a.derived[attr] = d
		}
	}
	return a
}

// domain resolves a DomainSpec against the cache: derived shapes come
// from the registration-time precompute, explicit shapes from the LRU.
func (a *artifacts) domain(spec DomainSpec, ns *dataset.Table) (*histogram.Domain, error) {
	derivedShape := len(spec.Keys) == 0 && spec.Bins == 0 && spec.Width == 0 && spec.Lo == 0
	if derivedShape {
		if d, ok := a.derived[spec.Attr]; ok {
			return d, nil
		}
		// Above-cap attributes are rejected outright rather than
		// re-derived per query: rebuilding >64k distinct values on
		// every request would hand an unauthenticated client a
		// CPU/allocation amplifier.
		if size, ok := a.oversized[spec.Attr]; ok {
			return nil, fmt.Errorf("derived domain over %q has %d distinct values, cap is %d; declare keys or buckets explicitly",
				spec.Attr, size, maxDerivedDomainKeys)
		}
		// Unknown attribute or empty derived domain: compileDomain
		// produces the precise error.
		return compileDomain(spec, ns)
	}
	key, err := specKey(spec)
	if err != nil {
		return compileDomain(spec, ns)
	}
	if d, ok := a.domains.get(key); ok {
		return d, nil
	}
	d, err := compileDomain(spec, ns)
	if err != nil {
		return nil, err
	}
	a.domains.put(key, d)
	return d, nil
}

// predicate resolves a PredicateSpec against the compiled-predicate LRU.
func (a *artifacts) predicate(spec PredicateSpec, schema *dataset.Schema) (dataset.Predicate, error) {
	key, kerr := specKey(spec)
	if kerr == nil {
		if p, ok := a.preds.get(key); ok {
			return p, nil
		}
	}
	p, err := compilePredicate(spec, schema)
	if err != nil {
		return nil, err
	}
	if kerr == nil {
		a.preds.put(key, p)
	}
	return p, nil
}

// specKey canonicalizes a spec for cache keying. JSON marshaling of these
// structs is deterministic (fields in declaration order); the rare
// unmarshalable PredicateSpec.Value simply bypasses the cache.
func specKey(spec any) (string, error) {
	b, err := json.Marshal(spec)
	return string(b), err
}
