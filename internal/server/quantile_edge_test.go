package server

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
)

// agesCSV builds an OptIn-all-true table with the given ages, so the
// non-sensitive partition under testPolicy is exactly the ages > 17.
func agesCSV(ages []int) string {
	var b strings.Builder
	b.WriteString("Age:int,OptIn:bool,City:string\n")
	for _, a := range ages {
		fmt.Fprintf(&b, "%d,true,irvine\n", a)
	}
	return b.String()
}

// TestQuantileEdgeCasesThroughServer drives the q=0 / q=1 / all-equal
// edge cases over the real wire. At eps=30 the OsdpRR keep probability
// is 1 − e⁻³⁰, so with a seeded session the sample is the whole
// non-sensitive partition and the extreme quantiles are exact order
// statistics.
func TestQuantileEdgeCasesThroughServer(t *testing.T) {
	c := newTestClient(t, Config{})
	ages := []int{25, 90, 31, 18, 77, 45, 60, 33, 52, 41}
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "ages", CSV: agesCSV(ages), Policy: testPolicy(),
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := c.OpenSession(ctx, "ages", 0, seed(4))
	if err != nil {
		t.Fatal(err)
	}
	// q=0 must be the minimum non-sensitive value (rank clamps to 1)…
	if v, err := sc.Quantile(ctx, 30, "Age", 0); err != nil || v != 18 {
		t.Fatalf("q=0: got %g, %v; want the minimum 18", v, err)
	}
	// …and q=1 the maximum (rank = n exactly, no off-by-one overflow).
	if v, err := sc.Quantile(ctx, 30, "Age", 1); err != nil || v != 90 {
		t.Fatalf("q=1: got %g, %v; want the maximum 90", v, err)
	}
	// q outside [0, 1] is rejected BEFORE any charge.
	before, err := sc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// (NaN is unrepresentable in JSON, so the wire cannot even carry
	// it; the out-of-range values exercise the server-side guard.)
	for _, q := range []float64{-0.01, 1.01} {
		if _, err := sc.Quantile(ctx, 1, "Age", q); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("q=%g: got %v, want ErrBadRequest", q, err)
		}
	}
	after, err := sc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Spent != before.Spent {
		t.Fatalf("rejected q values charged the session: %g -> %g", before.Spent, after.Spent)
	}

	// All-equal values: every quantile is that value.
	equal := make([]int, 50)
	for i := range equal {
		equal[i] = 42
	}
	if _, err := c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{
		Name: "equal", CSV: agesCSV(equal), Policy: testPolicy(),
	}); err != nil {
		t.Fatal(err)
	}
	ec, err := c.OpenSession(ctx, "equal", 0, seed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.37, 0.5, 1} {
		if v, err := ec.Quantile(ctx, 30, "Age", q); err != nil || v != 42 {
			t.Fatalf("all-equal q=%g: got %g, %v; want 42", q, v, err)
		}
	}
}

// TestQuantileEmptySampleNeverRefunds pins the no-refund contract
// documented in query.go: an empty quantile sample fails AFTER the
// Bernoulli draws — the randomness was observed, so neither the
// session accountant nor the durable ledger gives the ε back.
// (Refunding would let an analyst retry until a favourable sample
// appeared while paying once; see core.Session.Quantile.)
func TestQuantileEmptySampleNeverRefunds(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	// All-sensitive policy: the non-sensitive partition is empty, so
	// every quantile sample is deterministically empty.
	tbl, err := dataset.ReadCSV(strings.NewReader(agesCSV([]int{30, 40, 50})))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("closed", tbl, dataset.AllSensitive()); err != nil {
		t.Fatal(err)
	}
	ac, _ := mintAnalyst(t, c, "dave", 0)
	sc, err := ac.OpenSession(ctx, "closed", 0, seed(6))
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.7
	_, err = sc.Quantile(ctx, eps, "Age", 0.5)
	if !errors.Is(err, core.ErrEmptySample) {
		t.Fatalf("got %v, want ErrEmptySample", err)
	}
	// The charge stands on BOTH ledgers.
	info, err := sc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(info.Spent-eps) > 1e-12 {
		t.Fatalf("session spent %g after empty sample, want %g (no refund after noise)", info.Spent, eps)
	}
	if got := srv.cfg.Ledger.TotalSpent(); math.Abs(got-eps) > 1e-12 {
		t.Fatalf("ledger spent %g after empty sample, want %g (no refund after noise)", got, eps)
	}
}
