package server

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"osdp/internal/telemetry"
)

// Admission control: the layer in front of query execution that keeps
// one analyst's burst from monopolizing the scan pool and the
// group-committed ledger. Three bounds compose, all per-analyst:
//
//   - a token bucket (RatePerSec/Burst) bounds the ADMISSION RATE: a
//     request arriving with an empty bucket is rejected immediately
//     with ErrRateLimited (HTTP 429 + Retry-After) — it never queues,
//     never charges ε, and never touches a session.
//   - a concurrency cap (AnalystConcurrency, plus the global
//     MaxConcurrent) bounds EXECUTION: requests past the cap wait in
//     the analyst's FIFO queue instead of piling onto the scan pool.
//   - a weighted-fair queue arbitrates the wait: when an execution
//     slot frees, the request with the smallest virtual start tag
//     runs next (start-time fair queueing, cost 1/weight per request),
//     so over any backlogged interval each analyst receives service
//     proportional to its weight regardless of how fast it submits.
//
// Queued requests respect context cancellation (a cancelled waiter is
// unlinked, decrements the queue-depth gauge exactly once, and charges
// nothing) and session TTL (the session is looked up AFTER admission,
// so a session that expired while its request queued fails closed).
// Admission strictly precedes the ledger charge on the query path —
// enforced mechanically by the chargebeforenoise analyzer — so a
// queued-then-rejected or queued-then-cancelled request provably
// spends zero ε.
//
// The controller spawns no goroutines: waiting happens on the
// request's own goroutine, and dispatch runs inside release and
// limit-change calls, so an idle controller costs nothing and shutdown
// needs no drain.

// DefaultMaxQueued bounds one analyst's queued (not yet executing)
// requests when AdmissionConfig.MaxQueued is 0. Beyond it, requests
// are rejected with ErrRateLimited rather than queued: an unbounded
// queue converts overload into unbounded latency, which is worse than
// an honest 429.
const DefaultMaxQueued = 64

// AdmissionConfig tunes the admission layer (Config.Admission). The
// zero value is usable: execution is capped at runtime.NumCPU, queues
// at DefaultMaxQueued per analyst, and rate limiting is off.
type AdmissionConfig struct {
	// MaxConcurrent caps queries executing at once across all
	// analysts. <=0 defaults to runtime.NumCPU(): one slot per core
	// keeps the scan pool saturated without oversubscribing it.
	MaxConcurrent int
	// AnalystConcurrency caps one analyst's concurrently executing
	// queries (0 = bounded only by MaxConcurrent). Admin overrides
	// (SetLimits) take precedence per analyst.
	AnalystConcurrency int
	// RatePerSec refills each analyst's token bucket; a query consumes
	// one token at admission. 0 disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity — the largest back-to-back burst a
	// quiet analyst may submit. 0 defaults to max(1, 2*RatePerSec).
	Burst float64
	// MaxQueued caps one analyst's queued requests (0 =
	// DefaultMaxQueued). The cap is per analyst, not global, so one
	// flooder filling its own queue cannot crowd out another
	// analyst's right to wait.
	MaxQueued int
}

// maxConcurrent resolves the global execution cap.
func (c AdmissionConfig) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return runtime.NumCPU()
}

// burst resolves the default bucket capacity.
func (c AdmissionConfig) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return math.Max(1, 2*c.RatePerSec)
}

// maxQueued resolves the default per-analyst queue bound.
func (c AdmissionConfig) maxQueued() int {
	if c.MaxQueued > 0 {
		return c.MaxQueued
	}
	return DefaultMaxQueued
}

// admWaiter is one queued request. ready is closed exactly once, under
// the admitter mutex, when the waiter is granted; granted disambiguates
// the grant/cancel race so the queue-depth gauge and the slot counters
// each move exactly once per waiter.
type admWaiter struct {
	st      *admAnalyst
	vstart  float64 // SFQ virtual start tag, fixed at enqueue
	ready   chan struct{}
	granted bool
}

// admAnalyst is one analyst's admission state: its token bucket, its
// FIFO of waiting requests, its in-flight count, and its SFQ finish
// tag. limits holds the admin override (zero-valued = none). All
// fields are guarded by the admitter mutex.
type admAnalyst struct {
	id     string
	limits AnalystLimits // override; zero fields inherit the config

	tokens   float64
	lastFill time.Time
	filled   bool // lastFill is meaningful (first touch seeds a full bucket)

	inflight   int
	queue      []*admWaiter
	lastFinish float64 // SFQ finish tag of the newest tagged request
}

// admitter is the admission controller. One mutex guards everything:
// admission decisions are a handful of map lookups and float updates,
// orders of magnitude cheaper than the queries they gate.
type admitter struct {
	cfg AdmissionConfig
	now func() time.Time
	met *admissionMetrics // nil when telemetry is off

	mu       sync.Mutex
	analysts map[string]*admAnalyst
	inflight int     // executing now, across all analysts
	queued   int     // waiting now, across all analysts
	vtime    float64 // SFQ global virtual time
}

// newAdmitter builds a controller; now is the injectable clock
// (Config.now) and reg may be nil.
func newAdmitter(cfg AdmissionConfig, now func() time.Time, reg *telemetry.Registry) *admitter {
	return &admitter{
		cfg:      cfg,
		now:      now,
		met:      newAdmissionMetrics(reg),
		analysts: make(map[string]*admAnalyst),
	}
}

// stateLocked finds or creates an analyst's admission state.
func (a *admitter) stateLocked(analyst string) *admAnalyst {
	st := a.analysts[analyst]
	if st == nil {
		st = &admAnalyst{id: analyst}
		a.analysts[analyst] = st
	}
	return st
}

// Per-analyst effective limits: the admin override when set, else the
// config default. Callers hold a.mu.

func (a *admitter) weightFor(st *admAnalyst) float64 {
	if st.limits.Weight > 0 {
		return st.limits.Weight
	}
	return 1
}

func (a *admitter) rateFor(st *admAnalyst) (rate, burst float64) {
	rate, burst = a.cfg.RatePerSec, a.cfg.burst()
	if st.limits.RatePerSec > 0 {
		rate = st.limits.RatePerSec
		burst = math.Max(1, 2*rate)
	}
	if st.limits.Burst > 0 {
		burst = st.limits.Burst
	}
	return rate, burst
}

func (a *admitter) concurrencyFor(st *admAnalyst) int {
	if st.limits.MaxConcurrent > 0 {
		return st.limits.MaxConcurrent
	}
	return a.cfg.AnalystConcurrency
}

func (a *admitter) maxQueuedFor(st *admAnalyst) int {
	if st.limits.MaxQueued > 0 {
		return st.limits.MaxQueued
	}
	return a.cfg.maxQueued()
}

// underCapLocked reports whether st may start one more query.
func (a *admitter) underCapLocked(st *admAnalyst) bool {
	if a.inflight >= a.cfg.maxConcurrent() {
		return false
	}
	cap := a.concurrencyFor(st)
	return cap <= 0 || st.inflight < cap
}

// refillLocked advances st's token bucket to now. The first touch
// seeds a full bucket, so a fresh analyst gets its burst allowance.
func (a *admitter) refillLocked(st *admAnalyst, rate, burst float64, now time.Time) {
	if !st.filled {
		st.tokens, st.lastFill, st.filled = burst, now, true
		return
	}
	if dt := now.Sub(st.lastFill).Seconds(); dt > 0 {
		st.tokens = math.Min(burst, st.tokens+dt*rate)
	}
	st.lastFill = now
}

// tagLocked assigns the next SFQ start tag for st: the request starts
// no earlier than the global virtual time and no earlier than the
// analyst's previous finish, and occupies 1/weight of virtual time —
// which is exactly what makes long-run service weight-proportional.
func (a *admitter) tagLocked(st *admAnalyst) float64 {
	s := math.Max(a.vtime, st.lastFinish)
	st.lastFinish = s + 1/a.weightFor(st)
	return s
}

// acquire admits one query for analyst, blocking while the analyst is
// at its concurrency cap or the server at its global one. On success
// it returns a release closure the caller MUST invoke (idempotent)
// when the query finishes. On failure nothing is held: the request
// was rejected (ErrRateLimited) or the context ended while queued.
func (a *admitter) acquire(ctx context.Context, analyst string) (func(), error) {
	a.mu.Lock()
	st := a.stateLocked(analyst)
	if rate, burst := a.rateFor(st); rate > 0 {
		a.refillLocked(st, rate, burst, a.now())
		if st.tokens < 1 {
			wait := time.Duration((1 - st.tokens) / rate * float64(time.Second))
			a.mu.Unlock()
			a.met.reject("rate")
			return nil, &rateLimitedError{
				msg:        fmt.Sprintf("analyst exceeded %g requests/sec (burst %g)", rate, burst),
				retryAfter: wait,
			}
		}
		st.tokens--
	}
	// Run now when nothing of ours is already waiting (FIFO per
	// analyst) and both concurrency caps have room. Queued waiters of
	// OTHER analysts blocked on their own caps hold no claim to the
	// slot — admitting around them is work conservation, not queue
	// jumping.
	if len(st.queue) == 0 && a.underCapLocked(st) {
		s := a.tagLocked(st)
		a.vtime = math.Max(a.vtime, s)
		a.grantSlotLocked(st)
		a.mu.Unlock()
		return a.releaser(st), nil
	}
	if len(st.queue) >= a.maxQueuedFor(st) {
		a.mu.Unlock()
		a.met.reject("queue_full")
		// No token math predicts queue drain; advertise a short,
		// honest pause rather than nothing.
		return nil, &rateLimitedError{
			msg:        fmt.Sprintf("analyst admission queue full (%d waiting)", a.maxQueuedFor(st)),
			retryAfter: time.Second,
		}
	}
	w := &admWaiter{st: st, vstart: a.tagLocked(st), ready: make(chan struct{})}
	st.queue = append(st.queue, w)
	a.queued++
	a.mu.Unlock()
	a.met.enqueued()

	start := time.Now()
	select {
	case <-w.ready:
		a.met.waited(time.Since(start))
		return a.releaser(st), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot that the
			// caller will never use. Return it so the next waiter runs.
			a.releaseLocked(st)
			a.mu.Unlock()
			a.met.waited(time.Since(start))
			return nil, fmt.Errorf("server: admission wait aborted: %w", ctx.Err())
		}
		for i, q := range st.queue {
			if q == w {
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				break
			}
		}
		a.queued--
		a.pruneLocked(st)
		a.resetIdleLocked()
		a.mu.Unlock()
		a.met.cancelled()
		return nil, fmt.Errorf("server: admission wait aborted: %w", ctx.Err())
	}
}

// grantSlotLocked moves st into execution (counters + gauges); the
// caller has already decided the grant is legal.
func (a *admitter) grantSlotLocked(st *admAnalyst) {
	a.inflight++
	st.inflight++
	a.met.started()
}

// releaser returns the idempotent release closure for one admitted
// query. Idempotence is belt-and-braces: the query path calls it
// exactly once via defer, but a double call corrupting the slot
// accounting would starve the queue forever.
func (a *admitter) releaser(st *admAnalyst) func() {
	released := false
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if released {
			return
		}
		released = true
		a.releaseLocked(st)
	}
}

// releaseLocked returns one execution slot and hands it to the most
// deserving waiter.
func (a *admitter) releaseLocked(st *admAnalyst) {
	a.inflight--
	st.inflight--
	a.met.finished()
	a.dispatchLocked()
	a.pruneLocked(st)
	a.resetIdleLocked()
}

// dispatchLocked grants freed capacity: repeatedly pick, among
// analysts whose queue head is eligible to run, the waiter with the
// smallest virtual start tag. Ties are broken arbitrarily — they only
// arise between requests entitled to the same virtual instant.
func (a *admitter) dispatchLocked() {
	for a.inflight < a.cfg.maxConcurrent() {
		var best *admAnalyst
		for _, st := range a.analysts {
			if len(st.queue) == 0 || !a.underCapLocked(st) {
				continue
			}
			if best == nil || st.queue[0].vstart < best.queue[0].vstart {
				best = st
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		a.queued--
		a.vtime = math.Max(a.vtime, w.vstart)
		a.grantSlotLocked(best)
		a.met.dequeued()
		w.granted = true
		close(w.ready)
	}
}

// pruneLocked forgets an analyst state that holds no information: no
// override, nothing running or waiting, and a full (or disabled)
// token bucket. Keeps the map bounded by ACTIVE analysts rather than
// ever-seen ones, without ever forgetting a depleted bucket (which
// would hand a flooder a fresh burst).
func (a *admitter) pruneLocked(st *admAnalyst) {
	if st.limits != (AnalystLimits{Analyst: st.limits.Analyst}) || st.inflight > 0 || len(st.queue) > 0 {
		return
	}
	// A finish tag ahead of virtual time still orders this analyst's
	// NEXT request behind the backlog it already consumed. A
	// continuously resubmitting analyst is momentarily empty between
	// consecutive requests; shedding its tag here would collapse every
	// arrival onto the (then stagnant) virtual time and degrade
	// dispatch to tie-breaking roulette. Keep the state until virtual
	// time catches up — i.e. until the history stops mattering.
	if st.lastFinish > a.vtime {
		return
	}
	if rate, burst := a.rateFor(st); rate > 0 {
		a.refillLocked(st, rate, burst, a.now())
		if st.tokens < burst {
			return
		}
	}
	delete(a.analysts, st.id)
}

// resetIdleLocked rewinds virtual time when the system is fully idle.
// Without this, lastFinish tags of analysts retained for their
// overrides would drift ever further from a fresh analyst's tags and
// eventually starve them after long idle periods.
func (a *admitter) resetIdleLocked() {
	if a.inflight != 0 || a.queued != 0 {
		return
	}
	a.vtime = 0
	for _, st := range a.analysts {
		st.lastFinish = 0
		// With tags rewound, states retained only for their history
		// hold no information any more; sweep them here so the map
		// stays bounded by ACTIVE analysts.
		a.pruneLocked(st)
	}
}

// setLimits installs (or, with every numeric field zero, clears) one
// analyst's admission override and returns the stored value. Raising
// a concurrency cap can unblock queued waiters, so it dispatches.
func (a *admitter) setLimits(req AnalystLimits) (AnalystLimits, error) {
	if req.Analyst == "" {
		return AnalystLimits{}, badf("limits need an analyst id")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"weight", req.Weight},
		{"rate_per_sec", req.RatePerSec},
		{"burst", req.Burst},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return AnalystLimits{}, badf("%s %g must be finite and non-negative (0 = server default)", f.name, f.v)
		}
	}
	if req.MaxConcurrent < 0 || req.MaxQueued < 0 {
		return AnalystLimits{}, badf("max_concurrent and max_queued must be non-negative (0 = server default)")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stateLocked(req.Analyst)
	st.limits = req
	// A changed rate re-anchors the bucket rather than replaying
	// history against the new parameters.
	st.filled = false
	// Waiters keep the tags they were enqueued with — re-tagging a
	// live queue could reorder grants already promised; the new
	// weight applies from the next request on.
	a.dispatchLocked()
	a.pruneLocked(st)
	return st.limits, nil
}

// limits snapshots the defaults and every stored override, sorted by
// analyst id for stable wire output.
func (a *admitter) limits() LimitsResponse {
	a.mu.Lock()
	defer a.mu.Unlock()
	resp := LimitsResponse{
		Enabled: true,
		Defaults: &AdmissionDefaults{
			MaxConcurrent:      a.cfg.maxConcurrent(),
			AnalystConcurrency: a.cfg.AnalystConcurrency,
			RatePerSec:         a.cfg.RatePerSec,
			Burst:              a.cfg.burst(),
			MaxQueued:          a.cfg.maxQueued(),
			Weight:             1,
		},
		Overrides: []AnalystLimits{},
	}
	for _, st := range a.analysts {
		if st.limits != (AnalystLimits{Analyst: st.limits.Analyst}) {
			resp.Overrides = append(resp.Overrides, st.limits)
		}
	}
	sort.Slice(resp.Overrides, func(i, j int) bool { return resp.Overrides[i].Analyst < resp.Overrides[j].Analyst })
	return resp
}

// queueDepth reports the total queued waiters (tests and the
// queue-depth gauge agree by construction; this is for assertions).
func (a *admitter) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// admissionMetrics bundles the admission layer's instruments; nil is
// the disabled state and every method is nil-receiver safe.
type admissionMetrics struct {
	depth    *telemetry.Gauge
	inflight *telemetry.Gauge
	wait     *telemetry.Histogram
	admitted *telemetry.Counter
	rejects  *telemetry.CounterVec
	cancels  *telemetry.Counter
}

// newAdmissionMetrics registers the admission series (nil reg
// disables). Rejection reasons are a closed set: "rate", "queue_full".
func newAdmissionMetrics(reg *telemetry.Registry) *admissionMetrics {
	if reg == nil {
		return nil
	}
	m := &admissionMetrics{
		depth: reg.NewGauge("osdp_admission_queue_depth",
			"Requests waiting in the weighted-fair admission queue."),
		inflight: reg.NewGauge("osdp_admission_in_flight",
			"Admitted queries currently executing."),
		wait: reg.NewHistogram("osdp_admission_wait_seconds",
			"Time a queued request waited for admission.", nil),
		admitted: reg.NewCounter("osdp_admission_admitted_total",
			"Queries admitted to execution."),
		rejects: reg.NewCounterVec("osdp_admission_rejected_total",
			"Requests rejected at admission (HTTP 429), by reason.", "reason"),
		cancels: reg.NewCounter("osdp_admission_cancelled_total",
			"Requests cancelled while waiting in the admission queue."),
	}
	// Pre-register the closed reason set so the exposition is stable
	// from the first scrape.
	m.rejects.With("rate")
	m.rejects.With("queue_full")
	return m
}

func (m *admissionMetrics) enqueued() {
	if m != nil {
		m.depth.Inc()
	}
}

func (m *admissionMetrics) dequeued() {
	if m != nil {
		m.depth.Dec()
	}
}

func (m *admissionMetrics) cancelled() {
	if m != nil {
		m.depth.Dec()
		m.cancels.Inc()
	}
}

func (m *admissionMetrics) waited(d time.Duration) {
	if m != nil {
		m.wait.ObserveDuration(d)
	}
}

func (m *admissionMetrics) started() {
	if m != nil {
		m.inflight.Inc()
		m.admitted.Inc()
	}
}

func (m *admissionMetrics) finished() {
	if m != nil {
		m.inflight.Dec()
	}
}

func (m *admissionMetrics) reject(reason string) {
	if m != nil {
		m.rejects.With(reason).Inc()
	}
}
