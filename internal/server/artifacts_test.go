package server

import (
	"strings"
	"testing"

	"osdp/internal/dataset"
)

func artifactsTestServer(t *testing.T) (*Server, *ds) {
	t.Helper()
	s := New(Config{AllowSeededSessions: true})
	tb, err := dataset.ReadCSV(strings.NewReader(
		"City:string,Age:int,Score:float\n" +
			"ams,30,1.5\nbos,17,2.5\nams,40,3.5\ncdg,12,0.5\nbos,55,4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	pol := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	if err := s.RegisterTable("d", tb, pol); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	d := s.datasets["d"]
	s.mu.Unlock()
	return s, d
}

func TestArtifactsPrecompileDerivedDomains(t *testing.T) {
	_, d := artifactsTestServer(t)
	for _, attr := range []string{"City", "Age", "Score"} {
		dom, ok := d.art.derived[attr]
		if !ok {
			t.Fatalf("no derived domain precompiled for %q", attr)
		}
		if dom.Attr() != attr {
			t.Fatalf("derived domain for %q reports attr %q", attr, dom.Attr())
		}
	}
	// Derived from the NON-SENSITIVE partition only: the minors (ams is
	// fine, the age-12 cdg row is sensitive) must not leak into labels.
	city := d.art.derived["City"]
	for _, l := range city.Labels() {
		if l == "cdg" {
			t.Error("derived domain leaked a sensitive-only value")
		}
	}
	// Typed ordering from the SortedKeys fix: ages sort numerically.
	age := d.art.derived["Age"]
	labels := age.Labels()
	if len(labels) != 3 || labels[0] != "30" || labels[1] != "40" || labels[2] != "55" {
		t.Errorf("derived Age labels = %v, want [30 40 55]", labels)
	}
}

func TestArtifactsDomainAndPredicateCaches(t *testing.T) {
	_, d := artifactsTestServer(t)

	// Derived shapes resolve to the precompiled Domain, not a fresh one.
	spec := DomainSpec{Attr: "City"}
	d1, err := d.art.domain(spec, d.ns)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d.art.derived["City"] {
		t.Error("derived shape did not reuse the precompiled domain")
	}

	// Explicit shapes land in the LRU once and are reused.
	exp := DomainSpec{Attr: "Age", Lo: 0, Width: 10, Bins: 8}
	e1, err := d.art.domain(exp, d.ns)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.art.domain(exp, d.ns)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("explicit domain recompiled on repeat")
	}
	if d.art.domains.len() != 1 {
		t.Errorf("domain LRU holds %d entries, want 1", d.art.domains.len())
	}

	// Compiled predicates are cached by spec.
	where := PredicateSpec{Op: "cmp", Attr: "Age", Cmp: ">=", Value: float64(18)}
	p1, err := d.art.predicate(where, d.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.art.predicate(where, d.table.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if d.art.preds.len() != 1 {
		t.Errorf("predicate LRU holds %d entries, want 1", d.art.preds.len())
	}
	// Cached predicate still evaluates correctly.
	if got := d.table.Count(p1); got != 3 || d.table.Count(p2) != 3 {
		t.Errorf("cached predicate counts %d adults, want 3", got)
	}

	// Bad specs stay uncached errors.
	if _, err := d.art.domain(DomainSpec{Attr: "Nope"}, d.ns); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := d.art.predicate(PredicateSpec{Op: "cmp", Attr: "Nope", Cmp: "=", Value: "x"}, d.table.Schema()); err == nil {
		t.Error("unknown predicate attribute accepted")
	}
}

// Derived domains over high-cardinality attributes are rejected in O(1)
// with a actionable error, not re-derived per query.
func TestOversizedDerivedDomainRejected(t *testing.T) {
	s := New(Config{})
	schema := dataset.NewSchema(
		dataset.Field{Name: "ID", Kind: dataset.KindInt},
		dataset.Field{Name: "City", Kind: dataset.KindString},
	)
	tb := dataset.NewTable(schema)
	for i := 0; i < maxDerivedDomainKeys+10; i++ {
		tb.AppendValues(dataset.Int(int64(i)), dataset.Str("x"))
	}
	if err := s.RegisterTable("big", tb, dataset.AllNonSensitive()); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	d := s.datasets["big"]
	s.mu.Unlock()
	if _, ok := d.art.derived["ID"]; ok {
		t.Fatal("high-cardinality attribute was pinned at registration")
	}
	if _, ok := d.art.oversized["ID"]; !ok {
		t.Fatal("high-cardinality attribute not recorded as oversized")
	}
	if _, err := d.art.domain(DomainSpec{Attr: "ID"}, d.ns); err == nil {
		t.Error("oversized derived domain accepted")
	}
	// The low-cardinality attribute still works.
	if _, err := d.art.domain(DomainSpec{Attr: "City"}, d.ns); err != nil {
		t.Errorf("small derived domain rejected: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatal("missing fresh entry")
	}
	c.put("c", 3) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("LRU kept the least-recently-used entry")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("LRU evicted the recently-used entry")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("LRU lost the newest entry")
	}
	c.put("a", 9)
	if v, _ := c.get("a"); v != 9 {
		t.Error("put did not refresh an existing key")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
