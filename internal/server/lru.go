package server

import (
	"container/list"
	"sync"

	"osdp/internal/telemetry"
)

// lru is a small mutex-guarded LRU cache keyed by string, used for
// per-dataset compiled query artifacts (predicates and explicit histogram
// domains). Capacity is fixed at construction; inserting beyond it evicts
// the least-recently-used entry. All methods are safe for concurrent use.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	// hits/misses are optional telemetry counters (nil-safe, so a cache
	// without instruments pays only the nil method call).
	hits, misses *telemetry.Counter
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity <= 0 {
		panic("server: lru capacity must be positive")
	}
	return &lru[V]{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value for key, marking it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// put inserts or refreshes key, evicting the oldest entry when full.
func (c *lru[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: v})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// len returns the number of cached entries.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
