package server

import (
	"errors"
	"fmt"
	"net/http"

	"osdp/internal/core"
)

// Sentinel errors classifying failures; the HTTP layer maps them to
// status codes and the Go client surfaces them via errors.Is.
var (
	// ErrBadRequest marks malformed or ill-typed requests, rejected
	// before any budget is charged.
	ErrBadRequest = errors.New("server: bad request")
	// ErrNotFound marks unknown dataset or session ids.
	ErrNotFound = errors.New("server: not found")
	// ErrConflict marks duplicate registrations.
	ErrConflict = errors.New("server: conflict")
	// ErrTooManySessions marks the MaxSessions cap.
	ErrTooManySessions = errors.New("server: too many sessions")
)

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// statusOf maps an error to its HTTP status. Budget exhaustion is 402
// (the client literally ran out of ε currency); an empty quantile sample
// is 409 — a valid, retriable outcome whose charge stands, not a server
// fault.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusPaymentRequired
	case errors.Is(err, core.ErrEmptySample):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}
