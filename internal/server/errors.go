package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"osdp/internal/core"
	"osdp/internal/ledger"
)

// Sentinel errors classifying failures; the HTTP layer maps them to
// status codes and the Go client surfaces them via errors.Is.
var (
	// ErrBadRequest marks malformed or ill-typed requests, rejected
	// before any budget is charged.
	ErrBadRequest = errors.New("server: bad request")
	// ErrNotFound marks unknown dataset or session ids.
	ErrNotFound = errors.New("server: not found")
	// ErrConflict marks duplicate registrations.
	ErrConflict = errors.New("server: conflict")
	// ErrTooManySessions marks the MaxSessions cap and the per-analyst
	// session cap.
	ErrTooManySessions = errors.New("server: too many sessions")
	// ErrUnauthorized marks requests with missing or unknown credentials
	// (401: who are you?).
	ErrUnauthorized = errors.New("server: unauthorized")
	// ErrForbidden marks authenticated requests that are not allowed to
	// touch the resource: disabled analysts, another analyst's session,
	// or a bad admin token (403: you may not).
	ErrForbidden = errors.New("server: forbidden")
	// ErrRateLimited marks requests rejected by the admission layer —
	// token bucket empty or admission queue full (429 + Retry-After).
	// Unlike every other sentinel it is always retriable as-is: the
	// request was refused before touching a session or charging ε.
	ErrRateLimited = errors.New("server: rate limited")
)

// rateLimitedError is an admission rejection carrying the pause the
// server advertises in Retry-After. It unwraps to ErrRateLimited so
// errors.Is classification keeps working.
type rateLimitedError struct {
	msg        string
	retryAfter time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("server: rate limited: %s", e.msg)
}

func (e *rateLimitedError) Unwrap() error { return ErrRateLimited }

// RetryAfter reports the advertised pause; writeErr surfaces it as the
// Retry-After header via the retryAfterer interface.
func (e *rateLimitedError) RetryAfter() time.Duration { return e.retryAfter }

// retryAfterer is implemented by errors that advertise a retry pause.
type retryAfterer interface{ RetryAfter() time.Duration }

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// statusOf maps an error to its HTTP status. Budget exhaustion is 402
// (the client literally ran out of ε currency); an empty quantile sample
// is 409 — a valid, retriable outcome whose charge stands, not a server
// fault.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnauthorized), errors.Is(err, ledger.ErrBadKey):
		return http.StatusUnauthorized
	case errors.Is(err, ErrForbidden), errors.Is(err, ledger.ErrDisabled):
		return http.StatusForbidden
	case errors.Is(err, ErrNotFound), errors.Is(err, ledger.ErrUnknownAnalyst):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusPaymentRequired
	case errors.Is(err, core.ErrEmptySample):
		return http.StatusConflict
	case errors.Is(err, ledger.ErrClosed):
		// The control plane is gone (shutdown drain): a server-side,
		// retriable condition — not the client's fault.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away (or its deadline fired) while the request
		// waited for admission; nothing was executed or charged. 503
		// mirrors the "retriable, not your data's fault" contract.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
