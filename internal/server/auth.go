package server

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"
	"time"

	"osdp/internal/audit"
	"osdp/internal/telemetry"
)

// Authentication model: two disjoint bearer-token realms.
//
//   - /v1 (query plane): analyst API keys minted by the ledger. Only
//     active when Config.Ledger is set; without a ledger the query
//     plane is open, as before (legacy mode, no cross-session
//     accounting).
//   - /admin (control plane): the single operator token from
//     Config.AdminToken. Admin access never doubles as analyst access
//     or vice versa — an analyst key on /admin is 403, and the admin
//     token on /v1 is 401.
//
// /healthz and /stats are unauthenticated: liveness probes cannot carry
// credentials, and /stats exposes only coarse aggregates.

// bearerToken extracts the RFC 6750 bearer credential.
func bearerToken(r *http.Request) (string, error) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", fmt.Errorf("%w: missing Authorization header", ErrUnauthorized)
	}
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || tok == "" {
		return "", fmt.Errorf("%w: Authorization header is not a bearer token", ErrUnauthorized)
	}
	return tok, nil
}

// authResolutionKey carries the authResolution holder the middleware
// plants so withAnalyst can report the resolved identity back to the
// access log after the handler returns.
type authResolutionKey struct{}

// authResolution records the authenticated analyst ID — never the key —
// for the request's access-log line. Written at most once, by
// withAnalyst, on the serving goroutine.
type authResolution struct {
	analyst string
}

// withAnalyst authenticates the query plane. The resolved analyst id is
// handed to the wrapped handler ("" when the server has no ledger) and
// recorded on the request trace and access-log resolution.
func (s *Server) withAnalyst(h func(w http.ResponseWriter, r *http.Request, analyst string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		analyst := ""
		if s.cfg.Ledger != nil {
			tr := telemetry.TraceFrom(r.Context())
			sp := tr.StartSpan("auth")
			tok, err := bearerToken(r)
			if err != nil {
				sp.End()
				writeErr(w, err)
				return
			}
			info, err := s.cfg.Ledger.Authenticate(tok)
			sp.End()
			if err != nil {
				writeErr(w, err) // ErrBadKey -> 401, ErrDisabled -> 403
				return
			}
			analyst = info.ID
			tr.SetAnalyst(analyst)
			if res, ok := r.Context().Value(authResolutionKey{}).(*authResolution); ok {
				res.analyst = analyst
			}
		}
		h(w, r, analyst)
	}
}

// withAdmin authenticates the control plane against Config.AdminToken.
func (s *Server) withAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Ledger == nil || s.cfg.AdminToken == "" {
			writeErr(w, fmt.Errorf("%w: admin API is disabled (no ledger or no admin token configured)", ErrForbidden))
			return
		}
		tok, err := bearerToken(r)
		if err != nil {
			writeErr(w, err)
			return
		}
		if subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.AdminToken)) != 1 {
			writeErr(w, fmt.Errorf("%w: bad admin token", ErrForbidden))
			return
		}
		h(w, r)
	}
}

// adminRoutes mounts the budget-administration API:
//
//	POST /admin/analysts              CreateAnalystRequest -> AnalystCreated (key shown ONCE)
//	GET  /admin/analysts              -> []ledger.AnalystInfo
//	POST /admin/analysts/{id}/disable -> ledger.AnalystInfo
//	POST /admin/analysts/{id}/enable  -> ledger.AnalystInfo
//	GET  /admin/budgets               -> []ledger.AccountInfo (touched accounts)
//	POST /admin/budgets               BudgetGrantRequest -> ledger.AccountInfo
//	GET  /admin/spend                 -> SpendReport (accounts + totals)
//	GET  /admin/limits                -> LimitsResponse (admission defaults + overrides)
//	POST /admin/limits                AnalystLimits -> AnalystLimits (set/clear one override)
//	GET  /admin/traces                -> []TraceInfo (?kind= &analyst= &min_duration= &limit=)
//	GET  /admin/traces/{id}           -> TraceInfo
//	GET  /admin/audit                 -> AuditReport (?analyst= &since= &until= &limit=)
//	*    /admin/pprof/...             net/http/pprof (profiles reveal internals; operator only)
//
// Traces and the audit trail are admin-realm (unlike /metrics): they
// carry per-request analyst IDs, dataset names, and ε amounts — exactly
// the per-tenant detail the credential-free aggregate endpoints are
// scrubbed of.
func (s *Server) adminRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/admin/pprof/", s.withAdmin(s.pprofHandler))
	mux.HandleFunc("POST /admin/analysts", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		var req CreateAnalystRequest
		if !readJSON(w, r, &req) {
			return
		}
		info, key, err := s.cfg.Ledger.CreateAnalyst(req.Name, req.SessionCap)
		if err != nil {
			writeErr(w, badWrap(err))
			return
		}
		writeJSON(w, http.StatusCreated, AnalystCreated{AnalystInfo: info, Key: key})
	}))
	mux.HandleFunc("GET /admin/analysts", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.cfg.Ledger.Analysts())
	}))
	setDisabled := func(disabled bool) http.HandlerFunc {
		return s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if err := s.cfg.Ledger.SetDisabled(id, disabled); err != nil {
				writeErr(w, err)
				return
			}
			respond(w, http.StatusOK)(s.cfg.Ledger.Analyst(id))
		})
	}
	mux.HandleFunc("POST /admin/analysts/{id}/disable", setDisabled(true))
	mux.HandleFunc("POST /admin/analysts/{id}/enable", setDisabled(false))
	mux.HandleFunc("GET /admin/budgets", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.cfg.Ledger.Accounts())
	}))
	mux.HandleFunc("POST /admin/budgets", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		var req BudgetGrantRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.cfg.Ledger.SetBudget(req.Analyst, req.Dataset, req.Budget); err != nil {
			writeErr(w, badWrap(err))
			return
		}
		respond(w, http.StatusOK)(s.cfg.Ledger.Account(req.Analyst, req.Dataset))
	}))
	mux.HandleFunc("GET /admin/spend", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		accounts := s.cfg.Ledger.Accounts()
		report := SpendReport{Accounts: accounts}
		for _, a := range accounts {
			report.TotalSpent += a.Spent
		}
		report.Analysts, report.TouchedAccounts = s.cfg.Ledger.Counts()
		writeJSON(w, http.StatusOK, report)
	}))
	mux.HandleFunc("GET /admin/limits", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		if s.adm == nil {
			// Report "disabled" as data, not an error: operators probe
			// this to learn whether the knob exists at all.
			writeJSON(w, http.StatusOK, LimitsResponse{Enabled: false})
			return
		}
		writeJSON(w, http.StatusOK, s.adm.limits())
	}))
	mux.HandleFunc("POST /admin/limits", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		if s.adm == nil {
			writeErr(w, fmt.Errorf("%w: admission control is disabled on this server", ErrNotFound))
			return
		}
		var req AnalystLimits
		if !readJSON(w, r, &req) {
			return
		}
		respond(w, http.StatusOK)(s.adm.setLimits(req))
	}))
	mux.HandleFunc("GET /admin/traces", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Tracer == nil {
			writeErr(w, fmt.Errorf("%w: tracing is disabled", ErrNotFound))
			return
		}
		q := r.URL.Query()
		f := telemetry.TraceFilter{Kind: q.Get("kind"), Analyst: q.Get("analyst")}
		if v := q.Get("min_duration"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				writeErr(w, fmt.Errorf("%w: bad min_duration %q: %v", ErrBadRequest, v, err))
				return
			}
			f.MinDuration = d
		}
		var err error
		if f.Limit, err = queryInt(q.Get("limit")); err != nil {
			writeErr(w, err)
			return
		}
		views := s.cfg.Tracer.Traces(f)
		out := make([]TraceInfo, len(views))
		for i, v := range views {
			out[i] = traceInfo(v)
		}
		writeJSON(w, http.StatusOK, out)
	}))
	mux.HandleFunc("GET /admin/traces/{id}", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Tracer == nil {
			writeErr(w, fmt.Errorf("%w: tracing is disabled", ErrNotFound))
			return
		}
		id := r.PathValue("id")
		v, ok := s.cfg.Tracer.Get(id)
		if !ok {
			writeErr(w, fmt.Errorf("%w: no retained trace %q", ErrNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, traceInfo(v))
	}))
	mux.HandleFunc("GET /admin/audit", s.withAdmin(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Audit == nil {
			writeErr(w, fmt.Errorf("%w: audit trail is disabled", ErrNotFound))
			return
		}
		q := r.URL.Query()
		f := audit.Filter{Analyst: q.Get("analyst")}
		var err error
		if f.Since, err = queryTime(q, "since"); err != nil {
			writeErr(w, err)
			return
		}
		if f.Until, err = queryTime(q, "until"); err != nil {
			writeErr(w, err)
			return
		}
		if f.Limit, err = queryInt(q.Get("limit")); err != nil {
			writeErr(w, err)
			return
		}
		events := s.cfg.Audit.Recent(f)
		if events == nil {
			events = []audit.Event{}
		}
		writeJSON(w, http.StatusOK, AuditReport{
			Durable: s.cfg.Audit.Durable(),
			Total:   s.cfg.Audit.Seq(),
			Events:  events,
		})
	}))
}

// badWrap turns ledger validation failures into 400s while letting
// already-typed sentinels (unknown analyst, closed, …) keep their
// status.
func badWrap(err error) error {
	if statusOf(err) != http.StatusInternalServerError {
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadRequest, err)
}
