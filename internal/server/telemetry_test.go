package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"osdp/internal/dataset"
	"osdp/internal/ledger"
	"osdp/internal/telemetry"
)

// scrape fetches /metrics and returns the body plus the set of distinct
// series names (metric name without labels, histogram _bucket/_sum/
// _count collapsed to the family name).
func scrape(t *testing.T, base string) (string, map[string]bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		names[name] = true
	}
	return string(body), names
}

// expositionLine matches one valid sample line of the text format.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestMetricsEndpoint drives every query kind through the full HTTP
// stack and asserts GET /metrics exposes a well-formed Prometheus text
// exposition covering the server, ledger, and dataset layers — the
// PR's ≥12-series acceptance bar, pinned with room to spare.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	dataset.SetScanMetrics(dataset.NewScanMetrics(reg))
	t.Cleanup(func() { dataset.SetScanMetrics(nil) })
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 100, Telemetry: reg}, Config{Telemetry: reg})
	registerPeople(t, srv, 200)
	ac, _ := mintAnalyst(t, c, "alice", 0)
	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Histogram(ctx, 0.1, nil, DomainSpec{Attr: "City"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Quantile(ctx, 0.1, "Age", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Workload(ctx, 0.1, EstimatorHier, nil,
		[]DomainSpec{{Attr: "Age", Lo: 0, Width: 10, Bins: 10}},
		[]RangeSpec{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 9}}); err != nil {
		t.Fatal(err)
	}

	body, names := scrape(t, c.base)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	want := []string{
		// server / HTTP layer
		"osdp_http_requests_total",
		"osdp_http_request_duration_seconds",
		"osdp_http_in_flight_requests",
		"osdp_query_duration_seconds",
		"osdp_queries_total",
		"osdp_query_errors_total",
		"osdp_query_eps_charged_total",
		"osdp_sessions_active",
		"osdp_sessions_opened_total",
		"osdp_sessions_closed_total",
		"osdp_datasets_registered",
		"osdp_cache_hits_total",
		"osdp_cache_misses_total",
		// ledger layer
		"osdp_ledger_charges_total",
		"osdp_ledger_spent_eps",
		"osdp_ledger_analysts",
		"osdp_ledger_accounts",
		// dataset layer
		"osdp_scan_chunks_processed_total",
		"osdp_scan_active_workers",
	}
	for _, name := range want {
		if !names[name] {
			t.Errorf("series %s missing from /metrics", name)
		}
	}
	if len(names) < 12 {
		t.Fatalf("only %d distinct series, acceptance bar is 12:\n%s", len(names), body)
	}
	// Per-kind counters actually counted the four successful queries.
	for _, kind := range []string{"count", "histogram", "quantile", "workload"} {
		if !strings.Contains(body, `osdp_queries_total{kind="`+kind+`"} 1`) {
			t.Errorf("osdp_queries_total{kind=%q} did not reach 1", kind)
		}
	}
	// The four charges each spent 0.1 ε; the ledger gauge agrees.
	if !strings.Contains(body, "osdp_ledger_charges_total 4") {
		t.Errorf("osdp_ledger_charges_total != 4 in:\n%s", body)
	}
}

// TestRequestIDMiddleware pins the tracing contract: every response
// carries an X-Request-Id, and distinct requests get distinct ids.
func TestRequestIDMiddleware(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _ := newLedgerServer(t, "", ledger.Config{}, Config{Telemetry: reg})
	ids := make(map[string]bool)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(c.base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if len(id) != 16 {
			t.Fatalf("X-Request-Id = %q, want 16 hex chars", id)
		}
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Fatalf("request ids not unique: %v", ids)
	}
}

// TestStatsSpentEpsWire pins the satellite fix: a ledger server that has
// spent NOTHING still says "spent_eps":0 on the wire, so clients can
// tell 0.0 spend from "no ledger at all", which omits the field.
func TestStatsSpentEpsWire(t *testing.T) {
	get := func(base string) string {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	c, _ := newLedgerServer(t, "", ledger.Config{DefaultBudget: 1}, Config{})
	if body := get(c.base); !strings.Contains(body, `"spent_eps":0`) {
		t.Fatalf("fresh ledger /stats omits spent_eps: %s", body)
	}

	plain := New(Config{})
	ts := httptest.NewServer(plain.Handler())
	defer ts.Close()
	if body := get(ts.URL); strings.Contains(body, "spent_eps") {
		t.Fatalf("ledger-less /stats leaks spent_eps: %s", body)
	}
}

// TestMetricsConcurrentScrape scrapes /metrics while queries, ledger
// charges, session churn, and TTL sweeps run concurrently. Run under
// -race (CI does) it proves the whole telemetry plane is data-race
// free; functionally it asserts scrapes never fail mid-flight.
func TestMetricsConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	dataset.SetScanMetrics(dataset.NewScanMetrics(reg))
	t.Cleanup(func() { dataset.SetScanMetrics(nil) })
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 1e9, Telemetry: reg},
		Config{Telemetry: reg, SessionTTL: 10 * time.Millisecond})
	registerPeople(t, srv, 200)
	ac, _ := mintAnalyst(t, c, "alice", 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sc, err := ac.OpenSession(ctx, "people", 0, seed(int64(w*1000+i)))
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				// Expiry may race the query: a not-found/expired session
				// after eviction is the TTL contract working, not a failure.
				if _, err := sc.Count(ctx, 0.1, nil); err != nil && !strings.Contains(err.Error(), "session") {
					t.Errorf("count: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Sweep()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, names := scrape(t, c.base); len(names) < 12 {
			t.Errorf("scrape shrank to %d series", len(names))
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestPprofBehindAdminRealm checks pprof is mounted, admin-only: no
// token and analyst tokens are refused, the operator token reaches the
// real pprof handlers.
func TestPprofBehindAdminRealm(t *testing.T) {
	c, _ := newLedgerServer(t, "", ledger.Config{}, Config{})
	get := func(token string) int {
		req, err := http.NewRequest(http.MethodGet, c.base+"/admin/pprof/goroutine?debug=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(body), "goroutine") {
				t.Fatalf("pprof goroutine dump looks wrong: %.120s", body)
			}
		}
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless pprof = %d, want 401", code)
	}
	if code := get("not-the-admin-token"); code != http.StatusForbidden {
		t.Fatalf("bad-token pprof = %d, want 403", code)
	}
	if code := get(adminToken); code != http.StatusOK {
		t.Fatalf("admin pprof = %d, want 200", code)
	}
}
