package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRURejectsNonPositiveCapacity pins the construction guard: a
// zero capacity would silently cache nothing (every put immediately
// evicted) and a negative one would never evict at all — both
// misconfigurations must fail loudly at construction, not degrade
// quietly in production.
func TestLRURejectsNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newLRU(%d) accepted a non-positive capacity", capacity)
				}
			}()
			newLRU[int](capacity)
		}()
	}
}

// TestLRUEvictionOrderAtCapacityOne pins eviction order at the
// smallest legal capacity: every insert of a new key evicts the
// previous one, and a refresh of the resident key does not.
func TestLRUEvictionOrderAtCapacityOne(t *testing.T) {
	c := newLRU[int](1)
	c.put("a", 1)
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("get a = %d, %v; want 1, true", v, ok)
	}
	c.put("b", 2)
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived b's insert at capacity 1")
	}
	if v, ok := c.get("b"); !ok || v != 2 {
		t.Fatalf("get b = %d, %v; want 2, true", v, ok)
	}
	// Refreshing the resident key must not evict it…
	c.put("b", 3)
	if v, ok := c.get("b"); !ok || v != 3 {
		t.Fatalf("refreshed b = %d, %v; want 3, true", v, ok)
	}
	// …and the cache never exceeds its capacity.
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d at capacity 1", n)
	}
}

// TestLRURecencyOrder pins that get refreshes recency: after touching
// the oldest entry, the other one is evicted first.
func TestLRURecencyOrder(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a")    // a is now most recently used
	c.put("c", 3) // must evict b, not a
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived: get did not refresh a's recency")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
}

// TestLRUConcurrentUse exercises the mutex under the race detector.
func TestLRUConcurrentUse(t *testing.T) {
	c := newLRU[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%16)
				c.put(k, i)
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > 8 {
		t.Fatalf("len = %d exceeds capacity 8", n)
	}
}
