package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"osdp/internal/telemetry"
)

// maxBodyBytes bounds request bodies (datasets travel inline as CSV, so
// this is generous but finite).
const maxBodyBytes = 64 << 20

// Handler returns the HTTP API:
//
//	GET    /healthz                 liveness (also GET /v1/healthz)
//	GET    /stats                   -> StatsResponse (coarse aggregates)
//	GET    /metrics                 Prometheus text exposition (empty without Config.Telemetry)
//	POST   /v1/datasets             RegisterDatasetRequest  -> DatasetInfo
//	GET    /v1/datasets             -> []DatasetInfo
//	GET    /v1/datasets/{name}      -> DatasetInfo
//	POST   /v1/sessions             OpenSessionRequest      -> SessionInfo
//	GET    /v1/sessions/{id}        -> SessionInfo
//	DELETE /v1/sessions/{id}        -> SessionInfo (final state)
//	POST   /v1/sessions/{id}/query  QueryRequest            -> QueryResponse
//
// plus the /admin control plane (see adminRoutes), which also mounts
// net/http/pprof under /admin/pprof/. With Config.Ledger set, every /v1
// route requires an analyst bearer key; /healthz, /stats, and /metrics
// stay open. The whole mux is wrapped by the observability middleware
// (see instrument) when telemetry or access logging is configured.
//
// Errors are JSON ErrorResponse bodies with a meaningful status: 400 for
// malformed requests, 401/403 for missing/forbidden credentials, 402
// when the ε budget (session or ledger) is exhausted, 404 for unknown
// ids, 409 for conflicts and empty quantile samples, 429 at a session
// cap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": s.SessionCount()})
	}
	mux.HandleFunc("GET /healthz", healthz)
	mux.HandleFunc("GET /v1/healthz", healthz) // legacy path
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	mux.HandleFunc("POST /v1/datasets", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, _ string) {
		var req RegisterDatasetRequest
		if !readJSON(w, r, &req) {
			return
		}
		respond(w, http.StatusCreated)(s.RegisterDataset(req))
	}))
	mux.HandleFunc("GET /v1/datasets", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, _ string) {
		writeJSON(w, http.StatusOK, s.Datasets())
	}))
	mux.HandleFunc("GET /v1/datasets/{name}", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, _ string) {
		respond(w, http.StatusOK)(s.DatasetInfo(r.PathValue("name")))
	}))
	mux.HandleFunc("POST /v1/sessions", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, analyst string) {
		var req OpenSessionRequest
		if !readJSON(w, r, &req) {
			return
		}
		respond(w, http.StatusCreated)(s.OpenSession(analyst, req))
	}))
	mux.HandleFunc("GET /v1/sessions/{id}", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, analyst string) {
		respond(w, http.StatusOK)(s.SessionInfo(analyst, r.PathValue("id")))
	}))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, analyst string) {
		respond(w, http.StatusOK)(s.CloseSession(analyst, r.PathValue("id")))
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/query", s.withAnalyst(func(w http.ResponseWriter, r *http.Request, analyst string) {
		var req QueryRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := s.QueryContext(r.Context(), analyst, r.PathValue("id"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		// Response encode is the last traced phase: large histogram or
		// sample payloads can dominate a fast query's wall time.
		sp := telemetry.TraceFrom(r.Context()).StartSpan("encode")
		writeJSON(w, http.StatusOK, resp)
		sp.End()
	}))
	s.adminRoutes(mux)
	return s.instrument(mux)
}

// respond curries the success status so handlers can pass a (value,
// error) pair straight through.
func respond(w http.ResponseWriter, ok int) func(any, error) {
	return func(v any, err error) {
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, ok, v)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeErr(w, badf("reading body: %v", err))
		return false
	}
	if len(body) > maxBodyBytes {
		writeErr(w, badf("body exceeds %d bytes", maxBodyBytes))
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding JSON: %v", ErrBadRequest, err))
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, err error) {
	// Admission rejections advertise their pause: ceil to whole seconds
	// (the header's only portable form), floor at 1 so "Retry-After: 0"
	// never invites an immediate hammer.
	var ra retryAfterer
	if errors.As(err, &ra) {
		secs := int64(math.Ceil(ra.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, statusOf(err), ErrorResponse{Error: err.Error()})
}

// writeJSON marshals before touching the response, so an encoding
// failure (e.g. a NaN float) becomes a clean 500 instead of a success
// status with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		body, status = []byte(`{"error":"server: encoding response failed"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}
