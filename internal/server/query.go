package server

import (
	"fmt"
	"strings"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// Query answers one query against an open session. Validation happens
// before execution so malformed requests never charge the budget; once a
// charge succeeds the response always carries the post-charge budget
// state. Queries on the same session may run concurrently — the budget
// accountant and the locked noise source serialise the shared state.
func (s *Server) Query(id string, req QueryRequest) (QueryResponse, error) {
	se, d, err := s.lookup(id)
	if err != nil {
		return QueryResponse{}, err
	}
	resp := QueryResponse{Kind: req.Kind}
	if !(req.Eps >= MinQueryEps) { // also rejects NaN
		return resp, badf("eps must be at least %g, got %g", MinQueryEps, req.Eps)
	}

	switch req.Kind {
	case KindHistogram, KindIntHistogram:
		q, err := s.compileHistogramQuery(req, d)
		if err != nil {
			return resp, err
		}
		var h *histogram.Histogram
		if req.Kind == KindHistogram {
			h, err = se.sess.Histogram(q, req.Eps)
		} else {
			h, err = se.sess.IntHistogram(q, req.Eps)
		}
		if err != nil {
			return resp, err
		}
		resp.Counts = h.Counts()
		resp.DimLabels = make([][]string, len(q.Dims))
		for i, dom := range q.Dims {
			resp.DimLabels[i] = dom.Labels()
		}
		if len(q.Dims) == 1 {
			resp.Labels = resp.DimLabels[0]
		}

	case KindCount:
		pred := dataset.Predicate(dataset.True())
		if req.Where != nil {
			pred, err = d.art.predicate(*req.Where, d.table.Schema())
			if err != nil {
				return resp, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		c, err := se.sess.Count(pred, req.Eps)
		if err != nil {
			return resp, err
		}
		resp.Value = &c

	case KindQuantile:
		kind, ok := d.table.Schema().KindOf(req.Attr)
		if !ok {
			return resp, badf("unknown attribute %q", req.Attr)
		}
		if kind != dataset.KindInt && kind != dataset.KindFloat {
			return resp, badf("quantile needs a numeric attribute; %q is %s", req.Attr, kind)
		}
		if req.Q < 0 || req.Q > 1 {
			return resp, badf("q=%g outside [0, 1]", req.Q)
		}
		v, err := se.sess.Quantile(req.Attr, req.Q, req.Eps)
		if err != nil {
			return resp, err
		}
		resp.Value = &v

	case KindSample:
		t, err := se.sess.Sample(req.Eps)
		if err != nil {
			return resp, err
		}
		var b strings.Builder
		if err := dataset.WriteCSV(&b, t); err != nil {
			return resp, err
		}
		resp.SampleCSV = b.String()

	default:
		return resp, badf("unknown query kind %q", req.Kind)
	}

	resp.Budget = infoFor(se)
	return resp, nil
}

func (s *Server) compileHistogramQuery(req QueryRequest, d *ds) (histogram.Query, error) {
	if len(req.Dims) == 0 || len(req.Dims) > 2 {
		return histogram.Query{}, badf("histogram queries take 1 or 2 dims, got %d", len(req.Dims))
	}
	dims := make([]*histogram.Domain, len(req.Dims))
	for i, spec := range req.Dims {
		// Derived domains come from the non-sensitive partition so bin
		// labels cannot reveal sensitive-only values; resolution goes
		// through the per-dataset artifact cache so repeated shapes
		// reuse compiled domains and their bin vectors.
		dom, err := d.art.domain(spec, d.ns)
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		dims[i] = dom
	}
	// Per-dim sizes are capped by compileDomain; cap the product too,
	// since 2-D output arity multiplies.
	if len(dims) == 2 && dims[0].Size() > MaxQueryBins/dims[1].Size() {
		return histogram.Query{}, badf("histogram output arity %d x %d exceeds the %d-bin cap", dims[0].Size(), dims[1].Size(), MaxQueryBins)
	}
	var where dataset.Predicate
	if req.Where != nil {
		p, err := d.art.predicate(*req.Where, d.table.Schema())
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		where = p
	}
	return histogram.NewQuery(where, dims...), nil
}
