package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"osdp/internal/agrid"
	"osdp/internal/ahp"
	"osdp/internal/audit"
	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/hier"
	"osdp/internal/histogram"
	"osdp/internal/telemetry"
)

// Query answers one query against an open session on behalf of analyst.
// Validation and compilation happen before ANY budget is touched, so
// malformed requests never charge; with a ledger configured the charge
// order is then
//
//  1. charge the analyst's durable (analyst, dataset) ledger account
//  2. charge the session accountant and draw noise (core.Session)
//
// and a failure at step 2 that provably released no noise (the session
// accountant rejected the charge) refunds step 1. Failures AFTER noise
// — an empty quantile sample, CSV encoding of a released sample — never
// refund: the randomness was observed, the ε is spent (Theorem 3.3).
// Once a charge succeeds the response always carries the post-charge
// budget state. Queries on the same session may run concurrently — the
// accountants and the locked noise source serialise the shared state.
//
// A workload request charges req.Eps ONCE for its entire range batch:
// the estimator releases a single synopsis and every range answer is
// post-processing of it (core.WorkloadComposite), so the ledger and
// session accountant each record exactly one charge regardless of
// batch size.
func (s *Server) Query(analyst, id string, req QueryRequest) (QueryResponse, error) {
	return s.QueryContext(context.Background(), analyst, id, req)
}

// QueryContext is Query with a request context: when ctx carries a
// trace (planted by the HTTP middleware) the query's phases are
// recorded as spans, and the request id in ctx is stamped on the audit
// event the ε decision produces. Cancellation is honoured only while
// the request waits for admission (nothing has been touched yet);
// once admitted, a charge-then-answer sequence runs to completion —
// abandoning it mid-flight could observe noise without recording the
// spend.
func (s *Server) QueryContext(ctx context.Context, analyst, id string, req QueryRequest) (QueryResponse, error) {
	if s.met == nil {
		resp, _, err := s.queryCounted(ctx, analyst, id, req)
		return resp, err
	}
	start := time.Now()
	resp, charged, err := s.queryCounted(ctx, analyst, id, req)
	s.met.observeQuery(req.Kind, time.Since(start), req.Eps, charged, err)
	return resp, err
}

// queryCounted is Query's body; charged reports whether the request's ε
// ended up retained by the accountants (true on success and on
// post-noise failures, false when validation rejected the request, the
// ledger refused the charge, or the session accountant's rejection got
// the ledger reservation refunded).
func (s *Server) queryCounted(ctx context.Context, analyst, id string, req QueryRequest) (_ QueryResponse, charged bool, _ error) {
	tr := telemetry.TraceFrom(ctx)
	tr.SetKind(canonicalKind(req.Kind))
	// Admission gates EVERYTHING: a rejected or cancelled-while-queued
	// request reaches neither a session nor a ledger, so it provably
	// charges zero ε. The session lookup runs after the wait on purpose
	// — a session whose TTL lapsed while its request queued fails
	// closed instead of executing on borrowed time.
	if s.adm != nil {
		sp := tr.StartSpan("admission")
		release, err := s.adm.acquire(ctx, analyst)
		sp.End()
		if err != nil {
			return QueryResponse{}, false, err
		}
		defer release()
	}
	se, d, err := s.lookup(analyst, id)
	if err != nil {
		return QueryResponse{}, false, err
	}
	resp := QueryResponse{Kind: req.Kind}
	if !(req.Eps >= MinQueryEps) { // also rejects NaN
		return resp, false, badf("eps must be at least %g, got %g", MinQueryEps, req.Eps)
	}

	// Compile and validate first; run executes the mechanism (charging
	// the session accountant and drawing noise) only after the ledger
	// has admitted the charge.
	sp := tr.StartSpan("compile")
	run, err := s.compileRun(req, se, d, &resp, tr)
	sp.End()
	if err != nil {
		return resp, false, err
	}

	charge := core.Guarantee{Policy: d.policy, Epsilon: req.Eps}
	if s.cfg.Ledger != nil {
		sp := tr.StartSpan("ledger.charge")
		err := s.cfg.Ledger.Charge(se.analyst, se.dataset, charge, tr)
		sp.End()
		if err != nil {
			// The ledger refused: nothing was spent, but the refusal is
			// itself an ε-bearing decision worth auditing.
			s.auditEvent(ctx, se, req.Kind, req.Eps, audit.OutcomeDenied)
			return resp, false, err
		}
	}
	if err := run(); err != nil {
		if errors.Is(err, core.ErrBudgetExceeded) {
			// The session accountant rejected the charge before the
			// mechanism ran: no noise was drawn, so the ledger
			// reservation may be returned. A failed refund keeps the
			// charge — the ledger only ever errs toward more spend.
			if s.cfg.Ledger != nil {
				_ = s.cfg.Ledger.Refund(se.analyst, se.dataset, charge)
			}
			s.auditEvent(ctx, se, req.Kind, req.Eps, audit.OutcomeRefunded)
			return resp, false, err
		}
		// Any other run failure is post-noise: the randomness was
		// observed, so the spend is real and stays on the books.
		s.auditEvent(ctx, se, req.Kind, req.Eps, audit.OutcomeRetained)
		return resp, true, err
	}

	s.auditEvent(ctx, se, req.Kind, req.Eps, audit.OutcomeReleased)
	resp.Budget = infoFor(se)
	return resp, true, nil
}

// auditEvent records one ε-bearing decision on the configured audit
// trail; one branch when auditing is disabled.
func (s *Server) auditEvent(ctx context.Context, se *session, kind string, eps float64, outcome string) {
	if s.cfg.Audit == nil {
		return
	}
	s.cfg.Audit.Append(audit.Event{
		RequestID: RequestID(ctx),
		Analyst:   se.analyst,
		Dataset:   se.dataset,
		Session:   se.id,
		Kind:      kind,
		Eps:       eps,
		Outcome:   outcome,
	})
}

// coreHooks adapts the request trace to core's TraceHook seam so scan
// and noise phases inside the mechanism record as spans. Nil (zero
// further cost) when the request is untraced.
func coreHooks(tr *telemetry.Trace) []core.TraceHook {
	if tr == nil {
		return nil
	}
	return []core.TraceHook{func(name string) func(kv ...string) {
		sp := tr.StartSpan(name)
		return func(kv ...string) {
			if len(kv) < 2 {
				sp.End()
				return
			}
			attrs := make([]telemetry.Label, 0, len(kv)/2)
			for i := 0; i+1 < len(kv); i += 2 {
				attrs = append(attrs, telemetry.L(kv[i], kv[i+1]))
			}
			sp.End(attrs...)
		}
	}}
}

// compileRun validates req and compiles it into a run closure that
// executes the mechanism against se and fills resp. Everything here
// runs BEFORE any budget is touched.
func (s *Server) compileRun(req QueryRequest, se *session, d *ds, resp *QueryResponse, tr *telemetry.Trace) (func() error, error) {
	hooks := coreHooks(tr)
	var run func() error
	var err error
	switch req.Kind {
	case KindHistogram, KindIntHistogram:
		q, err := s.compileHistogramQuery(req, d, tr)
		if err != nil {
			return nil, err
		}
		run = func() error {
			var h *histogram.Histogram
			var err error
			if req.Kind == KindHistogram {
				h, err = se.sess.Histogram(q, req.Eps, hooks...)
			} else {
				h, err = se.sess.IntHistogram(q, req.Eps, hooks...)
			}
			if err != nil {
				return err
			}
			resp.Counts = h.Counts()
			resp.DimLabels = make([][]string, len(q.Dims))
			for i, dom := range q.Dims {
				resp.DimLabels[i] = dom.Labels()
			}
			if len(q.Dims) == 1 {
				resp.Labels = resp.DimLabels[0]
			}
			return nil
		}

	case KindCount:
		pred := dataset.Predicate(dataset.True())
		if req.Where != nil {
			sp := tr.StartSpan("artifact.predicate")
			pred, err = d.art.predicate(*req.Where, d.table.Schema())
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		run = func() error {
			c, err := se.sess.Count(pred, req.Eps, hooks...)
			if err != nil {
				return err
			}
			resp.Value = &c
			return nil
		}

	case KindQuantile:
		kind, ok := d.table.Schema().KindOf(req.Attr)
		if !ok {
			return nil, badf("unknown attribute %q", req.Attr)
		}
		if kind != dataset.KindInt && kind != dataset.KindFloat {
			return nil, badf("quantile needs a numeric attribute; %q is %s", req.Attr, kind)
		}
		if req.Q < 0 || req.Q > 1 {
			return nil, badf("q=%g outside [0, 1]", req.Q)
		}
		run = func() error {
			v, err := se.sess.Quantile(req.Attr, req.Q, req.Eps, hooks...)
			if err != nil {
				return err
			}
			resp.Value = &v
			return nil
		}

	case KindSample:
		run = func() error {
			t, err := se.sess.Sample(req.Eps, hooks...)
			if err != nil {
				return err
			}
			var b strings.Builder
			if err := dataset.WriteCSV(&b, t); err != nil {
				return err
			}
			resp.SampleCSV = b.String()
			return nil
		}

	case KindWorkload:
		est, q, ranges, err := s.compileWorkloadQuery(req, d, tr)
		if err != nil {
			return nil, err
		}
		// Echo the canonical wire name, not the estimator's report name
		// ("hier", not "Hier"), so clients can compare against what they
		// sent.
		name := req.Estimator
		if name == "" {
			name = EstimatorFlat
		}
		run = func() error {
			answers, err := se.sess.Workload(q, est, ranges, req.Eps, hooks...)
			if err != nil {
				return err
			}
			resp.Answers = answers
			resp.Estimator = name
			return nil
		}

	default:
		return nil, badf("unknown query kind %q", req.Kind)
	}
	return run, nil
}

// workloadEstimator resolves a wire estimator name. Every entry is an
// ε-DP release of the non-sensitive workload histogram, hence
// (P, ε)-OSDP served answers; see core.WorkloadEstimator for the
// composition argument that prices a whole batch at one ε.
func workloadEstimator(name string) (core.WorkloadEstimator, error) {
	switch name {
	case "", EstimatorFlat:
		return core.Flat{}, nil
	case EstimatorHier:
		return hier.Estimator{}, nil
	case EstimatorDAWA:
		return dawa.New(), nil
	case EstimatorAHP:
		return ahp.New(), nil
	case EstimatorAGrid:
		return agrid.New(), nil
	default:
		return nil, badf("unknown estimator %q (known: %s, %s, %s, %s, %s)",
			name, EstimatorFlat, EstimatorHier, EstimatorDAWA, EstimatorAHP, EstimatorAGrid)
	}
}

// compileWorkloadQuery validates and compiles a workload request:
// estimator, synopsis domain(s), and the range batch. Everything here
// runs BEFORE any budget is touched. Workload dims must be explicit
// numeric shapes (lo/width/bins): range indices only mean anything
// over an ordered equi-width binning the client declared, and the
// explicit shape rides the same per-dataset domain LRU as histogram
// queries, so a repeated workload shape reuses its compiled domain and
// bin vector.
func (s *Server) compileWorkloadQuery(req QueryRequest, d *ds, tr *telemetry.Trace) (core.WorkloadEstimator, histogram.Query, []core.BinRange, error) {
	var zero histogram.Query
	est, err := workloadEstimator(req.Estimator)
	if err != nil {
		return nil, zero, nil, err
	}
	for _, spec := range req.Dims {
		if spec.Bins <= 0 || len(spec.Keys) > 0 {
			return nil, zero, nil, badf("workload dims must be numeric lo/width/bins shapes; %q is not", spec.Attr)
		}
	}
	q, err := s.compileHistogramQuery(req, d, tr)
	if err != nil {
		return nil, zero, nil, err
	}
	if len(req.Ranges) == 0 {
		return nil, zero, nil, badf("workload has no range queries")
	}
	if len(req.Ranges) > MaxWorkloadRanges {
		return nil, zero, nil, badf("workload has %d ranges, cap is %d", len(req.Ranges), MaxWorkloadRanges)
	}
	twoD := len(q.Dims) == 2
	rows := q.Dims[0].Size()
	cols := 1
	if twoD {
		cols = q.Dims[1].Size()
	}
	ranges := make([]core.BinRange, len(req.Ranges))
	for i, r := range req.Ranges {
		br := core.BinRange{Lo0: r.Lo, Hi0: r.Hi}
		switch {
		case twoD:
			if r.Lo2 == nil || r.Hi2 == nil {
				return nil, zero, nil, badf("range %d: 2-D workloads need lo2 and hi2", i)
			}
			br.Lo1, br.Hi1 = *r.Lo2, *r.Hi2
		case r.Lo2 != nil || r.Hi2 != nil:
			return nil, zero, nil, badf("range %d: lo2/hi2 are only valid on 2-D workloads", i)
		}
		if br.Lo0 < 0 || br.Hi0 < br.Lo0 || br.Hi0 >= rows ||
			br.Lo1 < 0 || br.Hi1 < br.Lo1 || br.Hi1 >= cols {
			return nil, zero, nil, badf("range %d = [%d,%d]x[%d,%d] outside the %dx%d domain",
				i, br.Lo0, br.Hi0, br.Lo1, br.Hi1, rows, cols)
		}
		ranges[i] = br
	}
	return est, q, ranges, nil
}

func (s *Server) compileHistogramQuery(req QueryRequest, d *ds, tr *telemetry.Trace) (histogram.Query, error) {
	if len(req.Dims) == 0 || len(req.Dims) > 2 {
		return histogram.Query{}, badf("histogram queries take 1 or 2 dims, got %d", len(req.Dims))
	}
	dims := make([]*histogram.Domain, len(req.Dims))
	for i, spec := range req.Dims {
		// Derived domains come from the non-sensitive partition so bin
		// labels cannot reveal sensitive-only values; resolution goes
		// through the per-dataset artifact cache so repeated shapes
		// reuse compiled domains and their bin vectors.
		sp := tr.StartSpan("artifact.domain")
		dom, err := d.art.domain(spec, d.ns)
		sp.End()
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		dims[i] = dom
	}
	// Per-dim sizes are capped by compileDomain; cap the product too,
	// since 2-D output arity multiplies.
	if len(dims) == 2 && dims[0].Size() > MaxQueryBins/dims[1].Size() {
		return histogram.Query{}, badf("histogram output arity %d x %d exceeds the %d-bin cap", dims[0].Size(), dims[1].Size(), MaxQueryBins)
	}
	var where dataset.Predicate
	if req.Where != nil {
		sp := tr.StartSpan("artifact.predicate")
		p, err := d.art.predicate(*req.Where, d.table.Schema())
		sp.End()
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		where = p
	}
	return histogram.NewQuery(where, dims...), nil
}
