package server

import (
	"errors"
	"fmt"
	"strings"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// Query answers one query against an open session on behalf of analyst.
// Validation and compilation happen before ANY budget is touched, so
// malformed requests never charge; with a ledger configured the charge
// order is then
//
//	1. charge the analyst's durable (analyst, dataset) ledger account
//	2. charge the session accountant and draw noise (core.Session)
//
// and a failure at step 2 that provably released no noise (the session
// accountant rejected the charge) refunds step 1. Failures AFTER noise
// — an empty quantile sample, CSV encoding of a released sample — never
// refund: the randomness was observed, the ε is spent (Theorem 3.3).
// Once a charge succeeds the response always carries the post-charge
// budget state. Queries on the same session may run concurrently — the
// accountants and the locked noise source serialise the shared state.
func (s *Server) Query(analyst, id string, req QueryRequest) (QueryResponse, error) {
	se, d, err := s.lookup(analyst, id)
	if err != nil {
		return QueryResponse{}, err
	}
	resp := QueryResponse{Kind: req.Kind}
	if !(req.Eps >= MinQueryEps) { // also rejects NaN
		return resp, badf("eps must be at least %g, got %g", MinQueryEps, req.Eps)
	}

	// Compile and validate first; run executes the mechanism (charging
	// the session accountant and drawing noise) only after the ledger
	// has admitted the charge.
	var run func() error
	switch req.Kind {
	case KindHistogram, KindIntHistogram:
		q, err := s.compileHistogramQuery(req, d)
		if err != nil {
			return resp, err
		}
		run = func() error {
			var h *histogram.Histogram
			var err error
			if req.Kind == KindHistogram {
				h, err = se.sess.Histogram(q, req.Eps)
			} else {
				h, err = se.sess.IntHistogram(q, req.Eps)
			}
			if err != nil {
				return err
			}
			resp.Counts = h.Counts()
			resp.DimLabels = make([][]string, len(q.Dims))
			for i, dom := range q.Dims {
				resp.DimLabels[i] = dom.Labels()
			}
			if len(q.Dims) == 1 {
				resp.Labels = resp.DimLabels[0]
			}
			return nil
		}

	case KindCount:
		pred := dataset.Predicate(dataset.True())
		if req.Where != nil {
			pred, err = d.art.predicate(*req.Where, d.table.Schema())
			if err != nil {
				return resp, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		run = func() error {
			c, err := se.sess.Count(pred, req.Eps)
			if err != nil {
				return err
			}
			resp.Value = &c
			return nil
		}

	case KindQuantile:
		kind, ok := d.table.Schema().KindOf(req.Attr)
		if !ok {
			return resp, badf("unknown attribute %q", req.Attr)
		}
		if kind != dataset.KindInt && kind != dataset.KindFloat {
			return resp, badf("quantile needs a numeric attribute; %q is %s", req.Attr, kind)
		}
		if req.Q < 0 || req.Q > 1 {
			return resp, badf("q=%g outside [0, 1]", req.Q)
		}
		run = func() error {
			v, err := se.sess.Quantile(req.Attr, req.Q, req.Eps)
			if err != nil {
				return err
			}
			resp.Value = &v
			return nil
		}

	case KindSample:
		run = func() error {
			t, err := se.sess.Sample(req.Eps)
			if err != nil {
				return err
			}
			var b strings.Builder
			if err := dataset.WriteCSV(&b, t); err != nil {
				return err
			}
			resp.SampleCSV = b.String()
			return nil
		}

	default:
		return resp, badf("unknown query kind %q", req.Kind)
	}

	charge := core.Guarantee{Policy: d.policy, Epsilon: req.Eps}
	if s.cfg.Ledger != nil {
		if err := s.cfg.Ledger.Charge(se.analyst, se.dataset, charge); err != nil {
			return resp, err
		}
	}
	if err := run(); err != nil {
		if s.cfg.Ledger != nil && errors.Is(err, core.ErrBudgetExceeded) {
			// The session accountant rejected the charge before the
			// mechanism ran: no noise was drawn, so the ledger
			// reservation may be returned. A failed refund keeps the
			// charge — the ledger only ever errs toward more spend.
			_ = s.cfg.Ledger.Refund(se.analyst, se.dataset, charge)
		}
		return resp, err
	}

	resp.Budget = infoFor(se)
	return resp, nil
}

func (s *Server) compileHistogramQuery(req QueryRequest, d *ds) (histogram.Query, error) {
	if len(req.Dims) == 0 || len(req.Dims) > 2 {
		return histogram.Query{}, badf("histogram queries take 1 or 2 dims, got %d", len(req.Dims))
	}
	dims := make([]*histogram.Domain, len(req.Dims))
	for i, spec := range req.Dims {
		// Derived domains come from the non-sensitive partition so bin
		// labels cannot reveal sensitive-only values; resolution goes
		// through the per-dataset artifact cache so repeated shapes
		// reuse compiled domains and their bin vectors.
		dom, err := d.art.domain(spec, d.ns)
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		dims[i] = dom
	}
	// Per-dim sizes are capped by compileDomain; cap the product too,
	// since 2-D output arity multiplies.
	if len(dims) == 2 && dims[0].Size() > MaxQueryBins/dims[1].Size() {
		return histogram.Query{}, badf("histogram output arity %d x %d exceeds the %d-bin cap", dims[0].Size(), dims[1].Size(), MaxQueryBins)
	}
	var where dataset.Predicate
	if req.Where != nil {
		p, err := d.art.predicate(*req.Where, d.table.Schema())
		if err != nil {
			return histogram.Query{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		where = p
	}
	return histogram.NewQuery(where, dims...), nil
}
