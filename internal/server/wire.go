// Package server is the multi-tenant OSDP query service: the serving
// layer §7 of the paper flags as the open engineering problem. It
// registers datasets with their privacy policies, opens per-client
// core.Sessions — each with an independent ε budget and a goroutine-safe
// noise source — and answers histogram, int-histogram, count, quantile,
// sample, and range-workload queries over HTTP/JSON.
//
// The wire format is plain JSON. Predicates (query conditions and policy
// sensitivity rules) travel as expression trees (PredicateSpec) that are
// compiled against the dataset schema on arrival, so type errors are
// rejected at the boundary instead of corrupting answers. Histogram
// domains travel as DomainSpec. See client.go for a Go client speaking
// this format; the end-to-end tests exercise the real wire, not handler
// internals.
//
// Scope of the guarantee: each session's transcript is individually
// (P, budget)-OSDP, enforced by its accountant, and MaxSessionBudget
// bounds any one transcript. With Config.Ledger set the server also
// accounts composition ACROSS sessions: every /v1 request authenticates
// an analyst (bearer API key), every ε-bearing query is charged to the
// analyst's durable per-dataset ledger account before noise is drawn,
// and the Theorem 3.3 bound therefore covers the analyst's whole
// transcript over a dataset — N sessions draw from ONE budget, and the
// spend survives server restarts (see internal/ledger for the
// durability contract). Without a ledger the server runs in the legacy
// identity-free mode and cross-session composition is unaccounted.
// Seeded (reproducible) sessions are refused unless
// Config.AllowSeededSessions is set, because predictable noise voids
// the guarantee outright.
package server

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"time"

	"osdp/internal/audit"
	"osdp/internal/dataset"
	"osdp/internal/histogram"
	"osdp/internal/ledger"
	"osdp/internal/telemetry"
)

// PredicateSpec is the JSON form of a dataset.Predicate: an expression
// tree of comparisons and boolean connectives.
//
//	{"op":"cmp","attr":"Age","cmp":"<=","value":17}
//	{"op":"and","args":[...]}   {"op":"or","args":[...]}
//	{"op":"not","args":[x]}     {"op":"true"}  {"op":"false"}
type PredicateSpec struct {
	Op    string          `json:"op"`
	Attr  string          `json:"attr,omitempty"`
	Cmp   string          `json:"cmp,omitempty"`
	Value any             `json:"value,omitempty"`
	Args  []PredicateSpec `json:"args,omitempty"`
}

// PolicySpec is the JSON form of a dataset.Policy: records matching
// SensitiveWhen are sensitive (P(r)=0).
type PolicySpec struct {
	Name          string        `json:"name"`
	SensitiveWhen PredicateSpec `json:"sensitive_when"`
}

// DomainSpec is the JSON form of a histogram.Domain. Exactly one of the
// three shapes applies: explicit Keys (categorical), Bins > 0 with
// Lo/Width (numeric equi-width buckets), or neither field set — the
// domain is then derived from the distinct values present in the
// dataset. Mixed shapes are rejected rather than reinterpreted, because
// a silently-wrong domain would still charge the ε irrevocably.
type DomainSpec struct {
	Attr  string   `json:"attr"`
	Keys  []string `json:"keys,omitempty"`
	Lo    float64  `json:"lo,omitempty"`
	Width float64  `json:"width,omitempty"`
	Bins  int      `json:"bins,omitempty"`
}

// MaxQueryBins caps the total output arity of one histogram query (the
// product over dimensions). Bins are client-controlled and the server
// allocates a float64 per bin, so an uncapped request is a one-shot
// memory-exhaustion DoS from an unauthenticated client.
const MaxQueryBins = 1 << 20

// RegisterDatasetRequest registers a named dataset. CSV is the table in
// the typed-header format dataset.ReadCSV accepts.
type RegisterDatasetRequest struct {
	Name   string     `json:"name"`
	CSV    string     `json:"csv"`
	Policy PolicySpec `json:"policy"`
}

// DatasetInfo describes a registered dataset.
type DatasetInfo struct {
	Name         string   `json:"name"`
	Rows         int      `json:"rows"`
	NonSensitive int      `json:"non_sensitive_rows"`
	Attrs        []string `json:"attrs"`
	Policy       string   `json:"policy"`
}

// OpenSessionRequest opens a session over a registered dataset. Budget is
// the total ε the session may spend (0 = unlimited — unwise outside
// tests, and refused when the server sets MaxSessionBudget). Seed, when
// set, makes the session's noise reproducible; it is refused unless the
// server enables AllowSeededSessions, since predictable noise voids the
// guarantee. When nil the server draws from crypto/rand. Both paths are
// safe for concurrent queries: seeded sources are wrapped in
// noise.Locked, and secure sources carry their own internal mutex.
type OpenSessionRequest struct {
	Dataset string  `json:"dataset"`
	Budget  float64 `json:"budget"`
	Seed    *int64  `json:"seed,omitempty"`
}

// SessionInfo reports a session's identity and budget state. Analyst is
// the owning principal's id (empty on ledger-less servers). Budget
// figures are the SESSION accountant's; the analyst's cross-session
// ledger account is inspected via the admin API or /stats.
type SessionInfo struct {
	ID        string  `json:"id"`
	Dataset   string  `json:"dataset"`
	Analyst   string  `json:"analyst,omitempty"`
	Budget    float64 `json:"budget"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	Guarantee string  `json:"guarantee"`
	Policy    string  `json:"policy"`
}

// Query kinds accepted by QueryRequest.Kind.
const (
	KindHistogram    = "histogram"
	KindIntHistogram = "int-histogram"
	KindCount        = "count"
	KindQuantile     = "quantile"
	KindSample       = "sample"
	KindWorkload     = "workload"
)

// Estimator names accepted by QueryRequest.Estimator for workload
// queries. Empty defaults to EstimatorFlat.
const (
	EstimatorFlat  = "flat"  // per-bin OsdpLaplaceL1, no structural model
	EstimatorHier  = "hier"  // consistent interval tree (Hay et al.)
	EstimatorDAWA  = "dawa"  // data-aware contiguous partition (Li et al.)
	EstimatorAHP   = "ahp"   // value-based clustering (Zhang et al.)
	EstimatorAGrid = "agrid" // adaptive 2-D grid (Qardaji et al.)
)

// MaxWorkloadRanges caps the number of range queries one workload
// request may carry. Each answer is O(1) against the fitted synopsis
// and 8 output bytes, so the cap guards the response size, not CPU.
const MaxWorkloadRanges = 1 << 20

// RangeSpec is one range-count query of a workload: inclusive bin
// index ranges into the workload's declared domain(s). Lo/Hi index the
// FIRST dimension's bins. For 2-D workloads Lo2/Hi2 (both required)
// index the second dimension, and the answer is the rectangle sum;
// they must be absent on 1-D workloads.
type RangeSpec struct {
	Lo  int  `json:"lo"`
	Hi  int  `json:"hi"`
	Lo2 *int `json:"lo2,omitempty"`
	Hi2 *int `json:"hi2,omitempty"`
}

// QueryRequest is a query against an open session. Eps is the privacy
// level charged to the session budget. Which remaining fields apply
// depends on Kind:
//
//   - histogram / int-histogram: Dims (1 or 2), optional Where
//   - count: Where (the counted predicate; nil counts all records)
//   - quantile: Attr and Q in [0, 1]
//   - sample: no extra fields
//   - workload: Dims (1 or 2 numeric lo/width/bins shapes), Ranges
//     (the batch of range-count queries, answered under ONE composed ε
//     charge), optional Where, optional Estimator (default "flat")
type QueryRequest struct {
	Kind      string         `json:"kind"`
	Eps       float64        `json:"eps"`
	Where     *PredicateSpec `json:"where,omitempty"`
	Dims      []DomainSpec   `json:"dims,omitempty"`
	Attr      string         `json:"attr,omitempty"`
	Q         float64        `json:"q,omitempty"`
	Estimator string         `json:"estimator,omitempty"`
	Ranges    []RangeSpec    `json:"ranges,omitempty"`
}

// QueryResponse carries the answer for any query kind; unset fields are
// omitted. Budget reflects the session state after the charge, so clients
// can pace themselves without a second round trip.
//
// Histogram counts are flattened row-major with the FIRST dimension
// outermost: bin (i, j) of a 2-D query lives at index i*len(DimLabels[1])+j.
// DimLabels carries the per-dimension bin labels for every histogram
// answer — essential when the server derived a domain from the data,
// since the client has no other way to learn the bins it paid ε for.
type QueryResponse struct {
	Kind      string      `json:"kind"`
	Value     *float64    `json:"value,omitempty"`      // count, quantile
	Labels    []string    `json:"labels,omitempty"`     // 1-D histograms (legacy duplicate of DimLabels[0])
	DimLabels [][]string  `json:"dim_labels,omitempty"` // histograms: labels per dimension
	Counts    []float64   `json:"counts,omitempty"`     // histograms
	SampleCSV string      `json:"sample_csv,omitempty"` // sample
	Answers   []float64   `json:"answers,omitempty"`    // workload: one per RangeSpec, in request order
	Estimator string      `json:"estimator,omitempty"`  // workload: the estimator that fitted the synopsis
	Budget    SessionInfo `json:"budget"`
}

// MinQueryEps is the smallest ε a query may charge. Subnormal ε values
// overflow 1/ε to +Inf inside the samplers, which can surface NaN counts;
// rejecting them at the boundary keeps every charged query answerable.
const MinQueryEps = 1e-9

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is GET /stats: coarse service aggregates safe to expose
// without credentials. Ledger fields are zero on ledger-less servers.
// SpentEps is a pointer so a ledger server with nothing spent still
// emits "spent_eps":0 — a plain float64 with omitempty made 0.0 spend
// indistinguishable on the wire from "no ledger at all".
type StatsResponse struct {
	Datasets      int      `json:"datasets"`
	Sessions      int      `json:"sessions"`
	LedgerEnabled bool     `json:"ledger"`
	LedgerDurable bool     `json:"ledger_durable,omitempty"`
	Analysts      int      `json:"analysts,omitempty"`
	Accounts      int      `json:"accounts,omitempty"`
	SpentEps      *float64 `json:"spent_eps,omitempty"`
}

// CreateAnalystRequest mints an analyst principal (admin only).
// SessionCap, when > 0, overrides the server's per-analyst concurrent
// session cap for this analyst.
type CreateAnalystRequest struct {
	Name       string `json:"name"`
	SessionCap int    `json:"session_cap,omitempty"`
}

// AnalystCreated is the one-time answer to analyst creation: Key is the
// plaintext API key, returned exactly once — the server stores only its
// hash.
type AnalystCreated struct {
	ledger.AnalystInfo
	Key string `json:"key"`
}

// BudgetGrantRequest sets the ε budget of one (analyst, dataset)
// account, replacing the server default. Lowering a budget below the
// spent total freezes the account without erasing history.
type BudgetGrantRequest struct {
	Analyst string  `json:"analyst"`
	Dataset string  `json:"dataset"`
	Budget  float64 `json:"budget"`
}

// SpendReport is GET /admin/spend: every touched ledger account plus
// totals, the operator's audit view of cumulative leakage.
type SpendReport struct {
	Analysts        int                  `json:"analysts"`
	TouchedAccounts int                  `json:"touched_accounts"`
	TotalSpent      float64              `json:"total_spent_eps"`
	Accounts        []ledger.AccountInfo `json:"accounts"`
}

// AdmissionDefaults reports the server-wide admission configuration in
// effect (GET /admin/limits), with every "0 = default" field resolved
// to its concrete value.
type AdmissionDefaults struct {
	MaxConcurrent      int     `json:"max_concurrent"`
	AnalystConcurrency int     `json:"analyst_concurrency,omitempty"`
	RatePerSec         float64 `json:"rate_per_sec,omitempty"`
	Burst              float64 `json:"burst,omitempty"`
	MaxQueued          int     `json:"max_queued"`
	Weight             float64 `json:"weight"`
}

// AnalystLimits is one analyst's admission override (POST
// /admin/limits). Zero-valued fields inherit the server default; a
// request with every numeric field zero clears the override. Overrides
// live in server memory only — they do not survive a restart (re-apply
// them from the operator's config on boot).
type AnalystLimits struct {
	Analyst string `json:"analyst"`
	// Weight is the analyst's share of contended capacity relative to
	// the default weight 1: weight 3 receives 3x the service of a
	// weight-1 analyst while both are backlogged.
	Weight float64 `json:"weight,omitempty"`
	// RatePerSec / Burst override the analyst's token bucket.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
	// MaxConcurrent / MaxQueued override the analyst's execution and
	// queue caps.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	MaxQueued     int `json:"max_queued,omitempty"`
}

// LimitsResponse is GET /admin/limits: whether admission control is on,
// the resolved defaults, and every stored per-analyst override.
type LimitsResponse struct {
	Enabled   bool               `json:"enabled"`
	Defaults  *AdmissionDefaults `json:"defaults,omitempty"`
	Overrides []AnalystLimits    `json:"overrides,omitempty"`
}

// CompilePolicy turns a PolicySpec into a dataset.Policy against a
// schema. cmd/osdp-server uses it for policies loaded from disk; the
// HTTP registration path compiles specs the same way.
func CompilePolicy(spec PolicySpec, schema *dataset.Schema) (dataset.Policy, error) {
	if spec.Name == "" {
		return dataset.Policy{}, badf("policy name must not be empty")
	}
	pred, err := compilePredicate(spec.SensitiveWhen, schema)
	if err != nil {
		return dataset.Policy{}, fmt.Errorf("%w: policy %q: %v", ErrBadRequest, spec.Name, err)
	}
	return dataset.NewPolicy(spec.Name, pred), nil
}

// compilePredicate turns a PredicateSpec into a dataset.Predicate, typing
// comparison values against the schema.
func compilePredicate(spec PredicateSpec, schema *dataset.Schema) (dataset.Predicate, error) {
	switch spec.Op {
	case "true":
		return dataset.True(), nil
	case "false":
		return dataset.False(), nil
	case "not":
		if len(spec.Args) != 1 {
			return nil, fmt.Errorf("\"not\" takes exactly 1 argument, got %d", len(spec.Args))
		}
		p, err := compilePredicate(spec.Args[0], schema)
		if err != nil {
			return nil, err
		}
		return dataset.Not(p), nil
	case "and", "or":
		ps := make([]dataset.Predicate, len(spec.Args))
		for i, a := range spec.Args {
			p, err := compilePredicate(a, schema)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		if spec.Op == "and" {
			return dataset.And(ps...), nil
		}
		return dataset.Or(ps...), nil
	case "cmp":
		op, err := parseCmpOp(spec.Cmp)
		if err != nil {
			return nil, err
		}
		kind, ok := schema.KindOf(spec.Attr)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q in predicate", spec.Attr)
		}
		v, err := coerceValue(spec.Value, kind)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", spec.Attr, err)
		}
		return dataset.Cmp(spec.Attr, op, v), nil
	default:
		return nil, fmt.Errorf("unknown predicate op %q", spec.Op)
	}
}

func parseCmpOp(s string) (dataset.CmpOp, error) {
	switch s {
	case "=", "==":
		return dataset.OpEq, nil
	case "!=":
		return dataset.OpNe, nil
	case "<":
		return dataset.OpLt, nil
	case "<=":
		return dataset.OpLe, nil
	case ">":
		return dataset.OpGt, nil
	case ">=":
		return dataset.OpGe, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

// coerceValue converts a decoded JSON value (string, float64, or bool) to
// a typed dataset.Value of the schema-declared kind.
func coerceValue(raw any, kind dataset.Kind) (dataset.Value, error) {
	switch kind {
	case dataset.KindInt:
		f, ok := raw.(float64)
		if !ok {
			return dataset.Value{}, fmt.Errorf("expected a number, got %T", raw)
		}
		if f != math.Trunc(f) {
			return dataset.Value{}, fmt.Errorf("expected an integer, got %v", f)
		}
		return dataset.Int(int64(f)), nil
	case dataset.KindFloat:
		f, ok := raw.(float64)
		if !ok {
			return dataset.Value{}, fmt.Errorf("expected a number, got %T", raw)
		}
		return dataset.Float(f), nil
	case dataset.KindBool:
		b, ok := raw.(bool)
		if !ok {
			return dataset.Value{}, fmt.Errorf("expected a bool, got %T", raw)
		}
		return dataset.Bool(b), nil
	default:
		s, ok := raw.(string)
		if !ok {
			return dataset.Value{}, fmt.Errorf("expected a string, got %T", raw)
		}
		return dataset.Str(s), nil
	}
}

// compileDomain turns a DomainSpec into a histogram.Domain. The table is
// consulted only when the domain is derived from present values; callers
// must pass the NON-SENSITIVE partition there, because derived bin labels
// are echoed back to the client and must not reveal values that occur
// only in sensitive records.
func compileDomain(spec DomainSpec, t *dataset.Table) (*histogram.Domain, error) {
	if _, ok := t.Schema().KindOf(spec.Attr); !ok {
		return nil, fmt.Errorf("unknown attribute %q in domain", spec.Attr)
	}
	numericFields := spec.Bins != 0 || spec.Width != 0 || spec.Lo != 0
	switch {
	case len(spec.Keys) > 0:
		if numericFields {
			return nil, fmt.Errorf("domain over %q mixes keys with lo/width/bins; pick one shape", spec.Attr)
		}
		if len(spec.Keys) > MaxQueryBins {
			return nil, fmt.Errorf("domain over %q has %d keys, cap is %d", spec.Attr, len(spec.Keys), MaxQueryBins)
		}
		seen := make(map[string]struct{}, len(spec.Keys))
		for _, k := range spec.Keys {
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("duplicate domain key %q", k)
			}
			seen[k] = struct{}{}
		}
		return histogram.NewCategoricalDomain(spec.Attr, spec.Keys), nil
	case spec.Bins > 0:
		if spec.Width <= 0 {
			return nil, fmt.Errorf("numeric domain over %q needs positive width", spec.Attr)
		}
		if spec.Bins > MaxQueryBins {
			return nil, fmt.Errorf("domain over %q has %d bins, cap is %d", spec.Attr, spec.Bins, MaxQueryBins)
		}
		return histogram.NewNumericDomain(spec.Attr, spec.Lo, spec.Width, spec.Bins), nil
	default:
		if numericFields {
			return nil, fmt.Errorf("numeric domain over %q needs bins > 0 (lo/width alone is not a shape)", spec.Attr)
		}
		d := histogram.DomainFromTable(t, spec.Attr)
		if d.Size() == 0 {
			return nil, fmt.Errorf("no non-sensitive values to derive a domain for %q; declare keys or buckets explicitly", spec.Attr)
		}
		if d.Size() > MaxQueryBins {
			return nil, fmt.Errorf("derived domain over %q has %d bins, cap is %d", spec.Attr, d.Size(), MaxQueryBins)
		}
		return d, nil
	}
}

// SpanInfo is the wire form of one timed phase inside a trace.
type SpanInfo struct {
	// Name is the phase name ("auth", "compile", "ledger.charge", ...).
	Name string `json:"name"`
	// OffsetMicros is the span start relative to the request start.
	OffsetMicros int64 `json:"offset_us"`
	// DurationMicros is the phase duration.
	DurationMicros int64 `json:"duration_us"`
	// Attrs carries optional key/value detail (scan worker count, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceInfo is the wire form of one finished request trace, served by
// GET /admin/traces and /admin/traces/{id}.
type TraceInfo struct {
	// ID is the request id (X-Request-Id).
	ID string `json:"id"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// DurationMicros is the end-to-end request duration.
	DurationMicros int64 `json:"duration_us"`
	// Kind is the query kind, when the request was a query.
	Kind string `json:"kind,omitempty"`
	// Analyst is the authenticated analyst ID, when auth resolved.
	Analyst string `json:"analyst,omitempty"`
	// Route is the matched route pattern.
	Route string `json:"route,omitempty"`
	// Status is the HTTP status produced.
	Status int `json:"status"`
	// Slow marks traces past the tracer's slow threshold (pinned in
	// the slow ring and promoted to the access log).
	Slow bool `json:"slow,omitempty"`
	// Spans is the timed phase breakdown, in completion order.
	Spans []SpanInfo `json:"spans"`
}

// AuditReport is the wire form of GET /admin/audit: the most recent
// audit events (newest first) plus trail-level facts.
type AuditReport struct {
	// Durable reports whether events are fsync'd to an audit
	// directory (false: in-memory ring only, lost on restart).
	Durable bool `json:"durable"`
	// Total is the total number of events ever appended (the ring may
	// hold fewer).
	Total uint64 `json:"total"`
	// Events are the matching recent events, newest first.
	Events []audit.Event `json:"events"`
}

// traceInfo converts a telemetry snapshot to its wire form.
func traceInfo(v telemetry.TraceView) TraceInfo {
	info := TraceInfo{
		ID:             v.ID,
		Start:          v.Start,
		DurationMicros: v.Duration.Microseconds(),
		Kind:           v.Kind,
		Analyst:        v.Analyst,
		Route:          v.Route,
		Status:         v.Status,
		Slow:           v.Slow,
		Spans:          make([]SpanInfo, len(v.Spans)),
	}
	for i, sp := range v.Spans {
		si := SpanInfo{
			Name:           sp.Name,
			OffsetMicros:   sp.Offset.Microseconds(),
			DurationMicros: sp.Dur.Microseconds(),
		}
		if len(sp.Attrs) > 0 {
			si.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				si.Attrs[a.Name] = a.Value
			}
		}
		info.Spans[i] = si
	}
	return info
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad limit %q", ErrBadRequest, v)
	}
	return n, nil
}

// queryTime parses an optional RFC 3339 time query parameter. The
// parameter is named "param" rather than "key" so the secretflow lint
// can tell URL parameter names apart from credentials.
func queryTime(q url.Values, param string) (time.Time, error) {
	v := q.Get(param)
	if v == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: bad %s %q (want RFC 3339): %v", ErrBadRequest, param, v, err)
	}
	return t, nil
}
