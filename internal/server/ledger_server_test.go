package server

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
)

const adminToken = "test-admin-token"

// newLedgerServer spins up a full HTTP server backed by a ledger opened
// over dir (in-memory when dir is ""). It returns the unauthenticated
// base client; callers mint analysts via the admin view.
func newLedgerServer(t *testing.T, dir string, lcfg ledger.Config, cfg Config) (*Client, *Server) {
	t.Helper()
	lcfg.Dir = dir
	led, err := ledger.Open(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ledger = led
	cfg.AdminToken = adminToken
	cfg.AllowSeededSessions = true
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); led.Close() })
	return NewClient(ts.URL, ts.Client()), srv
}

func registerPeople(t *testing.T, srv *Server, rows int) {
	t.Helper()
	tbl, err := dataset.ReadCSV(strings.NewReader(peopleCSV(rows)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompilePolicy(testPolicy(), tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("people", tbl, p); err != nil {
		t.Fatal(err)
	}
}

// mintAnalyst creates a principal over the wire and returns an
// authenticated client view plus the analyst id.
func mintAnalyst(t *testing.T, c *Client, name string, sessionCap int) (*Client, string) {
	t.Helper()
	created, err := c.WithToken(adminToken).CreateAnalyst(ctx, CreateAnalystRequest{Name: name, SessionCap: sessionCap})
	if err != nil {
		t.Fatalf("create analyst: %v", err)
	}
	if created.Key == "" || created.ID == "" {
		t.Fatalf("analyst created without key or id: %+v", created)
	}
	return c.WithToken(created.Key), created.ID
}

// TestLedgerCrossSessionComposition is the PR's acceptance test: one
// analyst opening N sessions over one dataset cannot spend more than
// the ledger budget IN TOTAL, and after a server restart the replayed
// ledger still refuses the over-budget query.
func TestLedgerCrossSessionComposition(t *testing.T) {
	dir := t.TempDir()
	c, srv := newLedgerServer(t, dir, ledger.Config{DefaultBudget: 1.0}, Config{})
	registerPeople(t, srv, 200)
	ac, analyst := mintAnalyst(t, c, "alice", 0)

	// N sessions, each with UNLIMITED session budget: only the ledger
	// binds. 3 charges of 0.3 fit in 1.0; the 4th must be refused no
	// matter which session carries it.
	const n = 3
	sessions := make([]*SessionClient, n)
	for i := range sessions {
		sc, err := ac.OpenSession(ctx, "people", 0, seed(int64(i+1)))
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		sessions[i] = sc
	}
	for i, sc := range sessions {
		if _, err := sc.Count(ctx, 0.3, nil); err != nil {
			t.Fatalf("query %d within ledger budget: %v", i, err)
		}
	}
	// Every session is individually unlimited, but the ledger account is
	// at 0.9/1.0: one more 0.3 charge must fail on EVERY session, with
	// the budget sentinel over the wire.
	for i, sc := range sessions {
		if _, err := sc.Count(ctx, 0.3, nil); !errors.Is(err, core.ErrBudgetExceeded) {
			t.Fatalf("session %d: cross-session over-spend got %v, want ErrBudgetExceeded", i, err)
		}
	}
	// A FRESH session is no escape hatch either.
	fresh, err := ac.OpenSession(ctx, "people", 0, seed(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Count(ctx, 0.3, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("fresh session laundered budget: got %v, want ErrBudgetExceeded", err)
	}
	// The remaining 0.1 is still spendable — the refusals above must not
	// have burned anything.
	if _, err := fresh.Count(ctx, 0.1, nil); err != nil {
		t.Fatalf("spending the remainder: %v", err)
	}

	st, err := ac.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.LedgerEnabled || !st.LedgerDurable || st.SpentEps == nil || math.Abs(*st.SpentEps-1.0) > 1e-9 {
		t.Fatalf("stats %+v, want durable ledger with 1.0 spent", st)
	}

	// ---- Restart the server mid-transcript. ----
	// Simulate process death: drop the serving state and the live ledger
	// handle, then reopen everything from disk.
	srv.Close()
	if err := srv.cfg.Ledger.Close(); err != nil {
		t.Fatal(err)
	}
	c2, srv2 := newLedgerServer(t, dir, ledger.Config{DefaultBudget: 1.0}, Config{})
	registerPeople(t, srv2, 200)

	// The analyst's identity replays from the WAL: the ORIGINAL key must
	// still authenticate against the reopened ledger.
	sc, err := acReusing(t, c2, ac).OpenSession(ctx, "people", 0, seed(7))
	if err != nil {
		t.Fatalf("open session after restart: %v", err)
	}
	// The account replayed at 1.0/1.0 spent: the (N+1)th over-budget
	// query is refused by the REPLAYED ledger.
	if _, err := sc.Count(ctx, 0.05, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("restart forgot spent budget: got %v, want ErrBudgetExceeded", err)
	}
	// And the spend survived exactly.
	report, err := c2.WithToken(adminToken).Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.TotalSpent-1.0) > 1e-9 {
		t.Fatalf("replayed total spent %g, want 1.0", report.TotalSpent)
	}
	if len(report.Accounts) != 1 || report.Accounts[0].Analyst != analyst {
		t.Fatalf("replayed accounts %+v", report.Accounts)
	}
}

// acReusing rebuilds an authenticated view on a NEW base client using
// the token carried by an existing authenticated client.
func acReusing(t *testing.T, base *Client, authed *Client) *Client {
	t.Helper()
	if authed.token == "" {
		t.Fatal("authed client has no token")
	}
	return base.WithToken(authed.token)
}

// TestAuthTypedErrors pins every credential failure class over the wire.
func TestAuthTypedErrors(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 5}, Config{})
	registerPeople(t, srv, 50)
	ac, analystID := mintAnalyst(t, c, "alice", 0)

	// Unauthenticated and wrong-token /v1 requests: 401.
	if _, err := c.Datasets(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("no token: got %v, want ErrUnauthorized", err)
	}
	if _, err := c.WithToken("osdp_wrong").OpenSession(ctx, "people", 1, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong token: got %v, want ErrUnauthorized", err)
	}
	// The admin token is NOT an analyst key.
	if _, err := c.WithToken(adminToken).Datasets(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("admin token on /v1: got %v, want ErrUnauthorized", err)
	}

	// Admin plane: analyst keys and garbage are 403; no token is 401.
	if _, err := ac.Analysts(ctx); !errors.Is(err, ErrForbidden) {
		t.Fatalf("analyst key on /admin: got %v, want ErrForbidden", err)
	}
	if _, err := c.Analysts(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("no token on /admin: got %v, want ErrUnauthorized", err)
	}

	// Session ownership: analyst B cannot see, query, or close A's
	// session.
	sc, err := ac.OpenSession(ctx, "people", 1, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := mintAnalyst(t, c, "bob", 0)
	if _, err := bc.Session(sc.ID()).Info(ctx); !errors.Is(err, ErrForbidden) {
		t.Fatalf("cross-analyst info: got %v, want ErrForbidden", err)
	}
	if _, err := bc.Session(sc.ID()).Count(ctx, 0.1, nil); !errors.Is(err, ErrForbidden) {
		t.Fatalf("cross-analyst query: got %v, want ErrForbidden", err)
	}
	if _, err := bc.Session(sc.ID()).Close(ctx); !errors.Is(err, ErrForbidden) {
		t.Fatalf("cross-analyst close: got %v, want ErrForbidden", err)
	}

	// Disabling revokes access immediately (403), re-enabling restores.
	admin := c.WithToken(adminToken)
	if _, err := admin.SetAnalystDisabled(ctx, analystID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Datasets(ctx); !errors.Is(err, ErrForbidden) {
		t.Fatalf("disabled analyst: got %v, want ErrForbidden", err)
	}
	if _, err := admin.SetAnalystDisabled(ctx, analystID, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Datasets(ctx); err != nil {
		t.Fatalf("re-enabled analyst: %v", err)
	}

	// Unknown analyst id on admin ops: 404.
	if _, err := admin.SetAnalystDisabled(ctx, "a-nope", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("disable unknown: got %v, want ErrNotFound", err)
	}
	if _, err := admin.SetBudget(ctx, BudgetGrantRequest{Analyst: "a-nope", Dataset: "people", Budget: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("grant to unknown: got %v, want ErrNotFound", err)
	}

	// /healthz and /stats need no credentials even in ledger mode.
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

// TestAdminBudgetGrants exercises explicit grants end to end: a grant
// overrides the default budget, and lowering below spend freezes the
// account without erasing it.
func TestAdminBudgetGrants(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 50)
	ac, analystID := mintAnalyst(t, c, "alice", 0)
	admin := c.WithToken(adminToken)

	acct, err := admin.SetBudget(ctx, BudgetGrantRequest{Analyst: analystID, Dataset: "people", Budget: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if acct.Budget != 0.5 {
		t.Fatalf("granted budget %g, want 0.5", acct.Budget)
	}

	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.4, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.2, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("grant not enforced: got %v, want ErrBudgetExceeded", err)
	}

	// Lower below spend: frozen, history intact.
	if _, err := admin.SetBudget(ctx, BudgetGrantRequest{Analyst: analystID, Dataset: "people", Budget: 0.1}); err != nil {
		t.Fatal(err)
	}
	budgets, err := admin.Budgets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 1 || math.Abs(budgets[0].Spent-0.4) > 1e-12 || budgets[0].Remaining != 0 {
		t.Fatalf("frozen account %+v", budgets)
	}
	if _, err := sc.Count(ctx, 0.05, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("frozen account accepted a charge: %v", err)
	}
}

// TestPerAnalystSessionCap checks the cap binds per analyst, closing a
// session frees its slot, and other analysts are unaffected.
func TestPerAnalystSessionCap(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{MaxSessionsPerAnalyst: 2})
	registerPeople(t, srv, 50)
	ac, _ := mintAnalyst(t, c, "alice", 0)
	bc, _ := mintAnalyst(t, c, "bob", 0)

	s1, err := ac.OpenSession(ctx, "people", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.OpenSession(ctx, "people", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.OpenSession(ctx, "people", 1, nil); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("cap not enforced: got %v, want ErrTooManySessions", err)
	}
	// Bob has his own cap.
	if _, err := bc.OpenSession(ctx, "people", 1, nil); err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
	// Closing frees a slot.
	if _, err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.OpenSession(ctx, "people", 1, nil); err != nil {
		t.Fatalf("slot not freed by close: %v", err)
	}

	// A per-analyst override beats the server default.
	cc, _ := mintAnalyst(t, c, "carol", 1)
	if _, err := cc.OpenSession(ctx, "people", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.OpenSession(ctx, "people", 1, nil); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("per-analyst cap override: got %v, want ErrTooManySessions", err)
	}
}

// TestLedgerRefundOnSessionBudgetExhaustion pins the pre-noise refund
// path: when the SESSION accountant rejects a charge the ledger already
// admitted, the reservation is returned — the analyst is not billed for
// noise that was never drawn.
func TestLedgerRefundOnSessionBudgetExhaustion(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{DefaultBudget: 10}, Config{})
	registerPeople(t, srv, 50)
	ac, _ := mintAnalyst(t, c, "alice", 0)
	admin := c.WithToken(adminToken)

	// Session budget 0.5 binds before the ledger's 10.
	sc, err := ac.OpenSession(ctx, "people", 0.5, seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Count(ctx, 0.4, nil); err != nil {
		t.Fatal(err)
	}
	// 0.4 + 0.4 exceeds the SESSION budget: refused, and the ledger must
	// show only the first 0.4 — the second charge was refunded.
	if _, err := sc.Count(ctx, 0.4, nil); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("session budget: got %v, want ErrBudgetExceeded", err)
	}
	report, err := admin.Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.TotalSpent-0.4) > 1e-12 {
		t.Fatalf("ledger shows %g spent, want 0.4 (pre-noise failure must refund)", report.TotalSpent)
	}

	// An empty quantile sample draws real randomness: NO refund.
	vaultCSV := peopleCSV(30)
	tbl, err := dataset.ReadCSV(strings.NewReader(vaultCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("vault", tbl, dataset.AllSensitive()); err != nil {
		t.Fatal(err)
	}
	vc, err := ac.OpenSession(ctx, "vault", 0, seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vc.Quantile(ctx, 0.3, "Age", 0.5); !errors.Is(err, core.ErrEmptySample) {
		t.Fatalf("all-sensitive quantile: got %v, want ErrEmptySample", err)
	}
	report, err = admin.Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.TotalSpent-(0.4+0.3)) > 1e-12 {
		t.Fatalf("ledger shows %g spent, want 0.7 (empty sample must NOT refund)", report.TotalSpent)
	}
}

// TestLedgerConcurrentChargeAndRefund re-verifies the serving layer's
// charge→run→refund-on-rejection ordering on top of the group-committed
// durable ledger: 16 analysts concurrently exhaust 0.5-ε sessions with
// 0.2-ε counts (two admitted, the third refused by the session
// accountant and refunded from the ledger), and the final ledger spend
// must be EXACTLY 16 × 0.4 — refunds of rejected charges can neither be
// lost nor double-applied while batches coalesce. Run under -race in CI.
func TestLedgerConcurrentChargeAndRefund(t *testing.T) {
	c, srv := newLedgerServer(t, t.TempDir(),
		ledger.Config{DefaultBudget: 10, NoSync: true}, Config{})
	registerPeople(t, srv, 50)
	admin := c.WithToken(adminToken)

	const analysts = 16
	var wg sync.WaitGroup
	errs := make(chan error, analysts)
	for i := 0; i < analysts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ac, _ := mintAnalyst(t, c, "racer", 0)
			sc, err := ac.OpenSession(ctx, "people", 0.5, seed(int64(100+i)))
			if err != nil {
				errs <- err
				return
			}
			for q := 0; q < 2; q++ {
				if _, err := sc.Count(ctx, 0.2, nil); err != nil {
					errs <- err
					return
				}
			}
			// Session budget exhausted: the ledger charge is admitted
			// first, then refunded when the session accountant refuses.
			if _, err := sc.Count(ctx, 0.2, nil); !errors.Is(err, core.ErrBudgetExceeded) {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	report, err := admin.Spend(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(analysts) * 0.4; math.Abs(report.TotalSpent-want) > 1e-9 {
		t.Fatalf("ledger shows %g spent, want exactly %g (2 admitted × 0.2 × %d analysts)",
			report.TotalSpent, want, analysts)
	}
}

// TestTTLEvictionRacingInflightQuery is the satellite race test: TTL
// eviction sweeps concurrently with in-flight queries. The invariant —
// checked under -race — is that the ledger's spend equals exactly
// accepted-queries × ε (an evicted session fails closed with NotFound
// and never produces a half-charged answer), and post-eviction queries
// spend nothing.
func TestTTLEvictionRacingInflightQuery(t *testing.T) {
	led, err := ledger.Open(ledger.Config{DefaultBudget: 0}) // unlimited: only counting matters
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	info, _, err := led.CreateAnalyst("alice", 0)
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	srv := New(Config{
		SessionTTL:          time.Minute,
		AllowSeededSessions: true,
		Ledger:              led,
		now:                 clock,
	})
	defer srv.Close()
	registerPeople(t, srv, 100)

	const (
		workers = 8
		rounds  = 20
		eps     = 0.001
	)
	var accepted, notFound atomic.Int64
	for round := 0; round < 4; round++ {
		si, err := srv.OpenSession(info.ID, OpenSessionRequest{Dataset: "people", Budget: 0, Seed: seed(int64(round + 1))})
		if err != nil {
			t.Fatal(err)
		}
		// A few queries land before the race starts, so the charge path
		// is exercised even when the sweeper wins instantly.
		for i := 0; i < 3; i++ {
			if _, err := srv.Query(info.ID, si.ID, QueryRequest{Kind: KindCount, Eps: eps}); err != nil {
				t.Fatal(err)
			}
			accepted.Add(1)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					_, err := srv.Query(info.ID, si.ID, QueryRequest{Kind: KindCount, Eps: eps})
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrNotFound):
						// Evicted mid-stream: fail closed is correct.
						notFound.Add(1)
					default:
						t.Errorf("unexpected query error: %v", err)
					}
				}
			}()
		}
		// Race the TTL straight through the in-flight queries.
		wg.Add(1)
		go func() {
			defer wg.Done()
			advance(2 * time.Minute)
			srv.Sweep()
		}()
		wg.Wait()

		// The evicted session must be gone for good...
		if _, err := srv.SessionInfo(info.ID, si.ID); !errors.Is(err, ErrNotFound) {
			t.Fatalf("round %d: evicted session still visible: %v", round, err)
		}
		// ...and every query either charged exactly once (accepted) or
		// charged nothing (notFound): ledger spend == accepted × eps.
		acct, err := led.Account(info.ID, "people")
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(accepted.Load()) * eps; math.Abs(acct.Spent-want) > 1e-9 {
			t.Fatalf("round %d: ledger spent %g, accepted %d × %g = %g — double- or under-spend",
				round, acct.Spent, accepted.Load(), eps, want)
		}
	}
	if accepted.Load() == 0 {
		t.Fatal("no query ever succeeded; the race never exercised the charge path")
	}
	t.Logf("accepted %d, failed-closed %d", accepted.Load(), notFound.Load())
}

// TestLegacyModeRejectsAnalystParam guards the no-ledger path: passing
// an analyst id to a ledger-less server is a programming error, not a
// silent no-op.
func TestLegacyModeRejectsAnalystParam(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	registerPeople(t, srv, 10)
	if _, err := srv.OpenSession("a-123", OpenSessionRequest{Dataset: "people", Budget: 1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("analyst on ledger-less server: got %v, want ErrBadRequest", err)
	}
}
