package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"osdp/internal/core"
	"osdp/internal/dataset"
)

// maxResponseBytes bounds how much of a response the client buffers. It
// is deliberately larger than the server's request-body cap: a sample of
// a big disk-loaded dataset can legitimately exceed that cap, and
// truncating it would discard an answer whose ε is already spent.
const maxResponseBytes = 1 << 30

// Client is a Go client for the HTTP API. Examples and the end-to-end
// tests use it so the real wire format is exercised, not handler
// internals. A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at base (e.g.
// "http://localhost:8080"). A nil http.Client means http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx answer from the server. It maps back onto the
// package sentinels so callers can errors.Is against ErrBadRequest,
// ErrNotFound, ErrConflict, ErrTooManySessions, core.ErrBudgetExceeded,
// and core.ErrEmptySample across the wire.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// Is classifies the error by its status code. 409 maps to both
// ErrConflict and ErrEmptySample (the wire cannot distinguish them; the
// message can).
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Status == http.StatusBadRequest
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrConflict, core.ErrEmptySample:
		return e.Status == http.StatusConflict
	case ErrTooManySessions:
		return e.Status == http.StatusTooManyRequests
	case core.ErrBudgetExceeded:
		return e.Status == http.StatusPaymentRequired
	}
	return false
}

// RegisterDataset registers a dataset from an in-memory table.
func (c *Client) RegisterDataset(name string, t *dataset.Table, policy PolicySpec) (DatasetInfo, error) {
	var b strings.Builder
	if err := dataset.WriteCSV(&b, t); err != nil {
		return DatasetInfo{}, err
	}
	return c.RegisterDatasetCSV(RegisterDatasetRequest{Name: name, CSV: b.String(), Policy: policy})
}

// RegisterDatasetCSV registers a dataset from a raw wire request.
func (c *Client) RegisterDatasetCSV(req RegisterDatasetRequest) (DatasetInfo, error) {
	return do[DatasetInfo](c, http.MethodPost, "/v1/datasets", req)
}

// Datasets lists registered datasets.
func (c *Client) Datasets() ([]DatasetInfo, error) {
	return do[[]DatasetInfo](c, http.MethodGet, "/v1/datasets", nil)
}

// Dataset fetches one dataset's info.
func (c *Client) Dataset(name string) (DatasetInfo, error) {
	return do[DatasetInfo](c, http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil)
}

// OpenSession opens a budgeted session and returns a handle for querying
// it. seed, when non-nil, asks for reproducible noise.
func (c *Client) OpenSession(dataset string, budget float64, seed *int64) (*SessionClient, error) {
	info, err := do[SessionInfo](c, http.MethodPost, "/v1/sessions",
		OpenSessionRequest{Dataset: dataset, Budget: budget, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &SessionClient{c: c, id: info.ID}, nil
}

// Session returns a handle to an existing session by id (e.g. one shared
// between multiple client processes).
func (c *Client) Session(id string) *SessionClient { return &SessionClient{c: c, id: id} }

// SessionClient queries one open session. It is safe for concurrent use;
// the server's budget accountant arbitrates racing charges.
type SessionClient struct {
	c  *Client
	id string
}

// ID returns the server-assigned session id.
func (s *SessionClient) ID() string { return s.id }

// Info fetches the current budget state.
func (s *SessionClient) Info() (SessionInfo, error) {
	return do[SessionInfo](s.c, http.MethodGet, "/v1/sessions/"+url.PathEscape(s.id), nil)
}

// Close closes the session, returning its final state.
func (s *SessionClient) Close() (SessionInfo, error) {
	return do[SessionInfo](s.c, http.MethodDelete, "/v1/sessions/"+url.PathEscape(s.id), nil)
}

// Query sends a raw QueryRequest.
func (s *SessionClient) Query(req QueryRequest) (QueryResponse, error) {
	return do[QueryResponse](s.c, http.MethodPost, "/v1/sessions/"+url.PathEscape(s.id)+"/query", req)
}

// Histogram answers a real-valued histogram query.
func (s *SessionClient) Histogram(eps float64, where *PredicateSpec, dims ...DomainSpec) (QueryResponse, error) {
	return s.Query(QueryRequest{Kind: KindHistogram, Eps: eps, Where: where, Dims: dims})
}

// IntHistogram answers an integer-valued histogram query.
func (s *SessionClient) IntHistogram(eps float64, where *PredicateSpec, dims ...DomainSpec) (QueryResponse, error) {
	return s.Query(QueryRequest{Kind: KindIntHistogram, Eps: eps, Where: where, Dims: dims})
}

// Count answers a counting query; a nil predicate counts all records.
func (s *SessionClient) Count(eps float64, where *PredicateSpec) (float64, error) {
	resp, err := s.Query(QueryRequest{Kind: KindCount, Eps: eps, Where: where})
	if err != nil {
		return 0, err
	}
	return *resp.Value, nil
}

// Quantile answers the q-quantile of a numeric attribute.
func (s *SessionClient) Quantile(eps float64, attr string, q float64) (float64, error) {
	resp, err := s.Query(QueryRequest{Kind: KindQuantile, Eps: eps, Attr: attr, Q: q})
	if err != nil {
		return 0, err
	}
	return *resp.Value, nil
}

// Sample draws an OsdpRR release of the dataset and parses it back into
// a table.
func (s *SessionClient) Sample(eps float64) (*dataset.Table, error) {
	resp, err := s.Query(QueryRequest{Kind: KindSample, Eps: eps})
	if err != nil {
		return nil, err
	}
	return dataset.ReadCSV(strings.NewReader(resp.SampleCSV))
}

// do sends one JSON round trip and decodes the answer or the error body.
func do[T any](c *Client, method, path string, body any) (T, error) {
	var zero T
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return zero, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return zero, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return zero, err
	}
	if len(raw) > maxResponseBytes {
		return zero, fmt.Errorf("server: %s %s response exceeds %d bytes", method, path, maxResponseBytes)
	}
	if resp.StatusCode >= 300 {
		var e ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return zero, &APIError{Status: resp.StatusCode, Message: e.Error}
		}
		return zero, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	if err := json.Unmarshal(raw, &zero); err != nil {
		return zero, fmt.Errorf("server: decoding %s %s response: %w", method, path, err)
	}
	return zero, nil
}
