package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
)

// maxResponseBytes bounds how much of a response the client buffers. It
// is deliberately larger than the server's request-body cap: a sample of
// a big disk-loaded dataset can legitimately exceed that cap, and
// truncating it would discard an answer whose ε is already spent.
const maxResponseBytes = 1 << 30

// Client is a Go client for the HTTP API. Examples and the end-to-end
// tests use it so the real wire format is exercised, not handler
// internals. A Client is safe for concurrent use.
//
// Every method takes a context.Context and threads it into the HTTP
// request, so callers can cancel in-flight calls; WithTimeout adds a
// per-request deadline on top. Against a ledger-backed server, build an
// authenticated view with WithToken (an analyst API key for /v1, the
// admin token for /admin).
type Client struct {
	base    string
	hc      *http.Client
	token   string        // bearer credential; empty sends no Authorization header
	timeout time.Duration // per-request deadline; 0 relies on ctx alone
	ridHook func(method, path, requestID string)
}

// NewClient returns a client for a server at base (e.g.
// "http://localhost:8080"). A nil http.Client means http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithToken returns a copy of the client that authenticates every
// request with the given bearer token. The original client is
// unchanged, so one process can hold differently-privileged views (e.g.
// an analyst key and the admin token) over one connection pool.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}

// WithTimeout returns a copy of the client that bounds every request to
// d (on top of whatever deadline the caller's context carries). 0
// removes the bound.
func (c *Client) WithTimeout(d time.Duration) *Client {
	cp := *c
	cp.timeout = d
	return &cp
}

// WithRequestIDHook returns a copy of the client that calls fn with the
// server's X-Request-Id after every response that carries one —
// including successes, which return no error to hang the id on. Callers
// use it to record the ids of ε-spending calls so they can later be
// joined against /admin/traces and /admin/audit. fn must be safe for
// concurrent use; nil removes the hook.
func (c *Client) WithRequestIDHook(fn func(method, path, requestID string)) *Client {
	cp := *c
	cp.ridHook = fn
	return &cp
}

// APIError is a non-2xx answer from the server. It maps back onto the
// package sentinels so callers can errors.Is against ErrBadRequest,
// ErrUnauthorized, ErrForbidden, ErrNotFound, ErrConflict,
// ErrTooManySessions, core.ErrBudgetExceeded, and core.ErrEmptySample
// across the wire.
type APIError struct {
	Status  int
	Message string
	// RequestID is the server's X-Request-Id for the failed request
	// ("" against servers without the observability middleware). Quote
	// it when reporting a failure: the operator can pull the matching
	// trace, audit events, and access-log lines by this id.
	RequestID string
	// RetryAfter is the server-advertised pause from a 429's
	// Retry-After header (0 when the server sent none). An admission
	// rejection charged nothing, so waiting this long and resending is
	// always safe.
	RetryAfter time.Duration
}

// Error renders the status code, the server's error message, the
// advertised retry pause on rate-limited answers, and the request id
// when the server assigned one.
func (e *APIError) Error() string {
	msg := fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(" (retry after %s)", e.RetryAfter)
	}
	if e.RequestID != "" {
		msg += fmt.Sprintf(" (request %s)", e.RequestID)
	}
	return msg
}

// Is classifies the error by its status code. 409 maps to both
// ErrConflict and ErrEmptySample, and 429 to both ErrTooManySessions
// and ErrRateLimited (the wire cannot distinguish them; the message
// and Retry-After can).
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Status == http.StatusBadRequest
	case ErrUnauthorized:
		return e.Status == http.StatusUnauthorized
	case ErrForbidden:
		return e.Status == http.StatusForbidden
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrConflict, core.ErrEmptySample:
		return e.Status == http.StatusConflict
	case ErrTooManySessions, ErrRateLimited:
		return e.Status == http.StatusTooManyRequests
	case core.ErrBudgetExceeded:
		return e.Status == http.StatusPaymentRequired
	}
	return false
}

// parseRetryAfter reads a Retry-After header: delta-seconds (the form
// this server emits) or an HTTP-date, per RFC 9110 §10.2.3. 0 means
// absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Healthz reports liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := do[map[string]any](ctx, c, http.MethodGet, "/healthz", nil)
	return err
}

// Stats fetches the coarse service aggregates.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	return do[StatsResponse](ctx, c, http.MethodGet, "/stats", nil)
}

// RegisterDataset registers a dataset from an in-memory table.
func (c *Client) RegisterDataset(ctx context.Context, name string, t *dataset.Table, policy PolicySpec) (DatasetInfo, error) {
	var b strings.Builder
	if err := dataset.WriteCSV(&b, t); err != nil {
		return DatasetInfo{}, err
	}
	return c.RegisterDatasetCSV(ctx, RegisterDatasetRequest{Name: name, CSV: b.String(), Policy: policy})
}

// RegisterDatasetCSV registers a dataset from a raw wire request.
func (c *Client) RegisterDatasetCSV(ctx context.Context, req RegisterDatasetRequest) (DatasetInfo, error) {
	return do[DatasetInfo](ctx, c, http.MethodPost, "/v1/datasets", req)
}

// Datasets lists registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	return do[[]DatasetInfo](ctx, c, http.MethodGet, "/v1/datasets", nil)
}

// Dataset fetches one dataset's info.
func (c *Client) Dataset(ctx context.Context, name string) (DatasetInfo, error) {
	return do[DatasetInfo](ctx, c, http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil)
}

// OpenSession opens a budgeted session and returns a handle for querying
// it. seed, when non-nil, asks for reproducible noise.
func (c *Client) OpenSession(ctx context.Context, dataset string, budget float64, seed *int64) (*SessionClient, error) {
	info, err := do[SessionInfo](ctx, c, http.MethodPost, "/v1/sessions",
		OpenSessionRequest{Dataset: dataset, Budget: budget, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &SessionClient{c: c, id: info.ID}, nil
}

// Session returns a handle to an existing session by id (e.g. one shared
// between multiple client processes).
func (c *Client) Session(id string) *SessionClient { return &SessionClient{c: c, id: id} }

// SessionClient queries one open session. It is safe for concurrent use;
// the server's budget accountants arbitrate racing charges. It inherits
// the parent client's token and timeout.
type SessionClient struct {
	c  *Client
	id string
}

// ID returns the server-assigned session id.
func (s *SessionClient) ID() string { return s.id }

// Info fetches the current budget state.
func (s *SessionClient) Info(ctx context.Context) (SessionInfo, error) {
	return do[SessionInfo](ctx, s.c, http.MethodGet, "/v1/sessions/"+url.PathEscape(s.id), nil)
}

// Close closes the session, returning its final state.
func (s *SessionClient) Close(ctx context.Context) (SessionInfo, error) {
	return do[SessionInfo](ctx, s.c, http.MethodDelete, "/v1/sessions/"+url.PathEscape(s.id), nil)
}

// Query sends a raw QueryRequest.
func (s *SessionClient) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	return do[QueryResponse](ctx, s.c, http.MethodPost, "/v1/sessions/"+url.PathEscape(s.id)+"/query", req)
}

// Histogram answers a real-valued histogram query.
func (s *SessionClient) Histogram(ctx context.Context, eps float64, where *PredicateSpec, dims ...DomainSpec) (QueryResponse, error) {
	return s.Query(ctx, QueryRequest{Kind: KindHistogram, Eps: eps, Where: where, Dims: dims})
}

// IntHistogram answers an integer-valued histogram query.
func (s *SessionClient) IntHistogram(ctx context.Context, eps float64, where *PredicateSpec, dims ...DomainSpec) (QueryResponse, error) {
	return s.Query(ctx, QueryRequest{Kind: KindIntHistogram, Eps: eps, Where: where, Dims: dims})
}

// Count answers a counting query; a nil predicate counts all records.
func (s *SessionClient) Count(ctx context.Context, eps float64, where *PredicateSpec) (float64, error) {
	resp, err := s.Query(ctx, QueryRequest{Kind: KindCount, Eps: eps, Where: where})
	if err != nil {
		return 0, err
	}
	return *resp.Value, nil
}

// Quantile answers the q-quantile of a numeric attribute.
func (s *SessionClient) Quantile(ctx context.Context, eps float64, attr string, q float64) (float64, error) {
	resp, err := s.Query(ctx, QueryRequest{Kind: KindQuantile, Eps: eps, Attr: attr, Q: q})
	if err != nil {
		return 0, err
	}
	return *resp.Value, nil
}

// Workload answers a batch of range-count queries from ONE fitted
// synopsis under a single composed ε charge. estimator is one of the
// Estimator* names ("" = flat); dims declare the synopsis domain (1 or
// 2 numeric lo/width/bins shapes); ranges are inclusive bin intervals
// into those domains. Answers come back in request order.
func (s *SessionClient) Workload(ctx context.Context, eps float64, estimator string, where *PredicateSpec, dims []DomainSpec, ranges []RangeSpec) (QueryResponse, error) {
	return s.Query(ctx, QueryRequest{
		Kind: KindWorkload, Eps: eps, Estimator: estimator,
		Where: where, Dims: dims, Ranges: ranges,
	})
}

// Sample draws an OsdpRR release of the dataset and parses it back into
// a table.
func (s *SessionClient) Sample(ctx context.Context, eps float64) (*dataset.Table, error) {
	resp, err := s.Query(ctx, QueryRequest{Kind: KindSample, Eps: eps})
	if err != nil {
		return nil, err
	}
	return dataset.ReadCSV(strings.NewReader(resp.SampleCSV))
}

// Admin methods: the client must carry the ADMIN token (WithToken), not
// an analyst key.

// CreateAnalyst mints an analyst principal; the returned Key is shown
// exactly once.
func (c *Client) CreateAnalyst(ctx context.Context, req CreateAnalystRequest) (AnalystCreated, error) {
	return do[AnalystCreated](ctx, c, http.MethodPost, "/admin/analysts", req)
}

// Analysts lists principals.
func (c *Client) Analysts(ctx context.Context) ([]ledger.AnalystInfo, error) {
	return do[[]ledger.AnalystInfo](ctx, c, http.MethodGet, "/admin/analysts", nil)
}

// SetAnalystDisabled disables (revokes) or re-enables an analyst.
func (c *Client) SetAnalystDisabled(ctx context.Context, id string, disabled bool) (ledger.AnalystInfo, error) {
	verb := "enable"
	if disabled {
		verb = "disable"
	}
	return do[ledger.AnalystInfo](ctx, c, http.MethodPost, "/admin/analysts/"+url.PathEscape(id)+"/"+verb, nil)
}

// SetBudget grants an (analyst, dataset) ε budget.
func (c *Client) SetBudget(ctx context.Context, req BudgetGrantRequest) (ledger.AccountInfo, error) {
	return do[ledger.AccountInfo](ctx, c, http.MethodPost, "/admin/budgets", req)
}

// Budgets lists every touched ledger account.
func (c *Client) Budgets(ctx context.Context) ([]ledger.AccountInfo, error) {
	return do[[]ledger.AccountInfo](ctx, c, http.MethodGet, "/admin/budgets", nil)
}

// Spend fetches the operator audit view of cumulative ε leakage.
func (c *Client) Spend(ctx context.Context) (SpendReport, error) {
	return do[SpendReport](ctx, c, http.MethodGet, "/admin/spend", nil)
}

// Limits fetches the admission-control defaults and per-analyst
// overrides (Enabled false when the server runs without admission).
func (c *Client) Limits(ctx context.Context) (LimitsResponse, error) {
	return do[LimitsResponse](ctx, c, http.MethodGet, "/admin/limits", nil)
}

// SetAnalystLimits installs one analyst's admission override (weight,
// rate, burst, concurrency, queue cap); zero fields inherit the server
// default, and an all-zero request clears the override.
func (c *Client) SetAnalystLimits(ctx context.Context, req AnalystLimits) (AnalystLimits, error) {
	return do[AnalystLimits](ctx, c, http.MethodPost, "/admin/limits", req)
}

// TraceQuery filters Traces.
type TraceQuery struct {
	// Kind keeps only traces of this query kind.
	Kind string
	// Analyst keeps only traces for this analyst ID.
	Analyst string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit caps the number of traces returned (0 = server default).
	Limit int
}

// Traces lists recent request traces from the server's ring buffers,
// newest first.
func (c *Client) Traces(ctx context.Context, q TraceQuery) ([]TraceInfo, error) {
	v := url.Values{}
	if q.Kind != "" {
		v.Set("kind", q.Kind)
	}
	if q.Analyst != "" {
		v.Set("analyst", q.Analyst)
	}
	if q.MinDuration > 0 {
		v.Set("min_duration", q.MinDuration.String())
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/admin/traces"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	return do[[]TraceInfo](ctx, c, http.MethodGet, path, nil)
}

// Trace fetches one retained trace by its request id.
func (c *Client) Trace(ctx context.Context, id string) (TraceInfo, error) {
	return do[TraceInfo](ctx, c, http.MethodGet, "/admin/traces/"+url.PathEscape(id), nil)
}

// AuditQuery filters AuditEvents.
type AuditQuery struct {
	// Analyst keeps only events for this analyst ID.
	Analyst string
	// Since keeps only events at or after this time.
	Since time.Time
	// Until keeps only events at or before this time.
	Until time.Time
	// Limit caps the number of events returned (0 = server default).
	Limit int
}

// AuditEvents fetches recent privacy-audit events (newest first) plus
// trail-level facts.
func (c *Client) AuditEvents(ctx context.Context, q AuditQuery) (AuditReport, error) {
	v := url.Values{}
	if q.Analyst != "" {
		v.Set("analyst", q.Analyst)
	}
	if !q.Since.IsZero() {
		v.Set("since", q.Since.Format(time.RFC3339))
	}
	if !q.Until.IsZero() {
		v.Set("until", q.Until.Format(time.RFC3339))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/admin/audit"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	return do[AuditReport](ctx, c, http.MethodGet, path, nil)
}

// do sends one JSON round trip and decodes the answer or the error body.
func do[T any](ctx context.Context, c *Client, method, path string, body any) (T, error) {
	var zero T
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return zero, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return zero, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if id := RequestID(ctx); id != "" {
		// Propagate a caller-chosen id (ContextWithRequestID) so the
		// server's trace, audit events, and logs carry it end to end.
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	requestID := resp.Header.Get("X-Request-Id")
	if c.ridHook != nil && requestID != "" {
		c.ridHook(method, path, requestID)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return zero, err
	}
	if len(raw) > maxResponseBytes {
		return zero, fmt.Errorf("server: %s %s response exceeds %d bytes", method, path, maxResponseBytes)
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{
			Status:     resp.StatusCode,
			RequestID:  requestID,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		var e ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(raw))
		}
		return zero, apiErr
	}
	if err := json.Unmarshal(raw, &zero); err != nil {
		return zero, fmt.Errorf("server: decoding %s %s response: %w", method, path, err)
	}
	return zero, nil
}
