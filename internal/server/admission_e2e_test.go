package server

import (
	"errors"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdp/internal/ledger"
)

// TestAdmissionStarvationRegression is the headline e2e check: one
// flooding analyst saturating a 2-slot server with large workload
// batches must not starve a light analyst on the same dataset. The
// light analyst's requests all complete with bounded p99 latency, and
// the per-analyst ledger accounts prove no request was lost or
// double-executed (spend == successes x ε, exactly, on both sides).
func TestAdmissionStarvationRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	c, srv := newLedgerServer(t, "", ledger.Config{}, Config{
		Admission: &AdmissionConfig{MaxConcurrent: 2},
	})
	registerPeople(t, srv, 500)
	flood, floodID := mintAnalyst(t, c, "flood", 0)
	light, lightID := mintAnalyst(t, c, "light", 0)

	const eps = 0.01

	// The flood: 4 goroutines of 512-range workload batches, running
	// until the light analyst is done.
	ranges := make([]RangeSpec, 512)
	for i := range ranges {
		ranges[i] = RangeSpec{Lo: i % 32, Hi: 32 + i%32}
	}
	dims := []DomainSpec{{Attr: "Age", Lo: 0, Width: 2, Bins: 64}}
	stop := make(chan struct{})
	var floodOK atomic.Int64
	var floodWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		floodWG.Add(1)
		go func(n int64) {
			defer floodWG.Done()
			sc, err := flood.OpenSession(ctx, "people", 0, seed(n))
			if err != nil {
				t.Errorf("flood session: %v", err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sc.Workload(ctx, eps, EstimatorFlat, nil, dims, ranges); err != nil {
					t.Errorf("flood workload: %v", err)
					return
				}
				floodOK.Add(1)
			}
		}(int64(g + 1))
	}

	// The light analyst: 25 sequential counts, each timed end to end
	// (admission wait included — that is the quantity under test).
	sc, err := light.OpenSession(ctx, "people", 0, seed(99))
	if err != nil {
		t.Fatal(err)
	}
	const lightN = 25
	lat := make([]time.Duration, 0, lightN)
	for i := 0; i < lightN; i++ {
		start := time.Now()
		if _, err := sc.Count(ctx, eps, nil); err != nil {
			t.Fatalf("light count %d under flood: %v", i, err)
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	floodWG.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)-1]
	// Generous on absolute terms, damning relative to starvation: an
	// unfair queue parks the light analyst behind the entire flood
	// backlog and busts this by orders of magnitude.
	if p99 > 5*time.Second {
		t.Errorf("light analyst p99 admission-inclusive latency %v, want < 5s", p99)
	}

	// Conservation: each completed request charged its ε exactly once.
	led := srv.cfg.Ledger
	lightAcc, err := led.Account(lightID, "people")
	if err != nil {
		t.Fatal(err)
	}
	if want := lightN * eps; math.Abs(lightAcc.Spent-want) > 1e-9 {
		t.Errorf("light analyst spent %.9f, want %.9f — a request was lost or double-executed", lightAcc.Spent, want)
	}
	floodAcc, err := led.Account(floodID, "people")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(floodOK.Load()) * eps; math.Abs(floodAcc.Spent-want) > 1e-9 {
		t.Errorf("flood analyst spent %.9f, want %.9f (%d successes)", floodAcc.Spent, want, floodOK.Load())
	}
}

// TestRateLimit429OverTheWire checks the full 429 contract end to end:
// the sentinel maps across the wire, the Retry-After header parses into
// APIError.RetryAfter, the message renders it, and the rejected request
// charged nothing.
func TestRateLimit429OverTheWire(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{}, Config{
		Admission: &AdmissionConfig{MaxConcurrent: 4, RatePerSec: 0.5, Burst: 1},
	})
	registerPeople(t, srv, 20)
	ac, analystID := mintAnalyst(t, c, "alice", 0)
	sc, err := ac.OpenSession(ctx, "people", 0, seed(1))
	if err != nil {
		t.Fatal(err)
	}

	const eps = 0.05
	if _, err := sc.Count(ctx, eps, nil); err != nil {
		t.Fatalf("first query within burst: %v", err)
	}
	_, err = sc.Count(ctx, eps, nil)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second query: got %v, want ErrRateLimited", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("429 did not surface as APIError: %v", err)
	}
	if apiErr.Status != 429 {
		t.Errorf("status %d, want 429", apiErr.Status)
	}
	// rate 0.5/s with an empty bucket needs 2s for one token; the
	// header rounds up to whole seconds.
	if apiErr.RetryAfter < time.Second || apiErr.RetryAfter > 3*time.Second {
		t.Errorf("RetryAfter %v, want ~2s", apiErr.RetryAfter)
	}
	if got := apiErr.Error(); !strings.Contains(got, "retry after") {
		t.Errorf("APIError message %q does not render the retry pause", got)
	}

	// The rejection happened before admission, so before any charge.
	acc, err := srv.cfg.Ledger.Account(analystID, "people")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.Spent-eps) > 1e-12 {
		t.Errorf("spent %.12f after one success and one 429, want exactly %g", acc.Spent, eps)
	}
}

// TestAdminLimitsRoundTrip drives /admin/limits over the real wire:
// defaults report resolved values, an override sets, lists, and clears,
// validation rejects garbage, and the analyst realm cannot touch it.
func TestAdminLimitsRoundTrip(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{}, Config{
		Admission: &AdmissionConfig{MaxConcurrent: 4, RatePerSec: 10},
	})
	registerPeople(t, srv, 20)
	admin := c.WithToken(adminToken)
	ac, analystID := mintAnalyst(t, c, "alice", 0)

	resp, err := admin.Limits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Defaults == nil {
		t.Fatalf("limits on an admission server: %+v", resp)
	}
	if resp.Defaults.MaxConcurrent != 4 || resp.Defaults.RatePerSec != 10 ||
		resp.Defaults.Burst != 20 || resp.Defaults.Weight != 1 || resp.Defaults.MaxQueued != DefaultMaxQueued {
		t.Errorf("resolved defaults wrong: %+v", resp.Defaults)
	}
	if len(resp.Overrides) != 0 {
		t.Errorf("fresh server has overrides: %+v", resp.Overrides)
	}

	set, err := admin.SetAnalystLimits(ctx, AnalystLimits{Analyst: analystID, Weight: 2.5, RatePerSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	if set.Weight != 2.5 || set.RatePerSec != 100 {
		t.Errorf("override echo wrong: %+v", set)
	}
	resp, err = admin.Limits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Overrides) != 1 || resp.Overrides[0].Analyst != analystID || resp.Overrides[0].Weight != 2.5 {
		t.Errorf("override not listed: %+v", resp.Overrides)
	}

	// Garbage is rejected with 400.
	if _, err := admin.SetAnalystLimits(ctx, AnalystLimits{Analyst: analystID, Weight: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative weight: got %v, want ErrBadRequest", err)
	}
	if _, err := admin.SetAnalystLimits(ctx, AnalystLimits{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing analyst: got %v, want ErrBadRequest", err)
	}

	// All-zero clears the override.
	if _, err := admin.SetAnalystLimits(ctx, AnalystLimits{Analyst: analystID}); err != nil {
		t.Fatal(err)
	}
	resp, err = admin.Limits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Overrides) != 0 {
		t.Errorf("override survived clear: %+v", resp.Overrides)
	}

	// Realm separation: an analyst key is 403 on the admin plane.
	if _, err := ac.Limits(ctx); !errors.Is(err, ErrForbidden) {
		t.Errorf("analyst key on /admin/limits: got %v, want ErrForbidden", err)
	}
}

// TestAdminLimitsDisabled checks the admission-less server: GET reports
// enabled=false as data, POST is a 404 (the knob does not exist).
func TestAdminLimitsDisabled(t *testing.T) {
	c, srv := newLedgerServer(t, "", ledger.Config{}, Config{})
	registerPeople(t, srv, 5)
	admin := c.WithToken(adminToken)

	resp, err := admin.Limits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Defaults != nil {
		t.Errorf("admission-less server reports %+v, want enabled=false, no defaults", resp)
	}
	if _, err := admin.SetAnalystLimits(ctx, AnalystLimits{Analyst: "x", Weight: 2}); !errors.Is(err, ErrNotFound) {
		t.Errorf("POST limits without admission: got %v, want ErrNotFound", err)
	}
	_ = srv
}
