package server

import (
	"encoding/json"
	"strings"
	"testing"

	"osdp/internal/dataset"
)

func testSchemaTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl, err := dataset.ReadCSV(strings.NewReader(
		"Age:int,Score:float,City:string,OptIn:bool\n" +
			"30,1.5,irvine,true\n" +
			"12,0.25,tustin,false\n" +
			"70,9.5,irvine,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestCompilePredicateRoundTrip decodes predicate specs from JSON — the
// way they actually arrive — compiles them, and checks their semantics
// record by record.
func TestCompilePredicateRoundTrip(t *testing.T) {
	tbl := testSchemaTable(t)
	cases := []struct {
		name string
		spec string
		want []bool // per record
	}{
		{"cmp-int", `{"op":"cmp","attr":"Age","cmp":"<=","value":17}`, []bool{false, true, false}},
		{"cmp-float", `{"op":"cmp","attr":"Score","cmp":">","value":1.0}`, []bool{true, false, true}},
		{"cmp-string", `{"op":"cmp","attr":"City","cmp":"=","value":"irvine"}`, []bool{true, false, true}},
		{"cmp-bool", `{"op":"cmp","attr":"OptIn","cmp":"=","value":false}`, []bool{false, true, false}},
		{"not", `{"op":"not","args":[{"op":"cmp","attr":"City","cmp":"=","value":"irvine"}]}`, []bool{false, true, false}},
		{"and", `{"op":"and","args":[
			{"op":"cmp","attr":"Age","cmp":">=","value":18},
			{"op":"cmp","attr":"City","cmp":"=","value":"irvine"}]}`, []bool{true, false, true}},
		{"or", `{"op":"or","args":[
			{"op":"cmp","attr":"Age","cmp":"<=","value":17},
			{"op":"cmp","attr":"Score","cmp":">","value":9}]}`, []bool{false, true, true}},
		{"true", `{"op":"true"}`, []bool{true, true, true}},
		{"false", `{"op":"false"}`, []bool{false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var spec PredicateSpec
			if err := json.Unmarshal([]byte(tc.spec), &spec); err != nil {
				t.Fatalf("decode: %v", err)
			}
			pred, err := compilePredicate(spec, tbl.Schema())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for i, r := range tbl.Records() {
				if got := pred.Eval(r); got != tc.want[i] {
					t.Errorf("record %d: got %v, want %v (pred %s)", i, got, tc.want[i], pred)
				}
			}
		})
	}
}

func TestCompilePredicateErrors(t *testing.T) {
	tbl := testSchemaTable(t)
	bad := []PredicateSpec{
		{Op: "cmp", Attr: "Nope", Cmp: "=", Value: "x"},                // unknown attr
		{Op: "cmp", Attr: "Age", Cmp: "~", Value: float64(1)},          // unknown operator
		{Op: "cmp", Attr: "Age", Cmp: "=", Value: "12"},                // string for int
		{Op: "cmp", Attr: "Age", Cmp: "=", Value: 12.5},                // fractional for int
		{Op: "cmp", Attr: "OptIn", Cmp: "=", Value: "true"},            // string for bool
		{Op: "cmp", Attr: "City", Cmp: "=", Value: float64(3)},         // number for string
		{Op: "not", Args: nil},                                         // not needs 1 arg
		{Op: "xor", Args: []PredicateSpec{{Op: "true"}, {Op: "true"}}}, // unknown op
	}
	for i, spec := range bad {
		if _, err := compilePredicate(spec, tbl.Schema()); err == nil {
			t.Errorf("case %d (%+v): expected a compile error", i, spec)
		}
	}
}

func TestCompileDomain(t *testing.T) {
	tbl := testSchemaTable(t)

	d, err := compileDomain(DomainSpec{Attr: "City", Keys: []string{"irvine", "tustin"}}, tbl)
	if err != nil || d.Size() != 2 {
		t.Fatalf("categorical: size %v err %v", d, err)
	}
	d, err = compileDomain(DomainSpec{Attr: "Age", Lo: 0, Width: 20, Bins: 4}, tbl)
	if err != nil || d.Size() != 4 {
		t.Fatalf("numeric: %v err %v", d, err)
	}
	d, err = compileDomain(DomainSpec{Attr: "City"}, tbl)
	if err != nil || d.Size() != 2 { // derived: {irvine, tustin}
		t.Fatalf("derived: %v err %v", d, err)
	}

	for i, spec := range []DomainSpec{
		{Attr: "Nope"},         // unknown attr
		{Attr: "Age", Bins: 4}, // missing width
		{Attr: "City", Keys: []string{"irvine", "irvine"}},          // duplicate keys
		{Attr: "Age", Lo: 0, Width: 10},                             // lo/width without bins: not silently derived
		{Attr: "City", Keys: []string{"irvine"}, Bins: 3, Width: 1}, // mixed shapes
		{Attr: "Age", Lo: 0, Width: 1e-6, Bins: 2_000_000_000},      // bins over MaxQueryBins
		{Attr: "Age", Lo: 0, Width: 1, Bins: -5},                    // negative bins
	} {
		if _, err := compileDomain(spec, tbl); err == nil {
			t.Errorf("case %d (%+v): expected a compile error", i, spec)
		}
	}

	// Deriving against an empty (all-sensitive) partition must fail
	// rather than panic downstream.
	empty := dataset.NewTable(tbl.Schema())
	if _, err := compileDomain(DomainSpec{Attr: "City"}, empty); err == nil {
		t.Error("empty derived domain: expected an error")
	}
}

// TestTwoDimBinProductCap checks that two individually-legal dimensions
// whose product exceeds MaxQueryBins are rejected before the output
// vector is allocated — bins are client-controlled, so this is the
// memory-DoS guard.
func TestTwoDimBinProductCap(t *testing.T) {
	tbl := testSchemaTable(t)
	srv := New(Config{})
	if err := srv.RegisterTable("d", tbl, dataset.AllNonSensitive()); err != nil {
		t.Fatal(err)
	}
	info, err := srv.OpenSession("", OpenSessionRequest{Dataset: "d", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	half := DomainSpec{Attr: "Age", Lo: 0, Width: 1e-3, Bins: MaxQueryBins / 2}
	_, err = srv.Query("", info.ID, QueryRequest{Kind: KindHistogram, Eps: 0.5, Dims: []DomainSpec{half, half}})
	if err == nil {
		t.Fatal("expected the 2-D bin-product cap to reject the query")
	}
	if spent, _ := srv.SessionInfo("", info.ID); spent.Spent != 0 {
		t.Fatalf("rejected query charged %g", spent.Spent)
	}
}
