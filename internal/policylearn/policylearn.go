// Package policylearn implements the policy-learning direction sketched in
// the paper's §7 ("mechanisms to specify comprehensive policies … or,
// better still, learn such policies, perhaps through appropriate machine
// learning techniques"): given example records labelled sensitive or
// non-sensitive — e.g. a sample of users' opt-in decisions — it fits a
// classifier and turns it into a dataset.Policy usable by every OSDP
// mechanism in this repository.
//
// Learned policies are privacy-critical in one direction only: declaring
// a truly sensitive record non-sensitive voids that record's protection,
// while the reverse merely costs utility. The learner therefore exposes a
// decision threshold calibrated on held-out data to cap the estimated
// false-non-sensitive rate.
package policylearn

import (
	"fmt"
	"math/rand"
	"sort"

	"osdp/internal/classify"
	"osdp/internal/dataset"
)

// Example is one labelled record.
type Example struct {
	Record    dataset.Record
	Sensitive bool
}

// Config controls learning.
type Config struct {
	// MaxFNR caps the estimated probability that a sensitive record is
	// classified non-sensitive; the threshold is calibrated on a held-out
	// split to meet it. Typical values: 0.01–0.05.
	MaxFNR float64
	// Train configures the underlying logistic regression.
	Train classify.TrainConfig
	// HoldoutFrac is the fraction of examples reserved for threshold
	// calibration (default 0.25 when zero).
	HoldoutFrac float64
	// Seed drives the train/holdout split.
	Seed int64
}

// DefaultConfig returns a conservative configuration.
func DefaultConfig() Config {
	return Config{MaxFNR: 0.02, Train: classify.DefaultTrainConfig(), HoldoutFrac: 0.25, Seed: 1}
}

// LearnedPolicy is a fitted sensitivity classifier with its calibrated
// threshold and held-out quality estimates.
type LearnedPolicy struct {
	model     classify.Model
	embed     *embedder
	threshold float64

	// EstimatedFNR is the held-out fraction of sensitive records the
	// policy would mark non-sensitive — the privacy-relevant error.
	EstimatedFNR float64
	// EstimatedFPR is the held-out fraction of non-sensitive records
	// marked sensitive — the utility cost of conservatism.
	EstimatedFPR float64
}

// Learn fits a policy from examples. All records must share one schema and
// both classes must be represented.
func Learn(examples []Example, cfg Config) (*LearnedPolicy, error) {
	if len(examples) < 10 {
		return nil, fmt.Errorf("policylearn: need at least 10 examples, have %d", len(examples))
	}
	if cfg.MaxFNR <= 0 || cfg.MaxFNR >= 1 {
		return nil, fmt.Errorf("policylearn: MaxFNR %v outside (0, 1)", cfg.MaxFNR)
	}
	if cfg.HoldoutFrac == 0 {
		cfg.HoldoutFrac = 0.25
	}
	schema := examples[0].Record.Schema()
	for _, ex := range examples {
		if ex.Record.Schema() != schema {
			return nil, fmt.Errorf("policylearn: examples mix schemas")
		}
	}
	embed := newEmbedder(schema, examples)

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(examples))
	nHold := int(float64(len(examples)) * cfg.HoldoutFrac)
	if nHold < 2 {
		nHold = 2
	}
	hold, train := perm[:nHold], perm[nHold:]

	var ds classify.Dataset
	for _, i := range train {
		ds.X = append(ds.X, embed.vector(examples[i].Record))
		// Label 1 = sensitive, so higher score = more sensitive.
		ds.Y = append(ds.Y, boolToLabel(examples[i].Sensitive))
	}
	if allSame(ds.Y) {
		return nil, fmt.Errorf("policylearn: training split has a single class; provide both kinds of examples")
	}
	model, err := classify.Train(ds, cfg.Train)
	if err != nil {
		return nil, err
	}

	lp := &LearnedPolicy{model: model, embed: embed}
	lp.calibrate(examples, hold, cfg.MaxFNR)
	return lp, nil
}

// scoredExample is a held-out example's sensitivity score.
type scoredExample struct {
	p    float64 // model's P(sensitive | record)
	sens bool    // true label
}

// calibrate picks the decision threshold τ (sensitive iff score ≥ τ): the
// largest τ whose held-out FNR stays within the cap. Larger τ marks fewer
// records sensitive (more utility); τ = 0 marks everything sensitive
// (FNR 0, no utility).
func (lp *LearnedPolicy) calibrate(examples []Example, hold []int, maxFNR float64) {
	var hs []scoredExample
	var sensScores []float64
	for _, i := range hold {
		p := lp.model.Prob(lp.embed.vector(examples[i].Record))
		hs = append(hs, scoredExample{p, examples[i].Sensitive})
		if examples[i].Sensitive {
			sensScores = append(sensScores, p)
		}
	}
	if len(sensScores) == 0 {
		// FNR is vacuous without sensitive holdout examples; stay neutral.
		lp.threshold = 0.5
		lp.evaluate(hs)
		return
	}
	sort.Float64s(sensScores)
	allowedMisses := int(maxFNR * float64(len(sensScores)))
	// τ sits at the (allowedMisses+1)-th smallest sensitive score: the
	// first allowedMisses fall strictly below it and are the only misses.
	lp.threshold = sensScores[min(allowedMisses, len(sensScores)-1)]
	lp.evaluate(hs)
}

func (lp *LearnedPolicy) evaluate(hs []scoredExample) {
	var fn, fp, nSens, nNon float64
	for _, s := range hs {
		if s.sens {
			nSens++
			if s.p < lp.threshold {
				fn++
			}
		} else {
			nNon++
			if s.p >= lp.threshold {
				fp++
			}
		}
	}
	if nSens > 0 {
		lp.EstimatedFNR = fn / nSens
	}
	if nNon > 0 {
		lp.EstimatedFPR = fp / nNon
	}
}

// Sensitive reports the learned sensitivity decision: records scoring at
// or above the threshold are treated as sensitive.
func (lp *LearnedPolicy) Sensitive(r dataset.Record) bool {
	return lp.model.Prob(lp.embed.vector(r)) >= lp.threshold
}

// AsPolicy converts the learned classifier into a dataset.Policy usable
// with every mechanism in internal/core.
func (lp *LearnedPolicy) AsPolicy(name string) dataset.Policy {
	return dataset.NewPolicy(name, dataset.FuncPredicate("learned("+name+")", lp.Sensitive))
}

// Threshold returns the calibrated decision threshold.
func (lp *LearnedPolicy) Threshold() float64 { return lp.threshold }

// embedder maps records to feature vectors: numeric/bool attributes are
// scaled into [-1, 1] by the maximum magnitude observed in the training
// examples (gradient descent needs bounded features); string attributes
// one-hot encode their observed categories.
type embedder struct {
	schema *dataset.Schema
	// perColumn offset, category index (strings), and scale (numerics).
	offsets []int
	cats    []map[string]int
	scales  []float64
	dim     int
}

func newEmbedder(schema *dataset.Schema, examples []Example) *embedder {
	e := &embedder{schema: schema}
	e.offsets = make([]int, schema.Len())
	e.cats = make([]map[string]int, schema.Len())
	e.scales = make([]float64, schema.Len())
	for i, name := range schema.Names() {
		kind, _ := schema.KindOf(name)
		e.offsets[i] = e.dim
		if kind == dataset.KindString {
			cat := make(map[string]int)
			for _, ex := range examples {
				v := ex.Record.At(i).AsString()
				if _, ok := cat[v]; !ok {
					cat[v] = len(cat)
				}
			}
			e.cats[i] = cat
			e.dim += len(cat)
			continue
		}
		scale := 1.0
		for _, ex := range examples {
			if a := abs(ex.Record.At(i).AsFloat()); a > scale {
				scale = a
			}
		}
		e.scales[i] = scale
		e.dim++
	}
	return e
}

func (e *embedder) vector(r dataset.Record) []float64 {
	v := make([]float64, e.dim)
	for i := 0; i < e.schema.Len(); i++ {
		if cats := e.cats[i]; cats != nil {
			if j, ok := cats[r.At(i).AsString()]; ok {
				v[e.offsets[i]+j] = 1
			}
			continue
		}
		v[e.offsets[i]] = r.At(i).AsFloat() / e.scales[i]
	}
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func boolToLabel(b bool) int {
	if b {
		return 1
	}
	return 0
}

func allSame(ys []int) bool {
	for _, y := range ys[1:] {
		if y != ys[0] {
			return false
		}
	}
	return true
}
