package policylearn

import (
	"math/rand"
	"testing"

	"osdp/internal/dataset"
)

func learnSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
		dataset.Field{Name: "OptIn", Kind: dataset.KindBool},
		dataset.Field{Name: "Region", Kind: dataset.KindString},
	)
}

// Ground-truth policy: minors or opted-out users are sensitive.
func truthSensitive(age int64, optIn bool) bool {
	return age <= 17 || !optIn
}

func genExamples(n int, seed int64) []Example {
	s := learnSchema()
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"north", "south", "east", "west"}
	out := make([]Example, n)
	for i := range out {
		age := int64(rng.Intn(80))
		optIn := rng.Float64() < 0.7
		rec := dataset.NewRecord(s,
			dataset.Int(age),
			dataset.Bool(optIn),
			dataset.Str(regions[rng.Intn(len(regions))]),
		)
		out[i] = Example{Record: rec, Sensitive: truthSensitive(age, optIn)}
	}
	return out
}

func TestLearnRecoversRulePolicy(t *testing.T) {
	examples := genExamples(2000, 1)
	lp, err := Learn(examples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := genExamples(1000, 2)
	agree := 0
	for _, ex := range test {
		if lp.Sensitive(ex.Record) == ex.Sensitive {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(test)); rate < 0.9 {
		t.Errorf("agreement %v, want > 0.9", rate)
	}
}

func TestLearnedPolicyIsConservative(t *testing.T) {
	examples := genExamples(2000, 3)
	cfg := DefaultConfig()
	cfg.MaxFNR = 0.02
	lp, err := Learn(examples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lp.EstimatedFNR > 0.05 {
		t.Errorf("estimated FNR %v above the cap (with slack)", lp.EstimatedFNR)
	}
	// Out-of-sample FNR should stay near the cap.
	test := genExamples(2000, 4)
	var missed, nSens float64
	for _, ex := range test {
		if !ex.Sensitive {
			continue
		}
		nSens++
		if !lp.Sensitive(ex.Record) {
			missed++
		}
	}
	if fnr := missed / nSens; fnr > 0.10 {
		t.Errorf("out-of-sample FNR %v too high", fnr)
	}
}

func TestTighterFNRCapLowersThreshold(t *testing.T) {
	examples := genExamples(2000, 5)
	loose := DefaultConfig()
	loose.MaxFNR = 0.2
	tight := DefaultConfig()
	tight.MaxFNR = 0.005
	lpLoose, err := Learn(examples, loose)
	if err != nil {
		t.Fatal(err)
	}
	lpTight, err := Learn(examples, tight)
	if err != nil {
		t.Fatal(err)
	}
	if lpTight.Threshold() > lpLoose.Threshold() {
		t.Errorf("tight cap threshold %v above loose %v", lpTight.Threshold(), lpLoose.Threshold())
	}
}

func TestAsPolicyIntegratesWithDataset(t *testing.T) {
	examples := genExamples(1500, 6)
	lp, err := Learn(examples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol := lp.AsPolicy("learned-gdpr")
	if pol.Name() != "learned-gdpr" {
		t.Errorf("policy name %q", pol.Name())
	}
	// Usable in a table split (tables compare schemas by identity, so
	// reuse the examples' schema).
	tb := dataset.NewTable(examples[0].Record.Schema())
	for _, ex := range examples[:200] {
		tb.Append(ex.Record)
	}
	sens, ns := tb.Split(pol)
	if sens.Len()+ns.Len() != tb.Len() {
		t.Error("learned policy split does not partition")
	}
	if sens.Len() == 0 || ns.Len() == 0 {
		t.Error("learned policy is trivial")
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(genExamples(5, 7), DefaultConfig()); err == nil {
		t.Error("tiny example set accepted")
	}
	cfg := DefaultConfig()
	cfg.MaxFNR = 0
	if _, err := Learn(genExamples(100, 8), cfg); err == nil {
		t.Error("MaxFNR=0 accepted")
	}
	// Single-class examples.
	examples := genExamples(200, 9)
	for i := range examples {
		examples[i].Sensitive = true
	}
	if _, err := Learn(examples, DefaultConfig()); err == nil {
		t.Error("single-class examples accepted")
	}
	// Mixed schemas.
	other := dataset.NewSchema(dataset.Field{Name: "Z", Kind: dataset.KindInt})
	mixed := genExamples(100, 10)
	mixed[0].Record = dataset.NewRecord(other, dataset.Int(1))
	if _, err := Learn(mixed, DefaultConfig()); err == nil {
		t.Error("mixed schemas accepted")
	}
}

func TestEmbedderOneHot(t *testing.T) {
	examples := genExamples(100, 11)
	e := newEmbedder(learnSchema(), examples)
	// Dim = Age(1) + OptIn(1) + |regions|.
	if e.dim < 2+1 || e.dim > 2+4 {
		t.Errorf("embedder dim = %d", e.dim)
	}
	v := e.vector(examples[0].Record)
	if len(v) != e.dim {
		t.Errorf("vector len %d != dim %d", len(v), e.dim)
	}
	// Numeric attributes are scaled by the max observed magnitude.
	var maxAge float64
	for _, ex := range examples {
		if a := ex.Record.Get("Age").AsFloat(); a > maxAge {
			maxAge = a
		}
	}
	want := examples[0].Record.Get("Age").AsFloat() / maxAge
	if v[0] != want {
		t.Errorf("scaled age = %v, want %v", v[0], want)
	}
	for _, f := range v {
		if f < -1 || f > 1 {
			t.Errorf("feature %v outside [-1, 1]", f)
		}
	}
}
