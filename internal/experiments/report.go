// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic substrates, one runner per artifact.
// Each runner returns a Report — the same rows/series the paper plots —
// so the cmd/osdp-bench binary and the bench harness share output.
//
// Absolute numbers differ from the paper (the substrates are simulators,
// not the authors' testbed); the experiments are judged on shape: which
// algorithm wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for each runner.
package experiments

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result table.
type Report struct {
	// Title identifies the experiment ("Figure 4a: ...").
	Title string
	// Headers label the columns.
	Headers []string
	// Rows hold the result cells, already formatted.
	Rows [][]string
	// Notes carry free-form observations appended after the table.
	Notes []string
}

// AddRow appends a formatted row built from arbitrary values: floats are
// rendered with 4 significant digits, everything else via %v.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	r.Rows = append(r.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v >= 1000 || v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteByte('\n')
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
