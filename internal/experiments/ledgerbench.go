package experiments

import (
	"fmt"
	"runtime"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
)

// This file is the ledger-overhead benchmark behind `osdp-bench -ledger
// BENCH_ledger.json`: how much the privacy-budget control plane adds to
// the serving hot path. Three variants of the charge path are measured
// on one (analyst, dataset) account — pure in-memory, WAL append
// without fsync, and WAL append with fsync (the production default) —
// plus allocations per charge, which CI tracks to keep the path O(1).

// LedgerBenchResult is the machine-readable outcome written to
// BENCH_ledger.json.
type LedgerBenchResult struct {
	Charges        int     `json:"charges_per_variant"`
	MemNsPerOp     float64 `json:"mem_ns_per_op"`
	WalNsPerOp     float64 `json:"wal_nosync_ns_per_op"`
	WalSyncNsPerOp float64 `json:"wal_fsync_ns_per_op"`
	MemAllocsPerOp float64 `json:"mem_allocs_per_op"`
	WalAllocsPerOp float64 `json:"wal_nosync_allocs_per_op"`
}

// MeasureLedger times the charge path. dir hosts the durable variants'
// state (a fresh subdirectory per variant); charges is the per-variant
// op count (the fsync variant runs fewer — see below).
func MeasureLedger(dir string, charges int) (LedgerBenchResult, error) {
	if charges < 100 {
		charges = 100
	}
	g := core.Guarantee{Policy: dataset.NewPolicy("bench", dataset.True()), Epsilon: 1e-9}

	setup := func(sub string, noSync bool) (*ledger.Ledger, string, error) {
		cfg := ledger.Config{NoSync: noSync}
		if sub != "" {
			cfg.Dir = dir + "/" + sub
		}
		l, err := ledger.Open(cfg)
		if err != nil {
			return nil, "", err
		}
		info, _, err := l.CreateAnalyst("bench", 0)
		if err != nil {
			l.Close()
			return nil, "", err
		}
		return l, info.ID, nil
	}

	measure := func(l *ledger.Ledger, id string, n int) (nsPerOp, allocsPerOp float64, err error) {
		// Warm the account and the append buffer.
		if err := l.Charge(id, "d", g); err != nil {
			return 0, 0, err
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := l.Charge(id, "d", g); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(elapsed.Nanoseconds()) / float64(n),
			float64(ms1.Mallocs-ms0.Mallocs) / float64(n), nil
	}

	var res LedgerBenchResult
	res.Charges = charges

	l, id, err := setup("", false)
	if err != nil {
		return res, fmt.Errorf("ledger bench (mem): %w", err)
	}
	res.MemNsPerOp, res.MemAllocsPerOp, err = measure(l, id, charges)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (mem): %w", err)
	}

	l, id, err = setup("nosync", true)
	if err != nil {
		return res, fmt.Errorf("ledger bench (wal): %w", err)
	}
	res.WalNsPerOp, res.WalAllocsPerOp, err = measure(l, id, charges)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (wal): %w", err)
	}

	// fsync dominates by orders of magnitude; cap its op count so the
	// benchmark stays fast on slow disks.
	syncOps := charges / 20
	if syncOps < 50 {
		syncOps = 50
	}
	l, id, err = setup("fsync", false)
	if err != nil {
		return res, fmt.Errorf("ledger bench (fsync): %w", err)
	}
	res.WalSyncNsPerOp, _, err = measure(l, id, syncOps)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (fsync): %w", err)
	}
	return res, nil
}

// String renders the result as a report-style line.
func (r LedgerBenchResult) String() string {
	return fmt.Sprintf(
		"ledger charge path: mem %.0f ns/op (%.1f allocs), wal %.0f ns/op (%.1f allocs), wal+fsync %.1f µs/op",
		r.MemNsPerOp, r.MemAllocsPerOp, r.WalNsPerOp, r.WalAllocsPerOp, r.WalSyncNsPerOp/1e3)
}
