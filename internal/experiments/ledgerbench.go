package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/ledger"
)

// This file is the ledger-overhead benchmark behind `osdp-bench -ledger
// BENCH_ledger.json`: how much the privacy-budget control plane adds to
// the serving hot path. Three variants of the charge path are measured
// on one (analyst, dataset) account — pure in-memory, WAL append
// without fsync, and WAL append with fsync (the production default) —
// plus allocations per charge, which CI tracks to keep the path O(1).
// The fsync variant is additionally swept across concurrent analysts
// (1/8/64 goroutines charging distinct accounts) to measure group
// commit: N concurrent charges share one fsync, so per-op cost should
// fall roughly as 1/N until the disk or the committer saturates.

// LedgerBenchResult is the machine-readable outcome written to
// BENCH_ledger.json.
type LedgerBenchResult struct {
	Charges        int     `json:"charges_per_variant"`
	MemNsPerOp     float64 `json:"mem_ns_per_op"`
	WalNsPerOp     float64 `json:"wal_nosync_ns_per_op"`
	WalSyncNsPerOp float64 `json:"wal_fsync_ns_per_op"`
	MemAllocsPerOp float64 `json:"mem_allocs_per_op"`
	WalAllocsPerOp float64 `json:"wal_nosync_allocs_per_op"`
	// Group-commit sweep: per-op fsync'd charge cost at 8 and 64
	// concurrent analysts, and the headline speedup of the 64-way run
	// over the serial fsync path above.
	FsyncC8NsPerOp     float64 `json:"fsync_concurrent8_ns_per_op"`
	FsyncC64NsPerOp    float64 `json:"fsync_concurrent64_ns_per_op"`
	GroupCommitSpeedup float64 `json:"group_commit_speedup"`
	// ExtraAnalysts/ExtraNsPerOp report one additional operator-chosen
	// concurrency point (osdp-bench -analysts); zero when not requested.
	ExtraAnalysts int     `json:"extra_analysts,omitempty"`
	ExtraNsPerOp  float64 `json:"extra_concurrent_ns_per_op,omitempty"`
}

// MeasureLedger times the charge path. dir hosts the durable variants'
// state (a fresh subdirectory per variant); charges is the per-variant
// op count (the fsync variants run fewer — see below). extraAnalysts,
// when > 0, adds one more concurrency point to the standard 1/8/64
// fsync sweep.
func MeasureLedger(dir string, charges, extraAnalysts int) (LedgerBenchResult, error) {
	if charges < 100 {
		charges = 100
	}
	g := core.Guarantee{Policy: dataset.NewPolicy("bench", dataset.True()), Epsilon: 1e-9}

	setup := func(sub string, noSync bool) (*ledger.Ledger, string, error) {
		cfg := ledger.Config{NoSync: noSync}
		if sub != "" {
			cfg.Dir = dir + "/" + sub
		}
		l, err := ledger.Open(cfg)
		if err != nil {
			return nil, "", err
		}
		info, _, err := l.CreateAnalyst("bench", 0)
		if err != nil {
			l.Close()
			return nil, "", err
		}
		return l, info.ID, nil
	}

	measure := func(l *ledger.Ledger, id string, n int) (nsPerOp, allocsPerOp float64, err error) {
		// Warm the account and the append buffer.
		if err := l.Charge(id, "d", g); err != nil {
			return 0, 0, err
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := l.Charge(id, "d", g); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(elapsed.Nanoseconds()) / float64(n),
			float64(ms1.Mallocs-ms0.Mallocs) / float64(n), nil
	}

	var res LedgerBenchResult
	res.Charges = charges

	l, id, err := setup("", false)
	if err != nil {
		return res, fmt.Errorf("ledger bench (mem): %w", err)
	}
	res.MemNsPerOp, res.MemAllocsPerOp, err = measure(l, id, charges)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (mem): %w", err)
	}

	l, id, err = setup("nosync", true)
	if err != nil {
		return res, fmt.Errorf("ledger bench (wal): %w", err)
	}
	res.WalNsPerOp, res.WalAllocsPerOp, err = measure(l, id, charges)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (wal): %w", err)
	}

	// fsync dominates by orders of magnitude; cap its op count so the
	// benchmark stays fast on slow disks.
	syncOps := charges / 20
	if syncOps < 50 {
		syncOps = 50
	}
	l, id, err = setup("fsync", false)
	if err != nil {
		return res, fmt.Errorf("ledger bench (fsync): %w", err)
	}
	res.WalSyncNsPerOp, _, err = measure(l, id, syncOps)
	l.Close()
	if err != nil {
		return res, fmt.Errorf("ledger bench (fsync): %w", err)
	}

	// Group-commit sweep: the same fsync'd charge path under concurrent
	// analysts. Per-goroutine op counts are modest — total work is
	// analysts × opsEach and every op still awaits a durable batch.
	opsEach := charges / 100
	if opsEach < 20 {
		opsEach = 20
	}
	sweep := []int{8, 64}
	if extraAnalysts > 0 {
		sweep = append(sweep, extraAnalysts)
	}
	for _, analysts := range sweep {
		nsPerOp, err := MeasureLedgerConcurrent(
			fmt.Sprintf("%s/fsync-c%d", dir, analysts), analysts, opsEach)
		if err != nil {
			return res, fmt.Errorf("ledger bench (fsync ×%d): %w", analysts, err)
		}
		switch analysts {
		case 8:
			res.FsyncC8NsPerOp = nsPerOp
		case 64:
			res.FsyncC64NsPerOp = nsPerOp
		}
		if extraAnalysts > 0 && analysts == extraAnalysts {
			res.ExtraAnalysts, res.ExtraNsPerOp = analysts, nsPerOp
		}
	}
	if res.FsyncC64NsPerOp > 0 {
		res.GroupCommitSpeedup = res.WalSyncNsPerOp / res.FsyncC64NsPerOp
	}
	return res, nil
}

// MeasureLedgerConcurrent times the fsync'd charge path with analysts
// goroutines charging DISTINCT accounts concurrently, returning
// wall-clock ns per charge (wall / (analysts × opsEach)). Distinct
// datasets keep the accounts independent, so the only shared resource
// is the group-commit queue — exactly what the measurement targets.
func MeasureLedgerConcurrent(dir string, analysts, opsEach int) (float64, error) {
	if analysts < 1 || opsEach < 1 {
		return 0, fmt.Errorf("ledger bench: analysts %d and opsEach %d must be positive", analysts, opsEach)
	}
	g := core.Guarantee{Policy: dataset.NewPolicy("bench", dataset.True()), Epsilon: 1e-9}
	l, err := ledger.Open(ledger.Config{Dir: dir})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	info, _, err := l.CreateAnalyst("bench", 0)
	if err != nil {
		return 0, err
	}
	// Warm every account (and the WAL) outside the timed region.
	for w := 0; w < analysts; w++ {
		if err := l.Charge(info.ID, fmt.Sprintf("d%03d", w), g); err != nil {
			return 0, err
		}
	}

	errs := make(chan error, analysts)
	var start sync.WaitGroup // released together so the burst overlaps
	start.Add(1)
	var wg sync.WaitGroup
	for w := 0; w < analysts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := fmt.Sprintf("d%03d", w)
			start.Wait()
			for i := 0; i < opsEach; i++ {
				if err := l.Charge(info.ID, ds, g); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	begin := time.Now()
	start.Done()
	wg.Wait()
	elapsed := time.Since(begin)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(elapsed.Nanoseconds()) / float64(analysts*opsEach), nil
}

// String renders the result as a report-style line.
func (r LedgerBenchResult) String() string {
	return fmt.Sprintf(
		"ledger charge path: mem %.0f ns/op (%.1f allocs), wal %.0f ns/op (%.1f allocs), wal+fsync %.1f µs/op serial, %.1f µs/op ×64 (group commit %.1fx)",
		r.MemNsPerOp, r.MemAllocsPerOp, r.WalNsPerOp, r.WalAllocsPerOp,
		r.WalSyncNsPerOp/1e3, r.FsyncC64NsPerOp/1e3, r.GroupCommitSpeedup)
}
