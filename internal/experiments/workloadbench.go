package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"osdp/internal/agrid"
	"osdp/internal/ahp"
	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/hier"
	"osdp/internal/histogram"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// This file is the range-workload benchmark behind cmd/osdp-bench
// -workload and BENCH_workload.json: the serving-side estimator
// comparison (per-estimator fit latency, answer latency, and workload
// L1 error against the flat Laplace baseline) on a clustered table of
// serving scale. It is the artifact CI tracks so "a structure-
// exploiting estimator beats flat on range workloads" cannot silently
// regress.

// WorkloadBenchTable builds a rows-long single-attribute table whose
// integer values cluster around a few dense centers over [0, bins)
// with a thin uniform background — the data shape DAWA-style
// partitioning exists for (long empty runs, a few tight spikes).
// Deterministic in seed.
func WorkloadBenchTable(rows, bins int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	s := dataset.NewSchema(dataset.Field{Name: "V", Kind: dataset.KindInt})
	centers := make([]float64, 5)
	for i := range centers {
		centers[i] = float64(bins) * (0.1 + 0.2*float64(i)) // spread across the domain
	}
	sd := float64(bins) / 100
	tb := dataset.NewTable(s)
	for i := 0; i < rows; i++ {
		var v int
		if rng.Float64() < 0.9 {
			c := centers[rng.Intn(len(centers))]
			v = int(math.Round(c + rng.NormFloat64()*sd))
		} else {
			v = rng.Intn(bins)
		}
		if v < 0 {
			v = 0
		}
		if v >= bins {
			v = bins - 1
		}
		tb.AppendValues(dataset.Int(int64(v)))
	}
	return tb
}

// WorkloadEstimatorResult is one estimator's row in the benchmark.
type WorkloadEstimatorResult struct {
	Estimator string `json:"estimator"`
	// FitMs is the one-time synopsis cost per workload request: fitting
	// the private estimate plus building the summed-area table.
	FitMs float64 `json:"fit_ms"`
	// AnswerNsPerQuery is the marginal cost of each additional range in
	// the batch (an O(1) synopsis lookup).
	AnswerNsPerQuery float64 `json:"answer_ns_per_query"`
	// WorkloadL1 is the total L1 error over the workload,
	// Σ_q |q(x) − q(x̃)|.
	WorkloadL1 float64 `json:"workload_l1_error"`
	// FlatL1Ratio is flat's WorkloadL1 divided by this estimator's:
	// > 1 means the estimator beats the flat Laplace baseline.
	FlatL1Ratio float64 `json:"l1_vs_flat"`
}

// WorkloadResult is the machine-readable outcome written to
// BENCH_workload.json.
type WorkloadResult struct {
	Rows       int                       `json:"rows"`
	Bins       int                       `json:"bins"`
	Queries    int                       `json:"queries"`
	Eps        float64                   `json:"eps"`
	EvalMs     float64                   `json:"hist_eval_ms"` // shared: true histogram evaluation over the table
	Estimators []WorkloadEstimatorResult `json:"estimators"`
}

// workloadBenchEstimators is the comparison set, flat first (it is the
// baseline the ratios divide by).
func workloadBenchEstimators() []struct {
	name string
	est  core.WorkloadEstimator
} {
	return []struct {
		name string
		est  core.WorkloadEstimator
	}{
		{"flat", core.Flat{}},
		{"hier", hier.Estimator{}},
		{"dawa", dawa.New()},
		{"ahp", ahp.New()},
		{"agrid", agrid.New()},
	}
}

// MeasureWorkload fits every estimator on the clustered table's
// histogram and scores it on a log-uniform random range workload,
// reporting fit/answer latency and total workload L1 error against the
// flat baseline. The table is policy-free (all records non-sensitive),
// so the comparison isolates estimator quality: xns == x and every
// estimator answers the same ground truth.
func MeasureWorkload(rows, bins, queries int, eps float64) (WorkloadResult, error) {
	if rows <= 0 || bins <= 1 || queries <= 0 || eps <= 0 {
		return WorkloadResult{}, fmt.Errorf("workload benchmark: bad shape rows=%d bins=%d queries=%d eps=%g", rows, bins, queries, eps)
	}
	tb := WorkloadBenchTable(rows, bins, 1)
	q := histogram.NewQuery(nil, histogram.NewNumericDomain("V", 0, 1, bins))

	evalStart := time.Now()
	x := q.Eval(tb)
	evalMs := float64(time.Since(evalStart).Nanoseconds()) / 1e6

	w := metrics.RandomRangeWorkload(queries, bins, rand.New(rand.NewSource(2)))
	// Truths are hoisted out of the timed answer loop: they are the
	// scoring reference, not part of the serving path.
	truths := make([]float64, len(w))
	for i, rq := range w {
		truths[i] = rq.Answer(x)
	}
	res := WorkloadResult{Rows: rows, Bins: bins, Queries: queries, Eps: eps, EvalMs: evalMs}
	src := noise.Locked(noise.NewSource(3))
	var flatL1 float64
	for _, e := range workloadBenchEstimators() {
		fitStart := time.Now()
		fitted, err := e.est.Fit(x, bins, 1, eps, src)
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("workload benchmark: %s: %w", e.name, err)
		}
		syn, err := core.NewSynopsis(fitted, bins, 1)
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("workload benchmark: %s: %w", e.name, err)
		}
		fitMs := float64(time.Since(fitStart).Nanoseconds()) / 1e6

		answers := make([]float64, len(w))
		answerStart := time.Now()
		for i, rq := range w {
			a, err := syn.RangeSum(core.BinRange{Lo0: rq.Lo, Hi0: rq.Hi})
			if err != nil {
				return WorkloadResult{}, fmt.Errorf("workload benchmark: %s: %w", e.name, err)
			}
			answers[i] = a
		}
		answerNs := float64(time.Since(answerStart).Nanoseconds()) / float64(len(w))
		var l1 float64
		for i := range w {
			l1 += math.Abs(truths[i] - answers[i])
		}

		row := WorkloadEstimatorResult{
			Estimator:        e.name,
			FitMs:            fitMs,
			AnswerNsPerQuery: answerNs,
			WorkloadL1:       l1,
		}
		if e.name == "flat" {
			flatL1 = l1
		}
		if l1 > 0 {
			row.FlatL1Ratio = flatL1 / l1
		}
		res.Estimators = append(res.Estimators, row)
	}
	return res, nil
}

// String renders the result as a report-style table.
func (r WorkloadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d rows, %d bins, %d queries, eps=%g, hist eval %.2f ms\n",
		r.Rows, r.Bins, r.Queries, r.Eps, r.EvalMs)
	fmt.Fprintf(&b, "%-8s %10s %14s %14s %10s\n", "est", "fit ms", "answer ns/q", "L1 error", "vs flat")
	for _, e := range r.Estimators {
		fmt.Fprintf(&b, "%-8s %10.2f %14.1f %14.1f %9.2fx\n",
			e.Estimator, e.FitMs, e.AnswerNsPerQuery, e.WorkloadL1, e.FlatL1Ratio)
	}
	return strings.TrimRight(b.String(), "\n")
}
