package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	if s == "-" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "×"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestReportFormatting(t *testing.T) {
	r := &Report{Title: "T", Headers: []string{"a", "bb"}}
	r.AddRow(1.23456, "x")
	r.AddRow(math.NaN(), 7)
	out := r.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "1.235") {
		t.Errorf("report output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("NaN not rendered as dash")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1(QuickConfig(), 50000)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	wants := []float64{63.2, 39.3, 9.5}
	for i, row := range r.Rows {
		analytic := parseCell(t, row[1])
		measured := parseCell(t, row[2])
		if math.Abs(analytic-wants[i]) > 0.1 {
			t.Errorf("row %d analytic %% = %v, want ~%v", i, analytic, wants[i])
		}
		if math.Abs(measured-analytic) > 1.0 {
			t.Errorf("row %d measured %v far from analytic %v", i, measured, analytic)
		}
	}
}

func TestTable2MatchesTargets(t *testing.T) {
	r := Table2(QuickConfig())
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		sparsity := parseCell(t, row[1])
		target := parseCell(t, row[2])
		if math.Abs(sparsity-target) > 0.01 {
			t.Errorf("%s sparsity %v vs target %v", row[0], sparsity, target)
		}
		scale := parseCell(t, row[3])
		targetScale := parseCell(t, row[4])
		if scale != targetScale {
			t.Errorf("%s scale %v vs target %v", row[0], scale, targetScale)
		}
	}
}

func TestCrossoverReportConsistent(t *testing.T) {
	r := CrossoverReport()
	for _, row := range r.Rows {
		rr := parseCell(t, row[3])
		lap := parseCell(t, row[4])
		winner := row[5]
		if (rr > lap) != (winner == "Laplace") {
			t.Errorf("row %v: winner label inconsistent", row)
		}
		predictsWorse := row[6] == "true"
		// Past the boundary (mult>1) the theorem predicts RR worse; verify
		// the realised errors agree.
		if predictsWorse && rr <= lap {
			t.Errorf("row %v: theorem predicts RR worse but measured better", row)
		}
	}
}

func TestFigure1ShapesAndOrdering(t *testing.T) {
	cfg := QuickConfig()
	r := Figure1(cfg, 1.0)
	if len(r.Rows) != len(cfg.PolicyShares) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		allNS := parseCell(t, row[2])
		rr := parseCell(t, row[3])
		random := parseCell(t, row[4])
		objDP := parseCell(t, row[5])
		for i, v := range []float64{allNS, rr, random, objDP} {
			if v < -0.01 || v > 1.01 {
				t.Errorf("col %d error %v outside [0,1]", i, v)
			}
		}
		// Random is near 0.5 error.
		if math.Abs(random-0.5) > 0.15 {
			t.Errorf("random error %v far from 0.5", random)
		}
	}
	// Headline shape at the permissive policy: OsdpRR ≈ All NS, both far
	// better than Random.
	top := r.Rows[0]
	if rr := parseCell(t, top[3]); rr > 0.35 {
		t.Errorf("P90 OsdpRR error %v too high", rr)
	}
}

func TestFigureNGramsOrdering(t *testing.T) {
	cfg := QuickConfig()
	r := FigureNGrams(cfg, 4, 0.01)
	if len(r.Rows) != len(cfg.PolicyShares) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At small ε the truncated Laplace baselines should be far worse than
	// the OSDP release at the permissive policy (paper: order of magnitude).
	top := r.Rows[0]
	allNS := parseCell(t, top[2])
	rr := parseCell(t, top[3])
	lmT1 := parseCell(t, top[4])
	if rr < allNS {
		t.Errorf("OsdpRR %v should not beat All NS %v", rr, allNS)
	}
	if lmT1 < 2*rr {
		t.Errorf("LM T1 %v not clearly worse than OsdpRR %v at ε=0.01", lmT1, rr)
	}
}

func TestFigure4OSDPWinsAtPermissivePolicies(t *testing.T) {
	cfg := QuickConfig()
	r := Figure4(cfg, 1.0)
	if len(r.Rows) != len(cfg.PolicyShares) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// First row is the most permissive policy (P90 in quick config):
	// OsdpLaplaceL1 should beat DAWA there.
	top := r.Rows[0]
	l1 := parseCell(t, top[2])
	dawaErr := parseCell(t, top[4])
	if l1 >= dawaErr {
		t.Errorf("OsdpLaplaceL1 %v not better than DAWA %v at permissive policy", l1, dawaErr)
	}
}

func TestFigure5Shapes(t *testing.T) {
	cfg := QuickConfig()
	r := Figure5(cfg, 1.0)
	for _, row := range r.Rows {
		for i := 1; i < len(row); i++ {
			if v := parseCell(t, row[i]); v < 0 {
				t.Errorf("negative error %v", v)
			}
		}
		// Rel95 >= Rel50 per algorithm.
		for off := 0; off < 3; off++ {
			r50 := parseCell(t, row[1+off])
			r95 := parseCell(t, row[4+off])
			if r95 < r50 {
				t.Errorf("Rel95 %v < Rel50 %v", r95, r50)
			}
		}
	}
}

func TestFigure6RegretsAtLeastOne(t *testing.T) {
	cfg := QuickConfig()
	r := Figure6(cfg, 1.0)
	if len(r.Rows) != 1+len(cfg.NSRatios) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		for i := 1; i < len(row); i++ {
			v := parseCell(t, row[i])
			if !math.IsNaN(v) && v < 1-1e-9 {
				t.Errorf("regret %v below 1 in row %v", v, row)
			}
		}
	}
}

func TestFigure78BothPolicies(t *testing.T) {
	cfg := QuickConfig()
	r := Figure78(cfg, 1.0, "MRE")
	var sawClose, sawFar bool
	for _, row := range r.Rows {
		switch row[0] {
		case "Close":
			sawClose = true
		case "Far":
			sawFar = true
		}
	}
	if !sawClose || !sawFar {
		t.Error("missing policy rows")
	}
	// Rel95 variant runs too.
	r8 := Figure78(cfg, 1.0, "Rel95")
	if len(r8.Rows) == 0 {
		t.Error("Figure 8 produced no rows")
	}
}

func TestFigure78PanicsOnBadMeasure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad measure did not panic")
		}
	}()
	Figure78(QuickConfig(), 1, "L7")
}

func TestFigure9PerDataset(t *testing.T) {
	cfg := QuickConfig()
	r := Figure9(cfg, 1.0, 0.99)
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// On the sparse Adult dataset the OSDP side should be strictly better
	// than DAWA (paper: ~25× regret gap at ρx=0.99).
	for _, row := range r.Rows {
		if row[0] != "Adult" {
			continue
		}
		osdp := parseCell(t, row[1])
		dawaRegret := parseCell(t, row[3])
		if dawaRegret <= osdp {
			t.Errorf("Adult: DAWA regret %v not worse than OsdpLaplaceL1 %v", dawaRegret, osdp)
		}
	}
}

func TestFigure10SuppressTradeoff(t *testing.T) {
	cfg := QuickConfig()
	r := Figure10(cfg, 1.0)
	if len(r.Rows) != len(cfg.NSRatios) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		s10 := parseCell(t, row[2])
		s100 := parseCell(t, row[3])
		// τ=100 adds 10× less noise than τ=10, so it must not be worse.
		if s100 > s10*1.5 {
			t.Errorf("Suppress100 regret %v much worse than Suppress10 %v", s100, s10)
		}
	}
}

func TestExclusionExperiment(t *testing.T) {
	r := ExclusionExperiment(QuickConfig(), 20000)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// OsdpRR rows: measured φ̂ ≤ ε (with slack).
	for _, row := range r.Rows[:3] {
		eps := parseCell(t, row[1])
		phi := parseCell(t, row[2])
		if phi > eps*1.1 {
			t.Errorf("OsdpRR φ̂ %v exceeds ε %v", phi, eps)
		}
	}
	if r.Rows[3][2] != "unbounded" {
		t.Errorf("AllNS φ̂ = %q, want unbounded", r.Rows[3][2])
	}
}

func TestAblationRunners(t *testing.T) {
	cfg := QuickConfig()
	if r := DAWAzRhoSweep(cfg, 1.0, []float64{0.05, 0.1, 0.3}); len(r.Rows) != 7 {
		t.Errorf("rho sweep rows = %d", len(r.Rows))
	}
	r := L1PostprocessAblation(cfg, 1.0)
	if len(r.Rows) != 7 {
		t.Fatalf("postprocess rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		plain := parseCell(t, row[1])
		l1 := parseCell(t, row[2])
		if l1 > plain*1.05 {
			t.Errorf("%s: OsdpLaplaceL1 %v worse than OsdpLaplace %v", row[0], l1, plain)
		}
	}
	if r := ZeroSourceAblation(cfg, 1.0); len(r.Rows) != 7 {
		t.Errorf("zero-source rows = %d", len(r.Rows))
	}
	if r := TruncationSweep(cfg, 4, 1.0, 3); len(r.Rows) != 3 {
		t.Errorf("truncation rows = %d", len(r.Rows))
	}
}
