package experiments

import (
	"fmt"
	"math"

	"osdp/internal/core"
	"osdp/internal/dataset"
	"osdp/internal/dawa"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

// ExclusionExperiment measures the empirical exclusion-attack exposure
// (Definition 3.4) of OsdpRR at several ε against the All NS baseline
// (PDP Suppress with τ=∞), verifying Theorems 3.1 and 3.4: OSDP
// mechanisms' posterior-odds amplification φ̂ stays at ε, while releasing
// all non-sensitive records truthfully leaks without bound.
func ExclusionExperiment(cfg Config, trials int) *Report {
	r := &Report{
		Title:   "Exclusion attack (Def 3.4): empirical posterior-odds amplification φ̂",
		Headers: []string{"mechanism", "epsilon", "φ̂ (measured)", "bound"},
	}
	s := dataset.NewSchema(
		dataset.Field{Name: "ID", Kind: dataset.KindInt},
		dataset.Field{Name: "Age", Kind: dataset.KindInt},
	)
	policy := dataset.NewPolicy("minors", dataset.Cmp("Age", dataset.OpLe, dataset.Int(17)))
	base := dataset.NewTable(s)
	for i, age := range []int64{12, 30, 44, 27} {
		base.Append(dataset.NewRecord(s, dataset.Int(int64(i)), dataset.Int(age)))
	}
	x := dataset.NewRecord(s, dataset.Int(0), dataset.Int(12)) // sensitive target value
	y := dataset.NewRecord(s, dataset.Int(0), dataset.Int(35)) // non-sensitive alternative
	event := core.PresenceEvent(y)
	src := noise.NewSource(cfg.Seed + 20)

	for _, eps := range []float64{0.5, 1.0, 2.0} {
		rep := core.AnalyzeExclusion(core.NewRR(policy, eps), base, 0, x, y, event, trials, src)
		r.AddRow("OsdpRR", eps, rep.MaxLogRatio, fmt.Sprintf("ε = %g (Thm 3.1)", eps))
	}
	rep := core.AnalyzeExclusion(core.NewFullRelease(policy), base, 0, x, y, event, trials, src)
	phi := "unbounded"
	if !math.IsInf(rep.MaxLogRatio, 1) {
		phi = formatFloat(rep.MaxLogRatio)
	}
	r.AddRow("AllNS (PDP Suppress τ=∞)", "-", phi, "∞ (exclusion attack)")
	return r
}

// DAWAzRhoSweep ablates the recipe's budget split ρ (the paper fixes 0.1):
// MRE of DAWAz on each dataset at ε=1, Close policy, ρx=0.5, as ρ varies.
func DAWAzRhoSweep(cfg Config, eps float64, rhos []float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Ablation: DAWAz budget split ρ (ε=%g, Close, ρx=0.5)", eps),
		Headers: append([]string{"dataset"}, rhoHeaders(rhos)...),
	}
	sub := cfg
	sub.NSRatios = []float64{0.5}
	for _, in := range dpbenchInputs(sub) {
		if in.policy != "Close" {
			continue
		}
		src := noise.NewSource(cfg.Seed + 21)
		cells := []any{in.dataset}
		for _, rho := range rhos {
			var sum float64
			for t := 0; t < cfg.Trials; t++ {
				sum += metrics.MRE(in.x, dawa.DAWAz(in.x, in.xns, eps, rho, src), 1)
			}
			cells = append(cells, sum/float64(cfg.Trials))
		}
		r.AddRow(cells...)
	}
	return r
}

func rhoHeaders(rhos []float64) []string {
	out := make([]string, len(rhos))
	for i, rho := range rhos {
		out[i] = fmt.Sprintf("ρ=%.2f", rho)
	}
	return out
}

// L1PostprocessAblation isolates Algorithm 2's clamp-and-debias step:
// OsdpLaplace vs OsdpLaplaceL1 MRE per dataset (ε=1, Close, ρx=0.9).
func L1PostprocessAblation(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Ablation: OsdpLaplace vs OsdpLaplaceL1 (ε=%g, Close, ρx=0.9)", eps),
		Headers: []string{"dataset", "OsdpLaplace", "OsdpLaplaceL1", "improvement"},
	}
	sub := cfg
	sub.NSRatios = []float64{0.9}
	src := noise.NewSource(cfg.Seed + 22)
	for _, in := range dpbenchInputs(sub) {
		if in.policy != "Close" {
			continue
		}
		var plain, l1 float64
		for t := 0; t < cfg.Trials; t++ {
			plain += metrics.MRE(in.x, core.OsdpLaplace(in.xns, eps, src), 1)
			l1 += metrics.MRE(in.x, core.OsdpLaplaceL1(in.xns, eps, src), 1)
		}
		plain /= float64(cfg.Trials)
		l1 /= float64(cfg.Trials)
		r.AddRow(in.dataset, plain, l1, fmt.Sprintf("%.1f×", plain/l1))
	}
	return r
}

// ZeroSourceAblation compares the recipe's two zero detectors inside DAWAz
// (the paper's experiments use the OsdpRR-based one).
func ZeroSourceAblation(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Ablation: DAWAz zero-detector source (ε=%g, Close, ρx=0.5)", eps),
		Headers: []string{"dataset", "RR detector", "Laplace detector"},
	}
	sub := cfg
	sub.NSRatios = []float64{0.5}
	src := noise.NewSource(cfg.Seed + 23)
	for _, in := range dpbenchInputs(sub) {
		if in.policy != "Close" {
			continue
		}
		var rr, lap float64
		for t := 0; t < cfg.Trials; t++ {
			rr += metrics.MRE(in.x,
				dawa.DAWAzWithDetector(in.x, in.xns, eps, DAWAzRho, core.RRZeroDetector, src), 1)
			lap += metrics.MRE(in.x,
				dawa.DAWAzWithDetector(in.x, in.xns, eps, DAWAzRho, core.LaplaceZeroDetector, src), 1)
		}
		r.AddRow(in.dataset, rr/float64(cfg.Trials), lap/float64(cfg.Trials))
	}
	return r
}

// TruncationSweep ablates the n-gram truncation parameter k for the
// Laplace baseline (LM T*'s search space, §6.3.2).
func TruncationSweep(cfg Config, n int, eps float64, kMax int) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Ablation: n-gram truncation k (n=%d, ε=%g)", n, eps),
		Headers: []string{"k", "MRE"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	trueCounts := tippers.NGramCounts(corpus.Trajectories, n)
	domain := tippers.NGramDomainSize(n)
	userGrams := tippers.UserGramLists(corpus.Trajectories, n)
	src := noise.NewSource(cfg.Seed + 24)
	for k := 1; k <= kMax; k++ {
		var sum float64
		for t := 0; t < cfg.Trials; t++ {
			est := mechanism.NGramLaplace(userGrams, k, eps, src)
			sum += metrics.SparseMRE(trueCounts, est, domain, 1)
		}
		r.AddRow(k, sum/float64(cfg.Trials))
	}
	return r
}
