package experiments

import (
	"fmt"
	"runtime"
	"time"

	"osdp/internal/dataset"
	"osdp/internal/histogram"
)

// This file is the parallel data-plane benchmark behind cmd/osdp-bench
// -parallel and the root BenchmarkParallelScan: the canonical filtered
// group-by scan from dataplane.go, run serially (one worker) and
// sharded across the scan worker pool, on the same table. Because the
// parallel engine is bit-identical to the serial one by construction,
// the two runs must agree exactly — the measurement doubles as a
// differential check at full scale.

// ParallelResult is the machine-readable outcome written to
// BENCH_parallel.json.
type ParallelResult struct {
	Rows   int `json:"rows"`
	Groups int `json:"groups"`
	// WorkersRequested is the worker count benchmarked; WorkersEffective
	// is after clamping to the pool cap, and CPUs records the machine,
	// since a speedup below ~min(workers, CPUs) on a busy or small host
	// is scheduling, not regression.
	WorkersRequested int `json:"workers_requested"`
	WorkersEffective int `json:"workers_effective"`
	CPUs             int `json:"cpus"`
	// Scan is the serving hot path: WHERE selection + histogram
	// accumulation (histogram.Query.Eval). Select is predicate
	// evaluation alone (dataset.Table.Select).
	ScanSerialNsPerOp     float64 `json:"scan_serial_ns_per_op"`
	ScanParallelNsPerOp   float64 `json:"scan_parallel_ns_per_op"`
	ScanSpeedup           float64 `json:"scan_speedup"`
	SelectSerialNsPerOp   float64 `json:"select_serial_ns_per_op"`
	SelectParallelNsPerOp float64 `json:"select_parallel_ns_per_op"`
	SelectSpeedup         float64 `json:"select_speedup"`
}

// MeasureParallel times the filtered group-by scan and the bare
// predicate selection on a fresh rows-long table, serially and with the
// requested worker count, and checks the two engines agree bin for bin
// before reporting. The previous scan-worker setting is restored on
// return.
func MeasureParallel(rows, groups, workers int, minDuration time.Duration) (ParallelResult, error) {
	tb := DataplaneTable(rows, groups, 1)
	where := DataplaneWhere()
	q := histogram.NewQuery(where, histogram.DomainFromTable(tb, "Group"))

	prev := dataset.ScanWorkers()
	defer dataset.SetScanWorkers(prev)

	dataset.SetScanWorkers(1)
	serialHist := q.Eval(tb) // also warms the cached bin vector
	serialCount := tb.Select(where).Count()

	effective := dataset.SetScanWorkers(workers)
	parallelHist := q.Eval(tb)
	if parallelHist.Bins() != serialHist.Bins() {
		return ParallelResult{}, fmt.Errorf("parallel benchmark: bin arity changed: %d vs %d", parallelHist.Bins(), serialHist.Bins())
	}
	for i := 0; i < serialHist.Bins(); i++ {
		if serialHist.Count(i) != parallelHist.Count(i) {
			return ParallelResult{}, fmt.Errorf("parallel benchmark: engines disagree on bin %d: %v vs %v",
				i, serialHist.Count(i), parallelHist.Count(i))
		}
	}
	if got := tb.Select(where).Count(); got != serialCount {
		return ParallelResult{}, fmt.Errorf("parallel benchmark: Select count changed: %d vs %d", got, serialCount)
	}

	dataset.SetScanWorkers(1)
	scanSerial := timePerOp(minDuration, func() { q.Eval(tb) })
	selSerial := timePerOp(minDuration, func() { tb.Select(where) })
	dataset.SetScanWorkers(workers)
	scanParallel := timePerOp(minDuration, func() { q.Eval(tb) })
	selParallel := timePerOp(minDuration, func() { tb.Select(where) })

	return ParallelResult{
		Rows:                  rows,
		Groups:                groups,
		WorkersRequested:      workers,
		WorkersEffective:      effective,
		CPUs:                  runtime.NumCPU(),
		ScanSerialNsPerOp:     scanSerial,
		ScanParallelNsPerOp:   scanParallel,
		ScanSpeedup:           scanSerial / scanParallel,
		SelectSerialNsPerOp:   selSerial,
		SelectParallelNsPerOp: selParallel,
		SelectSpeedup:         selSerial / selParallel,
	}, nil
}

// String renders the result as a report-style table row.
func (r ParallelResult) String() string {
	return fmt.Sprintf(
		"parallel: %d rows, %d groups, %d worker(s) on %d CPU(s) | scan %.3f -> %.3f ms/op (%.2fx), select %.3f -> %.3f ms/op (%.2fx)",
		r.Rows, r.Groups, r.WorkersEffective, r.CPUs,
		r.ScanSerialNsPerOp/1e6, r.ScanParallelNsPerOp/1e6, r.ScanSpeedup,
		r.SelectSerialNsPerOp/1e6, r.SelectParallelNsPerOp/1e6, r.SelectSpeedup)
}
