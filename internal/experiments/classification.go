package experiments

import (
	"fmt"
	"math/rand"

	"osdp/internal/classify"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

// Figure1 regenerates the resident/visitor classification experiment
// (§6.3.1, Figure 1): the 1−AUC error of All NS, OsdpRR, Random, and ObjDP
// across policies P99…P1 at the given ε. The paper runs ε ∈ {1.0, 0.01}.
//
// All NS and OsdpRR train a non-private logistic regression on released
// trajectories and are evaluated on a held-out split of the full corpus
// (released data is a biased subset, so per-release CV would inflate their
// scores). ObjDP trains privately on all trajectories; Random ignores the
// features.
func Figure1(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure 1 (ε=%g): resident classification error (1−AUC)", eps),
		Headers: []string{"policy", "ns share", "All NS", "OsdpRR", "Random", "ObjDP"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	patterns := tippers.MineFrequentTrigrams(corpus.Trajectories, 50)
	fs := tippers.NewFeatureSet(patterns)
	rng := rand.New(rand.NewSource(cfg.Seed))
	src := noise.NewSource(cfg.Seed + 1)
	trainCfg := classify.DefaultTrainConfig()
	trainCfg.Epochs = cfg.Epochs

	// Policy-independent baselines, computed once via cross-validation on
	// the full corpus.
	full := tippers.ClassificationDataset(corpus.Trajectories, fs)
	randomAUC, err := classify.CrossValidateAUC(full, cfg.CVFolds, classify.RandomBaseline(rng), rng)
	if err != nil {
		panic(err)
	}
	normFull := full.NormalizeRows()
	objAUC, err := classify.CrossValidateAUC(normFull, cfg.CVFolds, func(train classify.Dataset) (classify.Scorer, error) {
		return classify.ObjDP(train, eps, trainCfg, src)
	}, rng)
	if err != nil {
		panic(err)
	}

	for _, share := range cfg.PolicyShares {
		policy := corpus.PolicyForShare(share)
		nsShare := corpus.NonSensitiveShare(policy)

		allNSAUC := trainOnReleaseAUC(corpus, corpus.ReleaseAllNS(policy), fs, trainCfg, cfg, rng)
		rrAUC := trainOnReleaseAUC(corpus, corpus.ReleaseRR(policy, eps, rng), fs, trainCfg, cfg, rng)

		r.AddRow(policy.Name, nsShare, 1-allNSAUC, 1-rrAUC, 1-randomAUC, 1-objAUC)
	}
	r.Notes = append(r.Notes,
		"paper: OsdpRR tracks All NS closely; ObjDP sits near Random; error grows as the non-sensitive share shrinks")
	return r
}

// trainOnReleaseAUC trains on the released trajectories and evaluates on a
// disjoint test split drawn from the full corpus (ground truth labels).
// It returns 0.5 (chance) when the release is too small to train on.
func trainOnReleaseAUC(corpus *tippers.Corpus, released []*tippers.Trajectory, fs *tippers.FeatureSet, trainCfg classify.TrainConfig, cfg Config, rng *rand.Rand) float64 {
	// Hold out 25% of the corpus as the test set; exclude test
	// trajectories from the training release.
	test := make(map[*tippers.Trajectory]bool)
	for _, t := range corpus.Trajectories {
		if rng.Float64() < 0.25 {
			test[t] = true
		}
	}
	var train []*tippers.Trajectory
	for _, t := range released {
		if !test[t] {
			train = append(train, t)
		}
	}
	if len(train) < 20 || allOneClass(train) {
		return 0.5
	}
	model, err := classify.Train(tippers.ClassificationDataset(train, fs), trainCfg)
	if err != nil {
		return 0.5
	}
	var scores []float64
	var labels []int
	for t := range test {
		scores = append(scores, model.Prob(fs.Vector(t)))
		y := 0
		if t.Resident {
			y = 1
		}
		labels = append(labels, y)
	}
	return classify.AUC(scores, labels)
}

func allOneClass(trajs []*tippers.Trajectory) bool {
	if len(trajs) == 0 {
		return true
	}
	first := trajs[0].Resident
	for _, t := range trajs[1:] {
		if t.Resident != first {
			return false
		}
	}
	return true
}
