package experiments

import (
	"math"

	"osdp/internal/dpbench"
	"osdp/internal/noise"
)

// Table1 regenerates the paper's Table 1: the percentage of non-sensitive
// records OsdpRR releases as a function of ε, both analytically
// (1 − e^(−ε)) and by Monte Carlo over nRecords coin flips.
func Table1(cfg Config, nRecords int) *Report {
	r := &Report{
		Title:   "Table 1: % of released non-sensitive records vs ε (OsdpRR)",
		Headers: []string{"epsilon", "analytic %", "measured %"},
	}
	src := noise.NewSource(cfg.Seed)
	for _, eps := range []float64{1.0, 0.5, 0.1} {
		keep := noise.KeepProbability(eps)
		released := 0
		for i := 0; i < nRecords; i++ {
			if noise.Bernoulli(src, keep) {
				released++
			}
		}
		r.AddRow(eps, 100*keep, 100*float64(released)/float64(nRecords))
	}
	r.Notes = append(r.Notes, "paper reports ~63% / ~39% / ~9.5%")
	return r
}

// Table2 regenerates Table 2: the per-dataset sparsity and scale of the
// synthesised DPBench-1D benchmark.
func Table2(cfg Config) *Report {
	r := &Report{
		Title:   "Table 2: histogram benchmark (synthesised)",
		Headers: []string{"dataset", "sparsity", "target sparsity", "scale", "target scale"},
	}
	for _, spec := range dpbench.Specs() {
		h := spec.Generate(cfg.DPBenchSeed)
		r.AddRow(spec.Name, h.Sparsity(), spec.Sparsity, h.Scale(), float64(spec.Scale))
	}
	return r
}

// CrossoverReport exercises Theorem 5.1's analytic crossover: for each
// (n, d, ε) it reports both expected L1 errors and which side wins,
// sweeping the dataset size across the predicted boundary n = 2d·e^ε/ε.
func CrossoverReport() *Report {
	r := &Report{
		Title:   "Theorem 5.1: OsdpRR vs Laplace expected-L1 crossover",
		Headers: []string{"n", "d", "epsilon", "E[L1] OsdpRR", "E[L1] Laplace", "winner", "thm predicts RR worse"},
	}
	for _, c := range []struct {
		d   int
		eps float64
	}{{100, 1.0}, {10000, 0.1}, {1000, 0.5}} {
		boundary := 2 * float64(c.d) * math.Exp(c.eps) / c.eps
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
			n := int(boundary * mult)
			rr := rrL1(n, c.eps)
			lap := 2 * float64(c.d) / c.eps
			winner := "OsdpRR"
			if rr > lap {
				winner = "Laplace"
			}
			r.AddRow(n, c.d, c.eps, rr, lap, winner, mult > 1)
		}
	}
	return r
}

func rrL1(n int, eps float64) float64 {
	return float64(n) * math.Exp(-eps)
}
