package experiments

import (
	"runtime"
	"testing"
)

// TestGroupCommitSpeedupBar enforces the ROADMAP acceptance bar: group
// commit must deliver ≥20x durable charge throughput at 64 concurrent
// analysts over the serial per-charge-fsync path. Like the parallel
// data-plane bar, it needs real parallelism to mean anything: on the
// 1-CPU containers that produce the committed artifacts the waiters
// cannot overlap the committer, so the bar is only enforced on the
// multi-core CI runner.
func TestGroupCommitSpeedupBar(t *testing.T) {
	if testing.Short() {
		t.Skip("group-commit bar skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("group-commit bar needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	res, err := MeasureLedger(t.TempDir(), 5_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res.String())
	if res.GroupCommitSpeedup < 20 {
		t.Fatalf("group-commit speedup %.1fx at 64 analysts, bar is 20x (serial fsync %.1f µs/op, ×64 %.1f µs/op)",
			res.GroupCommitSpeedup, res.WalSyncNsPerOp/1e3, res.FsyncC64NsPerOp/1e3)
	}
}
