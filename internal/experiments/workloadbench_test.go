package experiments

import (
	"testing"
)

// TestWorkloadBenchStructureBeatsFlat enforces the workload
// acceptance criterion at quick scale: on clustered data at least one
// structure-exploiting estimator must beat the flat Laplace baseline
// on workload L1 error. Seeds are fixed, so a regression here is a
// code change, not noise.
func TestWorkloadBenchStructureBeatsFlat(t *testing.T) {
	res, err := MeasureWorkload(100_000, 512, 200, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimators) != 5 || res.Estimators[0].Estimator != "flat" {
		t.Fatalf("unexpected estimator set: %+v", res.Estimators)
	}
	flat := res.Estimators[0].WorkloadL1
	if flat <= 0 {
		t.Fatalf("flat baseline reported zero error (%g): scoring is broken", flat)
	}
	best, bestName := flat, "flat"
	for _, e := range res.Estimators[1:] {
		if e.WorkloadL1 < best {
			best, bestName = e.WorkloadL1, e.Estimator
		}
	}
	if bestName == "flat" {
		t.Fatalf("no structure-exploiting estimator beat flat (L1 %.1f):\n%s", flat, res.String())
	}
	t.Logf("best estimator %s: L1 %.1f vs flat %.1f (%.2fx)\n%s", bestName, best, flat, flat/best, res.String())
}

func TestMeasureWorkloadRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ rows, bins, queries int }{
		{0, 16, 10}, {100, 1, 10}, {100, 16, 0},
	} {
		if _, err := MeasureWorkload(c.rows, c.bins, c.queries, 1.0); err == nil {
			t.Fatalf("MeasureWorkload(%d, %d, %d) accepted", c.rows, c.bins, c.queries)
		}
	}
}
