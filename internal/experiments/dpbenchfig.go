package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"osdp/internal/core"
	"osdp/internal/dawa"
	"osdp/internal/dpbench"
	"osdp/internal/hier"
	"osdp/internal/histogram"
	"osdp/internal/mechanism"
	"osdp/internal/metrics"
	"osdp/internal/noise"
)

// The DPBench experiments (§6.3.3.2) compare 4 OSDP and 2 DP algorithms on
// 7 datasets × 7 non-sensitive ratios × 2 policy generators, reporting
// regret — each algorithm's error divided by the best error any algorithm
// achieved on that input.

// benchAlgorithms is the §6.3.3 comparison set.
var benchAlgorithms = []string{
	"Laplace", "DAWA", // DP
	"OsdpRR", "OsdpLaplace", "OsdpLaplaceL1", "DAWAz", // OSDP
}

// benchInput is one (dataset, policy, ρx) evaluation point.
type benchInput struct {
	dataset string
	policy  string // "Close" (MSampling) or "Far" (HiLoSampling)
	rho     float64
	x, xns  *histogram.Histogram
}

func (in benchInput) key() string {
	return fmt.Sprintf("%s/%s/%.2f", in.dataset, in.policy, in.rho)
}

// dpbenchInputs materialises every evaluation point for the configured
// ratios: 7 datasets × len(ratios) × 2 policies.
func dpbenchInputs(cfg Config) []benchInput {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	var out []benchInput
	for _, spec := range dpbench.Specs() {
		x := spec.Generate(cfg.DPBenchSeed)
		for _, rho := range cfg.NSRatios {
			out = append(out,
				benchInput{spec.Name, "Close", rho, x, dpbench.MSampling(x, rho, 0.1, rng)},
				benchInput{spec.Name, "Far", rho, x, dpbench.HiLoSampling(x, rho, 5, 0.4, rng)},
			)
		}
	}
	return out
}

// runBenchAlg runs one named algorithm once.
func runBenchAlg(name string, in benchInput, eps float64, src noise.Source) *histogram.Histogram {
	switch name {
	case "Laplace":
		return mechanism.LaplaceHistogram(in.x, eps, src)
	case "DAWA":
		est, _ := dawa.New().Estimate(in.x, eps, src)
		return est
	case "OsdpRR":
		return core.RRSampleHistogram(in.xns, eps, src)
	case "OsdpLaplace":
		return core.OsdpLaplace(in.xns, eps, src)
	case "OsdpLaplaceL1":
		return core.OsdpLaplaceL1(in.xns, eps, src)
	case "DAWAz":
		return dawa.DAWAz(in.x, in.xns, eps, DAWAzRho, src)
	case "Hier":
		est, _ := hier.Estimator{}.Estimate(in.x, eps, src)
		return est
	case "Hierz":
		return hier.Hierz(in.x, in.xns, eps, DAWAzRho, src)
	case "Suppress10":
		return mechanism.Suppress(in.xns, 10, src)
	case "Suppress100":
		return mechanism.Suppress(in.xns, 100, src)
	default:
		panic("experiments: unknown algorithm " + name)
	}
}

// buildRegretTable runs every algorithm on every input, averaging the error
// measure over cfg.Trials, and records the results for regret analysis.
func buildRegretTable(cfg Config, inputs []benchInput, algs []string, eps float64, ef errFunc) *metrics.RegretTable {
	rt := metrics.NewRegretTable(algs...)
	src := noise.NewSource(cfg.Seed + 11)
	for _, in := range inputs {
		for _, alg := range algs {
			var sum float64
			for t := 0; t < cfg.Trials; t++ {
				sum += ef(in.x, runBenchAlg(alg, in, eps, src), 1)
			}
			rt.Record(in.key(), alg, sum/float64(cfg.Trials))
		}
	}
	return rt
}

// shownAlgorithms are the competitive algorithms the paper's regret plots
// display (the full set still defines the regret denominator).
var shownAlgorithms = []string{"OsdpLaplaceL1", "DAWAz", "DAWA"}

// Figure6 regenerates Figure 6: average MRE-regret across both policies,
// by non-sensitive ratio, at the given ε, with an overall average column.
func Figure6(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure 6 (ε=%g): average MRE regret, both policies", eps),
		Headers: append([]string{"ratio"}, shownAlgorithms...),
	}
	rt := buildRegretTable(cfg, dpbenchInputs(cfg), benchAlgorithms, eps, metrics.MRE)
	addRegretRows(r, rt, cfg.NSRatios, nil)
	r.Notes = append(r.Notes,
		"paper: OsdpLaplaceL1 wins at high ratios, DAWA below ρx≈0.25; DAWAz favoured at small ε")
	return r
}

// Figure78 regenerates Figures 7 (MRE) and 8 (Rel95): regret split by
// policy generator at ε, restricted to ρx ≥ 0.25 as in the paper.
func Figure78(cfg Config, eps float64, measure string) *Report {
	var ef errFunc
	var fig string
	switch measure {
	case "MRE":
		ef, fig = metrics.MRE, "Figure 7"
	case "Rel95":
		// The synthetic OSDP runs often achieve Rel95 of exactly zero
		// (95% of bins answered perfectly), which the paper's real data
		// never does; flooring at 0.001 keeps the regret ratios finite
		// without affecting any non-degenerate measurement.
		ef = func(x, est *histogram.Histogram, delta float64) float64 {
			if v := metrics.RelPercentile(x, est, delta, 95); v > 1e-3 {
				return v
			}
			return 1e-3
		}
		fig = "Figure 8"
	default:
		panic("experiments: measure must be MRE or Rel95")
	}
	r := &Report{
		Title:   fmt.Sprintf("%s (ε=%g): %s regret by policy", fig, eps, measure),
		Headers: append([]string{"policy", "ratio"}, shownAlgorithms...),
	}
	var ratios []float64
	for _, rho := range cfg.NSRatios {
		if rho >= 0.25 {
			ratios = append(ratios, rho)
		}
	}
	sub := cfg
	sub.NSRatios = ratios
	rt := buildRegretTable(sub, dpbenchInputs(sub), benchAlgorithms, eps, ef)
	for _, pol := range []string{"Close", "Far"} {
		pol := pol
		addRegretRowsPrefixed(r, rt, ratios, func(in string) bool {
			return strings.Contains(in, "/"+pol+"/")
		}, pol)
	}
	r.Notes = append(r.Notes,
		"paper: OSDP beats DP everywhere under Close; DAWAz still beats DAWA under Far")
	return r
}

// Figure9 regenerates Figure 9: per-dataset MRE regret under the Close
// policy for a fixed non-sensitive ratio (the paper shows 0.99 and 0.50).
func Figure9(cfg Config, eps, rho float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure 9 (ε=%g, ρx=%.2f): per-dataset MRE regret, Close policy", eps, rho),
		Headers: append([]string{"dataset"}, shownAlgorithms...),
	}
	sub := cfg
	sub.NSRatios = []float64{rho}
	rt := buildRegretTable(sub, dpbenchInputs(sub), benchAlgorithms, eps, metrics.MRE)
	for _, spec := range dpbench.Specs() {
		name := spec.Name
		cells := []any{name}
		for _, alg := range shownAlgorithms {
			cells = append(cells, rt.AverageRegret(alg, func(in string) bool {
				return strings.HasPrefix(in, name+"/Close/")
			}))
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"paper: up to 25× regret gap on sparse Adult; gap narrows as sparsity falls; sorted Nettrace favours DAWA")
	return r
}

// Figure10 regenerates Figure 10: OsdpLaplaceL1 against the PDP Suppress
// baselines (τ=10, 100), MRE regret over both policies per ratio at ε.
// Regret is computed within this three-algorithm set, mirroring the
// paper's figure.
func Figure10(cfg Config, eps float64) *Report {
	algs := []string{"OsdpLaplaceL1", "Suppress10", "Suppress100"}
	r := &Report{
		Title:   fmt.Sprintf("Figure 10 (ε=%g): OSDP vs PDP Suppress, MRE regret", eps),
		Headers: append([]string{"ratio"}, algs...),
	}
	rt := buildRegretTable(cfg, dpbenchInputs(cfg), algs, eps, metrics.MRE)
	for _, rho := range cfg.NSRatios {
		cells := []any{fmt.Sprintf("%.2f", rho)}
		tag := fmt.Sprintf("/%.2f", rho)
		for _, alg := range algs {
			cells = append(cells, rt.AverageRegret(alg, func(in string) bool {
				return strings.HasSuffix(in, tag)
			}))
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"paper: Suppress becomes competitive only at τ≥100 — at the cost of 100× weaker exclusion-attack protection (Thm 3.4)")
	return r
}

// addRegretRows writes an "Avg" row plus one row per ratio, averaging the
// displayed algorithms' regrets over inputs passing keep (nil = all).
func addRegretRows(r *Report, rt *metrics.RegretTable, ratios []float64, keep func(string) bool) {
	avgCells := []any{"Avg"}
	for _, alg := range shownAlgorithms {
		avgCells = append(avgCells, rt.AverageRegret(alg, keep))
	}
	r.AddRow(avgCells...)
	for _, rho := range ratios {
		tag := fmt.Sprintf("/%.2f", rho)
		cells := []any{fmt.Sprintf("%.2f", rho)}
		for _, alg := range shownAlgorithms {
			cells = append(cells, rt.AverageRegret(alg, func(in string) bool {
				if keep != nil && !keep(in) {
					return false
				}
				return strings.HasSuffix(in, tag)
			}))
		}
		r.AddRow(cells...)
	}
}

// addRegretRowsPrefixed is addRegretRows with a policy label column.
func addRegretRowsPrefixed(r *Report, rt *metrics.RegretTable, ratios []float64, keep func(string) bool, label string) {
	avgCells := []any{label, "Avg"}
	for _, alg := range shownAlgorithms {
		avgCells = append(avgCells, rt.AverageRegret(alg, keep))
	}
	r.AddRow(avgCells...)
	for _, rho := range ratios {
		tag := fmt.Sprintf("/%.2f", rho)
		cells := []any{label, fmt.Sprintf("%.2f", rho)}
		for _, alg := range shownAlgorithms {
			cells = append(cells, rt.AverageRegret(alg, func(in string) bool {
				return keep(in) && strings.HasSuffix(in, tag)
			}))
		}
		r.AddRow(cells...)
	}
}
