package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"osdp/internal/dataset"
	"osdp/internal/server"
	"osdp/internal/telemetry"
)

// This file is the telemetry-overhead benchmark behind `osdp-bench
// -metrics BENCH_metrics.json`: proof that instrumenting the query hot
// path costs (almost) nothing. Two in-process servers answer the same
// histogram query over the same table — one with a nil *telemetry.Registry
// (every metric update compiles down to a nil check), one fully
// instrumented with the scan-pool hookup installed — and the gap between
// their ns/op is the price of observability. CI tracks the artifact so
// a future "just one more metric" cannot silently tax every query.

// TelemetryBenchResult is the machine-readable outcome written to
// BENCH_metrics.json.
type TelemetryBenchResult struct {
	Rows         int     `json:"rows"`
	Groups       int     `json:"groups"`
	BaseNsPerOp  float64 `json:"base_ns_per_op"`
	InstrNsPerOp float64 `json:"instrumented_ns_per_op"`
	OverheadPct  float64 `json:"overhead_pct"`
	Series       int     `json:"series_rendered"`
	P50Seconds   float64 `json:"query_p50_seconds"`
	P95Seconds   float64 `json:"query_p95_seconds"`
	P99Seconds   float64 `json:"query_p99_seconds"`
}

// MeasureTelemetryOverhead times the full server query path (session
// lookup, ε charge, policy-partitioned scan, noise) with telemetry off
// and on. Each engine runs `rounds` alternating windows of at least
// minDuration and reports its best window, which cancels GC and
// frequency-scaling drift; the instrumented number also folds in the
// process-global scan-pool instruments, so the measured gap is the whole
// telemetry plane, not just the per-query counters.
func MeasureTelemetryOverhead(rows, groups int, minDuration time.Duration) (TelemetryBenchResult, error) {
	tb := DataplaneTable(rows, groups, 1)
	// A policy with real sensitive mass so the bench pays the same
	// split/partition costs a production table does.
	pol := dataset.NewPolicy("bench-minors", dataset.Cmp("Age", dataset.OpLt, dataset.Int(18)))

	reg := telemetry.NewRegistry()
	scan := dataset.NewScanMetrics(reg)

	type engine struct {
		srv *server.Server
		sid string
	}
	mk := func(cfg server.Config) (engine, error) {
		srv := server.New(cfg)
		if err := srv.RegisterTable("bench", tb, pol); err != nil {
			return engine{}, err
		}
		s := int64(1)
		info, err := srv.OpenSession("", server.OpenSessionRequest{Dataset: "bench", Seed: &s})
		if err != nil {
			return engine{}, err
		}
		return engine{srv: srv, sid: info.ID}, nil
	}
	base, err := mk(server.Config{AllowSeededSessions: true})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (base): %w", err)
	}
	instr, err := mk(server.Config{AllowSeededSessions: true, Telemetry: reg})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (instrumented): %w", err)
	}

	req := server.QueryRequest{
		Kind: server.KindHistogram,
		Eps:  0.1,
		Dims: []server.DomainSpec{{Attr: "Group"}},
	}
	// Sanity: both engines answer, with the full group arity.
	for _, e := range []engine{base, instr} {
		resp, err := e.srv.Query("", e.sid, req)
		if err != nil {
			return TelemetryBenchResult{}, fmt.Errorf("telemetry bench probe: %w", err)
		}
		if len(resp.Counts) != groups {
			return TelemetryBenchResult{}, fmt.Errorf("telemetry bench probe: %d bins, want %d", len(resp.Counts), groups)
		}
	}

	var qerr error
	query := func(e engine) func() {
		return func() {
			if _, err := e.srv.Query("", e.sid, req); err != nil && qerr == nil {
				qerr = err
			}
		}
	}

	const rounds = 3
	baseNs, instrNs := math.Inf(1), math.Inf(1)
	for r := 0; r < rounds; r++ {
		dataset.SetScanMetrics(nil)
		baseNs = math.Min(baseNs, timePerOp(minDuration, query(base)))
		dataset.SetScanMetrics(scan)
		instrNs = math.Min(instrNs, timePerOp(minDuration, query(instr)))
	}
	dataset.SetScanMetrics(nil)
	if qerr != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench: %w", qerr)
	}

	// The instrumented server registered this exact series; registration
	// is idempotent, so asking again hands back the live histogram.
	hist := reg.NewHistogram("osdp_query_duration_seconds",
		"Wall time of Server.Query by query kind.", nil, telemetry.L("kind", server.KindHistogram))
	p50, p95, p99 := hist.Summary()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench: render: %w", err)
	}
	return TelemetryBenchResult{
		Rows:         rows,
		Groups:       groups,
		BaseNsPerOp:  baseNs,
		InstrNsPerOp: instrNs,
		OverheadPct:  (instrNs - baseNs) / baseNs * 100,
		Series:       countSeries(b.String()),
		P50Seconds:   p50,
		P95Seconds:   p95,
		P99Seconds:   p99,
	}, nil
}

// countSeries counts distinct series names in a rendered exposition,
// collapsing a histogram's _bucket/_sum/_count lines into one family —
// the same notion of "series" the acceptance bar on /metrics uses.
func countSeries(exposition string) int {
	names := make(map[string]bool)
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		names[name] = true
	}
	return len(names)
}

// String renders the result as a report-style line.
func (r TelemetryBenchResult) String() string {
	return fmt.Sprintf(
		"telemetry overhead: base %.1f µs/op, instrumented %.1f µs/op, overhead %+.2f%% | %d series, query p50/p95/p99 %.2f/%.2f/%.2f ms",
		r.BaseNsPerOp/1e3, r.InstrNsPerOp/1e3, r.OverheadPct, r.Series,
		r.P50Seconds*1e3, r.P95Seconds*1e3, r.P99Seconds*1e3)
}
