package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"osdp/internal/audit"
	"osdp/internal/dataset"
	"osdp/internal/server"
	"osdp/internal/telemetry"
)

// This file is the telemetry-overhead benchmark behind `osdp-bench
// -metrics BENCH_metrics.json`: proof that instrumenting the query hot
// path costs (almost) nothing. Three in-process servers answer the same
// histogram query over the same table — one with a nil *telemetry.Registry
// (every metric update compiles down to a nil check), one fully
// instrumented with the scan-pool hookup installed, and one additionally
// tracing every request into span rings and appending one event per
// query to a durable audit trail — and the gaps between their ns/op are
// the price of observability. CI tracks the artifact so a future "just
// one more metric" (or span) cannot silently tax every query.

// TelemetryBenchResult is the machine-readable outcome written to
// BENCH_metrics.json.
type TelemetryBenchResult struct {
	Rows         int     `json:"rows"`
	Groups       int     `json:"groups"`
	BaseNsPerOp  float64 `json:"base_ns_per_op"`
	InstrNsPerOp float64 `json:"instrumented_ns_per_op"`
	OverheadPct  float64 `json:"overhead_pct"`
	// TracedNsPerOp is the metrics engine plus per-request span tracing
	// and an audit-trail append on every query; TracedOverheadPct is its
	// gap to base — the whole observability plane at once, the number
	// the <2% acceptance bar is enforced on. Caveat for committed
	// artifacts: on a single-CPU container the durable trail's group
	// committer (marshal + fsync) competes with the query loop for the
	// only core and inflates this by a few percent; with the trail
	// in-memory, traced tracks instrumented within ~1%. The bar is
	// therefore enforced on the multi-core CI runner, where the
	// committer overlaps the queries it serves — the same reasoning as
	// the group-commit speedup bar.
	TracedNsPerOp     float64 `json:"traced_ns_per_op"`
	TracedOverheadPct float64 `json:"traced_overhead_pct"`
	Series            int     `json:"series_rendered"`
	P50Seconds        float64 `json:"query_p50_seconds"`
	P95Seconds        float64 `json:"query_p95_seconds"`
	P99Seconds        float64 `json:"query_p99_seconds"`
}

// MeasureTelemetryOverhead times the full server query path (session
// lookup, ε charge, policy-partitioned scan, noise) with telemetry off,
// on, and on-plus-tracing. Each engine runs `rounds` alternating windows
// of at least minDuration and reports its best window, which cancels GC
// and frequency-scaling drift; the instrumented numbers also fold in
// the process-global scan-pool instruments, so the measured gaps are
// the whole telemetry plane, not just the per-query counters. The
// traced engine replicates the HTTP middleware per op — start a trace,
// plant it in the context, finish it into the ring — and appends one
// audit event per query; auditDir backs the trail with a real fsync'd
// file ("" keeps it in-memory, understating the cost).
func MeasureTelemetryOverhead(rows, groups int, minDuration time.Duration, auditDir string) (TelemetryBenchResult, error) {
	tb := DataplaneTable(rows, groups, 1)
	// A policy with real sensitive mass so the bench pays the same
	// split/partition costs a production table does.
	pol := dataset.NewPolicy("bench-minors", dataset.Cmp("Age", dataset.OpLt, dataset.Int(18)))

	reg := telemetry.NewRegistry()
	scan := dataset.NewScanMetrics(reg)

	type engine struct {
		srv *server.Server
		sid string
	}
	mk := func(cfg server.Config) (engine, error) {
		srv := server.New(cfg)
		if err := srv.RegisterTable("bench", tb, pol); err != nil {
			return engine{}, err
		}
		s := int64(1)
		info, err := srv.OpenSession("", server.OpenSessionRequest{Dataset: "bench", Seed: &s})
		if err != nil {
			return engine{}, err
		}
		return engine{srv: srv, sid: info.ID}, nil
	}
	base, err := mk(server.Config{AllowSeededSessions: true})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (base): %w", err)
	}
	instr, err := mk(server.Config{AllowSeededSessions: true, Telemetry: reg})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (instrumented): %w", err)
	}
	tracer := telemetry.NewTracer(telemetry.TracerConfig{})
	trail, err := audit.Open(audit.Config{Dir: auditDir, Telemetry: reg})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (audit): %w", err)
	}
	defer trail.Close()
	traced, err := mk(server.Config{
		AllowSeededSessions: true,
		Telemetry:           reg,
		Tracer:              tracer,
		Audit:               trail,
	})
	if err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench (traced): %w", err)
	}

	req := server.QueryRequest{
		Kind: server.KindHistogram,
		Eps:  0.1,
		Dims: []server.DomainSpec{{Attr: "Group"}},
	}
	// Sanity: all engines answer, with the full group arity.
	for _, e := range []engine{base, instr, traced} {
		resp, err := e.srv.Query("", e.sid, req)
		if err != nil {
			return TelemetryBenchResult{}, fmt.Errorf("telemetry bench probe: %w", err)
		}
		if len(resp.Counts) != groups {
			return TelemetryBenchResult{}, fmt.Errorf("telemetry bench probe: %d bins, want %d", len(resp.Counts), groups)
		}
	}

	var qerr error
	query := func(e engine) func() {
		return func() {
			if _, err := e.srv.Query("", e.sid, req); err != nil && qerr == nil {
				qerr = err
			}
		}
	}
	// The traced op replicates what the HTTP middleware does around a
	// query: mint a trace, plant it in the context, finish it into the
	// ring. The fixed id is fine — the ring retains snapshots, not keys.
	tracedQuery := func() {
		t := tracer.Start("benchbenchbench0")
		ctx := telemetry.ContextWithTrace(context.Background(), t)
		if _, err := traced.srv.QueryContext(ctx, "", traced.sid, req); err != nil && qerr == nil {
			qerr = err
		}
		t.Finish("/v1/sessions/{id}/query", 200)
	}

	// Best-of-7: each engine's reported ns/op is the minimum over seven
	// interleaved windows. The minimum estimator converges to the noise
	// floor, which is what an overhead comparison needs — co-tenant
	// jitter on shared runners otherwise swamps a <2% signal.
	const rounds = 7
	baseNs, instrNs, tracedNs := math.Inf(1), math.Inf(1), math.Inf(1)
	for r := 0; r < rounds; r++ {
		dataset.SetScanMetrics(nil)
		baseNs = math.Min(baseNs, timePerOp(minDuration, query(base)))
		dataset.SetScanMetrics(scan)
		instrNs = math.Min(instrNs, timePerOp(minDuration, query(instr)))
		tracedNs = math.Min(tracedNs, timePerOp(minDuration, tracedQuery))
	}
	dataset.SetScanMetrics(nil)
	if qerr != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench: %w", qerr)
	}
	if trail.Seq() == 0 {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench: traced engine produced no audit events")
	}

	// The instrumented server registered this exact series; registration
	// is idempotent, so asking again hands back the live histogram.
	hist := reg.NewHistogram("osdp_query_duration_seconds",
		"Wall time of Server.Query by query kind.", nil, telemetry.L("kind", server.KindHistogram))
	p50, p95, p99 := hist.Summary()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return TelemetryBenchResult{}, fmt.Errorf("telemetry bench: render: %w", err)
	}
	return TelemetryBenchResult{
		Rows:              rows,
		Groups:            groups,
		BaseNsPerOp:       baseNs,
		InstrNsPerOp:      instrNs,
		OverheadPct:       (instrNs - baseNs) / baseNs * 100,
		TracedNsPerOp:     tracedNs,
		TracedOverheadPct: (tracedNs - baseNs) / baseNs * 100,
		Series:            countSeries(b.String()),
		P50Seconds:        p50,
		P95Seconds:        p95,
		P99Seconds:        p99,
	}, nil
}

// countSeries counts distinct series names in a rendered exposition,
// collapsing a histogram's _bucket/_sum/_count lines into one family —
// the same notion of "series" the acceptance bar on /metrics uses.
func countSeries(exposition string) int {
	names := make(map[string]bool)
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		names[name] = true
	}
	return len(names)
}

// String renders the result as a report-style line.
func (r TelemetryBenchResult) String() string {
	return fmt.Sprintf(
		"telemetry overhead: base %.1f µs/op, instrumented %.1f µs/op (%+.2f%%), traced+audited %.1f µs/op (%+.2f%%) | %d series, query p50/p95/p99 %.2f/%.2f/%.2f ms",
		r.BaseNsPerOp/1e3, r.InstrNsPerOp/1e3, r.OverheadPct,
		r.TracedNsPerOp/1e3, r.TracedOverheadPct, r.Series,
		r.P50Seconds*1e3, r.P95Seconds*1e3, r.P99Seconds*1e3)
}
