package experiments

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestJainIndex pins the fairness metric itself: perfectly even input
// scores 1, one-analyst-takes-all scores 1/n, and the degenerate
// inputs are 0 rather than NaN.
func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"even", []float64{5, 5, 5, 5}, 1},
		{"one-takes-all", []float64{10, 0, 0, 0}, 0.25},
		{"skewed", []float64{4, 1}, math.Pow(5, 2) / (2 * 17)},
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTrafficSmoke runs the harness at tiny scale (both arrival modes)
// and checks the result's structure: every point carries per-analyst
// rows, completions add up, and fairness lands in (0, 1].
func TestTrafficSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic smoke skipped in -short")
	}
	res, err := MeasureTraffic(TrafficOptions{
		Rows:             2_000,
		AnalystCounts:    []int{1, 3},
		PerPoint:         300 * time.Millisecond,
		OpenLoopAnalysts: 2,
		OpenLoopRate:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res.String())
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3 (closed x2 + open)", len(res.Points))
	}
	for _, p := range res.Points {
		if len(p.PerAnalyst) != p.Analysts {
			t.Errorf("%d-analyst %s point has %d per-analyst rows", p.Analysts, p.Mode, len(p.PerAnalyst))
		}
		total := 0
		for _, a := range p.PerAnalyst {
			total += a.Requests
			if a.Errors > 0 {
				t.Errorf("analyst %s: %d unexpected errors", a.Analyst, a.Errors)
			}
		}
		if total != p.Requests {
			t.Errorf("per-analyst requests sum to %d, point says %d", total, p.Requests)
		}
		if p.Requests > 0 && (p.Fairness <= 0 || p.Fairness > 1) {
			t.Errorf("fairness %v outside (0, 1]", p.Fairness)
		}
		if p.Requests > 0 && (p.AggP50Micros <= 0 || p.AggP99Micros < p.AggP50Micros) {
			t.Errorf("implausible percentiles p50=%dus p99=%dus", p.AggP50Micros, p.AggP99Micros)
		}
		if p.QPS <= 0 {
			t.Errorf("qps %v", p.QPS)
		}
	}
	if res.Points[0].Mode != "closed" || res.Points[2].Mode != "open" {
		t.Errorf("point modes wrong: %q, %q", res.Points[0].Mode, res.Points[2].Mode)
	}
}

// TestTrafficFairnessBar is the CI acceptance bar: at 8 backlogged
// analysts of equal weight on 2 execution slots, the weighted-fair
// queue must serve them evenly — Jain index >= 0.9. An unfair queue
// (FIFO across a flood, or slot capture) scores far lower. The bar
// needs real parallelism to backlog the pipe, so it self-skips on
// small containers (same pattern as TestGroupCommitSpeedupBar).
func TestTrafficFairnessBar(t *testing.T) {
	if testing.Short() {
		t.Skip("fairness bar skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("fairness bar needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	res, err := MeasureTraffic(TrafficOptions{
		Rows:          20_000,
		AnalystCounts: []int{8},
		PerPoint:      3 * time.Second,
		MaxConcurrent: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res.String())
	pt := res.Points[0]
	if pt.Fairness < 0.9 {
		for _, a := range pt.PerAnalyst {
			t.Logf("  %s: %d requests, p99 %.2f ms", a.Analyst, a.Requests, float64(a.P99Micros)/1e3)
		}
		t.Fatalf("Jain fairness %.3f at 8 analysts, bar is 0.9", pt.Fairness)
	}
}
