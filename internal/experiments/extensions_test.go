package experiments

import (
	"testing"
)

func TestRecipeGeneralityBothZVariantsHelpOnSparse(t *testing.T) {
	cfg := QuickConfig()
	r := RecipeGeneralityReport(cfg, 1.0)
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[0] != "Adult" {
			continue
		}
		dawaErr := parseCell(t, row[1])
		dawazErr := parseCell(t, row[2])
		ahpErr := parseCell(t, row[3])
		ahpzErr := parseCell(t, row[4])
		if dawazErr >= dawaErr {
			t.Errorf("Adult: DAWAz %v not better than DAWA %v", dawazErr, dawaErr)
		}
		if ahpzErr >= ahpErr {
			t.Errorf("Adult: AHPz %v not better than AHP %v", ahpzErr, ahpErr)
		}
	}
}

func TestAGrid2DReportZVariantHelps(t *testing.T) {
	cfg := QuickConfig()
	r := AGrid2DReport(cfg, 1.0)
	if len(r.Rows) != len(cfg.PolicyShares) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At the most permissive policy, AGridz must improve on AGrid.
	top := r.Rows[0]
	ag := parseCell(t, top[2])
	agz := parseCell(t, top[3])
	if agz >= ag {
		t.Errorf("AGridz %v not better than AGrid %v at permissive policy", agz, ag)
	}
}

func TestRangeWorkloadReport(t *testing.T) {
	cfg := QuickConfig()
	r := RangeWorkloadReport(cfg, 1.0, 50)
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		for i := 1; i < len(row); i++ {
			if v := parseCell(t, row[i]); v < 0 {
				t.Errorf("%s: negative workload error %v", row[0], v)
			}
		}
	}
}

func TestConstraintClosureReport(t *testing.T) {
	cfg := QuickConfig()
	r := ConstraintClosureReport(cfg)
	if len(r.Rows) != len(cfg.PolicyShares) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		orig := parseCell(t, row[1])
		closed := parseCell(t, row[3])
		if closed < orig {
			t.Errorf("%s: closure shrank the sensitive set (%v -> %v)", row[0], orig, closed)
		}
		origShare := parseCell(t, row[4])
		closedShare := parseCell(t, row[5])
		if closedShare > origShare+1e-9 {
			t.Errorf("%s: closure increased the non-sensitive share", row[0])
		}
	}
}

func TestPrivBayesReportBeatsLaplaceAtSmallEps(t *testing.T) {
	cfg := QuickConfig()
	r := PrivBayesReport(cfg, []float64{0.2})
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	lap := parseCell(t, r.Rows[0][1])
	pb := parseCell(t, r.Rows[0][2])
	pbz := parseCell(t, r.Rows[0][3])
	if pb >= lap {
		t.Errorf("PrivBayes MRE %v not better than Laplace %v", pb, lap)
	}
	if pbz >= pb {
		t.Errorf("PrivBayesz MRE %v not better than PrivBayes %v", pbz, pb)
	}
}

func TestPolicyLearningReportImprovesWithData(t *testing.T) {
	cfg := QuickConfig()
	r := PolicyLearningReport(cfg, []int{100, 2000})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	small := parseCell(t, r.Rows[0][1])
	large := parseCell(t, r.Rows[1][1])
	if large < 0.85 {
		t.Errorf("agreement with 2000 examples = %v, want > 0.85", large)
	}
	if large < small-0.05 {
		t.Errorf("agreement degraded with more data: %v -> %v", small, large)
	}
	// FNR stays capped for the large sample.
	if fnr := parseCell(t, r.Rows[1][2]); fnr > 0.1 {
		t.Errorf("FNR = %v, want small", fnr)
	}
}
