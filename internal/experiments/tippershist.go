package experiments

import (
	"fmt"

	"osdp/internal/core"
	"osdp/internal/dawa"
	"osdp/internal/histogram"
	"osdp/internal/metrics"
	"osdp/internal/noise"
	"osdp/internal/tippers"
)

// DAWAzRho is the recipe budget share the paper uses for DAWAz (§6.3.3).
const DAWAzRho = 0.1

// Figure4 regenerates the TIPPERS 2-D histogram comparison (§6.3.3.1,
// Figure 4): mean relative error of OsdpLaplaceL1, DAWAz, and DAWA on the
// 64×24 AP-by-hour distinct-user histogram, across policies, at ε.
func Figure4(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure 4 (ε=%g): MRE on the TIPPERS AP×hour histogram", eps),
		Headers: []string{"policy", "ns share", "OsdpLaplaceL1", "DAWAz", "DAWA"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	src := noise.NewSource(cfg.Seed + 3)

	for _, share := range cfg.PolicyShares {
		policy := corpus.PolicyForShare(share)
		x, xns := tippers.Hist2DSplit(corpus.Trajectories, policy)
		res := runHistAlgorithms(x, xns, eps, cfg.Trials, metrics.MRE, src)
		r.AddRow(policy.Name, corpus.NonSensitiveShare(policy),
			res["OsdpLaplaceL1"], res["DAWAz"], res["DAWA"])
	}
	r.Notes = append(r.Notes,
		"paper (ε=1): OSDP algorithms win above ~25% non-sensitive; DAWA wins below",
		"paper (ε=0.01): DAWAz stays competitive at every policy")
	return r
}

// Figure5 regenerates the per-bin relative error percentiles on the same
// histogram (§6.3.3.1, Figure 5): Rel50 and Rel95 at ε=1 for policies with
// ≥25% non-sensitive records.
func Figure5(cfg Config, eps float64) *Report {
	r := &Report{
		Title:   fmt.Sprintf("Figure 5 (ε=%g): per-bin relative error on TIPPERS (Rel50 / Rel95)", eps),
		Headers: []string{"policy", "L1 Rel50", "DAWAz Rel50", "DAWA Rel50", "L1 Rel95", "DAWAz Rel95", "DAWA Rel95"},
	}
	corpus := tippers.Generate(cfg.Tippers)
	src := noise.NewSource(cfg.Seed + 5)

	rel50 := func(x, est *histogram.Histogram, delta float64) float64 {
		return metrics.RelPercentile(x, est, delta, 50)
	}
	rel95 := func(x, est *histogram.Histogram, delta float64) float64 {
		return metrics.RelPercentile(x, est, delta, 95)
	}

	for _, share := range cfg.PolicyShares {
		if share < 0.25 {
			continue // the paper truncates Figure 5 at P25
		}
		policy := corpus.PolicyForShare(share)
		x, xns := tippers.Hist2DSplit(corpus.Trajectories, policy)
		r50 := runHistAlgorithms(x, xns, eps, cfg.Trials, rel50, src)
		r95 := runHistAlgorithms(x, xns, eps, cfg.Trials, rel95, src)
		r.AddRow(policy.Name,
			r50["OsdpLaplaceL1"], r50["DAWAz"], r50["DAWA"],
			r95["OsdpLaplaceL1"], r95["DAWAz"], r95["DAWA"])
	}
	r.Notes = append(r.Notes,
		"paper: OSDP algorithms dominate across metrics; OsdpLaplaceL1 beats DAWAz because TIPPERS policies are value-based")
	return r
}

// errFunc is the error-measure signature shared by MRE and the Rel
// percentiles.
type errFunc func(x, est *histogram.Histogram, delta float64) float64

// runHistAlgorithms runs the three §6.3.3 algorithms on (x, xns),
// averaging the error measure over trials.
func runHistAlgorithms(x, xns *histogram.Histogram, eps float64, trials int, ef errFunc, src noise.Source) map[string]float64 {
	alg := dawa.New()
	sums := map[string]float64{}
	for t := 0; t < trials; t++ {
		sums["OsdpLaplaceL1"] += ef(x, core.OsdpLaplaceL1(xns, eps, src), 1)
		sums["DAWAz"] += ef(x, dawa.DAWAz(x, xns, eps, DAWAzRho, src), 1)
		est, _ := alg.Estimate(x, eps, src)
		sums["DAWA"] += ef(x, est, 1)
	}
	for k := range sums {
		sums[k] /= float64(trials)
	}
	return sums
}
