package experiments

import (
	"strconv"

	"osdp/internal/tippers"
)

// Config scales the experiment harness. The paper's datasets are larger
// (585K trajectories, 9 months); the defaults here are laptop-scale while
// preserving every structural property the results depend on. Quick is
// used by unit tests; Default by the bench harness and CLI.
type Config struct {
	// Seed drives all randomness in the run.
	Seed int64
	// Trials is the number of repetitions averaged per measurement
	// (the paper uses 10).
	Trials int
	// Tippers parameterises the trace simulator.
	Tippers tippers.Config
	// CVFolds is the cross-validation fold count for classification
	// (the paper uses 10).
	CVFolds int
	// Epochs bounds logistic-regression training.
	Epochs int
	// PolicyShares are the non-sensitive shares defining P99…P1.
	PolicyShares []float64
	// NSRatios are the DPBench non-sensitive ratios ρx.
	NSRatios []float64
	// DPBenchSeed seeds benchmark dataset synthesis.
	DPBenchSeed int64
}

// DefaultConfig returns the full-scale harness configuration. The TIPPERS
// corpus is enlarged beyond the generator default so per-bin counts in the
// 2-D histogram reach the magnitudes where the DP baselines' noise is
// informative, as in the paper's 16K-user trace.
func DefaultConfig() Config {
	tc := tippers.DefaultConfig()
	tc.Users = 2400
	tc.Days = 40
	return Config{
		Seed:         1,
		Trials:       10,
		Tippers:      tc,
		CVFolds:      10,
		Epochs:       150,
		PolicyShares: []float64{0.99, 0.90, 0.75, 0.50, 0.25, 0.10, 0.01},
		NSRatios:     []float64{0.99, 0.90, 0.75, 0.50, 0.25, 0.10, 0.01},
		DPBenchSeed:  42,
	}
}

// QuickConfig returns a reduced configuration for unit tests: fewer users,
// trials, folds, and sweep points.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Trials = 2
	cfg.Tippers.Users = 200
	cfg.Tippers.Days = 12
	cfg.CVFolds = 3
	cfg.Epochs = 40
	cfg.PolicyShares = []float64{0.90, 0.50}
	cfg.NSRatios = []float64{0.90, 0.50}
	return cfg
}

// policyName renders a non-sensitive share as the paper's policy label.
func policyName(share float64) string {
	return "P" + strconv.Itoa(int(share*100+0.5))
}
